// ACME issuance walkthrough (§3.1, §8.1, §8.2): stand up a Let's
// Encrypt-style CA on the simulated network, obtain a certificate via the
// http-01 challenge like certbot would, then demonstrate the paper's two
// issuance-policy recommendations — CAA enforcement and the §8.1 key-reuse
// refusal.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"repro/internal/acme"
	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/dnssim"
	"repro/internal/httpsim"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/verify"
)

func main() {
	rng := rand.New(rand.NewSource(1)) //lint:allow globalrand the example's literal seed IS its study seed; every stream below is threaded from this one
	network := simnet.New()
	zone := dnssim.NewZone()
	registry := ca.NewRegistry(rng)
	store := registry.BuildStore("apple", ca.AppleCounts, rng)

	// The CA side: a Let's Encrypt-style ACME endpoint.
	authority := registry.MustLookup("Let's Encrypt Authority X3")
	clock := simclock.NewVirtual(time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC))
	server := acme.NewServer(authority, "letsencrypt.org", zone, network, clock)
	server.EnforceKeyReuse = true // the §8.1 recommendation, switched on
	apiAddr := netip.MustParseAddrPort("172.30.0.1:80")
	network.Handle(apiAddr, server.Handle)

	// The webmaster side: a government site that can serve challenge
	// tokens from /.well-known/acme-challenge/.
	var mu sync.Mutex
	tokens := map[string]string{}
	serveSite := func(hostname, ip string) {
		addr := netip.MustParseAddr(ip)
		zone.AddA(hostname, addr)
		network.Handle(netip.AddrPortFrom(addr, 80), func(conn net.Conn) {
			defer conn.Close()
			req, err := httpsim.ReadRequest(bufio.NewReader(conn))
			if err != nil {
				return
			}
			if strings.HasPrefix(req.Path, acme.ChallengePath) {
				mu.Lock()
				content := tokens[strings.TrimPrefix(req.Path, acme.ChallengePath)]
				mu.Unlock()
				if content != "" {
					httpsim.WriteResponse(conn, 200, nil, []byte(content))
					return
				}
			}
			httpsim.WriteResponse(conn, 404, nil, nil)
		})
	}
	serveSite("portal.gov.br", "190.20.0.1")
	serveSite("tax.gov.co", "190.20.0.2")

	client := &acme.Client{
		Server:     apiAddr,
		ServerName: "acme-v02.api.letsencrypt.org",
		Net:        network,
		Vantage:    "webmaster",
		Provision: func(hostname, token string) error {
			mu.Lock()
			defer mu.Unlock()
			tokens[token] = token
			return nil
		},
	}
	ctx := context.Background()

	// 1. A normal certbot run.
	key := cert.NewKey(rng, cert.KeyRSA, 2048)
	chain, err := client.Obtain(ctx, []string{"portal.gov.br"}, key)
	if err != nil {
		log.Fatal(err)
	}
	v := &verify.Verifier{Store: store, Now: server.Clock.Now().AddDate(0, 1, 0)}
	res := v.Verify(chain, "portal.gov.br")
	fmt.Printf("issued %s: %d-day certificate, chain valid=%v\n",
		chain[0].Subject.CommonName, chain[0].ValidityDays(), res.Valid())

	// 2. CAA enforcement (§5.3.4/§8.2): the domain authorizes only DigiCert.
	zone.AddCAA("tax.gov.co", dnssim.CAARecord{Tag: "issue", Value: "digicert.com"})
	if _, err := client.Obtain(ctx, []string{"tax.gov.co"}, cert.NewKey(rng, cert.KeyRSA, 2048)); err != nil {
		fmt.Printf("CAA enforcement: %v\n", err)
	}

	// 3. The §8.1 key-reuse policy: reusing portal.gov.br's key for an
	// unrelated government is refused at issuance time.
	zone.AddCAA("tax.gov.co", dnssim.CAARecord{Tag: "issue", Value: "letsencrypt.org"})
	if _, err := client.Obtain(ctx, []string{"tax.gov.co"}, key); err != nil {
		fmt.Printf("key-reuse policy: %v\n", err)
	}
	fmt.Println("the shared-private-key clusters of §5.3.3 would never have been issued")
}
