// South Korea case study (§6.2): scan the Government24 hostname database,
// reproduce the issuer breakdown dominated by Sectigo/AlphaSSL and the
// distrusted NPKI sub-CAs (Figure 11), and the validity-by-key figure.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/govhttps"
)

func main() {
	study := govhttps.MustNewStudy(govhttps.SmallConfig())
	ctx := context.Background()

	for _, id := range []string{"F11", "F12", "TA4"} {
		out, err := govhttps.RunExperiment(ctx, study, id)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(out)
	}

	results := study.ROK(ctx)
	tab := govhttps.SummarizeSet(results)
	fmt.Printf("ROK case study: %.2f%% of https sites carry valid certificates (paper: ~38%%)\n",
		tab.PctOfHTTPS(tab.Valid))

	// The NPKI sub-CAs are structurally valid but distrusted everywhere —
	// the set's issuer index answers "how many hosts still serve them"
	// without another pass over the results.
	npki := 0
	for _, cn := range results.Issuers() {
		if strings.HasPrefix(cn, "CA1") || strings.Contains(cn, "GPKI") {
			npki += len(results.ByIssuer(cn))
		}
	}
	fmt.Printf("hosts still serving NPKI/GPKI-issued certificates: %d\n", npki)
}
