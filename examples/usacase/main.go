// USA case study (§6.1): scan the authoritative GSA host lists, reproduce
// the certificate-issuer breakdown (Figure 8), the hosting analysis
// (§6.1.2) and the per-dataset appendix tables.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/govhttps"
)

func main() {
	study := govhttps.MustNewStudy(govhttps.SmallConfig())
	ctx := context.Background()

	for _, id := range []string{"F8", "F5", "TA1"} {
		out, err := govhttps.RunExperiment(ctx, study, id)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(out)
	}

	results := study.USAAll(ctx)
	tab := govhttps.SummarizeSet(results)
	fmt.Printf("USA case study: %.2f%% of https sites carry valid certificates (paper: 81.12%%)\n",
		tab.PctOfHTTPS(tab.Valid))
}
