// Disclosure campaign (§7.2): scan the world, notify every country's
// registrar about its broken government sites, then fast-forward two months
// and measure how much actually got fixed (§7.2.2).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/govhttps"
)

func main() {
	study := govhttps.MustNewStudy(govhttps.SmallConfig())
	ctx := context.Background()

	campaign := govhttps.Disclose(ctx, study)
	fmt.Printf("disclosure: %d reports, %d emails sent, %d delivered, %.1f%% response rate\n",
		len(campaign.Reports), campaign.EmailsSent, campaign.Delivered, 100*campaign.ResponseRate())
	fmt.Printf("skipped: %d all-https countries, %d territories\n\n",
		len(campaign.SkippedAllValid), len(campaign.SkippedTerritories))

	eff, err := govhttps.FollowUp(ctx, study, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two months later, of %d previously invalid hosts:\n", eff.PreviouslyInvalid)
	fmt.Printf("  fixed:          %d\n", eff.Fixed)
	fmt.Printf("  removed:        %d\n", eff.Unreachable)
	fmt.Printf("  still invalid:  %d\n", eff.StillInvalid)
	fmt.Printf("improvement: %.1f%% conservative / %.1f%% optimistic (paper: 8.3%% / 18.7%%)\n",
		100*eff.ImprovementConservative(), 100*eff.ImprovementOptimistic())
}
