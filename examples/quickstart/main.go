// Quickstart: build a small synthetic world, run the worldwide scan, and
// print the paper's headline result — Table 2, the validity and error
// taxonomy of government https adoption.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/govhttps"
)

func main() {
	// SmallConfig builds a 2%-scale world in milliseconds; swap in
	// DefaultConfig() for the full 135k-hostname reproduction.
	study := govhttps.MustNewStudy(govhttps.SmallConfig())
	ctx := context.Background()

	out, err := govhttps.RunExperiment(ctx, study, "T2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	// The same data is available programmatically from the indexed set.
	tab := govhttps.SummarizeSet(study.Worldwide(ctx))
	fmt.Printf("\nheadline: %.1f%% of government sites lack valid https\n",
		100-tab.PctOfTotal(tab.Valid))
}
