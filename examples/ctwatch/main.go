// Certificate-transparency monitoring (§2.2, §7.3.2, §8.2): audit the CT
// log's coverage of government certificates with Merkle proofs, then sweep
// the log for lookalike registrations — the etagov.sl-style phishing sites
// the paper responsibly disclosed.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/govhttps"
)

func main() {
	study := govhttps.MustNewStudy(govhttps.SmallConfig())
	ctx := context.Background()

	for _, id := range []string{"E1", "E2"} {
		out, err := govhttps.RunExperiment(ctx, study, id)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(out)
	}

	// The famous case, end to end: the Sri Lankan travel portal's Sierra
	// Leone twin carries a perfectly valid free certificate.
	results := govhttps.ScanHosts(ctx, study, []string{"eta.gov.lk", "etagov.sl"})
	for _, r := range results {
		fmt.Printf("%-12s valid https: %v (issuer %s)\n",
			r.Hostname, r.ValidHTTPS(), r.Chain[0].Issuer.CommonName)
	}
	fmt.Println("both certificates are cryptographically valid; only monitoring tells them apart")
}
