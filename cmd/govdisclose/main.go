// Command govdisclose runs the §7.2 responsible-disclosure campaign against
// the synthetic world: it scans, builds per-country vulnerability reports,
// emails the registrars, then applies the remediation model and measures
// notification effectiveness two months later (§7.2.2).
//
// Usage:
//
//	govdisclose [-seed 42] [-scale 1.0] [-journal path [-resume]]
//
// With -journal, the initial worldwide scan checkpoints to <path> and the
// two-months-later follow-up scan to <path>.followup; re-running with
// -resume continues either scan from the last completed host.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/notify"
	"repro/internal/report"
	"repro/internal/scanner"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	journal := flag.String("journal", "", "JSON-lines checkpoint journal path")
	resume := flag.Bool("resume", false, "resume from an existing -journal instead of starting fresh")
	flag.Parse()

	study, err := core.NewStudy(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "govdisclose:", err)
		os.Exit(1)
	}
	if *journal != "" {
		if err := study.SetCheckpoint(*journal, *resume); err != nil {
			fmt.Fprintln(os.Stderr, "govdisclose:", err)
			os.Exit(1)
		}
	}
	ctx := context.Background()

	before := study.Worldwide(ctx)
	study.CloseCheckpoint()
	reports := notify.BuildReports(before, nil)
	campaign := notify.Campaign(reports, study.Rand("disclosure"))
	fmt.Print(report.Campaign(campaign))
	fmt.Println()

	invalid := study.InvalidWorldwideHosts(ctx)
	study.World.Remediate(invalid, world.DefaultRemediationRates(), study.Rand("remediation"))

	var followJournal *scanner.Journal
	if *journal != "" {
		if !*resume {
			os.Remove(*journal + ".followup")
		}
		j, err := scanner.OpenJournal(*journal + ".followup")
		if err != nil {
			fmt.Fprintln(os.Stderr, "govdisclose:", err)
			os.Exit(1)
		}
		defer j.Close()
		followJournal = j
	}
	after := study.FollowUpScan(ctx, func(cfg *scanner.Config) {
		cfg.Seed = *seed
		cfg.Journal = followJournal
	})
	eff, err := notify.MeasureEffectiveness(before, after)
	if err != nil {
		fmt.Fprintln(os.Stderr, "govdisclose:", err)
		os.Exit(1)
	}
	fmt.Print(report.Effectiveness(eff))
}
