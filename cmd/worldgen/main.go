// Command worldgen builds the synthetic government-web world and prints a
// summary of its populations — a quick way to inspect what the scanners
// will be measuring.
//
// Usage:
//
//	worldgen [-seed 42] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale (1.0 = paper scale)")
	topCountries := flag.Int("top", 15, "countries to list")
	flag.Parse()

	w, err := world.Build(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}

	fmt.Printf("world seed=%d scale=%.3f\n\n", *seed, *scale)
	fmt.Printf("worldwide government hostnames: %d\n", len(w.GovHosts))
	fmt.Printf("unreachable hostnames:          %d\n", len(w.UnreachableHosts))
	fmt.Printf("seed list:                      %d\n", len(w.SeedHosts))
	fmt.Printf("hand-curated whitelist:         %d\n", len(w.Whitelist))
	fmt.Printf("countries represented:          %d\n", len(w.ByCountry))
	fmt.Printf("GSA datasets:                   %d (union %d hosts)\n",
		len(w.USA.Datasets), len(w.USA.AllHosts()))
	fmt.Printf("ROK Government24 hosts:         %d\n", len(w.ROK.Hosts))
	fmt.Printf("top-million list size:          %d (gov in Tranco: %d)\n",
		w.TopLists.Max, len(w.TopLists.TrancoGov))

	type cc struct {
		code string
		n    int
	}
	var counts []cc
	for code, hosts := range w.ByCountry {
		counts = append(counts, cc{code, len(hosts)})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].n > counts[j].n })
	fmt.Printf("\nlargest country populations:\n")
	for i, c := range counts {
		if i >= *topCountries {
			break
		}
		fmt.Printf("  %-3s %d\n", c.code, c.n)
	}
}
