// Command govcrawl runs the §4.2.2 dataset-expansion crawl: starting from
// the merged top-million seed list it follows page links with valid country
// codes for seven levels of depth, printing the Figure A.4 growth trace.
//
// Usage:
//
//	govcrawl [-seed 42] [-scale 1.0] [-depth 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/crawler"
	"repro/internal/govfilter"
	"repro/internal/report"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	depth := flag.Int("depth", 7, "maximum crawl depth")
	flag.Parse()

	w, err := world.Build(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "govcrawl:", err)
		os.Exit(1)
	}
	c := crawler.New(&crawler.WebFetcher{Dialer: w.Net, Resolver: w.DNS, Vantage: "lab"})
	c.MaxDepth = *depth

	hosts, stats := c.Crawl(context.Background(), w.SeedHosts)
	fmt.Print(report.Crawl(stats))

	gov := govfilter.New()
	govCount := 0
	for _, h := range hosts {
		if gov.IsGov(h) {
			govCount++
		}
	}
	fmt.Printf("\ncrawl grew %d seeds into %d unique hosts (%d government)\n",
		len(w.SeedHosts), len(hosts), govCount)
}
