// Command govscan runs the paper's scanning pipeline against the synthetic
// world and prints the Table 2 breakdown for the selected dataset.
//
// Usage:
//
//	govscan [-seed 42] [-scale 1.0] [-dataset worldwide|usa:all|rok] [-store apple]
//	        [-flaky 0.05] [-journal scan.jsonl [-resume]] [-breaker 5] [-shards 8]
//
// -dataset takes any name in the study's dataset registry: "worldwide",
// "usa:<key>" for one GSA dataset, "usa:all" (alias "usa") for their
// union, or "rok". An unknown name lists the registry.
//
// With -journal, every completed host is checkpointed to a JSON-lines
// journal; re-running with -resume picks up from the last completed host
// instead of restarting the scan from zero. -flaky injects transient
// faults (flaky dials, latency) into the world; -breaker enables the
// per-provider circuit breaker.
//
// -shards splits the scan across N independent workers, each building its
// own index shard, merged deterministically at the end — bit-identical to
// a sequential scan on fault-free worlds. 1 forces the sequential path; 0
// (default) shards large corpora automatically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/scanner"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	dataset := flag.String("dataset", "worldwide", "registry dataset: worldwide, usa:<key>, usa:all (alias usa), rok")
	store := flag.String("store", "apple", "trust store: apple, microsoft, nss")
	jsonOut := flag.Bool("json", false, "emit zgrab-style JSON lines instead of Table 2")
	flaky := flag.Float64("flaky", 0, "fraction of https sites given transient faults")
	journal := flag.String("journal", "", "JSON-lines checkpoint journal path")
	resume := flag.Bool("resume", false, "resume from an existing -journal instead of starting fresh")
	breaker := flag.Int("breaker", 0, "open a provider circuit after N consecutive dial timeouts (0 = off)")
	cooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit stays open")
	shards := flag.Int("shards", 0, "scan shards: >1 forces sharded scanning, 1 sequential, 0 auto")
	flag.Parse()

	study, err := core.NewStudy(world.Config{Seed: *seed, Scale: *scale, Flakiness: *flaky})
	if err != nil {
		fatal(err)
	}
	if err := study.UseStore(*store); err != nil {
		fatal(err)
	}
	study.SetShards(*shards)
	if *resume && *journal == "" {
		fatal(fmt.Errorf("-resume requires -journal"))
	}
	if *journal != "" {
		if err := study.SetCheckpoint(*journal, *resume); err != nil {
			fatal(err)
		}
		defer study.CloseCheckpoint()
	}
	var brk *scanner.Breaker
	if *breaker > 0 {
		brk = scanner.NewBreaker(*breaker, *cooldown, study.World.Clock)
		study.SetBreaker(brk)
	}

	ctx := context.Background()
	name := *dataset
	if name == "usa" {
		name = "usa:all"
	}
	start := time.Now() //lint:allow walltime operator telemetry: reports how long the real run took, never feeds results
	set, err := study.Dataset(ctx, name)
	if err != nil {
		fatal(fmt.Errorf("unknown dataset %q (registry: %v)", *dataset, study.DatasetNames()))
	}
	took := time.Since(start) //lint:allow walltime operator telemetry: reports how long the real run took, never feeds results

	if brk != nil && brk.Trips() > 0 {
		fmt.Fprintf(os.Stderr, "circuit breaker: %d trips, %d dials suppressed\n", brk.Trips(), brk.Skips())
	}
	if *jsonOut {
		if err := set.WriteJSONL(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, report.Scan(set, took))
		return
	}
	fmt.Print(report.Scan(set, took))
	fmt.Println()
	fmt.Print(report.Table2(analysis.ComputeTable2(set)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govscan:", err)
	os.Exit(1)
}
