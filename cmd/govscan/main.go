// Command govscan runs the paper's scanning pipeline against the synthetic
// world and prints the Table 2 breakdown for the selected dataset.
//
// Usage:
//
//	govscan [-seed 42] [-scale 1.0] [-dataset worldwide|usa|rok] [-store apple]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/scanner"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	dataset := flag.String("dataset", "worldwide", "worldwide, usa, or rok")
	store := flag.String("store", "apple", "trust store: apple, microsoft, nss")
	jsonOut := flag.Bool("json", false, "emit zgrab-style JSON lines instead of Table 2")
	flag.Parse()

	study, err := core.NewStudy(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	if err := study.UseStore(*store); err != nil {
		fatal(err)
	}

	ctx := context.Background()
	start := time.Now()
	var results []scanner.Result
	switch *dataset {
	case "worldwide":
		results = study.Worldwide(ctx)
	case "usa":
		results = study.USAAll(ctx)
	case "rok":
		results = study.ROK(ctx)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	took := time.Since(start)

	if *jsonOut {
		if err := scanner.WriteJSONL(os.Stdout, results); err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, report.Scan(results, took))
		return
	}
	fmt.Print(report.Scan(results, took))
	fmt.Println()
	fmt.Print(report.Table2(analysis.ComputeTable2(results)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govscan:", err)
	os.Exit(1)
}
