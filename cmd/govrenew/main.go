// Command govrenew runs the §8.1 automated remediation loop: scan the
// worldwide corpus, enroll every host the checklist marks AdoptHTTPS or
// FixCertificate, and drive an ACME renewal fleet over the virtual clock
// until the campaign horizon — printing the per-tick adoption curve, the
// error-class histogram and the terminal long tail.
//
// Usage:
//
//	govrenew [-seed 42] [-scale 1.0] [-days 120] [-tick 24h] [-workers 4]
//	         [-global-limit 0] [-chaos] [-v]
//
// -global-limit caps new orders per 24h window (0 derives a cap that
// spreads the campaign over roughly three weeks); the fleet mirrors the
// cap client-side, so it paces itself instead of harvesting 429s. -chaos
// applies the default fault profile (flaky dials, truncated responses,
// CAA denials) to the enrolled population before the campaign starts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/acme"
	"repro/internal/acmefleet"
	"repro/internal/core"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	days := flag.Int("days", 120, "campaign horizon in simulated days")
	tick := flag.Duration("tick", 24*time.Hour, "scheduler tick")
	workers := flag.Int("workers", 4, "order-dispatch concurrency (output is identical at any value)")
	globalLimit := flag.Int("global-limit", 0, "new orders per 24h window (0 = derive from population)")
	chaos := flag.Bool("chaos", false, "inject the default fault profile before the campaign")
	verbose := flag.Bool("v", false, "print every tick instead of every 10th")
	flag.Parse()

	study, err := core.NewStudy(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	start := time.Now() //lint:allow walltime operator telemetry: reports how long the real run took, never feeds results
	set, err := study.Dataset(ctx, "worldwide")
	if err != nil {
		fatal(err)
	}
	enrolled := acmefleet.Enroll(set)
	if len(enrolled) == 0 {
		fatal(fmt.Errorf("nothing to renew: the scan recommends no certificate deployments"))
	}
	if *chaos {
		hosts := make([]string, len(enrolled))
		for i, e := range enrolled {
			hosts[i] = e.Hostname
		}
		out := acmefleet.DefaultChaos().Apply(study.World, hosts, *seed)
		fmt.Printf("chaos: %d flaky, %d truncating, %d CAA-denied hosts\n",
			len(out.Flaky), len(out.Truncated), len(out.CAADenied))
	}

	limit := *globalLimit
	if limit <= 0 {
		limit = len(enrolled)/20 + 5
	}
	cfg := acmefleet.Config{
		Seed:    *seed,
		Horizon: time.Duration(*days) * 24 * time.Hour,
		Tick:    *tick,
		Workers: *workers,
		Limits: acme.RateLimits{
			Global:          limit,
			GlobalWindow:    24 * time.Hour,
			PerDomain:       5,
			PerDomainWindow: 7 * 24 * time.Hour,
		},
	}
	fleet := acmefleet.New(study.World, set, cfg)
	rep := fleet.Run(ctx)
	took := time.Since(start) //lint:allow walltime operator telemetry: reports how long the real run took, never feeds results

	fmt.Printf("enrolled %d hosts, global limit %d orders/day\n\n", rep.Enrolled, limit)
	fmt.Println("tick  renewed  parked  denied  pending  attempts  errs(net/chal/rate/caa/key/other)")
	for i, sn := range rep.Snapshots {
		if !*verbose && i%10 != 0 && i != len(rep.Snapshots)-1 {
			continue
		}
		fmt.Printf("%4d  %7d  %6d  %6d  %7d  %8d  %d/%d/%d/%d/%d/%d\n",
			sn.Tick, sn.Renewed, sn.Parked, sn.Denied, sn.Enrolled, sn.Attempts,
			sn.Errors[acmefleet.ErrNetwork], sn.Errors[acmefleet.ErrChallenge],
			sn.Errors[acmefleet.ErrRateLimited], sn.Errors[acmefleet.ErrCAA],
			sn.Errors[acmefleet.ErrKeyReuse], sn.Errors[acmefleet.ErrOther])
	}
	final := rep.Final()
	fmt.Printf("\nfinal: %d/%d renewed (%.1f%%), %d rotations, converged=%v\n",
		final.Renewed, rep.Enrolled, 100*float64(final.Renewed)/float64(rep.Enrolled),
		final.Renewals, rep.Converged())
	var parked, denied int
	for _, h := range rep.Hosts {
		if h.Terminal {
			switch h.State {
			case acmefleet.FleetParked:
				parked++
			case acmefleet.FleetDenied:
				denied++
			default:
				// Terminal is only ever set alongside Parked or Denied.
			}
		}
	}
	fmt.Printf("terminal long tail: %d parked, %d denied\n", parked, denied)
	fmt.Fprintf(os.Stderr, "campaign simulated %d days in %v\n", *days, took.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govrenew:", err)
	os.Exit(1)
}
