// Command govserve serves the study's datasets over HTTP: Table-2
// aggregates, per-country / per-issuer / per-category breakdowns,
// single-host lookup, and streaming JSONL export — the query surface for
// the paper's results (ROADMAP item 2).
//
// Every request pins the dataset generation it resolves, so the
// observatory's MarkDirty/ApplyDelta churn (and trust-store switches)
// swap snapshots atomically underneath live queries; hot aggregates come
// out of a sharded generation-keyed response cache.
//
// Usage:
//
//	govserve [-addr :8419] [-seed 42] [-scale 1.0] [-warm]
//	         [-cache-shards 16] [-cache-mb 64] [-no-cache]
//	         [-query-conc 256] [-export-conc 32] [-page 100]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/world"
)

func main() {
	addr := flag.String("addr", ":8419", "listen address")
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	warm := flag.Bool("warm", true, "scan the worldwide dataset before listening")
	shards := flag.Int("cache-shards", 16, "response-cache shard count (rounded to a power of two)")
	cacheMB := flag.Int("cache-mb", 64, "response-cache budget in MiB")
	noCache := flag.Bool("no-cache", false, "disable the response cache")
	queryConc := flag.Int("query-conc", 256, "max in-flight query requests before 503")
	exportConc := flag.Int("export-conc", 32, "max in-flight export streams before 503")
	page := flag.Int("page", 100, "host-listing page size cap")
	flag.Parse()

	study, err := core.NewStudy(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "govserve:", err)
		os.Exit(1)
	}
	if *warm {
		// Pre-scan the default dataset so the first query pays cache
		// fill, not a corpus scan.
		if _, err := study.Dataset(context.Background(), "worldwide"); err != nil {
			fmt.Fprintln(os.Stderr, "govserve:", err)
			os.Exit(1)
		}
	}

	srv := serve.New(study.Registry(), serve.Config{
		Cache:             serve.CacheConfig{Shards: *shards, MaxBytes: *cacheMB << 20},
		CacheDisabled:     *noCache,
		QueryConcurrency:  *queryConc,
		ExportConcurrency: *exportConc,
		PageLimit:         *page,
	})

	fmt.Printf("govserve: %d datasets registered, listening on %s\n",
		len(study.DatasetNames()), *addr)
	for _, name := range study.DatasetNames() {
		fmt.Printf("  dataset %s\n", name)
	}
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "govserve:", err)
		os.Exit(1)
	}
}
