// Command govwatch runs the CT-based monitoring of §7.3.2/§8.2: audit the
// log's coverage of government certificates, verify Merkle proofs against
// the tree head, and sweep the log for lookalike registrations imitating
// government hostnames.
//
// With -observe it runs the continuous observatory instead: a baseline
// scan of the government corpus, then a churn-driven loop that tails the
// CT log and the world's change events into a priority re-scan queue,
// patches the result set incrementally, and prints the adoption
// trajectory the periodic snapshots trace.
//
// Usage:
//
//	govwatch [-seed 42] [-scale 1.0] [-max 20]
//	govwatch -observe [-seed 42] [-scale 0.1] [-days 30] [-churn 25] [-workers 16]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/certwatch"
	"repro/internal/ctlog"
	"repro/internal/observatory"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	max := flag.Int("max", 20, "findings to print")
	observe := flag.Bool("observe", false, "run the continuous observatory loop")
	days := flag.Int("days", 30, "observatory horizon in virtual days")
	churn := flag.Int("churn", 25, "background churn per tick (hosts)")
	workers := flag.Int("workers", 16, "re-scan concurrency")
	flag.Parse()

	w, err := world.Build(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "govwatch:", err)
		os.Exit(1)
	}

	if *observe {
		runObservatory(w, *seed, *days, *churn, *workers, *max)
		return
	}

	log := w.CT
	cov := log.MeasureCoverage(w.GovLeafCerts())
	fmt.Printf("CT log %q: %d entries\n", log.Name(), log.Size())
	fmt.Printf("government-certificate coverage: %d/%d (%.1f%%)\n", cov.Logged, cov.Total, cov.Pct())

	// Audit the head before trusting anything the log says.
	size := log.Size()
	if size >= 2 {
		root := log.Root()
		proof, err := log.InclusionProof(size-1, size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "govwatch:", err)
			os.Exit(1)
		}
		entry := log.Entries()[size-1]
		ok := ctlog.VerifyInclusion(root, ctlog.LeafHash(entry.Cert.Encode()), size-1, size, proof)
		fmt.Printf("latest-entry inclusion proof: verified=%v\n\n", ok)
	}

	watcher := certwatch.NewWatcher(w.GovHosts)
	matches := watcher.ScanLog(log)
	fmt.Printf("lookalike certificates flagged: %d\n", len(matches))
	for i, m := range matches {
		if i >= *max {
			fmt.Printf("... %d more\n", len(matches)-*max)
			break
		}
		fmt.Printf("  %-30s imitates %-30s (%s)\n", m.Candidate, m.Target, m.Rule)
	}
}

// runObservatory takes the baseline scan and drives the continuous loop.
func runObservatory(w *world.World, seed int64, days, churn, workers, max int) {
	fmt.Printf("baseline scan: %d government hosts\n", len(w.GovHosts))
	s := scanner.New(w.Net, w.DNS, w.Class, scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
	raw := s.ScanAll(context.Background(), w.GovHosts)
	rankByHost := make(map[string]int, len(w.TopLists.TrancoGov))
	for _, rh := range w.TopLists.TrancoGov {
		rankByHost[rh.Host] = rh.Rank
	}
	rankOf := func(h string) (int, bool) {
		r, ok := rankByHost[h]
		return r, ok
	}
	base := resultset.New(raw, resultset.Options{
		CountryOf:   w.CountryOf,
		RankOf:      rankOf,
		RankBuckets: 50,
		RankMax:     w.TopLists.Max,
	})

	o := observatory.New(w, base, observatory.Config{
		Seed:         seed,
		Horizon:      time.Duration(days) * 24 * time.Hour,
		Workers:      workers,
		ChurnPerTick: churn,
	})
	rep, err := o.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "govwatch:", err)
		os.Exit(1)
	}

	fmt.Printf("observed %d virtual days in %d ticks: %d re-scans, %d still queued\n",
		days, len(rep.Ticks), rep.TotalScanned(), rep.Final().Deferred)
	fmt.Printf("lookalike alerts from the CT tail: %d\n", len(rep.Alerts))
	for i, m := range rep.Alerts {
		if i >= max {
			fmt.Printf("... %d more\n", len(rep.Alerts)-max)
			break
		}
		fmt.Printf("  %-30s imitates %-30s (%s)\n", m.Candidate, m.Target, m.Rule)
	}
	fmt.Printf("\nadoption trajectory (%d samples):\n", len(rep.Trajectory.Points))
	os.Stdout.Write(rep.Trajectory.Bytes())
	fmt.Printf("net valid-https change: %+d hosts\n", rep.Trajectory.AdoptionDelta())
	c := rep.FinalCounts
	fmt.Printf("final: total=%d valid=%d invalid=%d http-only=%d unavailable=%d\n",
		c.Total, c.Valid, c.Invalid, c.HTTPOnly, c.Unavailable)
}
