// Command govwatch runs the CT-based monitoring of §7.3.2/§8.2: audit the
// log's coverage of government certificates, verify Merkle proofs against
// the tree head, and sweep the log for lookalike registrations imitating
// government hostnames.
//
// Usage:
//
//	govwatch [-seed 42] [-scale 1.0] [-max 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/certwatch"
	"repro/internal/ctlog"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	max := flag.Int("max", 20, "findings to print")
	flag.Parse()

	w, err := world.Build(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "govwatch:", err)
		os.Exit(1)
	}
	log := w.CT
	cov := log.MeasureCoverage(w.GovLeafCerts())
	fmt.Printf("CT log %q: %d entries\n", log.Name(), log.Size())
	fmt.Printf("government-certificate coverage: %d/%d (%.1f%%)\n", cov.Logged, cov.Total, cov.Pct())

	// Audit the head before trusting anything the log says.
	size := log.Size()
	if size >= 2 {
		root := log.Root()
		proof, err := log.InclusionProof(size-1, size)
		if err != nil {
			fmt.Fprintln(os.Stderr, "govwatch:", err)
			os.Exit(1)
		}
		entry := log.Entries()[size-1]
		ok := ctlog.VerifyInclusion(root, ctlog.LeafHash(entry.Cert.Encode()), size-1, size, proof)
		fmt.Printf("latest-entry inclusion proof: verified=%v\n\n", ok)
	}

	watcher := certwatch.NewWatcher(w.GovHosts)
	matches := watcher.ScanLog(log)
	fmt.Printf("lookalike certificates flagged: %d\n", len(matches))
	for i, m := range matches {
		if i >= *max {
			fmt.Printf("... %d more\n", len(matches)-*max)
			break
		}
		fmt.Printf("  %-30s imitates %-30s (%s)\n", m.Candidate, m.Target, m.Rule)
	}
}
