// Command govlint enforces the repository's determinism, taxonomy, and
// concurrency invariants: no wall-clock reads outside sanctioned packages
// (walltime), no process-global or constant-seeded RNGs (globalrand), no
// unordered map iteration in deterministic packages (maprange), no enum
// switch that silently drops a taxonomy class (exhaustive), experiment
// Datasets declarations that match what Run actually fetches
// (datasetdecl), no unsynchronised writes across goroutine spawns
// (goroutineowner), zero-allocation idioms on the declared hot paths
// (hotalloc), and no goroutines parked forever on unbuffered channels
// (chanleak). See internal/lint for the framework and DESIGN.md "Static
// analysis & enforced invariants" for the rationale.
//
// Usage:
//
//	govlint [-json] [-j N] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/scanner"); the default is "./...". govlint must
// run from inside the module so imports resolve. -j bounds the package
// loader's worker pool (0 = auto). -json emits one finding per line as a
// JSON object — including suppressed findings, marked as such — for
// machine consumption; the human format drops suppressed findings. Exit
// status is 0 when the tree is clean, 1 when findings were reported, 2 on
// load errors. Wall time is reported on stderr either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/lint"
)

// jsonFinding is the one-object-per-line wire form of a finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding (including suppressed findings)")
	workers := flag.Int("j", 0, "package loader workers (0 = auto)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: govlint [-json] [-j N] [packages]\n\nChecks:\n")
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nSuppress a finding with `//lint:allow <check> <reason>` on or above the line.\n")
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	//lint:allow walltime measures the linter's own wall time for the CI log; no simulation state involved
	start := time.Now()
	all, err := lint.RunAll(".", patterns, lint.DefaultAnalyzers(), *workers)
	//lint:allow walltime measures the linter's own wall time for the CI log; no simulation state involved
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "govlint:", err)
		os.Exit(2)
	}

	var active int
	enc := json.NewEncoder(os.Stdout)
	for _, f := range all {
		if !f.Suppressed {
			active++
		}
		if *jsonOut {
			enc.Encode(jsonFinding{
				File:       f.Pos.Filename,
				Line:       f.Pos.Line,
				Col:        f.Pos.Column,
				Check:      f.Check,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		} else if !f.Suppressed {
			fmt.Println(f)
		}
	}
	fmt.Fprintf(os.Stderr, "govlint: %d finding(s), %d suppressed, %s wall\n",
		active, len(all)-active, elapsed.Round(time.Millisecond))
	if active > 0 {
		os.Exit(1)
	}
}
