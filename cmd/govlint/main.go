// Command govlint enforces the repository's determinism and taxonomy
// invariants: no wall-clock reads outside sanctioned packages (walltime),
// no process-global or constant-seeded RNGs (globalrand), no unordered map
// iteration in deterministic packages (maprange), and no enum switch that
// silently drops a taxonomy class (exhaustive). See internal/lint for the
// framework and DESIGN.md "Static analysis & enforced invariants" for the
// rationale.
//
// Usage:
//
//	govlint [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/scanner"); the default is "./...". govlint must
// run from inside the module so imports resolve. Exit status is 0 when the
// tree is clean, 1 when findings were reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: govlint [packages]\n\nChecks:\n")
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nSuppress a finding with `//lint:allow <check> <reason>` on or above the line.\n")
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(".", patterns, lint.DefaultAnalyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "govlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "govlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
