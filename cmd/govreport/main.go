// Command govreport regenerates the paper's tables and figures.
//
// Usage:
//
//	govreport -list                 # show the experiment registry
//	govreport -datasets             # show the dataset registry
//	govreport -exp T2               # one experiment
//	govreport -all                  # every experiment in order
//	govreport -all -jobs 4          # same output, scheduled concurrently
//	govreport -all -scale 0.05      # faster, scaled-down world
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "world seed")
	scale := flag.Float64("scale", 1.0, "population scale")
	exp := flag.String("exp", "", "experiment ID (e.g. T2, F7, TA1)")
	all := flag.Bool("all", false, "run every experiment")
	jobs := flag.Int("jobs", 0, "experiment/dataset concurrency for -all (0 = GOMAXPROCS, 1 = sequential)")
	list := flag.Bool("list", false, "list experiments")
	datasets := flag.Bool("datasets", false, "list the named datasets the experiments scan")
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" && !*all && !*datasets {
		fmt.Fprintln(os.Stderr, "govreport: pass -exp <ID>, -all, -datasets, or -list")
		os.Exit(2)
	}

	study, err := core.NewStudy(world.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	if *datasets {
		for _, name := range study.DatasetNames() {
			fmt.Println(name)
		}
		return
	}

	if *all {
		results, err := core.RunAllExperiments(ctx, study, core.SuiteOptions{Jobs: *jobs})
		for _, r := range results {
			if werr := report.WriteArtifact(os.Stdout, r.ID, r.Title, r.Output); werr != nil {
				fatal(werr)
			}
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	out, err := core.RunExperiment(ctx, study, *exp)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "govreport:", err)
	os.Exit(1)
}
