#!/usr/bin/env bash
# lint.sh runs the same static checks as the CI lint job: the repo's own
# govlint determinism/taxonomy checker, then go vet. Run it from anywhere
# inside the repo; it operates on the module root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== govlint ./..."
go run ./cmd/govlint ./...

echo "== go vet ./..."
go vet ./...

echo "lint: clean"
