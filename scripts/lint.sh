#!/usr/bin/env bash
# lint.sh runs the same static checks as the CI lint job: the repo's own
# govlint determinism/taxonomy/concurrency checker, then go vet. Run it
# from anywhere inside the repo; it operates on the module root.
#
# govlint runs in -json mode so the findings (including suppressed ones)
# can be rendered into the GitHub Actions step summary when
# $GITHUB_STEP_SUMMARY is set. govlint's own stderr line carries the
# finding counts and wall time either way.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== govlint -json ./..."
lint_json=$(mktemp)
lint_status=0
go run ./cmd/govlint -json ./... >"$lint_json" || lint_status=$?

# Unsuppressed findings, one JSON object per line, straight to the log.
grep '"suppressed":false' "$lint_json" || true

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "### govlint"
    echo
    total=$(wc -l <"$lint_json" | tr -d ' ')
    active=$(grep -c '"suppressed":false' "$lint_json" || true)
    echo "- findings: **${active}** (suppressed: $((total - active)))"
    if [ "$active" -gt 0 ]; then
      echo
      echo '```json'
      grep '"suppressed":false' "$lint_json"
      echo '```'
    fi
  } >>"$GITHUB_STEP_SUMMARY"
fi

rm -f "$lint_json"
if [ "$lint_status" -ne 0 ]; then
  echo "govlint: findings reported (exit $lint_status)" >&2
  exit "$lint_status"
fi

echo "== go vet ./..."
go vet ./...

echo "lint: clean"
