#!/usr/bin/env bash
# bench_scan.sh — run the scan-path benchmarks and emit BENCH_scan.json
# comparing the current tree against the recorded pre-overhaul baselines.
#
# The baselines were measured on the same class of host the CI bench job
# uses (one core, default GOVHTTPS_BENCH_SCALE=0.05): the scan-path numbers
# at the commit before the throughput overhaul (verify cache, worker-pool
# ScanAll, batched journal, parallel world build), and ReportSuite /
# JSONExport allocs at the commit before the experiment scheduler and the
# zero-copy exporter.
#
# Pairs whose baseline is a live benchmark (ReportSuite vs
# ReportSuiteSequential, AggregateIndexed/AggregateSharded vs
# AggregateLegacy) re-derive the baseline from the same run on the same
# commit, so the table can't silently compare different workloads.
#
# The job fails (non-zero exit) if:
#   - JSONExport allocates more per op than the recorded pre-rewrite
#     baseline: the zero-copy exporter must not regress back toward
#     reflection-based encoding; or
#   - the sharded merged index build (best shard count) is slower than
#     the legacy per-experiment aggregation loops: partition + per-shard
#     build + deterministic merge must never cost more than the loops it
#     replaced.
#
# Usage: scripts/bench_scan.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_scan.json}"

# One `go test` process per benchmark: heap state left behind by one
# benchmark (a worldwide scan leaves ~70 MB of results) skews the GC
# behaviour of the next, and the baselines were recorded per-benchmark.
#
# AggregateIndexed/AggregateSharded/AggregateLegacy measure the
# aggregation layer itself over one shared pre-collected result slice
# (the scan runs outside every timed region): the one-shot indexed build,
# the partitioned per-shard builds recombined by the deterministic merge,
# and the per-experiment loops the analysis layer ran before the
# dataset-registry refactor. ReportSuite/ReportSuiteSequential are the
# same live pair for the experiment scheduler; ScanWorldwideSharded is
# the end-to-end shard-scaling curve (scan + build + merge).
raw=""
for b in ScanWorldwide ScanWorldwideSharded WorldBuild ScanSingleHost JSONExport ReportSuite ReportSuiteSequential AggregateIndexed AggregateSharded AggregateLegacy RenewalFleet; do
    raw+="$(go test -run '^$' -bench "^Benchmark${b}\$" -benchmem -count "${BENCH_COUNT:-3}" .)"
    raw+=$'\n'
done
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk -v out="$out" '
BEGIN {
    # ns/op at the recorded seed commits (one core, scale 0.05).
    base["ScanWorldwide"]  = 635628502
    base["WorldBuild"]     = 22436147
    base["ScanSingleHost"] = 101503
    base["JSONExport"]     = 8780592
    # ReportSuite has no recorded entry: its baseline is re-derived in END
    # from the same-run ReportSuiteSequential measurement, so the pair can
    # never compare different workloads (the old hard-coded number predated
    # the 36-experiment suite and produced a bogus speedup).
    # allocs/op of the reflection-based JSON exporter before the
    # zero-copy rewrite; the gate below fails the job on regression.
    base_allocs["JSONExport"] = 18658
    order[1] = "ScanWorldwide"; order[2] = "WorldBuild"
    order[3] = "ScanSingleHost"; order[4] = "JSONExport"
    order[5] = "ReportSuite"
    nOrder = 5
    shardCounts = "1 2 4 8"
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    # Walk value/unit pairs so benchmarks with extra ReportMetric columns
    # (renewals/op) parse the same as plain -benchmem lines. Keep the best
    # of -count runs: least interference from the host.
    for (i = 3; i < NF; i += 2) {
        v = $(i) + 0
        u = $(i + 1)
        if (u == "ns/op" && (!(name in cur) || v < cur[name])) cur[name] = v
        else if (u == "allocs/op" && (!(name in allocs) || v < allocs[name])) allocs[name] = v
        else if (u == "renewals/op") renewals[name] = v
    }
}
END {
    # Satellite fix: the scheduled suite is baselined against the
    # sequential run from this same invocation, not a recorded number.
    base["ReportSuite"] = cur["ReportSuiteSequential"]
    printf "{\n  \"scale\": %s,\n", (ENVIRON["GOVHTTPS_BENCH_SCALE"] != "" ? ENVIRON["GOVHTTPS_BENCH_SCALE"] : "0.05") > out
    printf "  \"baseline_ns_per_op\": {" > out
    for (i = 1; i <= nOrder; i++)
        printf "%s\n    \"%s\": %d", (i > 1 ? "," : ""), order[i], base[order[i]] > out
    printf "\n  },\n  \"current_ns_per_op\": {" > out
    for (i = 1; i <= nOrder; i++)
        printf "%s\n    \"%s\": %d", (i > 1 ? "," : ""), order[i], cur[order[i]] > out
    printf "\n  },\n  \"speedup\": {" > out
    for (i = 1; i <= nOrder; i++)
        printf "%s\n    \"%s\": %.2f", (i > 1 ? "," : ""), order[i],
            (cur[order[i]] > 0 ? base[order[i]] / cur[order[i]] : 0) > out
    # Aggregation pair: the legacy per-experiment loops are the baseline,
    # measured live in the same run rather than hard-coded.
    printf "\n  },\n  \"aggregation\": {\n" > out
    printf "    \"indexed_ns_per_op\": %d,\n", cur["AggregateIndexed"] > out
    printf "    \"legacy_ns_per_op\": %d,\n", cur["AggregateLegacy"] > out
    printf "    \"speedup\": %.2f\n", (cur["AggregateIndexed"] > 0 ? cur["AggregateLegacy"] / cur["AggregateIndexed"] : 0) > out
    # Sharded aggregation curve: per-shard concurrent builds + the
    # deterministic merge, against the same legacy loops over the same
    # slice. best_speedup feeds the regression gate below.
    printf "  },\n  \"aggregation_sharded\": {\n" > out
    printf "    \"legacy_ns_per_op\": %d,\n    \"shards_ns_per_op\": {", cur["AggregateLegacy"] > out
    nShards = split(shardCounts, sc, " ")
    for (i = 1; i <= nShards; i++)
        printf "%s\n      \"%s\": %d", (i > 1 ? "," : ""), sc[i], cur["AggregateSharded/shards=" sc[i]] > out
    printf "\n    },\n    \"speedup_vs_legacy\": {" > out
    # best_speedup spans the merged builds only (shards >= 2): shards=1 is
    # the merge-free control and must not satisfy the merge gate below.
    bestSharded = 0
    for (i = 1; i <= nShards; i++) {
        v = cur["AggregateSharded/shards=" sc[i]]
        sp = (v > 0 ? cur["AggregateLegacy"] / v : 0)
        if (sc[i] != "1" && sp > bestSharded) bestSharded = sp
        printf "%s\n      \"%s\": %.2f", (i > 1 ? "," : ""), sc[i], sp > out
    }
    printf "\n    },\n    \"best_speedup\": %.2f\n", bestSharded > out
    # End-to-end shard-scaling curve: partition + concurrent scan/build +
    # merge, scan included (shards=1 is the sequential control).
    printf "  },\n  \"scan_worldwide_sharded_ns_per_op\": {" > out
    for (i = 1; i <= nShards; i++)
        printf "%s\n    \"%s\": %d", (i > 1 ? "," : ""), sc[i], cur["ScanWorldwideSharded/shards=" sc[i]] > out
    printf "\n" > out
    # Report-suite pair: both sides of the speedup measured live in this
    # run — the sequential loop is the baseline for the scheduled run.
    printf "  },\n  \"report_suite\": {\n" > out
    printf "    \"scheduled_ns_per_op\": %d,\n", cur["ReportSuite"] > out
    printf "    \"sequential_ns_per_op\": %d,\n", cur["ReportSuiteSequential"] > out
    printf "    \"speedup_vs_sequential\": %.2f\n", (cur["ReportSuite"] > 0 ? cur["ReportSuiteSequential"] / cur["ReportSuite"] : 0) > out
    # Renewal fleet: throughput of the §8.1 remediation loop (campaign
    # renewals per wall-clock second) plus its allocation footprint.
    printf "  },\n  \"renewal_fleet\": {\n" > out
    printf "    \"renewals_per_op\": %d,\n", renewals["RenewalFleet"] > out
    printf "    \"renewals_per_sec\": %.1f,\n", (cur["RenewalFleet"] > 0 ? renewals["RenewalFleet"] / (cur["RenewalFleet"] / 1e9) : 0) > out
    printf "    \"allocs_per_op\": %d\n", allocs["RenewalFleet"] > out
    printf "  },\n  \"json_export_allocs_per_op\": {\n" > out
    printf "    \"baseline\": %d,\n", base_allocs["JSONExport"] > out
    printf "    \"current\": %d\n", allocs["JSONExport"] > out
    printf "  }\n}\n" > out
    if (allocs["JSONExport"] > base_allocs["JSONExport"]) {
        printf "FAIL: JSONExport allocs/op regressed: %d > baseline %d\n",
            allocs["JSONExport"], base_allocs["JSONExport"] > "/dev/stderr"
        exit 1
    }
    if (bestSharded < 1.0) {
        printf "FAIL: sharded merged build slower than legacy loops: best speedup %.2f < 1.00\n",
            bestSharded > "/dev/stderr"
        exit 1
    }
}
'
echo "wrote $out"
