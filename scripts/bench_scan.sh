#!/usr/bin/env bash
# bench_scan.sh — run the scan-path benchmarks and emit BENCH_scan.json
# comparing the current tree against the recorded pre-overhaul baselines.
#
# The baselines were measured on the same class of host the CI bench job
# uses (one core, default GOVHTTPS_BENCH_SCALE=0.05): the scan-path numbers
# at the commit before the throughput overhaul (verify cache, worker-pool
# ScanAll, batched journal, parallel world build), and ReportSuite /
# JSONExport allocs at the commit before the experiment scheduler and the
# zero-copy exporter.
#
# Pairs whose baseline is a live benchmark (ReportSuite vs
# ReportSuiteSequential, AggregateIndexed/AggregateSharded vs
# AggregateLegacy) re-derive the baseline from the same run on the same
# commit, so the table can't silently compare different workloads.
#
# Sharded-aggregation honesty: at the default bench scale (0.05 ≈ 6.7k
# hosts) the merged build with shards ≥ 2 is EXPECTED to lose to the
# legacy loops — the merge overhead only amortizes at scale, which is why
# core.Study auto-shards at autoShardHosts = 100k hosts and not below. So
# the aggregation pair is measured twice: once at the default scale
# (recorded, not gated) and once at GOVHTTPS_BENCH_SCALE=1.0 (135,309
# hosts, past the auto-shard threshold — the regime the production path
# actually runs sharded in). The JSON records scale, host count,
# GOMAXPROCS, and the measured crossover shard count for both.
#
# Incremental-patch honesty: ApplyDelta vs the Builder replay is measured
# at both scales and k ∈ {100, 1000, 10000} dirty hosts, recording the
# per-k speedup and the crossover k (the smallest k where the replay wins
# back; 0 when the delta wins everywhere measured). The observatory
# section records the continuous loop's wall clock and re-scan throughput.
#
# Report-suite honesty: the scheduled number is measured under the
# effective-parallelism policy (which falls back to the sequential loop
# on a 1-core host), and the forced-parallel number — the pool's true
# cost on this machine — is recorded right next to it, so the 0.88x that
# motivated the policy stays visible instead of being papered over.
#
# Serve: the query API is measured through the deterministic load
# generator at clients ∈ {1, 4, 16} for three mixes — cached aggregates,
# uncached aggregates, and streaming JSONL export — recording qps,
# p50/p99 latency, and allocs per request (allocs/op ÷ req/op).
#
# The job fails (non-zero exit) if:
#   - JSONExport allocates more per op than the recorded pre-rewrite
#     baseline: the zero-copy exporter must not regress back toward
#     reflection-based encoding; or
#   - at the auto-shard scale, with real parallelism available
#     (GOMAXPROCS >= 2), no shard count >= 2 beats the legacy loops:
#     that is the regime sharding exists for. On a single-core host the
#     auto-shard-scale numbers are recorded (crossover included) but the
#     gate is informational only — one core cannot be expected to pay the
#     merge and win on wall clock; or
#   - at the auto-shard scale, ApplyDelta with k=100 dirty hosts of the
#     ~135k corpus is not at least 5x faster than the Builder replay:
#     that margin is the reason dataset.Registry.patch reroutes through
#     the delta at all; or
#   - a cached serve query costs more than serve_allocs_budget allocations
#     per request at clients=1: the read-through cache exists so steady-
#     state hits stay off the aggregation path, and an allocation
#     regression there multiplies by every request the API serves.
#
# Usage: scripts/bench_scan.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_scan.json}"
gomaxprocs="${GOMAXPROCS:-$(nproc)}"
auto_scale="1.0"

# One `go test` process per benchmark: heap state left behind by one
# benchmark (a worldwide scan leaves ~70 MB of results) skews the GC
# behaviour of the next, and the baselines were recorded per-benchmark.
#
# AggregateIndexed/AggregateSharded/AggregateLegacy measure the
# aggregation layer itself over one shared pre-collected result slice
# (the scan runs outside every timed region): the one-shot indexed build,
# the partitioned per-shard builds recombined by the deterministic merge,
# and the per-experiment loops the analysis layer ran before the
# dataset-registry refactor. ReportSuite/ReportSuiteSequential are the
# same live pair for the experiment scheduler; ScanWorldwideSharded is
# the end-to-end shard-scaling curve (scan + build + merge).
raw=""
for b in ScanWorldwide ScanWorldwideSharded WorldBuild ScanSingleHost JSONExport ReportSuite ReportSuiteForced ReportSuiteSequential AggregateIndexed AggregateSharded AggregateLegacy RenewalFleet ApplyDelta ApplyDeltaRebuild Observatory ServeQuery ServeQueryUncached ServeExport; do
    raw+="$(go test -run '^$' -bench "^Benchmark${b}\$" -benchmem -count "${BENCH_COUNT:-3}" .)"
    raw+=$'\n'
done

# Second pass at the auto-shard scale: the world is 20x larger, so only
# the benchmarks the crossovers and the delta gate need rerun.
raw+="=== auto-shard scale ==="$'\n'
for b in AggregateSharded AggregateLegacy ApplyDelta ApplyDeltaRebuild; do
    raw+="$(GOVHTTPS_BENCH_SCALE=$auto_scale go test -run '^$' -bench "^Benchmark${b}\$" -benchmem -count "${BENCH_COUNT:-3}" .)"
    raw+=$'\n'
done
printf '%s\n' "$raw"

printf '%s\n' "$raw" | awk -v out="$out" -v gmp="$gomaxprocs" -v autoscale="$auto_scale" '
BEGIN {
    # ns/op at the recorded seed commits (one core, scale 0.05).
    base["ScanWorldwide"]  = 635628502
    base["WorldBuild"]     = 22436147
    base["ScanSingleHost"] = 101503
    base["JSONExport"]     = 8780592
    # ReportSuite has no recorded entry: its baseline is re-derived in END
    # from the same-run ReportSuiteSequential measurement, so the pair can
    # never compare different workloads (the old hard-coded number predated
    # the 36-experiment suite and produced a bogus speedup).
    # allocs/op of the reflection-based JSON exporter before the
    # zero-copy rewrite; the gate below fails the job on regression.
    base_allocs["JSONExport"] = 18658
    order[1] = "ScanWorldwide"; order[2] = "WorldBuild"
    order[3] = "ScanSingleHost"; order[4] = "JSONExport"
    order[5] = "ReportSuite"
    nOrder = 5
    shardCounts = "1 2 4 8"
    patchKs = "100 1000 10000"
    serveClients = "1 4 16"
    # Allocations allowed per cached serve request at clients=1 (measured
    # ~8.0 at the gate commit; the budget leaves margin for noise, not
    # for a reflection- or map-allocating regression).
    serve_allocs_budget = 10.0
    pfx = ""
}
/^=== auto-shard scale ===$/ { pfx = "auto:"; next }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    name = pfx name
    # Walk value/unit pairs so benchmarks with extra ReportMetric columns
    # (renewals/op, hosts/op) parse the same as plain -benchmem lines. Keep
    # the best of -count runs: least interference from the host.
    for (i = 3; i < NF; i += 2) {
        v = $(i) + 0
        u = $(i + 1)
        if (u == "ns/op" && (!(name in cur) || v < cur[name])) cur[name] = v
        else if (u == "allocs/op" && (!(name in allocs) || v < allocs[name])) allocs[name] = v
        else if (u == "renewals/op") renewals[name] = v
        else if (u == "rescans/op") rescans[name] = v
        else if (u == "hosts/op") hosts[name] = v
        else if (u == "req/op") reqs[name] = v
        else if (u == "p50-ns" && (!(name in p50) || v < p50[name])) p50[name] = v
        else if (u == "p99-ns" && (!(name in p99) || v < p99[name])) p99[name] = v
        else if (u == "qps" && v > qps[name]) qps[name] = v
    }
}
# shardBlock emits one aggregation_sharded JSON object for prefix p at
# scale s, returning the best shards>=2 speedup via the globals bestOf[p]
# and crossOf[p] (smallest winning shard count, 0 if none wins).
function shardBlock(p, s, gated,    i, n, sc, v, sp, legacy) {
    legacy = cur[p "AggregateLegacy"]
    printf "    \"scale\": %s,\n", s > out
    printf "    \"hosts\": %d,\n", hosts[p "AggregateLegacy"] > out
    printf "    \"gomaxprocs\": %d,\n", gmp > out
    printf "    \"legacy_ns_per_op\": %d,\n    \"shards_ns_per_op\": {", legacy > out
    n = split(shardCounts, sc, " ")
    for (i = 1; i <= n; i++)
        printf "%s\n      \"%s\": %d", (i > 1 ? "," : ""), sc[i], cur[p "AggregateSharded/shards=" sc[i]] > out
    printf "\n    },\n    \"speedup_vs_legacy\": {" > out
    # best spans the merged builds only (shards >= 2): shards=1 is the
    # merge-free control and must not satisfy the merge gate.
    bestOf[p] = 0; crossOf[p] = 0
    for (i = 1; i <= n; i++) {
        v = cur[p "AggregateSharded/shards=" sc[i]]
        sp = (v > 0 ? legacy / v : 0)
        if (sc[i] != "1") {
            if (sp > bestOf[p]) bestOf[p] = sp
            if (sp >= 1.0 && crossOf[p] == 0) crossOf[p] = sc[i]
        }
        printf "%s\n      \"%s\": %.2f", (i > 1 ? "," : ""), sc[i], sp > out
    }
    printf "\n    },\n    \"best_speedup\": %.2f,\n", bestOf[p] > out
    printf "    \"crossover_shards\": %d,\n", crossOf[p] > out
    printf "    \"gate_enforced\": %s\n", gated > out
}
# serveBlock emits one serve-mix JSON object: per-client-count ns/op,
# throughput, latency percentiles, and allocs per request.
function serveBlock(bench,    i, n, cl, nm, sep) {
    n = split(serveClients, cl, " ")
    sep = ""
    for (i = 1; i <= n; i++) {
        nm = bench "/clients=" cl[i]
        printf "%s\n      \"%s\": {", sep, cl[i] > out
        printf "\n        \"ns_per_op\": %d,", cur[nm] > out
        printf "\n        \"requests_per_op\": %d,", reqs[nm] > out
        printf "\n        \"qps\": %.0f,", qps[nm] > out
        printf "\n        \"p50_ns\": %d,", p50[nm] > out
        printf "\n        \"p99_ns\": %d,", p99[nm] > out
        printf "\n        \"allocs_per_req\": %.1f", (reqs[nm] > 0 ? allocs[nm] / reqs[nm] : 0) > out
        printf "\n      }" > out
        sep = ","
    }
    printf "\n" > out
}
# patchBlock emits one incremental_patch JSON object for prefix p at scale
# s: ApplyDelta vs the Builder replay per dirty-set size k, the k=100
# speedup via the global k100Of[p], and the crossover k (smallest measured
# k where the replay wins, 0 if the delta wins everywhere). Skipped ks
# (k >= corpus at the small scale) are omitted.
function patchBlock(p, s, gated,    i, n, kc, d, rb, sp, sep) {
    printf "    \"scale\": %s,\n", s > out
    printf "    \"hosts\": %d,\n", hosts[p "ApplyDelta/k=100"] > out
    printf "    \"delta_ns_per_op\": {" > out
    n = split(patchKs, kc, " ")
    sep = ""
    for (i = 1; i <= n; i++) {
        if (!((p "ApplyDelta/k=" kc[i]) in cur)) continue
        printf "%s\n      \"%s\": %d", sep, kc[i], cur[p "ApplyDelta/k=" kc[i]] > out
        sep = ","
    }
    printf "\n    },\n    \"rebuild_ns_per_op\": {" > out
    sep = ""
    for (i = 1; i <= n; i++) {
        if (!((p "ApplyDeltaRebuild/k=" kc[i]) in cur)) continue
        printf "%s\n      \"%s\": %d", sep, kc[i], cur[p "ApplyDeltaRebuild/k=" kc[i]] > out
        sep = ","
    }
    printf "\n    },\n    \"speedup_vs_rebuild\": {" > out
    k100Of[p] = 0; patchCross[p] = 0
    sep = ""
    for (i = 1; i <= n; i++) {
        d = cur[p "ApplyDelta/k=" kc[i]]
        rb = cur[p "ApplyDeltaRebuild/k=" kc[i]]
        if (d == 0 || rb == 0) continue
        sp = rb / d
        if (kc[i] == "100") k100Of[p] = sp
        if (sp < 1.0 && patchCross[p] == 0) patchCross[p] = kc[i]
        printf "%s\n      \"%s\": %.2f", sep, kc[i], sp > out
        sep = ","
    }
    printf "\n    },\n    \"crossover_k\": %d,\n", patchCross[p] > out
    printf "    \"gate_enforced\": %s\n", gated > out
}
END {
    # Satellite fix: the scheduled suite is baselined against the
    # sequential run from this same invocation, not a recorded number.
    base["ReportSuite"] = cur["ReportSuiteSequential"]
    gateAuto = (gmp >= 2 ? "true" : "false")
    printf "{\n  \"scale\": %s,\n", (ENVIRON["GOVHTTPS_BENCH_SCALE"] != "" ? ENVIRON["GOVHTTPS_BENCH_SCALE"] : "0.05") > out
    printf "  \"baseline_ns_per_op\": {" > out
    for (i = 1; i <= nOrder; i++)
        printf "%s\n    \"%s\": %d", (i > 1 ? "," : ""), order[i], base[order[i]] > out
    printf "\n  },\n  \"current_ns_per_op\": {" > out
    for (i = 1; i <= nOrder; i++)
        printf "%s\n    \"%s\": %d", (i > 1 ? "," : ""), order[i], cur[order[i]] > out
    printf "\n  },\n  \"speedup\": {" > out
    for (i = 1; i <= nOrder; i++)
        printf "%s\n    \"%s\": %.2f", (i > 1 ? "," : ""), order[i],
            (cur[order[i]] > 0 ? base[order[i]] / cur[order[i]] : 0) > out
    # Aggregation pair: the legacy per-experiment loops are the baseline,
    # measured live in the same run rather than hard-coded.
    printf "\n  },\n  \"aggregation\": {\n" > out
    printf "    \"indexed_ns_per_op\": %d,\n", cur["AggregateIndexed"] > out
    printf "    \"legacy_ns_per_op\": %d,\n", cur["AggregateLegacy"] > out
    printf "    \"speedup\": %.2f\n", (cur["AggregateIndexed"] > 0 ? cur["AggregateLegacy"] / cur["AggregateIndexed"] : 0) > out
    # Sharded aggregation at the default scale: recorded for the curve,
    # never gated — below autoShardHosts the merge overhead is expected to
    # lose, which is exactly why the production path does not shard there.
    printf "  },\n  \"aggregation_sharded\": {\n" > out
    shardBlock("", (ENVIRON["GOVHTTPS_BENCH_SCALE"] != "" ? ENVIRON["GOVHTTPS_BENCH_SCALE"] : "0.05"), "false")
    # Sharded aggregation at the auto-shard scale (the regime the
    # production path shards in); the merge gate reads this block.
    printf "  },\n  \"aggregation_sharded_auto_scale\": {\n" > out
    shardBlock("auto:", autoscale, gateAuto)
    # End-to-end shard-scaling curve: partition + concurrent scan/build +
    # merge, scan included (shards=1 is the sequential control).
    printf "  },\n  \"scan_worldwide_sharded_ns_per_op\": {" > out
    nShards = split(shardCounts, sc, " ")
    for (i = 1; i <= nShards; i++)
        printf "%s\n    \"%s\": %d", (i > 1 ? "," : ""), sc[i], cur["ScanWorldwideSharded/shards=" sc[i]] > out
    printf "\n" > out
    # Report-suite triple: all sides measured live in this run — the
    # sequential loop baselines both the policy run (which itself falls
    # back to sequential on a 1-core host) and the forced-parallel run
    # (the honest cost of the pool on this machine, recorded so the
    # 0.88x that motivated the fallback policy stays visible).
    printf "  },\n  \"report_suite\": {\n" > out
    printf "    \"gomaxprocs\": %d,\n", gmp > out
    printf "    \"scheduled_ns_per_op\": %d,\n", cur["ReportSuite"] > out
    printf "    \"forced_parallel_ns_per_op\": %d,\n", cur["ReportSuiteForced"] > out
    printf "    \"sequential_ns_per_op\": %d,\n", cur["ReportSuiteSequential"] > out
    printf "    \"speedup_vs_sequential\": %.2f,\n", (cur["ReportSuite"] > 0 ? cur["ReportSuiteSequential"] / cur["ReportSuite"] : 0) > out
    printf "    \"forced_speedup_vs_sequential\": %.2f\n", (cur["ReportSuiteForced"] > 0 ? cur["ReportSuiteSequential"] / cur["ReportSuiteForced"] : 0) > out
    # Incremental patch at the default scale: recorded for the curve, the
    # gate reads the auto-shard-scale block (the corpus the 5x claim is
    # about).
    printf "  },\n  \"incremental_patch\": {\n" > out
    patchBlock("", (ENVIRON["GOVHTTPS_BENCH_SCALE"] != "" ? ENVIRON["GOVHTTPS_BENCH_SCALE"] : "0.05"), "false")
    printf "  },\n  \"incremental_patch_auto_scale\": {\n" > out
    patchBlock("auto:", autoscale, "true")
    # Observatory: wall clock and re-scan throughput of the continuous
    # loop (20 virtual ticks, churn-injected private world per op).
    printf "  },\n  \"observatory\": {\n" > out
    printf "    \"ns_per_op\": %d,\n", cur["Observatory"] > out
    printf "    \"rescans_per_op\": %d,\n", rescans["Observatory"] > out
    printf "    \"rescans_per_sec\": %.1f,\n", (cur["Observatory"] > 0 ? rescans["Observatory"] / (cur["Observatory"] / 1e9) : 0) > out
    printf "    \"allocs_per_op\": %d\n", allocs["Observatory"] > out
    # Renewal fleet: throughput of the §8.1 remediation loop (campaign
    # renewals per wall-clock second) plus its allocation footprint.
    printf "  },\n  \"renewal_fleet\": {\n" > out
    printf "    \"renewals_per_op\": %d,\n", renewals["RenewalFleet"] > out
    printf "    \"renewals_per_sec\": %.1f,\n", (cur["RenewalFleet"] > 0 ? renewals["RenewalFleet"] / (cur["RenewalFleet"] / 1e9) : 0) > out
    printf "    \"allocs_per_op\": %d\n", allocs["RenewalFleet"] > out
    # Serve: the query API through the deterministic load generator —
    # cached vs uncached vs streaming-export mixes at three client
    # counts. The cached allocs-per-request gate reads query_cached.
    printf "  },\n  \"serve\": {\n" > out
    printf "    \"gomaxprocs\": %d,\n", gmp > out
    printf "    \"query_cached\": {" > out
    serveBlock("ServeQuery")
    printf "    },\n    \"query_uncached\": {" > out
    serveBlock("ServeQueryUncached")
    printf "    },\n    \"export\": {" > out
    serveBlock("ServeExport")
    printf "    },\n    \"cache_speedup_clients_1\": %.2f,\n", (cur["ServeQuery/clients=1"] > 0 ? cur["ServeQueryUncached/clients=1"] / cur["ServeQuery/clients=1"] : 0) > out
    printf "    \"cached_allocs_per_req\": {\n" > out
    printf "      \"budget\": %.1f,\n", serve_allocs_budget > out
    printf "      \"current\": %.1f\n", (reqs["ServeQuery/clients=1"] > 0 ? allocs["ServeQuery/clients=1"] / reqs["ServeQuery/clients=1"] : 0) > out
    printf "    }\n" > out
    printf "  },\n  \"json_export_allocs_per_op\": {\n" > out
    printf "    \"baseline\": %d,\n", base_allocs["JSONExport"] > out
    printf "    \"current\": %d\n", allocs["JSONExport"] > out
    printf "  }\n}\n" > out
    if (allocs["JSONExport"] > base_allocs["JSONExport"]) {
        printf "FAIL: JSONExport allocs/op regressed: %d > baseline %d\n",
            allocs["JSONExport"], base_allocs["JSONExport"] > "/dev/stderr"
        exit 1
    }
    if (gmp >= 2 && bestOf["auto:"] < 1.0) {
        printf "FAIL: at the auto-shard scale (%s, %d hosts, GOMAXPROCS=%d) no shard count >= 2 beats the legacy loops: best speedup %.2f < 1.00\n",
            autoscale, hosts["auto:AggregateLegacy"], gmp, bestOf["auto:"] > "/dev/stderr"
        exit 1
    }
    if (k100Of["auto:"] < 5.0) {
        printf "FAIL: at the auto-shard scale (%s, %d hosts) ApplyDelta k=100 is only %.2fx the Builder replay (need >= 5.00)\n",
            autoscale, hosts["auto:ApplyDelta/k=100"], k100Of["auto:"] > "/dev/stderr"
        exit 1
    }
    servePerReq = (reqs["ServeQuery/clients=1"] > 0 ? allocs["ServeQuery/clients=1"] / reqs["ServeQuery/clients=1"] : 0)
    if (servePerReq > serve_allocs_budget) {
        printf "FAIL: cached serve query allocates %.1f per request at clients=1 (budget %.1f)\n",
            servePerReq, serve_allocs_budget > "/dev/stderr"
        exit 1
    }
    if (gmp < 2)
        printf "NOTE: GOMAXPROCS=%d — auto-shard-scale merge gate informational only (best %.2f, crossover shards=%d)\n",
            gmp, bestOf["auto:"], crossOf["auto:"] > "/dev/stderr"
}
'
echo "wrote $out"
