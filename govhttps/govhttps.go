// Package govhttps is the public API of the reproduction of "Accept the
// Risk and Continue: Measuring the Long Tail of Government https Adoption"
// (IMC 2020). It builds a deterministic synthetic Internet of government
// websites calibrated to the paper's published measurements, runs the
// paper's scanning pipeline against it, and regenerates every table and
// figure of the evaluation.
//
// Quick start:
//
//	study := govhttps.MustNewStudy(govhttps.SmallConfig())
//	out, err := govhttps.RunExperiment(context.Background(), study, "T2")
//	fmt.Println(out)
//
// The heavy lifting lives in the internal packages; this package re-exports
// the stable surface: world construction, scanning, the experiment registry
// and the crawler/disclosure entry points. The registry spans T1/T2, every
// figure (F1-F13), the appendix artifacts (TA1-TA4, FA1-FA6), the section
// results (S533, S534, S722) and eight executable extensions (E1-E8).
package govhttps

import (
	"context"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/notify"
	"repro/internal/report"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

// Config controls world generation: Seed (determinism), Scale (1.0 = the
// paper's 135,408-hostname study) and ScanTime.
type Config = world.Config

// Study is a built world plus cached scans; see NewStudy.
type Study = core.Study

// Experiment regenerates one table or figure; see Experiments.
type Experiment = core.Experiment

// ScanResult is the outcome of probing one hostname.
type ScanResult = scanner.Result

// ResultSet is an indexed scan corpus: the raw results plus the category,
// country, issuer, key, hosting and rank indexes built in one pass. The
// study's dataset accessors (Worldwide, USAAll, ROK, Dataset) return one.
type ResultSet = resultset.Set

// Category buckets a scan result per the paper's Table 2.
type Category = scanner.Category

// World is the synthetic Internet.
type World = world.World

// DefaultConfig is the full-scale reproduction (135k+ hostnames; builds in
// a few seconds and uses a few hundred MB).
func DefaultConfig() Config { return world.DefaultConfig() }

// SmallConfig is a 2%-scale world: every population and error class is
// present, but everything runs in milliseconds. Ideal for exploration and
// tests.
func SmallConfig() Config { return world.TestConfig() }

// NewStudy builds the world for the configuration.
func NewStudy(cfg Config) (*Study, error) { return core.NewStudy(cfg) }

// MustNewStudy is NewStudy for known-valid configurations.
func MustNewStudy(cfg Config) *Study { return core.MustNewStudy(cfg) }

// Experiments lists the full table/figure registry (T1, T2, F1-F13,
// TA1-TA4, FA1-FA6, S533, S534, S722, E1-E8).
func Experiments() []Experiment { return core.Experiments() }

// RunExperiment regenerates one artifact by ID and returns its rendered
// text.
func RunExperiment(ctx context.Context, s *Study, id string) (string, error) {
	return core.RunExperiment(ctx, s, id)
}

// SuiteOptions tunes RunAllExperiments: Jobs bounds experiment and
// dataset-warming concurrency (0 = GOMAXPROCS, 1 = sequential).
type SuiteOptions = core.SuiteOptions

// SuiteResult is one rendered artifact from RunAllExperiments.
type SuiteResult = core.SuiteResult

// RunAllExperiments regenerates the entire registry. Datasets are
// pre-warmed concurrently and independent experiments run on a bounded
// worker pool, but results come back in registry order and — on the
// default fault-free worlds — byte-identical to a sequential RunExperiment
// loop at any Jobs setting.
func RunAllExperiments(ctx context.Context, s *Study, opts SuiteOptions) ([]SuiteResult, error) {
	return core.RunAllExperiments(ctx, s, opts)
}

// ScanHosts probes an arbitrary hostname list against the study's world
// with the paper's scanning posture (3 retries, conservative trust store).
func ScanHosts(ctx context.Context, s *Study, hosts []string) []ScanResult {
	return s.Scanner().ScanAll(ctx, hosts)
}

// Summarize computes the Table 2 aggregate for a raw result slice (it
// indexes the slice first; prefer SummarizeSet when a ResultSet exists).
func Summarize(results []ScanResult) analysis.Table2 {
	return analysis.ComputeTable2(resultset.New(results, resultset.Options{}))
}

// SummarizeSet computes the Table 2 aggregate from an indexed scan.
func SummarizeSet(set *ResultSet) analysis.Table2 {
	return analysis.ComputeTable2(set)
}

// RenderSummary renders a Table 2 aggregate as text.
func RenderSummary(tab analysis.Table2) string { return report.Table2(tab) }

// Crawl runs the 7-level dataset-expansion crawl from the study's seed
// list and returns the discovered hosts plus per-level statistics.
func Crawl(ctx context.Context, s *Study) ([]string, crawler.Stats) {
	c := crawler.New(&crawler.WebFetcher{
		Dialer:   s.World.Net,
		Resolver: s.World.DNS,
		Vantage:  "lab",
	})
	return c.Crawl(ctx, s.World.SeedHosts)
}

// Disclose builds per-country vulnerability reports from a worldwide scan
// and runs the §7.2 notification campaign.
func Disclose(ctx context.Context, s *Study) *notify.CampaignResult {
	reports := notify.BuildReports(s.Worldwide(ctx), nil)
	return notify.Campaign(reports, s.Rand("disclosure"))
}

// FollowUp applies the §7.2.2 remediation model to the world, re-scans, and
// reports notification effectiveness.
func FollowUp(ctx context.Context, s *Study, r *rand.Rand) (notify.Effectiveness, error) {
	before := s.Worldwide(ctx)
	invalid := s.InvalidWorldwideHosts(ctx)
	if r == nil {
		r = s.Rand("remediation")
	}
	s.World.Remediate(invalid, world.DefaultRemediationRates(), r)
	after := s.FollowUpScan(ctx, nil)
	return notify.MeasureEffectiveness(before, after)
}
