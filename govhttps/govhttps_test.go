package govhttps

import (
	"context"
	"strings"
	"testing"
)

var study = MustNewStudy(SmallConfig())

func TestPublicAPIQuickstart(t *testing.T) {
	ctx := context.Background()
	out, err := RunExperiment(ctx, study, "T2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Valid HTTPS Certificates") {
		t.Errorf("T2 output:\n%s", out)
	}
}

func TestScanAndSummarize(t *testing.T) {
	ctx := context.Background()
	hosts := study.World.GovHosts[:200]
	results := ScanHosts(ctx, study, hosts)
	if len(results) != 200 {
		t.Fatalf("results = %d", len(results))
	}
	tab := Summarize(results)
	if tab.Total == 0 || tab.HTTPS == 0 {
		t.Errorf("summary = %+v", tab)
	}
	if !strings.Contains(RenderSummary(tab), "Table 2") {
		t.Error("render missing heading")
	}
}

func TestExperimentsListed(t *testing.T) {
	if len(Experiments()) != 36 {
		t.Errorf("experiments = %d, want 36", len(Experiments()))
	}
}

func TestRunAllExperimentsViaFacade(t *testing.T) {
	// Use a private study: the suite includes world-mutating experiments.
	s := MustNewStudy(SmallConfig())
	results, err := RunAllExperiments(context.Background(), s, SuiteOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Fatalf("results = %d, want %d", len(results), len(Experiments()))
	}
	for i, e := range Experiments() {
		if results[i].ID != e.ID {
			t.Fatalf("result %d = %s, want %s (registry order)", i, results[i].ID, e.ID)
		}
		if results[i].Output == "" {
			t.Errorf("%s rendered empty", e.ID)
		}
	}
}

func TestCrawlViaFacade(t *testing.T) {
	hosts, stats := Crawl(context.Background(), study)
	if len(hosts) <= len(study.World.SeedHosts) {
		t.Error("crawl did not expand the seed list")
	}
	if len(stats.Levels) < 3 {
		t.Error("crawl stats missing levels")
	}
}

func TestDiscloseAndFollowUp(t *testing.T) {
	// Use a private study: FollowUp mutates the world.
	s := MustNewStudy(Config{Seed: 21, Scale: 0.01})
	ctx := context.Background()
	c := Disclose(ctx, s)
	if c.EmailsSent == 0 {
		t.Fatal("no disclosure emails")
	}
	eff, err := FollowUp(ctx, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eff.PreviouslyInvalid == 0 || eff.Fixed == 0 {
		t.Errorf("effectiveness = %+v", eff)
	}
}
