// Benchmark harness: one benchmark per table and figure of the paper (see
// the experiment index in DESIGN.md), plus ablation benches for the design
// choices the study calls out (trust-store restrictiveness, retry budget,
// crawl depth, sampling strategy, scanner concurrency).
//
// The world is built once per scale and scan results are cached inside the
// study, so each benchmark measures the cost of regenerating its artifact
// from a warm pipeline — the same split the paper has between the one-off
// crawl/scan and the analysis runs. Set GOVHTTPS_BENCH_SCALE to change the
// world size (default 0.05; 1.0 is the full 135k-hostname study).
package repro_test

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"io"
	"net/http"
	"net/http/httptest"
	"net/url"

	"repro/internal/acmefleet"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/ctlog"
	"repro/internal/notify"
	"repro/internal/observatory"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/world"
)

var (
	benchOnce  sync.Once
	benchStudy *core.Study
)

func benchScale() float64 {
	if v := os.Getenv("GOVHTTPS_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			return f
		}
	}
	return 0.05
}

// study returns the shared, warm benchmark study.
func study(b *testing.B) *core.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy = core.MustNewStudy(world.Config{Seed: 42, Scale: benchScale()})
		// Warm every scan cache outside the timed region.
		ctx := context.Background()
		benchStudy.Worldwide(ctx)
		benchStudy.USAAll(ctx)
		benchStudy.ROK(ctx)
		for _, ds := range benchStudy.World.USA.Datasets {
			if _, err := benchStudy.USADataset(ctx, ds.Key); err != nil {
				panic(err)
			}
		}
	})
	return benchStudy
}

// benchExperiment runs one registry experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	s := study(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := core.RunExperiment(ctx, s, id)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// --- Tables ---

func BenchmarkTable1Overlap(b *testing.B)   { benchExperiment(b, "T1") }
func BenchmarkTable2Worldwide(b *testing.B) { benchExperiment(b, "T2") }

// --- Figures ---

func BenchmarkFigure1Choropleth(b *testing.B)        { benchExperiment(b, "F1") }
func BenchmarkFigure2Issuers(b *testing.B)           { benchExperiment(b, "F2") }
func BenchmarkFigure3Durations(b *testing.B)         { benchExperiment(b, "F3") }
func BenchmarkFigure4KeyAlgo(b *testing.B)           { benchExperiment(b, "F4") }
func BenchmarkFigure5Hosting(b *testing.B)           { benchExperiment(b, "F5") }
func BenchmarkFigure6TopMillionHosting(b *testing.B) { benchExperiment(b, "F6") }
func BenchmarkFigure7RankRegression(b *testing.B)    { benchExperiment(b, "F7") }
func BenchmarkFigure8USAIssuers(b *testing.B)        { benchExperiment(b, "F8") }
func BenchmarkFigure9USAKeyAlgo(b *testing.B)        { benchExperiment(b, "F9") }
func BenchmarkFigure10IssueDates(b *testing.B)       { benchExperiment(b, "F10") }
func BenchmarkFigure11ROKIssuers(b *testing.B)       { benchExperiment(b, "F11") }
func BenchmarkFigure12ROKKeyAlgo(b *testing.B)       { benchExperiment(b, "F12") }
func BenchmarkFigure13Disclosure(b *testing.B)       { benchExperiment(b, "F13") }

// --- Appendix tables ---

func BenchmarkTableA1GSADatasets(b *testing.B) { benchExperiment(b, "TA1") }
func BenchmarkTableA2GSAVulns(b *testing.B)    { benchExperiment(b, "TA2") }
func BenchmarkTableA3ROK(b *testing.B)         { benchExperiment(b, "TA3") }
func BenchmarkTableA4ROKVulns(b *testing.B)    { benchExperiment(b, "TA4") }

// --- Appendix figures ---

func BenchmarkFigureA1USAHostingPerDataset(b *testing.B) { benchExperiment(b, "FA1") }
func BenchmarkFigureA2USAEV(b *testing.B)                { benchExperiment(b, "FA2") }
func BenchmarkFigureA3ROKEV(b *testing.B)                { benchExperiment(b, "FA3") }

func BenchmarkFigureA4Crawler(b *testing.B) {
	// The crawl is the measured workload itself: a fresh 7-level BFS over
	// the world's link graph per iteration.
	s := study(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := crawler.New(&crawler.WebFetcher{Dialer: s.World.Net, Resolver: s.World.DNS, Vantage: "lab"})
		hosts, _ := c.Crawl(ctx, s.World.SeedHosts)
		if len(hosts) <= len(s.World.SeedHosts) {
			b.Fatal("crawl did not expand")
		}
	}
}

func BenchmarkFigureA5CrossGov(b *testing.B) { benchExperiment(b, "FA5") }
func BenchmarkFigureA6WorldEV(b *testing.B)  { benchExperiment(b, "FA6") }

// --- Section results ---

func BenchmarkSection533KeyReuse(b *testing.B) { benchExperiment(b, "S533") }
func BenchmarkSection534CAA(b *testing.B)      { benchExperiment(b, "S534") }

func BenchmarkSection722Effectiveness(b *testing.B) {
	// Remediation mutates the world, so this bench owns a private study
	// per iteration (the measured workload includes the follow-up scan).
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := core.MustNewStudy(world.Config{Seed: 42, Scale: benchScale() / 5})
		s.Worldwide(ctx)
		b.StartTimer()
		out, err := core.RunExperiment(ctx, s, "S722")
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// --- Pipeline benches ---

// BenchmarkScanWorldwide measures the raw scanning pipeline end to end:
// DNS, TCP, TLS handshake, chain retrieval, verification, classification.
func BenchmarkScanWorldwide(b *testing.B) {
	s := study(b)
	hosts := s.World.GovHosts
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := s.Scanner().ScanAll(ctx, hosts)
		if len(results) != len(hosts) {
			b.Fatal("short scan")
		}
	}
	b.ReportMetric(float64(len(hosts)), "hosts/op")
}

// BenchmarkScanWorldwideSharded measures the sharded scan pipeline end to
// end — partition, concurrent per-shard scan + index build into a shared
// backing array, deterministic merge — across shard counts. The shards=1
// sub-bench is the sequential control.
func BenchmarkScanWorldwideSharded(b *testing.B) {
	s := study(b)
	hosts := s.World.GovHosts
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				set := resultset.ScanSharded(ctx, s.Scanner(), hosts, shards,
					resultset.Options{CountryOf: s.CountryOf})
				if set.Len() != len(hosts) {
					b.Fatal("short scan")
				}
			}
			b.ReportMetric(float64(len(hosts)), "hosts/op")
		})
	}
}

// BenchmarkScanSingleHost measures one full host probe.
func BenchmarkScanSingleHost(b *testing.B) {
	s := study(b)
	sc := s.Scanner()
	host := s.World.GovHosts[len(s.World.GovHosts)/2]
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sc.Scan(ctx, host)
		if res.Hostname != host {
			b.Fatal("bad result")
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationTrustStores compares scan outcomes under the three
// modeled trust stores (§4.3's conservative-store choice).
func BenchmarkAblationTrustStores(b *testing.B) {
	for _, storeName := range []string{"apple", "microsoft", "nss"} {
		b.Run(storeName, func(b *testing.B) {
			s := study(b)
			store := s.World.Stores[storeName]
			hosts := s.World.GovHosts[:min(2000, len(s.World.GovHosts))]
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := scanner.New(s.World.Net, s.World.DNS, s.World.Class,
					scanner.DefaultConfig(store, s.World.ScanTime))
				results := sc.ScanAll(ctx, hosts)
				tab := analysis.ComputeTable2(resultset.New(results, resultset.Options{}))
				if tab.Total == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// BenchmarkAblationRetries compares retry budgets (the paper retried 3x).
func BenchmarkAblationRetries(b *testing.B) {
	for _, retries := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("retries=%d", retries), func(b *testing.B) {
			s := study(b)
			cfg := scanner.DefaultConfig(s.Store(), s.World.ScanTime)
			cfg.Retries = retries
			hosts := s.World.GovHosts[:min(2000, len(s.World.GovHosts))]
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := scanner.New(s.World.Net, s.World.DNS, s.World.Class, cfg)
				sc.ScanAll(ctx, hosts)
			}
		})
	}
}

// BenchmarkAblationCrawlDepth sweeps the crawl depth limit, showing the
// Figure A.4 saturation after level 5.
func BenchmarkAblationCrawlDepth(b *testing.B) {
	for _, depth := range []int{1, 3, 5, 7} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s := study(b)
			ctx := context.Background()
			b.ResetTimer()
			var last int
			for i := 0; i < b.N; i++ {
				c := crawler.New(&crawler.WebFetcher{Dialer: s.World.Net, Resolver: s.World.DNS, Vantage: "lab"})
				c.MaxDepth = depth
				hosts, _ := c.Crawl(ctx, s.World.SeedHosts)
				last = len(hosts)
			}
			b.ReportMetric(float64(last), "hosts")
		})
	}
}

// BenchmarkAblationSampling compares uniform vs rank-matched non-government
// sampling (§5.5 / §7.1.3).
func BenchmarkAblationSampling(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	results := s.Worldwide(ctx)
	b.Run("rank-matched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rc := analysis.ComputeRankComparison(s.World.TopLists, results, 42, 50)
			if rc.Matched.N == 0 {
				b.Fatal("empty matched sample")
			}
		}
	})
}

// BenchmarkAblationConcurrency sweeps the scanner's worker pool.
func BenchmarkAblationConcurrency(b *testing.B) {
	for _, conc := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("workers=%d", conc), func(b *testing.B) {
			s := study(b)
			cfg := scanner.DefaultConfig(s.Store(), s.World.ScanTime)
			cfg.Concurrency = conc
			hosts := s.World.GovHosts[:min(2000, len(s.World.GovHosts))]
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := scanner.New(s.World.Net, s.World.DNS, s.World.Class, cfg)
				sc.ScanAll(ctx, hosts)
			}
		})
	}
}

// BenchmarkWorldBuild measures world generation itself.
func BenchmarkWorldBuild(b *testing.B) {
	cfg := world.Config{Seed: 42, Scale: benchScale() / 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := world.MustBuild(cfg)
		if len(w.GovHosts) == 0 {
			b.Fatal("empty world")
		}
	}
}

// BenchmarkDisclosureCampaign measures report building + the campaign.
func BenchmarkDisclosureCampaign(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	results := s.Worldwide(ctx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports := notify.BuildReports(results, nil)
		c := notify.Campaign(reports, s.Rand("bench"))
		if c.EmailsSent == 0 {
			b.Fatal("no emails")
		}
	}
}

// --- Extension benches ---

func BenchmarkExtensionCTCoverage(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkExtensionLookalikes(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkExtensionRecommend(b *testing.B)  { benchExperiment(b, "E3") }

// BenchmarkCTInclusionProof measures Merkle proof generation+verification
// on the world's CT log.
func BenchmarkCTInclusionProof(b *testing.B) {
	s := study(b)
	log := s.World.CT
	size := log.Size()
	if size < 2 {
		b.Skip("log too small")
	}
	entries := log.Entries()
	root := log.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % size
		proof, err := log.InclusionProof(idx, size)
		if err != nil {
			b.Fatal(err)
		}
		leaf := ctlog.LeafHash(entries[idx].Cert.Encode())
		if !ctlog.VerifyInclusion(root, leaf, idx, size, proof) {
			b.Fatal("proof rejected")
		}
	}
}

// --- Report-suite benches ---
//
// The pair measures the full 36-experiment pipeline (govreport -all) end to
// end on a private study per iteration: sequentially, and through the
// dependency-aware scheduler. The outputs are byte-identical; the scheduled
// run pre-warms datasets and shares caches across experiments.

func benchReportSuite(b *testing.B, opts core.SuiteOptions) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := core.MustNewStudy(world.Config{Seed: 42, Scale: benchScale() / 5})
		b.StartTimer()
		results, err := core.RunAllExperiments(ctx, s, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(core.Experiments()) {
			b.Fatal("short suite")
		}
	}
}

// BenchmarkReportSuite is the scheduled full-report pipeline under the
// effective-parallelism policy: on a single-CPU host it falls back to
// the sequential loop (the pool cannot win there), on a multi-CPU host
// it runs the segment scheduler at Jobs=4.
func BenchmarkReportSuite(b *testing.B) { benchReportSuite(b, core.SuiteOptions{Jobs: 4}) }

// BenchmarkReportSuiteForced pins the concurrent scheduler on regardless
// of GOMAXPROCS — the honest record of what the pool itself costs on
// this host (0.88x on the 1-core CI machine, which is exactly why the
// policy falls back).
func BenchmarkReportSuiteForced(b *testing.B) {
	benchReportSuite(b, core.SuiteOptions{Jobs: 4, ForceParallel: true})
}

// BenchmarkReportSuiteSequential is the plain registry-order loop, for the
// live sequential-vs-scheduled comparison.
func BenchmarkReportSuiteSequential(b *testing.B) { benchReportSuite(b, core.SuiteOptions{Jobs: 1}) }

// BenchmarkJSONExport measures the zgrab-style JSON-lines serialization.
// Its allocs/op is gated in scripts/bench_scan.sh: the zero-copy exporter
// runs allocation-free at steady state, and a regression fails the bench job.
func BenchmarkJSONExport(b *testing.B) {
	s := study(b)
	results := s.Worldwide(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := scanner.WriteJSONL(io.Discard, results.Results()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionHSTSPreload(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkExtensionACMEPolicy(b *testing.B)  { benchExperiment(b, "E6") }

// BenchmarkRenewalFleet measures the §8.1 renewal campaign end to end:
// order dispatch, http-01 validation round trips, issuance, zero-downtime
// rotation and snapshotting, on a chaos-injected private world per
// iteration (world build and scan stay outside the timed region). Its
// renewals/op feeds the renewal_fleet throughput section of
// BENCH_scan.json in scripts/bench_scan.sh.
func BenchmarkRenewalFleet(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var renewals int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := world.MustBuild(world.Config{Seed: 42, Scale: benchScale() / 5})
		cfg := scanner.DefaultConfig(w.Stores["apple"], w.ScanTime)
		cfg.Seed = 42
		cfg.Clock = w.Clock
		sc := scanner.New(w.Net, w.DNS, w.Class, cfg)
		bld := resultset.NewBuilder(resultset.Options{CountryOf: w.CountryOf, SizeHint: len(w.GovHosts)})
		sc.ScanStream(ctx, w.GovHosts, bld.Add)
		set := bld.Build()
		enrolled := acmefleet.Enroll(set)
		hosts := make([]string, len(enrolled))
		for k, e := range enrolled {
			hosts[k] = e.Hostname
		}
		acmefleet.DefaultChaos().Apply(w, hosts, 42)
		b.StartTimer()
		f := acmefleet.New(w, set, acmefleet.Config{Seed: 42})
		rep := f.Run(ctx)
		renewals = rep.Final().Renewals
		if renewals == 0 {
			b.Fatal("campaign renewed nothing")
		}
	}
	b.ReportMetric(float64(renewals), "renewals/op")
}

// --- Aggregation benches ---
//
// The benches below measure the refactor's core trade: one indexed build
// pass serving every downstream aggregate, versus the per-experiment
// loops the analysis layer used to run over the raw slice. Both sides
// consume the same pre-collected result slice (the scan runs once,
// outside every timed region — it used to sit inside both timers, where
// its ~20x larger cost and noise drowned the aggregation delta the
// section claims to measure); BenchmarkScanWorldwideSharded covers the
// combined scan+build pipeline.

// benchAggRaw returns the warm worldwide raw slice shared by the
// aggregation benches.
func benchAggRaw(b *testing.B) []scanner.Result {
	b.Helper()
	return study(b).Worldwide(context.Background()).Results()
}

// checkAggSet guards against dead-code elimination of a built Set.
func checkAggSet(b *testing.B, set *resultset.Set) {
	b.Helper()
	n := set.Counts().Total + len(set.CountryAggs()) + len(set.Issuers()) +
		len(set.Fingerprints()) + len(set.HostKeyCells())
	if n == 0 {
		b.Fatal("empty aggregates")
	}
}

// BenchmarkAggregateIndexed times the two-pass index build: one walk
// interning keys and counting cardinalities, one fill into exact-size
// flat buckets — producing every aggregate the experiments consume.
func BenchmarkAggregateIndexed(b *testing.B) {
	s := study(b)
	raw := benchAggRaw(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checkAggSet(b, resultset.New(raw, resultset.Options{CountryOf: s.CountryOf}))
	}
	b.ReportMetric(float64(len(raw)), "hosts/op")
}

// BenchmarkAggregateSharded times the merged build — the aggregation half
// of the sharded scan pipeline (resultset.BuildSharded): the raw slice is
// partitioned contiguously, every shard builds its own index
// concurrently, and the deterministic set-merge recombines them without
// copying the results (bit-identical to the sequential build). shards=1
// is the merge-free one-shot control; the bench_scan.sh regression gate
// reads the shards ≥ 2 entries.
func BenchmarkAggregateSharded(b *testing.B) {
	s := study(b)
	raw := benchAggRaw(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				checkAggSet(b, resultset.BuildSharded(raw, shards,
					resultset.Options{CountryOf: s.CountryOf}))
			}
			b.ReportMetric(float64(len(raw)), "hosts/op")
		})
	}
}

// BenchmarkAggregateLegacy re-runs the pre-refactor pattern: every
// experiment family walks the raw slice with its own loop, rebuilding the
// same aggregates the indexed Set derives in one pass — the Table 2
// tally, per-country rollup, issuer breakdown, fingerprint and key-ID
// clustering, key/signature/version cells, and the disclosure host lists.
func BenchmarkAggregateLegacy(b *testing.B) {
	s := study(b)
	rawResults := benchAggRaw(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := rawResults
		// T2: taxonomy tally.
		byCat := map[scanner.Category]int{}
		hsts, both := 0, 0
		for j := range raw {
			byCat[raw[j].Category()]++
			if raw[j].Category() == scanner.CatValid && raw[j].HSTS {
				hsts++
			}
			if raw[j].ServesHTTP && raw[j].ServesHTTPS {
				both++
			}
		}
		// F1: per-country rollup.
		type ccAgg struct{ hosts, avail, https, valid int }
		countries := map[string]*ccAgg{}
		for j := range raw {
			cc := s.CountryOf(raw[j].Hostname)
			if cc == "" {
				continue
			}
			agg := countries[cc]
			if agg == nil {
				agg = &ccAgg{}
				countries[cc] = agg
			}
			agg.hosts++
			if raw[j].Available {
				agg.avail++
				if raw[j].HasHTTPS() {
					agg.https++
				}
				if raw[j].ValidHTTPS() {
					agg.valid++
				}
			}
		}
		// F2: issuer breakdown (total/valid per CA).
		type issAgg struct{ total, valid int }
		issuers := map[string]*issAgg{}
		for j := range raw {
			if len(raw[j].Chain) == 0 {
				continue
			}
			cn := raw[j].Chain[0].Issuer.CommonName
			agg := issuers[cn]
			if agg == nil {
				agg = &issAgg{}
				issuers[cn] = agg
			}
			agg.total++
			if raw[j].Verify.Valid() {
				agg.valid++
			}
		}
		// S533: fingerprint clustering with country spans.
		fps := map[[32]byte][]string{}
		fpCCs := map[[32]byte]map[string]bool{}
		for j := range raw {
			if len(raw[j].Chain) == 0 {
				continue
			}
			fp := raw[j].Chain[0].Fingerprint()
			fps[fp] = append(fps[fp], raw[j].Hostname)
			if cc := s.CountryOf(raw[j].Hostname); cc != "" {
				if fpCCs[fp] == nil {
					fpCCs[fp] = map[string]bool{}
				}
				fpCCs[fp][cc] = true
			}
		}
		// E3/§8: key-identity sharing.
		keyHosts := map[string]int{}
		for j := range raw {
			if len(raw[j].Chain) > 0 {
				keyHosts[string(raw[j].Chain[0].PublicKey.ID[:])]++
			}
		}
		// F4: key/signature validity cells (incl. weak counts).
		type cell struct{ total, valid int }
		cells := map[string]*cell{}
		weak, small := 0, 0
		for j := range raw {
			if len(raw[j].Chain) == 0 {
				continue
			}
			leaf := raw[j].Chain[0]
			ok := raw[j].Verify.Valid()
			for _, label := range []string{
				leaf.PublicKey.Label(),
				leaf.SignatureAlgorithm.String(),
				leaf.PublicKey.Label() + " / " + leaf.SignatureAlgorithm.String(),
			} {
				c := cells[label]
				if c == nil {
					c = &cell{}
					cells[label] = c
				}
				c.total++
				if ok {
					c.valid++
				}
			}
			if leaf.SignatureAlgorithm.IsWeak() {
				weak++
			}
		}
		// TLS version cells.
		versions := map[string]int{}
		for j := range raw {
			if raw[j].HasHTTPS() && len(raw[j].Chain) > 0 {
				versions[raw[j].TLSVersion.String()]++
			}
		}
		// F13/notify: invalid hosts and failed upgrades.
		var invalid []string
		failed := 0
		for j := range raw {
			if raw[j].Category().IsInvalidHTTPS() {
				invalid = append(invalid, raw[j].Hostname)
			}
			if raw[j].ServesHTTP && raw[j].ServesHTTPS && raw[j].ValidHTTPS() {
				failed++
			}
		}
		if len(byCat)+len(countries)+len(issuers)+len(fps)+len(keyHosts)+
			len(cells)+len(versions)+len(invalid)+hsts+both+weak+small+failed == 0 {
			b.Fatal("empty aggregates")
		}
	}
	b.ReportMetric(float64(len(s.World.GovHosts)), "hosts/op")
}

// --- Incremental-delta benches ---
//
// The pair below measures the observatory's core trade: patching k changed
// rows into an indexed Set through ApplyDelta (cost proportional to the
// delta) versus the pre-refactor dataset patch path, a full Builder replay
// over the corpus (cost proportional to the corpus regardless of k). Both
// sides consume the same pre-built base set and the same changed-row
// slice; scripts/bench_scan.sh sweeps k for the crossover point and gates
// the k=100 speedup at the full-study scale.

// benchDeltaBase returns the warm base set plus k changed rows (evenly
// spaced across the corpus, HSTS flipped so the delta is non-trivial).
func benchDeltaBase(b *testing.B, k int) (*resultset.Set, []scanner.Result) {
	b.Helper()
	s := study(b)
	raw := s.Worldwide(context.Background()).Results()
	if k >= len(raw) {
		b.Skipf("k=%d >= corpus %d", k, len(raw))
	}
	base := resultset.New(raw, resultset.Options{CountryOf: s.CountryOf})
	stride := len(raw) / k
	changed := make([]scanner.Result, k)
	for i := 0; i < k; i++ {
		r := raw[i*stride]
		r.HSTS = !r.HSTS
		changed[i] = r
	}
	return base, changed
}

var benchDeltaKs = []int{100, 1000, 10000}

// BenchmarkApplyDelta times the incremental index patch: splice k changed
// rows into the base's shared-index chain without touching clean rows.
func BenchmarkApplyDelta(b *testing.B) {
	for _, k := range benchDeltaKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			base, changed := benchDeltaBase(b, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next, err := base.ApplyDelta(changed)
				if err != nil {
					b.Fatal(err)
				}
				if next.Len() != base.Len() {
					b.Fatal("delta changed corpus size")
				}
			}
			b.ReportMetric(float64(base.Len()), "hosts/op")
		})
	}
}

// BenchmarkApplyDeltaRebuild is the replaced baseline: the Builder replay
// dataset.Registry.patch ran before the ApplyDelta reroute — walk the full
// corpus, substituting changed rows by hostname lookup.
func BenchmarkApplyDeltaRebuild(b *testing.B) {
	for _, k := range benchDeltaKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			base, changed := benchDeltaBase(b, k)
			raw := base.Results()
			opts := resultset.Options{CountryOf: study(b).CountryOf, SizeHint: len(raw)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := make(map[string]int, len(changed))
				for j := range changed {
					idx[changed[j].Hostname] = j
				}
				bld := resultset.NewBuilder(opts)
				for j := range raw {
					if ci, ok := idx[raw[j].Hostname]; ok {
						bld.Add(changed[ci])
					} else {
						bld.Add(raw[j])
					}
				}
				if bld.Build().Len() != base.Len() {
					b.Fatal("replay changed corpus size")
				}
			}
			b.ReportMetric(float64(base.Len()), "hosts/op")
		})
	}
}

// BenchmarkObservatory measures the continuous loop end to end: CT and
// change-event tails, priority-queue admission, incremental re-scan,
// ApplyDelta patching, and periodic snapshots over 20 virtual ticks on a
// churn-injected private world per iteration (world build and the
// baseline scan stay outside the timed region).
func BenchmarkObservatory(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var scanned int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := world.MustBuild(world.Config{Seed: 42, Scale: benchScale() / 5})
		sc := scanner.New(w.Net, w.DNS, w.Class, scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
		raw := sc.ScanAll(ctx, w.GovHosts)
		base := resultset.New(raw, resultset.Options{CountryOf: w.CountryOf})
		o := observatory.New(w, base, observatory.Config{
			Seed:         42,
			Tick:         12 * time.Hour,
			Horizon:      10 * 24 * time.Hour,
			Workers:      16,
			ChurnPerTick: 10,
		})
		b.StartTimer()
		rep, err := o.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		scanned = rep.TotalScanned()
		if scanned == 0 {
			b.Fatal("observatory re-scanned nothing")
		}
	}
	b.ReportMetric(float64(scanned), "rescans/op")
}

// --- Serve benches ---
//
// The serve trio measures the query API under the deterministic load
// generator at three concurrency levels: the cached mix (steady-state
// hits out of the sharded response cache), the uncached mix (every
// request runs its aggregation), and the streaming-export mix (JSONL
// windows through the pooled 64 KiB buffers). Each loadgen run issues a
// fixed request count, so allocs/op divided by req/op is allocs per
// request — scripts/bench_scan.sh gates the cached number.

const serveBenchRequests = 512

var (
	serveBenchOnce     sync.Once
	serveBenchCached   *serve.Server
	serveBenchUncached *serve.Server
	serveBenchQueryMix []string
	serveBenchExports  []string
)

// serveBench builds the two servers over the shared warm study and
// derives the request mixes from what the worldwide set contains.
func serveBench(b *testing.B) {
	b.Helper()
	s := study(b)
	serveBenchOnce.Do(func() {
		set := s.Worldwide(context.Background())
		serveBenchCached = serve.New(s.Registry(), serve.Config{})
		serveBenchUncached = serve.New(s.Registry(), serve.Config{CacheDisabled: true})
		ccs := set.Countries()
		isss := set.Issuers()
		serveBenchQueryMix = []string{
			"/v1/table2",
			"/v1/countries",
			"/v1/issuers",
			"/v1/country?cc=" + ccs[0],
			"/v1/country?cc=" + ccs[len(ccs)/2],
			"/v1/issuer?cn=" + url.QueryEscape(isss[0]),
			"/v1/category?cat=" + url.QueryEscape(set.Categories()[0].String()),
			"/v1/host?name=" + url.QueryEscape(set.At(0).Hostname),
			"/v1/host?name=" + url.QueryEscape(set.At(set.Len()-1).Hostname),
		}
		serveBenchExports = []string{
			"/v1/export?limit=200",
			"/v1/export?offset=1000&limit=200",
			"/v1/export?offset=2000&limit=200",
		}
	})
}

// benchServe drives one mix at one client count and reports the loadgen
// latency percentiles alongside the standard counters.
func benchServe(b *testing.B, srv *serve.Server, mix []string, clients, requests int) {
	var last loadgen.Result
	// Warm outside the timed region: fill the cache (a no-op for the
	// uncached server) and fault in the lazy host index — every path
	// exactly once, not a random draw that could leave entries cold.
	for _, path := range mix {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("warmup %s: status %d", path, rec.Code)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = loadgen.Run(loadgen.Config{
			Handler: srv.Handler(), Clients: clients, Requests: requests,
			Seed: 42, Paths: mix,
		})
		if last.Errors != 0 {
			b.Fatalf("load run saw %d non-2xx responses", last.Errors)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(requests), "req/op")
	b.ReportMetric(float64(last.P50.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(last.P99.Nanoseconds()), "p99-ns")
	b.ReportMetric(last.QPS, "qps")
}

// BenchmarkServeQuery is the cached steady state: after the first lap
// every aggregate is a shard-local LRU hit. Its allocs-per-request is
// gated in scripts/bench_scan.sh.
func BenchmarkServeQuery(b *testing.B) {
	serveBench(b)
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServe(b, serveBenchCached, serveBenchQueryMix, clients, serveBenchRequests)
		})
	}
}

// BenchmarkServeQueryUncached runs the identical mix with the response
// cache disabled — the cost of the aggregations themselves, and the
// denominator of the cache's win.
func BenchmarkServeQueryUncached(b *testing.B) {
	serveBench(b)
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServe(b, serveBenchUncached, serveBenchQueryMix, clients, serveBenchRequests)
		})
	}
}

// BenchmarkServeExport streams 200-row JSONL windows through the pooled
// export path (uncached by design).
func BenchmarkServeExport(b *testing.B) {
	serveBench(b)
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServe(b, serveBenchCached, serveBenchExports, clients, serveBenchRequests/8)
		})
	}
}
