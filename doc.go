// Package repro is the root of the govhttps reproduction of "Accept the
// Risk and Continue: Measuring the Long Tail of Government https Adoption"
// (IMC 2020). The public API lives in repro/govhttps; the benchmark harness
// regenerating every table and figure lives in bench_test.go next to this
// file. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
