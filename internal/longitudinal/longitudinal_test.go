package longitudinal_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/longitudinal"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

func scanAll(w *world.World, at interface{ IsZero() bool }) *resultset.Set {
	s := scanner.New(w.Net, w.DNS, w.Class, scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
	return resultset.New(s.ScanAll(context.Background(), w.GovHosts), resultset.Options{})
}

func TestCaptureStates(t *testing.T) {
	w := world.MustBuild(world.Config{Seed: 31, Scale: 0.01})
	snap := longitudinal.Capture(w.ScanTime, scanAll(w, nil))
	counts := map[longitudinal.State]int{}
	for _, st := range snap.States {
		counts[st]++
	}
	if counts[longitudinal.ValidHTTPS] == 0 || counts[longitudinal.HTTPOnly] == 0 || counts[longitudinal.BrokenHTTPS] == 0 {
		t.Fatalf("state distribution degenerate: %v", counts)
	}
}

func TestDiffAfterRemediation(t *testing.T) {
	w := world.MustBuild(world.Config{Seed: 32, Scale: 0.01})
	before := longitudinal.Capture(w.ScanTime, scanAll(w, nil))

	// Apply the §7.2.2 churn and re-scan.
	var invalid []string
	for host, st := range before.States {
		if st == longitudinal.BrokenHTTPS {
			invalid = append(invalid, host)
		}
	}
	w.Remediate(invalid, world.DefaultRemediationRates(), rand.New(rand.NewSource(1)))
	after := longitudinal.Capture(world.FollowUpScanTime, scanAll(w, nil))

	c := longitudinal.Diff(before, after)
	if len(c.Improved) == 0 {
		t.Fatal("no improvements after remediation")
	}
	if c.Steady == 0 {
		t.Fatal("no steady hosts")
	}
	for _, tr := range c.Improved {
		if !tr.Improved() {
			t.Fatalf("transition %+v in Improved but not improved", tr)
		}
	}
	if !strings.Contains(c.Summary(), "improved") {
		t.Error("summary malformed")
	}
}

func TestDiffAppearDisappear(t *testing.T) {
	before := longitudinal.Snapshot{States: map[string]longitudinal.State{
		"a.gov": longitudinal.ValidHTTPS,
		"b.gov": longitudinal.HTTPOnly,
	}}
	after := longitudinal.Snapshot{States: map[string]longitudinal.State{
		"a.gov": longitudinal.BrokenHTTPS, // regressed
		"c.gov": longitudinal.ValidHTTPS,  // appeared
	}}
	c := longitudinal.Diff(before, after)
	if len(c.Regressed) != 1 || c.Regressed[0].Hostname != "a.gov" {
		t.Errorf("regressed = %v", c.Regressed)
	}
	if len(c.Appeared) != 1 || c.Appeared[0] != "c.gov" {
		t.Errorf("appeared = %v", c.Appeared)
	}
	if len(c.Disappeared) != 1 || c.Disappeared[0] != "b.gov" {
		t.Errorf("disappeared = %v", c.Disappeared)
	}
}

func TestGapReport(t *testing.T) {
	snap := longitudinal.Snapshot{States: map[string]longitudinal.State{
		"good.gov":   longitudinal.ValidHTTPS,
		"broken.gov": longitudinal.BrokenHTTPS,
		"plain.gov":  longitudinal.HTTPOnly,
	}}
	gaps := longitudinal.GapReport(snap, longitudinal.ValidHTTPS)
	if len(gaps) != 2 || gaps[0] != "broken.gov" || gaps[1] != "plain.gov" {
		t.Errorf("gaps = %v", gaps)
	}
}

func TestStateOrdering(t *testing.T) {
	if !(longitudinal.Gone < longitudinal.HTTPOnly &&
		longitudinal.HTTPOnly < longitudinal.BrokenHTTPS &&
		longitudinal.BrokenHTTPS < longitudinal.ValidHTTPS) {
		t.Fatal("state ordering broken; Diff's improved/regressed logic depends on it")
	}
	if longitudinal.ValidHTTPS.String() != "valid-https" {
		t.Error("state naming wrong")
	}
}
