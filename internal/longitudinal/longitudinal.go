// Package longitudinal implements the monitoring the paper names as future
// work (§4.2.3, §7.1.1): periodic snapshots of the host population and a
// differ that surfaces transitions — sites gaining https, certificates
// breaking or getting fixed, hosts disappearing — the "gaps in https for
// important websites" the authors wanted documented.
package longitudinal

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/resultset"
)

// State is the per-host condition recorded in a snapshot.
type State int

// Host states, ordered from worst to best.
const (
	// Gone: the host does not resolve or never answers.
	Gone State = iota
	// HTTPOnly: content on plain http only.
	HTTPOnly
	// BrokenHTTPS: https attempted but invalid.
	BrokenHTTPS
	// ValidHTTPS: https fully valid.
	ValidHTTPS
)

var stateNames = map[State]string{
	Gone:        "gone",
	HTTPOnly:    "http-only",
	BrokenHTTPS: "broken-https",
	ValidHTTPS:  "valid-https",
}

// String names the state.
func (s State) String() string { return stateNames[s] }

// Snapshot is one scan reduced to per-host states.
type Snapshot struct {
	// Taken is the scan time.
	Taken time.Time
	// States maps hostname to condition.
	States map[string]State
}

// Capture reduces an indexed scan to a snapshot.
func Capture(taken time.Time, set *resultset.Set) Snapshot {
	s := Snapshot{Taken: taken, States: make(map[string]State, set.Len())}
	for i := 0; i < set.Len(); i++ {
		r := set.At(i)
		switch {
		case !r.Available:
			s.States[r.Hostname] = Gone
		case r.ValidHTTPS():
			s.States[r.Hostname] = ValidHTTPS
		case r.HasHTTPS():
			s.States[r.Hostname] = BrokenHTTPS
		default:
			s.States[r.Hostname] = HTTPOnly
		}
	}
	return s
}

// Transition is one host's state change between snapshots.
type Transition struct {
	Hostname string
	From, To State
}

// Improved reports whether the transition moved toward valid https.
func (t Transition) Improved() bool { return t.To > t.From }

// Changes is the diff between two snapshots.
type Changes struct {
	// Improved lists hosts that moved toward valid https.
	Improved []Transition
	// Regressed lists hosts that moved away from it.
	Regressed []Transition
	// Appeared lists hosts present only in the later snapshot.
	Appeared []string
	// Disappeared lists hosts present only in the earlier snapshot.
	Disappeared []string
	// Steady counts hosts with unchanged state.
	Steady int
}

// Diff compares two snapshots.
func Diff(before, after Snapshot) Changes {
	var c Changes
	for host, b := range before.States {
		a, ok := after.States[host]
		if !ok {
			c.Disappeared = append(c.Disappeared, host)
			continue
		}
		switch {
		case a == b:
			c.Steady++
		case a > b:
			c.Improved = append(c.Improved, Transition{host, b, a})
		default:
			c.Regressed = append(c.Regressed, Transition{host, b, a})
		}
	}
	for host := range after.States {
		if _, ok := before.States[host]; !ok {
			c.Appeared = append(c.Appeared, host)
		}
	}
	sort.Slice(c.Improved, func(i, j int) bool { return c.Improved[i].Hostname < c.Improved[j].Hostname })
	sort.Slice(c.Regressed, func(i, j int) bool { return c.Regressed[i].Hostname < c.Regressed[j].Hostname })
	sort.Strings(c.Appeared)
	sort.Strings(c.Disappeared)
	return c
}

// Summary renders the diff as one paragraph.
func (c Changes) Summary() string {
	return fmt.Sprintf("improved %d, regressed %d, appeared %d, disappeared %d, steady %d",
		len(c.Improved), len(c.Regressed), len(c.Appeared), len(c.Disappeared), c.Steady)
}

// GapReport lists hosts currently below the given state — the "important
// sites without https" view.
func GapReport(s Snapshot, below State) []string {
	var out []string
	for host, st := range s.States {
		if st < below {
			out = append(out, host)
		}
	}
	sort.Strings(out)
	return out
}
