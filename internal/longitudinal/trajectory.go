package longitudinal

import (
	"bytes"
	"fmt"
	"time"
)

// Point reduces one snapshot to state tallies — one sample of the
// adoption curve.
type Point struct {
	// Taken is the snapshot time.
	Taken time.Time
	// Gone/HTTPOnly/Broken/Valid partition the host population.
	Gone     int
	HTTPOnly int
	Broken   int
	Valid    int
}

// Total is the population size at the sample.
func (p Point) Total() int { return p.Gone + p.HTTPOnly + p.Broken + p.Valid }

// ValidShare is the valid-https fraction in [0,1].
func (p Point) ValidShare() float64 {
	if t := p.Total(); t > 0 {
		return float64(p.Valid) / float64(t)
	}
	return 0
}

// PointOf tallies one snapshot. Counting over the state map is
// order-independent, so the unordered walk cannot leak into output.
func PointOf(s Snapshot) Point {
	p := Point{Taken: s.Taken}
	for _, st := range s.States {
		switch st {
		case Gone:
			p.Gone++
		case HTTPOnly:
			p.HTTPOnly++
		case BrokenHTTPS:
			p.Broken++
		case ValidHTTPS:
			p.Valid++
		}
	}
	return p
}

// Trajectory is the adoption curve a periodic snapshot stream traces —
// the longitudinal monitoring the paper names as future work, emitted
// over virtual months by the continuous observatory.
type Trajectory struct {
	Points []Point
}

// Track reduces a snapshot stream (in capture order) to its trajectory.
func Track(snaps []Snapshot) Trajectory {
	t := Trajectory{Points: make([]Point, 0, len(snaps))}
	for _, s := range snaps {
		t.Points = append(t.Points, PointOf(s))
	}
	return t
}

// AdoptionDelta is the net change in valid-https hosts from the first
// sample to the last (zero for fewer than two samples).
func (t Trajectory) AdoptionDelta() int {
	if len(t.Points) < 2 {
		return 0
	}
	return t.Points[len(t.Points)-1].Valid - t.Points[0].Valid
}

// Bytes serializes the trajectory canonically, one sample per line.
func (t Trajectory) Bytes() []byte {
	var b bytes.Buffer
	for i, p := range t.Points {
		fmt.Fprintf(&b, "sample=%03d t=%s gone=%d http-only=%d broken=%d valid=%d\n",
			i, p.Taken.UTC().Format(time.RFC3339), p.Gone, p.HTTPOnly, p.Broken, p.Valid)
	}
	return b.Bytes()
}
