package world

import (
	"math"
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/hosting"
	"repro/internal/tlssim"
)

// Paper-scale worldwide counts for countries the paper singles out.
var specialCounts = map[string]int{
	"us": 9978, // §5.1: 1,841 no-https sites are 18.45% of the US total
	"cn": 9500, // §7.1.2, scaled to fit Table 2's worldwide marginals
	"kr": 3600, // ~1/6 of the US's reachable site count (§7.1.1)
}

// allHTTPSCountries had https on every detected hostname (§7.2); most had
// very few hostnames.
var allHTTPSCountries = map[string]int{
	"ao": 30, "bj": 28, "cd": 8, "ee": 46, "gn": 22,
	"nl": 62, "no": 58, "ch": 340, "vu": 12,
}

// tinyCountries still had fewer than 11 sites after all expansion (§4.2.3).
var tinyCountries = map[string]int{
	"td": 4, "km": 6, "gq": 3, "er": 2, "hn": 9, "nr": 2, "ne": 7,
	"kp": 2, "pw": 3, "st": 4, "ss": 5, "tg": 8, "tv": 2,
}

// countryJob is one country's unit of parallel site generation: seeds are
// drawn sequentially up front, generation runs on a worker, and the results
// are registered sequentially afterwards.
type countryJob struct {
	cc      string
	n       int
	factory *certFactory
	cr      *rand.Rand
	sites   []*Site
	unreach []unreachablePlan
}

// unreachablePlan defers an unreachable host's world-state mutations (IP
// allocation, DNS, indexes) to the sequential registration pass; x is the
// fate draw made on the worker.
type unreachablePlan struct {
	host string
	cc   string
	x    float64
}

// buildWorldwide generates the 135,408-hostname worldwide dataset. Country
// populations are independent, so their generation — name drawing, class
// assignment, key minting, certificate issuance — fans out across
// GOMAXPROCS workers. Everything that touches shared world state (IP
// allocator, DNS, site indexes) is deferred to a sequential registration
// pass in sorted-country order, and every RNG stream is seeded before the
// fan-out, so a given Config.Seed yields a bit-identical world regardless
// of scheduling.
func (w *World) buildWorldwide(r *rand.Rand) {
	counts := w.countryCounts()

	codes := make([]string, 0, len(counts))
	for cc := range counts {
		codes = append(codes, cc)
	}
	sort.Strings(codes)

	var jobs []*countryJob
	for _, cc := range codes {
		n := counts[cc]
		if n == 0 {
			continue
		}
		f := newCertFactory(w, rand.New(newSplitMix(r.Int63())))
		// Workers issue from private serial slices; the single epoch
		// certificate (§5.3.1) is installed in a deterministic post-pass.
		f.serialBase = uint64(len(jobs)+1) << 32
		f.epochCertPlaced = true
		cr := rand.New(newSplitMix(r.Int63() ^ int64(len(cc))))
		jobs = append(jobs, &countryJob{cc: cc, n: n, factory: f, cr: cr})
	}

	jobCh := make(chan *countryJob)
	var wg sync.WaitGroup
	for i := 0; i < min(runtime.GOMAXPROCS(0), len(jobs)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				w.generateCountry(job)
			}
		}()
	}
	for _, job := range jobs {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()

	for _, job := range jobs {
		for _, s := range job.sites {
			s.IP = w.allocIP(s.Provider)
			w.registerWorldwide(s)
		}
		for _, u := range job.unreach {
			w.registerUnreachable(u)
		}
	}
	w.placeEpochCertSite(jobs)

	// Named sites from the paper, for flavour and for tests.
	f := newCertFactory(w, rand.New(newSplitMix(r.Int63())))
	w.addNamedSites(f, r)
	w.buildWhitelist(r)
}

// generateCountry builds one country's site records. It touches only the
// job's own RNGs and factory plus read-only world state (profiles, the CA
// registry, ScanTime), so jobs run concurrently.
func (w *World) generateCountry(job *countryJob) {
	country := geo.MustByCode(job.cc)
	prof := w.profileFor(country)
	gen := newNameGen(country, job.cr)
	job.sites = make([]*Site, 0, job.n)
	for i := 0; i < job.n; i++ {
		job.sites = append(job.sites, w.newGovSite(gen.next(), job.cc, prof, job.cr, job.factory))
	}
	// Unreachable extras: registered names that never return a 200.
	nUn := int(float64(job.n) * prof.UnreachableShare)
	job.unreach = make([]unreachablePlan, 0, nUn)
	for i := 0; i < nUn; i++ {
		job.unreach = append(job.unreach, unreachablePlan{
			host: gen.next(), cc: job.cc, x: job.cr.Float64(),
		})
	}
}

// placeEpochCertSite installs the world's single 1970-epoch certificate
// (§5.3.1) on the first self-signed government site in country order —
// worker factories suppress it so exactly one exists per world, chosen
// deterministically.
func (w *World) placeEpochCertSite(jobs []*countryJob) {
	for _, job := range jobs {
		for _, s := range job.sites {
			if s.Injected != ClassSelfSigned || len(s.Chain) != 1 {
				continue
			}
			if w.Sites[s.Hostname] != s {
				continue // lost a duplicate-hostname race at registration
			}
			leaf := s.Chain[0]
			s.Chain = []*cert.Certificate{ca.SelfSigned(leaf.PublicKey, leaf.DNSNames,
				time.Unix(0, 0).UTC(), 70*365*24*time.Hour, cert.SHA256WithRSA)}
			return
		}
	}
}

// profileFor derives the country profile, applying the special cases.
func (w *World) profileFor(c geo.Country) Profile {
	p := defaultProfile(c)
	switch c.Code {
	case "us":
		p.HTTPSShare = 0.815 // §5.1: 18.45% of US sites have no https
		p.ValidShare = 0.86
		p.InvalidMix = invalidMixUSA
		p.CAMix = caMixUSA
		p.CloudShare, p.CDNShare = 0.095, 0.035 // 13.02% on cloud+CDN (§6.1.2)
	case "cn":
		p.HTTPSShare = 0.58
		p.ValidShare = 0.11 // §7.1.2
		p.InvalidMix = invalidMixChina
		p.CAMix = caMixChina
		p.UnreachableShare = 1.0 // roughly half of Chinese hostnames unreachable
	case "kr":
		p.HTTPSShare = 0.63
		p.ValidShare = 0.38 // §6.2: 37.95% validity
		p.InvalidMix = invalidMixROK
		p.CAMix = caMixROK
		p.CloudShare, p.CDNShare = 0.002, 0.001 // 0.21% on cloud/CDN (§6.2.2)
	case "ch":
		p.CAMix = caMixSwitzerland
	}
	if _, ok := allHTTPSCountries[c.Code]; ok {
		// §7.2: nine countries had https on every detected hostname and
		// nothing to disclose — the registrars the campaign skipped.
		p.HTTPSShare = 1.0
		p.ValidShare = 1.0
	}
	return p
}

// countryCounts distributes the worldwide host population.
func (w *World) countryCounts() map[string]int {
	counts := make(map[string]int)
	total := w.scaled(paperWorldwideHosts, 400)
	used := 0
	take := func(cc string, paperN, minN int) {
		n := w.scaled(paperN, minN)
		counts[cc] = n
		used += n
	}
	for _, cc := range sortedKeys(specialCounts) {
		take(cc, specialCounts[cc], 40)
	}
	for _, cc := range sortedKeys(allHTTPSCountries) {
		take(cc, allHTTPSCountries[cc], 3)
	}
	for _, cc := range sortedKeys(tinyCountries) {
		if _, done := counts[cc]; !done {
			counts[cc] = min(tinyCountries[cc], 10) // never scale tiny countries up
			used += counts[cc]
		}
	}
	// Distribute the remainder over every other country by a weight that
	// favours populous, connected countries.
	remaining := total - used
	if remaining < 0 {
		remaining = 0
	}
	type cw struct {
		cc string
		w  float64
	}
	var weights []cw
	var sum float64
	for _, c := range geo.All() {
		if _, done := counts[c.Code]; done {
			continue
		}
		wgt := math.Sqrt(float64(c.Population)) * math.Pow(c.InternetPct/100, 1.5)
		if c.Territory {
			wgt *= 0.25
		}
		if wgt <= 0 {
			wgt = 1
		}
		weights = append(weights, cw{c.Code, wgt})
		sum += wgt
	}
	for _, e := range weights {
		n := int(float64(remaining) * e.w / sum)
		if n < 2 {
			n = 2
		}
		counts[e.cc] = n
	}
	return counts
}

// newGovSite generates one reachable worldwide government site.
func (w *World) newGovSite(host, cc string, prof Profile, r *rand.Rand, f *certFactory) *Site {
	s := &Site{Hostname: host, Country: cc}
	w.assignHosting(s, prof, r)

	httpsP := prof.HTTPSShare * hostingHTTPSFactor(s.HostKind)
	validP := prof.ValidShare * hostingValidFactor(s.HostKind)
	if r.Float64() < clamp(httpsP, 0.02, 1.0) {
		// Serving mode for https-capable sites: ~15% https-only, ~49%
		// redirecting, ~36% serving both without upgrade (§5.1).
		switch x := r.Float64(); {
		case x < 0.15:
			s.Serving = HTTPSOnly
		case x < 0.64:
			s.Serving = BothRedirect
		default:
			s.Serving = BothNoRedirect
		}
		class := ClassValid
		if prof.ValidShare < 0.999 && r.Float64() >= clamp(validP, 0.02, 0.98) {
			class = prof.InvalidMix.pick(r)
		}
		mix := prof.CAMix
		if mix == nil {
			mix = caMixWorldwide
		}
		f.configure(s, class, mix)
		if class == ClassValid && r.Float64() < 0.25 {
			s.HSTS = true
		}
	} else {
		s.Serving = HTTPOnly
		s.Injected = ClassNone
	}
	return s
}

// registerWorldwide adds the site to the world's indexes and DNS.
func (w *World) registerWorldwide(s *Site) {
	if _, dup := w.Sites[s.Hostname]; dup {
		return
	}
	w.addSite(s)
	w.GovHosts = append(w.GovHosts, s.Hostname)
	w.ByCountry[s.Country] = append(w.ByCountry[s.Country], s.Hostname)
	w.DNS.AddA(s.Hostname, s.IP)
	// §5.3.4: only ~1.36% of domains carry CAA records, all of them valid.
	if crc32ish(s.Hostname)%1000 < 14 {
		w.DNS.AddCAA(s.Hostname, dnssim.CAARecord{Tag: "issue", Value: "letsencrypt.org"})
	}
}

// registerUnreachable records a hostname that never yields a 200: absent
// from DNS, refusing connections, or serving errors. The fate draw was made
// on the generating worker; only the shared-state mutations happen here.
func (w *World) registerUnreachable(p unreachablePlan) {
	if _, dup := w.Sites[p.host]; dup {
		return
	}
	w.UnreachableHosts = append(w.UnreachableHosts, p.host)
	switch {
	case p.x < 0.60:
		// NXDOMAIN: not added to DNS at all.
	case p.x < 0.85:
		// Resolves but nothing listens.
		w.DNS.AddA(p.host, w.allocIP("Private"))
	default:
		// Resolves and serves a 503 on http.
		ip := w.allocIP("Private")
		w.DNS.AddA(p.host, ip)
		w.addSite(&Site{Hostname: p.host, Country: p.cc, IP: ip, Serving: Unavailable})
	}
}

// assignHosting picks the provider. The IP is minted by the caller — for
// worldwide sites that happens in the sequential registration pass, because
// the allocator's per-provider counters are shared state.
func (w *World) assignHosting(s *Site, prof Profile, r *rand.Rand) {
	x := r.Float64()
	switch {
	case x < prof.CDNShare:
		s.Provider = "Cloudflare"
		s.HostKind = hosting.CDN
	case x < prof.CDNShare+prof.CloudShare:
		s.Provider = pickCloud(r)
		s.HostKind = hosting.Cloud
	default:
		s.Provider = "Private"
		s.HostKind = hosting.Private
	}
}

// pickCloud reflects §6.1.2: AWS is 3.5x more popular than Cloudflare, with
// Azure and Google Cloud closely following.
func pickCloud(r *rand.Rand) string {
	x := r.Float64() * 6.05
	switch {
	case x < 3.5:
		return "AWS"
	case x < 4.4:
		return "Azure"
	case x < 5.25:
		return "Google Cloud"
	case x < 5.55:
		return "IBM Cloud"
	case x < 5.85:
		return "Oracle Cloud"
	default:
		return "HP Enterprise"
	}
}

func hostingHTTPSFactor(k hosting.Kind) float64 {
	switch k {
	case hosting.Cloud:
		return 1.8
	case hosting.CDN:
		return 2.0
	default:
		return 0.92
	}
}

func hostingValidFactor(k hosting.Kind) float64 {
	switch k {
	case hosting.Cloud:
		return 1.22
	case hosting.CDN:
		return 1.28
	default:
		return 0.97
	}
}

// allocIP mints the next address in the provider's block ("Private" uses
// the simulation's private-hosting space).
func (w *World) allocIP(provider string) netip.Addr {
	var base netip.Addr
	switch provider {
	case "AWS":
		base = netip.MustParseAddr("52.0.0.0")
	case "Azure":
		base = netip.MustParseAddr("13.64.0.0")
	case "Google Cloud":
		base = netip.MustParseAddr("34.64.0.0")
	case "IBM Cloud":
		base = netip.MustParseAddr("169.44.0.0")
	case "Oracle Cloud":
		base = netip.MustParseAddr("129.146.0.0")
	case "HP Enterprise":
		base = netip.MustParseAddr("15.96.0.0")
	case "Cloudflare":
		base = netip.MustParseAddr("104.16.0.0")
	default:
		base = netip.MustParseAddr("190.0.0.0")
	}
	n := w.ipAlloc[provider]
	w.ipAlloc[provider] = n + 1
	b := base.As4()
	// Skip .0 and .255 to keep addresses plausible.
	n = n + n/254 + 1
	b[3] = byte(n % 256)
	b[2] = byte((n / 256) % 256)
	b[1] += byte(n / 65536)
	return netip.AddrFrom4(b)
}

// addNamedSites registers hostnames the paper calls out by name.
func (w *World) addNamedSites(f *certFactory, r *rand.Rand) {
	// nih.gov: the highest-ranked government hostname (Majestic rank 51).
	if _, ok := w.Sites["nih.gov"]; !ok {
		s := &Site{Hostname: "nih.gov", Country: "us", Provider: "Private", HostKind: hosting.Private}
		s.IP = w.allocIP("Private")
		s.Serving = BothRedirect
		f.configure(s, ClassValid, caMixUSA)
		s.HSTS = true
		w.registerWorldwide(s)
	}
	// miit.gov.cn: the top-ranked government site without TLS (rank 222).
	if _, ok := w.Sites["miit.gov.cn"]; !ok {
		s := &Site{Hostname: "miit.gov.cn", Country: "cn", Provider: "Private", HostKind: hosting.Private}
		s.IP = w.allocIP("Private")
		s.Serving = HTTPOnly
		s.Injected = ClassNone
		w.registerWorldwide(s)
	}
	// eta.gov.lk and its .sl phishing twin (§7.3.2). The phishing site is
	// NOT a government site; it lives in DNS with a valid certificate.
	if _, ok := w.Sites["eta.gov.lk"]; !ok {
		s := &Site{Hostname: "eta.gov.lk", Country: "lk", Provider: "Private", HostKind: hosting.Private}
		s.IP = w.allocIP("Private")
		s.Serving = BothRedirect
		f.configure(s, ClassValid, caMixWorldwide)
		w.registerWorldwide(s)
	}
	w.addSpoofSites(r)
}

// addSpoofSites registers the §7.3.2 attack surface: non-government sites
// with perfectly valid free certificates imitating government hostnames —
// the etagov.sl twin of eta.gov.lk and the 85 abcgov.us-style squats. They
// resolve in DNS and reach the CT log, but never join the government
// dataset (Country is empty).
func (w *World) addSpoofSites(r *rand.Rand) {
	spoofs := []string{"etagov.sl"}
	nSquats := w.scaled(85, 3)
	for _, h := range w.ByCountry["us"] {
		if nSquats == 0 {
			break
		}
		name, suffix, ok := strings.Cut(h, ".")
		if !ok || suffix != "gov" {
			continue
		}
		spoofs = append(spoofs, name+"gov.us")
		nSquats--
	}
	le := w.CAs.MustLookup("Let's Encrypt Authority X3")
	for _, host := range spoofs {
		if _, dup := w.Sites[host]; dup {
			continue
		}
		s := &Site{
			Hostname: host,
			Provider: "Private",
			HostKind: hosting.Private,
			IP:       w.allocIP("Private"),
			Serving:  BothRedirect,
			Injected: ClassValid,
			Issuer:   le.Name,
			TLSMin:   tlssim.TLS1_0,
			TLSMax:   tlssim.TLS1_2,
		}
		s.Chain = le.Issue(ca.Request{
			Hostnames: []string{host},
			Key:       cert.NewKey(r, cert.KeyRSA, 2048),
			NotBefore: w.ScanTime.AddDate(0, -1, 0),
		})
		w.addSite(s)
		w.DNS.AddA(host, s.IP)
	}
}

// buildWhitelist hand-curates hostnames for countries without standard
// government extensions (§4.2.3): every site of a no-convention country
// plus the named extras.
func (w *World) buildWhitelist(r *rand.Rand) {
	for _, cc := range sortedKeys(w.ByCountry) {
		c, ok := geo.ByCode(cc)
		if !ok {
			continue
		}
		// Countries without a standard government extension (Germany,
		// Greenland, Gabon, Denmark, the Netherlands, ...) are reachable
		// only through the hand-curated whitelist. The US extra TLDs are
		// convention-driven, so they are excluded here.
		if c.Convention != geo.ConvNone || cc == "us" {
			continue
		}
		for _, h := range w.ByCountry[cc] {
			w.Whitelist[h] = cc
		}
	}
	_ = r
}

// crc32ish is a tiny deterministic string hash for stable per-host choices.
func crc32ish(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
