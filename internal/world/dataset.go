package world

import (
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/hosting"
)

// datasetSpec describes an authoritative host list (a GSA dataset or the
// ROK Government24 database) whose serving and validity marginals are known
// exactly from the paper's appendix tables.
type datasetSpec struct {
	// key prefixes generated hostnames to keep dataset namespaces disjoint.
	key string
	// suffix is the government domain suffix, e.g. "gov", "mil", "go.kr".
	suffix string
	// country is the ISO code.
	country string
	// Serving marginals at paper scale (pre-scaling).
	httpOnly, both, httpsOnly, unavailable int
	// valid is the number of valid-https hosts.
	valid int
	// invalid maps error classes to exact counts.
	invalid map[ErrorClass]int
	// caMix selects issuers.
	caMix []caWeight
	// cloudShare/cdnShare set hosting.
	cloudShare, cdnShare float64
	// buf is scratch space for hostname, reused across calls so each name
	// costs one allocation (the final string).
	buf []byte
}

// agencyHost builds the i-th hostname of a dataset.
func (d *datasetSpec) hostname(i int) string {
	word := agencyWords[i%len(agencyWords)]
	n := i / len(agencyWords)
	b := append(d.buf[:0], word...)
	if n > 0 {
		b = strconv.AppendInt(b, int64(n), 10)
	}
	b = append(b, '.')
	b = append(b, d.key...)
	b = append(b, '.')
	b = append(b, d.suffix...)
	d.buf = b
	return string(b)
}

// buildDataset realizes the spec as live sites and returns every hostname
// in the dataset, including the unavailable ones.
func (w *World) buildDataset(r *rand.Rand, f *certFactory, d *datasetSpec) []string {
	httpOnly := w.scaled(d.httpOnly, boolToInt(d.httpOnly > 0))
	both := w.scaled(d.both, boolToInt(d.both > 0))
	httpsOnly := w.scaled(d.httpsOnly, boolToInt(d.httpsOnly > 0))
	unavailable := w.scaled(d.unavailable, 0)

	// Build the https class deck with exact (scaled) counts.
	httpsTotal := both + httpsOnly
	deck := make([]ErrorClass, 0, httpsTotal)
	classes := make([]ErrorClass, 0, len(d.invalid))
	for class := range d.invalid {
		classes = append(classes, class)
	}
	// Fixed iteration order: the deck must be identical across builds so a
	// same-seed world assigns every host the same class (map order would
	// survive the shuffle as a different permutation).
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		for i := 0; i < w.scaled(d.invalid[class], boolToInt(d.invalid[class] > 0)); i++ {
			deck = append(deck, class)
		}
	}
	if len(deck) > httpsTotal {
		deck = deck[:httpsTotal]
	}
	for len(deck) < httpsTotal {
		deck = append(deck, ClassValid)
	}
	r.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })

	var hosts []string
	idx := 0
	next := func() string {
		h := d.hostname(idx)
		idx++
		hosts = append(hosts, h)
		return h
	}

	newSite := func(host string, serving Serving) *Site {
		s := &Site{Hostname: host, Country: d.country, Serving: serving}
		prof := Profile{CloudShare: d.cloudShare, CDNShare: d.cdnShare}
		w.assignHosting(s, prof, r)
		s.IP = w.allocIP(s.Provider)
		w.addSite(s)
		w.DNS.AddA(host, s.IP)
		return s
	}

	for i := 0; i < httpOnly; i++ {
		s := newSite(next(), HTTPOnly)
		s.Injected = ClassNone
	}
	di := 0
	for i := 0; i < both; i++ {
		s := newSite(next(), BothNoRedirect)
		f.configure(s, deck[di], d.caMix)
		di++
	}
	for i := 0; i < httpsOnly; i++ {
		serving := HTTPSOnly
		if r.Float64() < 0.7 {
			serving = BothRedirect
		}
		s := newSite(next(), serving)
		f.configure(s, deck[di], d.caMix)
		di++
	}
	for i := 0; i < unavailable; i++ {
		h := next()
		if r.Float64() < 0.6 {
			continue // NXDOMAIN
		}
		w.DNS.AddA(h, w.allocIP("Private"))
	}
	return hosts
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// hostingOf is a small helper for the analysis tests.
func hostingOf(s *Site) hosting.Kind { return s.HostKind }
