package world

import "time"

// Config controls world generation.
type Config struct {
	// Seed drives every random choice; identical seeds yield identical
	// worlds.
	Seed int64
	// Scale multiplies the paper's population counts. 1.0 reproduces the
	// full 135,408-hostname study; tests use small fractions.
	Scale float64
	// ScanTime is the instant certificates are judged against; the paper's
	// main scan ran 22–26 April 2020.
	ScanTime time.Time
	// Flakiness is the fraction of reachable https sites given transient
	// faults: their 443 endpoint fails the first one or two dials (plus
	// injected dial latency on some) before serving normally, exercising
	// the scanner's retry/backoff machinery the way the real Internet's
	// long tail does (§4.2.3). Sites recover within the paper's 3-retry
	// budget, so Table 2 aggregates are unchanged. Zero disables.
	Flakiness float64
}

// Paper-scale reference times.
var (
	// DefaultScanTime matches the paper's measurement window (§4.2.3).
	DefaultScanTime = time.Date(2020, 4, 22, 0, 0, 0, 0, time.UTC)
	// FollowUpScanTime is the two-months-later notification-effectiveness
	// scan (§7.2.2).
	FollowUpScanTime = time.Date(2020, 6, 26, 0, 0, 0, 0, time.UTC)
)

// DefaultConfig is the full-scale paper reproduction.
func DefaultConfig() Config {
	return Config{Seed: 42, Scale: 1.0, ScanTime: DefaultScanTime}
}

// TestConfig is a small world for unit tests: every population is present
// but three orders of magnitude cheaper to build. The seed is chosen so
// even the rarest injected error classes get at least one site at this
// scale.
func TestConfig() Config {
	return Config{Seed: 74, Scale: 0.02, ScanTime: DefaultScanTime}
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.ScanTime.IsZero() {
		c.ScanTime = DefaultScanTime
	}
	return c
}

// Paper-scale population constants (§1, §4, §6, Appendix A).
const (
	paperWorldwideHosts   = 135408 // unique government hostnames considered
	paperUnreachableHosts = 47458  // registered names that never returned 200
	paperSeedHosts        = 27532  // merged top-million-derived seed list
	paperWhitelistHosts   = 596    // hand-curated hostnames (62 countries)
	paperTrancoGovOverlap = 12293  // gov hostnames inside the Tranco million
	paperROKHosts         = 21818  // Government24 hostname database
	paperTopMillion       = 1000000
)
