package world

import (
	"bufio"
	"context"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/httpsim"
	"repro/internal/tlssim"
	"repro/internal/verify"
)

// testWorld is shared across the package's tests; building even a small
// world is the expensive part.
var testWorld = MustBuild(TestConfig())

func TestBuildPopulations(t *testing.T) {
	w := testWorld
	if len(w.GovHosts) < 2000 {
		t.Fatalf("worldwide hosts = %d, want >= 2000 at 2%% scale", len(w.GovHosts))
	}
	if len(w.UnreachableHosts) < 300 {
		t.Errorf("unreachable hosts = %d", len(w.UnreachableHosts))
	}
	if len(w.SeedHosts) < 300 {
		t.Errorf("seed hosts = %d", len(w.SeedHosts))
	}
	if len(w.ByCountry) < 150 {
		t.Errorf("countries represented = %d, want >= 150", len(w.ByCountry))
	}
	if w.USA == nil || len(w.USA.Datasets) != 15 {
		t.Fatalf("USA datasets = %v", w.USA)
	}
	if w.ROK == nil || len(w.ROK.Hosts) < 300 {
		t.Fatalf("ROK hosts missing")
	}
}

func TestDeterminism(t *testing.T) {
	a := MustBuild(Config{Seed: 7, Scale: 0.005})
	b := MustBuild(Config{Seed: 7, Scale: 0.005})
	if len(a.GovHosts) != len(b.GovHosts) {
		t.Fatalf("host counts differ: %d vs %d", len(a.GovHosts), len(b.GovHosts))
	}
	for i := range a.GovHosts {
		if a.GovHosts[i] != b.GovHosts[i] {
			t.Fatalf("host %d differs: %q vs %q", i, a.GovHosts[i], b.GovHosts[i])
		}
	}
	ha, hb := a.GovHosts[len(a.GovHosts)/2], b.GovHosts[len(b.GovHosts)/2]
	sa, sb := a.Sites[ha], b.Sites[hb]
	if sa.Injected != sb.Injected || sa.IP != sb.IP {
		t.Errorf("site attributes differ for %q", ha)
	}
	if len(sa.Chain) > 0 && sa.Chain[0].Fingerprint() != sb.Chain[0].Fingerprint() {
		t.Errorf("certificates differ for %q", ha)
	}
	c := MustBuild(Config{Seed: 8, Scale: 0.005})
	if len(c.GovHosts) == len(a.GovHosts) && c.GovHosts[0] == a.GovHosts[0] && c.GovHosts[1] == a.GovHosts[1] {
		// Different seeds producing an identical prefix would be suspicious.
		same := true
		for i := range a.GovHosts {
			if i >= len(c.GovHosts) || a.GovHosts[i] != c.GovHosts[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical worlds")
		}
	}
}

func TestServingMarginals(t *testing.T) {
	w := testWorld
	var https, total int
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		total++
		if s.Serving.HasHTTPS() {
			https++
		}
	}
	share := float64(https) / float64(total)
	// Table 2: 39.33% of worldwide sites serve https. Allow a band.
	if share < 0.30 || share > 0.50 {
		t.Errorf("https share = %.3f, want ~0.39", share)
	}
}

func TestValidityMarginals(t *testing.T) {
	w := testWorld
	var valid, https int
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if !s.Serving.HasHTTPS() {
			continue
		}
		https++
		if s.Injected == ClassValid {
			valid++
		}
	}
	share := float64(valid) / float64(https)
	// Table 2: 71.41% of https sites are valid.
	if share < 0.60 || share > 0.82 {
		t.Errorf("valid share of https = %.3f, want ~0.71", share)
	}
}

func TestErrorOrdering(t *testing.T) {
	w := testWorld
	counts := map[ErrorClass]int{}
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Serving.HasHTTPS() && s.Injected != ClassValid {
			counts[s.Injected]++
		}
	}
	// Table 2 ordering: mismatch > local issuer > self-signed > expired >
	// self-signed-in-chain.
	if !(counts[ClassHostnameMismatch] > counts[ClassLocalIssuer]) {
		t.Errorf("mismatch (%d) !> local issuer (%d)", counts[ClassHostnameMismatch], counts[ClassLocalIssuer])
	}
	if !(counts[ClassLocalIssuer] > counts[ClassSelfSigned]) {
		t.Errorf("local issuer (%d) !> self-signed (%d)", counts[ClassLocalIssuer], counts[ClassSelfSigned])
	}
	if !(counts[ClassSelfSigned] > counts[ClassExpired]) {
		t.Errorf("self-signed (%d) !> expired (%d)", counts[ClassSelfSigned], counts[ClassExpired])
	}
	if !(counts[ClassExpired] > counts[ClassSelfSignedChain]) {
		t.Errorf("expired (%d) !> ss-chain (%d)", counts[ClassExpired], counts[ClassSelfSignedChain])
	}
}

func TestInjectedClassesMeasurable(t *testing.T) {
	// Ground-truth classes must be rediscoverable by the verifier.
	w := testWorld
	v := &verify.Verifier{Store: w.Stores["apple"], Now: w.ScanTime}
	checked := map[ErrorClass]int{}
	agreed := map[ErrorClass]int{}
	want := map[ErrorClass]verify.Code{
		ClassValid:            verify.OK,
		ClassHostnameMismatch: verify.HostnameMismatch,
		ClassLocalIssuer:      verify.UnableToGetLocalIssuer,
		ClassSelfSigned:       verify.SelfSignedLeaf,
		ClassSelfSignedChain:  verify.SelfSignedInChain,
		ClassExpired:          verify.CertificateExpired,
	}
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		code, ok := want[s.Injected]
		if !ok || len(s.Chain) == 0 {
			continue
		}
		checked[s.Injected]++
		if res := v.Verify(s.Chain, s.Hostname); res.Code == code {
			agreed[s.Injected]++
		}
	}
	for class, n := range checked {
		if n == 0 {
			continue
		}
		rate := float64(agreed[class]) / float64(n)
		if rate < 0.95 {
			t.Errorf("class %v: verifier agrees on %.2f%% of %d sites", class, 100*rate, n)
		}
	}
	if len(checked) < 6 {
		t.Errorf("only %d classes present in world", len(checked))
	}
}

func TestUSACaseStudyValidity(t *testing.T) {
	w := testWorld
	var valid, https int
	for _, d := range w.USA.Datasets {
		for _, h := range d.Hosts {
			s, ok := w.Sites[h]
			if !ok || !s.Serving.HasHTTPS() {
				continue
			}
			https++
			if s.Injected == ClassValid {
				valid++
			}
		}
	}
	share := float64(valid) / float64(https)
	// §6.1: 81.12% valid across the GSA lists.
	if share < 0.72 || share > 0.92 {
		t.Errorf("USA validity = %.3f, want ~0.81", share)
	}
}

func TestROKCaseStudyValidity(t *testing.T) {
	w := testWorld
	var valid, https int
	for _, h := range w.ROK.Hosts {
		s, ok := w.Sites[h]
		if !ok || !s.Serving.HasHTTPS() {
			continue
		}
		https++
		if s.Injected == ClassValid {
			valid++
		}
	}
	share := float64(valid) / float64(https)
	// §6.2: valid share of ROK https = 5,226/13,768 ≈ 38%.
	if share < 0.28 || share > 0.48 {
		t.Errorf("ROK validity of https = %.3f, want ~0.38", share)
	}
}

func TestTopListOverlapShape(t *testing.T) {
	w := testWorld
	tl := w.TopLists
	// Table 1 shape: Tranco overlap grows by decade and Cisco trails
	// Majestic and Tranco.
	full := tl.GovCountWithin("tranco", tl.Max)
	if full == 0 {
		t.Fatal("no gov hosts in tranco")
	}
	if tl.GovCountWithin("tranco", tl.Max/1000) >= tl.GovCountWithin("tranco", tl.Max/10) {
		t.Error("tranco overlap does not grow with K")
	}
	if tl.GovCountWithin("cisco", tl.Max) >= tl.GovCountWithin("majestic", tl.Max) {
		t.Error("cisco overlap should trail majestic")
	}
}

func TestNonGovDeterministic(t *testing.T) {
	tl := testWorld.TopLists
	a := tl.NonGov(1234)
	b := tl.NonGov(1234)
	if a != b {
		t.Errorf("NonGov not deterministic: %+v vs %+v", a, b)
	}
	// Validity declines with rank in aggregate.
	countValid := func(lo, hi int) (valid, n int) {
		for rank := lo; rank < hi; rank++ {
			if tl.IsGovRank(rank) {
				continue
			}
			a := tl.NonGov(rank)
			n++
			if a.Valid {
				valid++
			}
		}
		return
	}
	vTop, nTop := countValid(1, tl.Max/10)
	vBot, nBot := countValid(tl.Max*9/10, tl.Max)
	if float64(vTop)/float64(nTop) <= float64(vBot)/float64(nBot) {
		t.Errorf("non-gov validity should decline with rank: top %.3f bottom %.3f",
			float64(vTop)/float64(nTop), float64(vBot)/float64(nBot))
	}
}

func TestServedSiteEndToEnd(t *testing.T) {
	w := testWorld
	// Find a valid BothRedirect site and walk the whole stack.
	var site *Site
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Injected == ClassValid && s.Serving == BothRedirect {
			site = s
			break
		}
	}
	if site == nil {
		t.Fatal("no valid BothRedirect site in world")
	}
	ctx := context.Background()

	// http side redirects.
	conn, err := w.Net.Dial(ctx, "lab", netip.AddrPortFrom(site.IP, 80))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpsim.Get(conn, site.Hostname, "/")
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsRedirect() || resp.Location() != "https://"+site.Hostname+"/" {
		t.Errorf("http response = %d %q", resp.StatusCode, resp.Location())
	}

	// https side serves a page over a verifiable chain.
	raw, err := w.Net.Dial(ctx, "lab", netip.AddrPortFrom(site.IP, 443))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	tc, err := tlssim.ClientHandshake(raw, tlssim.DefaultClientConfig(site.Hostname))
	if err != nil {
		t.Fatal(err)
	}
	v := &verify.Verifier{Store: w.Stores["apple"], Now: w.ScanTime}
	if res := v.Verify(tc.ConnectionState().Chain, site.Hostname); !res.Valid() {
		t.Fatalf("served chain invalid: %v (%s)", res.Code, res.Detail)
	}
	resp2, err := httpsim.Get(tc, site.Hostname, "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != 200 {
		t.Errorf("https status = %d", resp2.StatusCode)
	}
}

func TestUnavailableSiteServes503(t *testing.T) {
	w := testWorld
	found := false
	for _, h := range w.UnreachableHosts {
		s, ok := w.Sites[h]
		if !ok || s.Serving != Unavailable {
			continue
		}
		found = true
		conn, err := w.Net.Dial(context.Background(), "lab", netip.AddrPortFrom(s.IP, 80))
		if err != nil {
			t.Fatalf("dial unavailable site: %v", err)
		}
		resp, err := httpsim.Get(conn, h, "/")
		conn.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 200 {
			t.Errorf("unavailable site %q returned 200", h)
		}
		break
	}
	if !found {
		t.Skip("no 503-style unavailable site at this scale")
	}
}

func TestKeyReusePresent(t *testing.T) {
	w := testWorld
	keyHosts := map[[16]byte]map[string]bool{} // key -> countries
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if len(s.Chain) == 0 {
			continue
		}
		k := s.Chain[0].PublicKey.ID
		if keyHosts[k] == nil {
			keyHosts[k] = map[string]bool{}
		}
		keyHosts[k][s.Country] = true
	}
	crossCountry := 0
	maxCountries := 0
	for _, countries := range keyHosts {
		if len(countries) > 1 {
			crossCountry++
		}
		if len(countries) > maxCountries {
			maxCountries = len(countries)
		}
	}
	if crossCountry == 0 {
		t.Fatal("no cross-country key reuse injected")
	}
	if maxCountries < 5 {
		t.Errorf("largest reuse cluster spans %d countries, want the 24-country cert (scaled)", maxCountries)
	}
}

func TestCrawlDepthAssignment(t *testing.T) {
	w := testWorld
	byDepth := map[int]int{}
	for _, h := range w.GovHosts {
		byDepth[w.Sites[h].Depth]++
	}
	if byDepth[0] == 0 {
		t.Fatal("no seed-depth sites")
	}
	// Depth shares grow to a mid-level peak and taper at 6-7 (Fig A.4).
	if byDepth[6] >= byDepth[3] || byDepth[7] >= byDepth[3] {
		t.Errorf("crawl growth does not taper: %v", byDepth)
	}
}

func TestLinkGraphReachability(t *testing.T) {
	// Every non-seed site must be reachable from the seed set by links.
	w := testWorld
	visited := map[string]bool{}
	queue := append([]string(nil), w.SeedHosts...)
	for _, h := range queue {
		visited[h] = true
	}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		s, ok := w.Sites[h]
		if !ok {
			continue
		}
		for _, l := range s.Links {
			if _, isGov := w.Sites[l]; isGov && !visited[l] {
				visited[l] = true
				queue = append(queue, l)
			}
		}
	}
	missed := 0
	for _, h := range w.GovHosts {
		if !visited[h] {
			missed++
		}
	}
	if frac := float64(missed) / float64(len(w.GovHosts)); frac > 0.02 {
		t.Errorf("%.1f%% of gov sites unreachable from seeds", 100*frac)
	}
}

func TestMTurkCampaign(t *testing.T) {
	w := testWorld
	c := w.RunMTurk(rand.New(rand.NewSource(5)))
	if c.TasksIssued == 0 {
		t.Fatal("no MTurk tasks issued")
	}
	if len(c.CountriesCovered) == 0 {
		t.Fatal("no countries covered")
	}
	if len(c.Hostnames) < len(c.NewHostnames) {
		t.Error("new hostnames exceed total hostnames")
	}
	for _, h := range c.NewHostnames {
		if _, ok := w.Sites[h]; !ok {
			t.Errorf("MTurk returned unknown hostname %q", h)
		}
	}
}

func TestWhitelistCountries(t *testing.T) {
	w := testWorld
	if len(w.Whitelist) == 0 {
		t.Fatal("whitelist empty")
	}
	ccs := map[string]bool{}
	for _, cc := range w.Whitelist {
		ccs[cc] = true
	}
	for _, want := range []string{"de", "nl", "dk"} {
		if !ccs[want] {
			t.Errorf("whitelist missing country %s", want)
		}
	}
}

func TestNamedSites(t *testing.T) {
	w := testWorld
	nih, ok := w.Host("nih.gov")
	if !ok || nih.Injected != ClassValid {
		t.Error("nih.gov missing or invalid")
	}
	miit, ok := w.Host("miit.gov.cn")
	if !ok || miit.Serving != HTTPOnly {
		t.Error("miit.gov.cn missing or not http-only")
	}
}

func TestInvalidScaleRejected(t *testing.T) {
	if _, err := Build(Config{Seed: 1, Scale: 2.0}); err == nil {
		t.Error("scale 2.0 accepted")
	}
	if _, err := Build(Config{Seed: 1, Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestCAARecordsSparse(t *testing.T) {
	w := testWorld
	with, valid := w.DNS.CAACount()
	if with == 0 {
		t.Fatal("no CAA records in world")
	}
	if with != valid {
		t.Errorf("CAA: %d records, %d valid — paper reports 100%% valid", with, valid)
	}
	frac := float64(with) / float64(len(w.GovHosts))
	if frac > 0.05 {
		t.Errorf("CAA coverage %.3f, want ~0.014", frac)
	}
}

func TestQuirkSitesHandshakeFail(t *testing.T) {
	w := testWorld
	tried := 0
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Injected != ClassExcSSLProto || s.Fault != 0 {
			continue
		}
		raw, err := w.Net.Dial(context.Background(), "lab", netip.AddrPortFrom(s.IP, 443))
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		_, err = tlssim.ClientHandshake(raw, tlssim.DefaultClientConfig(s.Hostname))
		raw.Close()
		if err != tlssim.ErrUnsupportedProtocol {
			t.Errorf("%s handshake err = %v, want unsupported protocol", h, err)
		}
		tried++
		if tried >= 3 {
			break
		}
	}
	if tried == 0 {
		t.Skip("no SSLv2-only sites at this scale")
	}
}

func TestBothNoRedirectServesBoth(t *testing.T) {
	w := testWorld
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Serving != BothNoRedirect || s.Injected != ClassValid {
			continue
		}
		conn, err := w.Net.Dial(context.Background(), "lab", netip.AddrPortFrom(s.IP, 80))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := httpsim.Get(conn, h, "/")
		conn.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("BothNoRedirect http status = %d, want 200 (no upgrade)", resp.StatusCode)
		}
		return
	}
	t.Skip("no valid BothNoRedirect site at this scale")
}

func TestPageLinksParseable(t *testing.T) {
	w := testWorld
	var site *Site
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Serving == HTTPOnly && len(s.Links) > 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no linked http site")
	}
	conn, err := w.Net.Dial(context.Background(), "lab", netip.AddrPortFrom(site.IP, 80))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := httpsim.WriteRequest(conn, "GET", site.Hostname, "/"); err != nil {
		t.Fatal(err)
	}
	resp, err := httpsim.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	links := httpsim.ExtractLinks(resp.Body)
	if len(links) != len(site.Links) {
		t.Errorf("page links = %d, site links = %d", len(links), len(site.Links))
	}
}

func TestSpoofSitesPresent(t *testing.T) {
	w := testWorld
	spoof, ok := w.Host("etagov.sl")
	if !ok {
		t.Fatal("etagov.sl missing")
	}
	if spoof.Country != "" {
		t.Error("spoof site attributed to a government")
	}
	if spoof.Injected != ClassValid {
		t.Error("spoof site should carry a valid certificate (§7.3.2)")
	}
	for _, h := range w.GovHosts {
		if h == "etagov.sl" {
			t.Fatal("spoof site leaked into the government dataset")
		}
	}
	// The squat population derived from .gov names exists.
	squats := 0
	for h, s := range w.Sites {
		if s.Country == "" && s.Injected == ClassValid && strings.HasSuffix(h, "gov.us") {
			squats++
		}
	}
	if squats == 0 {
		t.Error("no abcgov.us-style squats in world")
	}
}

func TestCTLogPopulated(t *testing.T) {
	w := testWorld
	if w.CT == nil || w.CT.Size() == 0 {
		t.Fatal("CT log empty")
	}
	cov := w.CT.MeasureCoverage(w.GovLeafCerts())
	// ~10% CT blind spot plus never-logged self-signed/internal chains.
	if cov.Pct() < 55 || cov.Pct() > 95 {
		t.Errorf("CT coverage = %.1f%%, want a visible but partial gap", cov.Pct())
	}
	// The spoof sites are in the log (that is what makes them catchable).
	if entries := w.CT.EntriesFor("etagov.sl"); len(entries) == 0 {
		t.Error("spoof certificate not logged")
	}
	// Self-signed chains never reach the log.
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Injected == ClassSelfSigned && len(s.Chain) > 0 && s.Chain[0].SelfSigned() {
			if len(w.CT.EntriesFor(h)) != 0 {
				t.Errorf("self-signed certificate of %s found in CT log", h)
			}
			break
		}
	}
}

func TestWhoisWired(t *testing.T) {
	w := testWorld
	if w.Whois == nil {
		t.Fatal("whois server missing")
	}
	rec, err := w.Whois.Lookup("health.gov.br")
	if err != nil || rec.Country != "br" {
		t.Errorf("whois lookup = %+v, %v", rec, err)
	}
	if !w.Net.HasEndpoint(WhoisAddr) {
		t.Error("whois endpoint not served")
	}
}
