package world

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hosting"
)

// RankedHost is one (government) entry of a top-million list.
type RankedHost struct {
	Host string
	Rank int
}

// TopLists models the public ranking datasets (§2.1, §4.1): the government
// membership of the Majestic, Cisco/Umbrella and Tranco millions, plus a
// deterministic generator for non-government top-million sites used by the
// §5.5 comparison.
type TopLists struct {
	// Max is the list length (paper: one million), scaled.
	Max int
	// TrancoGov, MajesticGov and CiscoGov list the government hostnames
	// present in each list with their ranks, sorted by rank.
	TrancoGov   []RankedHost
	MajesticGov []RankedHost
	CiscoGov    []RankedHost

	seed int64
	// trancoRankSet marks ranks taken by government sites.
	trancoRankSet map[int]bool
}

// NonGovAttrs are the deterministic attributes of a non-government
// top-million site.
type NonGovAttrs struct {
	Hostname string
	Rank     int
	HTTPS    bool
	Valid    bool
	HostKind hosting.Kind
}

// govOverlapTargets encodes Table 1: the number of government hostnames in
// the top 1K/10K/100K/1M of each public list.
var govOverlapTargets = map[string][4]int{
	"majestic": {56, 508, 2538, 12445},
	"cisco":    {0, 14, 433, 9296},
	"tranco":   {30, 373, 2351, 12293},
}

// buildTopLists assigns ranks to seed-list government sites so the Table 1
// overlaps hold, correlating better Tranco ranks with healthier sites so
// Figure 7's downward trend emerges from the data.
func (w *World) buildTopLists(r *rand.Rand) {
	t := &TopLists{
		Max:           w.scaled(paperTopMillion, 1000),
		seed:          w.Cfg.Seed ^ 0x746f706c697374, // "toplist"
		trancoRankSet: make(map[int]bool),
	}
	w.TopLists = t

	// Candidates: the seed sites (depth 0), scored so that valid-https
	// sites tend to earn better ranks.
	var candidates []string
	for _, h := range w.SeedHosts {
		candidates = append(candidates, h)
	}
	sort.Strings(candidates)
	type scored struct {
		host  string
		score float64
	}
	// Which sites appear in a list is independent of their health (the
	// overall ranked-gov validity matches the long tail, §5.5), but the
	// score decides rank quality among the chosen: valid sites drift
	// toward better ranks, producing Figure 7's downward trend.
	order := r.Perm(len(candidates))
	sc := make([]scored, 0, len(candidates))
	for _, idx := range order {
		h := candidates[idx]
		s := w.Sites[h]
		score := r.Float64()
		if s.Injected != ClassValid {
			score += 0.35
		}
		sc = append(sc, scored{h, score})
	}

	assign := func(list string) []RankedHost {
		targets := govOverlapTargets[list]
		buckets := [4][2]int{{1, 1000}, {1001, 10000}, {10001, 100000}, {100001, 1000000}}
		// Select the list membership uniformly, then order the selection
		// by score so better buckets receive healthier sites.
		needed := w.scaled(targets[3], 0)
		if needed > len(sc) {
			needed = len(sc)
		}
		selection := make([]scored, needed)
		copy(selection, sc[:needed])
		sort.Slice(selection, func(i, j int) bool { return selection[i].score < selection[j].score })

		prev := 0
		var out []RankedHost
		used := make(map[int]bool)
		ci := 0
		for b, cum := range targets {
			n := w.scaled(cum-prev, 0)
			prev = cum
			lo := w.scaled(buckets[b][0], 1)
			hi := w.scaled(buckets[b][1], 10)
			if hi > t.Max {
				hi = t.Max
			}
			if hi <= lo {
				continue
			}
			if n > (hi-lo)/2 {
				n = (hi - lo) / 2 // keep rank collisions cheap to resolve
			}
			for i := 0; i < n && ci < len(selection); i++ {
				rank := lo + r.Intn(hi-lo)
				for used[rank] {
					rank = lo + r.Intn(hi-lo)
				}
				used[rank] = true
				out = append(out, RankedHost{Host: selection[ci].host, Rank: rank})
				ci++
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
		return out
	}
	t.TrancoGov = assign("tranco")
	t.MajesticGov = assign("majestic")
	t.CiscoGov = assign("cisco")

	for _, rh := range t.TrancoGov {
		t.trancoRankSet[rh.Rank] = true
		if s, ok := w.Sites[rh.Host]; ok {
			s.Rank = rh.Rank
		}
	}
}

// GovCountWithin counts government hostnames at or above the rank
// threshold in the named list ("tranco", "majestic", "cisco").
func (t *TopLists) GovCountWithin(list string, topK int) int {
	var hosts []RankedHost
	switch list {
	case "tranco":
		hosts = t.TrancoGov
	case "majestic":
		hosts = t.MajesticGov
	case "cisco":
		hosts = t.CiscoGov
	}
	n := sort.Search(len(hosts), func(i int) bool { return hosts[i].Rank > topK })
	return n
}

// IsGovRank reports whether the Tranco rank belongs to a government site.
func (t *TopLists) IsGovRank(rank int) bool { return t.trancoRankSet[rank] }

// NonGov deterministically generates the non-government site occupying the
// given Tranco rank. The rank must not belong to a government site.
// Validity declines with rank and improves on cloud/CDN hosting, matching
// the gradients of Figures 6 and 7.
func (t *TopLists) NonGov(rank int) NonGovAttrs {
	r := rand.New(rand.NewSource(t.seed ^ int64(rank)*-0x61c8864680b583eb))
	frac := float64(rank) / float64(t.Max)
	a := NonGovAttrs{
		Hostname: fmt.Sprintf("site-%d.example-%04x.com", rank, r.Intn(1<<16)),
		Rank:     rank,
	}
	switch x := r.Float64(); {
	case x < 0.30-0.08*frac:
		a.HostKind = hosting.Cloud
	case x < 0.42-0.08*frac:
		a.HostKind = hosting.CDN
	default:
		a.HostKind = hosting.Private
	}
	pHTTPS := 0.92 - 0.25*frac
	a.HTTPS = r.Float64() < pHTTPS
	if a.HTTPS {
		pValid := 0.80 - 0.18*frac
		switch a.HostKind {
		case hosting.Cloud, hosting.CDN:
			pValid *= 1.15
		default:
			pValid *= 0.88
		}
		a.Valid = r.Float64() < clamp(pValid, 0, 0.99)
	}
	return a
}

// NonGovRanks returns every rank in [1, Max] not held by a government
// site. Used for uniform and rank-matched sampling (§5.5).
func (t *TopLists) NonGovRanks() []int {
	out := make([]int, 0, t.Max-len(t.trancoRankSet))
	for rank := 1; rank <= t.Max; rank++ {
		if !t.trancoRankSet[rank] {
			out = append(out, rank)
		}
	}
	return out
}
