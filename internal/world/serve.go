package world

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"net"
	"net/netip"
	"time"

	"repro/internal/httpsim"
	"repro/internal/simnet"
	"repro/internal/tlssim"
)

// serveAll registers every site's endpoints on the simulated network.
// Handlers are registered lazily (no goroutine per site), so a full-scale
// world of hundreds of thousands of endpoints stays cheap.
func (w *World) serveAll() {
	//lint:allow maprange Network.Handle is a keyed map insert per endpoint and no RNG is drawn here, so registration order cannot leak into scan results
	for _, s := range w.Sites {
		w.serveSite(s)
	}
}

func (w *World) serveSite(s *Site) {
	if !s.IP.IsValid() {
		return
	}
	ep80 := netip.AddrPortFrom(s.IP, 80)
	ep443 := netip.AddrPortFrom(s.IP, 443)

	switch s.Serving {
	case Unavailable:
		// Resolves, answers http, but never with a 200 — except for an
		// active ACME challenge, which the renewal fleet may publish even
		// on a host whose main service is down.
		site := s
		w.Net.Handle(ep80, func(conn net.Conn) {
			defer conn.Close()
			req, err := httpsim.ReadRequestConn(conn)
			if err != nil {
				return
			}
			if body, ok := w.challengeAnswer(site.Hostname, req.Path); ok {
				httpsim.WriteResponse(conn, 200, nil, []byte(body))
				return
			}
			conn.Write(resp503)
		})
		return
	case HTTPOnly:
		w.Net.Handle(ep80, w.httpHandler(s, false))
	case HTTPSOnly:
		w.serveTLS(s, ep443)
	case BothRedirect:
		w.Net.Handle(ep80, w.httpHandler(s, true))
		w.serveTLS(s, ep443)
	case BothNoRedirect:
		w.Net.Handle(ep80, w.httpHandler(s, false))
		w.serveTLS(s, ep443)
	}
}

// serveTLS wires the https endpoint, installing network faults where the
// site's class calls for them.
func (w *World) serveTLS(s *Site, ep netip.AddrPort) {
	if s.Fault != simnet.FaultNone {
		// The endpoint must exist for the fault to be meaningful.
		w.Net.Handle(ep, func(conn net.Conn) { conn.Close() })
		w.Net.SetFault(ep, s.Fault)
		return
	}
	// No eager Freeze here: the Certificate message is encoded once per
	// site (certMsgOnce), and the scanner fingerprints the parsed copy it
	// receives, never these objects. buildCT freezes the chains it logs.
	cfg := &tlssim.ServerConfig{
		Chain:      s.Chain,
		MinVersion: s.TLSMin,
		MaxVersion: s.TLSMax,
		Quirk:      s.Quirk,
	}
	site := s
	w.Net.Handle(ep, func(conn net.Conn) {
		defer conn.Close()
		tc, err := tlssim.ServerHandshake(conn, cfg)
		if err != nil {
			return
		}
		w.answer(tc, site, false)
	})
}

// httpHandler serves the plain-http side. Active http-01 challenges
// answer before the redirect: Let's Encrypt validates over port 80, so a
// redirecting site must still serve its challenge files directly.
func (w *World) httpHandler(s *Site, redirect bool) simnet.Handler {
	site := s
	return func(conn net.Conn) {
		defer conn.Close()
		req, err := httpsim.ReadRequestConn(conn)
		if err != nil {
			return
		}
		if body, ok := w.challengeAnswer(site.Hostname, req.Path); ok {
			httpsim.WriteResponse(conn, 200, nil, []byte(body))
			return
		}
		if redirect {
			site.render()
			conn.Write(site.respRedirect)
			return
		}
		w.writePage(conn, site, false)
	}
}

// answer handles one request arriving over an established TLS connection.
func (w *World) answer(conn net.Conn, s *Site, _ bool) {
	if _, err := httpsim.ReadRequestConn(conn); err != nil {
		return
	}
	w.writePage(conn, s, true)
}

func (w *World) writePage(conn net.Conn, s *Site, https bool) {
	s.render()
	if https {
		conn.Write(s.respHTTPS)
	} else {
		conn.Write(s.respHTTP)
	}
}

// render serializes the site's responses once, on first request — after the
// link graph is final — so every later request is a single buffer write.
// Safe under concurrent scanners via renderOnce.
func (s *Site) render() {
	s.renderOnce.Do(func() {
		links := make([]string, 0, len(s.Links))
		for _, l := range s.Links {
			links = append(links, "http://"+l+"/")
		}
		title := fmt.Sprintf("Official website — %s", s.Hostname)
		body := httpsim.RenderPage(title, links)

		var b bytes.Buffer
		b.Grow(len(body) + 256)
		hdr := map[string]string{"Content-Type": "text/html"}
		httpsim.WriteResponse(&b, 200, hdr, body)
		s.respHTTP = append([]byte(nil), b.Bytes()...)

		if s.HSTS {
			hdr["Strict-Transport-Security"] = "max-age=31536000; includeSubDomains; preload"
		}
		b.Reset()
		httpsim.WriteResponse(&b, 200, hdr, body)
		s.respHTTPS = append([]byte(nil), b.Bytes()...)

		b.Reset()
		httpsim.WriteResponse(&b, 301, map[string]string{
			"Location": "https://" + s.Hostname + "/",
		}, nil)
		s.respRedirect = append([]byte(nil), b.Bytes()...)
	})
}

// resp503 is the canned unavailable-site answer.
var resp503 = func() []byte {
	var b bytes.Buffer
	httpsim.WriteResponse(&b, 503, nil, []byte("service unavailable"))
	return b.Bytes()
}()

// injectTransientFaults makes Cfg.Flakiness of the reachable https estate
// flaky: the 443 endpoint fails its first one or two dials (connection
// reset) before serving normally, and some of those hosts also answer
// slowly (injected dial latency on the shared virtual clock). Selection is
// a per-hostname hash of the seed — not a sequential RNG — so the
// injection is identical regardless of map iteration order, and every
// faulted site recovers within the paper's 3-retry budget, leaving the
// Table 2 calibration untouched.
func (w *World) injectTransientFaults() {
	if w.Cfg.Flakiness <= 0 {
		return
	}
	//lint:allow maprange selection hashes each hostname against the seed, so the injected fault set is identical under any iteration order
	for _, s := range w.Sites {
		if !s.IP.IsValid() || !s.Serving.HasHTTPS() || s.Fault != simnet.FaultNone {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(s.Hostname))
		var seedBuf [8]byte
		for i := 0; i < 8; i++ {
			seedBuf[i] = byte(w.Cfg.Seed >> (8 * i))
		}
		h.Write(seedBuf[:])
		v := h.Sum64()
		if float64(v>>11)/float64(1<<53) >= w.Cfg.Flakiness {
			continue
		}
		spec := simnet.FaultSpec{
			Mode:      simnet.FaultFlaky,
			FailCount: 1 + int(v%2),
		}
		if v%3 == 0 {
			spec.DialLatency = time.Duration(50+v%450) * time.Millisecond
		}
		w.Net.SetFaultSpec(netip.AddrPortFrom(s.IP, 443), spec)
	}
}

// buildFirewall installs the national-firewall model (§7.1.2): dials from
// the default external vantage to blocked Chinese endpoints time out. The
// blocked set is the unreachable-but-resolving Chinese population, so the
// worldwide calibration of reachable sites is untouched.
func (w *World) buildFirewall() {
	blocked := make(map[netip.Addr]bool)
	for _, host := range w.UnreachableHosts {
		if w.CountryOf(host) != "" {
			continue // reachable sites are never firewalled
		}
		addrs, err := w.DNS.LookupA(host)
		if err != nil || len(addrs) == 0 {
			continue
		}
		// Only .cn hostnames participate in the firewall model.
		if len(host) > 3 && host[len(host)-3:] == ".cn" {
			blocked[addrs[0]] = true
		}
	}
	if len(blocked) == 0 {
		return
	}
	w.Net.SetFirewall(func(fromVantage string, to netip.AddrPort) error {
		if fromVantage == "cn-domestic" {
			return nil // §7.1.2: VPN vantages closer to China did not help us either
		}
		if blocked[to.Addr()] {
			return simnet.ErrFirewallTimeout
		}
		return nil
	})
}
