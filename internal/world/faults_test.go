package world

import (
	"net/netip"
	"testing"

	"repro/internal/simnet"
)

// TestFlakinessInjection checks the transient-fault injector: selection is
// seed-deterministic, only healthy https endpoints are touched, and every
// installed fault heals within the paper's 3-retry budget.
func TestFlakinessInjection(t *testing.T) {
	cfg := TestConfig()
	cfg.Flakiness = 0.5
	w := MustBuild(cfg)

	faulted := 0
	for _, s := range w.Sites {
		if !s.IP.IsValid() {
			continue
		}
		spec := w.Net.FaultAt(netip.AddrPortFrom(s.IP, 443))
		if spec.Mode == simnet.FaultNone && spec.DialLatency == 0 {
			continue
		}
		if s.Fault != simnet.FaultNone {
			continue // the site's own permanent fault, not an injection
		}
		faulted++
		if !s.Serving.HasHTTPS() {
			t.Errorf("%q: fault injected on a non-https site", s.Hostname)
		}
		if spec.Mode != simnet.FaultFlaky {
			t.Errorf("%q: injected mode = %v, want FaultFlaky", s.Hostname, spec.Mode)
		}
		if spec.FailCount < 1 || spec.FailCount > 3 {
			t.Errorf("%q: FailCount = %d, outside the 3-retry heal budget", s.Hostname, spec.FailCount)
		}
	}
	if faulted == 0 {
		t.Fatal("Flakiness=0.5 injected no faults")
	}

	// Same seed, same injection — independent of map iteration order.
	w2 := MustBuild(cfg)
	for _, s := range w.Sites {
		if !s.IP.IsValid() {
			continue
		}
		ep := netip.AddrPortFrom(s.IP, 443)
		if w.Net.FaultAt(ep) != w2.Net.FaultAt(ep) {
			t.Fatalf("%q: fault spec differs between same-seed builds", s.Hostname)
		}
	}

	// Zero flakiness injects nothing beyond the sites' own faults.
	w0 := MustBuild(TestConfig())
	for _, s := range w0.Sites {
		if !s.IP.IsValid() || s.Fault != simnet.FaultNone {
			continue
		}
		if spec := w0.Net.FaultAt(netip.AddrPortFrom(s.IP, 443)); spec.Mode != simnet.FaultNone {
			t.Fatalf("%q: fault %v present with Flakiness=0", s.Hostname, spec.Mode)
		}
	}
}

// TestSameSeedSameSites: two same-seed builds must agree on every per-host
// attribute, not just on aggregates — checkpoint/resume across processes
// depends on it. (Regression test: the GSA class deck was once built by Go
// map iteration, so which host drew which error class varied per build
// even though the Table 2 marginals never moved.)
func TestSameSeedSameSites(t *testing.T) {
	w1 := MustBuild(TestConfig())
	w2 := MustBuild(TestConfig())
	if len(w1.Sites) != len(w2.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(w1.Sites), len(w2.Sites))
	}
	for h, s1 := range w1.Sites {
		s2 := w2.Sites[h]
		if s2 == nil {
			t.Fatalf("host %q missing from second build", h)
		}
		if s1.IP != s2.IP || s1.Injected != s2.Injected || s1.Serving != s2.Serving ||
			s1.Fault != s2.Fault || s1.Quirk != s2.Quirk || s1.HSTS != s2.HSTS {
			t.Errorf("host %q differs between same-seed builds:\n  %+v\n  %+v", h,
				[]any{s1.IP, s1.Injected, s1.Serving, s1.Fault, s1.Quirk, s1.HSTS},
				[]any{s2.IP, s2.Injected, s2.Serving, s2.Fault, s2.Quirk, s2.HSTS})
			return
		}
		if len(s1.Chain) > 0 && len(s2.Chain) > 0 &&
			s1.Chain[0].Fingerprint() != s2.Chain[0].Fingerprint() {
			t.Errorf("host %q: leaf certificate differs between same-seed builds", h)
			return
		}
	}
}
