package world

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/httpsim"
	"repro/internal/simnet"
	"repro/internal/tlssim"
)

// challengeState holds the http-01 tokens the renewal fleet has published
// on sites' web servers. It lives beside the Sites index rather than on
// Site so the hot request path (httpHandler) can skip it with one atomic
// load when no ACME campaign is running.
type challengeState struct {
	active atomic.Int64
	mu     sync.RWMutex
	// byHost maps hostname -> token set. The challenge body is the token
	// itself, matching acme.Server's http-01 validation.
	byHost map[string]map[string]bool
}

// SetChallenge publishes an http-01 token for the hostname, as a webmaster
// (or certbot) would install a challenge file. Sites that serve no plain
// http — https-only or unavailable — get a temporary standalone responder
// bound to port 80 for the duration, like certbot's standalone
// authenticator. Returns false for hostnames the world does not know.
func (w *World) SetChallenge(hostname, token string) bool {
	s, ok := w.Sites[hostname]
	if !ok || !s.IP.IsValid() {
		return false
	}
	w.challenges.mu.Lock()
	if w.challenges.byHost == nil {
		w.challenges.byHost = make(map[string]map[string]bool)
	}
	tokens := w.challenges.byHost[hostname]
	if tokens == nil {
		tokens = make(map[string]bool)
		w.challenges.byHost[hostname] = tokens
	}
	if !tokens[token] {
		tokens[token] = true
		w.challenges.active.Add(1)
	}
	w.challenges.mu.Unlock()
	if !s.Serving.HasHTTP() && s.Serving != Unavailable {
		// No handler owns port 80: bind the standalone responder. The
		// Unavailable handler already consults the challenge table.
		w.Net.Handle(netip.AddrPortFrom(s.IP, 80), w.challengeOnlyHandler(s))
	}
	return true
}

// ClearChallenge withdraws every token published for the hostname and,
// when a standalone responder was bound, releases port 80 again.
func (w *World) ClearChallenge(hostname string) {
	s, ok := w.Sites[hostname]
	if !ok {
		return
	}
	w.challenges.mu.Lock()
	if tokens := w.challenges.byHost[hostname]; len(tokens) > 0 {
		w.challenges.active.Add(int64(-len(tokens)))
		delete(w.challenges.byHost, hostname)
	}
	w.challenges.mu.Unlock()
	if s.IP.IsValid() && !s.Serving.HasHTTP() && s.Serving != Unavailable {
		w.Net.Handle(netip.AddrPortFrom(s.IP, 80), nil)
	}
}

// challengeAnswer reports whether path is an active http-01 challenge for
// the hostname and returns the response body. The no-campaign fast path
// is one atomic load.
func (w *World) challengeAnswer(hostname, path string) (string, bool) {
	if w.challenges.active.Load() == 0 {
		return "", false
	}
	const prefix = "/.well-known/acme-challenge/"
	if len(path) <= len(prefix) || path[:len(prefix)] != prefix {
		return "", false
	}
	token := path[len(prefix):]
	w.challenges.mu.RLock()
	ok := w.challenges.byHost[hostname][token]
	w.challenges.mu.RUnlock()
	return token, ok
}

// challengeOnlyHandler answers http-01 probes and nothing else — the
// standalone responder for sites with no plain-http service.
func (w *World) challengeOnlyHandler(s *Site) simnet.Handler {
	site := s
	return func(conn net.Conn) {
		defer conn.Close()
		req, err := httpsim.ReadRequestConn(conn)
		if err != nil {
			return
		}
		if body, ok := w.challengeAnswer(site.Hostname, req.Path); ok {
			httpsim.WriteResponse(conn, 200, nil, []byte(body))
			return
		}
		httpsim.WriteResponse(conn, 404, nil, nil)
	}
}

// RotateCert swaps the site's certificate chain for a freshly issued one
// and re-registers its endpoints — the fleet's zero-downtime deploy.
// Handler registration is an atomic swap in the network's endpoint table:
// established connections finish against the old closure, new dials get
// the new chain, and no dial ever observes a torn-down port. Rotation
// also clears the operational debris a competent redeploy fixes: network
// faults on 443, TLS quirks, and ancient protocol ceilings. Returns false
// for unknown hostnames or empty chains.
func (w *World) RotateCert(hostname string, chain []*cert.Certificate) bool {
	s, ok := w.Sites[hostname]
	if !ok || !s.IP.IsValid() || len(chain) == 0 {
		return false
	}
	leaf := chain[0]
	s.Chain = chain
	if leaf.SelfSigned() {
		s.Issuer = ""
	} else {
		s.Issuer = leaf.Issuer.CommonName
	}
	// Fresh CA issuance reaches the transparency log, the same way
	// buildCT submits chains: self-signed and unknown-issuer chains
	// never log. The CT timestamp convention matches buildCT's.
	if w.CT != nil && !leaf.SelfSigned() {
		if _, known := w.CAs.Lookup(leaf.Issuer.CommonName); known {
			for _, c := range chain {
				c.Freeze()
			}
			w.CT.Append(leaf, leaf.NotBefore.Add(time.Minute))
		}
	}
	w.recordChange(leaf.NotBefore, hostname, CertRotated)
	// Clear declared and injected faults on 443 (SetFaultSpec with the
	// zero spec also removes transient flaky specs that were installed
	// without marking s.Fault).
	w.Net.SetFaultSpec(netip.AddrPortFrom(s.IP, 443), simnet.FaultSpec{})
	s.Fault = simnet.FaultNone
	s.Quirk = tlssim.QuirkNone
	s.TLSMin, s.TLSMax = tlssim.TLS1_0, tlssim.TLS1_2
	if !s.Serving.HasHTTPS() {
		// An http-only host adopting https via ACME starts redirecting.
		s.Serving = BothRedirect
	}
	w.serveSite(s)
	return true
}
