package world

import (
	"math/rand"
	"strconv"

	"repro/internal/geo"
)

// Word lists for synthesizing plausible government hostnames. Combined with
// per-country government suffixes they produce names like
// "health.gov.bd", "www.tax.gouv.sn" or "immigration.moj.go.kr".
var (
	agencyWords = []string{
		"health", "tax", "finance", "treasury", "immigration", "customs",
		"justice", "interior", "education", "agriculture", "transport",
		"energy", "labor", "commerce", "defense", "foreign", "environment",
		"tourism", "culture", "sports", "science", "planning", "housing",
		"water", "mines", "fisheries", "forestry", "statistics", "census",
		"elections", "parliament", "senate", "president", "pm", "cabinet",
		"police", "courts", "prisons", "lands", "survey", "registry",
		"pensions", "social", "welfare", "youth", "women", "veterans",
		"ports", "aviation", "rail", "roads", "post", "telecom", "ict",
		"media", "archives", "library", "museum", "weather", "met",
		"geology", "standards", "procurement", "budget", "audit", "revenue",
		"trade", "industry", "investment", "sme", "export", "bank",
	}
	orgWords = []string{
		"ministry", "dept", "office", "bureau", "agency", "authority",
		"commission", "council", "board", "service", "directorate",
		"secretariat", "institute", "center", "fund", "corp",
	}
	localWords = []string{
		"city", "county", "district", "province", "region", "municipal",
		"prefecture", "state", "town", "village", "canton", "borough",
	}
	cityWords = []string{
		"north", "south", "east", "west", "central", "upper", "lower",
		"new", "old", "port", "lake", "river", "hill", "bay", "cape",
		"grand", "little", "mount", "fort", "saint",
	}
	citySuffixes = []string{
		"ville", "ton", "burg", "field", "ford", "haven", "dale",
		"wood", "land", "stad", "pur", "abad", "nagar", "gang",
	}
)

// nameGen synthesizes unique hostnames under a country's gov suffixes.
type nameGen struct {
	country  geo.Country
	r        *rand.Rand
	used     map[string]bool
	counter  int
	suffixes []string
}

func newNameGen(c geo.Country, r *rand.Rand) *nameGen {
	return &nameGen{country: c, r: r, used: make(map[string]bool), suffixes: c.GovSuffixes()}
}

// suffix picks one of the country's government suffixes, weighted toward
// the primary convention.
func (g *nameGen) suffix() string {
	suffixes := g.suffixes
	if len(suffixes) == 0 {
		// Whitelist-only countries host under bare ccTLD domains.
		return g.country.Code
	}
	if len(suffixes) == 1 || g.r.Float64() < 0.7 {
		return suffixes[0]
	}
	return suffixes[1+g.r.Intn(len(suffixes)-1)]
}

// next produces a fresh unique hostname.
func (g *nameGen) next() string {
	for attempt := 0; attempt < 40; attempt++ {
		h := g.candidate()
		if !g.used[h] {
			g.used[h] = true
			return h
		}
	}
	// Exhausted the combinatorial space; fall back to a numbered name.
	g.counter++
	h := "site" + strconv.Itoa(g.counter) + "." + g.suffix()
	g.used[h] = true
	return h
}

func (g *nameGen) candidate() string {
	suffix := g.suffix()
	agency := agencyWords[g.r.Intn(len(agencyWords))]
	switch g.r.Intn(6) {
	case 0: // health.gov.xx
		return agency + "." + suffix
	case 1: // www.health.gov.xx
		return "www." + agency + "." + suffix
	case 2: // health.ministry.gov.xx
		org := orgWords[g.r.Intn(len(orgWords))]
		return agency + "." + org + "." + suffix
	case 3: // northville.gov.xx (local government)
		return cityWords[g.r.Intn(len(cityWords))] +
			citySuffixes[g.r.Intn(len(citySuffixes))] + "." + suffix
	case 4: // city.northton.gov.xx
		return localWords[g.r.Intn(len(localWords))] + "." +
			cityWords[g.r.Intn(len(cityWords))] + citySuffixes[g.r.Intn(len(citySuffixes))] + "." + suffix
	default: // portal5.gov.xx style service hosts
		return agency + strconv.Itoa(1+g.r.Intn(20)) + "." + suffix
	}
}

// parentDomain returns the hostname with its first label removed, or the
// hostname itself when there is nothing above the registrable suffix.
func parentDomain(host string) string {
	for i := 0; i < len(host); i++ {
		if host[i] == '.' {
			rest := host[i+1:]
			// Keep at least two labels (the gov suffix + cc).
			dots := 0
			for j := 0; j < len(rest); j++ {
				if rest[j] == '.' {
					dots++
				}
			}
			if dots >= 1 {
				return rest
			}
			return host
		}
	}
	return host
}
