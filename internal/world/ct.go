package world

import (
	"math/rand"
	"time"

	"repro/internal/cert"
	"repro/internal/ctlog"
)

// buildCT populates the world's certificate-transparency log. CA-issued
// certificates are submitted with high probability — but not certainty:
// §2.2 notes that even the largest CT view misses about 10% of certificates
// in the com/net/org zones, and that the government-zone gap was unmeasured.
// Self-signed and internal-CA chains never reach the log, exactly as in the
// real ecosystem. The phishing lookalikes registered in DNS are logged too,
// which is what makes the §7.3.2 certwatch monitoring possible.
func (w *World) buildCT(r *rand.Rand) {
	// Roughly half the sites end up logged; sizing for that avoids both
	// rehashing and allocating double-size tables up front.
	log := ctlog.NewSized("govhttps-observatory", len(w.Sites)/2)
	seen := make(map[[32]byte]bool, len(w.Sites)/2)
	// siteOrder is the deterministic insertion order — a canonical
	// iteration without re-sorting every hostname in the world.
	for _, h := range w.siteOrder {
		s := w.Sites[h]
		if len(s.Chain) == 0 {
			continue
		}
		leaf := s.Chain[0]
		if s.Issuer == "" || leaf.SelfSigned() {
			continue // never submitted to CT
		}
		if _, distrusted := w.CAs.Lookup(s.Issuer); !distrusted {
			// Internal/unknown issuers do not log either. (Distrusted real
			// CAs such as the NPKI sub-CAs did log historically.)
			if _, known := w.CAs.Lookup(leaf.Issuer.CommonName); !known {
				continue
			}
		}
		// Only chains that reach the log are worth freezing: the fingerprint
		// below, the log encoding and the scan-time Certificate message all
		// reuse the cached serialization. Chains that never log are encoded
		// at most once per site (certMsgOnce), so eager freezing would cost
		// build time for nothing.
		for _, c := range s.Chain {
			c.Freeze()
		}
		fp := leaf.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		// The ~10% blind spot covers the legacy government estate; the
		// spoof sites (Country == "") are fresh Let's Encrypt issuances,
		// which always reach the logs — that is what makes §7.3.2's
		// monitoring possible.
		if s.Country != "" && r.Float64() < 0.10 {
			continue
		}
		log.Append(leaf, leaf.NotBefore.Add(time.Minute))
	}
	w.CT = log
}

// GovLeafCerts returns the distinct leaf certificates served by worldwide
// government hosts, for CT-coverage measurement.
func (w *World) GovLeafCerts() []*cert.Certificate {
	seen := map[[32]byte]bool{}
	var out []*cert.Certificate
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if len(s.Chain) == 0 {
			continue
		}
		fp := s.Chain[0].Fingerprint()
		if !seen[fp] {
			seen[fp] = true
			out = append(out, s.Chain[0])
		}
	}
	return out
}
