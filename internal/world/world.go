// Package world generates the study's synthetic Internet: ~195 national
// governments' web estates with per-country misconfiguration profiles
// calibrated to the paper's published aggregates, served over the simulated
// network (DNS + TCP + TLS + HTTP), plus the top-million ranking lists, the
// authoritative USA (GSA) and South Korea (Government24) datasets, the
// registrar directory for the disclosure campaign, and the cross-government
// link graph the crawler walks.
//
// Everything derives deterministically from Config.Seed; two builds with the
// same configuration are bit-identical.
package world

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/ctlog"
	"repro/internal/dnssim"
	"repro/internal/hosting"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/tlssim"
	"repro/internal/truststore"
	"repro/internal/whois"
)

// Serving describes what a site answers on ports 80/443.
type Serving int

// Serving modes.
const (
	// Unavailable sites do not resolve or never return a 200.
	Unavailable Serving = iota
	// HTTPOnly serves plain http only.
	HTTPOnly
	// HTTPSOnly serves https only (port 80 closed).
	HTTPSOnly
	// BothRedirect serves http that redirects to https.
	BothRedirect
	// BothNoRedirect serves full content on both schemes — the paper's
	// "failed upgrade" population (§5.1).
	BothNoRedirect
)

// HasHTTPS reports whether the site attempts to serve https at all.
func (s Serving) HasHTTPS() bool {
	return s == HTTPSOnly || s == BothRedirect || s == BothNoRedirect
}

// HasHTTP reports whether port 80 serves something.
func (s Serving) HasHTTP() bool {
	return s == HTTPOnly || s == BothRedirect || s == BothNoRedirect
}

// Site is one simulated website, government or otherwise.
type Site struct {
	Hostname string
	// Country is the ISO code of the government operating the site, or ""
	// for non-government sites.
	Country string
	IP      netip.Addr
	// Provider and HostKind classify the hosting (§5.4).
	Provider string
	HostKind hosting.Kind
	Serving  Serving
	// Chain is the certificate chain served on 443 (leaf first).
	Chain []*cert.Certificate
	// Issuer is the issuing CA name, "" for self-signed chains.
	Issuer string
	// TLSMin/TLSMax bound the server's protocol support.
	TLSMin, TLSMax tlssim.Version
	// Quirk is a TLS-level misbehaviour.
	Quirk tlssim.Quirk
	// Fault is a network-level failure mode.
	Fault simnet.Fault
	// HSTS adds a Strict-Transport-Security header on https responses.
	HSTS bool
	// Links are outbound hyperlinks (hostnames) on the landing page.
	Links []string
	// Rank is the Tranco rank (0 = outside the top million).
	Rank int
	// Depth is the crawl level at which the site becomes discoverable
	// (0 = in the seed list).
	Depth int
	// Injected is the ground-truth error class the generator planted,
	// letting tests distinguish measurement error from generation error.
	Injected ErrorClass

	// renderOnce lazily caches the serialized 200/301 responses the site's
	// handlers write, so repeated scans stop re-rendering the page per
	// request. Populated on first request, after Links are final.
	renderOnce   sync.Once
	respHTTP     []byte
	respHTTPS    []byte
	respRedirect []byte
}

// World is a fully built synthetic Internet.
type World struct {
	Cfg      Config
	Net      *simnet.Network
	DNS      *dnssim.Zone
	CAs      *ca.Registry
	Stores   map[string]*truststore.Store
	Class    *hosting.Classifier
	ScanTime time.Time
	// Clock is the virtual clock the network (and its fault latency
	// injection) runs on; scanners share it so backoff and injected
	// latency advance the same simulated timeline.
	Clock *simclock.Virtual

	// Sites indexes every site by hostname.
	Sites map[string]*Site
	// GovHosts lists government hostnames in the worldwide dataset, sorted.
	GovHosts []string
	// ByCountry groups worldwide government hostnames by ISO code.
	ByCountry map[string][]string
	// UnreachableHosts are registered names that never return a 200 — the
	// population excluded from the worldwide analysis (§7.2.2).
	UnreachableHosts []string
	// SeedHosts is the merged top-million-derived seed list (§4.1).
	SeedHosts []string
	// Whitelist maps hand-curated hostnames to country codes (§4.2.3).
	Whitelist map[string]string
	// TopLists carries the synthetic ranking datasets.
	TopLists *TopLists
	// USA holds the GSA case-study datasets (§6.1, Appendix A.1).
	USA *USAData
	// ROK holds the South Korea case-study dataset (§6.2, Appendix A.2).
	ROK *ROKData
	// Whois is the registrar directory service (§7.2), listening on
	// WhoisAddr.
	Whois *whois.Server
	// CT is the certificate-transparency log covering most CA-issued
	// certificates (§2.2).
	CT *ctlog.Log

	ipAlloc  map[string]uint32 // per-block allocation counters
	serialIP uint32
	// challenges holds the http-01 tokens the ACME renewal fleet has
	// published; the request path skips it entirely while empty.
	challenges challengeState
	// siteOrder lists hostnames in insertion order. Build is
	// deterministic, so the order is too; passes that need a canonical
	// iteration over every site (buildCT) walk it instead of sorting the
	// Sites keys from scratch.
	siteOrder []string
	// changes is the append-only record of post-build world mutations
	// (rotations, remediation, churn) that the observatory tails.
	changes changeLog
}

// addSite registers the site in the hostname index, tracking insertion
// order. Callers must have checked for duplicates when overwriting is not
// intended.
func (w *World) addSite(s *Site) {
	if _, dup := w.Sites[s.Hostname]; !dup {
		w.siteOrder = append(w.siteOrder, s.Hostname)
	}
	w.Sites[s.Hostname] = s
}

// Host returns the site for a hostname.
func (w *World) Host(hostname string) (*Site, bool) {
	s, ok := w.Sites[hostname]
	return s, ok
}

// CountryOf returns the country code for a hostname known to the world.
func (w *World) CountryOf(hostname string) string {
	if s, ok := w.Sites[hostname]; ok {
		return s.Country
	}
	return ""
}

// Build constructs the world from the configuration.
func Build(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("world: scale %v out of range (0, 1]", cfg.Scale)
	}
	// Rough host-population ceiling across every dataset (worldwide +
	// unreachable + USA + ROK + spoofs); pre-sizing the big tables keeps a
	// build from rehashing them a dozen times.
	hostHint := int(float64(paperWorldwideHosts+paperUnreachableHosts+paperROKHosts+40000)*cfg.Scale) + 1024
	w := &World{
		Cfg:       cfg,
		Net:       simnet.NewSized(2 * hostHint),
		DNS:       dnssim.NewZoneSized(hostHint),
		Class:     hosting.DefaultClassifier(),
		ScanTime:  cfg.ScanTime,
		Sites:     make(map[string]*Site, hostHint),
		ByCountry: make(map[string][]string),
		Whitelist: make(map[string]string),
		ipAlloc:   make(map[string]uint32),
	}
	w.GovHosts = make([]string, 0, hostHint)
	w.siteOrder = make([]string, 0, hostHint)
	w.Clock = simclock.NewVirtual(cfg.ScanTime)
	w.Net.SetClock(w.Clock)
	w.Net.SetSeed(cfg.Seed)

	root := rand.New(rand.NewSource(cfg.Seed))
	w.CAs = ca.NewRegistry(rand.New(rand.NewSource(root.Int63())))
	w.Stores = w.CAs.BuildDefaultStores(rand.New(rand.NewSource(root.Int63())))

	w.buildWorldwide(rand.New(rand.NewSource(root.Int63())))
	w.injectKeyReuse(rand.New(rand.NewSource(root.Int63())))
	w.buildLinks(rand.New(rand.NewSource(root.Int63())))
	w.buildTopLists(rand.New(rand.NewSource(root.Int63())))
	w.buildUSA(rand.New(rand.NewSource(root.Int63())))
	w.buildROK(rand.New(rand.NewSource(root.Int63())))
	w.buildCT(rand.New(rand.NewSource(root.Int63())))
	w.buildWhois()
	w.buildFirewall()
	w.serveAll()
	w.injectTransientFaults()

	sort.Strings(w.GovHosts)
	sort.Strings(w.UnreachableHosts)
	sort.Strings(w.SeedHosts)
	return w, nil
}

// MustBuild is Build for configurations known to be valid.
func MustBuild(cfg Config) *World {
	w, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// scaled applies the configured scale to a paper-scale count, keeping at
// least min when the unscaled count is positive.
func (w *World) scaled(n int, min int) int {
	if n <= 0 {
		return 0
	}
	v := int(float64(n)*w.Cfg.Scale + 0.5)
	if v < min {
		v = min
	}
	return v
}
