package world

import (
	"math/rand"
	"sync"
	"time"
)

// ChangeKind classifies one world mutation that can dirty a cached scan
// result — the event vocabulary the continuous observatory consumes.
type ChangeKind int

const (
	// CertRotated means a fresh certificate chain was deployed on the
	// host (ACME renewal, churn rotation, or an operator redeploy).
	CertRotated ChangeKind = iota
	// SiteFixed means remediation reissued a valid certificate and
	// cleared the host's faults (§7.2.2 "fixed" population).
	SiteFixed
	// SiteRemoved means the host went off the Internet.
	SiteRemoved
	// SiteRevived means a previously unreachable hostname came online.
	SiteRevived
	// GainedHTTPS means an http-only host started serving https.
	GainedHTTPS
	// ConfigFlipped means the serving configuration changed without a
	// reissue (redirect posture flip).
	ConfigFlipped
)

var changeKindNames = map[ChangeKind]string{
	CertRotated:   "cert-rotated",
	SiteFixed:     "site-fixed",
	SiteRemoved:   "site-removed",
	SiteRevived:   "site-revived",
	GainedHTTPS:   "gained-https",
	ConfigFlipped: "config-flipped",
}

// String names the change kind.
func (k ChangeKind) String() string { return changeKindNames[k] }

// Change is one entry in the world's append-only change log.
type Change struct {
	// At is the virtual time of the change.
	At time.Time
	// Hostname is the affected host.
	Hostname string
	// Kind classifies the change.
	Kind ChangeKind
}

// changeLog is the append-only event record behind ChangeTail. It is
// mutex-guarded because the observatory tails it while world mutators
// (the ACME fleet, churn ticks) keep appending.
type changeLog struct {
	mu  sync.RWMutex
	log []Change
}

// recordChange appends one event to the world's change log.
func (w *World) recordChange(at time.Time, hostname string, kind ChangeKind) {
	w.changes.mu.Lock()
	w.changes.log = append(w.changes.log, Change{At: at, Hostname: hostname, Kind: kind})
	w.changes.mu.Unlock()
}

// ChangeTail returns the change events recorded at or after cursor, plus
// the advanced cursor — the same contract as ctlog.Log.TailFrom, so
// consumers follow world churn incrementally:
//
//	events, cursor = w.ChangeTail(cursor)
//
// A cursor of 0 reads from the first event; because the log is
// append-only, successive tails never miss or repeat one.
func (w *World) ChangeTail(cursor int) ([]Change, int) {
	w.changes.mu.RLock()
	defer w.changes.mu.RUnlock()
	n := len(w.changes.log)
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= n {
		return nil, n
	}
	out := make([]Change, n-cursor)
	copy(out, w.changes.log[cursor:])
	return out, n
}

// ChangeCount returns the number of events recorded so far.
func (w *World) ChangeCount() int {
	w.changes.mu.RLock()
	defer w.changes.mu.RUnlock()
	return len(w.changes.log)
}

// ChurnTick applies one observatory tick's worth of background churn to
// the government estate, deterministically from the caller's RNG: up to
// n distinct hosts are drawn; https hosts rotate to a freshly issued
// valid chain (logged to CT and recorded as CertRotated), hosts serving
// both schemes may instead flip their redirect posture (recorded as
// ConfigFlipped). Returns the touched hostnames in draw order.
func (w *World) ChurnTick(r *rand.Rand, at time.Time, n int) []string {
	f := newCertFactory(w, rand.New(rand.NewSource(r.Int63())))
	touched := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		h := w.GovHosts[r.Intn(len(w.GovHosts))]
		if seen[h] {
			continue
		}
		s, ok := w.Sites[h]
		if !ok || !s.IP.IsValid() {
			continue
		}
		seen[h] = true
		flip := r.Float64() < 0.3
		switch {
		case flip && s.Serving == BothRedirect:
			s.Serving = BothNoRedirect
			w.serveSite(s)
			w.recordChange(at, h, ConfigFlipped)
		case flip && s.Serving == BothNoRedirect:
			s.Serving = BothRedirect
			w.serveSite(s)
			w.recordChange(at, h, ConfigFlipped)
		case s.Serving.HasHTTPS():
			// Fresh issuance close to the tick time, deployed through the
			// same rotation path the ACME fleet uses.
			saved := w.ScanTime
			w.ScanTime = at
			f.configure(s, ClassValid, caMixWorldwide)
			w.ScanTime = saved
			w.RotateCert(h, s.Chain)
		default:
			// http-only or unavailable hosts have nothing to rotate; the
			// draw still consumed the slot so tick sizes stay bounded.
			seen[h] = false
		}
		if seen[h] {
			touched = append(touched, h)
		}
	}
	return touched
}
