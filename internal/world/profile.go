package world

import (
	"math"
	"math/rand"

	"repro/internal/geo"
)

// ErrorClass is the ground-truth misconfiguration class the generator
// injects into a site. The classes mirror Table 2's taxonomy; the scanner
// and verifier must rediscover them through measurement.
type ErrorClass int

// Injected site classes.
const (
	// ClassValid is a correctly configured https site.
	ClassValid ErrorClass = iota
	// ClassNone marks sites without https (nothing injected).
	ClassNone
	// ClassHostnameMismatch serves a certificate for the wrong name,
	// typically a misused wildcard (§5.3.3).
	ClassHostnameMismatch
	// ClassLocalIssuer serves a chain ending at an untrusted CA (e.g. the
	// NPKI sub-CAs) or missing its intermediate.
	ClassLocalIssuer
	// ClassSelfSigned serves a bare self-signed leaf.
	ClassSelfSigned
	// ClassSelfSignedChain serves a chain anchored at a private root.
	ClassSelfSignedChain
	// ClassExpired serves an expired certificate.
	ClassExpired
	// ClassExcSSLProto negotiates only SSLv2 ("unsupported ssl protocol").
	ClassExcSSLProto
	// ClassExcTimeout blackholes the https port.
	ClassExcTimeout
	// ClassExcRefused refuses connections on 443.
	ClassExcRefused
	// ClassExcReset resets connections during the handshake.
	ClassExcReset
	// ClassExcWrongVersion sends a garbage record version.
	ClassExcWrongVersion
	// ClassExcAlertInternal aborts with a TLSv1 internal_error alert.
	ClassExcAlertInternal
	// ClassExcAlertHandshake aborts with an SSLv3 handshake_failure alert.
	ClassExcAlertHandshake
	// ClassExcAlertProtoVersion aborts with a TLSv1 protocol_version alert.
	ClassExcAlertProtoVersion
)

// classNames for debugging and reports.
var classNames = map[ErrorClass]string{
	ClassValid:                "valid",
	ClassNone:                 "no-https",
	ClassHostnameMismatch:     "hostname-mismatch",
	ClassLocalIssuer:          "local-issuer",
	ClassSelfSigned:           "self-signed",
	ClassSelfSignedChain:      "self-signed-chain",
	ClassExpired:              "expired",
	ClassExcSSLProto:          "exc-ssl-proto",
	ClassExcTimeout:           "exc-timeout",
	ClassExcRefused:           "exc-refused",
	ClassExcReset:             "exc-reset",
	ClassExcWrongVersion:      "exc-wrong-version",
	ClassExcAlertInternal:     "exc-alert-internal",
	ClassExcAlertHandshake:    "exc-alert-handshake",
	ClassExcAlertProtoVersion: "exc-alert-proto-version",
}

// String returns a short class label.
func (c ErrorClass) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "unknown"
}

// IsException reports whether the class lands in Table 2's "Exceptions"
// bucket rather than a certificate-validation error.
func (c ErrorClass) IsException() bool {
	switch c {
	case ClassExcSSLProto, ClassExcTimeout, ClassExcRefused, ClassExcReset,
		ClassExcWrongVersion, ClassExcAlertInternal, ClassExcAlertHandshake,
		ClassExcAlertProtoVersion:
		return true
	default:
		return false
	}
}

// weighted is a discrete distribution over error classes.
type weighted []struct {
	class  ErrorClass
	weight float64
}

func (w weighted) pick(r *rand.Rand) ErrorClass {
	total := 0.0
	for _, e := range w {
		total += e.weight
	}
	x := r.Float64() * total
	for _, e := range w {
		x -= e.weight
		if x < 0 {
			return e.class
		}
	}
	return w[len(w)-1].class
}

// invalidMixWorldwide reproduces Table 2's invalid-certificate breakdown:
// hostname mismatch 36.59%, local issuer 24.51%, exceptions 17.20% (split
// per the exception sub-table), self-signed 13.22%, expired 5.50%,
// self-signed-in-chain 2.27%, others folded into the alert classes.
var invalidMixWorldwide = weighted{
	{ClassHostnameMismatch, 36.59},
	{ClassLocalIssuer, 24.51},
	{ClassSelfSigned, 13.22},
	{ClassExpired, 5.50},
	{ClassSelfSignedChain, 2.27},
	// Exceptions: 17.20 total, split by the sub-table shares.
	{ClassExcSSLProto, 17.20 * 0.7365},
	{ClassExcTimeout, 17.20 * 0.1443},
	{ClassExcRefused, 17.20 * 0.0515},
	{ClassExcReset, 17.20 * 0.0538},
	{ClassExcWrongVersion, 17.20 * 0.0042},
	{ClassExcAlertInternal, 17.20 * 0.0034},
	{ClassExcAlertHandshake, 17.20 * 0.0026},
	{ClassExcAlertProtoVersion, 17.20 * 0.0030},
}

// invalidMixChina reflects §7.1.2: hostname mismatches dominate (60.1%),
// then local-issuer failures (16.23%) and self-signing (9.68%).
var invalidMixChina = weighted{
	{ClassHostnameMismatch, 60.1},
	{ClassLocalIssuer, 16.23},
	{ClassSelfSigned, 9.68},
	{ClassExpired, 2.56},
	{ClassSelfSignedChain, 0.40},
	{ClassExcSSLProto, 8.0},
	{ClassExcTimeout, 2.0},
	{ClassExcRefused, 0.5},
	{ClassExcReset, 0.5},
}

// invalidMixROK reflects Table A.4 (shares of the 8,542 invalid hosts).
var invalidMixROK = weighted{
	{ClassHostnameMismatch, 2529},
	{ClassLocalIssuer, 2126},
	{ClassSelfSigned, 21},
	{ClassExpired, 23},
	{ClassSelfSignedChain, 818},
	{ClassExcSSLProto, 2903 * 0.80},
	{ClassExcAlertInternal, 2903 * 0.08},
	{ClassExcAlertHandshake, 2903 * 0.06},
	{ClassExcWrongVersion, 2903 * 0.06},
	{ClassExcTimeout, 25},
	{ClassExcRefused, 97},
}

// invalidMixUSA reflects §6.3: exceptions are rare (2.79% of invalidity),
// self-signed-in-chain 0.18%, local issuer 2.44%; mismatches dominate.
var invalidMixUSA = weighted{
	{ClassHostnameMismatch, 62.0},
	{ClassSelfSigned, 12.0},
	{ClassExpired, 18.0},
	{ClassLocalIssuer, 2.44},
	{ClassSelfSignedChain, 0.18},
	{ClassExcSSLProto, 1.6},
	{ClassExcTimeout, 0.6},
	{ClassExcRefused, 0.3},
	{ClassExcReset, 0.29},
}

// Profile is the per-country generation profile.
type Profile struct {
	// Hosts is the paper-scale number of reachable worldwide-list sites.
	Hosts int
	// HTTPSShare is the fraction of reachable sites attempting https.
	HTTPSShare float64
	// ValidShare is the fraction of https sites that validate.
	ValidShare float64
	// InvalidMix distributes invalid https sites over error classes.
	InvalidMix weighted
	// CloudShare and CDNShare set the hosting distribution; the remainder
	// is privately hosted.
	CloudShare, CDNShare float64
	// CAMix optionally overrides the worldwide CA distribution.
	CAMix []caWeight
	// UnreachableShare adds this fraction of extra never-200 hostnames.
	UnreachableShare float64
}

type caWeight struct {
	name   string
	weight float64
}

// caMixWorldwide approximates Figure 2: Let's Encrypt ~20% of https-enabled
// government sites, followed by the commercial DV issuers.
var caMixWorldwide = []caWeight{
	{"Let's Encrypt Authority X3", 20.0},
	{"cPanel, Inc. Certification Authority", 8.5},
	{"Sectigo RSA Domain Validation Secure Server CA", 7.5},
	{"DigiCert SHA2 Secure Server CA", 6.0},
	{"COMODO RSA Domain Validation Secure Server CA", 5.5},
	{"GlobalSign CloudSSL CA - SHA256 - G3", 4.5},
	{"Encryption Everywhere DV TLS CA - G1", 4.5},
	{"DigiCert SHA2 High Assurance Server CA", 4.0},
	{"Go Daddy Secure Certificate Authority - G2", 3.8},
	{"AlphaSSL CA - SHA256 - G2", 3.5},
	{"GeoTrust RSA CA 2018", 3.2},
	{"RapidSSL RSA CA 2018", 3.0},
	{"Amazon Server CA 1B", 2.8},
	{"Thawte RSA CA 2018", 2.3},
	{"DigiCert SHA2 Extended Validation Server CA", 2.2},
	{"CloudFlare Inc ECC CA-2", 2.0},
	{"Entrust Certification Authority - L1K", 1.8},
	{"QuoVadis Global SSL ICA G3", 1.5},
	{"Network Solutions OV Server CA 2", 1.4},
	{"Microsoft IT TLS CA 5", 1.3},
	{"Starfield Secure Certificate Authority - G2", 1.2},
	{"Certum Domain Validation CA SHA2", 1.1},
	{"GlobalSign RSA OV SSL CA 2018", 1.0},
	{"Sectigo RSA Organization Validation Secure Server CA", 1.0},
	{"DigiCert ECC Secure Server CA", 0.9},
	{"Sectigo ECC Domain Validation Secure Server CA", 0.8},
	{"GlobalSign ECC OV SSL CA 2018", 0.6},
	{"Gandi Standard SSL CA 2", 0.6},
	{"Actalis Organization Validated Server CA G3", 0.5},
	{"TrustAsia TLS RSA CA", 0.5},
	{"Sectigo RSA Extended Validation Secure Server CA", 0.5},
	{"GlobalSign Extended Validation CA - SHA256 - G3", 0.4},
	{"Thawte EV RSA CA 2018", 0.4},
	{"GeoTrust EV RSA CA 2018", 0.35},
	{"Entrust Extended Validation CA - EVCA1", 0.3},
	{"Starfield EV Secure CA - G2", 0.3},
	{"Amazon EV Server CA 1B", 0.25},
	{"Buypass Class 2 CA 5", 0.25},
	{"TeleSec ServerPass Class 2 CA", 0.25},
	{"Certigna Services CA", 0.2},
	{"HARICA SSL RSA SubCA R3", 0.2},
	{"COMODO High-Assurance Secure Server CA", 0.6},
	{"GeoTrust DV SSL CA", 0.5},
	{"Equifax Secure Certificate Authority", 0.3},
	{"RSA Data Security Secure Server CA", 0.15},
	{"D-TRUST SSL Class 3 CA 1 2009", 0.15},
	// Trusted by Microsoft/NSS but not by the conservative Apple store.
	{"e-Szigno TLS CA 2017", 0.15},
	{"Certinomis AA et Agents", 0.1},
}

// caMixROK reflects Figure 11: Sectigo RSA DV leads, AlphaSSL second, with
// the distrusted NPKI sub-CAs still in heavy use.
var caMixROK = []caWeight{
	{"Sectigo RSA Domain Validation Secure Server CA", 22.0},
	{"AlphaSSL CA - SHA256 - G2", 16.0},
	{"CA134100031", 12.0},
	{"COMODO RSA Domain Validation Secure Server CA", 8.0},
	{"Let's Encrypt Authority X3", 7.0},
	{"GlobalSign CloudSSL CA - SHA256 - G3", 6.0},
	{"DigiCert SHA2 Secure Server CA", 5.0},
	{"Thawte EV RSA CA 2018", 4.0},
	{"CA131100001", 3.5},
	{"GPKIRootCA1 Sub CA", 2.5},
	{"GeoTrust EV RSA CA 2018", 2.0},
	{"Encryption Everywhere DV TLS CA - G1", 2.0},
	{"Thawte RSA CA 2018", 1.5},
	{"GeoTrust RSA CA 2018", 1.5},
}

// caMixUSA reflects Figure 8: Let's Encrypt dominates with <5% invalidity,
// followed by the commercial issuers federal agencies favour.
var caMixUSA = []caWeight{
	{"Let's Encrypt Authority X3", 28.0},
	{"DigiCert SHA2 Secure Server CA", 10.0},
	{"Go Daddy Secure Certificate Authority - G2", 8.0},
	{"Amazon Server CA 1B", 7.0},
	{"Sectigo RSA Domain Validation Secure Server CA", 6.0},
	{"DigiCert SHA2 High Assurance Server CA", 5.5},
	{"Entrust Certification Authority - L1K", 5.0},
	{"cPanel, Inc. Certification Authority", 4.5},
	{"GlobalSign CloudSSL CA - SHA256 - G3", 4.0},
	{"CloudFlare Inc ECC CA-2", 3.5},
	{"COMODO RSA Domain Validation Secure Server CA", 3.0},
	{"Network Solutions OV Server CA 2", 2.5},
	{"DigiCert SHA2 Extended Validation Server CA", 2.5},
	{"GeoTrust RSA CA 2018", 2.0},
	{"Starfield Secure Certificate Authority - G2", 1.8},
	{"Encryption Everywhere DV TLS CA - G1", 1.6},
	{"Microsoft IT TLS CA 5", 1.5},
	{"RapidSSL RSA CA 2018", 1.4},
	{"DigiCert ECC Secure Server CA", 1.2},
	{"Thawte RSA CA 2018", 1.0},
	{"Entrust Extended Validation CA - EVCA1", 0.8},
	{"Starfield EV Secure CA - G2", 0.7},
	{"Amazon EV Server CA 1B", 0.5},
	{"GeoTrust DV SSL CA", 0.4},
	{"AlphaSSL CA - SHA256 - G2", 0.4},
}

// caMixSwitzerland reflects §5.2: QuoVadis Global SSL ICA G3 leads.
var caMixSwitzerland = []caWeight{
	{"QuoVadis Global SSL ICA G3", 30.0},
	{"Let's Encrypt Authority X3", 18.0},
	{"SwissSign Server Gold CA 2014 - G22", 14.0},
	{"DigiCert SHA2 Secure Server CA", 8.0},
	{"Sectigo RSA Domain Validation Secure Server CA", 6.0},
}

// caMixChina reflects §5.2: Encryption Everywhere DV TLS CA-G1 leads.
var caMixChina = []caWeight{
	{"Encryption Everywhere DV TLS CA - G1", 26.0},
	{"TrustAsia TLS RSA CA", 14.0},
	{"WoTrus DV Server CA", 10.0},
	{"CFCA EV OCA", 8.0},
	{"Let's Encrypt Authority X3", 8.0},
	{"DigiCert SHA2 Secure Server CA", 6.0},
	{"GlobalSign CloudSSL CA - SHA256 - G3", 4.0},
	// Old unpatched servers cluster behind the firewall (§5.3, POODLE-era
	// software), so the legacy weak-signature issuers remain in use.
	{"COMODO High-Assurance Secure Server CA", 2.5},
	{"GeoTrust DV SSL CA", 2.0},
	{"RSA Data Security Secure Server CA", 0.8},
}

// defaultProfile derives a country's profile from its Internet penetration:
// connected countries adopt https more and validate better, matching the
// worldwide gradient in Figure 1.
func defaultProfile(c geo.Country) Profile {
	inet := c.InternetPct / 100
	return Profile{
		HTTPSShare:       clamp(0.04+0.40*pow13(inet), 0.04, 0.92),
		ValidShare:       clamp(0.42+0.47*pow13(inet), 0.12, 0.96),
		InvalidMix:       invalidMixWorldwide,
		CloudShare:       clamp(0.02+0.10*inet, 0, 0.25),
		CDNShare:         clamp(0.01+0.05*inet, 0, 0.12),
		UnreachableShare: clamp(0.55-0.35*inet, 0.10, 0.60),
	}
}

func pow13(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, 1.3)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
