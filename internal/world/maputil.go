package world

import "sort"

// sortedKeys returns m's string keys in sorted order, giving map-backed
// loops the deterministic iteration order the maprange invariant
// (cmd/govlint) requires of world construction.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
