package world

import (
	"math/rand"
	"testing"
	"time"
)

func TestChangeTailCursor(t *testing.T) {
	w := MustBuild(Config{Seed: 21, Scale: 0.005})
	if n := w.ChangeCount(); n != 0 {
		t.Fatalf("fresh world has %d change events", n)
	}
	events, cursor := w.ChangeTail(0)
	if len(events) != 0 || cursor != 0 {
		t.Fatalf("fresh tail = %d events, cursor %d", len(events), cursor)
	}

	host := w.GovHosts[0]
	at := w.ScanTime.Add(time.Hour)
	w.recordChange(at, host, ConfigFlipped)
	w.recordChange(at.Add(time.Minute), host, CertRotated)

	events, cursor = w.ChangeTail(cursor)
	if len(events) != 2 || cursor != 2 {
		t.Fatalf("tail = %d events, cursor %d", len(events), cursor)
	}
	if events[0].Kind != ConfigFlipped || events[1].Kind != CertRotated {
		t.Fatalf("events = %v", events)
	}
	if events[0].Hostname != host || !events[0].At.Equal(at) {
		t.Fatalf("event 0 = %+v", events[0])
	}

	// Caught up, clamped below, clamped above.
	if events, cursor = w.ChangeTail(cursor); len(events) != 0 || cursor != 2 {
		t.Fatalf("caught-up tail = %d events, cursor %d", len(events), cursor)
	}
	if events, _ := w.ChangeTail(-1); len(events) != 2 {
		t.Fatalf("negative cursor tailed %d events", len(events))
	}
	if events, cursor := w.ChangeTail(50); len(events) != 0 || cursor != 2 {
		t.Fatalf("overshoot tail = %d events, cursor %d", len(events), cursor)
	}
}

func TestRemediateEmitsChanges(t *testing.T) {
	w := MustBuild(Config{Seed: 22, Scale: 0.01})
	invalid := make([]string, 0, 64)
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Injected != ClassNone && s.Injected != ClassValid && s.Serving.HasHTTPS() {
			invalid = append(invalid, h)
		}
	}
	if len(invalid) == 0 {
		t.Fatal("no invalid hosts to remediate")
	}
	out := w.Remediate(invalid, DefaultRemediationRates(), rand.New(rand.NewSource(5)))

	byKind := map[ChangeKind][]string{}
	events, _ := w.ChangeTail(0)
	for _, e := range events {
		byKind[e.Kind] = append(byKind[e.Kind], e.Hostname)
		if !e.At.Equal(FollowUpScanTime) {
			t.Fatalf("remediation event %+v not stamped at the follow-up scan", e)
		}
	}
	if got, want := len(byKind[SiteFixed]), len(out.Fixed); got != want {
		t.Errorf("SiteFixed events = %d, fixed hosts = %d", got, want)
	}
	if got, want := len(byKind[SiteRemoved]), len(out.Removed); got != want {
		t.Errorf("SiteRemoved events = %d, removed hosts = %d", got, want)
	}
	if got, want := len(byKind[GainedHTTPS]), len(out.NewlyServingHosts); got != want {
		t.Errorf("GainedHTTPS events = %d, newly serving = %d", got, want)
	}
	if got, want := len(byKind[SiteRevived]), out.RevivedValid+out.RevivedInvalid; got != want {
		t.Errorf("SiteRevived events = %d, revived hosts = %d", got, want)
	}
}

func TestRotateCertLogsToCT(t *testing.T) {
	w := MustBuild(Config{Seed: 23, Scale: 0.005})
	// Find an https host whose current chain is CA-issued.
	var host string
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Serving.HasHTTPS() && len(s.Chain) > 0 && s.Issuer != "" {
			host = h
			break
		}
	}
	if host == "" {
		t.Fatal("no CA-issued https host found")
	}
	before := w.CT.Size()

	// Reissue through the churn factory and rotate.
	s := w.Sites[host]
	f := newCertFactory(w, rand.New(rand.NewSource(9)))
	f.configure(s, ClassValid, caMixWorldwide)
	if !w.RotateCert(host, s.Chain) {
		t.Fatal("RotateCert refused")
	}

	if got := w.CT.Size(); got != before+1 {
		t.Fatalf("CT size = %d, want %d (fresh issuance must log)", got, before+1)
	}
	entries, _ := w.CT.TailFrom(before)
	if len(entries) != 1 || entries[0].Cert != s.Chain[0] {
		t.Fatalf("CT tail = %v", entries)
	}
	if want := s.Chain[0].NotBefore.Add(time.Minute); !entries[0].Timestamp.Equal(want) {
		t.Fatalf("CT timestamp = %v, want %v", entries[0].Timestamp, want)
	}
	events, _ := w.ChangeTail(0)
	last := events[len(events)-1]
	if last.Kind != CertRotated || last.Hostname != host {
		t.Fatalf("last event = %+v", last)
	}
}

func TestChurnTickDeterministic(t *testing.T) {
	run := func() ([]string, []Change, int) {
		w := MustBuild(Config{Seed: 24, Scale: 0.005})
		r := rand.New(rand.NewSource(31))
		at := w.ScanTime.Add(24 * time.Hour)
		var touched []string
		for i := 0; i < 3; i++ {
			touched = append(touched, w.ChurnTick(r, at.Add(time.Duration(i)*time.Hour), 8)...)
		}
		events, _ := w.ChangeTail(0)
		return touched, events, w.CT.Size()
	}
	t1, e1, ct1 := run()
	t2, e2, ct2 := run()
	if len(t1) == 0 {
		t.Fatal("churn touched no hosts")
	}
	if len(t1) != len(t2) || len(e1) != len(e2) || ct1 != ct2 {
		t.Fatalf("churn diverged: %d/%d touched, %d/%d events, CT %d/%d",
			len(t1), len(t2), len(e1), len(e2), ct1, ct2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("touched[%d] = %q vs %q", i, t1[i], t2[i])
		}
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d = %+v vs %+v", i, e1[i], e2[i])
		}
	}
	// Every touched host produced exactly one event.
	if len(e1) != len(t1) {
		t.Fatalf("%d events for %d touched hosts", len(e1), len(t1))
	}
}
