package world

import (
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/simnet"
	"repro/internal/tlssim"
)

// certFactory assigns certificate chains and TLS behaviour to sites
// according to their injected error class, reproducing the certificate
// pathology the paper catalogues: misused wildcards, distrusted issuers,
// self-signing, expiry with absurd lifetimes, and protocol-level failures.
type certFactory struct {
	w *World
	r *rand.Rand

	// sharedWildcards caches each country's shared wildcard certificates —
	// the Bangladesh/Colombia pattern of §5.3.3.
	sharedWildcards map[string][]*sharedCert
	// internalCAs caches per-country untrusted "government internal" CAs.
	internalCAs map[string]*internalCA
	// epochCertPlaced tracks the single 1970-epoch certificate (§5.3.1).
	epochCertPlaced bool
	// serialBase, when non-zero, gives this factory a private slice of the
	// CA serial space so parallel factories never touch the authorities'
	// shared counters. serialCtr counts issuances within the slice.
	serialBase uint64
	serialCtr  uint64
	// weights is pickCA's scratch buffer, reused across draws.
	weights []float64
}

type sharedCert struct {
	chain []*cert.Certificate
	// zone is the wildcard zone the certificate actually covers.
	zone string
}

type internalCA struct {
	root     *cert.Certificate
	rootKey  cert.KeyID
	issuerCN string
}

func newCertFactory(w *World, r *rand.Rand) *certFactory {
	return &certFactory{
		w:               w,
		r:               r,
		sharedWildcards: make(map[string][]*sharedCert),
		internalCAs:     make(map[string]*internalCA),
	}
}

// sharedWildcardCounts fixes the §5.3.3 top violators: number of distinct
// wildcard certificates shared across each country's mismatched hosts.
var sharedWildcardCounts = map[string]int{
	"bd": 2, "co": 3, "dm": 1, "vn": 3,
}

// configure fills the site's chain and TLS behaviour for its class. The CA
// mix defaults to the worldwide distribution.
func (f *certFactory) configure(s *Site, class ErrorClass, mix []caWeight) {
	s.Injected = class
	s.TLSMin, s.TLSMax = tlssim.TLS1_0, tlssim.TLS1_2
	if f.r.Float64() < 0.25 {
		s.TLSMax = tlssim.TLS1_3
	}
	switch class {
	case ClassNone:
		return
	case ClassValid:
		f.issueValid(s, mix)
	case ClassExpired:
		f.issueExpired(s, mix)
	case ClassHostnameMismatch:
		f.issueMismatch(s, mix)
	case ClassLocalIssuer:
		f.issueLocalIssuer(s, mix)
	case ClassSelfSigned:
		f.issueSelfSigned(s)
	case ClassSelfSignedChain:
		f.issueSelfSignedChain(s)
	case ClassExcSSLProto:
		f.issueValid(s, mix) // the chain exists but is never delivered
		s.TLSMin, s.TLSMax = tlssim.SSLv2, tlssim.SSLv2
		s.Quirk = tlssim.QuirkSSLv2Only
	case ClassExcWrongVersion:
		f.issueValid(s, mix)
		s.Quirk = tlssim.QuirkWrongVersionNumber
	case ClassExcAlertInternal:
		f.issueValid(s, mix)
		s.Quirk = tlssim.QuirkInternalErrorAlert
	case ClassExcAlertHandshake:
		f.issueValid(s, mix)
		s.Quirk = tlssim.QuirkHandshakeFailureAlert
	case ClassExcAlertProtoVersion:
		f.issueValid(s, mix)
		s.Quirk = tlssim.QuirkProtocolVersionAlert
	case ClassExcTimeout:
		s.Fault = simnet.FaultTimeout
		s.Serving = BothRedirect
	case ClassExcRefused:
		// A refused 443 is indistinguishable from "no https" unless the
		// http side advertises the upgrade; these sites redirect.
		s.Fault = simnet.FaultRefuse
		s.Serving = BothRedirect
	case ClassExcReset:
		s.Fault = simnet.FaultReset
		s.Serving = BothRedirect
	}
}

// pickCA draws an authority from the mix. Valid issuance excludes
// distrusted and weak-signature CAs (their use correlates with invalidity,
// Figure 4); invalid issuance skews toward them.
// nextSerial returns the serial number for the factory's next issuance:
// zero in sequential mode (letting the CA's own counter run), or the next
// value of the factory's private slice in parallel mode.
func (f *certFactory) nextSerial() uint64 {
	if f.serialBase == 0 {
		return 0
	}
	f.serialCtr++
	return f.serialBase | f.serialCtr
}

func (f *certFactory) pickCA(mix []caWeight, forValid bool) *ca.Authority {
	total := 0.0
	if cap(f.weights) < len(mix) {
		f.weights = make([]float64, len(mix))
	}
	weights := f.weights[:len(mix)]
	for i, cw := range mix {
		weights[i] = 0
		a, ok := f.w.CAs.Lookup(cw.name)
		if !ok {
			continue
		}
		wgt := cw.weight
		if forValid && (a.Distrusted || a.SigAlg.IsWeak() || a.SigAlg == cert.SHA256WithRSAPSS) {
			wgt = 0
		}
		if !forValid {
			switch {
			case a.NotInApple:
				// Store-gap CAs belong to the intended-valid population
				// (§4.3); mixing them into broken sites would conflate two
				// failure causes.
				wgt = 0
			case a.Distrusted || a.SigAlg.IsWeak() || a.SigAlg == cert.SHA256WithRSAPSS:
				wgt *= 12 // legacy issuers concentrate among broken sites
			case a.SigAlg.IsECDSA():
				wgt *= 0.1 // EC-signed chains are almost always healthy (Fig 4)
			}
		}
		weights[i] = wgt
		total += wgt
	}
	x := f.r.Float64() * total
	for i, wgt := range weights {
		x -= wgt
		if x < 0 {
			return f.w.CAs.MustLookup(mix[i].name)
		}
	}
	return f.w.CAs.MustLookup("Let's Encrypt Authority X3")
}

// hostKey draws the host key, conditioned on the issuing CA (EC CAs attest
// EC keys) and the class (odd RSA sizes concentrate among invalid sites).
func (f *certFactory) hostKey(a *ca.Authority, forValid bool) cert.PublicKey {
	if a.SigAlg.IsECDSA() {
		bits := 256
		if a.SigAlg == cert.ECDSAWithSHA384 {
			bits = 384
		}
		return cert.NewKey(f.r, cert.KeyECDSA, bits)
	}
	x := f.r.Float64()
	var bits int
	if forValid {
		switch {
		case x < 0.72:
			bits = 2048
		case x < 0.90:
			bits = 4096
		case x < 0.96:
			return cert.NewKey(f.r, cert.KeyECDSA, 256)
		case x < 0.985:
			bits = 3072
		default:
			bits = 2048
		}
	} else {
		switch {
		case x < 0.62:
			bits = 2048
		case x < 0.78:
			bits = 4096
		case x < 0.84:
			bits = 1024 // NIST-deprecated (§5.3.2)
		case x < 0.90:
			bits = 3248 // "generally misconfigured"
		case x < 0.94:
			bits = 8192 // unsupported by browsers above 4096
		case x < 0.97:
			return cert.NewKey(f.r, cert.KeyECDSA, 256)
		default:
			bits = 2048
		}
	}
	return cert.NewKey(f.r, cert.KeyRSA, bits)
}

func (f *certFactory) issueValid(s *Site, mix []caWeight) {
	a := f.pickCA(mix, true)
	key := f.hostKey(a, true)
	hostnames := []string{s.Hostname}
	if f.r.Float64() < 0.35 {
		// Correctly scoped wildcard covering the host (39% of sites use
		// wildcards; most are valid). Never a whole registry zone like
		// *.gov.xx — real CAs refuse public-suffix wildcards.
		parent := parentDomain(s.Hostname)
		if parent != s.Hostname && strings.Count(parent, ".") >= 2 {
			hostnames = []string{"*." + parent, parent}
		} else {
			// Hosts directly under the registry zone get a wildcard for
			// their own subtree instead: *.health.gov.xx + health.gov.xx.
			hostnames = []string{"*." + s.Hostname, s.Hostname}
		}
	}
	start := f.w.ScanTime.Add(-time.Duration(5+f.r.Intn(60)) * 24 * time.Hour)
	s.Chain = a.Issue(ca.Request{
		Hostnames:    hostnames,
		Key:          key,
		NotBefore:    start,
		EV:           a.EV,
		Organization: orgName(s),
		Country:      s.Country,
		Serial:       f.nextSerial(),
	})
	s.Issuer = a.Name
}

func (f *certFactory) issueExpired(s *Site, mix []caWeight) {
	a := f.pickCA(mix, false)
	key := f.hostKey(a, false)
	lifetime := f.invalidLifetime()
	// Expired sometime in the past year.
	expiredAgo := time.Duration(10+f.r.Intn(350)) * 24 * time.Hour
	start := f.w.ScanTime.Add(-lifetime - expiredAgo)
	s.Chain = a.Issue(ca.Request{
		Hostnames: []string{s.Hostname},
		Key:       key,
		NotBefore: start,
		Lifetime:  lifetime,
		Serial:    f.nextSerial(),
	})
	s.Issuer = a.Name
}

func (f *certFactory) issueMismatch(s *Site, mix []caWeight) {
	country := s.Country
	if country == "" {
		country = "xx"
	}
	if f.r.Float64() < 0.6 {
		// Reuse the country's shared wildcard certificate on a host the
		// wildcard does not cover — the Bangladesh/Colombia pattern.
		sc := f.sharedWildcard(country, mix)
		s.Chain = sc.chain
		s.Issuer = sc.chain[0].Issuer.CommonName
		return
	}
	// Otherwise a certificate for an unrelated hostname of the same
	// government (copy-pasted vhost configuration).
	a := f.pickCA(mix, false)
	key := f.hostKey(a, false)
	other := "old-" + s.Hostname
	start := f.w.ScanTime.Add(-time.Duration(10+f.r.Intn(300)) * 24 * time.Hour)
	s.Chain = a.Issue(ca.Request{
		Hostnames: []string{other},
		Key:       key,
		NotBefore: start,
		Lifetime:  f.invalidLifetime(),
		Serial:    f.nextSerial(),
	})
	s.Issuer = a.Name
}

// sharedWildcard returns (creating on first use) one of the country's
// shared wildcard certificates.
func (f *certFactory) sharedWildcard(country string, mix []caWeight) *sharedCert {
	certs := f.sharedWildcards[country]
	want := sharedWildcardCounts[country]
	if want == 0 {
		want = 1 + f.r.Intn(2)
	}
	if len(certs) < want {
		a := f.pickCA(mix, true) // the certificate itself is healthy
		key := f.hostKey(a, true)
		zone := "portal" + strconv.Itoa(len(certs)+1) + ".gov." + country
		// Shared portal certificates often carry the long, out-of-policy
		// lifetimes §5.3.1 observes on invalid certificates.
		lifetime := time.Duration(0)
		if f.r.Float64() < 0.6 {
			lifetime = f.invalidLifetime()
		}
		chain := a.Issue(ca.Request{
			Hostnames: []string{"*." + zone, zone},
			Key:       key,
			NotBefore: f.w.ScanTime.Add(-90 * 24 * time.Hour),
			Lifetime:  lifetime,
			Serial:    f.nextSerial(),
		})
		sc := &sharedCert{chain: chain, zone: zone}
		f.sharedWildcards[country] = append(certs, sc)
		return sc
	}
	return certs[f.r.Intn(len(certs))]
}

func (f *certFactory) issueLocalIssuer(s *Site, mix []caWeight) {
	// Two roads to OpenSSL error 20: a chain from an untrusted CA, or a
	// server that forgot to install its intermediate.
	useInternal := f.r.Float64() < 0.55
	if s.Country == "kr" {
		useInternal = f.r.Float64() < 0.85 // NPKI territory
	}
	if useInternal {
		ic := f.internalCA(s.Country, mix)
		key := f.hostKey(f.w.CAs.MustLookup("Let's Encrypt Authority X3"), false)
		leaf := &cert.Certificate{
			SerialNumber:       f.r.Uint64(),
			Subject:            cert.Name{CommonName: s.Hostname, Country: s.Country},
			Issuer:             cert.Name{CommonName: ic.issuerCN},
			DNSNames:           []string{s.Hostname},
			NotBefore:          f.w.ScanTime.Add(-100 * 24 * time.Hour),
			NotAfter:           f.w.ScanTime.Add(f.invalidLifetime()),
			PublicKey:          key,
			SignatureAlgorithm: cert.SHA256WithRSA,
		}
		leaf.Sign(ic.rootKey)
		// The untrusted root is not served, so the client cannot anchor.
		s.Chain = []*cert.Certificate{leaf}
		s.Issuer = ic.issuerCN
		return
	}
	a := f.pickCA(mix, false)
	if a.Distrusted {
		// A distrusted real CA: serve leaf+intermediate; the root is gone
		// from the stores.
		key := f.hostKey(a, false)
		start := f.w.ScanTime.Add(-time.Duration(10+f.r.Intn(200)) * 24 * time.Hour)
		s.Chain = a.Issue(ca.Request{Hostnames: []string{s.Hostname}, Key: key, NotBefore: start, Serial: f.nextSerial()})
		s.Issuer = a.Name
		return
	}
	// Missing intermediate: serve only the leaf.
	key := f.hostKey(a, false)
	start := f.w.ScanTime.Add(-time.Duration(10+f.r.Intn(200)) * 24 * time.Hour)
	chain := a.Issue(ca.Request{Hostnames: []string{s.Hostname}, Key: key, NotBefore: start, Serial: f.nextSerial()})
	s.Chain = chain[:1]
	s.Issuer = a.Name
}

func (f *certFactory) internalCA(country string, mix []caWeight) *internalCA {
	if country == "kr" {
		// South Korea's local-issuer failures run through the real NPKI
		// sub-CAs, which are modeled as distrusted authorities.
		name := "CA134100031"
		if f.r.Float64() < 0.4 {
			name = "CA131100001"
		}
		a := f.w.CAs.MustLookup(name)
		return &internalCA{root: a.Root, rootKey: a.Intermediate.PublicKey.ID, issuerCN: a.Name}
	}
	ic, ok := f.internalCAs[country]
	if !ok {
		key := cert.NewKey(f.r, cert.KeyRSA, 2048)
		cn := "Government of " + country + " Internal CA"
		root := &cert.Certificate{
			SerialNumber:       f.r.Uint64(),
			Subject:            cert.Name{CommonName: cn, Country: country},
			Issuer:             cert.Name{CommonName: cn, Country: country},
			NotBefore:          f.w.ScanTime.AddDate(-5, 0, 0),
			NotAfter:           f.w.ScanTime.AddDate(15, 0, 0),
			PublicKey:          key,
			SignatureAlgorithm: cert.SHA256WithRSA,
			IsCA:               true,
		}
		root.Sign(key.ID)
		ic = &internalCA{root: root, rootKey: key.ID, issuerCN: cn}
		f.internalCAs[country] = ic
	}
	return ic
}

func (f *certFactory) issueSelfSigned(s *Site) {
	key := cert.NewKey(f.r, cert.KeyRSA, 2048)
	hostnames := []string{s.Hostname}
	if f.r.Float64() < 0.35 {
		hostnames = []string{"localhost"} // default vendor certificates
	}
	start := f.w.ScanTime.Add(-time.Duration(30+f.r.Intn(700)) * 24 * time.Hour)
	leaf := ca.SelfSigned(key, hostnames, start, f.invalidLifetime(), cert.SHA256WithRSA)
	if f.placeEpochCert() {
		leaf = ca.SelfSigned(key, hostnames, time.Unix(0, 0).UTC(), 70*365*24*time.Hour, cert.SHA256WithRSA)
	}
	s.Chain = []*cert.Certificate{leaf}
	s.Issuer = ""
}

func (f *certFactory) issueSelfSignedChain(s *Site) {
	rootKey := cert.NewKey(f.r, cert.KeyRSA, 2048)
	cn := parentDomain(s.Hostname) + " Root"
	root := &cert.Certificate{
		SerialNumber:       f.r.Uint64(),
		Subject:            cert.Name{CommonName: cn},
		Issuer:             cert.Name{CommonName: cn},
		NotBefore:          f.w.ScanTime.AddDate(-3, 0, 0),
		NotAfter:           f.w.ScanTime.AddDate(17, 0, 0),
		PublicKey:          rootKey,
		SignatureAlgorithm: cert.SHA256WithRSA,
		IsCA:               true,
	}
	root.Sign(rootKey.ID)
	leafKey := cert.NewKey(f.r, cert.KeyRSA, 2048)
	leaf := &cert.Certificate{
		SerialNumber:       f.r.Uint64(),
		Subject:            cert.Name{CommonName: s.Hostname},
		Issuer:             root.Subject,
		DNSNames:           []string{s.Hostname},
		NotBefore:          f.w.ScanTime.AddDate(-1, 0, 0),
		NotAfter:           f.w.ScanTime.Add(f.invalidLifetime()),
		PublicKey:          leafKey,
		SignatureAlgorithm: cert.SHA256WithRSA,
	}
	leaf.Sign(rootKey.ID)
	s.Chain = []*cert.Certificate{leaf, root}
	s.Issuer = cn
}

// invalidLifetime reproduces §5.3.1's spread: 43% of invalid certificates
// are issued for multiples of 365 days, with a long tail of 10/20/30/50/100
// year lifetimes.
func (f *certFactory) invalidLifetime() time.Duration {
	day := 24 * time.Hour
	x := f.r.Float64()
	switch {
	case x < 0.32: // under two years
		return time.Duration(90+f.r.Intn(640)) * day
	case x < 0.57: // two to three years
		return time.Duration(730+f.r.Intn(365)) * day
	case x < 0.75: // exactly N*365 for small N
		return time.Duration(365*(1+f.r.Intn(3))) * day
	case x < 0.86: // three to ten years
		return time.Duration(1100+f.r.Intn(2500)) * day
	case x < 0.945:
		return 10 * 365 * day
	case x < 0.97:
		return 20 * 365 * day
	case x < 0.985:
		return 30 * 365 * day
	case x < 0.9865:
		return 50 * 365 * day
	default:
		return 100 * 365 * day
	}
}

// placeEpochCert returns true exactly once per world.
func (f *certFactory) placeEpochCert() bool {
	if f.epochCertPlaced {
		return false
	}
	f.epochCertPlaced = true
	return true
}

func orgName(s *Site) string {
	if s.Country == "" {
		return ""
	}
	return "Government of " + s.Country
}
