package world

import (
	"math/rand"
	"time"

	"repro/internal/ca"
	"repro/internal/cert"
)

// injectKeyReuse plants the §5.3.3 cross-government certificate and key
// reuse: clusters of hostnames in *different* countries serving the exact
// same certificate (and therefore sharing a private key). At paper scale:
// 154 certificates reused across 1,390 hostnames — 108 certificates shared
// by 2 countries, 19 by 3, 11 by 4 and one infamous self-signed localhost
// certificate shared by 24 countries across 58 hostnames.
func (w *World) injectKeyReuse(r *rand.Rand) {
	countries := make([]string, 0, len(w.ByCountry))
	for _, cc := range sortedKeys(w.ByCountry) {
		if len(w.ByCountry[cc]) >= 4 {
			countries = append(countries, cc)
		}
	}
	if len(countries) < 4 {
		return
	}

	clusters := []struct {
		certs, countries int
	}{
		{w.scaled(108, 2), 2},
		{w.scaled(19, 1), 3},
		{w.scaled(11, 1), 4},
		{1, 24},
	}
	for _, cl := range clusters {
		for i := 0; i < cl.certs; i++ {
			nCountries := cl.countries
			if nCountries > len(countries) {
				nCountries = len(countries)
			}
			w.plantReusedCert(r, countries, nCountries)
		}
	}
}

// plantReusedCert mints one certificate and installs it on hosts drawn from
// n distinct countries. Most reused certificates are invalid self-signed
// localhost certificates (§5.3.3: 15.1% bare self-signed, 46.6% hostname
// mismatches); they replace the chains of already-invalid https sites so
// the world's validity marginals stay calibrated.
func (w *World) plantReusedCert(r *rand.Rand, countries []string, n int) {
	key := cert.NewKey(r, cert.KeyRSA, 2048)
	var chain []*cert.Certificate
	if n >= 24 || r.Float64() < 0.3 {
		// The classic vendor default: a self-signed localhost certificate.
		leaf := ca.SelfSigned(key, []string{"localhost"},
			w.ScanTime.AddDate(-2, 0, 0), 10*365*24*time.Hour, cert.SHA256WithRSA)
		chain = []*cert.Certificate{leaf}
	} else {
		// A certificate legitimately issued to one government, copied
		// verbatim onto servers of others — valid chain, wrong hostnames.
		a := w.CAs.MustLookup("Sectigo RSA Domain Validation Secure Server CA")
		zone := "shared.gov." + countries[r.Intn(len(countries))]
		chain = a.Issue(ca.Request{
			Hostnames: []string{"*." + zone, zone},
			Key:       key,
			NotBefore: w.ScanTime.AddDate(0, -6, 0),
		})
	}

	picked := pickDistinct(r, countries, n)
	for _, cc := range picked {
		hosts := w.ByCountry[cc]
		// Install on 1-3 hosts of the country. Prefer already-invalid
		// https hosts (keeping the validity marginals untouched); fall
		// back to any https host so every picked country actually joins
		// the cluster — the cross-country counts are the point of §5.3.3.
		installs := 2 + r.Intn(4)
		if w.Cfg.Scale < 0.1 {
			// Scaled-down worlds keep the cluster *count* floors, so scale
			// the per-country installs instead to protect the Table 2
			// error-mix ordering.
			installs = 1 + r.Intn(2)
		}
		install := func(s *Site) {
			s.Chain = chain
			if chain[0].SelfSigned() {
				s.Injected = ClassSelfSigned
				s.Issuer = ""
			} else {
				s.Injected = ClassHostnameMismatch
				s.Issuer = chain[0].Issuer.CommonName
			}
			installs--
		}
		for tries := 0; tries < 60 && installs > 0; tries++ {
			s := w.Sites[hosts[r.Intn(len(hosts))]]
			if !s.Serving.HasHTTPS() || s.Injected.IsException() {
				continue
			}
			if s.Injected == ClassValid && tries < 30 {
				continue // prefer already-broken hosts first
			}
			install(s)
		}
	}
}

func pickDistinct(r *rand.Rand, items []string, n int) []string {
	// The callers pick a dozen countries out of ~200 a couple hundred
	// times per build; rejection sampling costs O(n) per draw instead of
	// the O(len(items)) a full Perm spends.
	if n*3 >= len(items) {
		// Dense picks would reject too often: partial Fisher–Yates.
		idx := make([]int, len(items))
		for i := range idx {
			idx[i] = i
		}
		out := make([]string, n)
		for i := 0; i < n; i++ {
			j := i + r.Intn(len(idx)-i)
			idx[i], idx[j] = idx[j], idx[i]
			out[i] = items[idx[i]]
		}
		return out
	}
	out := make([]string, 0, n)
	seen := make(map[int]struct{}, n)
	for len(out) < n {
		i := r.Intn(len(items))
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, items[i])
	}
	return out
}
