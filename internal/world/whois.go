package world

import (
	"fmt"
	"net/netip"

	"repro/internal/geo"
	"repro/internal/whois"
)

// WhoisAddr is where the world's whois service listens (§7.2: the authors
// queried the registrars' whois servers for technical contacts).
var WhoisAddr = netip.AddrPortFrom(netip.MustParseAddr("198.41.0.4"), 43)

// buildWhois installs the registrar directory: one record per government
// registry suffix, with technical and administrative contacts derived from
// the country code.
func (w *World) buildWhois() {
	srv := whois.NewServer()
	for _, c := range geo.All() {
		for _, suffix := range c.GovSuffixes() {
			srv.Add(whois.Record{
				Domain:     suffix,
				Registrar:  fmt.Sprintf("%s NIC", c.Name),
				TechEmail:  fmt.Sprintf("hostmaster@nic.%s", c.Code),
				AdminEmail: fmt.Sprintf("admin@nic.%s", c.Code),
				Country:    c.Code,
			})
		}
	}
	w.Whois = srv
	w.Net.Handle(WhoisAddr, srv.Handle)
}
