package world

import (
	"math/rand"
	"sort"
)

// ROKData holds the South Korea case study (§6.2, Appendix A.2): the
// Government24 ("gov.kr") hostname database.
type ROKData struct {
	// Hosts lists every hostname in the database, including unreachable
	// ones, sorted.
	Hosts []string
}

// rokRow transcribes Tables A.3 and A.4: 21,818 hostnames, 16,814 serving
// http, 13,768 serving https (11,685 both), 5,226 valid, 8,542 invalid
// with the exact error breakdown.
var rokRow = struct {
	total, http, both, https, valid            int
	mismatch, localIss, exceptions, selfSigned int
	expired, ssChain, timeout, refused         int
}{
	total: 21818, http: 16814, both: 11685, https: 13768, valid: 5226,
	mismatch: 2529, localIss: 2126, exceptions: 2903, selfSigned: 21,
	expired: 23, ssChain: 818, timeout: 25, refused: 97,
}

// buildROK realizes the Government24 dataset.
func (w *World) buildROK(r *rand.Rand) {
	f := newCertFactory(w, rand.New(rand.NewSource(r.Int63())))
	row := rokRow
	union := row.http + row.https - row.both
	spec := &datasetSpec{
		key:         "kr-gov24",
		suffix:      "go.kr",
		country:     "kr",
		httpOnly:    row.http - row.both,
		both:        row.both,
		httpsOnly:   row.https - row.both,
		unavailable: row.total - union,
		valid:       row.valid,
		invalid: map[ErrorClass]int{
			ClassHostnameMismatch: row.mismatch,
			ClassLocalIssuer:      row.localIss,
			ClassSelfSigned:       row.selfSigned,
			ClassExpired:          row.expired,
			ClassSelfSignedChain:  row.ssChain,
			ClassExcTimeout:       row.timeout,
			ClassExcRefused:       row.refused,
			// The 2,903 "unknown exceptions" of Table A.4, split across
			// the protocol-level failure modes (§6.3 notes unsupported
			// SSL protocol, wrong version and alert failures).
			ClassExcSSLProto:       int(float64(row.exceptions) * 0.80),
			ClassExcAlertInternal:  int(float64(row.exceptions) * 0.08),
			ClassExcAlertHandshake: int(float64(row.exceptions) * 0.06),
			ClassExcWrongVersion:   int(float64(row.exceptions) * 0.06),
		},
		caMix:      caMixROK,
		cloudShare: 0.0015, // §6.2.2: 0.21% of ROK sites on cloud/CDN
		cdnShare:   0.0006,
	}
	hosts := w.buildDataset(rand.New(rand.NewSource(r.Int63())), f, spec)
	sort.Strings(hosts)
	w.ROK = &ROKData{Hosts: hosts}
}
