package world

import (
	"math/rand"
	"sort"
)

// buildLinks assigns each worldwide government site a crawl depth and wires
// the hyperlink graph the crawler walks (§4.2.2, Figure A.4): seeds sit at
// depth 0, discovery grows through depth 5 and tapers at 6-7. Cross-
// government links (§7.3.3, Figure A.5) and non-government links (filtered
// by the crawler) are sprinkled on top.
func (w *World) buildLinks(r *rand.Rand) {
	// Depth shares of the non-seed population: growth declines after
	// level 5 (Figure A.4).
	depthShare := []float64{0.16, 0.20, 0.22, 0.18, 0.14, 0.06, 0.04}

	var allSeeds []string
	for _, cc := range w.sortedCountries() {
		hosts := append([]string(nil), w.ByCountry[cc]...)
		sort.Strings(hosts)
		r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })

		// ~20.3% of the worldwide list is in the merged seed (27,532 of
		// 135,408); every country keeps at least one seed so the crawler
		// can reach it.
		nSeed := int(float64(len(hosts))*0.203 + 0.5)
		if nSeed < 1 {
			nSeed = 1
		}
		levels := make([][]string, 8)
		levels[0] = hosts[:nSeed]
		rest := hosts[nSeed:]
		idx := 0
		for d := 1; d <= 7 && idx < len(rest); d++ {
			n := int(float64(len(rest))*depthShare[d-1] + 0.5)
			if d == 7 {
				n = len(rest) - idx
			}
			if idx+n > len(rest) {
				n = len(rest) - idx
			}
			levels[d] = rest[idx : idx+n]
			idx += n
		}

		// Record each site's discovery depth.
		for d, lv := range levels {
			for _, h := range lv {
				w.Sites[h].Depth = d
			}
		}
		// Wire each level to the next: every depth-(d+1) site is linked
		// from at least one site of the closest populated shallower level.
		for d := 0; d < 7; d++ {
			parents, children := levels[d], levels[d+1]
			if len(parents) == 0 {
				for dd := d - 1; dd >= 0; dd-- {
					if len(levels[dd]) > 0 {
						parents = levels[dd]
						break
					}
				}
			}
			if len(parents) == 0 {
				continue
			}
			for i, child := range children {
				parent := w.Sites[parents[i%len(parents)]]
				parent.Links = append(parent.Links, child)
			}
		}
		allSeeds = append(allSeeds, levels[0]...)
		// A few intra-country lateral links and links to unreachable
		// hostnames (the "still linked but gone" population of §7.2).
		for i := 0; i < len(hosts)/10; i++ {
			a := w.Sites[hosts[r.Intn(len(hosts))]]
			a.Links = append(a.Links, hosts[r.Intn(len(hosts))])
		}
	}
	w.SeedHosts = allSeeds

	w.addCrossGovernmentLinks(r)
	w.addNoise(r)
}

// addCrossGovernmentLinks reproduces Figure A.5's shape: Austria links to
// ~70 other governments; 75% of countries link to at least 7.
func (w *World) addCrossGovernmentLinks(r *rand.Rand) {
	countries := w.sortedCountries()
	if len(countries) < 8 {
		return
	}
	targetOf := func(cc string) string {
		hosts := w.ByCountry[cc]
		return hosts[r.Intn(len(hosts))]
	}
	for _, cc := range countries {
		hosts := w.ByCountry[cc]
		if len(hosts) == 0 {
			continue
		}
		// Number of distinct foreign governments this country links to.
		nTargets := 7 + r.Intn(14)
		if r.Float64() < 0.25 {
			nTargets = 2 + r.Intn(5) // the bottom quartile links to <7
		}
		if cc == "at" {
			nTargets = 70 // Austria, the §7.3.3 outlier
		}
		if nTargets > len(countries)-1 {
			nTargets = len(countries) - 1
		}
		for _, other := range pickDistinct(r, countries, nTargets+1) {
			if other == cc {
				continue
			}
			src := w.Sites[hosts[r.Intn(len(hosts))]]
			src.Links = append(src.Links, targetOf(other))
		}
	}
}

// addNoise links government pages to non-government and unreachable hosts,
// which the crawler must filter or record.
func (w *World) addNoise(r *rand.Rand) {
	nonGov := []string{
		"www.facebook.com", "twitter.com", "www.youtube.com",
		"maps.google.com", "www.weather.com", "cdn.jsdelivr.net",
	}
	for _, cc := range w.sortedCountries() {
		hosts := w.ByCountry[cc]
		for i := 0; i < len(hosts)/6+1; i++ {
			s := w.Sites[hosts[r.Intn(len(hosts))]]
			s.Links = append(s.Links, nonGov[r.Intn(len(nonGov))])
		}
	}
	// Dead links to unreachable government hostnames.
	for i := 0; i < len(w.UnreachableHosts) && i < len(w.GovHosts); i += 3 {
		s := w.Sites[w.GovHosts[(i*7)%len(w.GovHosts)]]
		s.Links = append(s.Links, w.UnreachableHosts[i])
	}
}

func (w *World) sortedCountries() []string {
	out := sortedKeys(w.ByCountry)
	kept := out[:0]
	for _, cc := range out {
		if len(w.ByCountry[cc]) > 0 {
			kept = append(kept, cc)
		}
	}
	return kept
}
