package world

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/simnet"
	"repro/internal/tlssim"
)

// RemediationRates tunes the post-disclosure churn of §7.2.2.
type RemediationRates struct {
	// Fix is the probability an invalid host gets its certificate fixed
	// (paper: 1,263 of 15,179 ≈ 8.3%).
	Fix float64
	// Remove is the probability a previously invalid host disappears
	// (paper: 1,572 of 15,179 ≈ 10.4%).
	Remove float64
	// PerCountryFix overrides Fix for specific countries (the 7 countries
	// with >40% improvement).
	PerCountryFix map[string]float64
}

// DefaultRemediationRates mirrors the paper's observed effectiveness.
func DefaultRemediationRates() RemediationRates {
	return RemediationRates{
		Fix:    0.083,
		Remove: 0.104,
		PerCountryFix: map[string]float64{
			// §7.2.2: Bahrain, Burkina Faso, Cuba, Honduras, Portugal,
			// Libya and Vietnam improved by more than 40%.
			"bh": 0.45, "bf": 0.45, "cu": 0.45, "hn": 0.45,
			"pt": 0.45, "ly": 0.45, "vn": 0.45,
		},
	}
}

// RemediationOutcome records what changed between the scans.
type RemediationOutcome struct {
	Fixed   []string
	Removed []string
	// Unchanged hosts continue serving invalid certificates.
	Unchanged []string
	// NewlyValidFromHTTP counts http-only hosts that gained valid https.
	NewlyValidFromHTTP int
	// NewlyInvalidFromHTTP counts http-only hosts that gained broken https.
	NewlyInvalidFromHTTP int
	// NewlyServingHosts lists the http-only hosts behind those two counts.
	NewlyServingHosts []string
	// RevivedValid / RevivedInvalid count previously unreachable hosts now
	// serving valid / invalid https.
	RevivedValid   int
	RevivedInvalid int
}

// ChangedHosts returns every hostname whose scan result may differ after
// the remediation — the partial-invalidation set for cached datasets.
// Unchanged hosts kept their broken certificates, and revived hosts are
// excluded because the unreachable population is never part of a scanned
// corpus (GovHosts and UnreachableHosts are disjoint).
func (o *RemediationOutcome) ChangedHosts() []string {
	out := make([]string, 0, len(o.Fixed)+len(o.Removed)+len(o.NewlyServingHosts))
	out = append(out, o.Fixed...)
	out = append(out, o.Removed...)
	out = append(out, o.NewlyServingHosts...)
	return out
}

// Remediate mutates the world as the §7.2.2 follow-up scan found it two
// months after disclosure: some invalid hosts fixed their certificates,
// some disappeared, most stayed broken; some http-only hosts adopted https;
// a slice of the unreachable population came alive.
func (w *World) Remediate(invalidHosts []string, rates RemediationRates, r *rand.Rand) RemediationOutcome {
	f := newCertFactory(w, rand.New(rand.NewSource(r.Int63())))
	var out RemediationOutcome
	for _, h := range invalidHosts {
		s, ok := w.Sites[h]
		if !ok {
			continue
		}
		fixP := rates.Fix
		if p, ok := rates.PerCountryFix[s.Country]; ok {
			fixP = p
		}
		switch x := r.Float64(); {
		case x < fixP:
			w.fixSite(s, f)
			out.Fixed = append(out.Fixed, h)
		case x < fixP+rates.Remove:
			w.removeSite(s)
			out.Removed = append(out.Removed, h)
		default:
			out.Unchanged = append(out.Unchanged, h)
		}
	}

	// §7.2.2: 1.15% of http-only hosts now serve valid https and 1.85%
	// invalid https; ~6% of unreachable hosts revive with invalid
	// certificates and ~13.76% with valid ones.
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if s.Serving != HTTPOnly {
			continue
		}
		switch x := r.Float64(); {
		case x < 0.0115:
			s.Serving = BothRedirect
			f.configure(s, ClassValid, caMixWorldwide)
			w.serveSite(s)
			out.NewlyValidFromHTTP++
			out.NewlyServingHosts = append(out.NewlyServingHosts, h)
			w.recordChange(FollowUpScanTime, h, GainedHTTPS)
		case x < 0.0115+0.0185:
			s.Serving = BothNoRedirect
			f.configure(s, ClassHostnameMismatch, caMixWorldwide)
			w.serveSite(s)
			out.NewlyInvalidFromHTTP++
			out.NewlyServingHosts = append(out.NewlyServingHosts, h)
			w.recordChange(FollowUpScanTime, h, GainedHTTPS)
		}
	}
	for _, h := range w.UnreachableHosts {
		if _, exists := w.Sites[h]; exists {
			continue
		}
		switch x := r.Float64(); {
		case x < 0.1376:
			w.reviveSite(h, f, ClassValid, r)
			out.RevivedValid++
		case x < 0.1376+0.06:
			w.reviveSite(h, f, ClassHostnameMismatch, r)
			out.RevivedInvalid++
		}
	}
	return out
}

// fixSite reissues a correct certificate and clears faults and quirks.
func (w *World) fixSite(s *Site, f *certFactory) {
	if s.Fault != simnet.FaultNone {
		w.Net.SetFault(netip.AddrPortFrom(s.IP, 443), simnet.FaultNone)
		s.Fault = simnet.FaultNone
	}
	s.Quirk = tlssim.QuirkNone
	s.TLSMin, s.TLSMax = tlssim.TLS1_0, tlssim.TLS1_2
	// Reissue close to the follow-up scan date.
	saved := w.ScanTime
	w.ScanTime = FollowUpScanTime.Add(-20 * 24 * time.Hour)
	f.configure(s, ClassValid, caMixWorldwide)
	w.ScanTime = saved
	if !s.Serving.HasHTTPS() {
		s.Serving = BothRedirect
	}
	w.serveSite(s)
	w.recordChange(FollowUpScanTime, s.Hostname, SiteFixed)
}

// removeSite takes a host off the Internet.
func (w *World) removeSite(s *Site) {
	w.DNS.Remove(s.Hostname)
	w.Net.Handle(netip.AddrPortFrom(s.IP, 80), nil)
	w.Net.Handle(netip.AddrPortFrom(s.IP, 443), nil)
	w.Net.SetFault(netip.AddrPortFrom(s.IP, 443), simnet.FaultNone)
	s.Serving = Unavailable
	w.recordChange(FollowUpScanTime, s.Hostname, SiteRemoved)
}

// reviveSite brings a previously unreachable hostname online.
func (w *World) reviveSite(host string, f *certFactory, class ErrorClass, r *rand.Rand) {
	ip := w.allocIP("Private")
	s := &Site{Hostname: host, Country: "", IP: ip, Provider: "Private", Serving: BothRedirect}
	f.configure(s, class, caMixWorldwide)
	w.addSite(s)
	w.DNS.Remove(host) // clear any half-registered A records
	w.DNS.AddA(host, ip)
	w.serveSite(s)
	w.recordChange(FollowUpScanTime, host, SiteRevived)
}
