package world

import "math/rand"

// splitmix is a splitmix64 rand.Source64. World construction derives
// hundreds of per-country streams from the master seed; rand.NewSource's
// generator pays a 607-word warm-up per stream, which profiles as ~14% of
// a full build. splitmix seeds in O(1), and its output feeds the same
// rand.Rand draw methods.
type splitmix struct{ state uint64 }

func newSplitMix(seed int64) rand.Source { return &splitmix{state: uint64(seed)} }

func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmix) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e862
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
