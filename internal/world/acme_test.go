package world

import (
	"context"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/httpsim"
	"repro/internal/simnet"
	"repro/internal/tlssim"
	"repro/internal/verify"
)

// acmeHookWorld builds a private small world: these tests mutate serving
// state and must not touch the shared testWorld.
func acmeHookWorld(t *testing.T) *World {
	t.Helper()
	return MustBuild(Config{Seed: 7, Scale: 0.005})
}

func findSite(w *World, pred func(*Site) bool) *Site {
	for _, h := range w.GovHosts {
		if s := w.Sites[h]; pred(s) {
			return s
		}
	}
	return nil
}

func TestChallengeServing(t *testing.T) {
	w := acmeHookWorld(t)
	s := findSite(w, func(s *Site) bool { return s.Serving == BothRedirect })
	if s == nil {
		t.Fatal("no BothRedirect site")
	}
	ctx := context.Background()
	get := func(path string) *httpsim.Response {
		conn, err := w.Net.Dial(ctx, "acme-va", netip.AddrPortFrom(s.IP, 80))
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		resp, err := httpsim.Get(conn, s.Hostname, path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		return resp
	}

	const token = "tok-000001-0-deadbeef"
	path := "/.well-known/acme-challenge/" + token
	if resp := get(path); resp.StatusCode == 200 {
		t.Fatal("challenge served before SetChallenge")
	}
	if !w.SetChallenge(s.Hostname, token) {
		t.Fatal("SetChallenge refused a known host")
	}
	if resp := get(path); resp.StatusCode != 200 || string(resp.Body) != token {
		t.Fatalf("challenge = %d %q, want 200 %q", resp.StatusCode, resp.Body, token)
	}
	// The site's normal behaviour is unaffected mid-campaign.
	if resp := get("/"); !resp.IsRedirect() {
		t.Errorf("/ = %d, want redirect during challenge", resp.StatusCode)
	}
	w.ClearChallenge(s.Hostname)
	if resp := get(path); resp.StatusCode == 200 {
		t.Fatal("challenge still served after ClearChallenge")
	}
	if w.SetChallenge("no-such-host.invalid", token) {
		t.Error("SetChallenge accepted an unknown host")
	}
}

// TestChallengeStandaloneResponder covers https-only sites: no handler
// owns port 80, so a campaign binds a temporary responder and releases it.
func TestChallengeStandaloneResponder(t *testing.T) {
	w := acmeHookWorld(t)
	s := findSite(w, func(s *Site) bool {
		return s.Serving == HTTPSOnly && s.Fault == simnet.FaultNone
	})
	if s == nil {
		t.Skip("no https-only site at this scale")
	}
	ctx := context.Background()
	ep := netip.AddrPortFrom(s.IP, 80)
	if _, err := w.Net.Dial(ctx, "acme-va", ep); err == nil {
		t.Fatal("https-only site answered port 80 before campaign")
	}
	const token = "tok-standalone"
	w.SetChallenge(s.Hostname, token)
	conn, err := w.Net.Dial(ctx, "acme-va", ep)
	if err != nil {
		t.Fatalf("standalone responder not bound: %v", err)
	}
	resp, err := httpsim.Get(conn, s.Hostname, "/.well-known/acme-challenge/"+token)
	conn.Close()
	if err != nil || resp.StatusCode != 200 || string(resp.Body) != token {
		t.Fatalf("standalone challenge = %v %v", resp, err)
	}
	w.ClearChallenge(s.Hostname)
	if _, err := w.Net.Dial(ctx, "acme-va", ep); err == nil {
		t.Fatal("standalone responder still bound after ClearChallenge")
	}
}

func TestRotateCert(t *testing.T) {
	w := acmeHookWorld(t)
	s := findSite(w, func(s *Site) bool {
		return s.Serving.HasHTTPS() && s.Injected != ClassValid && s.Fault == simnet.FaultNone
	})
	if s == nil {
		t.Fatal("no broken https site")
	}
	authority := w.CAs.MustLookup("Let's Encrypt Authority X3")
	key := cert.NewKey(rand.New(rand.NewSource(99)), cert.KeyRSA, 2048)
	chain := authority.Issue(ca.Request{
		Hostnames: []string{s.Hostname},
		Key:       key,
		NotBefore: w.ScanTime,
	})
	if !w.RotateCert(s.Hostname, chain) {
		t.Fatal("RotateCert refused a known host")
	}

	raw, err := w.Net.Dial(context.Background(), "lab", netip.AddrPortFrom(s.IP, 443))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	tc, err := tlssim.ClientHandshake(raw, tlssim.DefaultClientConfig(s.Hostname))
	if err != nil {
		t.Fatalf("handshake after rotation: %v", err)
	}
	v := &verify.Verifier{Store: w.Stores["apple"], Now: w.ScanTime.AddDate(0, 1, 0)}
	if res := v.Verify(tc.ConnectionState().Chain, s.Hostname); !res.Valid() {
		t.Fatalf("rotated chain invalid: %v (%s)", res.Code, res.Detail)
	}
	if s.Issuer != chain[0].Issuer.CommonName {
		t.Errorf("Issuer = %q, want %q", s.Issuer, chain[0].Issuer.CommonName)
	}
	if w.RotateCert(s.Hostname, nil) {
		t.Error("RotateCert accepted an empty chain")
	}
	if w.RotateCert("no-such-host.invalid", chain) {
		t.Error("RotateCert accepted an unknown host")
	}
}

// TestRotateCertUpgradesHTTPOnly: an http-only host adopting https via the
// fleet starts serving and redirecting.
func TestRotateCertUpgradesHTTPOnly(t *testing.T) {
	w := acmeHookWorld(t)
	s := findSite(w, func(s *Site) bool { return s.Serving == HTTPOnly })
	if s == nil {
		t.Fatal("no http-only site")
	}
	authority := w.CAs.MustLookup("Let's Encrypt Authority X3")
	key := cert.NewKey(rand.New(rand.NewSource(100)), cert.KeyRSA, 2048)
	chain := authority.Issue(ca.Request{
		Hostnames: []string{s.Hostname},
		Key:       key,
		NotBefore: w.ScanTime,
	})
	if !w.RotateCert(s.Hostname, chain) {
		t.Fatal("RotateCert refused")
	}
	if s.Serving != BothRedirect {
		t.Fatalf("Serving = %v, want BothRedirect", s.Serving)
	}
	conn, err := w.Net.Dial(context.Background(), "lab", netip.AddrPortFrom(s.IP, 443))
	if err != nil {
		t.Fatalf("443 after upgrade: %v", err)
	}
	conn.Close()
}
