package world

import (
	"math/rand"
	"sort"
)

// USAData holds the GSA case study (§6.1, Appendix A.1): the fifteen
// authoritative datasets of US government hostnames.
type USAData struct {
	// Datasets maps the dataset key (Table A.2's A-O) to its hostnames.
	Datasets []GSADataset
}

// GSADataset is one GSA host list.
type GSADataset struct {
	Key  string
	Name string
	// Hosts lists every hostname, including unreachable ones.
	Hosts []string
}

// AllHosts returns the union of every dataset's hostnames, sorted.
func (u *USAData) AllHosts() []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range u.Datasets {
		for _, h := range d.Hosts {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Dataset returns the dataset with the given key.
func (u *USAData) Dataset(key string) (GSADataset, bool) {
	for _, d := range u.Datasets {
		if d.Key == key {
			return d, true
		}
	}
	return GSADataset{}, false
}

// gsaRow carries one row of Tables A.1 + A.2: serving marginals and the
// exact error-class counts (E5..E13).
type gsaRow struct {
	key, name                  string
	suffix                     string
	total, http, both, https   int
	valid                      int
	expired, ssChain, localIss int
	selfSigned, mismatch       int
	timeout, refused, unknown  int
	ipMismatch                 int
}

// gsaRows transcribes Tables A.1 and A.2.
var gsaRows = []gsaRow{
	{key: "state", name: "Govt. State Only Domains", suffix: "gov",
		total: 827, http: 203, both: 106, https: 561, valid: 406,
		expired: 5, ssChain: 1, localIss: 8, selfSigned: 10, mismatch: 80,
		timeout: 20, refused: 3, unknown: 28},
	{key: "native", name: "Govt. Native Sovereign Only Domains", suffix: "gov",
		total: 53, http: 24, both: 15, https: 37, valid: 27,
		localIss: 1, selfSigned: 4, mismatch: 5},
	{key: "rdns", name: "rDNS Federal Snapshot", suffix: "gov",
		total: 8896, http: 142, both: 68, https: 3614, valid: 3370,
		expired: 19, ssChain: 9, localIss: 73, selfSigned: 2, mismatch: 98,
		timeout: 6, refused: 6, unknown: 31},
	{key: "regional", name: "Govt. Regional Only Domains", suffix: "gov",
		total: 51, http: 18, both: 8, https: 32, valid: 23,
		localIss: 1, selfSigned: 3, mismatch: 4, timeout: 1},
	{key: "notused", name: "Govt. Not used Domains", suffix: "gov",
		total: 2511, http: 845, both: 474, https: 1509, valid: 925,
		expired: 16, ssChain: 8, localIss: 27, selfSigned: 90, mismatch: 249,
		timeout: 53, refused: 19, unknown: 122},
	{key: "ocsp", name: "Govt. OCSP CRL", suffix: "gov",
		total: 15, http: 12, both: 0, https: 0, valid: 0},
	{key: "quasi", name: "Govt. Quasi governmental Only Domains", suffix: "gov",
		total: 64, http: 7, both: 4, https: 50, valid: 36,
		mismatch: 4, timeout: 6, unknown: 4},
	{key: "eot2016", name: "End of Term 2016 Snapshot", suffix: "gov",
		total: 177969, http: 16079, both: 9190, https: 56531, valid: 45789,
		expired: 212, ssChain: 80, localIss: 1320, selfSigned: 555,
		mismatch: 5982, timeout: 337, refused: 268, unknown: 1419},
	{key: "censys", name: "Censys Federal Snapshot", suffix: "gov",
		total: 47909, http: 475, both: 203, https: 10415, valid: 9737,
		expired: 53, ssChain: 20, localIss: 203, selfSigned: 3,
		mismatch: 184, timeout: 18, refused: 151, unknown: 46},
	{key: "other", name: "Other Websites", suffix: "gov",
		total: 14330, http: 157, both: 98, https: 3382, valid: 3096,
		expired: 15, ssChain: 2, localIss: 44, selfSigned: 7,
		mismatch: 173, timeout: 15, refused: 15, unknown: 14, ipMismatch: 1},
	{key: "federal", name: "Govt. Federal Only Domains", suffix: "gov",
		total: 391, http: 77, both: 39, https: 213, valid: 159,
		expired: 3, localIss: 2, selfSigned: 5, mismatch: 29,
		timeout: 5, refused: 4, unknown: 6},
	{key: "currentfed", name: "Govt. Current Federal Domains", suffix: "gov",
		total: 1249, http: 32, both: 19, https: 892, valid: 811,
		expired: 4, ssChain: 1, localIss: 11, mismatch: 30,
		timeout: 14, refused: 3, unknown: 18},
	{key: "local", name: "Govt. Local Only Domains", suffix: "gov",
		total: 6228, http: 2476, both: 1544, https: 4751, valid: 3613,
		expired: 34, ssChain: 11, localIss: 89, selfSigned: 112,
		mismatch: 584, timeout: 51, refused: 34, unknown: 223},
	{key: "dotmil", name: "DOT .MIL (Dept. of Defense)", suffix: "mil",
		total: 89, http: 10, both: 6, https: 36, valid: 29,
		localIss: 3, mismatch: 3, timeout: 1},
	{key: "county", name: "Govt. County Only Domains", suffix: "gov",
		total: 1399, http: 534, both: 278, https: 883, valid: 630,
		expired: 7, ssChain: 2, localIss: 25, selfSigned: 13, mismatch: 124,
		timeout: 8, refused: 4, unknown: 70},
}

// buildUSA realizes the fifteen GSA datasets.
func (w *World) buildUSA(r *rand.Rand) {
	f := newCertFactory(w, rand.New(rand.NewSource(r.Int63())))
	usa := &USAData{}
	for _, row := range gsaRows {
		spec := row.toSpec()
		hosts := w.buildDataset(rand.New(rand.NewSource(r.Int63())), f, spec)
		usa.Datasets = append(usa.Datasets, GSADataset{Key: row.key, Name: row.name, Hosts: hosts})
	}
	w.USA = usa
}

func (row gsaRow) toSpec() *datasetSpec {
	union := row.http + row.https - row.both
	unavailable := row.total - union
	if unavailable < 0 {
		unavailable = 0
	}
	return &datasetSpec{
		key:         "us-" + row.key,
		suffix:      row.suffix,
		country:     "us",
		httpOnly:    row.http - row.both,
		both:        row.both,
		httpsOnly:   row.https - row.both,
		unavailable: unavailable,
		valid:       row.valid,
		invalid: map[ErrorClass]int{
			ClassExpired:          row.expired,
			ClassSelfSignedChain:  row.ssChain,
			ClassLocalIssuer:      row.localIss,
			ClassSelfSigned:       row.selfSigned,
			ClassHostnameMismatch: row.mismatch + row.ipMismatch,
			ClassExcTimeout:       row.timeout,
			ClassExcRefused:       row.refused,
			ClassExcSSLProto:      row.unknown, // "unknown exceptions"
		},
		caMix:      caMixUSA,
		cloudShare: 0.095,
		cdnShare:   0.035,
	}
}
