package world

import (
	"math/rand"
	"sort"
)

// MTurkCampaign simulates the §4.2.1 crowdsourcing pass: tasks are issued
// for countries with fewer than 11 hostnames in the seed list; workers
// return up to six URLs per task across the prescribed service categories.
type MTurkCampaign struct {
	// TasksIssued is the number of tasks published.
	TasksIssued int
	// ResponsesAccepted counts responses surviving manual inspection.
	ResponsesAccepted int
	// Hostnames are the unique hostnames returned by workers.
	Hostnames []string
	// NewHostnames are those not already in the seed list.
	NewHostnames []string
	// CountriesCovered lists the countries tasks were issued for.
	CountriesCovered []string
}

// RunMTurk simulates the crowdsourcing campaign against the world: for each
// country whose seed membership is under 11, workers contribute hostnames
// drawn from the country's real (sometimes not-yet-discovered) sites, plus
// some noise the "manual inspection" step rejects.
func (w *World) RunMTurk(r *rand.Rand) *MTurkCampaign {
	seedSet := make(map[string]bool, len(w.SeedHosts))
	seedPerCountry := make(map[string]int)
	for _, h := range w.SeedHosts {
		seedSet[h] = true
		seedPerCountry[w.CountryOf(h)]++
	}

	c := &MTurkCampaign{}
	seen := map[string]bool{}
	for _, cc := range w.sortedCountries() {
		if seedPerCountry[cc] >= 11 {
			continue
		}
		hosts := w.ByCountry[cc]
		if len(hosts) == 0 {
			continue
		}
		c.CountriesCovered = append(c.CountriesCovered, cc)
		tasks := 1 + r.Intn(4)
		c.TasksIssued += tasks
		for t := 0; t < tasks; t++ {
			// Manual inspection rejects roughly 30% of responses (§4.2.1
			// accepted 75 of 108).
			if r.Float64() < 0.31 {
				continue
			}
			c.ResponsesAccepted++
			answers := 1 + r.Intn(6)
			for a := 0; a < answers; a++ {
				h := hosts[r.Intn(len(hosts))]
				if seen[h] {
					continue
				}
				seen[h] = true
				c.Hostnames = append(c.Hostnames, h)
				if !seedSet[h] {
					c.NewHostnames = append(c.NewHostnames, h)
				}
			}
		}
	}
	sort.Strings(c.Hostnames)
	sort.Strings(c.NewHostnames)
	return c
}
