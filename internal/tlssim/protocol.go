// Package tlssim implements the TLS-shaped handshake protocol the scanner
// speaks with simulated servers: a record layer, ClientHello/ServerHello
// version negotiation (SSLv2 through TLS 1.3), certificate-chain delivery,
// alerts, and application-data framing. The failure modes reproduce the
// exception taxonomy of Table 2 — unsupported SSL protocol, wrong SSL
// version number, and the SSLv3/TLSv1 alert families.
//
// The wire format mirrors TLS's record structure but is not interoperable
// with real TLS; interoperability is not needed because both endpoints live
// in the simulated network. internal/tlsprobe exercises the same scanning
// machinery against genuine crypto/tls for validation.
package tlssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Version is a protocol version in TLS wire numbering.
type Version uint16

// Protocol versions, oldest first.
const (
	SSLv2  Version = 0x0002
	SSLv3  Version = 0x0300
	TLS1_0 Version = 0x0301
	TLS1_1 Version = 0x0302
	TLS1_2 Version = 0x0303
	TLS1_3 Version = 0x0304
)

// String returns the conventional protocol name.
func (v Version) String() string {
	switch v {
	case SSLv2:
		return "SSLv2"
	case SSLv3:
		return "SSLv3"
	case TLS1_0:
		return "TLSv1.0"
	case TLS1_1:
		return "TLSv1.1"
	case TLS1_2:
		return "TLSv1.2"
	case TLS1_3:
		return "TLSv1.3"
	default:
		return fmt.Sprintf("Version(%#04x)", uint16(v))
	}
}

// Record types.
const (
	recordAlert     uint8 = 21
	recordHandshake uint8 = 22
	recordAppData   uint8 = 23
)

// Handshake message types.
const (
	msgClientHello uint8 = 1
	msgServerHello uint8 = 2
	msgCertificate uint8 = 11
	msgFinished    uint8 = 20
)

// Alert descriptions (TLS numbering).
const (
	AlertHandshakeFailure uint8 = 40
	AlertProtocolVersion  uint8 = 70
	AlertInternalError    uint8 = 80
)

// Handshake errors surfaced to the scanner.
var (
	// ErrUnsupportedProtocol is returned when the server insists on a
	// protocol older than the client supports (the "unsupported SSL
	// protocol" exception — 73.65% of Table 2's exceptions).
	ErrUnsupportedProtocol = errors.New("tlssim: unsupported ssl protocol")
	// ErrWrongVersionNumber is returned when a record carries a garbage
	// protocol version ("wrong ssl version number").
	ErrWrongVersionNumber = errors.New("tlssim: wrong ssl version number")
	// ErrRecordOversize guards the record length field.
	ErrRecordOversize = errors.New("tlssim: record exceeds maximum size")
	// ErrHandshakeState is returned when messages arrive out of order.
	ErrHandshakeState = errors.New("tlssim: unexpected handshake message")
)

// AlertError is a fatal alert received from the peer. Its rendering matches
// OpenSSL's error strings, which the paper's Table 2 rows are named after.
type AlertError struct {
	// ProtocolVersion is the record version the alert arrived under.
	ProtocolVersion Version
	// Description is the TLS alert description code.
	Description uint8
}

// Error implements the error interface.
func (e AlertError) Error() string {
	proto := "tlsv1"
	if e.ProtocolVersion == SSLv3 {
		proto = "sslv3"
	}
	switch e.Description {
	case AlertHandshakeFailure:
		return proto + " alert handshake failure"
	case AlertProtocolVersion:
		return proto + " alert protocol version"
	case AlertInternalError:
		return proto + " alert internal error"
	default:
		return fmt.Sprintf("%s alert %d", proto, e.Description)
	}
}

const maxRecordLen = 1 << 20

// recordBufPool recycles the framing buffers writeRecord serializes into.
// The buffer is handed to w.Write and returned to the pool immediately
// after, which is safe because Write implementations must not retain p
// (simnet copies into the pipe buffer before returning).
var recordBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// writeRecord frames one record.
func writeRecord(w io.Writer, typ uint8, ver Version, payload []byte) error {
	if len(payload) > maxRecordLen {
		return ErrRecordOversize
	}
	bp := recordBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, typ, byte(ver>>8), byte(ver), byte(len(payload)>>8), byte(len(payload)))
	b = append(b, payload...)
	_, err := w.Write(b)
	*bp = b
	recordBufPool.Put(bp)
	return err
}

// readRecord reads one record.
func readRecord(r io.Reader) (typ uint8, ver Version, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	typ = hdr[0]
	ver = Version(binary.BigEndian.Uint16(hdr[1:3]))
	n := int(binary.BigEndian.Uint16(hdr[3:5]))
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return typ, ver, payload, nil
}

// knownVersion reports whether v is a version this implementation can name.
func knownVersion(v Version) bool {
	switch v {
	case SSLv2, SSLv3, TLS1_0, TLS1_1, TLS1_2, TLS1_3:
		return true
	}
	return false
}

// clientHello is the client's opening message.
type clientHello struct {
	MinVersion Version
	MaxVersion Version
	ServerName string
}

func (h clientHello) marshal() []byte {
	b := make([]byte, 0, 7+len(h.ServerName))
	b = append(b, msgClientHello)
	b = binary.BigEndian.AppendUint16(b, uint16(h.MinVersion))
	b = binary.BigEndian.AppendUint16(b, uint16(h.MaxVersion))
	b = binary.BigEndian.AppendUint16(b, uint16(len(h.ServerName)))
	return append(b, h.ServerName...)
}

func parseClientHello(p []byte) (clientHello, error) {
	var h clientHello
	if len(p) < 7 || p[0] != msgClientHello {
		return h, ErrHandshakeState
	}
	h.MinVersion = Version(binary.BigEndian.Uint16(p[1:3]))
	h.MaxVersion = Version(binary.BigEndian.Uint16(p[3:5]))
	n := int(binary.BigEndian.Uint16(p[5:7]))
	if len(p) < 7+n {
		return h, io.ErrUnexpectedEOF
	}
	h.ServerName = string(p[7 : 7+n])
	return h, nil
}

// serverHello is the server's version selection.
type serverHello struct {
	Version Version
}

func (h serverHello) marshal() []byte {
	b := make([]byte, 0, 3)
	b = append(b, msgServerHello)
	return binary.BigEndian.AppendUint16(b, uint16(h.Version))
}

func parseServerHello(p []byte) (serverHello, error) {
	if len(p) < 3 || p[0] != msgServerHello {
		return serverHello{}, ErrHandshakeState
	}
	return serverHello{Version: Version(binary.BigEndian.Uint16(p[1:3]))}, nil
}
