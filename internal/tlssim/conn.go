package tlssim

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/simclock"
)

// Quirk selects a server misbehaviour observed in the wild and reflected in
// Table 2's exception rows.
type Quirk int

// Server misbehaviours.
const (
	// QuirkNone completes the handshake normally.
	QuirkNone Quirk = iota
	// QuirkSSLv2Only insists on SSLv2 regardless of the client's offer,
	// producing the "unsupported SSL protocol" failure.
	QuirkSSLv2Only
	// QuirkWrongVersionNumber frames the ServerHello under a garbage
	// record version ("wrong ssl version number").
	QuirkWrongVersionNumber
	// QuirkInternalErrorAlert aborts with a TLSv1 internal_error alert.
	QuirkInternalErrorAlert
	// QuirkHandshakeFailureAlert aborts with an SSLv3 handshake_failure
	// alert.
	QuirkHandshakeFailureAlert
	// QuirkProtocolVersionAlert aborts with a TLSv1 protocol_version alert.
	QuirkProtocolVersionAlert
	// QuirkTruncateHandshake sends the ServerHello and then tears the
	// connection down, so the client sees a truncated handshake (EOF where
	// the Certificate message should be) — the response-truncation fault
	// model at the TLS layer.
	QuirkTruncateHandshake
)

// ErrHandshakeTruncated marks a handshake the server deliberately cut
// short (QuirkTruncateHandshake).
var ErrHandshakeTruncated = fmt.Errorf("tlssim: handshake truncated by server")

// ServerConfig configures a simulated TLS server. A config whose Chain is
// fixed may be shared across handshakes; the encoded Certificate message is
// built once on first use.
type ServerConfig struct {
	// Chain is served to clients, leaf first.
	Chain []*cert.Certificate
	// MinVersion and MaxVersion bound the versions the server accepts.
	MinVersion, MaxVersion Version
	// Quirk selects a misbehaviour; QuirkNone for a healthy server.
	Quirk Quirk

	// certMsgOnce lazily caches the encoded Certificate handshake message
	// for Chain, so long-lived servers stop re-serializing it per dial.
	certMsgOnce sync.Once
	certMsg     []byte
}

// certMessage returns the Certificate handshake message for cfg.Chain,
// encoding it on first call.
func (cfg *ServerConfig) certMessage() []byte {
	cfg.certMsgOnce.Do(func() {
		cfg.certMsg = append([]byte{msgCertificate}, cert.EncodeChain(cfg.Chain)...)
	})
	return cfg.certMsg
}

// ClientConfig configures the scanning client.
type ClientConfig struct {
	// MinVersion and MaxVersion bound acceptable protocol versions. The
	// study's scanner accepts SSLv3 through TLS 1.3, so SSLv2-only servers
	// fail with ErrUnsupportedProtocol.
	MinVersion, MaxVersion Version
	// ServerName is the SNI value, also used for hostname verification by
	// the caller.
	ServerName string
	// HandshakeTimeout bounds the handshake when positive.
	HandshakeTimeout time.Duration
	// Clock supplies the instant the handshake deadline is measured from,
	// so timeouts run on the same timeline as the scanner's retry/backoff
	// machinery. nil defaults to the wall clock (simclock.Real).
	Clock simclock.Clock
	// ChainCache, when non-nil, deduplicates parsed certificate chains
	// across handshakes that present the same payload (the scanner shares
	// one cache across all probes).
	ChainCache *cert.ChainCache
}

// ConnectionState describes a completed handshake.
type ConnectionState struct {
	// Version is the negotiated protocol version.
	Version Version
	// Chain is the certificate chain the server presented, leaf first.
	Chain []*cert.Certificate
	// ServerName echoes the SNI sent by the client.
	ServerName string
}

// Conn is a handshaken connection carrying application data records.
// It implements net.Conn.
type Conn struct {
	raw      net.Conn
	br       *bufio.Reader
	state    ConnectionState
	readRest []byte
}

// ConnectionState returns the negotiated parameters.
func (c *Conn) ConnectionState() ConnectionState { return c.state }

// Read implements net.Conn, delivering application-data payload bytes.
func (c *Conn) Read(p []byte) (int, error) {
	for len(c.readRest) == 0 {
		typ, _, payload, err := readRecord(c.br)
		if err != nil {
			return 0, err
		}
		switch typ {
		case recordAppData:
			c.readRest = payload
		case recordAlert:
			if len(payload) >= 2 {
				return 0, AlertError{ProtocolVersion: c.state.Version, Description: payload[1]}
			}
			return 0, ErrHandshakeState
		default:
			return 0, ErrHandshakeState
		}
	}
	n := copy(p, c.readRest)
	c.readRest = c.readRest[n:]
	return n, nil
}

// Write implements net.Conn, framing p as application data.
func (c *Conn) Write(p []byte) (int, error) {
	const chunk = 16 * 1024
	written := 0
	for len(p) > 0 {
		n := len(p)
		if n > chunk {
			n = chunk
		}
		if err := writeRecord(c.raw, recordAppData, c.state.Version, p[:n]); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.raw.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// ClientHandshake performs the client side of the handshake over raw.
// On success it returns a connection ready for application data.
func ClientHandshake(raw net.Conn, cfg *ClientConfig) (*Conn, error) {
	if deadline, ok := cfg.handshakeDeadline(); ok {
		raw.SetDeadline(deadline)
		defer raw.SetDeadline(time.Time{})
	}
	hello := clientHello{MinVersion: cfg.MinVersion, MaxVersion: cfg.MaxVersion, ServerName: cfg.ServerName}
	if err := writeRecord(raw, recordHandshake, cfg.MaxVersion, hello.marshal()); err != nil {
		return nil, fmt.Errorf("tlssim: sending ClientHello: %w", err)
	}
	br := bufio.NewReader(raw)

	// ServerHello.
	typ, recVer, payload, err := readRecord(br)
	if err != nil {
		return nil, fmt.Errorf("tlssim: reading ServerHello: %w", err)
	}
	if !knownVersion(recVer) {
		return nil, ErrWrongVersionNumber
	}
	if typ == recordAlert {
		if len(payload) >= 2 {
			return nil, AlertError{ProtocolVersion: recVer, Description: payload[1]}
		}
		return nil, ErrHandshakeState
	}
	if typ != recordHandshake {
		return nil, ErrHandshakeState
	}
	sh, err := parseServerHello(payload)
	if err != nil {
		return nil, err
	}
	if sh.Version < cfg.MinVersion || sh.Version > cfg.MaxVersion {
		return nil, ErrUnsupportedProtocol
	}

	// Certificate.
	typ, _, payload, err = readRecord(br)
	if err != nil {
		return nil, fmt.Errorf("tlssim: reading Certificate: %w", err)
	}
	if typ != recordHandshake || len(payload) < 1 || payload[0] != msgCertificate {
		return nil, ErrHandshakeState
	}
	var chain []*cert.Certificate
	if cfg.ChainCache != nil {
		chain, err = cfg.ChainCache.Parse(payload[1:])
	} else {
		chain, err = cert.ParseChain(payload[1:])
	}
	if err != nil {
		return nil, fmt.Errorf("tlssim: parsing certificate chain: %w", err)
	}

	// Finished.
	typ, _, payload, err = readRecord(br)
	if err != nil {
		return nil, fmt.Errorf("tlssim: reading Finished: %w", err)
	}
	if typ != recordHandshake || len(payload) < 1 || payload[0] != msgFinished {
		return nil, ErrHandshakeState
	}

	return &Conn{
		raw: raw,
		br:  br,
		state: ConnectionState{
			Version:    sh.Version,
			Chain:      chain,
			ServerName: cfg.ServerName,
		},
	}, nil
}

// handshakeDeadline computes the absolute deadline bounding the handshake,
// measured on the configured clock rather than wall time. Virtual-clock
// runs get no deadline at all, mirroring scanner.applyDeadline: the
// collapsing clock is advanced by other goroutines' sleeps, so an absolute
// deadline derived from it would expire scheduling-dependently and break
// same-seed determinism — simulated timeouts are modeled at the dial/fault
// layer instead.
func (cfg *ClientConfig) handshakeDeadline() (time.Time, bool) {
	if cfg.HandshakeTimeout <= 0 {
		return time.Time{}, false
	}
	clk := cfg.Clock
	if clk == nil {
		clk = simclock.Real{}
	}
	if _, virtual := clk.(*simclock.Virtual); virtual {
		return time.Time{}, false
	}
	return clk.Now().Add(cfg.HandshakeTimeout), true
}

// ServerHandshake performs the server side of the handshake over raw,
// applying the configured quirk.
func ServerHandshake(raw net.Conn, cfg *ServerConfig) (*Conn, error) {
	br := bufio.NewReader(raw)
	typ, _, payload, err := readRecord(br)
	if err != nil {
		return nil, fmt.Errorf("tlssim: reading ClientHello: %w", err)
	}
	if typ != recordHandshake {
		return nil, ErrHandshakeState
	}
	ch, err := parseClientHello(payload)
	if err != nil {
		return nil, err
	}

	switch cfg.Quirk {
	case QuirkInternalErrorAlert:
		writeRecord(raw, recordAlert, TLS1_0, []byte{2, AlertInternalError})
		return nil, AlertError{ProtocolVersion: TLS1_0, Description: AlertInternalError}
	case QuirkHandshakeFailureAlert:
		writeRecord(raw, recordAlert, SSLv3, []byte{2, AlertHandshakeFailure})
		return nil, AlertError{ProtocolVersion: SSLv3, Description: AlertHandshakeFailure}
	case QuirkProtocolVersionAlert:
		writeRecord(raw, recordAlert, TLS1_0, []byte{2, AlertProtocolVersion})
		return nil, AlertError{ProtocolVersion: TLS1_0, Description: AlertProtocolVersion}
	default:
		// The non-alert quirks (none, SSLv2-only, wrong version number,
		// truncation) shape the ServerHello exchange below.
	}

	version := negotiate(ch, cfg)
	recVersion := version
	if cfg.Quirk == QuirkWrongVersionNumber {
		recVersion = Version(0x4a4a) // garbage record version
	}
	if err := writeRecord(raw, recordHandshake, recVersion, serverHello{Version: version}.marshal()); err != nil {
		return nil, err
	}
	if cfg.Quirk == QuirkWrongVersionNumber {
		// The client will abort after the malformed record.
		return nil, ErrWrongVersionNumber
	}
	if cfg.Quirk == QuirkSSLv2Only {
		// The client rejects the SSLv2 selection; nothing more to send.
		return nil, ErrUnsupportedProtocol
	}
	if cfg.Quirk == QuirkTruncateHandshake {
		// Tear the connection down where the Certificate should follow.
		raw.Close()
		return nil, ErrHandshakeTruncated
	}

	if err := writeRecord(raw, recordHandshake, version, cfg.certMessage()); err != nil {
		return nil, err
	}
	if err := writeRecord(raw, recordHandshake, version, []byte{msgFinished}); err != nil {
		return nil, err
	}
	return &Conn{
		raw: raw,
		br:  br,
		state: ConnectionState{
			Version:    version,
			Chain:      cfg.Chain,
			ServerName: ch.ServerName,
		},
	}, nil
}

// negotiate picks the protocol version the server answers with.
func negotiate(ch clientHello, cfg *ServerConfig) Version {
	if cfg.Quirk == QuirkSSLv2Only {
		return SSLv2
	}
	v := cfg.MaxVersion
	if ch.MaxVersion < v {
		v = ch.MaxVersion
	}
	if v < cfg.MinVersion {
		// No overlap: the server still answers with its minimum, which the
		// client will reject as unsupported.
		v = cfg.MinVersion
	}
	return v
}

// DefaultClientConfig returns the scanner's client settings: SSLv3 through
// TLS 1.3, mirroring the permissive probing posture of the study's scans.
func DefaultClientConfig(serverName string) *ClientConfig {
	return &ClientConfig{
		MinVersion: SSLv3,
		MaxVersion: TLS1_3,
		ServerName: serverName,
	}
}
