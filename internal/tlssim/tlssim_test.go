package tlssim

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/simnet"
)

func testChain(t *testing.T) []*cert.Certificate {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	reg := ca.NewRegistry(rng)
	a := reg.MustLookup("Let's Encrypt Authority X3")
	return a.Issue(ca.Request{
		Hostnames: []string{"www.agency.gov"},
		Key:       cert.NewKey(rng, cert.KeyRSA, 2048),
		NotBefore: time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC),
	})
}

// handshakePair runs a server handshake in a goroutine and the client
// handshake in the caller, returning both results.
func handshakePair(t *testing.T, scfg *ServerConfig, ccfg *ClientConfig) (*Conn, error, *Conn, error) {
	t.Helper()
	client, server := simnet.Pipe(
		simnet.Addr{AP: netip.MustParseAddrPort("10.0.0.1:5000")},
		simnet.Addr{AP: netip.MustParseAddrPort("192.0.2.1:443")},
	)
	type res struct {
		c   *Conn
		err error
	}
	srvCh := make(chan res, 1)
	go func() {
		c, err := ServerHandshake(server, scfg)
		srvCh <- res{c, err}
	}()
	cc, cerr := ClientHandshake(client, ccfg)
	sr := <-srvCh
	return cc, cerr, sr.c, sr.err
}

func TestHandshakeSuccess(t *testing.T) {
	chain := testChain(t)
	scfg := &ServerConfig{Chain: chain, MinVersion: TLS1_0, MaxVersion: TLS1_2}
	cc, cerr, sc, serr := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
	if cerr != nil || serr != nil {
		t.Fatalf("handshake errors: client=%v server=%v", cerr, serr)
	}
	st := cc.ConnectionState()
	if st.Version != TLS1_2 {
		t.Errorf("negotiated %v, want TLS1_2", st.Version)
	}
	if len(st.Chain) != 2 {
		t.Fatalf("chain length = %d", len(st.Chain))
	}
	if st.Chain[0].Subject.CommonName != "www.agency.gov" {
		t.Errorf("leaf CN = %q", st.Chain[0].Subject.CommonName)
	}
	if sc.ConnectionState().ServerName != "www.agency.gov" {
		t.Errorf("server saw SNI %q", sc.ConnectionState().ServerName)
	}
	// Chain fingerprints must survive the wire.
	if st.Chain[0].Fingerprint() != chain[0].Fingerprint() {
		t.Error("leaf fingerprint changed in transit")
	}
}

func TestNegotiationPicksHighestCommon(t *testing.T) {
	chain := testChain(t)
	cases := []struct {
		srvMin, srvMax Version
		want           Version
	}{
		{TLS1_0, TLS1_3, TLS1_3},
		{SSLv3, TLS1_0, TLS1_0},
		{TLS1_2, TLS1_2, TLS1_2},
	}
	for _, tc := range cases {
		scfg := &ServerConfig{Chain: chain, MinVersion: tc.srvMin, MaxVersion: tc.srvMax}
		cc, cerr, _, _ := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
		if cerr != nil {
			t.Fatalf("min=%v max=%v: %v", tc.srvMin, tc.srvMax, cerr)
		}
		if got := cc.ConnectionState().Version; got != tc.want {
			t.Errorf("min=%v max=%v negotiated %v, want %v", tc.srvMin, tc.srvMax, got, tc.want)
		}
	}
}

func TestUnsupportedProtocolSSLv2(t *testing.T) {
	scfg := &ServerConfig{Chain: testChain(t), MinVersion: SSLv2, MaxVersion: SSLv2, Quirk: QuirkSSLv2Only}
	_, cerr, _, _ := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
	if !errors.Is(cerr, ErrUnsupportedProtocol) {
		t.Fatalf("client err = %v, want ErrUnsupportedProtocol", cerr)
	}
}

func TestWrongVersionNumber(t *testing.T) {
	scfg := &ServerConfig{Chain: testChain(t), MinVersion: TLS1_0, MaxVersion: TLS1_2, Quirk: QuirkWrongVersionNumber}
	_, cerr, _, _ := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
	if !errors.Is(cerr, ErrWrongVersionNumber) {
		t.Fatalf("client err = %v, want ErrWrongVersionNumber", cerr)
	}
}

func TestAlertErrors(t *testing.T) {
	cases := []struct {
		quirk Quirk
		want  string
	}{
		{QuirkInternalErrorAlert, "tlsv1 alert internal error"},
		{QuirkHandshakeFailureAlert, "sslv3 alert handshake failure"},
		{QuirkProtocolVersionAlert, "tlsv1 alert protocol version"},
	}
	for _, tc := range cases {
		scfg := &ServerConfig{Chain: testChain(t), MinVersion: TLS1_0, MaxVersion: TLS1_2, Quirk: tc.quirk}
		_, cerr, _, _ := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
		var alert AlertError
		if !errors.As(cerr, &alert) {
			t.Fatalf("quirk %v: err = %v, want AlertError", tc.quirk, cerr)
		}
		if alert.Error() != tc.want {
			t.Errorf("quirk %v: alert = %q, want %q", tc.quirk, alert.Error(), tc.want)
		}
	}
}

func TestAppDataAfterHandshake(t *testing.T) {
	scfg := &ServerConfig{Chain: testChain(t), MinVersion: TLS1_0, MaxVersion: TLS1_2}
	cc, cerr, sc, serr := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v %v", cerr, serr)
	}
	msg := []byte("GET / HTTP/1.1\r\nHost: www.agency.gov\r\n\r\n")
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(sc, buf); err != nil {
			done <- err
			return
		}
		_, err := sc.Write([]byte("HTTP/1.1 200 OK\r\n\r\n"))
		done <- err
	}()
	if _, err := cc.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 19)
	if _, err := io.ReadFull(cc, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:15]) != "HTTP/1.1 200 OK" {
		t.Errorf("response = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLargeAppDataChunking(t *testing.T) {
	scfg := &ServerConfig{Chain: testChain(t), MinVersion: TLS1_0, MaxVersion: TLS1_2}
	cc, cerr, sc, serr := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v %v", cerr, serr)
	}
	payload := make([]byte, 70_000) // forces multiple records
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() {
		sc.Write(payload)
		sc.Close()
	}()
	got, err := io.ReadAll(cc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestClientRejectsGarbageServer(t *testing.T) {
	client, server := simnet.Pipe(
		simnet.Addr{AP: netip.MustParseAddrPort("10.0.0.1:5000")},
		simnet.Addr{AP: netip.MustParseAddrPort("192.0.2.1:443")},
	)
	go func() {
		server.Write([]byte("totally not tls at all, just junk bytes"))
		server.Close()
	}()
	_, err := ClientHandshake(client, DefaultClientConfig("x.gov"))
	if err == nil {
		t.Fatal("client accepted garbage")
	}
}

func TestHandshakeTimeout(t *testing.T) {
	client, _ := simnet.Pipe(
		simnet.Addr{AP: netip.MustParseAddrPort("10.0.0.1:5000")},
		simnet.Addr{AP: netip.MustParseAddrPort("192.0.2.1:443")},
	)
	cfg := DefaultClientConfig("x.gov")
	cfg.HandshakeTimeout = 20 * time.Millisecond
	start := time.Now()
	_, err := ClientHandshake(client, cfg)
	if err == nil {
		t.Fatal("handshake against silent server succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("handshake timeout did not fire promptly")
	}
}

func TestVersionStrings(t *testing.T) {
	cases := map[Version]string{
		SSLv2: "SSLv2", SSLv3: "SSLv3", TLS1_0: "TLSv1.0",
		TLS1_2: "TLSv1.2", TLS1_3: "TLSv1.3",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d String = %q, want %q", v, v.String(), want)
		}
	}
}

func TestConnPassthroughMethods(t *testing.T) {
	chain := testChain(t)
	scfg := &ServerConfig{Chain: chain, MinVersion: TLS1_0, MaxVersion: TLS1_2}
	cc, cerr, _, serr := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
	if cerr != nil || serr != nil {
		t.Fatalf("handshake: %v %v", cerr, serr)
	}
	if cc.LocalAddr() == nil || cc.RemoteAddr() == nil {
		t.Error("addresses missing")
	}
	if err := cc.SetDeadline(time.Now().Add(time.Second)); err != nil {
		t.Error(err)
	}
	if err := cc.SetReadDeadline(time.Time{}); err != nil {
		t.Error(err)
	}
	if err := cc.SetWriteDeadline(time.Time{}); err != nil {
		t.Error(err)
	}
	if cc.ConnectionState().ServerName != "www.agency.gov" {
		t.Error("state lost")
	}
	if err := cc.Close(); err != nil {
		t.Error(err)
	}
}

func TestUnknownVersionString(t *testing.T) {
	if s := Version(0x9999).String(); !strings.Contains(s, "9999") {
		t.Errorf("unknown version = %q", s)
	}
}

func TestAlertErrorUnknownDescription(t *testing.T) {
	e := AlertError{ProtocolVersion: TLS1_2, Description: 111}
	if !strings.Contains(e.Error(), "111") {
		t.Errorf("alert = %q", e.Error())
	}
}

func TestServerHandshakeRejectsGarbage(t *testing.T) {
	client, server := simnet.Pipe(
		simnet.Addr{AP: netip.MustParseAddrPort("10.0.0.1:5000")},
		simnet.Addr{AP: netip.MustParseAddrPort("192.0.2.1:443")},
	)
	go func() {
		client.Write([]byte("GET / HTTP/1.1\r\nHost: oops, plain http to a tls port\r\n\r\n"))
		client.Close() // EOF so the record reader cannot block forever
	}()
	_, err := ServerHandshake(server, &ServerConfig{Chain: testChain(t), MinVersion: TLS1_0, MaxVersion: TLS1_2})
	if err == nil {
		t.Fatal("server accepted plain http as a handshake")
	}
}

func TestRecordOversizeRejected(t *testing.T) {
	var sink bytes.Buffer
	if err := writeRecord(&sink, recordAppData, TLS1_2, make([]byte, maxRecordLen+1)); err != ErrRecordOversize {
		t.Errorf("err = %v, want ErrRecordOversize", err)
	}
}

func TestParseClientHelloTruncated(t *testing.T) {
	if _, err := parseClientHello([]byte{msgClientHello, 0, 1}); err == nil {
		t.Error("truncated hello accepted")
	}
	full := clientHello{MinVersion: SSLv3, MaxVersion: TLS1_3, ServerName: "x.gov"}.marshal()
	if _, err := parseClientHello(full[:len(full)-2]); err == nil {
		t.Error("short SNI accepted")
	}
	if _, err := parseServerHello([]byte{99}); err == nil {
		t.Error("bad server hello accepted")
	}
}
