package tlssim

import (
	"errors"
	"testing"
)

// TestQuirkTruncateHandshake: the server sends its ServerHello then tears
// the transport down; the client's handshake must fail (it never sees a
// certificate), and the server reports the deliberate truncation.
func TestQuirkTruncateHandshake(t *testing.T) {
	scfg := &ServerConfig{
		Chain:      testChain(t),
		MinVersion: TLS1_0,
		MaxVersion: TLS1_2,
		Quirk:      QuirkTruncateHandshake,
	}
	cc, cerr, sc, serr := handshakePair(t, scfg, DefaultClientConfig("www.agency.gov"))
	if cerr == nil {
		t.Fatal("client handshake succeeded against a truncating server")
	}
	if cc != nil {
		t.Error("client conn non-nil on failed handshake")
	}
	if !errors.Is(serr, ErrHandshakeTruncated) {
		t.Errorf("server err = %v, want ErrHandshakeTruncated", serr)
	}
	if sc != nil {
		t.Error("server conn non-nil after truncation")
	}
}
