package recommend_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/recommend"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

var (
	testWorld = world.MustBuild(world.TestConfig())
	cached    *resultset.Set
)

func results(t *testing.T) *resultset.Set {
	t.Helper()
	if cached == nil {
		s := scanner.New(testWorld.Net, testWorld.DNS, testWorld.Class,
			scanner.DefaultConfig(testWorld.Stores["apple"], testWorld.ScanTime))
		cached = resultset.New(s.ScanAll(context.Background(), testWorld.GovHosts), resultset.Options{})
	}
	return cached
}

func findings(t *testing.T) []recommend.Finding {
	t.Helper()
	hasCAA := func(h string) bool { return len(testWorld.DNS.LookupCAA(h)) > 0 }
	shared := recommend.SharedKeyIDs(results(t))
	return recommend.Evaluate(results(t), hasCAA, shared)
}

func countRule(fs []recommend.Finding, rule recommend.Rule) int {
	hosts := map[string]bool{}
	for _, f := range fs {
		if f.Rule == rule {
			hosts[f.Hostname] = true
		}
	}
	return len(hosts)
}

func TestChecklistCoversWorld(t *testing.T) {
	fs := findings(t)
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	// Every rule the world injects must fire somewhere.
	for _, rule := range []recommend.Rule{
		recommend.AdoptHTTPS, recommend.FixCertificate, recommend.EnforceUpgrade,
		recommend.RetireWeakKey, recommend.RetireWeakSignature,
		recommend.StopKeySharing, recommend.PublishCAA, recommend.EnableHSTS,
		recommend.ShortenLifetime,
	} {
		if countRule(fs, rule) == 0 {
			t.Errorf("rule %v never fired", rule)
		}
	}
}

func TestAdoptHTTPSDominates(t *testing.T) {
	// ~60% of sites are http-only, so AdoptHTTPS is the biggest bucket.
	sums := recommend.Summarize(findings(t))
	if len(sums) == 0 {
		t.Fatal("no summary")
	}
	if sums[0].Rule != recommend.AdoptHTTPS {
		t.Errorf("top rule = %v, want adopt-https", sums[0].Rule)
	}
}

func TestFindingsConsistentWithScan(t *testing.T) {
	fs := findings(t)
	res := results(t)
	for _, f := range fs {
		r, ok := res.Lookup(f.Hostname)
		if !ok {
			t.Fatalf("finding for unscanned host %q", f.Hostname)
		}
		switch f.Rule {
		case recommend.AdoptHTTPS:
			if r.HasHTTPS() {
				t.Errorf("%s: adopt-https on an https host", f.Hostname)
			}
		case recommend.FixCertificate:
			if r.ValidHTTPS() {
				t.Errorf("%s: fix-certificate on a valid host", f.Hostname)
			}
		case recommend.EnableHSTS:
			if r.HSTS || !r.ValidHTTPS() {
				t.Errorf("%s: enable-hsts misfire", f.Hostname)
			}
		}
	}
}

func TestSharedKeyIDs(t *testing.T) {
	shared := recommend.SharedKeyIDs(results(t))
	if len(shared) == 0 {
		t.Fatal("no shared keys found; the world injects §5.3.3 reuse")
	}
}

func TestByCountry(t *testing.T) {
	grouped := recommend.ByCountry(findings(t), testWorld.CountryOf)
	if len(grouped) < 100 {
		t.Errorf("countries with findings = %d", len(grouped))
	}
	for cc, fs := range grouped {
		for _, f := range fs {
			if testWorld.CountryOf(f.Hostname) != cc {
				t.Fatalf("finding for %s grouped under %s", f.Hostname, cc)
			}
		}
	}
}

func TestRender(t *testing.T) {
	out := recommend.Render(recommend.Summarize(findings(t)))
	for _, want := range []string{"Recommendations", "adopt-https", "critical"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSeverities(t *testing.T) {
	if recommend.AdoptHTTPS.Severity() != 3 || recommend.EnableHSTS.Severity() != 1 {
		t.Error("severity mapping wrong")
	}
	if recommend.RetireWeakKey.String() != "retire-weak-key" {
		t.Error("rule naming wrong")
	}
}
