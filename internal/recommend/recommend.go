// Package recommend turns scan results into the §8 recommendations: for
// every government host it evaluates the paper's hardening checklist — use
// https, enforce the upgrade, fix certificate errors, retire weak keys and
// signature algorithms, stop sharing keys, publish CAA records, enroll in
// HSTS preload — and aggregates the findings per country for the registrar
// reports.
package recommend

import (
	"fmt"
	"sort"

	"repro/internal/cert"
	"repro/internal/resultset"
	"repro/internal/scanner"
)

// Rule identifies one checklist item.
type Rule int

// The §8 checklist.
const (
	// AdoptHTTPS: the host serves plain http only.
	AdoptHTTPS Rule = iota
	// EnforceUpgrade: valid https exists but http is served without a
	// redirect (§5.1's "failed upgrades").
	EnforceUpgrade
	// FixCertificate: the served chain does not validate.
	FixCertificate
	// RetireWeakKey: RSA below 2048 bits.
	RetireWeakKey
	// RetireWeakSignature: MD5 or SHA1 signatures (§5.3.2).
	RetireWeakSignature
	// StopKeySharing: the private key is shared with other hosts
	// (§5.3.3, §8.1).
	StopKeySharing
	// PublishCAA: no CAA record restricts issuance (§5.3.4, §8.2).
	PublishCAA
	// EnableHSTS: valid https without Strict-Transport-Security (§8.2).
	EnableHSTS
	// ShortenLifetime: certificate issued for longer than the 825-day
	// CA/Browser-Forum ceiling (§5.3.1).
	ShortenLifetime
)

var ruleInfo = map[Rule]struct {
	name     string
	severity int // 3 = critical, 2 = important, 1 = advisory
}{
	AdoptHTTPS:          {"adopt-https", 3},
	FixCertificate:      {"fix-certificate", 3},
	StopKeySharing:      {"stop-key-sharing", 3},
	RetireWeakKey:       {"retire-weak-key", 2},
	RetireWeakSignature: {"retire-weak-signature", 2},
	EnforceUpgrade:      {"enforce-https-upgrade", 2},
	ShortenLifetime:     {"shorten-certificate-lifetime", 1},
	PublishCAA:          {"publish-caa-record", 1},
	EnableHSTS:          {"enable-hsts", 1},
}

// String names the rule.
func (r Rule) String() string { return ruleInfo[r].name }

// Severity returns 3 (critical), 2 (important) or 1 (advisory).
func (r Rule) Severity() int { return ruleInfo[r].severity }

// Finding is one recommendation for one host.
type Finding struct {
	Hostname string
	Rule     Rule
	Detail   string
}

// CAAChecker reports whether a hostname has any CAA record; satisfied by
// a closure over dnssim.Zone.LookupCAA.
type CAAChecker func(hostname string) bool

// Evaluate runs the checklist over every host in the set, in scan input
// order. sharedKeys marks key IDs used by more than one host (precomputed
// by SharedKeyIDs).
func Evaluate(set *resultset.Set, hasCAA CAAChecker, sharedKeys map[cert.KeyID]bool) []Finding {
	var out []Finding
	add := func(host string, rule Rule, format string, args ...any) {
		out = append(out, Finding{Hostname: host, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
	for i := 0; i < set.Len(); i++ {
		r := set.At(i)
		if !r.Available {
			continue
		}
		cat := r.Category()
		switch {
		case cat == scanner.CatHTTPOnly:
			add(r.Hostname, AdoptHTTPS, "content is served over plain http only")
			continue
		case cat.IsInvalidHTTPS():
			add(r.Hostname, FixCertificate, "https is invalid: %s", cat)
		case cat == scanner.CatValid && r.ServesHTTP && r.ServesHTTPS:
			add(r.Hostname, EnforceUpgrade, "full content served on http without redirect")
		}
		if len(r.Chain) > 0 {
			leaf := r.Chain[0]
			if leaf.PublicKey.Type == cert.KeyRSA && leaf.PublicKey.Bits < 2048 {
				add(r.Hostname, RetireWeakKey, "host key is %s", leaf.PublicKey.Label())
			}
			if leaf.SignatureAlgorithm.IsWeak() {
				add(r.Hostname, RetireWeakSignature, "certificate signed with %s", leaf.SignatureAlgorithm)
			}
			if sharedKeys != nil && sharedKeys[leaf.PublicKey.ID] {
				add(r.Hostname, StopKeySharing, "private key is shared with other hosts")
			}
			if leaf.ValidityDays() > 825 {
				add(r.Hostname, ShortenLifetime, "certificate issued for %d days", leaf.ValidityDays())
			}
		}
		if r.ValidHTTPS() {
			if hasCAA != nil && !hasCAA(r.Hostname) {
				add(r.Hostname, PublishCAA, "no CAA record restricts issuance")
			}
			if !r.HSTS {
				add(r.Hostname, EnableHSTS, "no Strict-Transport-Security header")
			}
		}
	}
	return out
}

// SharedKeyIDs returns the key identities served by more than one host,
// straight from the set's key index (a scan holds one result per
// hostname, so the bucket length is the distinct-host count).
func SharedKeyIDs(set *resultset.Set) map[cert.KeyID]bool {
	out := map[cert.KeyID]bool{}
	for _, id := range set.KeyIDs() {
		if len(set.ByKeyID(id)) > 1 {
			out[id] = true
		}
	}
	return out
}

// Summary aggregates findings by rule.
type Summary struct {
	Rule  Rule
	Hosts int
}

// Summarize counts affected hosts per rule, most-affected first; within a
// count, higher severity first.
func Summarize(findings []Finding) []Summary {
	hosts := map[Rule]map[string]bool{}
	for _, f := range findings {
		if hosts[f.Rule] == nil {
			hosts[f.Rule] = map[string]bool{}
		}
		hosts[f.Rule][f.Hostname] = true
	}
	out := make([]Summary, 0, len(hosts))
	for rule, hs := range hosts {
		out = append(out, Summary{Rule: rule, Hosts: len(hs)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hosts != out[j].Hosts {
			return out[i].Hosts > out[j].Hosts
		}
		if out[i].Rule.Severity() != out[j].Rule.Severity() {
			return out[i].Rule.Severity() > out[j].Rule.Severity()
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// ByCountry groups findings by country for the registrar reports.
func ByCountry(findings []Finding, countryOf func(string) string) map[string][]Finding {
	out := map[string][]Finding{}
	for _, f := range findings {
		cc := countryOf(f.Hostname)
		if cc == "" {
			continue
		}
		out[cc] = append(out[cc], f)
	}
	return out
}

// Render formats a summary as aligned text.
func Render(summaries []Summary) string {
	out := "Section 8: Recommendations checklist\n====================================\n"
	for _, s := range summaries {
		sev := map[int]string{3: "critical", 2: "important", 1: "advisory"}[s.Rule.Severity()]
		out += fmt.Sprintf("%-30s %-9s %6d hosts\n", s.Rule.String(), sev, s.Hosts)
	}
	return out
}
