// Package truststore models the root-certificate trust stores the study
// compares (§3.2, §4.3): an Apple-shaped store (174 roots, 69 owners), a
// Microsoft-shaped store (402 roots, 133 owners) and a Mozilla NSS-shaped
// store (152 roots, 52 owners). The scan uses the most restrictive store —
// Apple's — mirroring the paper's conservative choice, which marks a small
// number of certificates invalid that specific browsers would accept.
package truststore

import (
	"sort"

	"repro/internal/cert"
)

// Store is a set of trusted root certificates indexed by key identity.
type Store struct {
	name    string
	byKey   map[cert.KeyID]*cert.Certificate
	owners  map[string]bool
	evPolic map[string]bool
}

// New creates an empty store with the given display name.
func New(name string) *Store {
	return &Store{
		name:    name,
		byKey:   make(map[cert.KeyID]*cert.Certificate),
		owners:  make(map[string]bool),
		evPolic: make(map[string]bool),
	}
}

// Name returns the store's display name (e.g. "apple").
func (s *Store) Name() string { return s.name }

// AddRoot trusts a root certificate, attributed to an owner organization.
func (s *Store) AddRoot(root *cert.Certificate, owner string) {
	s.byKey[root.PublicKey.ID] = root
	if owner != "" {
		s.owners[owner] = true
	}
}

// RemoveRoot distrusts a root (e.g. the NPKI removals, §6.3).
func (s *Store) RemoveRoot(root *cert.Certificate) {
	delete(s.byKey, root.PublicKey.ID)
}

// TrustEVPolicy registers a policy OID as a trusted EV policy, mirroring
// Mozilla's certverifier ExtendedValidation list (§5.3).
func (s *Store) TrustEVPolicy(oid string) { s.evPolic[oid] = true }

// IsTrustedEVPolicy reports whether the policy OID grants EV treatment.
func (s *Store) IsTrustedEVPolicy(oid string) bool { return s.evPolic[oid] }

// FindIssuer returns the trusted root whose key signed c, if any.
func (s *Store) FindIssuer(c *cert.Certificate) (*cert.Certificate, bool) {
	root, ok := s.byKey[c.AuthorityKeyID]
	if !ok {
		return nil, false
	}
	if c.CheckSignatureFrom(root) != nil {
		return nil, false
	}
	return root, true
}

// Contains reports whether the exact certificate key is a trusted root.
func (s *Store) Contains(c *cert.Certificate) bool {
	r, ok := s.byKey[c.PublicKey.ID]
	return ok && r.Fingerprint() == c.Fingerprint()
}

// Len reports the number of trusted roots.
func (s *Store) Len() int { return len(s.byKey) }

// OwnerCount reports the number of distinct root CA owners.
func (s *Store) OwnerCount() int { return len(s.owners) }

// Roots returns the trusted roots sorted by subject for stable iteration.
func (s *Store) Roots() []*cert.Certificate {
	out := make([]*cert.Certificate, 0, len(s.byKey))
	for _, c := range s.byKey {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Subject.String() < out[j].Subject.String()
	})
	return out
}

// Clone returns an independent copy of the store (used by the ablation
// benches that add or remove roots).
func (s *Store) Clone() *Store {
	c := New(s.name)
	for k, v := range s.byKey {
		c.byKey[k] = v
	}
	for k := range s.owners {
		c.owners[k] = true
	}
	for k := range s.evPolic {
		c.evPolic[k] = true
	}
	return c
}
