package truststore

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cert"
)

func root(r *rand.Rand, cn string) *cert.Certificate {
	key := cert.NewKey(r, cert.KeyRSA, 4096)
	c := &cert.Certificate{
		Subject:   cert.Name{CommonName: cn},
		Issuer:    cert.Name{CommonName: cn},
		NotBefore: time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC),
		PublicKey: key,
		IsCA:      true,
	}
	c.Sign(key.ID)
	return c
}

func TestAddContainsRemove(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := New("apple")
	ca := root(r, "Root A")
	if s.Contains(ca) {
		t.Fatal("empty store contains root")
	}
	s.AddRoot(ca, "Owner A")
	if !s.Contains(ca) {
		t.Fatal("store missing added root")
	}
	if s.Len() != 1 || s.OwnerCount() != 1 {
		t.Errorf("Len=%d OwnerCount=%d", s.Len(), s.OwnerCount())
	}
	s.RemoveRoot(ca)
	if s.Contains(ca) {
		t.Fatal("removed root still trusted")
	}
}

func TestFindIssuer(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := New("test")
	ca := root(r, "Root A")
	s.AddRoot(ca, "Owner A")

	leafKey := cert.NewKey(r, cert.KeyRSA, 2048)
	leaf := &cert.Certificate{
		Subject:   cert.Name{CommonName: "x.gov"},
		Issuer:    ca.Subject,
		PublicKey: leafKey,
	}
	leaf.Sign(ca.PublicKey.ID)
	got, ok := s.FindIssuer(leaf)
	if !ok || got != ca {
		t.Fatalf("FindIssuer = %v,%v", got, ok)
	}

	// A leaf signed by an unknown key resolves to nothing.
	other := cert.NewKey(r, cert.KeyRSA, 2048)
	leaf2 := &cert.Certificate{Subject: cert.Name{CommonName: "y.gov"}, PublicKey: leafKey}
	leaf2.Sign(other.ID)
	if _, ok := s.FindIssuer(leaf2); ok {
		t.Fatal("FindIssuer matched unknown key")
	}
}

func TestFindIssuerRejectsForgedSignature(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := New("test")
	ca := root(r, "Root A")
	s.AddRoot(ca, "Owner A")
	leafKey := cert.NewKey(r, cert.KeyRSA, 2048)
	leaf := &cert.Certificate{Subject: cert.Name{CommonName: "x.gov"}, PublicKey: leafKey}
	leaf.Sign(ca.PublicKey.ID)
	leaf.SerialNumber++ // tamper after signing
	if _, ok := s.FindIssuer(leaf); ok {
		t.Fatal("FindIssuer accepted tampered certificate")
	}
}

func TestOwnerCountDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := New("test")
	s.AddRoot(root(r, "A1"), "Owner A")
	s.AddRoot(root(r, "A2"), "Owner A")
	s.AddRoot(root(r, "B1"), "Owner B")
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.OwnerCount() != 2 {
		t.Errorf("OwnerCount = %d, want 2", s.OwnerCount())
	}
}

func TestEVPolicies(t *testing.T) {
	s := New("test")
	if s.IsTrustedEVPolicy("2.23.140.1.1") {
		t.Fatal("empty store trusts EV policy")
	}
	s.TrustEVPolicy("2.23.140.1.1")
	if !s.IsTrustedEVPolicy("2.23.140.1.1") {
		t.Fatal("trusted EV policy not found")
	}
}

func TestRootsSorted(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := New("test")
	s.AddRoot(root(r, "Zulu Root"), "z")
	s.AddRoot(root(r, "Alpha Root"), "a")
	s.AddRoot(root(r, "Mike Root"), "m")
	roots := s.Roots()
	for i := 1; i < len(roots); i++ {
		if roots[i-1].Subject.String() > roots[i].Subject.String() {
			t.Fatalf("roots unsorted: %q > %q", roots[i-1].Subject, roots[i].Subject)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s := New("apple")
	a := root(r, "A")
	s.AddRoot(a, "Owner A")
	s.TrustEVPolicy("1.2.3")
	c := s.Clone()
	if c.Name() != "apple" || c.Len() != 1 || !c.IsTrustedEVPolicy("1.2.3") {
		t.Fatal("clone incomplete")
	}
	c.RemoveRoot(a)
	if !s.Contains(a) {
		t.Fatal("clone mutation leaked into original")
	}
}
