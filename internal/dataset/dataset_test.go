package dataset_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/resultset"
	"repro/internal/scanner"
)

// fakeScan builds a set directly from the hostnames, counting invocations.
func fakeScan(scans *atomic.Int64) dataset.ScanFunc {
	return func(_ context.Context, hosts []string, opts resultset.Options) *resultset.Set {
		scans.Add(1)
		rs := make([]scanner.Result, len(hosts))
		for i, h := range hosts {
			rs[i] = scanner.Result{Hostname: h}
		}
		return resultset.New(rs, opts)
	}
}

func newTestRegistry(scans *atomic.Int64, names ...string) *dataset.Registry {
	r := dataset.NewRegistry(fakeScan(scans))
	for _, name := range names {
		n := name
		r.Register(dataset.Source{
			Name:  n,
			Hosts: func() []string { return []string{n + ".gov"} },
			Opts:  func() resultset.Options { return resultset.Options{} },
		})
	}
	return r
}

func TestGetLazyAndMemoized(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "a", "b")
	ctx := context.Background()

	if scans.Load() != 0 {
		t.Fatal("registration triggered a scan")
	}
	if r.Cached("a") {
		t.Fatal("dataset cached before first Get")
	}
	s1, err := r.Get(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Get(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("second Get rebuilt the set instead of returning the memoized one")
	}
	if got := scans.Load(); got != 1 {
		t.Errorf("scans = %d, want 1", got)
	}
	if !r.Cached("a") || r.Cached("b") {
		t.Error("cache state wrong: only dataset a was scanned")
	}
	if h, _ := s1.Lookup("a.gov"); h == nil {
		t.Error("scanned set missing its host")
	}
}

func TestGetUnknownName(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "a")
	if _, err := r.Get(context.Background(), "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "a")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register(dataset.Source{Name: "a"})
}

func TestNamesInRegistrationOrder(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "w", "a", "m")
	names := r.Names()
	if len(names) != 3 || names[0] != "w" || names[1] != "a" || names[2] != "m" {
		t.Errorf("Names = %v, want registration order [w a m]", names)
	}
	if !r.Has("a") || r.Has("zz") {
		t.Error("Has misreports registration")
	}
}

func TestInvalidateForcesRescan(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "a")
	ctx := context.Background()

	s1, _ := r.Get(ctx, "a")
	if !r.Invalidate("a") {
		t.Fatal("Invalidate rejected a known dataset")
	}
	if r.Cached("a") {
		t.Error("dataset still cached after Invalidate")
	}
	s2, _ := r.Get(ctx, "a")
	if s1 == s2 {
		t.Error("Get returned the invalidated set")
	}
	if got := scans.Load(); got != 2 {
		t.Errorf("scans = %d, want 2", got)
	}
	if r.Invalidate("zz") {
		t.Error("Invalidate accepted an unknown dataset")
	}
}

func TestInvalidateAllExactlyOnce(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "a", "b", "c")
	ctx := context.Background()
	r.Get(ctx, "a")
	r.Get(ctx, "b")

	r.InvalidateAll()
	for _, name := range r.Names() {
		if got := r.Invalidations(name); got != 1 {
			t.Errorf("dataset %q invalidated %d times, want exactly 1", name, got)
		}
		if r.Cached(name) {
			t.Errorf("dataset %q still cached after InvalidateAll", name)
		}
	}
}

// TestConcurrentGetSingleFlight: many concurrent Gets of a cold dataset
// share one scan.
func TestConcurrentGetSingleFlight(t *testing.T) {
	var scans atomic.Int64
	release := make(chan struct{})
	r := dataset.NewRegistry(func(_ context.Context, hosts []string, opts resultset.Options) *resultset.Set {
		scans.Add(1)
		<-release
		return resultset.New([]scanner.Result{{Hostname: hosts[0]}}, opts)
	})
	r.Register(dataset.Source{
		Name:  "a",
		Hosts: func() []string { return []string{"a.gov"} },
		Opts:  func() resultset.Options { return resultset.Options{} },
	})

	const n = 16
	sets := make([]*resultset.Set, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			s, err := r.Get(context.Background(), "a")
			if err != nil {
				t.Error(err)
			}
			sets[i] = s
		}(i)
	}
	close(release)
	wg.Wait()

	if got := scans.Load(); got != 1 {
		t.Errorf("concurrent Gets ran %d scans, want 1", got)
	}
	for i := 1; i < n; i++ {
		if sets[i] != sets[0] {
			t.Fatal("concurrent Gets returned different sets")
		}
	}
}

// TestInvalidateMidScanDiscards: a scan whose dataset is invalidated while
// in flight must be discarded, not cached under the stale generation.
func TestInvalidateMidScanDiscards(t *testing.T) {
	var scans atomic.Int64
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	r := dataset.NewRegistry(func(_ context.Context, hosts []string, opts resultset.Options) *resultset.Set {
		n := scans.Add(1)
		if n == 1 {
			started <- struct{}{}
			<-release // hold the first scan until the test invalidates
		}
		return resultset.New([]scanner.Result{{Hostname: hosts[0]}}, opts)
	})
	r.Register(dataset.Source{
		Name:  "a",
		Hosts: func() []string { return []string{"a.gov"} },
		Opts:  func() resultset.Options { return resultset.Options{} },
	})

	done := make(chan *resultset.Set)
	go func() {
		s, err := r.Get(context.Background(), "a")
		if err != nil {
			t.Error(err)
		}
		done <- s
	}()

	<-started
	r.Invalidate("a") // dooms the in-flight scan
	close(release)
	got := <-done

	if n := scans.Load(); n != 2 {
		t.Errorf("scans = %d, want 2 (stale scan dropped, fresh scan run)", n)
	}
	if got == nil {
		t.Fatal("Get returned nil")
	}
	if !r.Cached("a") {
		t.Error("fresh result not cached")
	}
}

// TestGetInvalidateRace hammers Get and Invalidate from many goroutines;
// run under -race this is the registry's memory-safety proof.
func TestGetInvalidateRace(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "a", "b", "c")
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := r.Names()[g%3]
			for i := 0; i < 25; i++ {
				switch {
				case g%8 == 0 && i%10 == 9:
					r.InvalidateAll()
				case g%4 == 0 && i%5 == 4:
					r.Invalidate(name)
				default:
					if _, err := r.Get(ctx, name); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The registry must still serve every dataset afterwards.
	for _, name := range r.Names() {
		if _, err := r.Get(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSetShardedDispatch: full builds route through the sharded hook when
// the policy asks for more than one shard; small datasets and dirty
// patches stay on the sequential ScanFunc.
func TestSetShardedDispatch(t *testing.T) {
	var scans, shardedScans atomic.Int64
	r := dataset.NewRegistry(fakeScan(&scans))
	var lastShards int
	r.SetSharded(func(_ context.Context, hosts []string, opts resultset.Options, shards int) *resultset.Set {
		shardedScans.Add(1)
		lastShards = shards
		rs := make([]scanner.Result, len(hosts))
		for i, h := range hosts {
			rs[i] = scanner.Result{Hostname: h}
		}
		return resultset.New(rs, opts)
	}, func(hostCount int) int {
		if hostCount >= 4 {
			return 3
		}
		return 1
	})
	big := []string{"a.gov", "b.gov", "c.gov", "d.gov", "e.gov"}
	r.Register(dataset.Source{
		Name:  "big",
		Hosts: func() []string { return big },
		Opts:  func() resultset.Options { return resultset.Options{} },
	})
	r.Register(dataset.Source{
		Name:  "small",
		Hosts: func() []string { return []string{"tiny.gov"} },
		Opts:  func() resultset.Options { return resultset.Options{} },
	})

	ctx := context.Background()
	set, err := r.Get(ctx, "big")
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != len(big) {
		t.Fatalf("big build has %d results, want %d", set.Len(), len(big))
	}
	if got := shardedScans.Load(); got != 1 {
		t.Fatalf("sharded scans = %d, want 1", got)
	}
	if lastShards != 3 {
		t.Fatalf("sharded hook got shards = %d, want 3", lastShards)
	}
	if got := scans.Load(); got != 0 {
		t.Fatalf("sequential scans = %d, want 0", got)
	}

	if _, err := r.Get(ctx, "small"); err != nil {
		t.Fatal(err)
	}
	if got := scans.Load(); got != 1 {
		t.Fatalf("small dataset took the sharded path (sequential scans = %d)", got)
	}

	// Dirty patches rescan only a subset and must stay sequential.
	r.MarkDirty("big", []string{"b.gov"})
	if _, err := r.Get(ctx, "big"); err != nil {
		t.Fatal(err)
	}
	if got := shardedScans.Load(); got != 1 {
		t.Fatalf("dirty patch took the sharded path (sharded scans = %d)", got)
	}
	if got := scans.Load(); got != 2 {
		t.Fatalf("sequential scans = %d, want 2 after patch", got)
	}
}
