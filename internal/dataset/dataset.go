// Package dataset is the named-dataset registry behind core.Study: every
// scan corpus the paper uses — `worldwide`, the GSA lists (`usa:<key>`,
// `usa:all`), `rok` — is registered once under a stable name and scanned
// lazily into an indexed resultset.Set on first Get. Results are
// memoized per dataset; a trust-store switch invalidates every dataset
// atomically (generation counters), so a scan that raced the switch is
// discarded and redone under the new store instead of being cached under
// the wrong one.
//
// Concurrency contract: Get is safe from any number of goroutines.
// Exactly one scan runs per (dataset, generation) — concurrent callers
// wait on the in-flight scan. Invalidate/InvalidateAll may be called at
// any time, including mid-scan: the generation captured at scan start no
// longer matches, so the stale result is dropped and the winning caller
// rescans. Scans themselves run without any registry lock held.
package dataset

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/resultset"
)

// Source describes one registered dataset.
type Source struct {
	// Name is the registry key, e.g. "worldwide" or "usa:currentfed".
	Name string
	// Hosts returns the dataset's hostname list (called at scan time, so
	// it observes world mutations).
	Hosts func() []string
	// Opts returns the index options for the dataset's result sets.
	Opts func() resultset.Options
	// Build, when non-nil, replaces the registry's ScanFunc for full
	// builds of this dataset — the hook composite datasets (usa:all) use
	// to assemble themselves from other cached datasets instead of
	// rescanning. Partial rebuilds after MarkDirty still scan.
	Build func(ctx context.Context) (*resultset.Set, error)
}

// ScanFunc performs one scan: probe hosts and build the indexed set.
// The registry calls it without holding any lock.
type ScanFunc func(ctx context.Context, hosts []string, opts resultset.Options) *resultset.Set

// ShardedScanFunc performs one scan split across shards independent
// workers, merging the per-shard indexes deterministically (typically
// resultset.ScanSharded). The registry calls it without holding any lock.
type ShardedScanFunc func(ctx context.Context, hosts []string, opts resultset.Options, shards int) *resultset.Set

// entry is one dataset's cache slot.
type entry struct {
	src Source
	// gen counts invalidations; a scan started under one generation may
	// only install its result while the generation is unchanged.
	gen int
	// invalidations counts Invalidate calls that actually dropped state
	// (test hook for the exactly-once invalidation contract).
	invalidations int
	set           *resultset.Set
	// dirty records hosts whose cached results are stale (MarkDirty): the
	// next Get patches the set by rescanning only these (plus corpus
	// newcomers) instead of the full host list.
	dirty map[string]struct{}
	// inflight is non-nil while a scan runs; waiters block on it.
	inflight chan struct{}
	// pins holds the generations readers have pinned (Pin): each keeps its
	// Set reachable until the last reader releases it, independent of
	// invalidation and patching. Entries exist only while readers > 0.
	pins map[int]*pinState
}

// pinState is the registry-side record of one pinned generation.
type pinState struct {
	set     *resultset.Set
	readers int
}

// Registry holds the named datasets.
type Registry struct {
	scan ScanFunc

	// sharded + shardsFor, when set via SetSharded, route full builds
	// through the sharded scan path; partial (dirty-patch) rescans stay on
	// the plain ScanFunc, since they cover small host subsets.
	sharded   ShardedScanFunc
	shardsFor func(hostCount int) int

	mu      sync.Mutex
	names   []string // registration order
	entries map[string]*entry
}

// NewRegistry creates an empty registry scanning through fn.
func NewRegistry(fn ScanFunc) *Registry {
	return &Registry{scan: fn, entries: map[string]*entry{}}
}

// SetSharded installs the sharded build hook: any full dataset build whose
// host count makes shardsFor return n > 1 runs through fn with that shard
// count instead of the sequential ScanFunc — so large corpora (worldwide
// at scale) shard transparently while small ones keep the cheap path.
// Both arguments must be non-nil. Call before the first Get; the hook is
// not synchronized against in-flight builds.
func (r *Registry) SetSharded(fn ShardedScanFunc, shardsFor func(hostCount int) int) {
	r.sharded = fn
	r.shardsFor = shardsFor
}

// fullBuild scans an entire host list, routing through the sharded hook
// when the shard policy asks for more than one shard.
func (r *Registry) fullBuild(ctx context.Context, hosts []string, opts resultset.Options) *resultset.Set {
	if r.sharded != nil {
		if n := r.shardsFor(len(hosts)); n > 1 {
			return r.sharded(ctx, hosts, opts, n)
		}
	}
	return r.scan(ctx, hosts, opts)
}

// Register adds a dataset. Registering a name twice panics: dataset names
// are a fixed vocabulary established at study construction.
func (r *Registry) Register(src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[src.Name]; dup {
		panic(fmt.Sprintf("dataset: %q registered twice", src.Name))
	}
	r.names = append(r.names, src.Name)
	r.entries[src.Name] = &entry{src: src}
}

// Names lists the registered datasets in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[name]
	return ok
}

// Get returns the dataset's indexed results, scanning on first use (or
// after invalidation). Concurrent callers share one scan; a scan whose
// generation was invalidated mid-flight is discarded and redone.
func (r *Registry) Get(ctx context.Context, name string) (*resultset.Set, error) {
	set, _, err := r.get(ctx, name)
	return set, err
}

// get is Get plus the generation number the returned set is installed
// under — the identity Pin records and generation-keyed caches embed.
func (r *Registry) get(ctx context.Context, name string) (*resultset.Set, int, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		known := make([]string, len(r.names))
		copy(known, r.names)
		r.mu.Unlock()
		return nil, 0, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, known)
	}
	for {
		if e.set != nil && len(e.dirty) == 0 {
			set, gen := e.set, e.gen
			r.mu.Unlock()
			return set, gen, nil
		}
		if e.inflight != nil {
			// Another goroutine is scanning this generation: wait for it,
			// then re-check (it may have been invalidated mid-scan).
			done := e.inflight
			r.mu.Unlock()
			<-done
			r.mu.Lock()
			continue
		}
		// Claim the build for the current generation, consuming any dirty
		// set: base+dirty patch in place of a full rescan. The slot is
		// cleared so concurrent Gets wait on the in-flight build instead
		// of reading the stale base.
		e.inflight = make(chan struct{})
		gen := e.gen
		base, dirty := e.set, e.dirty
		e.set, e.dirty = nil, nil
		done := e.inflight
		r.mu.Unlock()

		var set *resultset.Set
		var err error
		switch {
		case base != nil && len(dirty) > 0:
			set = r.patch(ctx, e.src, base, dirty)
		case e.src.Build != nil:
			set, err = e.src.Build(ctx)
		default:
			set = r.fullBuild(ctx, e.src.Hosts(), e.src.Opts())
		}

		r.mu.Lock()
		e.inflight = nil
		close(done)
		if err != nil {
			r.mu.Unlock()
			return nil, 0, fmt.Errorf("dataset: building %s: %w", name, err)
		}
		if e.gen == gen {
			e.set = set
			r.mu.Unlock()
			return set, gen, nil
		}
		// The dataset was invalidated (store switch, world mutation) while
		// we scanned: the result reflects stale state. Drop it and retry
		// under the new generation.
	}
}

// Pinned is a read lease on one dataset generation: the Set it carries
// stays valid — and is retained by the registry's pin table — no matter
// how many invalidations, dirty-patches or store switches happen
// underneath. Serving-layer requests pin a generation for their whole
// lifetime (a paginated export included), so they observe one immutable
// snapshot; Release drops the lease, and once the last reader of a
// superseded generation releases, the registry forgets the Set and its
// memory becomes collectable.
type Pinned struct {
	r    *Registry
	name string
	gen  int
	set  *resultset.Set

	mu       sync.Mutex
	released bool
}

// Set returns the pinned snapshot (immutable, read-only).
func (p *Pinned) Set() *resultset.Set { return p.set }

// Generation returns the registry generation the snapshot was installed
// under — unique per installed Set, so it is safe to embed in cache keys.
func (p *Pinned) Generation() int { return p.gen }

// Name returns the dataset name.
func (p *Pinned) Name() string { return p.name }

// Release drops the lease. Safe to call more than once; after the first
// call the registry may forget a superseded generation.
func (p *Pinned) Release() {
	p.mu.Lock()
	done := p.released
	p.released = true
	p.mu.Unlock()
	if done {
		return
	}
	p.r.unpin(p.name, p.gen)
}

// Pin resolves the dataset (scanning on first use, exactly like Get) and
// pins the generation it resolved to. Every Pin must be paired with a
// Release; concurrent pins of the same generation share one registry
// record with a reader count.
func (r *Registry) Pin(ctx context.Context, name string) (*Pinned, error) {
	set, gen, err := r.get(ctx, name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	e := r.entries[name]
	if e.pins == nil {
		e.pins = make(map[int]*pinState, 2)
	}
	ps := e.pins[gen]
	if ps == nil {
		ps = &pinState{set: set}
		e.pins[gen] = ps
	}
	ps.readers++
	r.mu.Unlock()
	return &Pinned{r: r, name: name, gen: gen, set: set}, nil
}

// unpin drops one reader from (name, gen), forgetting the generation
// when the last reader leaves.
func (r *Registry) unpin(name string, gen int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return
	}
	ps := e.pins[gen]
	if ps == nil {
		return
	}
	ps.readers--
	if ps.readers <= 0 {
		delete(e.pins, gen)
	}
}

// PinnedGeneration is one pinned generation's introspection record.
type PinnedGeneration struct {
	Generation int
	Readers    int
}

// GenerationInfo is one dataset's generation bookkeeping: the generation
// a new build would install under, whether a clean set is cached, how
// many hosts are marked dirty, and the generations readers hold pinned.
type GenerationInfo struct {
	Name    string
	Current int
	Cached  bool
	Dirty   int
	Pinned  []PinnedGeneration // ascending by generation
}

// Generations reports every dataset's generation state, in registration
// order — the introspection surface behind the serving layer's
// /v1/datasets endpoint and the pin-lifecycle tests.
func (r *Registry) Generations() []GenerationInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GenerationInfo, 0, len(r.names))
	for _, name := range r.names {
		e := r.entries[name]
		info := GenerationInfo{
			Name:    name,
			Current: e.gen,
			Cached:  e.set != nil && len(e.dirty) == 0,
			Dirty:   len(e.dirty),
		}
		if len(e.pins) > 0 {
			gens := make([]int, 0, len(e.pins))
			for g := range e.pins {
				gens = append(gens, g)
			}
			sort.Ints(gens)
			info.Pinned = make([]PinnedGeneration, len(gens))
			for i, g := range gens {
				info.Pinned[i] = PinnedGeneration{Generation: g, Readers: e.pins[g].readers}
			}
		}
		out = append(out, info)
	}
	return out
}

// patch rebuilds a dataset from its cached base: only dirty hosts and
// hosts absent from the base are rescanned. When the corpus host list is
// unchanged, the base's indexes are patched incrementally
// (resultset.ApplyDelta — cost proportional to the dirty set, not the
// corpus); when hosts appeared or disappeared, the set is reassembled in
// the source's current host order through a Builder replay. Per-host
// results are scan-order independent on fault-free worlds, so either
// path is bit-identical to a full rescan at a fraction of the cost;
// flaky worlds should use Invalidate instead (dial-ordinal fault draws
// depend on scan makeup).
func (r *Registry) patch(ctx context.Context, src Source, base *resultset.Set, dirty map[string]struct{}) *resultset.Set {
	hosts := src.Hosts()
	baseResults := base.Results()

	// Fast path: same corpus, same order — re-scan only the dirty hosts
	// (in corpus order, so the delta is deterministic) and splice the
	// changed rows into the base's shared-index chain.
	if len(hosts) == len(baseResults) {
		same := true
		for i := range hosts {
			if hosts[i] != baseResults[i].Hostname {
				same = false
				break
			}
		}
		if same {
			toScan := make([]string, 0, len(dirty))
			for _, h := range hosts {
				if _, stale := dirty[h]; stale {
					toScan = append(toScan, h)
				}
			}
			sub := r.scan(ctx, toScan, src.Opts())
			if next, err := base.ApplyDelta(sub.Results()); err == nil {
				return next
			}
			// A delta contract violation (host vanished from the scan
			// output) falls through to the full replay below.
		}
	}

	baseIdx := make(map[string]int, len(baseResults))
	for i := range baseResults {
		baseIdx[baseResults[i].Hostname] = i
	}
	var toScan []string
	for _, h := range hosts {
		if _, stale := dirty[h]; stale {
			toScan = append(toScan, h)
			continue
		}
		if _, have := baseIdx[h]; !have {
			toScan = append(toScan, h)
		}
	}
	opts := src.Opts()
	sub := r.scan(ctx, toScan, opts)
	subResults := sub.Results()
	subIdx := make(map[string]int, len(subResults))
	for i := range subResults {
		subIdx[subResults[i].Hostname] = i
	}
	opts.SizeHint = len(hosts)
	b := resultset.NewBuilder(opts)
	for _, h := range hosts {
		if i, ok := subIdx[h]; ok {
			b.Add(subResults[i])
		} else {
			b.Add(baseResults[baseIdx[h]])
		}
	}
	return b.Build()
}

// MarkDirty records hosts whose cached results in the named dataset are
// stale — the partial-invalidation hook the remediation experiments use.
// Unlike Invalidate, the next Get patches the cached set (see patch)
// instead of rescanning the whole corpus. Marking while a build is in
// flight dooms the build (it may or may not have observed the mutation);
// marking an empty slot is a no-op, since the next Get scans fresh.
// Returns false for unknown names.
func (r *Registry) MarkDirty(name string, hosts []string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return false
	}
	if len(hosts) == 0 {
		return true
	}
	if e.inflight != nil {
		r.invalidateLocked(e)
		return true
	}
	if e.set == nil {
		return true
	}
	if e.dirty == nil {
		e.dirty = make(map[string]struct{}, len(hosts))
	}
	for _, h := range hosts {
		e.dirty[h] = struct{}{}
	}
	// The patched set the next Get installs is a distinct snapshot, so it
	// must carry a distinct generation: pinned readers keep the base under
	// the old number, and generation-keyed response caches miss instead of
	// serving the base's bytes for the patched data.
	e.gen++
	return true
}

// Invalidate drops one dataset's cached results (and dooms any in-flight
// scan of it). Returns false for unknown names.
func (r *Registry) Invalidate(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return false
	}
	r.invalidateLocked(e)
	return true
}

// InvalidateAll drops every dataset's cached results — the trust-store
// switch path. Each registered dataset is invalidated exactly once, under
// one lock acquisition, so no Get can observe a half-invalidated registry.
func (r *Registry) InvalidateAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		r.invalidateLocked(r.entries[name])
	}
}

func (r *Registry) invalidateLocked(e *entry) {
	e.gen++
	e.set = nil
	e.dirty = nil
	e.invalidations++
}

// Invalidations reports how many times the named dataset has been
// invalidated — the test hook behind the exactly-once UseStore contract.
// Unknown names report zero.
func (r *Registry) Invalidations(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return 0
	}
	return e.invalidations
}

// Cached reports whether the named dataset currently holds clean
// memoized results (no scan at all would run on Get — a dirty set still
// needs a patch scan and reports false).
func (r *Registry) Cached(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return ok && e.set != nil && len(e.dirty) == 0
}
