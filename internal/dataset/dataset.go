// Package dataset is the named-dataset registry behind core.Study: every
// scan corpus the paper uses — `worldwide`, the GSA lists (`usa:<key>`,
// `usa:all`), `rok` — is registered once under a stable name and scanned
// lazily into an indexed resultset.Set on first Get. Results are
// memoized per dataset; a trust-store switch invalidates every dataset
// atomically (generation counters), so a scan that raced the switch is
// discarded and redone under the new store instead of being cached under
// the wrong one.
//
// Concurrency contract: Get is safe from any number of goroutines.
// Exactly one scan runs per (dataset, generation) — concurrent callers
// wait on the in-flight scan. Invalidate/InvalidateAll may be called at
// any time, including mid-scan: the generation captured at scan start no
// longer matches, so the stale result is dropped and the winning caller
// rescans. Scans themselves run without any registry lock held.
package dataset

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/resultset"
)

// Source describes one registered dataset.
type Source struct {
	// Name is the registry key, e.g. "worldwide" or "usa:currentfed".
	Name string
	// Hosts returns the dataset's hostname list (called at scan time, so
	// it observes world mutations).
	Hosts func() []string
	// Opts returns the index options for the dataset's result sets.
	Opts func() resultset.Options
}

// ScanFunc performs one scan: probe hosts and build the indexed set.
// The registry calls it without holding any lock.
type ScanFunc func(ctx context.Context, hosts []string, opts resultset.Options) *resultset.Set

// entry is one dataset's cache slot.
type entry struct {
	src Source
	// gen counts invalidations; a scan started under one generation may
	// only install its result while the generation is unchanged.
	gen int
	// invalidations counts Invalidate calls that actually dropped state
	// (test hook for the exactly-once invalidation contract).
	invalidations int
	set           *resultset.Set
	// inflight is non-nil while a scan runs; waiters block on it.
	inflight chan struct{}
}

// Registry holds the named datasets.
type Registry struct {
	scan ScanFunc

	mu      sync.Mutex
	names   []string // registration order
	entries map[string]*entry
}

// NewRegistry creates an empty registry scanning through fn.
func NewRegistry(fn ScanFunc) *Registry {
	return &Registry{scan: fn, entries: map[string]*entry{}}
}

// Register adds a dataset. Registering a name twice panics: dataset names
// are a fixed vocabulary established at study construction.
func (r *Registry) Register(src Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[src.Name]; dup {
		panic(fmt.Sprintf("dataset: %q registered twice", src.Name))
	}
	r.names = append(r.names, src.Name)
	r.entries[src.Name] = &entry{src: src}
}

// Names lists the registered datasets in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[name]
	return ok
}

// Get returns the dataset's indexed results, scanning on first use (or
// after invalidation). Concurrent callers share one scan; a scan whose
// generation was invalidated mid-flight is discarded and redone.
func (r *Registry) Get(ctx context.Context, name string) (*resultset.Set, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		known := make([]string, len(r.names))
		copy(known, r.names)
		r.mu.Unlock()
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, known)
	}
	for {
		if e.set != nil {
			set := e.set
			r.mu.Unlock()
			return set, nil
		}
		if e.inflight != nil {
			// Another goroutine is scanning this generation: wait for it,
			// then re-check (it may have been invalidated mid-scan).
			done := e.inflight
			r.mu.Unlock()
			<-done
			r.mu.Lock()
			continue
		}
		// Claim the scan for the current generation.
		e.inflight = make(chan struct{})
		gen := e.gen
		done := e.inflight
		r.mu.Unlock()

		set := r.scan(ctx, e.src.Hosts(), e.src.Opts())

		r.mu.Lock()
		e.inflight = nil
		close(done)
		if e.gen == gen {
			e.set = set
			r.mu.Unlock()
			return set, nil
		}
		// The dataset was invalidated (store switch, world mutation) while
		// we scanned: the result reflects stale state. Drop it and retry
		// under the new generation.
	}
}

// Invalidate drops one dataset's cached results (and dooms any in-flight
// scan of it). Returns false for unknown names.
func (r *Registry) Invalidate(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return false
	}
	r.invalidateLocked(e)
	return true
}

// InvalidateAll drops every dataset's cached results — the trust-store
// switch path. Each registered dataset is invalidated exactly once, under
// one lock acquisition, so no Get can observe a half-invalidated registry.
func (r *Registry) InvalidateAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		r.invalidateLocked(r.entries[name])
	}
}

func (r *Registry) invalidateLocked(e *entry) {
	e.gen++
	e.set = nil
	e.invalidations++
}

// Invalidations reports how many times the named dataset has been
// invalidated — the test hook behind the exactly-once UseStore contract.
// Unknown names report zero.
func (r *Registry) Invalidations(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return 0
	}
	return e.invalidations
}

// Cached reports whether the named dataset currently holds memoized
// results (no scan would run on Get).
func (r *Registry) Cached(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return ok && e.set != nil
}
