package dataset_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
)

// pinInfo digs one dataset's generation record out of Generations.
func pinInfo(t *testing.T, r *dataset.Registry, name string) dataset.GenerationInfo {
	t.Helper()
	for _, info := range r.Generations() {
		if info.Name == name {
			return info
		}
	}
	t.Fatalf("dataset %q missing from Generations()", name)
	return dataset.GenerationInfo{}
}

// TestPinSurvivesMarkDirtyPatch is the snapshot-isolation contract: a
// pinned generation keeps serving its exact snapshot across a
// MarkDirty+patch cycle, the patched set installs under a new
// generation, and releasing the pin makes the registry forget the old
// generation (the Set becomes collectable — no registry reference left).
func TestPinSurvivesMarkDirtyPatch(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "d")
	ctx := context.Background()

	pin, err := r.Pin(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	base := pin.Set()
	baseGen := pin.Generation()
	if got := pinInfo(t, r, "d").Pinned; len(got) != 1 || got[0].Generation != baseGen || got[0].Readers != 1 {
		t.Fatalf("pinned generations after Pin = %+v, want [{%d 1}]", got, baseGen)
	}

	// A second pin of the same generation shares the record.
	pin2, err := r.Pin(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	if pin2.Generation() != baseGen || pin2.Set() != base {
		t.Fatalf("second pin got gen %d (want %d)", pin2.Generation(), baseGen)
	}
	if got := pinInfo(t, r, "d").Pinned; len(got) != 1 || got[0].Readers != 2 {
		t.Fatalf("pinned generations after second Pin = %+v, want one record with 2 readers", got)
	}
	pin2.Release()

	// Dirty-patch the dataset underneath the pin.
	if !r.MarkDirty("d", []string{"d.gov"}) {
		t.Fatal("MarkDirty rejected known dataset")
	}
	patched, err := r.Get(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	if patched == base {
		t.Fatal("patch returned the base set; expected a new generation")
	}
	info := pinInfo(t, r, "d")
	if info.Current == baseGen {
		t.Fatalf("current generation %d did not advance past the pinned %d", info.Current, baseGen)
	}

	// The pinned snapshot is still fully readable and untouched.
	if pin.Set() != base {
		t.Fatal("pin's set changed identity")
	}
	if got := base.Len(); got != 1 {
		t.Fatalf("pinned set Len = %d, want 1", got)
	}
	if _, ok := base.Lookup("d.gov"); !ok {
		t.Fatal("pinned set lost its host")
	}
	if got := info.Pinned; len(got) != 1 || got[0].Generation != baseGen || got[0].Readers != 1 {
		t.Fatalf("pinned generations after patch = %+v, want [{%d 1}]", got, baseGen)
	}

	// Releasing the last reader forgets the superseded generation.
	pin.Release()
	pin.Release() // idempotent
	if got := pinInfo(t, r, "d").Pinned; len(got) != 0 {
		t.Fatalf("pinned generations after Release = %+v, want none", got)
	}
}

// TestPinAcrossInvalidateAll covers the trust-store-switch path: pins
// taken before InvalidateAll keep their snapshot; pins taken after
// resolve to a fresh scan under a new generation.
func TestPinAcrossInvalidateAll(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "a")
	ctx := context.Background()

	before, err := r.Pin(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	r.InvalidateAll()
	after, err := r.Pin(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer after.Release()
	if before.Set() == after.Set() {
		t.Fatal("pin after InvalidateAll returned the invalidated set")
	}
	if before.Generation() == after.Generation() {
		t.Fatal("generations collide across InvalidateAll")
	}
	if got := pinInfo(t, r, "a").Pinned; len(got) != 2 {
		t.Fatalf("pinned generations = %+v, want two", got)
	}
	before.Release()
	if got := pinInfo(t, r, "a").Pinned; len(got) != 1 || got[0].Generation != after.Generation() {
		t.Fatalf("pinned generations after releasing the old one = %+v", got)
	}
}

// TestPinConcurrentChurn hammers Pin/Release against MarkDirty+Get churn
// (run under -race in CI) and checks the pin table drains to empty.
func TestPinConcurrentChurn(t *testing.T) {
	var scans atomic.Int64
	r := newTestRegistry(&scans, "d")
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pin, err := r.Pin(ctx, "d")
				if err != nil {
					t.Error(err)
					return
				}
				if pin.Set().Len() != 1 {
					t.Error("pinned set wrong size")
				}
				pin.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.MarkDirty("d", []string{"d.gov"})
			if _, err := r.Get(ctx, "d"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := pinInfo(t, r, "d").Pinned; len(got) != 0 {
		t.Fatalf("pin table not drained: %+v", got)
	}
}
