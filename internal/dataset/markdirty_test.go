package dataset_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/resultset"
	"repro/internal/scanner"
)

// mutableWorld is a fake scan target whose per-host answers can change
// between scans, recording exactly which hosts each scan touched.
type mutableWorld struct {
	mu      sync.Mutex
	hsts    map[string]bool
	scanned [][]string
	// gate, when non-nil, blocks the next scan until closed — the hook
	// for racing MarkDirty against an in-flight build.
	gate chan struct{}
	// entered signals each scan's start.
	entered chan string
}

func (m *mutableWorld) scan(_ context.Context, hosts []string, opts resultset.Options) *resultset.Set {
	m.mu.Lock()
	m.scanned = append(m.scanned, append([]string(nil), hosts...))
	gate := m.gate
	m.gate = nil
	entered := m.entered
	m.mu.Unlock()
	if entered != nil {
		entered <- "scan"
	}
	if gate != nil {
		<-gate
	}
	rs := make([]scanner.Result, len(hosts))
	m.mu.Lock()
	for i, h := range hosts {
		rs[i] = scanner.Result{Hostname: h, Available: true, ServesHTTP: true, HSTS: m.hsts[h]}
	}
	m.mu.Unlock()
	return resultset.New(rs, opts)
}

func (m *mutableWorld) setHSTS(host string, v bool) {
	m.mu.Lock()
	m.hsts[host] = v
	m.mu.Unlock()
}

func (m *mutableWorld) scans() [][]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]string, len(m.scanned))
	copy(out, m.scanned)
	return out
}

var mdHosts = []string{"a.gov", "b.gov", "c.gov", "d.gov", "e.gov"}

func newMutableRegistry(m *mutableWorld) *dataset.Registry {
	r := dataset.NewRegistry(m.scan)
	r.Register(dataset.Source{
		Name:  "d",
		Hosts: func() []string { return append([]string(nil), mdHosts...) },
		Opts:  func() resultset.Options { return resultset.Options{} },
	})
	return r
}

// TestMarkDirtyPatchesIncrementally pins the ApplyDelta reroute: a dirty
// Get re-scans only the dirty hosts (in corpus order) and splices them
// into the cached base, leaving the earlier generation untouched.
func TestMarkDirtyPatchesIncrementally(t *testing.T) {
	m := &mutableWorld{hsts: map[string]bool{}}
	r := newMutableRegistry(m)
	ctx := context.Background()

	base, err := r.Get(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}

	// The world changes under two hosts; only they are marked dirty.
	m.setHSTS("b.gov", true)
	m.setHSTS("d.gov", true)
	if !r.MarkDirty("d", []string{"b.gov", "d.gov"}) {
		t.Fatal("MarkDirty rejected known dataset")
	}
	if r.Cached("d") {
		t.Fatal("dirty dataset still reports cached")
	}

	got, err := r.Get(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	scans := m.scans()
	if len(scans) != 2 {
		t.Fatalf("%d scans, want baseline + patch", len(scans))
	}
	if want := []string{"b.gov", "d.gov"}; len(scans[1]) != 2 || scans[1][0] != want[0] || scans[1][1] != want[1] {
		t.Fatalf("patch scanned %v, want only the dirty hosts %v", scans[1], want)
	}

	// The patched generation carries the new rows; the base generation
	// still answers from its snapshot (ApplyDelta never mutates).
	if rb, _ := got.Lookup("b.gov"); rb == nil || !rb.HSTS {
		t.Fatal("patched set missing the updated b.gov row")
	}
	if ra, _ := got.Lookup("a.gov"); ra == nil || ra.HSTS {
		t.Fatal("clean host a.gov changed in the patched set")
	}
	if rb, _ := base.Lookup("b.gov"); rb == nil || rb.HSTS {
		t.Fatal("base generation mutated by the patch")
	}
	if got.Len() != len(mdHosts) || got.Counts().Total != len(mdHosts) {
		t.Fatalf("patched set shape: len=%d total=%d", got.Len(), got.Counts().Total)
	}
	if !r.Cached("d") {
		t.Fatal("patched set not cached")
	}
	if again, _ := r.Get(ctx, "d"); again != got {
		t.Fatal("third Get rebuilt instead of memoizing the patched set")
	}
}

// TestMarkDirtyRacingGetDoomsBuildOnce pins the in-flight contract: a
// MarkDirty landing while a build is running dooms that build exactly
// once (the build may or may not have observed the mutation), the
// winning Get rescans fresh, and a later MarkDirty patches as usual.
func TestMarkDirtyRacingGetDoomsBuildOnce(t *testing.T) {
	m := &mutableWorld{hsts: map[string]bool{}, entered: make(chan string, 4)}
	r := newMutableRegistry(m)
	ctx := context.Background()

	gate := make(chan struct{})
	m.mu.Lock()
	m.gate = gate
	m.mu.Unlock()

	done := make(chan *resultset.Set, 1)
	go func() {
		set, err := r.Get(ctx, "d")
		if err != nil {
			t.Error(err)
		}
		done <- set
	}()
	<-m.entered // the build is inside the scan, holding no registry lock

	// The mutation races the build: MarkDirty must doom it.
	m.setHSTS("c.gov", true)
	if !r.MarkDirty("d", []string{"c.gov"}) {
		t.Fatal("MarkDirty rejected known dataset")
	}
	if got := r.Invalidations("d"); got != 1 {
		t.Fatalf("invalidations = %d, want exactly 1 (the doomed build)", got)
	}
	close(gate)

	set := <-done
	<-m.entered // the retry scan
	if set == nil {
		t.Fatal("racing Get returned nil set")
	}
	// The winning Get rescanned under the new generation, so it observed
	// the mutation despite racing it.
	if rc, _ := set.Lookup("c.gov"); rc == nil || !rc.HSTS {
		t.Fatal("retried build missed the racing mutation")
	}
	scans := m.scans()
	if len(scans) != 2 || len(scans[0]) != len(mdHosts) || len(scans[1]) != len(mdHosts) {
		t.Fatalf("scan shapes = %v, want two full builds (doomed + retry)", scans)
	}
	if got := r.Invalidations("d"); got != 1 {
		t.Fatalf("invalidations = %d after retry, want still 1", got)
	}

	// Post-race, the dirty-patch path works normally on the cached set.
	m.setHSTS("e.gov", true)
	r.MarkDirty("d", []string{"e.gov"})
	patched, err := r.Get(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	<-m.entered
	scans = m.scans()
	if last := scans[len(scans)-1]; len(last) != 1 || last[0] != "e.gov" {
		t.Fatalf("post-race patch scanned %v, want [e.gov]", last)
	}
	if re, _ := patched.Lookup("e.gov"); re == nil || !re.HSTS {
		t.Fatal("post-race patch missed the update")
	}
}

// TestPatchFallsBackOnCorpusChange pins the slow path: when the host
// list itself changed, the patch reassembles through the Builder replay
// (every current host present) instead of the delta splice.
func TestPatchFallsBackOnCorpusChange(t *testing.T) {
	m := &mutableWorld{hsts: map[string]bool{}}
	hosts := append([]string(nil), mdHosts...)
	var mu sync.Mutex
	r := dataset.NewRegistry(m.scan)
	r.Register(dataset.Source{
		Name: "d",
		Hosts: func() []string {
			mu.Lock()
			defer mu.Unlock()
			return append([]string(nil), hosts...)
		},
		Opts: func() resultset.Options { return resultset.Options{} },
	})
	ctx := context.Background()
	if _, err := r.Get(ctx, "d"); err != nil {
		t.Fatal(err)
	}

	// The corpus grows by one host while b.gov goes dirty.
	mu.Lock()
	hosts = append(hosts, "f.gov")
	mu.Unlock()
	m.setHSTS("b.gov", true)
	r.MarkDirty("d", []string{"b.gov"})

	got, err := r.Get(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 {
		t.Fatalf("patched set len = %d, want 6 (corpus newcomer included)", got.Len())
	}
	if rf, _ := got.Lookup("f.gov"); rf == nil {
		t.Fatal("corpus newcomer missing after patch")
	}
	if rb, _ := got.Lookup("b.gov"); rb == nil || !rb.HSTS {
		t.Fatal("dirty host not refreshed on the fallback path")
	}
	scans := m.scans()
	if last := scans[len(scans)-1]; len(last) != 2 {
		t.Fatalf("fallback scanned %v, want the dirty host + the newcomer", last)
	}
}
