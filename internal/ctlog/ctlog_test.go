package ctlog

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cert"
)

var logTime = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

func testCert(r *rand.Rand, host string) *cert.Certificate {
	key := cert.NewKey(r, cert.KeyRSA, 2048)
	c := &cert.Certificate{
		SerialNumber: r.Uint64(),
		Subject:      cert.Name{CommonName: host},
		Issuer:       cert.Name{CommonName: "CT Test CA"},
		DNSNames:     []string{host},
		NotBefore:    logTime,
		NotAfter:     logTime.AddDate(1, 0, 0),
		PublicKey:    key,
	}
	c.Sign(key.ID)
	return c
}

func buildLog(t *testing.T, n int) (*Log, []*cert.Certificate) {
	t.Helper()
	r := rand.New(rand.NewSource(int64(n)))
	l := New("test-log")
	var certs []*cert.Certificate
	for i := 0; i < n; i++ {
		c := testCert(r, hostN(i))
		certs = append(certs, c)
		l.Append(c, logTime.Add(time.Duration(i)*time.Minute))
	}
	return l, certs
}

func hostN(i int) string {
	return "host" + string(rune('a'+i%26)) + ".gov.xx"
}

func TestAppendAndSize(t *testing.T) {
	l, _ := buildLog(t, 10)
	if l.Size() != 10 {
		t.Fatalf("size = %d", l.Size())
	}
}

func TestSCTVerification(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	l := New("a")
	c := testCert(r, "x.gov.xx")
	sct := l.Append(c, logTime)
	if !l.VerifySCT(c, sct) {
		t.Fatal("own SCT does not verify")
	}
	other := New("b")
	if other.VerifySCT(c, sct) {
		t.Fatal("SCT verified against the wrong log")
	}
	c2 := testCert(r, "y.gov.xx")
	if l.VerifySCT(c2, sct) {
		t.Fatal("SCT verified for the wrong certificate")
	}
}

func TestRootChangesOnAppend(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	l := New("test")
	prev := l.Root()
	for i := 0; i < 8; i++ {
		l.Append(testCert(r, hostN(i)), logTime)
		cur := l.Root()
		if cur == prev {
			t.Fatalf("root unchanged after append %d", i)
		}
		prev = cur
	}
}

func TestRootDeterministic(t *testing.T) {
	a, _ := buildLog(t, 13)
	b, _ := buildLog(t, 13)
	if a.Root() != b.Root() {
		t.Fatal("identical logs have different roots")
	}
}

func TestInclusionProofsAllSizes(t *testing.T) {
	// Every (index, treeSize) combination must verify, across tree sizes
	// that exercise both perfect and ragged trees.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 21, 33} {
		l, certs := buildLog(t, n)
		for size := 1; size <= n; size++ {
			root, err := l.RootAt(size)
			if err != nil {
				t.Fatal(err)
			}
			for idx := 0; idx < size; idx++ {
				proof, err := l.InclusionProof(idx, size)
				if err != nil {
					t.Fatalf("n=%d size=%d idx=%d: %v", n, size, idx, err)
				}
				leaf := LeafHash(certs[idx].Encode())
				if !VerifyInclusion(root, leaf, idx, size, proof) {
					t.Fatalf("n=%d size=%d idx=%d: proof rejected", n, size, idx)
				}
			}
		}
	}
}

func TestInclusionProofRejectsWrongLeaf(t *testing.T) {
	l, certs := buildLog(t, 12)
	root := l.Root()
	proof, _ := l.InclusionProof(3, 12)
	wrongLeaf := LeafHash(certs[4].Encode())
	if VerifyInclusion(root, wrongLeaf, 3, 12, proof) {
		t.Fatal("proof verified for the wrong leaf")
	}
	// Tampered proof fails.
	right := LeafHash(certs[3].Encode())
	if len(proof) > 0 {
		proof[0][0] ^= 0xFF
		if VerifyInclusion(root, right, 3, 12, proof) {
			t.Fatal("tampered proof verified")
		}
	}
}

func TestInclusionProofBounds(t *testing.T) {
	l, _ := buildLog(t, 4)
	if _, err := l.InclusionProof(4, 4); err != ErrIndexOutOfRange {
		t.Errorf("err = %v", err)
	}
	if _, err := l.InclusionProof(-1, 4); err != ErrIndexOutOfRange {
		t.Errorf("err = %v", err)
	}
	if _, err := l.InclusionProof(0, 9); err != ErrIndexOutOfRange {
		t.Errorf("oversize treeSize err = %v", err)
	}
}

func TestConsistencyProofsAllPairs(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 11, 16, 20} {
		l, _ := buildLog(t, n)
		for m := 1; m <= n; m++ {
			oldRoot, _ := l.RootAt(m)
			newRoot, _ := l.RootAt(n)
			proof, err := l.ConsistencyProof(m, n)
			if err != nil {
				t.Fatalf("n=%d m=%d: %v", n, m, err)
			}
			if !VerifyConsistency(oldRoot, newRoot, m, n, proof) {
				t.Fatalf("n=%d m=%d: consistency rejected", n, m)
			}
		}
	}
}

func TestConsistencyRejectsForkedLog(t *testing.T) {
	a, _ := buildLog(t, 9)
	// A different log of the same sizes is NOT consistent with a's head.
	b, _ := buildLog(t, 10) // different seed => different certs
	oldRoot, _ := a.RootAt(5)
	newRoot, _ := b.RootAt(9)
	proof, _ := a.ConsistencyProof(5, 9)
	if VerifyConsistency(oldRoot, newRoot, 5, 9, proof) {
		t.Fatal("consistency verified across forked logs")
	}
}

func TestEntriesForHost(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	l := New("test")
	c1 := testCert(r, "portal.gov.bd")
	l.Append(c1, logTime)
	// A wildcard covering one extra label.
	wc := testCert(r, "ignored")
	wc.DNSNames = []string{"*.portal.gov.bd"}
	wc.Sign(wc.PublicKey.ID)
	l.Append(wc, logTime)

	if got := l.EntriesFor("portal.gov.bd"); len(got) != 1 {
		t.Errorf("exact entries = %d, want 1", len(got))
	}
	if got := l.EntriesFor("forms.portal.gov.bd"); len(got) != 1 {
		t.Errorf("wildcard-covered entries = %d, want 1", len(got))
	}
	if got := l.EntriesFor("unrelated.gov.bd"); len(got) != 0 {
		t.Errorf("unrelated entries = %d, want 0", len(got))
	}
}

func TestMeasureCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	l := New("test")
	var logged, all []*cert.Certificate
	for i := 0; i < 20; i++ {
		c := testCert(r, hostN(i))
		all = append(all, c)
		if i%10 != 0 { // miss 10%
			l.Append(c, logTime)
			logged = append(logged, c)
		}
	}
	cov := l.MeasureCoverage(all)
	if cov.Total != 20 || cov.Logged != len(logged) {
		t.Fatalf("coverage = %+v", cov)
	}
	if cov.Pct() != 90 {
		t.Errorf("pct = %v", cov.Pct())
	}
}

func TestLeafHashDomainSeparation(t *testing.T) {
	// A leaf hash must never equal an interior node hash of the same data.
	a, b := LeafHash([]byte("x")), LeafHash([]byte("y"))
	if nodeHash(a, b) == LeafHash(append(a[:], b[:]...)) {
		t.Fatal("missing domain separation between leaves and nodes")
	}
}

func TestTailFrom(t *testing.T) {
	l, certs := buildLog(t, 7)

	// A zero cursor reads the whole log.
	entries, cursor := l.TailFrom(0)
	if len(entries) != 7 || cursor != 7 {
		t.Fatalf("TailFrom(0) = %d entries, cursor %d", len(entries), cursor)
	}
	for i, e := range entries {
		if e.Index != i || e.Cert != certs[i] {
			t.Fatalf("entry %d = index %d cert %p", i, e.Index, e.Cert)
		}
	}

	// A caught-up cursor returns nothing and stays put.
	entries, cursor = l.TailFrom(cursor)
	if len(entries) != 0 || cursor != 7 {
		t.Fatalf("caught-up tail = %d entries, cursor %d", len(entries), cursor)
	}

	// New appends show up exactly once on the next tail.
	r := rand.New(rand.NewSource(99))
	extra := testCert(r, "tail.gov.xx")
	l.Append(extra, logTime.Add(time.Hour))
	entries, cursor = l.TailFrom(cursor)
	if len(entries) != 1 || cursor != 8 {
		t.Fatalf("post-append tail = %d entries, cursor %d", len(entries), cursor)
	}
	if entries[0].Index != 7 || entries[0].Cert != extra {
		t.Fatalf("tailed entry = index %d", entries[0].Index)
	}

	// Negative and overshooting cursors clamp instead of panicking.
	if entries, _ := l.TailFrom(-5); len(entries) != 8 {
		t.Fatalf("negative cursor tailed %d entries", len(entries))
	}
	if entries, cursor := l.TailFrom(100); len(entries) != 0 || cursor != 8 {
		t.Fatalf("overshoot tail = %d entries, cursor %d", len(entries), cursor)
	}
}

func TestMeasureCoverageIncremental(t *testing.T) {
	l, certs := buildLog(t, 5)
	r := rand.New(rand.NewSource(42))
	unlogged := testCert(r, "missing.gov.xx")

	cov := l.MeasureCoverage(append([]*cert.Certificate{unlogged}, certs...))
	if cov.Total != 6 || cov.Logged != 5 {
		t.Fatalf("coverage = %d/%d", cov.Logged, cov.Total)
	}

	// Appending the missing certificate is reflected without a rebuild.
	l.Append(unlogged, logTime.Add(time.Hour))
	cov = l.MeasureCoverage([]*cert.Certificate{unlogged})
	if cov.Logged != 1 {
		t.Fatalf("post-append coverage = %d/%d", cov.Logged, cov.Total)
	}
}
