// Package ctlog implements a Certificate Transparency log in the style of
// RFC 6962: an append-only Merkle tree over submitted certificates, with
// signed tree heads, inclusion proofs and consistency proofs. The paper
// (§2.2) relies on CT as the auditable record of issuance and notes that
// even the largest CT view misses ~10% of certificates; the reproduction
// submits most — not all — of the world's issued certificates and measures
// the government-certificate coverage gap, a number the paper calls out as
// unmeasured.
package ctlog

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cert"
)

// Hash is a Merkle tree node hash.
type Hash [32]byte

// Domain-separation prefixes per RFC 6962 §2.1.
const (
	leafPrefix = 0x00
	nodePrefix = 0x01
)

// LeafHash hashes a leaf entry.
func LeafHash(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// Entry is one logged certificate.
type Entry struct {
	// Index is the position in the log.
	Index int
	// Cert is the submitted certificate.
	Cert *cert.Certificate
	// Timestamp is the submission time.
	Timestamp time.Time
}

// SCT is a signed certificate timestamp, the log's promise to incorporate
// the certificate. The signature is simulated the same way certificate
// signatures are (see internal/cert).
type SCT struct {
	LogID     Hash
	Timestamp time.Time
	LeafHash  Hash
	Signature Hash
}

// Log is an append-only RFC 6962-style certificate log.
type Log struct {
	mu      sync.RWMutex
	name    string
	logID   Hash
	leaves  []Hash
	entries []Entry
	// known mirrors leaves as a set, maintained on Append so coverage
	// checks don't rebuild it per call.
	known map[Hash]bool
	// byHost indexes entry positions by each DNS name on the certificate.
	byHost map[string][]int
}

// New creates an empty log.
func New(name string) *Log {
	return NewSized(name, 0)
}

// NewSized is New with a capacity hint for the expected entry count.
func NewSized(name string, hint int) *Log {
	return &Log{
		name:    name,
		logID:   LeafHash([]byte("ct-log-id:" + name)),
		entries: make([]Entry, 0, hint),
		known:   make(map[Hash]bool, hint),
		byHost:  make(map[string][]int, hint),
	}
}

// Name returns the log's name.
func (l *Log) Name() string { return l.name }

// Size returns the number of entries.
func (l *Log) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.leaves)
}

// Append submits a certificate and returns its SCT.
func (l *Log) Append(c *cert.Certificate, at time.Time) SCT {
	l.mu.Lock()
	defer l.mu.Unlock()
	leaf := LeafHash(c.Encode())
	idx := len(l.leaves)
	l.leaves = append(l.leaves, leaf)
	l.entries = append(l.entries, Entry{Index: idx, Cert: c, Timestamp: at})
	l.known[leaf] = true
	for _, name := range c.Names() {
		key := strings.ToLower(name)
		l.byHost[key] = append(l.byHost[key], idx)
	}
	return SCT{
		LogID:     l.logID,
		Timestamp: at,
		LeafHash:  leaf,
		Signature: nodeHash(l.logID, leaf),
	}
}

// VerifySCT checks that the SCT was produced by this log for the
// certificate.
func (l *Log) VerifySCT(c *cert.Certificate, sct SCT) bool {
	leaf := LeafHash(c.Encode())
	return sct.LogID == l.logID && sct.LeafHash == leaf &&
		sct.Signature == nodeHash(l.logID, leaf)
}

// Root returns the Merkle tree hash of the current log.
func (l *Log) Root() Hash {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return merkleRoot(l.leaves)
}

// RootAt returns the tree hash of the first n entries.
func (l *Log) RootAt(n int) (Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n < 0 || n > len(l.leaves) {
		return Hash{}, fmt.Errorf("ctlog: size %d out of range [0,%d]", n, len(l.leaves))
	}
	return merkleRoot(l.leaves[:n]), nil
}

// merkleRoot computes MTH per RFC 6962 §2.1.
func merkleRoot(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return LeafHash(nil) // MTH({}) = SHA-256 of empty string; prefix kept for symmetry
	case 1:
		return leaves[0]
	}
	k := largestPowerOfTwoBelow(len(leaves))
	return nodeHash(merkleRoot(leaves[:k]), merkleRoot(leaves[k:]))
}

// largestPowerOfTwoBelow returns the largest power of two strictly less
// than n (n >= 2).
func largestPowerOfTwoBelow(n int) int {
	k := 1
	for k*2 < n {
		k *= 2
	}
	return k
}

// Proof errors.
var (
	ErrIndexOutOfRange = errors.New("ctlog: index out of range")
	ErrBadProof        = errors.New("ctlog: proof verification failed")
)

// InclusionProof returns the audit path for the entry at index within the
// first treeSize entries (RFC 6962 §2.1.1).
func (l *Log) InclusionProof(index, treeSize int) ([]Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if treeSize < 0 || treeSize > len(l.leaves) || index < 0 || index >= treeSize {
		return nil, ErrIndexOutOfRange
	}
	return auditPath(index, l.leaves[:treeSize]), nil
}

func auditPath(m int, leaves []Hash) []Hash {
	n := len(leaves)
	if n <= 1 {
		return nil
	}
	k := largestPowerOfTwoBelow(n)
	if m < k {
		return append(auditPath(m, leaves[:k]), merkleRoot(leaves[k:]))
	}
	return append(auditPath(m-k, leaves[k:]), merkleRoot(leaves[:k]))
}

// VerifyInclusion checks an audit path against a root (RFC 6962 §2.1.1
// verification algorithm).
func VerifyInclusion(root Hash, leaf Hash, index, treeSize int, proof []Hash) bool {
	if index < 0 || index >= treeSize {
		return false
	}
	h := leaf
	fn, sn := index, treeSize-1
	for _, p := range proof {
		if sn == 0 {
			return false
		}
		if fn%2 == 1 || fn == sn {
			h = nodeHash(p, h)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			h = nodeHash(h, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && h == root
}

// ConsistencyProof proves the first m entries are a prefix of the first n
// (RFC 6962 §2.1.2).
func (l *Log) ConsistencyProof(m, n int) ([]Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if m < 0 || n > len(l.leaves) || m > n {
		return nil, ErrIndexOutOfRange
	}
	if m == 0 || m == n {
		return nil, nil
	}
	return subProof(m, l.leaves[:n], true), nil
}

func subProof(m int, leaves []Hash, complete bool) []Hash {
	n := len(leaves)
	if m == n {
		if complete {
			return nil
		}
		return []Hash{merkleRoot(leaves)}
	}
	k := largestPowerOfTwoBelow(n)
	if m <= k {
		return append(subProof(m, leaves[:k], complete), merkleRoot(leaves[k:]))
	}
	return append(subProof(m-k, leaves[k:], false), merkleRoot(leaves[:k]))
}

// VerifyConsistency checks a consistency proof between two tree heads
// (RFC 6962 §2.1.2 verification algorithm).
func VerifyConsistency(oldRoot, newRoot Hash, m, n int, proof []Hash) bool {
	if m > n || m < 0 {
		return false
	}
	if m == n {
		return oldRoot == newRoot && len(proof) == 0
	}
	if m == 0 {
		// RFC 6962 requires 0 < m; nothing to verify against.
		return false
	}
	// If m is a power of two the old root is implicit.
	path := proof
	var fr, sr Hash
	if isPowerOfTwo(m) {
		fr, sr = oldRoot, oldRoot
	} else {
		if len(path) == 0 {
			return false
		}
		fr, sr = path[0], path[0]
		path = path[1:]
	}
	fn, sn := m-1, n-1
	for fn%2 == 1 {
		fn >>= 1
		sn >>= 1
	}
	for _, p := range path {
		if sn == 0 {
			return false
		}
		if fn%2 == 1 || fn == sn {
			fr = nodeHash(p, fr)
			sr = nodeHash(p, sr)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			sr = nodeHash(sr, p)
		}
		fn >>= 1
		sn >>= 1
	}
	return sn == 0 && fr == oldRoot && sr == newRoot
}

func isPowerOfTwo(x int) bool { return x > 0 && x&(x-1) == 0 }

// EntriesFor returns the logged entries covering the hostname, including
// wildcard entries that match it.
func (l *Log) EntriesFor(hostname string) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	host := strings.ToLower(hostname)
	seen := map[int]bool{}
	var out []Entry
	add := func(indexes []int) {
		for _, i := range indexes {
			if !seen[i] {
				seen[i] = true
				out = append(out, l.entries[i])
			}
		}
	}
	add(l.byHost[host])
	// Wildcard coverage: *.parent entries match one extra label.
	if dot := strings.IndexByte(host, '.'); dot >= 0 {
		add(l.byHost["*."+host[dot+1:]])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Entries returns every entry, in log order.
func (l *Log) Entries() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// TailFrom returns the entries appended at or after cursor, plus the
// advanced cursor (the log size at read time). Consumers follow the log
// incrementally by feeding each returned cursor into the next call:
//
//	entries, cursor = log.TailFrom(cursor)
//
// A cursor of 0 reads the log from the beginning; a cursor at or past
// the current size returns no entries. Because the log is append-only,
// successive tails never miss or repeat an entry.
func (l *Log) TailFrom(cursor int) ([]Entry, int) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := len(l.entries)
	if cursor < 0 {
		cursor = 0
	}
	if cursor >= n {
		return nil, n
	}
	out := make([]Entry, n-cursor)
	copy(out, l.entries[cursor:])
	return out, n
}

// Coverage summarizes how much of a certificate population the log has
// (the §2.2 "CT misses ~10%" measurement, applied to government certs).
type Coverage struct {
	Total  int
	Logged int
}

// Pct is the logged share.
func (c Coverage) Pct() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Logged) / float64(c.Total)
}

// MeasureCoverage checks which of the given leaf certificates appear in
// the log (by exact encoding). The membership set is maintained
// incrementally by Append, so each call costs one hash per candidate
// rather than a rebuild over the whole log.
func (l *Log) MeasureCoverage(leaves []*cert.Certificate) Coverage {
	cov := Coverage{Total: len(leaves)}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, c := range leaves {
		if l.known[LeafHash(c.Encode())] {
			cov.Logged++
		}
	}
	return cov
}
