package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	l, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", l.R2)
	}
	if math.Abs(l.Predict(10)-21) > 1e-12 {
		t.Errorf("Predict(10) = %v", l.Predict(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 1000; i++ {
		xi := float64(i)
		x = append(x, xi)
		y = append(y, 5-0.003*xi+r.NormFloat64()*0.1)
	}
	l, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope+0.003) > 5e-4 {
		t.Errorf("slope = %v, want ~-0.003", l.Slope)
	}
	if l.ConfidenceBand(500) <= 0 {
		t.Error("confidence band should be positive for noisy data")
	}
	// The band widens away from the mean of x.
	if l.ConfidenceBand(0) <= l.ConfidenceBand(499.5) {
		t.Error("confidence band should widen at the extremes")
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("two points: err = %v", err)
	}
	if _, err := FitLinear([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x variance accepted")
	}
}

func TestBinRate(t *testing.T) {
	xs := []float64{5, 15, 15, 25, 95}
	ok := []bool{true, true, false, false, true}
	bins := BinRate(xs, ok, 10, 0, 100)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Count != 1 || bins[0].Rate != 1 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].Count != 2 || bins[1].Rate != 0.5 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	if bins[9].Count != 1 || bins[9].Rate != 1 {
		t.Errorf("bin9 = %+v", bins[9])
	}
	if bins[5].Count != 0 || bins[5].Rate != 0 {
		t.Errorf("empty bin = %+v", bins[5])
	}
}

func TestBinRateEdges(t *testing.T) {
	// Values at the upper edge land in the last bin; out-of-range dropped.
	bins := BinRate([]float64{100, -1, 99.999}, []bool{true, true, true}, 10, 0, 100)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 1 {
		t.Errorf("in-range observations = %d, want 1", total)
	}
	if BinRate(nil, nil, 0, 0, 100) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSampleUniform(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	items := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := SampleUniform(r, items, 4)
	if len(got) != 4 {
		t.Fatalf("sample size = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatal("sample with replacement detected")
		}
		seen[v] = true
	}
	if len(SampleUniform(r, items, 99)) != len(items) {
		t.Error("oversized k should return all items")
	}
}

func TestRankMatchedDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Reference ranks concentrated in the bottom half.
	var reference []int
	for i := 0; i < 200; i++ {
		reference = append(reference, 500_001+r.Intn(500_000))
	}
	type site struct{ rank int }
	var candidates []site
	for i := 1; i <= 1_000_000; i += 37 {
		candidates = append(candidates, site{rank: i})
	}
	got := RankMatched(r, reference, candidates, func(s site) int { return s.rank }, 50, 1_000_000)
	if len(got) != len(reference) {
		t.Fatalf("matched sample = %d, want %d", len(got), len(reference))
	}
	for _, s := range got {
		if s.rank <= 500_000 {
			t.Fatalf("sample rank %d outside the reference distribution's buckets", s.rank)
		}
	}
}

func TestRankMatchedEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	if got := RankMatched(r, nil, []int{1, 2}, func(i int) int { return i }, 10, 100); len(got) != 0 {
		t.Errorf("empty reference gave %v", got)
	}
	if got := RankMatched(r, []int{1}, []int{5}, func(i int) int { return i }, 0, 100); got != nil {
		t.Errorf("n=0 gave %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	p50, err := Percentile(xs, 50)
	if err != nil || p50 != 35 {
		t.Errorf("p50 = %v, %v", p50, err)
	}
	p0, _ := Percentile(xs, 0)
	p100, _ := Percentile(xs, 100)
	if p0 != 15 || p100 != 50 {
		t.Errorf("p0/p100 = %v/%v", p0, p100)
	}
	if _, err := Percentile(nil, 50); err != ErrInsufficientData {
		t.Errorf("empty percentile err = %v", err)
	}
}

func TestPropertyBinRateConservation(t *testing.T) {
	// Every in-range observation is counted exactly once.
	f := func(raw []uint16, oks []bool) bool {
		n := len(raw)
		if len(oks) < n {
			n = len(oks)
		}
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(raw[i]) // always within [0, 65536)
		}
		bins := BinRate(xs, oks[:n], 16, 0, 65536)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPredictOnLine(t *testing.T) {
	f := func(a, b float64, seed int64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		var x, y []float64
		for i := 0; i < 10; i++ {
			xi := float64(i) + r.Float64()
			x = append(x, xi)
			y = append(y, a+b*xi)
		}
		l, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		return math.Abs(l.Slope-b) < 1e-6*(1+math.Abs(b)) &&
			math.Abs(l.Intercept-a) < 1e-5*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
