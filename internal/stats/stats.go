// Package stats provides the statistical machinery of the analysis: simple
// linear regression with confidence bands (Figure 7), rank binning, rank-
// matched stratified sampling (§5.5) and descriptive summaries.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more points.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Linear is a fitted simple linear regression y = Intercept + Slope*x.
type Linear struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// StdErrSlope is the standard error of the slope estimate.
	StdErrSlope float64
	N           int

	meanX, sxx, s2 float64
}

// FitLinear fits ordinary least squares to the points.
func FitLinear(x, y []float64) (Linear, error) {
	if len(x) != len(y) {
		return Linear{}, errors.New("stats: x and y lengths differ")
	}
	n := len(x)
	if n < 3 {
		return Linear{}, ErrInsufficientData
	}
	var sumX, sumY float64
	for i := range x {
		sumX += x[i]
		sumY += y[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-meanX, y[i]-meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, errors.New("stats: x has zero variance")
	}
	slope := sxy / sxx
	intercept := meanY - slope*meanX
	var sse float64
	for i := range x {
		resid := y[i] - (intercept + slope*x[i])
		sse += resid * resid
	}
	r2 := 0.0
	if syy > 0 {
		r2 = 1 - sse/syy
	}
	s2 := sse / float64(n-2)
	return Linear{
		Slope:       slope,
		Intercept:   intercept,
		R2:          r2,
		StdErrSlope: math.Sqrt(s2 / sxx),
		N:           n,
		meanX:       meanX,
		sxx:         sxx,
		s2:          s2,
	}, nil
}

// Predict evaluates the fitted line at x.
func (l Linear) Predict(x float64) float64 { return l.Intercept + l.Slope*x }

// ConfidenceBand returns the half-width of the ~95% confidence interval for
// the mean response at x (normal approximation, z=1.96).
func (l Linear) ConfidenceBand(x float64) float64 {
	if l.N < 3 {
		return 0
	}
	dx := x - l.meanX
	se := math.Sqrt(l.s2 * (1/float64(l.N) + dx*dx/l.sxx))
	return 1.96 * se
}

// Bin is one rank bucket with an aggregated rate.
type Bin struct {
	// Lo and Hi bound the bucket (inclusive lo, exclusive hi).
	Lo, Hi float64
	// Center is the bucket midpoint.
	Center float64
	// Count is the number of observations.
	Count int
	// Rate is the mean of the y values (e.g. share of valid https).
	Rate float64
}

// BucketIndex maps x onto its equal-width bucket over [lo, hi): the
// bucket arithmetic of BinRate, exported so index structures (the
// resultset rank index) bucket observations bit-identically to the
// binned-rate figures. Returns false when x falls outside [lo, hi).
func BucketIndex(x, lo, hi float64, n int) (int, bool) {
	if n <= 0 || hi <= lo || x < lo || x >= hi {
		return 0, false
	}
	b := int((x - lo) / ((hi - lo) / float64(n)))
	if b >= n {
		b = n - 1
	}
	return b, true
}

// BinRate groups (x, ok) observations into n equal-width buckets over
// [lo, hi) and computes the success rate per bucket, as Figure 7 does with
// 50 rank bins.
func BinRate(xs []float64, oks []bool, n int, lo, hi float64) []Bin {
	if n <= 0 || hi <= lo {
		return nil
	}
	width := (hi - lo) / float64(n)
	bins := make([]Bin, n)
	counts := make([]int, n)
	hits := make([]int, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
		bins[i].Center = bins[i].Lo + width/2
	}
	for i, x := range xs {
		b, ok := BucketIndex(x, lo, hi, n)
		if !ok {
			continue
		}
		counts[b]++
		if oks[i] {
			hits[b]++
		}
	}
	for i := range bins {
		bins[i].Count = counts[i]
		if counts[i] > 0 {
			bins[i].Rate = float64(hits[i]) / float64(counts[i])
		}
	}
	return bins
}

// Summary holds descriptive statistics.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// SampleUniform draws k distinct elements uniformly without replacement.
// When k >= len(items) it returns a shuffled copy of all items.
func SampleUniform[T any](r *rand.Rand, items []T, k int) []T {
	n := len(items)
	if k > n {
		k = n
	}
	idx := r.Perm(n)[:k]
	out := make([]T, 0, k)
	for _, i := range idx {
		out = append(out, items[i])
	}
	return out
}

// RankMatched draws, for each of n equal-width rank buckets over
// [1, maxRank], as many candidates as there are reference ranks in that
// bucket — the §5.5 sampling strategy that matches the non-government
// sample's rank distribution to the government sites'. Candidates are
// (rank, payload) pairs; the caller supplies the candidate ranks via rankOf.
func RankMatched[T any](r *rand.Rand, reference []int, candidates []T, rankOf func(T) int, n, maxRank int) []T {
	if n <= 0 || maxRank <= 0 {
		return nil
	}
	width := float64(maxRank) / float64(n)
	bucket := func(rank int) int {
		b := int(float64(rank-1) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		return b
	}
	want := make([]int, n)
	for _, rank := range reference {
		want[bucket(rank)]++
	}
	byBucket := make([][]T, n)
	for _, c := range candidates {
		b := bucket(rankOf(c))
		byBucket[b] = append(byBucket[b], c)
	}
	var out []T
	for b := 0; b < n; b++ {
		out = append(out, SampleUniform(r, byBucket[b], want[b])...)
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 100 {
		return sorted[len(sorted)-1], nil
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo], nil
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, nil
}
