package cert

import (
	"math/rand"
	"testing"
	"time"
)

var (
	t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	t1 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
)

func testCert(r *rand.Rand) *Certificate {
	key := NewKey(r, KeyRSA, 2048)
	c := &Certificate{
		SerialNumber:       r.Uint64(),
		Subject:            Name{CommonName: "www.example.gov", Organization: "Example Agency", Country: "US"},
		Issuer:             Name{CommonName: "Test CA", Organization: "Test Trust Services", Country: "US"},
		DNSNames:           []string{"www.example.gov", "example.gov"},
		NotBefore:          t0,
		NotAfter:           t1,
		PublicKey:          key,
		SignatureAlgorithm: SHA256WithRSA,
	}
	return c
}

func TestSignAndVerifyFromIssuer(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	caKey := NewKey(r, KeyRSA, 4096)
	caCert := &Certificate{
		Subject:            Name{CommonName: "Test CA"},
		Issuer:             Name{CommonName: "Test CA"},
		NotBefore:          t0,
		NotAfter:           t1.AddDate(10, 0, 0),
		PublicKey:          caKey,
		SignatureAlgorithm: SHA256WithRSA,
		IsCA:               true,
	}
	caCert.Sign(caKey.ID)

	leaf := testCert(r)
	leaf.Sign(caKey.ID)

	if err := leaf.CheckSignatureFrom(caCert); err != nil {
		t.Fatalf("CheckSignatureFrom = %v", err)
	}
	if !caCert.SelfSigned() {
		t.Error("CA cert should report self-signed")
	}
	if leaf.SelfSigned() {
		t.Error("leaf should not report self-signed")
	}
}

func TestSignatureBreaksOnTamper(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	caKey := NewKey(r, KeyECDSA, 256)
	ca := &Certificate{Subject: Name{CommonName: "CA"}, Issuer: Name{CommonName: "CA"},
		PublicKey: caKey, IsCA: true, NotBefore: t0, NotAfter: t1}
	ca.Sign(caKey.ID)
	leaf := testCert(r)
	leaf.Sign(caKey.ID)

	leaf.DNSNames = append(leaf.DNSNames, "evil.example.com")
	if err := leaf.CheckSignatureFrom(ca); err == nil {
		t.Fatal("tampered certificate still verifies")
	}
}

func TestSignatureWrongIssuer(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	k1 := NewKey(r, KeyRSA, 2048)
	k2 := NewKey(r, KeyRSA, 2048)
	ca1 := &Certificate{Subject: Name{CommonName: "CA1"}, Issuer: Name{CommonName: "CA1"}, PublicKey: k1, IsCA: true}
	ca2 := &Certificate{Subject: Name{CommonName: "CA2"}, Issuer: Name{CommonName: "CA2"}, PublicKey: k2, IsCA: true}
	ca1.Sign(k1.ID)
	ca2.Sign(k2.ID)
	leaf := testCert(r)
	leaf.Sign(k1.ID)
	if err := leaf.CheckSignatureFrom(ca2); err == nil {
		t.Fatal("leaf verified against wrong issuer")
	}
	if err := leaf.CheckSignatureFrom(ca1); err != nil {
		t.Fatalf("leaf failed against right issuer: %v", err)
	}
}

func TestCheckSignatureFromNonCA(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := testCert(r)
	b := testCert(r)
	a.Sign(b.PublicKey.ID)
	if err := a.CheckSignatureFrom(b); err != ErrNotCA {
		t.Fatalf("err = %v, want ErrNotCA", err)
	}
}

func TestVerifyHostnameExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := testCert(r)
	if err := c.VerifyHostname("www.example.gov"); err != nil {
		t.Errorf("exact match failed: %v", err)
	}
	if err := c.VerifyHostname("EXAMPLE.GOV"); err != nil {
		t.Errorf("case-insensitive match failed: %v", err)
	}
	if err := c.VerifyHostname("other.example.gov"); err == nil {
		t.Error("mismatched host verified")
	}
}

func TestVerifyHostnameWildcard(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c := testCert(r)
	c.DNSNames = []string{"*.portal.gov.bd"}
	if err := c.VerifyHostname("forms.portal.gov.bd"); err != nil {
		t.Errorf("wildcard one-label match failed: %v", err)
	}
	// The Bangladesh misuse case from §5.3.3: *.portal.gov.bd used on
	// sites under *.gov.bd must mismatch.
	if err := c.VerifyHostname("dhaka.gov.bd"); err == nil {
		t.Error("wildcard matched a different zone")
	}
	if err := c.VerifyHostname("a.b.portal.gov.bd"); err == nil {
		t.Error("wildcard matched two labels")
	}
	if err := c.VerifyHostname("portal.gov.bd"); err == nil {
		t.Error("wildcard matched zero labels")
	}
}

func TestVerifyHostnameCNFallback(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	c := testCert(r)
	c.DNSNames = nil
	if err := c.VerifyHostname("www.example.gov"); err != nil {
		t.Errorf("CN fallback failed: %v", err)
	}
	c.Subject.CommonName = ""
	if err := c.VerifyHostname("www.example.gov"); err != ErrNoHostname {
		t.Errorf("err = %v, want ErrNoHostname", err)
	}
}

func TestHostnameErrorMessage(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	c := testCert(r)
	err := c.VerifyHostname("nope.gov")
	if err == nil {
		t.Fatal("expected error")
	}
	var he HostnameError
	if he, _ = err.(HostnameError); he.Host != "nope.gov" {
		t.Errorf("HostnameError host = %q", he.Host)
	}
}

func TestExpiryChecks(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c := testCert(r)
	if c.IsExpiredAt(t0.AddDate(1, 0, 0)) {
		t.Error("expired inside window")
	}
	if !c.IsExpiredAt(t1.AddDate(0, 0, 1)) {
		t.Error("not expired after NotAfter")
	}
	if !c.IsNotYetValidAt(t0.AddDate(0, 0, -1)) {
		t.Error("valid before NotBefore")
	}
	if got := c.ValidityDays(); got != 731 { // 2020 is a leap year
		t.Errorf("ValidityDays = %d, want 731", got)
	}
}

func TestHasWildcard(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	c := testCert(r)
	if c.HasWildcard() {
		t.Error("non-wildcard cert reports wildcard")
	}
	c.DNSNames = []string{"a.gov", "*.b.gov"}
	if !c.HasWildcard() {
		t.Error("wildcard SAN not detected")
	}
	c.DNSNames = nil
	c.Subject.CommonName = "*.c.gov"
	if !c.HasWildcard() {
		t.Error("wildcard CN not detected")
	}
}

func TestFingerprintStability(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	c := testCert(r)
	c.Sign(c.PublicKey.ID)
	f1 := c.Fingerprint()
	f2 := c.Clone().Fingerprint()
	if f1 != f2 {
		t.Error("clone fingerprint differs")
	}
	c2 := c.Clone()
	c2.SerialNumber++
	if c2.Fingerprint() == f1 {
		t.Error("distinct certificates share a fingerprint")
	}
}

func TestNameString(t *testing.T) {
	n := Name{CommonName: "Let's Encrypt Authority X3", Organization: "Let's Encrypt", Country: "US"}
	want := "C=US, O=Let's Encrypt, CN=Let's Encrypt Authority X3"
	if got := n.String(); got != want {
		t.Errorf("Name.String() = %q, want %q", got, want)
	}
}

func TestSignatureAlgorithmProperties(t *testing.T) {
	if !MD5WithRSA.IsWeak() || !SHA1WithRSA.IsWeak() {
		t.Error("MD5/SHA1 not flagged weak")
	}
	if SHA256WithRSA.IsWeak() {
		t.Error("SHA256 flagged weak")
	}
	if !ECDSAWithSHA384.IsECDSA() || SHA256WithRSA.IsECDSA() {
		t.Error("IsECDSA misclassifies")
	}
	if MD5WithRSA.String() != "md5WithRSAEncryption" {
		t.Errorf("alg name = %q", MD5WithRSA.String())
	}
}

func TestKeyLabels(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	k := NewKey(r, KeyRSA, 2048)
	if k.Label() != "RSA-2048" {
		t.Errorf("label = %q", k.Label())
	}
	e := NewKey(r, KeyECDSA, 256)
	if e.Label() != "EC-256" {
		t.Errorf("label = %q", e.Label())
	}
	if k.ID == e.ID {
		t.Error("two fresh keys share an ID")
	}
	if k.ID.IsZero() {
		t.Error("fresh key has zero ID")
	}
}
