package cert

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"time"
)

// Wire encoding: a compact TLV-free binary format ("SDER", simplified DER)
// used to move certificate chains through the simulated TLS handshake and to
// fingerprint certificates. Fields appear in a fixed order; strings and
// integers use unsigned varints. The format is versioned by a 4-byte magic.

var encodeMagic = [4]byte{'S', 'C', '0', '1'}

// Encoding size limits, enforced on parse to reject corrupt input early.
const (
	maxStringLen = 4096
	maxListLen   = 4096
	maxChainLen  = 16
)

// Encoding and parsing errors.
var (
	ErrBadMagic  = errors.New("cert: bad certificate magic")
	ErrTruncated = errors.New("cert: truncated certificate encoding")
	ErrOversize  = errors.New("cert: encoded field exceeds size limit")
)

// Encode serializes the certificate, including its signature. On a frozen
// certificate the cached encoding is returned directly; callers must not
// modify it.
func (c *Certificate) Encode() []byte {
	if c.enc != nil {
		return c.enc
	}
	return encodeBody(c, true)
}

func encodeBody(c *Certificate, withSig bool) []byte {
	// Upper-bound the encoded size so the builder allocates exactly once:
	// 107 covers the magic, the fixed-width fields and every varint at its
	// ceiling; each string costs its length plus a 2-byte length varint.
	size := 107 + 12 +
		len(c.Subject.CommonName) + len(c.Subject.Organization) + len(c.Subject.Country) +
		len(c.Issuer.CommonName) + len(c.Issuer.Organization) + len(c.Issuer.Country)
	for _, n := range c.DNSNames {
		size += len(n) + 2
	}
	for _, oid := range c.PolicyOIDs {
		size += len(oid) + 2
	}
	b := builder{buf: make([]byte, 0, size)}
	b.bytes(encodeMagic[:])
	b.uvarint(c.SerialNumber)
	encodeName(&b, c.Subject)
	encodeName(&b, c.Issuer)
	b.uvarint(uint64(len(c.DNSNames)))
	for _, n := range c.DNSNames {
		b.str(n)
	}
	b.svarint(c.NotBefore.Unix())
	b.svarint(c.NotAfter.Unix())
	b.byte(byte(c.PublicKey.Type))
	b.uvarint(uint64(c.PublicKey.Bits))
	b.bytes(c.PublicKey.ID[:])
	b.byte(byte(c.SignatureAlgorithm))
	if c.IsCA {
		b.byte(1)
	} else {
		b.byte(0)
	}
	b.uvarint(uint64(len(c.PolicyOIDs)))
	for _, oid := range c.PolicyOIDs {
		b.str(oid)
	}
	b.bytes(c.AuthorityKeyID[:])
	if withSig {
		b.bytes(c.Signature[:])
	}
	return b.buf
}

func encodeName(b *builder, n Name) {
	b.str(n.CommonName)
	b.str(n.Organization)
	b.str(n.Country)
}

// Parse decodes a certificate produced by Encode.
func Parse(data []byte) (*Certificate, error) {
	c, rest, err := parseOne(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cert: %d trailing bytes after certificate", len(rest))
	}
	return c, nil
}

func parseOne(data []byte) (*Certificate, []byte, error) {
	p := parser{buf: data}
	magic := p.take(4)
	if p.err != nil {
		return nil, nil, p.err
	}
	if [4]byte(magic) != encodeMagic {
		return nil, nil, ErrBadMagic
	}
	var c Certificate
	c.SerialNumber = p.uvarint()
	c.Subject = parseName(&p)
	c.Issuer = parseName(&p)
	nNames := p.list()
	for i := uint64(0); i < nNames && p.err == nil; i++ {
		c.DNSNames = append(c.DNSNames, p.str())
	}
	c.NotBefore = time.Unix(p.svarint(), 0).UTC()
	c.NotAfter = time.Unix(p.svarint(), 0).UTC()
	c.PublicKey.Type = KeyType(p.byte())
	c.PublicKey.Bits = int(p.uvarint())
	copy(c.PublicKey.ID[:], p.take(len(c.PublicKey.ID)))
	c.SignatureAlgorithm = SignatureAlgorithm(p.byte())
	c.IsCA = p.byte() == 1
	nOIDs := p.list()
	for i := uint64(0); i < nOIDs && p.err == nil; i++ {
		c.PolicyOIDs = append(c.PolicyOIDs, p.str())
	}
	copy(c.AuthorityKeyID[:], p.take(len(c.AuthorityKeyID)))
	copy(c.Signature[:], p.take(len(c.Signature)))
	if p.err != nil {
		return nil, nil, p.err
	}
	return &c, p.buf, nil
}

// AppendFingerprintHex appends the certificate's SHA-256 fingerprint in
// lowercase hex to dst and returns the extended slice. On a frozen
// certificate this costs one append — the digest is cached.
func (c *Certificate) AppendFingerprintHex(dst []byte) []byte {
	fp := c.Fingerprint()
	return hex.AppendEncode(dst, fp[:])
}

// AppendEncodeBase64 appends the certificate's wire encoding in standard
// base64 to dst and returns the extended slice. On a frozen certificate the
// cached encoding is reused, so nothing is re-serialized.
func (c *Certificate) AppendEncodeBase64(dst []byte) []byte {
	return base64.StdEncoding.AppendEncode(dst, c.Encode())
}

// EncodeChain serializes a certificate chain, leaf first.
func EncodeChain(chain []*Certificate) []byte {
	b := builder{buf: make([]byte, 0, 16+320*len(chain))}
	b.uvarint(uint64(len(chain)))
	for _, c := range chain {
		enc := c.Encode()
		b.uvarint(uint64(len(enc)))
		b.bytes(enc)
	}
	return b.buf
}

// ParseChain decodes a chain produced by EncodeChain.
func ParseChain(data []byte) ([]*Certificate, error) {
	p := parser{buf: data}
	n := p.uvarint()
	if p.err != nil {
		return nil, p.err
	}
	if n > maxChainLen {
		return nil, fmt.Errorf("cert: chain of %d certificates exceeds limit %d", n, maxChainLen)
	}
	chain := make([]*Certificate, 0, n)
	for i := uint64(0); i < n; i++ {
		l := p.uvarint()
		raw := p.take(int(l))
		if p.err != nil {
			return nil, p.err
		}
		c, rest, err := parseOne(raw)
		if err != nil {
			return nil, fmt.Errorf("cert: chain entry %d: %w", i, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("cert: chain entry %d has %d trailing bytes", i, len(rest))
		}
		// The wire bytes *are* the encoding (TBS bytes followed by the
		// signature), so seed the frozen caches and spare the parsed chain
		// from ever re-serializing.
		fp := sha256.Sum256(raw)
		c.enc, c.tbs, c.fp = raw, raw[:len(raw)-len(c.Signature)], &fp
		chain = append(chain, c)
	}
	if len(p.buf) != 0 {
		return nil, fmt.Errorf("cert: %d trailing bytes after chain", len(p.buf))
	}
	return chain, nil
}

// builder accumulates the wire encoding.
type builder struct{ buf []byte }

func (b *builder) byte(v byte)    { b.buf = append(b.buf, v) }
func (b *builder) bytes(v []byte) { b.buf = append(b.buf, v...) }
func (b *builder) uvarint(v uint64) {
	b.buf = binary.AppendUvarint(b.buf, v)
}
func (b *builder) svarint(v int64) {
	b.buf = binary.AppendVarint(b.buf, v)
}
func (b *builder) str(s string) {
	b.uvarint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

// parser consumes the wire encoding, latching the first error.
type parser struct {
	buf []byte
	err error
}

func (p *parser) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

func (p *parser) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || n > len(p.buf) {
		p.fail(ErrTruncated)
		return nil
	}
	out := p.buf[:n]
	p.buf = p.buf[n:]
	return out
}

func (p *parser) byte() byte {
	b := p.take(1)
	if len(b) != 1 {
		return 0
	}
	return b[0]
}

func (p *parser) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.buf)
	if n <= 0 {
		p.fail(ErrTruncated)
		return 0
	}
	p.buf = p.buf[n:]
	return v
}

func (p *parser) svarint() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.buf)
	if n <= 0 {
		p.fail(ErrTruncated)
		return 0
	}
	p.buf = p.buf[n:]
	return v
}

func (p *parser) list() uint64 {
	n := p.uvarint()
	if n > maxListLen {
		p.fail(ErrOversize)
		return 0
	}
	return n
}

func (p *parser) str() string {
	n := p.uvarint()
	if n > maxStringLen {
		p.fail(ErrOversize)
		return ""
	}
	return string(p.take(int(n)))
}

func parseName(p *parser) Name {
	return Name{
		CommonName:   p.str(),
		Organization: p.str(),
		Country:      p.str(),
	}
}
