package cert

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeParseRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	c := testCert(r)
	c.PolicyOIDs = []string{"2.23.140.1.1", "1.3.6.1.4.1.34697.2.1"}
	c.Sign(c.PublicKey.ID)
	got, err := Parse(c.Encode())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestParseRejectsBadMagic(t *testing.T) {
	if _, err := Parse([]byte("XXXXjunk")); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	c := testCert(r)
	c.Sign(c.PublicKey.ID)
	enc := c.Encode()
	for _, cut := range []int{1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := Parse(enc[:cut]); err == nil {
			t.Errorf("Parse of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestParseRejectsTrailingBytes(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	c := testCert(r)
	enc := append(c.Encode(), 0xFF)
	if _, err := Parse(enc); err == nil {
		t.Error("Parse accepted trailing bytes")
	}
}

func TestChainRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var chain []*Certificate
	for i := 0; i < 3; i++ {
		c := testCert(r)
		c.Sign(c.PublicKey.ID)
		chain = append(chain, c)
	}
	got, err := ParseChain(EncodeChain(chain))
	if err != nil {
		t.Fatalf("ParseChain: %v", err)
	}
	if len(got) != len(chain) {
		t.Fatalf("roundtrip returned %d certs, want %d", len(got), len(chain))
	}
	for i := range got {
		// Clone strips the frozen caches ParseChain seeds, leaving the
		// semantic fields for comparison.
		if !reflect.DeepEqual(got[i].Clone(), chain[i].Clone()) {
			t.Errorf("chain entry %d roundtrip mismatch", i)
		}
		if !bytes.Equal(got[i].Encode(), chain[i].Encode()) {
			t.Errorf("chain entry %d re-encoding mismatch", i)
		}
	}
}

func TestChainEmptyRoundtrip(t *testing.T) {
	got, err := ParseChain(EncodeChain(nil))
	if err != nil {
		t.Fatalf("ParseChain(empty): %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d certs", len(got))
	}
}

func TestParseChainRejectsOversizedCount(t *testing.T) {
	var b builder
	b.uvarint(1 << 40)
	if _, err := ParseChain(b.buf); err == nil {
		t.Error("accepted absurd chain length")
	}
}

func TestParseChainRejectsTrailing(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	c := testCert(r)
	enc := append(EncodeChain([]*Certificate{c}), 0x01)
	if _, err := ParseChain(enc); err == nil {
		t.Error("accepted trailing bytes after chain")
	}
}

func TestParseRejectsOversizeString(t *testing.T) {
	var b builder
	b.bytes(encodeMagic[:])
	b.uvarint(1)                // serial
	b.uvarint(maxStringLen + 1) // subject CN length: too large
	if _, err := Parse(b.buf); err != ErrOversize {
		t.Errorf("err = %v, want ErrOversize", err)
	}
}

// quickCert builds an arbitrary but well-formed certificate from fuzz input.
func quickCert(serial uint64, cn, org, country string, names []string, nb, na int64, keyBits uint16, alg uint8, isCA bool) *Certificate {
	c := &Certificate{
		SerialNumber:       serial,
		Subject:            Name{CommonName: clip(cn), Organization: clip(org), Country: clip(country)},
		Issuer:             Name{CommonName: "QuickCheck CA"},
		NotBefore:          time.Unix(nb%1<<40, 0).UTC(),
		NotAfter:           time.Unix(na%1<<40, 0).UTC(),
		PublicKey:          PublicKey{Type: KeyRSA, Bits: int(keyBits)},
		SignatureAlgorithm: SignatureAlgorithm(alg%9 + 1),
		IsCA:               isCA,
	}
	for _, n := range names {
		if len(c.DNSNames) >= 8 {
			break
		}
		c.DNSNames = append(c.DNSNames, clip(n))
	}
	return c
}

func clip(s string) string {
	if len(s) > 64 {
		return s[:64]
	}
	return s
}

func TestPropertyEncodeParseIdentity(t *testing.T) {
	f := func(serial uint64, cn, org, country string, names []string, nb, na int64, keyBits uint16, alg uint8, isCA bool) bool {
		c := quickCert(serial, cn, org, country, names, nb, na, keyBits, alg, isCA)
		got, err := Parse(c.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodingDeterministic(t *testing.T) {
	f := func(serial uint64, cn string, names []string) bool {
		a := quickCert(serial, cn, "", "", names, 0, 1, 2048, 3, false)
		b := quickCert(serial, cn, "", "", names, 0, 1, 2048, 3, false)
		return bytes.Equal(a.Encode(), b.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Parse(data)      // must not panic
		_, _ = ParseChain(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySignatureBindsTBS(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	key := NewKey(r, KeyRSA, 2048)
	f := func(serial uint64, cn string) bool {
		c := quickCert(serial, cn, "o", "c", nil, 0, 100, 2048, 3, false)
		c.Sign(key.ID)
		parent := &Certificate{PublicKey: key, IsCA: true}
		if c.CheckSignatureFrom(parent) != nil {
			return false
		}
		c.SerialNumber ^= 1
		return c.CheckSignatureFrom(parent) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
