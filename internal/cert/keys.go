package cert

import "math/rand"

// NewKey mints a fresh key pair identity of the given type and size using
// the provided deterministic source. Distinct draws yield distinct KeyIDs
// with overwhelming probability, which is all the reuse analysis needs.
func NewKey(r *rand.Rand, t KeyType, bits int) PublicKey {
	var id KeyID
	for i := 0; i < len(id); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			id[i+j] = byte(v >> (8 * j))
		}
	}
	return PublicKey{Type: t, Bits: bits, ID: id}
}

// CommonRSASizes are the RSA host key sizes observed in the study
// (Figure 4), including the misconfiguration-prone 3248 and 8192.
var CommonRSASizes = []int{1024, 2048, 3248, 4096, 8192}

// CommonECSizes are the EC host key sizes observed in the study.
var CommonECSizes = []int{256, 384, 521}
