// Package cert implements the certificate model for the study: an X.509-like
// certificate with subject/issuer names, subject alternative names, validity
// window, public-key metadata, signature algorithm and EV policy OIDs, plus a
// compact binary wire encoding used by the simulated TLS handshake.
//
// Signatures are simulated: a certificate's signature is a keyed digest of
// the to-be-signed bytes under the issuer's key identity. This preserves the
// structural properties chain validation depends on (a certificate verifies
// only against the key that issued it; tampering breaks the signature)
// without carrying real cryptographic weight, which the measurement pipeline
// does not need. The substitution is documented in DESIGN.md.
package cert

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"time"
)

// KeyType identifies the public-key algorithm of a host or CA key.
type KeyType uint8

// Supported key types.
const (
	KeyRSA KeyType = iota + 1
	KeyECDSA
)

// String returns the conventional name of the key type.
func (k KeyType) String() string {
	switch k {
	case KeyRSA:
		return "RSA"
	case KeyECDSA:
		return "EC"
	default:
		return fmt.Sprintf("KeyType(%d)", uint8(k))
	}
}

// KeyID is the fingerprint identifying a key pair. Two certificates with the
// same KeyID share the same underlying key pair — the property behind the
// §5.3.3 key-reuse analysis.
type KeyID [16]byte

// String renders the fingerprint in hex.
func (id KeyID) String() string { return fmt.Sprintf("%x", id[:]) }

// IsZero reports whether the fingerprint is unset.
func (id KeyID) IsZero() bool { return id == KeyID{} }

// PublicKey carries the key metadata the study analyzes (Figure 4/9/12).
type PublicKey struct {
	Type KeyType
	// Bits is the key size: 1024/2048/3248/4096/8192 for RSA,
	// 256/384/521 for EC.
	Bits int
	// ID identifies the key pair.
	ID KeyID
}

// Label renders the key as the paper's figures label it, e.g. "RSA-2048".
func (k PublicKey) Label() string { return fmt.Sprintf("%s-%d", k.Type, k.Bits) }

// SignatureAlgorithm identifies the CA's signing algorithm.
type SignatureAlgorithm uint8

// Signature algorithms observed in the study.
const (
	MD5WithRSA SignatureAlgorithm = iota + 1
	SHA1WithRSA
	SHA256WithRSA
	SHA384WithRSA
	SHA512WithRSA
	SHA256WithRSAPSS
	ECDSAWithSHA256
	ECDSAWithSHA384
	ECDSAWithSHA512
)

var sigAlgNames = map[SignatureAlgorithm]string{
	MD5WithRSA:       "md5WithRSAEncryption",
	SHA1WithRSA:      "sha1WithRSAEncryption",
	SHA256WithRSA:    "sha256WithRSAEncryption",
	SHA384WithRSA:    "sha384WithRSAEncryption",
	SHA512WithRSA:    "sha512WithRSAEncryption",
	SHA256WithRSAPSS: "rsassaPss",
	ECDSAWithSHA256:  "ecdsa-with-SHA256",
	ECDSAWithSHA384:  "ecdsa-with-SHA384",
	ECDSAWithSHA512:  "ecdsa-with-SHA512",
}

// String returns the OpenSSL-style algorithm name.
func (a SignatureAlgorithm) String() string {
	if s, ok := sigAlgNames[a]; ok {
		return s
	}
	return fmt.Sprintf("SignatureAlgorithm(%d)", uint8(a))
}

// IsWeak reports whether the algorithm is considered broken (MD5, SHA1).
func (a SignatureAlgorithm) IsWeak() bool {
	return a == MD5WithRSA || a == SHA1WithRSA
}

// IsECDSA reports whether the signature uses elliptic-curve keys.
func (a SignatureAlgorithm) IsECDSA() bool {
	return a == ECDSAWithSHA256 || a == ECDSAWithSHA384 || a == ECDSAWithSHA512
}

// Name is a distinguished name, reduced to the attributes the study uses.
type Name struct {
	CommonName   string
	Organization string
	Country      string
}

// String renders the name in OpenSSL one-line form.
func (n Name) String() string {
	var parts []string
	if n.Country != "" {
		parts = append(parts, "C="+n.Country)
	}
	if n.Organization != "" {
		parts = append(parts, "O="+n.Organization)
	}
	if n.CommonName != "" {
		parts = append(parts, "CN="+n.CommonName)
	}
	return strings.Join(parts, ", ")
}

// Certificate is one certificate in a chain.
type Certificate struct {
	SerialNumber uint64
	Subject      Name
	Issuer       Name
	// DNSNames are subject alternative names; entries may be wildcards.
	DNSNames  []string
	NotBefore time.Time
	NotAfter  time.Time
	PublicKey PublicKey
	// SignatureAlgorithm is the algorithm the issuer signed with.
	SignatureAlgorithm SignatureAlgorithm
	// IsCA marks certificates usable as issuers.
	IsCA bool
	// PolicyOIDs carries certificate policies; EV issuance includes the
	// issuer's EV policy OID, checked against the trusted EV registry.
	PolicyOIDs []string
	// AuthorityKeyID identifies the key that signed this certificate.
	AuthorityKeyID KeyID
	// Signature binds the TBS bytes to the issuing key.
	Signature [32]byte

	// Frozen caches of the wire encoding, TBS bytes and fingerprint,
	// populated by Freeze (or by ParseChain, whose input already carries the
	// encoding). Nil while the certificate is still being built; Sign and
	// Clone reset them. Once set they are read-only, so a frozen certificate
	// is safe to share across goroutines.
	enc []byte
	tbs []byte
	fp  *[32]byte
}

// Freeze precomputes the certificate's wire encoding, TBS bytes and
// fingerprint so Encode, Fingerprint and signature checks stop
// re-serializing on every call. Call it once, from a single goroutine,
// after the certificate reaches its final form; mutating an exported field
// afterwards leaves the caches stale (Sign and Clone reset them).
func (c *Certificate) Freeze() {
	if c.enc != nil {
		return
	}
	tbs := encodeBody(c, false)
	// The wire form is tbs ++ signature; appending in place shares one
	// backing array between both cached views.
	enc := append(tbs, c.Signature[:]...)
	fp := sha256.Sum256(enc)
	c.tbs, c.enc, c.fp = enc[:len(tbs):len(tbs)], enc, &fp
}

// Errors returned by signature and hostname verification.
var (
	ErrSignatureMismatch = errors.New("cert: signature does not verify against issuer key")
	ErrNotCA             = errors.New("cert: issuer certificate is not a CA")
	ErrNoHostname        = errors.New("cert: certificate contains no host names")
)

// tbsBytes serializes the to-be-signed portion of the certificate
// (encodeBody never reads the Signature field when withSig is false).
func (c *Certificate) tbsBytes() []byte {
	if c.tbs != nil {
		return c.tbs
	}
	return encodeBody(c, false)
}

// Sign computes the certificate signature under the given issuing key.
// For self-signed certificates, pass the certificate's own key ID.
func (c *Certificate) Sign(issuerKey KeyID) {
	c.enc, c.tbs, c.fp = nil, nil, nil
	c.AuthorityKeyID = issuerKey
	c.Signature = computeSignature(c.tbsBytes(), issuerKey, c.SignatureAlgorithm)
}

func computeSignature(tbs []byte, key KeyID, alg SignatureAlgorithm) [32]byte {
	h := sha256.New()
	h.Write([]byte{'s', 'i', 'g', byte(alg)})
	h.Write(key[:])
	h.Write(tbs)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// CheckSignatureFrom verifies that parent's key produced c's signature.
func (c *Certificate) CheckSignatureFrom(parent *Certificate) error {
	if !parent.IsCA && parent != c {
		return ErrNotCA
	}
	want := computeSignature(c.tbsBytes(), parent.PublicKey.ID, c.SignatureAlgorithm)
	if want != c.Signature {
		return ErrSignatureMismatch
	}
	return nil
}

// SelfSigned reports whether the certificate is signed by its own key.
func (c *Certificate) SelfSigned() bool {
	if c.AuthorityKeyID != c.PublicKey.ID {
		return false
	}
	want := computeSignature(c.tbsBytes(), c.PublicKey.ID, c.SignatureAlgorithm)
	return want == c.Signature
}

// IsExpiredAt reports whether the certificate validity window excludes t.
func (c *Certificate) IsExpiredAt(t time.Time) bool { return t.After(c.NotAfter) }

// IsNotYetValidAt reports whether t precedes the validity window.
func (c *Certificate) IsNotYetValidAt(t time.Time) bool { return t.Before(c.NotBefore) }

// ValidityDuration is the issued lifetime of the certificate.
func (c *Certificate) ValidityDuration() time.Duration { return c.NotAfter.Sub(c.NotBefore) }

// ValidityDays is the issued lifetime in whole days (§5.3.1).
func (c *Certificate) ValidityDays() int {
	return int(c.ValidityDuration() / (24 * time.Hour))
}

// HasWildcard reports whether any SAN entry is a wildcard name.
func (c *Certificate) HasWildcard() bool {
	for _, n := range c.DNSNames {
		if strings.HasPrefix(n, "*.") {
			return true
		}
	}
	return strings.HasPrefix(c.Subject.CommonName, "*.")
}

// Names returns the hostnames the certificate claims: SAN entries, falling
// back to the subject common name when no SANs are present.
func (c *Certificate) Names() []string {
	if len(c.DNSNames) > 0 {
		return c.DNSNames
	}
	if c.Subject.CommonName != "" {
		return []string{c.Subject.CommonName}
	}
	return nil
}

// VerifyHostname checks host against the certificate's names using
// RFC 6125-style matching: a wildcard covers exactly one additional label
// and only in the leftmost position.
func (c *Certificate) VerifyHostname(host string) error {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	names := c.Names()
	if len(names) == 0 {
		return ErrNoHostname
	}
	for _, pattern := range names {
		if matchHostname(strings.ToLower(pattern), host) {
			return nil
		}
	}
	return HostnameError{Certificate: c, Host: host}
}

// HostnameError reports a hostname-mismatch failure, the leading cause of
// certificate invalidity in the study (36.6% of invalid certificates).
type HostnameError struct {
	Certificate *Certificate
	Host        string
}

// Error implements the error interface.
func (e HostnameError) Error() string {
	return fmt.Sprintf("cert: host %q does not match certificate names %v",
		e.Host, e.Certificate.Names())
}

func matchHostname(pattern, host string) bool {
	if pattern == "" || host == "" {
		return false
	}
	if !strings.HasPrefix(pattern, "*.") {
		return pattern == host
	}
	// The wildcard must cover exactly one label.
	suffix := pattern[1:] // ".example.gov"
	if !strings.HasSuffix(host, suffix) {
		return false
	}
	label := host[:len(host)-len(suffix)]
	return label != "" && !strings.Contains(label, ".")
}

// Fingerprint returns a stable digest of the full certificate, used to
// detect exact certificate reuse across hosts (§5.3.3).
func (c *Certificate) Fingerprint() [32]byte {
	if c.fp != nil {
		return *c.fp
	}
	return sha256.Sum256(c.Encode())
}

// Clone returns a deep copy of the certificate. The copy is mutable: the
// frozen caches are not carried over.
func (c *Certificate) Clone() *Certificate {
	clone := *c
	clone.DNSNames = append([]string(nil), c.DNSNames...)
	clone.PolicyOIDs = append([]string(nil), c.PolicyOIDs...)
	clone.enc, clone.tbs, clone.fp = nil, nil, nil
	return &clone
}
