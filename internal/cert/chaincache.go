package cert

import (
	"crypto/sha256"
	"sync"
)

// ChainCache deduplicates parsed certificate chains by the digest of their
// wire encoding. The simulated government web is dominated by shared
// material — shared wildcards, internal CAs, §5.3.3 reused certificates —
// so a scan sees the same chain payload from many hosts; parsing it once
// and handing every caller the same frozen chain removes the per-handshake
// decode cost. Safe for concurrent use.
type ChainCache struct {
	mu sync.RWMutex
	m  map[[32]byte][]*Certificate
}

// NewChainCache returns an empty cache.
func NewChainCache() *ChainCache {
	return &ChainCache{m: make(map[[32]byte][]*Certificate)}
}

// Parse decodes a chain payload, returning the cached chain when the same
// bytes have been seen before. Returned chains are frozen and shared;
// callers must treat them as read-only.
func (cc *ChainCache) Parse(payload []byte) ([]*Certificate, error) {
	key := sha256.Sum256(payload)
	cc.mu.RLock()
	chain, ok := cc.m[key]
	cc.mu.RUnlock()
	if ok {
		return chain, nil
	}
	chain, err := ParseChain(payload)
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	// First insert wins so concurrent parsers converge on one shared chain.
	if prior, ok := cc.m[key]; ok {
		chain = prior
	} else {
		cc.m[key] = chain
	}
	cc.mu.Unlock()
	return chain, nil
}

// Len reports the number of distinct chains cached.
func (cc *ChainCache) Len() int {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return len(cc.m)
}
