package notify

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

var testWorld = world.MustBuild(world.TestConfig())

func scanWorld(t *testing.T, hosts []string) *resultset.Set {
	t.Helper()
	s := scanner.New(testWorld.Net, testWorld.DNS, testWorld.Class,
		scanner.DefaultConfig(testWorld.Stores["apple"], testWorld.ScanTime))
	return resultset.New(s.ScanAll(context.Background(), hosts),
		resultset.Options{CountryOf: testWorld.CountryOf})
}

func TestBuildReports(t *testing.T) {
	results := scanWorld(t, testWorld.GovHosts)
	reports := BuildReports(results, nil)
	if len(reports) < 50 {
		t.Fatalf("reports for %d countries", len(reports))
	}
	totalInvalid := 0
	for _, rep := range reports {
		totalInvalid += len(rep.InvalidHTTPS)
		for i := 1; i < len(rep.InvalidHTTPS); i++ {
			if rep.InvalidHTTPS[i-1] >= rep.InvalidHTTPS[i] {
				t.Fatal("report hosts unsorted or duplicated")
			}
		}
	}
	if totalInvalid == 0 {
		t.Fatal("no invalid hosts in any report")
	}
}

func TestCampaignAccounting(t *testing.T) {
	results := scanWorld(t, testWorld.GovHosts)
	reports := BuildReports(results, nil)
	c := Campaign(reports, rand.New(rand.NewSource(1)))
	if c.EmailsSent == 0 {
		t.Fatal("no emails sent")
	}
	if c.Delivered+c.Bounced-c.RetriedOK != c.EmailsSent {
		t.Errorf("delivery accounting: sent=%d delivered=%d bounced=%d retried=%d",
			c.EmailsSent, c.Delivered, c.Bounced, c.RetriedOK)
	}
	if c.Delivered == 0 || c.Delivered < c.EmailsSent*9/10 {
		t.Errorf("delivered = %d of %d, want ~96%%", c.Delivered, c.EmailsSent)
	}
	// Paper: ~22% of registrars proactively replied.
	rate := c.ResponseRate()
	if rate < 0.10 || rate > 0.40 {
		t.Errorf("response rate = %.2f, want ~0.22", rate)
	}
	if len(c.SkippedTerritories) < 20 {
		t.Errorf("territories skipped = %d", len(c.SkippedTerritories))
	}
}

func TestCampaignSkipsTerritories(t *testing.T) {
	reports := []Report{
		{Country: "pr", InvalidHTTPS: []string{"x.gov.pr"}}, // territory
		{Country: "br", InvalidHTTPS: []string{"x.gov.br"}},
	}
	c := Campaign(reports, rand.New(rand.NewSource(2)))
	if _, ok := c.Deliveries["pr"]; ok {
		t.Error("campaign emailed a territory registrar")
	}
	if _, ok := c.Deliveries["br"]; !ok {
		t.Error("campaign skipped a sovereign country")
	}
}

func TestCampaignSkipsCleanCountries(t *testing.T) {
	reports := []Report{{Country: "no"}} // empty report: nothing to disclose
	c := Campaign(reports, rand.New(rand.NewSource(3)))
	if c.EmailsSent != 0 {
		t.Error("emailed a country with no findings")
	}
	if len(c.SkippedAllValid) != 1 || c.SkippedAllValid[0] != "no" {
		t.Errorf("SkippedAllValid = %v", c.SkippedAllValid)
	}
}

func TestResponsePatternByPopulation(t *testing.T) {
	// Aggregate response rates over many trials: medium/small countries
	// must respond more than the giants (Figure 13).
	r := rand.New(rand.NewSource(4))
	big := geo.MustByCode("cn")
	medium := geo.MustByCode("se")
	replies := func(c geo.Country) int {
		n := 0
		for i := 0; i < 400; i++ {
			k := respond(c, r)
			if k != NoResponse && k != AutoAck {
				n++
			}
		}
		return n
	}
	if rb, rm := replies(big), replies(medium); rb >= rm {
		t.Errorf("China replies (%d) >= Sweden replies (%d); Figure 13 inverted", rb, rm)
	}
}

func TestEffectivenessEndToEnd(t *testing.T) {
	// Build an isolated world so remediation does not disturb the shared
	// fixture.
	w := world.MustBuild(world.Config{Seed: 11, Scale: 0.01})
	s := scanner.New(w.Net, w.DNS, w.Class, scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
	before := resultset.New(s.ScanAll(context.Background(), w.GovHosts), resultset.Options{})

	invalid := before.InvalidHosts()
	if len(invalid) < 20 {
		t.Skip("too few invalid hosts at this scale")
	}
	w.Remediate(invalid, world.DefaultRemediationRates(), rand.New(rand.NewSource(5)))

	s2 := scanner.New(w.Net, w.DNS, w.Class, scanner.DefaultConfig(w.Stores["apple"], world.FollowUpScanTime))
	after := resultset.New(s2.ScanAll(context.Background(), w.GovHosts), resultset.Options{})
	eff, err := MeasureEffectiveness(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if eff.PreviouslyInvalid != len(invalid) {
		t.Errorf("previously invalid = %d, want %d", eff.PreviouslyInvalid, len(invalid))
	}
	cons := eff.ImprovementConservative()
	opt := eff.ImprovementOptimistic()
	if cons <= 0 || opt <= cons {
		t.Errorf("improvement conservative=%.3f optimistic=%.3f", cons, opt)
	}
	// Paper: 8.3% conservative, 18.7% optimistic. Small worlds are noisy;
	// check the band generously.
	if cons < 0.02 || cons > 0.30 {
		t.Errorf("conservative improvement = %.3f, want ~0.083", cons)
	}
	if eff.StillInvalid == 0 {
		t.Error("remediation fixed everything; most hosts should stay broken")
	}
}

func TestMeasureEffectivenessLengthMismatch(t *testing.T) {
	two := resultset.New(make([]scanner.Result, 2), resultset.Options{})
	three := resultset.New(make([]scanner.Result, 3), resultset.Options{})
	if _, err := MeasureEffectiveness(two, three); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestResponseKindStrings(t *testing.T) {
	if Negative.String() != "negative" || !Redirected.Supportive() {
		t.Error("response kind metadata wrong")
	}
	if Negative.Supportive() || NoResponse.Supportive() {
		t.Error("non-supportive kinds misclassified")
	}
}
