// Package notify implements the responsible-disclosure campaign of §7.2:
// building per-country vulnerability reports, resolving registrar contacts
// through whois, the email delivery/bounce/acknowledgement accounting, the
// population-rank response pattern of Figure 13, and the two-month
// effectiveness measurement of §7.2.2.
package notify

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/resultset"
)

// ResponseKind classifies a registrar's reaction to the report.
type ResponseKind int

// Registrar reactions observed in the study.
const (
	// NoResponse: the report was delivered but never answered.
	NoResponse ResponseKind = iota
	// AutoAck: an automated receipt acknowledgement.
	AutoAck
	// ProvidedContacts: the registrar supplied the owners' contacts
	// (Brazil, Lebanon, Liberia).
	ProvidedContacts
	// Redirected: the registrar forwarded the report to the responsible
	// authority (13 countries).
	Redirected
	// WhoisPointer: the registrar pointed back at public whois data
	// (Japan, Norway).
	WhoisPointer
	// Negative: "We are not interested".
	Negative
)

var responseNames = map[ResponseKind]string{
	NoResponse:       "no response",
	AutoAck:          "automated acknowledgement",
	ProvidedContacts: "provided contacts",
	Redirected:       "redirected to authority",
	WhoisPointer:     "pointed to whois",
	Negative:         "negative",
}

// String names the response kind.
func (k ResponseKind) String() string { return responseNames[k] }

// Supportive reports whether the reaction helps remediation.
func (k ResponseKind) Supportive() bool {
	return k == ProvidedContacts || k == Redirected || k == WhoisPointer
}

// Report is one country's vulnerability disclosure.
type Report struct {
	Country string
	// InvalidHTTPS lists hosts serving broken certificates.
	InvalidHTTPS []string
	// FailedUpgrades lists hosts serving content on both schemes without
	// enforcing https.
	FailedUpgrades []string
	// DeadLinked lists unreachable hosts still linked from live pages.
	DeadLinked []string
}

// Empty reports whether there is nothing to disclose.
func (r Report) Empty() bool {
	return len(r.InvalidHTTPS) == 0 && len(r.FailedUpgrades) == 0 && len(r.DeadLinked) == 0
}

// BuildReports assembles per-country reports from an indexed scan; country
// attribution comes from the set. deadLinked lists known dead-but-linked
// hostnames per country.
func BuildReports(set *resultset.Set, deadLinked map[string][]string) []Report {
	byCC := map[string]*Report{}
	get := func(cc string) *Report {
		rep, ok := byCC[cc]
		if !ok {
			rep = &Report{Country: cc}
			byCC[cc] = rep
		}
		return rep
	}
	for _, h := range set.InvalidHosts() {
		if cc := set.CountryOf(h); cc != "" {
			get(cc).InvalidHTTPS = append(get(cc).InvalidHTTPS, h)
		}
	}
	for _, i := range set.FailedUpgrades() {
		h := set.At(i).Hostname
		if cc := set.CountryOf(h); cc != "" {
			get(cc).FailedUpgrades = append(get(cc).FailedUpgrades, h)
		}
	}
	for cc, hosts := range deadLinked {
		if len(hosts) > 0 {
			get(cc).DeadLinked = append(get(cc).DeadLinked, hosts...)
		}
	}
	out := make([]Report, 0, len(byCC))
	for _, rep := range byCC {
		sort.Strings(rep.InvalidHTTPS)
		sort.Strings(rep.FailedUpgrades)
		sort.Strings(rep.DeadLinked)
		out = append(out, *rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Country < out[j].Country })
	return out
}

// Delivery is the outcome of emailing one registrar.
type Delivery struct {
	Country string
	// Delivered marks successful delivery (possibly after the retry to
	// the administrative contact).
	Delivered bool
	// BouncedFirst marks an initial bounce from the technical contact.
	BouncedFirst bool
	// RetrySucceeded marks a successful administrative-contact retry.
	RetrySucceeded bool
	// Response is the registrar's reaction.
	Response ResponseKind
}

// CampaignResult aggregates the disclosure campaign.
type CampaignResult struct {
	// Reports are the disclosures built, one per country with findings.
	Reports []Report
	// SkippedAllValid lists countries skipped because every detected host
	// already had https (9 in the paper).
	SkippedAllValid []string
	// SkippedNoHosts lists countries with no hostnames at disclosure time.
	SkippedNoHosts []string
	// SkippedTerritories lists dependent territories excluded from the
	// campaign (the white bands of Figure 13).
	SkippedTerritories []string
	// Deliveries maps country to delivery outcome.
	Deliveries map[string]Delivery
	// EmailsSent, Delivered, Bounced, RetriedOK, AutoAcks, Supportive and
	// Negative summarize the §7.2 accounting.
	EmailsSent int
	Delivered  int
	Bounced    int
	RetriedOK  int
	AutoAcks   int
	Supportive int
	Negative   int
}

// ResponseRate is the share of delivered reports with a proactive reply
// (paper: ~22%).
func (c *CampaignResult) ResponseRate() float64 {
	if c.Delivered == 0 {
		return 0
	}
	replied := 0
	for _, d := range c.Deliveries {
		if d.Delivered && d.Response != NoResponse && d.Response != AutoAck {
			replied++
		}
	}
	return float64(replied) / float64(c.Delivered)
}

// Campaign runs the disclosure: one email per sovereign country with
// findings. Response behaviour follows Figure 13's population-rank pattern:
// the most populous countries are the least communicative, the medium and
// small ones respond far more.
func Campaign(reports []Report, r *rand.Rand) *CampaignResult {
	res := &CampaignResult{Deliveries: map[string]Delivery{}}
	for _, t := range geo.Territories() {
		res.SkippedTerritories = append(res.SkippedTerritories, t.Code)
	}
	for _, rep := range reports {
		c, ok := geo.ByCode(rep.Country)
		if !ok || c.Territory {
			continue
		}
		if len(rep.InvalidHTTPS) == 0 {
			// Nothing broken to disclose: the paper skipped the nine
			// countries with https on every detected hostname.
			res.SkippedAllValid = append(res.SkippedAllValid, rep.Country)
			continue
		}
		res.Reports = append(res.Reports, rep)
		res.EmailsSent++
		d := Delivery{Country: rep.Country}

		// ~4% of first sends bounce; retries to the admin contact succeed
		// about half the time (§7.2: 7 bounced, 3 recovered).
		if r.Float64() < 0.04 {
			d.BouncedFirst = true
			res.Bounced++
			if r.Float64() < 0.45 {
				d.RetrySucceeded = true
				d.Delivered = true
				res.RetriedOK++
			}
		} else {
			d.Delivered = true
		}
		if d.Delivered {
			res.Delivered++
			d.Response = respond(c, r)
			switch {
			case d.Response == AutoAck:
				res.AutoAcks++
			case d.Response.Supportive():
				res.Supportive++
			case d.Response == Negative:
				res.Negative++
			}
		}
		res.Deliveries[rep.Country] = d
	}
	sort.Strings(res.SkippedAllValid)
	sort.Strings(res.SkippedTerritories)
	return res
}

// respond models Figure 13: response probability by population rank band.
func respond(c geo.Country, r *rand.Rand) ResponseKind {
	rank, _ := geo.PopulationRank(c.Code)
	var pReply float64
	switch {
	case rank <= 50:
		pReply = 0.08 // the most populous registrars rarely reply
	case rank <= 100:
		pReply = 0.38 // the dense green band of Figure 13
	case rank <= 200:
		pReply = 0.18
	default:
		pReply = 0.36 // small countries respond well
	}
	if r.Float64() >= pReply {
		if r.Float64() < 0.035 {
			return AutoAck
		}
		return NoResponse
	}
	switch x := r.Float64(); {
	case x < 0.08:
		return ProvidedContacts
	case x < 0.42:
		return Redirected
	case x < 0.50:
		return WhoisPointer
	case x < 0.53:
		return Negative
	default:
		return Redirected
	}
}

// Effectiveness summarizes the follow-up scan (§7.2.2).
type Effectiveness struct {
	// PreviouslyInvalid is the re-scanned population.
	PreviouslyInvalid int
	// Fixed now serve valid https.
	Fixed int
	// Unreachable disappeared entirely.
	Unreachable int
	// StillInvalid continue serving broken certificates.
	StillInvalid int
}

// ImprovementOptimistic counts removals as fixes (paper: 18.7%).
func (e Effectiveness) ImprovementOptimistic() float64 {
	if e.PreviouslyInvalid == 0 {
		return 0
	}
	return float64(e.Fixed+e.Unreachable) / float64(e.PreviouslyInvalid)
}

// ImprovementConservative counts only certificate fixes (paper: 8.3%).
func (e Effectiveness) ImprovementConservative() float64 {
	if e.PreviouslyInvalid == 0 {
		return 0
	}
	return float64(e.Fixed) / float64(e.PreviouslyInvalid)
}

// MeasureEffectiveness compares the follow-up scan of the previously
// invalid hosts with their earlier state. Both sets must cover the same
// host list in the same order.
func MeasureEffectiveness(before, after *resultset.Set) (Effectiveness, error) {
	if before.Len() != after.Len() {
		return Effectiveness{}, fmt.Errorf("notify: scan lengths differ: %d vs %d", before.Len(), after.Len())
	}
	var e Effectiveness
	for i := 0; i < before.Len(); i++ {
		if !before.At(i).Category().IsInvalidHTTPS() {
			continue
		}
		e.PreviouslyInvalid++
		switch {
		case !after.At(i).Available:
			e.Unreachable++
		case after.At(i).ValidHTTPS():
			e.Fixed++
		default:
			e.StillInvalid++
		}
	}
	return e, nil
}
