// Package scanner implements the measurement pipeline of §4.2.3: for every
// hostname it resolves DNS, probes port 80 and port 443, performs the full
// TLS handshake, retrieves the certificate chain together with the peer
// certificate, validates the chain against the configured trust store, and
// classifies failures into the paper's Table 2 taxonomy. Hosts failing to
// connect are retried up to three times before being declared unavailable.
package scanner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/dnssim"
	"repro/internal/hosting"
	"repro/internal/httpsim"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/tlssim"
	"repro/internal/truststore"
	"repro/internal/verify"
)

// Dialer abstracts the network (satisfied by *simnet.Network).
type Dialer interface {
	Dial(ctx context.Context, fromVantage string, ep netip.AddrPort) (net.Conn, error)
}

// Resolver abstracts DNS (satisfied by *dnssim.Zone).
type Resolver interface {
	LookupA(hostname string) ([]netip.Addr, error)
}

// FirstAResolver is an optional Resolver fast path: resolvers that can
// hand back the one address the pipeline dials without allocating the
// full record set.
type FirstAResolver interface {
	LookupFirstA(hostname string) (netip.Addr, error)
}

// FirstA resolves the address the pipeline dials (the first A record,
// §5.4), using the resolver's allocation-free fast path when it has one.
// A zero Addr with nil error means the name resolved to no addresses.
func FirstA(r Resolver, hostname string) (netip.Addr, error) {
	if f, ok := r.(FirstAResolver); ok {
		return f.LookupFirstA(hostname)
	}
	addrs, err := r.LookupA(hostname)
	if err != nil || len(addrs) == 0 {
		return netip.Addr{}, err
	}
	return addrs[0], nil
}

// Config tunes a scan.
type Config struct {
	// Vantage labels the scanning location (relevant to censorship).
	Vantage string
	// Concurrency bounds parallel host probes.
	Concurrency int
	// Retries is the number of re-attempts after connection failures; the
	// paper used 3.
	Retries int
	// Timeout bounds each connection attempt.
	Timeout time.Duration
	// Store is the trust store chains are validated against; the paper's
	// default is the conservative Apple-shaped store.
	Store *truststore.Store
	// Now is the scan time for certificate validity.
	Now time.Time
	// Clock paces retry backoff. Simulation uses a collapsing virtual
	// clock (backoff advances simulated time only); production would use
	// simclock.Real. nil defaults to a fresh virtual clock.
	Clock simclock.Clock
	// BackoffBase is the delay before the first re-attempt; each further
	// re-attempt doubles it (plus deterministic jitter). Zero disables
	// backoff pacing.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff delay.
	BackoffMax time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// HostBudget caps the (simulated) time charged to one port of one
	// host across retries — timed-out attempts plus backoff waits. Zero
	// means unlimited, mirroring the paper's plain 3-retry policy.
	HostBudget time.Duration
	// Breaker, when non-nil, stops hammering a hosting provider after
	// repeated consecutive dial timeouts; affected hosts record
	// ExcCircuitOpen.
	Breaker *Breaker
	// Journal, when non-nil, checkpoints every completed result so an
	// interrupted ScanAll resumes from the last completed host.
	Journal *Journal
	// VerifyCache, when non-nil, memoizes the chain-structural half of
	// verification across hosts that present the same chain (the long tail
	// of shared wildcards and internal CAs). Scan results are identical
	// with and without it.
	VerifyCache *verify.Cache
	// ChainCache, when non-nil, deduplicates parsed certificate chains
	// across handshakes presenting the same payload.
	ChainCache *cert.ChainCache
}

// DefaultConfig mirrors the paper's scanning posture.
func DefaultConfig(store *truststore.Store, now time.Time) Config {
	return Config{
		Vantage:     "lab",
		Concurrency: 64,
		Retries:     3,
		Timeout:     5 * time.Second,
		Store:       store,
		Now:         now,
		Clock:       simclock.NewVirtual(now),
		BackoffBase: 500 * time.Millisecond,
		BackoffMax:  8 * time.Second,
		VerifyCache: verify.NewCache(),
		ChainCache:  cert.NewChainCache(),
	}
}

// Scanner probes hostnames over the (simulated) Internet.
type Scanner struct {
	Dialer   Dialer
	Resolver Resolver
	Class    *hosting.Classifier
	Cfg      Config
}

// New assembles a scanner.
func New(d Dialer, r Resolver, class *hosting.Classifier, cfg Config) *Scanner {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewVirtual(cfg.Now)
	}
	if class == nil {
		class = hosting.DefaultClassifier()
	}
	return &Scanner{Dialer: d, Resolver: r, Class: class, Cfg: cfg}
}

// Exception classifies TLS/connection-level failures (the "Exceptions"
// block of Table 2).
type Exception int

// Exception kinds.
const (
	ExcNone Exception = iota
	ExcUnsupportedProtocol
	ExcTimeout
	ExcRefused
	ExcReset
	ExcWrongVersion
	ExcAlertInternal
	ExcAlertHandshake
	ExcAlertProtoVersion
	ExcOther
	// ExcCircuitOpen marks a host the scanner deliberately skipped because
	// its hosting provider's circuit breaker was open — a degraded result,
	// not a measurement of the host itself.
	ExcCircuitOpen
)

// String names the exception the way Table 2 does.
func (e Exception) String() string {
	switch e {
	case ExcNone:
		return "none"
	case ExcUnsupportedProtocol:
		return "unsupported SSL protocol"
	case ExcTimeout:
		return "timed out"
	case ExcRefused:
		return "connection refused"
	case ExcReset:
		return "connection reset by peer"
	case ExcWrongVersion:
		return "wrong SSL version number"
	case ExcAlertInternal:
		return "TLSv1 alert internal error"
	case ExcAlertHandshake:
		return "SSLv3 alert handshake failure"
	case ExcAlertProtoVersion:
		return "TLSv1 alert internal protocol version"
	case ExcOther:
		return "other exception"
	case ExcCircuitOpen:
		return "circuit breaker open"
	default:
		return ""
	}
}

// Result is the outcome of scanning one hostname.
type Result struct {
	Hostname string
	// IP is the first resolved A record (§5.4 uses the first address).
	IP netip.Addr
	// DNSError marks resolution failures.
	DNSError bool
	// Available means the host produced a 200 on http or https, or
	// advertised an https upgrade.
	Available bool
	// ServesHTTP means a 200 over plain http.
	ServesHTTP bool
	// RedirectsToHTTPS means port 80 upgraded the client.
	RedirectsToHTTPS bool
	// AttemptsHTTPS means port 443 engaged at the TLS level or an upgrade
	// pointed there.
	AttemptsHTTPS bool
	// ServesHTTPS means a 200 was retrieved over a completed handshake.
	ServesHTTPS bool
	// HSTS reports a Strict-Transport-Security header on the https reply.
	HSTS bool
	// TLSVersion is the negotiated protocol version, when the handshake
	// completed.
	TLSVersion tlssim.Version
	// Chain is the retrieved certificate chain, leaf first.
	Chain []*cert.Certificate
	// Verify is the chain-validation outcome (valid when Chain non-nil).
	Verify verify.Result
	// Exception records TLS/connection-level failures on 443.
	Exception Exception
	// ExceptionDetail carries the underlying error text.
	ExceptionDetail string
	// Provider and HostKind classify the hosting of the resolved IP.
	Provider string
	HostKind hosting.Kind
	// Attempts counts connection attempts made on port 443.
	Attempts int
}

// HasHTTPS reports whether the host attempts https at all — the paper's
// "content served on HTTPS" population includes hosts whose handshakes
// fail.
func (r *Result) HasHTTPS() bool { return r.AttemptsHTTPS }

// ValidHTTPS reports a completed handshake with a fully valid chain.
func (r *Result) ValidHTTPS() bool {
	return len(r.Chain) > 0 && r.Verify.Valid()
}

// Scan probes a single hostname.
func (s *Scanner) Scan(ctx context.Context, hostname string) Result {
	res := Result{Hostname: hostname}
	ip, err := FirstA(s.Resolver, hostname)
	if err != nil || !ip.IsValid() {
		res.DNSError = true
		if errors.Is(err, dnssim.ErrServFail) {
			res.ExceptionDetail = err.Error()
		}
		return res
	}
	res.IP = ip
	res.Provider, res.HostKind = s.Class.Classify(res.IP)

	// Ports 80 and 443 are probed concurrently; the 443 outcome is staged
	// in out and merged after the join, because how it is reported depends
	// on what port 80 said (a refused 443 is only an exception when port 80
	// advertised an https upgrade). With a circuit breaker configured the
	// probes run sequentially instead: the breaker consumes dial outcomes
	// in order, and that order is part of its contract. Virtual-clock scans
	// also probe sequentially: simulated waiting is collapsed, so probe
	// concurrency cannot hide any latency — the per-host goroutine would be
	// pure scheduling and stack-growth overhead. Results are identical
	// either way: the probes touch different endpoints (ports 80 and 443),
	// so each port's dial sequence is unchanged.
	var out httpsOutcome
	_, virtual := s.Cfg.Clock.(*simclock.Virtual)
	if s.Cfg.Breaker != nil || virtual {
		s.probeHTTP(ctx, &res)
		s.probeHTTPS(ctx, &res, &out)
	} else {
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.probeHTTPS(ctx, &res, &out)
		}()
		s.probeHTTP(ctx, &res)
		<-done
	}
	s.mergeHTTPS(&res, &out)

	res.Available = res.ServesHTTP || res.ServesHTTPS || res.RedirectsToHTTPS ||
		len(res.Chain) > 0 || res.Exception.ServerResponded()
	return res
}

// ServerResponded reports whether the exception implies the server engaged
// at the TLS layer (as opposed to connection-level silence), which makes
// the host count as reachable in the paper's accounting.
func (e Exception) ServerResponded() bool {
	switch e {
	case ExcUnsupportedProtocol, ExcWrongVersion, ExcAlertInternal,
		ExcAlertHandshake, ExcAlertProtoVersion:
		return true
	default:
		// Timeouts, refusals, resets, open breakers, and unclassifiable
		// failures are connection-level silence.
		return false
	}
}

func (s *Scanner) probeHTTP(ctx context.Context, res *Result) {
	conn, err := s.dialRetry(ctx, netip.AddrPortFrom(res.IP, 80), nil, s.breakerKey(res))
	if err != nil {
		return
	}
	defer conn.Close()
	s.applyDeadline(conn)
	resp, err := httpsim.Get(conn, res.Hostname, "/")
	if err != nil {
		return
	}
	switch {
	case resp.StatusCode == 200:
		res.ServesHTTP = true
	case resp.IsRedirect():
		loc := resp.Location()
		if len(loc) >= 8 && loc[:8] == "https://" {
			res.RedirectsToHTTPS = true
			res.AttemptsHTTPS = true
		}
	}
}

// httpsOutcome stages everything the 443 probe learned. It is merged into
// the Result only after the port-80 probe has finished, so the two probes
// can run concurrently without racing on Result fields.
type httpsOutcome struct {
	circuitOpen bool
	dialFailed  bool
	engaged     bool // the TLS layer was reached (handshake attempted)
	exception   Exception
	detail      string

	version     tlssim.Version
	chain       []*cert.Certificate
	verify      verify.Result
	servesHTTPS bool
	hsts        bool
}

// probeHTTPS probes port 443 into out. It writes only out and, via
// dialRetry, res.Attempts — a field nothing else touches — so it is safe to
// run alongside probeHTTP.
func (s *Scanner) probeHTTPS(ctx context.Context, res *Result, out *httpsOutcome) {
	conn, err := s.dialRetry(ctx, netip.AddrPortFrom(res.IP, 443), res, s.breakerKey(res))
	if err != nil {
		if errors.Is(err, ErrCircuitOpen) {
			out.circuitOpen = true
			out.detail = err.Error()
			return
		}
		out.dialFailed = true
		out.exception = classifyConnErr(err)
		out.detail = err.Error()
		return
	}
	defer conn.Close()
	s.applyDeadline(conn)

	ccfg := tlssim.DefaultClientConfig(res.Hostname)
	ccfg.HandshakeTimeout = s.Cfg.Timeout
	ccfg.Clock = s.Cfg.Clock
	ccfg.ChainCache = s.Cfg.ChainCache
	tc, err := tlssim.ClientHandshake(conn, ccfg)
	out.engaged = true
	if err != nil {
		out.exception, out.detail = classifyTLSErr(err)
		return
	}
	state := tc.ConnectionState()
	out.version = state.Version
	out.chain = state.Chain
	out.verify = (&verify.Verifier{Store: s.Cfg.Store, Now: s.Cfg.Now, Cache: s.Cfg.VerifyCache}).
		Verify(state.Chain, res.Hostname)

	resp, err := httpsim.Get(tc, res.Hostname, "/")
	if err == nil && resp.StatusCode == 200 {
		out.servesHTTPS = true
		out.hsts = resp.HSTS()
	}
}

// mergeHTTPS folds the staged 443 outcome into the result, reproducing the
// sequential reporting rules exactly.
func (s *Scanner) mergeHTTPS(res *Result, out *httpsOutcome) {
	switch {
	case out.circuitOpen:
		// Deliberately skipped, not measured: record the degradation
		// without claiming anything about the host's TLS posture.
		res.Exception = ExcCircuitOpen
		res.ExceptionDetail = out.detail
	case out.dialFailed:
		// Connection-level failure. A plain refusal with no upgrade hint
		// means the host simply does not do https.
		if out.exception == ExcRefused && !res.RedirectsToHTTPS {
			return
		}
		res.AttemptsHTTPS = true
		res.Exception = out.exception
		res.ExceptionDetail = out.detail
	case out.engaged:
		res.AttemptsHTTPS = true
		res.Exception = out.exception
		res.ExceptionDetail = out.detail
		res.TLSVersion = out.version
		res.Chain = out.chain
		res.Verify = out.verify
		res.ServesHTTPS = out.servesHTTPS
		res.HSTS = out.hsts
	}
}

// ErrCircuitOpen is returned by dialRetry when the endpoint's provider
// circuit breaker is open and the dial was skipped entirely.
var ErrCircuitOpen = errors.New("scanner: circuit breaker open")

// dialRetry dials with the configured retry budget, mirroring the paper's
// three re-queues on connection failure, with exponential backoff between
// attempts. Deterministic failures (national firewall blocks) are not
// retried — re-dialing a censored route cannot succeed and only burns scan
// budget. When a circuit breaker is configured and open for the
// endpoint's provider, the dial is skipped with ErrCircuitOpen.
func (s *Scanner) dialRetry(ctx context.Context, ep netip.AddrPort, res *Result, key string) (net.Conn, error) {
	var lastErr error
	var spent time.Duration
	attempts := 1 + s.Cfg.Retries
	for i := 0; i < attempts; i++ {
		if s.Cfg.Breaker != nil && !s.Cfg.Breaker.Allow(key) {
			if lastErr != nil {
				// The breaker tripped mid-retry; report the real failure.
				return nil, lastErr
			}
			return nil, fmt.Errorf("%w: provider %q", ErrCircuitOpen, key)
		}
		if res != nil {
			res.Attempts++
		}
		// Bound the dial by wall time only under a real clock. Virtual-clock
		// dials never block on wall time — simulated timeouts are modeled at
		// the fault layer (FaultTimeout fails immediately) — so the deadline
		// context would just be a dead timer allocated per attempt; and as
		// with applyDeadline, a wall deadline expiring mid-simulation would
		// fire scheduling-dependently and break determinism.
		dctx := ctx
		var cancel context.CancelFunc
		if s.Cfg.Timeout > 0 {
			if _, virtual := s.Cfg.Clock.(*simclock.Virtual); !virtual {
				dctx, cancel = context.WithTimeout(ctx, s.Cfg.Timeout)
			}
		}
		conn, err := s.Dialer.Dial(dctx, s.Cfg.Vantage, ep)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if s.Cfg.Breaker != nil {
				s.Cfg.Breaker.Success(key)
			}
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, simnet.ErrFirewalled) {
			// Censorship, not a provider outage: no breaker signal, and
			// re-dialing a censored route cannot succeed.
			break
		}
		if s.Cfg.Breaker != nil {
			if simnet.IsTimeout(err) {
				s.Cfg.Breaker.Failure(key)
			} else {
				// A refusal or reset is an answer: the provider's network is
				// up, whatever this host thinks of us. Only silence counts
				// toward an outage — otherwise every http-only host's closed
				// port 443 would open the circuit for its whole provider.
				s.Cfg.Breaker.Success(key)
			}
		}
		if i+1 == attempts {
			break
		}
		delay := s.backoff(ep, i)
		if simnet.IsTimeout(err) {
			spent += s.Cfg.Timeout
		}
		spent += delay
		if s.Cfg.HostBudget > 0 && spent > s.Cfg.HostBudget {
			break
		}
		if delay > 0 {
			if err := s.Cfg.Clock.Sleep(ctx, delay); err != nil {
				return nil, err
			}
		}
	}
	return nil, lastErr
}

// backoff computes the delay before re-attempt number attempt (0-based):
// exponential doubling from BackoffBase, capped at BackoffMax, scaled by a
// deterministic jitter factor in [0.5, 1.5) derived from the scan seed and
// the endpoint — decorrelating retries across hosts without an RNG shared
// between goroutines.
func (s *Scanner) backoff(ep netip.AddrPort, attempt int) time.Duration {
	base := s.Cfg.BackoffBase
	if base <= 0 {
		return 0
	}
	if attempt > 30 {
		attempt = 30
	}
	d := base << uint(attempt)
	if s.Cfg.BackoffMax > 0 && d > s.Cfg.BackoffMax {
		d = s.Cfg.BackoffMax
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(s.Cfg.Seed >> (8 * i))
		buf[8+i] = byte(int64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	if b, err := ep.MarshalBinary(); err == nil {
		h.Write(b)
	}
	frac := float64(h.Sum64()>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.5 + frac))
}

// breakerKey groups endpoints for the circuit breaker: the hosting
// provider when classified, otherwise the host's /24 prefix.
func (s *Scanner) breakerKey(res *Result) string {
	if res.Provider != "" {
		return res.Provider
	}
	if !res.IP.IsValid() {
		return ""
	}
	p, err := res.IP.Prefix(24)
	if err != nil {
		return res.IP.String()
	}
	return p.String()
}

// applyDeadline bounds post-dial I/O using the configured clock rather
// than wall time, so real-clock scans time out on the same timeline the
// retry/backoff machinery runs on. Virtual-clock runs set no deadline at
// all: the collapsing clock is advanced by *other* workers' sleeps, so an
// absolute deadline derived from it would expire scheduling-dependently
// and break determinism — simulated timeouts are modeled at the dial/fault
// layer instead.
func (s *Scanner) applyDeadline(conn net.Conn) {
	if s.Cfg.Timeout <= 0 {
		return
	}
	if _, virtual := s.Cfg.Clock.(*simclock.Virtual); virtual {
		return
	}
	conn.SetDeadline(s.Cfg.Clock.Now().Add(s.Cfg.Timeout))
}

func classifyConnErr(err error) Exception {
	switch {
	case simnet.IsTimeout(err):
		return ExcTimeout
	case simnet.IsRefused(err):
		return ExcRefused
	case simnet.IsReset(err):
		return ExcReset
	default:
		return ExcOther
	}
}

func classifyTLSErr(err error) (Exception, string) {
	var alert tlssim.AlertError
	switch {
	case errors.Is(err, tlssim.ErrUnsupportedProtocol):
		return ExcUnsupportedProtocol, err.Error()
	case errors.Is(err, tlssim.ErrWrongVersionNumber):
		return ExcWrongVersion, err.Error()
	case errors.As(err, &alert):
		switch {
		case alert.Description == tlssim.AlertInternalError:
			return ExcAlertInternal, alert.Error()
		case alert.Description == tlssim.AlertHandshakeFailure:
			return ExcAlertHandshake, alert.Error()
		case alert.Description == tlssim.AlertProtocolVersion:
			return ExcAlertProtoVersion, alert.Error()
		}
		return ExcOther, alert.Error()
	case simnet.IsTimeout(err):
		return ExcTimeout, err.Error()
	case simnet.IsReset(err):
		return ExcReset, err.Error()
	case simnet.IsRefused(err):
		return ExcRefused, err.Error()
	default:
		return ExcOther, err.Error()
	}
}

// ScanAll probes every hostname with bounded concurrency, preserving input
// order in the result slice. Hosts skipped (context cancellation, breaker)
// still carry their Hostname, so downstream analysis never sees anonymous
// rows. When a Journal is configured, hosts it already holds are restored
// without re-scanning and every newly completed host is checkpointed, so
// an interrupted run resumes from the last completed host.
//
// ScanAll is a thin collector over ScanStream. Callers that aggregate
// large corpora should prefer the sharded path (resultset.ScanSharded,
// built on Partition + ScanShard): it feeds one index builder per shard
// with no global in-order window and merges deterministically. ScanStream
// remains the streaming entry point when a single in-order consumer is
// required.
func (s *Scanner) ScanAll(ctx context.Context, hostnames []string) []Result {
	results := make([]Result, 0, len(hostnames))
	s.ScanStream(ctx, hostnames, func(r Result) { results = append(results, r) })
	return results
}

// streamItem carries one completed scan to the in-order emitter.
type streamItem struct {
	i int
	r Result
}

// ScanStream probes every hostname with bounded concurrency and delivers
// each result to fn in input order, as soon as it and all of its
// predecessors have finished — so an aggregation layer builds indexes
// concurrently with the scan instead of buffering the whole corpus.
// fn runs on the calling goroutine and needs no locking.
//
// Semantics match ScanAll exactly: journaled hosts are restored without
// re-scanning, newly completed hosts are checkpointed, and after context
// cancellation the remaining unscanned hosts are delivered as
// hostname-only placeholder results. Out-of-order completions are held in
// a reorder window bounded by a small multiple of the worker count, so
// memory stays O(workers), not O(hosts).
//
// The reorder window serializes every consumer behind the slowest
// in-flight probe; at large scale prefer resultset.ScanSharded, which
// partitions the host list (Partition) and feeds one builder per shard
// directly (ScanShard) with no global in-order bottleneck.
func (s *Scanner) ScanStream(ctx context.Context, hostnames []string, fn func(Result)) {
	journal := s.Cfg.Journal

	// A fixed pool of workers drains an index channel — no goroutine churn
	// per host, and memory stays bounded by the pool size rather than the
	// input length.
	workers := min(s.Cfg.Concurrency, len(hostnames))
	if workers < 1 {
		workers = 1
	}
	// window caps how many results may be in flight past the emitter: the
	// feeder blocks once the reorder buffer is this full.
	window := workers * 4
	idx := make(chan int)
	out := make(chan streamItem, window)
	sem := make(chan struct{}, window)

	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for i := range idx {
				r := s.Scan(ctx, hostnames[i])
				if journal != nil && ctx.Err() == nil {
					// Only completed scans are checkpointed; a scan degraded
					// by cancellation must be redone on resume.
					journal.Append(r)
				}
				out <- streamItem{i, r}
			}
		}()
	}

	// The feeder mirrors ScanAll's dispatch loop: restore journaled hosts
	// inline, stop dispatching at the first non-journaled host after
	// cancellation, and emit the rest as placeholders.
	go func() {
		for i, h := range hostnames {
			if journal != nil {
				if prev, ok := journal.Lookup(h); ok {
					sem <- struct{}{}
					out <- streamItem{i, prev}
					continue
				}
			}
			if ctx.Err() != nil {
				for j := i; j < len(hostnames); j++ {
					sem <- struct{}{}
					out <- streamItem{j, Result{Hostname: hostnames[j]}}
				}
				break
			}
			sem <- struct{}{}
			//lint:allow chanleak workers drain idx until close, and this feeder closes it on every path (including cancellation, via the loop break above)
			idx <- i
		}
		close(idx)
	}()

	// Emit in input order from the reorder buffer, on this goroutine.
	pending := make(map[int]Result, window)
	for next := 0; next < len(hostnames); {
		item := <-out
		pending[item.i] = item.r
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-sem
			fn(r)
			next++
		}
	}
	wg.Wait()
}
