package scanner

import "repro/internal/verify"

// Category buckets a scan result the way Table 2 does.
type Category int

// Table 2 categories.
const (
	CatUnavailable Category = iota
	CatHTTPOnly
	CatValid
	CatHostnameMismatch
	CatLocalIssuer
	CatSelfSigned
	CatSelfSignedChain
	CatExpired
	CatExcSSLProto
	CatExcTimeout
	CatExcRefused
	CatExcReset
	CatExcWrongVersion
	CatExcAlertInternal
	CatExcAlertHandshake
	CatExcAlertProtoVersion
	CatOther
)

var categoryNames = map[Category]string{
	CatUnavailable:          "Unavailable",
	CatHTTPOnly:             "Content served on HTTP only",
	CatValid:                "Valid HTTPS Certificates",
	CatHostnameMismatch:     "Hostname Mismatch",
	CatLocalIssuer:          "Unable to get local issuer cert",
	CatSelfSigned:           "Self-signed certificate",
	CatSelfSignedChain:      "Self-signed certificate in chain",
	CatExpired:              "Certificate Expired",
	CatExcSSLProto:          "Unsupported SSL Protocol",
	CatExcTimeout:           "Timed out",
	CatExcRefused:           "Connection refused",
	CatExcReset:             "Connection Reset by peer",
	CatExcWrongVersion:      "Wrong SSL Version Number",
	CatExcAlertInternal:     "TLSv1 Alert Internal Error",
	CatExcAlertHandshake:    "SSLv3 Alert Handshake Failure",
	CatExcAlertProtoVersion: "TLSv1 Alert Internal Proto. V.",
	CatOther:                "Others",
}

// String names the category as in Table 2.
func (c Category) String() string { return categoryNames[c] }

// IsInvalidHTTPS reports whether the category counts toward "Invalid HTTPS
// Certificates".
func (c Category) IsInvalidHTTPS() bool {
	switch c {
	case CatUnavailable, CatHTTPOnly, CatValid:
		return false
	default:
		// Every other category — certificate errors, the exception block,
		// and Others — counts as invalid https.
		return true
	}
}

// IsException reports whether the category belongs to the Exceptions block.
func (c Category) IsException() bool {
	switch c {
	case CatExcSSLProto, CatExcTimeout, CatExcRefused, CatExcReset,
		CatExcWrongVersion, CatExcAlertInternal, CatExcAlertHandshake,
		CatExcAlertProtoVersion:
		return true
	default:
		return false
	}
}

// Category classifies the result.
func (r *Result) Category() Category {
	if !r.Available {
		return CatUnavailable
	}
	if !r.AttemptsHTTPS {
		return CatHTTPOnly
	}
	if r.Exception != ExcNone {
		switch r.Exception {
		case ExcUnsupportedProtocol:
			return CatExcSSLProto
		case ExcTimeout:
			return CatExcTimeout
		case ExcRefused:
			return CatExcRefused
		case ExcReset:
			return CatExcReset
		case ExcWrongVersion:
			return CatExcWrongVersion
		case ExcAlertInternal:
			return CatExcAlertInternal
		case ExcAlertHandshake:
			return CatExcAlertHandshake
		case ExcAlertProtoVersion:
			return CatExcAlertProtoVersion
		default:
			// ExcCircuitOpen and genuinely unclassifiable failures both
			// land in Others: the host engaged but was not measured.
			return CatOther
		}
	}
	if len(r.Chain) == 0 {
		return CatOther
	}
	switch r.Verify.Code {
	case verify.OK:
		return CatValid
	case verify.HostnameMismatch:
		return CatHostnameMismatch
	case verify.UnableToGetLocalIssuer:
		return CatLocalIssuer
	case verify.SelfSignedLeaf:
		return CatSelfSigned
	case verify.SelfSignedInChain:
		return CatSelfSignedChain
	case verify.CertificateExpired, verify.CertificateNotYetValid:
		return CatExpired
	default:
		return CatOther
	}
}
