package scanner_test

import (
	"fmt"
	"testing"

	"repro/internal/scanner"
)

// TestPartitionEveryHostExactlyOnce is a fuzz-style sweep of the
// partitioner: for pseudo-random host-list lengths and shard counts —
// including shards = 1, shards = len(hosts), and shards far beyond the
// host count — concatenating the shards must reproduce the input exactly
// (every host in exactly one shard, order preserved) with no empty shard.
func TestPartitionEveryHostExactlyOnce(t *testing.T) {
	// splitmix64-style generator: deterministic, no global rand.
	state := uint64(0x9e3779b97f4a7c15)
	next := func(bound int) int {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return int(z % uint64(bound))
	}

	check := func(t *testing.T, n, shards int) {
		t.Helper()
		hosts := make([]string, n)
		for i := range hosts {
			hosts[i] = fmt.Sprintf("host-%d.gov", i)
		}
		parts := scanner.Partition(hosts, shards)
		if n == 0 {
			if parts != nil {
				t.Fatalf("Partition(0 hosts, %d) = %v, want nil", shards, parts)
			}
			return
		}
		wantShards := shards
		if wantShards < 1 {
			wantShards = 1
		}
		if wantShards > n {
			wantShards = n
		}
		if len(parts) != wantShards {
			t.Fatalf("Partition(%d hosts, %d) produced %d shards, want %d", n, shards, len(parts), wantShards)
		}
		seen := 0
		for k, part := range parts {
			if len(part) == 0 {
				t.Fatalf("shard %d/%d empty for %d hosts", k, len(parts), n)
			}
			for _, h := range part {
				if h != hosts[seen] {
					t.Fatalf("host %d: got %q, want %q (n=%d shards=%d)", seen, h, hosts[seen], n, shards)
				}
				seen++
			}
		}
		if seen != n {
			t.Fatalf("shards cover %d hosts, want %d (shards=%d)", seen, n, shards)
		}
	}

	// Edge cases first.
	for _, tc := range []struct{ n, shards int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 1}, {5, 5}, {5, 6}, {5, 500}, {7, 3}, {100, 64}, {64, 100}, {3, 0}, {3, -2},
	} {
		check(t, tc.n, tc.shards)
	}
	// Randomized sweep.
	for i := 0; i < 500; i++ {
		n := next(2000)
		shards := next(3 * (n + 2))
		check(t, n, shards)
	}
}
