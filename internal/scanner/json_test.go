package scanner

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"strings"
	"testing"
)

// encodeViaReflection is the reference encoder AppendRecord must match:
// json.Encoder over the flattened Record, exactly what WriteJSONL did
// before the zero-copy rewrite.
func encodeViaReflection(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(r.ToRecord()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAppendRecordMatchesEncoder proves the zero-copy export byte-identical
// to the reflection path over the full scanned corpus — every category,
// exception and certificate shape the world produces.
func TestAppendRecordMatchesEncoder(t *testing.T) {
	results := scanAllOnce(t)
	for i := range results {
		want := encodeViaReflection(t, &results[i])
		got := results[i].AppendRecord(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s:\n got %s\nwant %s", results[i].Hostname, got, want)
		}
	}
}

// TestAppendRecordEscaping pushes hostile strings through every escaped
// field: JSON metacharacters, HTML characters, control bytes, invalid
// UTF-8, and the U+2028/U+2029 line separators.
func TestAppendRecordEscaping(t *testing.T) {
	nasty := []string{
		`plain.example.gov`,
		`quote"back\slash`,
		"tabs\tand\nnewlines\rhere",
		"ctrl\x00\x01\x1f",
		"<script>&amp;</script>",
		"invalid\xff\xfeutf8",
		"line\u2028sep\u2029pair",
		"mixed \u00e9\u4e16\u754c \U0001f512",
		strings.Repeat("long\"\\<>&\x02\u2028", 100),
		"",
	}
	for _, s := range nasty {
		r := Result{
			Hostname:  s,
			Available: true,
			Provider:  s,
			Attempts:  2,
		}
		want := encodeViaReflection(t, &r)
		got := r.AppendRecord(nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("%q:\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestAppendJSONString checks the string escaper against json.Marshal for
// a byte-level sweep of the ASCII range plus multi-byte edge cases.
func TestAppendJSONString(t *testing.T) {
	var cases []string
	for b := 0; b < 256; b++ {
		cases = append(cases, "x"+string(rune(b))+"y")
		cases = append(cases, string([]byte{byte(b)}))
	}
	cases = append(cases,
		"\u2027\u2028\u2029\u202a",
		"\ufffd already replaced",
		"trailing partial \xe2\x80",
	)
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := AppendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Fatalf("%q: got %s want %s", s, got, want)
		}
	}
}

// TestWriteJSONLMatchesEncoder proves the streamed, pooled writer emits the
// same bytes as per-record encoding, across the flush boundary.
func TestWriteJSONLMatchesEncoder(t *testing.T) {
	results := scanAllOnce(t)
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for i := range results {
		if err := enc.Encode(results[i].ToRecord()); err != nil {
			t.Fatal(err)
		}
	}
	var got bytes.Buffer
	if err := WriteJSONL(&got, results); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streamed output diverges: %d vs %d bytes", got.Len(), want.Len())
	}
	if got.Len() < jsonlFlushSize {
		t.Fatalf("corpus export (%d bytes) never crossed the flush boundary", got.Len())
	}
}

// TestAppendRecordIPField covers the unescaped fast-path fields.
func TestAppendRecordIPField(t *testing.T) {
	r := Result{
		Hostname:  "ip.example.gov",
		IP:        netip.MustParseAddr("203.0.113.9"),
		Available: true,
	}
	want := encodeViaReflection(t, &r)
	got := r.AppendRecord(nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %s want %s", got, want)
	}
}
