package scanner

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/world"
)

var (
	testWorld = world.MustBuild(world.TestConfig())
	testScan  []Result
)

func testScanner() *Scanner {
	w := testWorld
	return New(w.Net, w.DNS, w.Class, DefaultConfig(w.Stores["apple"], w.ScanTime))
}

// scanAllOnce scans the worldwide list once, caching across tests.
func scanAllOnce(t *testing.T) []Result {
	t.Helper()
	if testScan == nil {
		testScan = testScanner().ScanAll(context.Background(), testWorld.GovHosts)
	}
	return testScan
}

func TestScanRecoversInjectedClasses(t *testing.T) {
	results := scanAllOnce(t)
	want := map[world.ErrorClass]Category{
		world.ClassValid:                CatValid,
		world.ClassNone:                 CatHTTPOnly,
		world.ClassHostnameMismatch:     CatHostnameMismatch,
		world.ClassLocalIssuer:          CatLocalIssuer,
		world.ClassSelfSigned:           CatSelfSigned,
		world.ClassSelfSignedChain:      CatSelfSignedChain,
		world.ClassExpired:              CatExpired,
		world.ClassExcSSLProto:          CatExcSSLProto,
		world.ClassExcTimeout:           CatExcTimeout,
		world.ClassExcRefused:           CatExcRefused,
		world.ClassExcReset:             CatExcReset,
		world.ClassExcWrongVersion:      CatExcWrongVersion,
		world.ClassExcAlertInternal:     CatExcAlertInternal,
		world.ClassExcAlertHandshake:    CatExcAlertHandshake,
		world.ClassExcAlertProtoVersion: CatExcAlertProtoVersion,
	}
	agree := map[world.ErrorClass][2]int{} // [agreed, total]
	for i, res := range results {
		site := testWorld.Sites[testWorld.GovHosts[i]]
		wantCat, ok := want[site.Injected]
		if !ok {
			continue
		}
		c := agree[site.Injected]
		c[1]++
		if res.Category() == wantCat {
			c[0]++
		}
		agree[site.Injected] = c
	}
	for class, c := range agree {
		if c[1] == 0 {
			continue
		}
		rate := float64(c[0]) / float64(c[1])
		if rate < 0.93 {
			t.Errorf("class %v: scanner recovered %.1f%% of %d sites", class, 100*rate, c[1])
		}
	}
	if len(agree) < 12 {
		t.Errorf("only %d injected classes observed", len(agree))
	}
}

func TestScanAvailability(t *testing.T) {
	results := scanAllOnce(t)
	available := 0
	for _, r := range results {
		if r.Available {
			available++
		}
	}
	// Every worldwide-list host is reachable by construction.
	if frac := float64(available) / float64(len(results)); frac < 0.99 {
		t.Errorf("available fraction = %.3f, want ~1.0", frac)
	}
}

func TestScanUnreachableHosts(t *testing.T) {
	s := testScanner()
	results := s.ScanAll(context.Background(), testWorld.UnreachableHosts)
	for i, r := range results {
		if r.Available {
			t.Errorf("unreachable host %q scanned as available", testWorld.UnreachableHosts[i])
		}
	}
}

func TestScanNXDomain(t *testing.T) {
	s := testScanner()
	r := s.Scan(context.Background(), "definitely-not-a-host.gov.zz")
	if !r.DNSError || r.Available {
		t.Errorf("result = %+v, want DNS error", r)
	}
	if r.Category() != CatUnavailable {
		t.Errorf("category = %v", r.Category())
	}
}

func TestScanRetriesCounted(t *testing.T) {
	s := testScanner()
	// A fault-refused site gets 1+Retries attempts on 443.
	for _, h := range testWorld.GovHosts {
		site := testWorld.Sites[h]
		if site.Injected == world.ClassExcTimeout {
			r := s.Scan(context.Background(), h)
			if r.Attempts != 1+s.Cfg.Retries {
				t.Errorf("attempts = %d, want %d", r.Attempts, 1+s.Cfg.Retries)
			}
			return
		}
	}
	t.Skip("no timeout-fault site at this scale")
}

func TestScanHSTSDetected(t *testing.T) {
	results := scanAllOnce(t)
	found := false
	for i, r := range results {
		site := testWorld.Sites[testWorld.GovHosts[i]]
		if site.HSTS && r.ValidHTTPS() {
			if !r.HSTS {
				t.Errorf("HSTS header not observed on %q", r.Hostname)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no HSTS site at this scale")
	}
}

func TestScanHostingClassification(t *testing.T) {
	results := scanAllOnce(t)
	for i, r := range results {
		site := testWorld.Sites[testWorld.GovHosts[i]]
		if r.DNSError {
			continue
		}
		if r.HostKind != site.HostKind {
			t.Errorf("%q hosting = %v, world says %v", r.Hostname, r.HostKind, site.HostKind)
		}
	}
}

func TestScanChainMatchesServed(t *testing.T) {
	results := scanAllOnce(t)
	for i, r := range results {
		site := testWorld.Sites[testWorld.GovHosts[i]]
		if len(r.Chain) == 0 || len(site.Chain) == 0 {
			continue
		}
		if r.Chain[0].Fingerprint() != site.Chain[0].Fingerprint() {
			t.Errorf("%q leaf fingerprint differs from served chain", r.Hostname)
		}
	}
}

func TestCategoryProperties(t *testing.T) {
	if CatValid.IsInvalidHTTPS() || CatHTTPOnly.IsInvalidHTTPS() {
		t.Error("valid/http-only flagged invalid")
	}
	if !CatHostnameMismatch.IsInvalidHTTPS() {
		t.Error("mismatch not flagged invalid")
	}
	if !CatExcSSLProto.IsException() || CatExpired.IsException() {
		t.Error("exception classification wrong")
	}
	if CatValid.String() != "Valid HTTPS Certificates" {
		t.Errorf("category name = %q", CatValid.String())
	}
}

func TestScanCancellation(t *testing.T) {
	s := testScanner()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := s.ScanAll(ctx, testWorld.GovHosts[:50])
	// Cancellation must not panic; unscanned entries are zero values.
	for _, r := range results {
		if r.Available && r.Hostname == "" {
			t.Error("inconsistent zero result")
		}
	}
}

func TestJSONExport(t *testing.T) {
	results := scanAllOnce(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results[:50]); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 50 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, line := range lines {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad JSON line: %v", err)
		}
		if rec.Hostname == "" || rec.Category == "" {
			t.Fatalf("incomplete record: %+v", rec)
		}
	}
	// Spot-check a valid https record carries certificate metadata.
	for i := range results {
		if results[i].ValidHTTPS() {
			rec := results[i].ToRecord()
			if rec.Issuer == "" || rec.NotAfter == "" || rec.KeyBits == 0 {
				t.Errorf("valid record missing cert fields: %+v", rec)
			}
			break
		}
	}
}

func TestVantageCensorship(t *testing.T) {
	// §7.1.2: the firewall model blackholes part of the Chinese
	// unreachable population for external vantages. Those hosts must fail
	// with timeouts externally; reachable sites are never firewalled.
	w := testWorld
	s := testScanner()
	blocked := 0
	for _, h := range w.UnreachableHosts {
		if len(h) < 3 || h[len(h)-3:] != ".cn" {
			continue
		}
		r := s.Scan(context.Background(), h)
		if r.Available {
			t.Errorf("unreachable Chinese host %q available", h)
		}
		if r.Exception == ExcTimeout || (r.ExceptionDetail == "" && !r.DNSError && r.Attempts > 1) {
			blocked++
		}
	}
	// Reachable Chinese sites are unaffected by the firewall.
	for _, h := range w.ByCountry["cn"] {
		r := s.Scan(context.Background(), h)
		if !r.Available {
			t.Errorf("reachable Chinese host %q blocked", h)
		}
		break
	}
	_ = blocked
}
