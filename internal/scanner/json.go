package scanner

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Record is the flat, zgrab-style JSON export of a scan result, one object
// per host, suitable for JSON-lines pipelines.
type Record struct {
	Hostname         string `json:"hostname"`
	IP               string `json:"ip,omitempty"`
	Available        bool   `json:"available"`
	Category         string `json:"category"`
	ServesHTTP       bool   `json:"serves_http"`
	ServesHTTPS      bool   `json:"serves_https"`
	RedirectsToHTTPS bool   `json:"redirects_to_https"`
	HSTS             bool   `json:"hsts,omitempty"`
	TLSVersion       string `json:"tls_version,omitempty"`
	Issuer           string `json:"issuer,omitempty"`
	Subject          string `json:"subject,omitempty"`
	KeyType          string `json:"key_type,omitempty"`
	KeyBits          int    `json:"key_bits,omitempty"`
	SigAlgorithm     string `json:"sig_algorithm,omitempty"`
	NotBefore        string `json:"not_before,omitempty"`
	NotAfter         string `json:"not_after,omitempty"`
	ValidationError  string `json:"validation_error,omitempty"`
	Exception        string `json:"exception,omitempty"`
	Provider         string `json:"provider,omitempty"`
	HostKind         string `json:"hosting,omitempty"`
	Attempts         int    `json:"attempts,omitempty"`
}

// ToRecord flattens a result.
func (r *Result) ToRecord() Record {
	rec := Record{
		Hostname:         r.Hostname,
		Available:        r.Available,
		Category:         r.Category().String(),
		ServesHTTP:       r.ServesHTTP,
		ServesHTTPS:      r.ServesHTTPS,
		RedirectsToHTTPS: r.RedirectsToHTTPS,
		HSTS:             r.HSTS,
		Provider:         r.Provider,
		HostKind:         r.HostKind.String(),
		Attempts:         r.Attempts,
	}
	if r.IP.IsValid() {
		rec.IP = r.IP.String()
	}
	if r.TLSVersion != 0 {
		rec.TLSVersion = r.TLSVersion.String()
	}
	if r.Exception != ExcNone {
		rec.Exception = r.Exception.String()
	}
	if len(r.Chain) > 0 {
		leaf := r.Chain[0]
		rec.Issuer = leaf.Issuer.CommonName
		rec.Subject = leaf.Subject.CommonName
		rec.KeyType = leaf.PublicKey.Type.String()
		rec.KeyBits = leaf.PublicKey.Bits
		rec.SigAlgorithm = leaf.SignatureAlgorithm.String()
		rec.NotBefore = leaf.NotBefore.Format(time.RFC3339)
		rec.NotAfter = leaf.NotAfter.Format(time.RFC3339)
		if !r.Verify.Valid() {
			rec.ValidationError = r.Verify.Code.String()
		}
	}
	return rec
}

// WriteJSONL streams results as JSON lines.
func WriteJSONL(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(results[i].ToRecord()); err != nil {
			return fmt.Errorf("scanner: encoding %s: %w", results[i].Hostname, err)
		}
	}
	return nil
}
