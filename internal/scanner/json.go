package scanner

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Record is the flat, zgrab-style JSON export of a scan result, one object
// per host, suitable for JSON-lines pipelines.
//
// The struct is the schema of record: AppendRecord emits the same fields in
// the same order with the same omitempty semantics, byte-for-byte identical
// to encoding/json over this struct (TestAppendRecordMatchesEncoder holds
// the two in lockstep).
type Record struct {
	Hostname          string `json:"hostname"`
	IP                string `json:"ip,omitempty"`
	Available         bool   `json:"available"`
	Category          string `json:"category"`
	ServesHTTP        bool   `json:"serves_http"`
	ServesHTTPS       bool   `json:"serves_https"`
	RedirectsToHTTPS  bool   `json:"redirects_to_https"`
	HSTS              bool   `json:"hsts,omitempty"`
	TLSVersion        string `json:"tls_version,omitempty"`
	Issuer            string `json:"issuer,omitempty"`
	Subject           string `json:"subject,omitempty"`
	KeyType           string `json:"key_type,omitempty"`
	KeyBits           int    `json:"key_bits,omitempty"`
	SigAlgorithm      string `json:"sig_algorithm,omitempty"`
	NotBefore         string `json:"not_before,omitempty"`
	NotAfter          string `json:"not_after,omitempty"`
	ValidationError   string `json:"validation_error,omitempty"`
	Exception         string `json:"exception,omitempty"`
	Provider          string `json:"provider,omitempty"`
	HostKind          string `json:"hosting,omitempty"`
	Attempts          int    `json:"attempts,omitempty"`
	FingerprintSHA256 string `json:"fingerprint_sha256,omitempty"`
	RawCert           string `json:"raw_cert,omitempty"`
}

// ToRecord flattens a result.
func (r *Result) ToRecord() Record {
	rec := Record{
		Hostname:         r.Hostname,
		Available:        r.Available,
		Category:         r.Category().String(),
		ServesHTTP:       r.ServesHTTP,
		ServesHTTPS:      r.ServesHTTPS,
		RedirectsToHTTPS: r.RedirectsToHTTPS,
		HSTS:             r.HSTS,
		Provider:         r.Provider,
		HostKind:         r.HostKind.String(),
		Attempts:         r.Attempts,
	}
	if r.IP.IsValid() {
		rec.IP = r.IP.String()
	}
	if r.TLSVersion != 0 {
		rec.TLSVersion = r.TLSVersion.String()
	}
	if r.Exception != ExcNone {
		rec.Exception = r.Exception.String()
	}
	if len(r.Chain) > 0 {
		leaf := r.Chain[0]
		rec.Issuer = leaf.Issuer.CommonName
		rec.Subject = leaf.Subject.CommonName
		rec.KeyType = leaf.PublicKey.Type.String()
		rec.KeyBits = leaf.PublicKey.Bits
		rec.SigAlgorithm = leaf.SignatureAlgorithm.String()
		rec.NotBefore = leaf.NotBefore.Format(time.RFC3339)
		rec.NotAfter = leaf.NotAfter.Format(time.RFC3339)
		if !r.Verify.Valid() {
			rec.ValidationError = r.Verify.Code.String()
		}
		rec.FingerprintSHA256 = string(leaf.AppendFingerprintHex(nil))
		rec.RawCert = string(leaf.AppendEncodeBase64(nil))
	}
	return rec
}

// AppendRecord appends the result's JSON-lines record (object plus trailing
// newline) to dst and returns the extended slice. The output is identical
// to json.Encoder encoding ToRecord(), but serialized in one pass into the
// caller's buffer: no intermediate Record, no reflection, and the frozen
// certificate encodings are appended straight from their caches.
func (r *Result) AppendRecord(dst []byte) []byte {
	dst = append(dst, `{"hostname":`...)
	dst = AppendJSONString(dst, r.Hostname)
	if r.IP.IsValid() {
		// netip's textual form never needs escaping.
		dst = append(dst, `,"ip":"`...)
		dst = r.IP.AppendTo(dst)
		dst = append(dst, '"')
	}
	dst = append(dst, `,"available":`...)
	dst = strconv.AppendBool(dst, r.Available)
	dst = appendField(dst, `,"category":`, r.Category().String())
	dst = append(dst, `,"serves_http":`...)
	dst = strconv.AppendBool(dst, r.ServesHTTP)
	dst = append(dst, `,"serves_https":`...)
	dst = strconv.AppendBool(dst, r.ServesHTTPS)
	dst = append(dst, `,"redirects_to_https":`...)
	dst = strconv.AppendBool(dst, r.RedirectsToHTTPS)
	if r.HSTS {
		dst = append(dst, `,"hsts":true`...)
	}
	if r.TLSVersion != 0 {
		dst = appendOptField(dst, `,"tls_version":`, r.TLSVersion.String())
	}
	if len(r.Chain) > 0 {
		leaf := r.Chain[0]
		dst = appendOptField(dst, `,"issuer":`, leaf.Issuer.CommonName)
		dst = appendOptField(dst, `,"subject":`, leaf.Subject.CommonName)
		dst = appendOptField(dst, `,"key_type":`, leaf.PublicKey.Type.String())
		if leaf.PublicKey.Bits != 0 {
			dst = append(dst, `,"key_bits":`...)
			dst = strconv.AppendInt(dst, int64(leaf.PublicKey.Bits), 10)
		}
		dst = appendOptField(dst, `,"sig_algorithm":`, leaf.SignatureAlgorithm.String())
		// RFC 3339 output is digits, 'T', ':', '-', '+' and 'Z' — none of
		// which JSON escapes.
		dst = append(dst, `,"not_before":"`...)
		dst = leaf.NotBefore.AppendFormat(dst, time.RFC3339)
		dst = append(dst, `","not_after":"`...)
		dst = leaf.NotAfter.AppendFormat(dst, time.RFC3339)
		dst = append(dst, '"')
		if !r.Verify.Valid() {
			dst = appendOptField(dst, `,"validation_error":`, r.Verify.Code.String())
		}
	}
	if r.Exception != ExcNone {
		dst = appendOptField(dst, `,"exception":`, r.Exception.String())
	}
	dst = appendOptField(dst, `,"provider":`, r.Provider)
	dst = appendOptField(dst, `,"hosting":`, r.HostKind.String())
	if r.Attempts != 0 {
		dst = append(dst, `,"attempts":`...)
		dst = strconv.AppendInt(dst, int64(r.Attempts), 10)
	}
	if len(r.Chain) > 0 {
		leaf := r.Chain[0]
		// Hex and base64 alphabets need no escaping; append the frozen
		// encodings directly.
		dst = append(dst, `,"fingerprint_sha256":"`...)
		dst = leaf.AppendFingerprintHex(dst)
		dst = append(dst, `","raw_cert":"`...)
		dst = leaf.AppendEncodeBase64(dst)
		dst = append(dst, '"')
	}
	return append(dst, '}', '\n')
}

// appendField appends `<prefix><json-escaped s>` unconditionally.
func appendField(dst []byte, prefix string, s string) []byte {
	dst = append(dst, prefix...)
	return AppendJSONString(dst, s)
}

// appendOptField is appendField with omitempty semantics: nothing is
// emitted when s is empty.
func appendOptField(dst []byte, prefix string, s string) []byte {
	if s == "" {
		return dst
	}
	return appendField(dst, prefix, s)
}

const jsonHex = "0123456789abcdef"

// AppendJSONString appends s as a quoted JSON string, escaping exactly as
// encoding/json does with HTML escaping on (the json.Encoder default): `"`
// and `\` named, control characters \b \f \n \r \t named and the rest \u00xx,
// `<` `>` `&` as \u003c \u003e \u0026, invalid UTF-8 as \ufffd, and the
// JS-hostile U+2028/U+2029 as \u2028/\u2029. Exported for the serving
// layer's append-style response builders.
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonlBufPool recycles WriteJSONL's staging buffers. Buffers hover around
// jsonlFlushSize plus one record, so pooling them keeps steady-state
// exports allocation-free.
var jsonlBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, jsonlFlushSize+4096); return &b },
}

// jsonlFlushSize is the staging threshold: records accumulate in the pooled
// buffer and flush to the writer once it passes this size, so a full-scale
// export never materializes the whole document.
const jsonlFlushSize = 64 << 10

// WriteJSONL streams results as JSON lines.
func WriteJSONL(w io.Writer, results []Result) error {
	bp := jsonlBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	defer func() {
		*bp = b[:0]
		jsonlBufPool.Put(bp)
	}()
	for i := range results {
		b = results[i].AppendRecord(b)
		if len(b) >= jsonlFlushSize {
			if _, err := w.Write(b); err != nil {
				return fmt.Errorf("scanner: writing %s: %w", results[i].Hostname, err)
			}
			b = b[:0]
		}
	}
	if len(b) > 0 {
		if _, err := w.Write(b); err != nil {
			return fmt.Errorf("scanner: writing jsonl: %w", err)
		}
	}
	return nil
}
