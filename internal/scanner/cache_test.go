package scanner

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cert"
	"repro/internal/verify"
)

// TestScanCacheDifferential proves the shared caches are purely an
// optimization: scanning the same worldwide list with and without them
// yields byte-identical results, and therefore identical Table 2 tallies.
func TestScanCacheDifferential(t *testing.T) {
	w := testWorld
	hosts := w.GovHosts

	cached := testScanner().ScanAll(context.Background(), hosts)

	cfg := DefaultConfig(w.Stores["apple"], w.ScanTime)
	cfg.VerifyCache = nil
	cfg.ChainCache = nil
	uncached := New(w.Net, w.DNS, w.Class, cfg).ScanAll(context.Background(), hosts)

	if len(cached) != len(uncached) {
		t.Fatalf("result counts differ: %d vs %d", len(cached), len(uncached))
	}
	for i := range cached {
		a, err := json.Marshal(toEntry(cached[i]))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(toEntry(uncached[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("host %q differs with cache on:\n  cached:   %s\n  uncached: %s",
				hosts[i], a, b)
		}
	}

	tally := func(rs []Result) map[Category]int {
		m := map[Category]int{}
		for _, r := range rs {
			m[r.Category()]++
		}
		return m
	}
	if a, b := tally(cached), tally(uncached); !reflect.DeepEqual(a, b) {
		t.Errorf("Table 2 tallies differ: cached %v, uncached %v", a, b)
	}
}

// TestVerifyCacheConcurrent hammers one shared verify cache from 64
// goroutines (run under -race in CI) and checks every verdict against an
// uncached baseline.
func TestVerifyCacheConcurrent(t *testing.T) {
	w := testWorld
	store := w.Stores["apple"]

	var chains [][]*cert.Certificate
	var hostnames []string
	for _, h := range w.GovHosts {
		s := w.Sites[h]
		if len(s.Chain) == 0 {
			continue
		}
		chains = append(chains, s.Chain)
		hostnames = append(hostnames, h)
		if len(chains) == 200 {
			break
		}
	}

	base := &verify.Verifier{Store: store, Now: w.ScanTime}
	baseline := make([]verify.Result, len(chains))
	for i := range chains {
		baseline[i] = base.Verify(chains[i], hostnames[i])
	}

	cache := verify.NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := &verify.Verifier{Store: store, Now: w.ScanTime, Cache: cache}
			for i := range chains {
				if got := v.Verify(chains[i], hostnames[i]); !reflect.DeepEqual(got, baseline[i]) {
					t.Errorf("host %q: cached verdict %+v, want %+v", hostnames[i], got, baseline[i])
					return
				}
			}
		}()
	}
	wg.Wait()

	hits, misses := cache.Stats()
	if hits == 0 {
		t.Error("shared cache recorded no hits across 64 goroutines")
	}
	if misses == 0 {
		t.Error("shared cache recorded no misses")
	}
}
