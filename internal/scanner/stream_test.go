package scanner_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/scanner"
)

// TestScanStreamInputOrder: results reach the callback in input order, one
// per hostname, equal to what ScanAll collects.
func TestScanStreamInputOrder(t *testing.T) {
	hosts := extWorld.GovHosts
	baseline := extScanner(extWorld).ScanAll(context.Background(), hosts)

	var streamed []scanner.Result
	extScanner(extWorld).ScanStream(context.Background(), hosts, func(r scanner.Result) {
		streamed = append(streamed, r)
	})

	if len(streamed) != len(hosts) {
		t.Fatalf("streamed %d results for %d hosts", len(streamed), len(hosts))
	}
	for i := range streamed {
		if streamed[i].Hostname != hosts[i] {
			t.Fatalf("result %d is %q, want input-order %q", i, streamed[i].Hostname, hosts[i])
		}
		if streamed[i].Category() != baseline[i].Category() {
			t.Fatalf("host %q: streamed %v, ScanAll %v", hosts[i],
				streamed[i].Category(), baseline[i].Category())
		}
	}
}

// TestScanStreamSerialCallback: fn runs on the calling goroutine with no
// overlap, so aggregation needs no locking.
func TestScanStreamSerialCallback(t *testing.T) {
	var inFn atomic.Int32
	var calls int
	extScanner(extWorld).ScanStream(context.Background(), extWorld.GovHosts, func(scanner.Result) {
		if inFn.Add(1) != 1 {
			t.Error("callback invoked concurrently")
		}
		calls++
		inFn.Add(-1)
	})
	if calls != len(extWorld.GovHosts) {
		t.Errorf("callback ran %d times for %d hosts", calls, len(extWorld.GovHosts))
	}
}

// TestScanStreamCancelled: with the context already cancelled, every host
// still produces a placeholder row carrying its hostname, in order.
func TestScanStreamCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hosts := extWorld.GovHosts[:min(64, len(extWorld.GovHosts))]
	var got []string
	extScanner(extWorld).ScanStream(ctx, hosts, func(r scanner.Result) {
		got = append(got, r.Hostname)
		if r.Available {
			t.Errorf("host %q scanned after cancellation", r.Hostname)
		}
	})
	if len(got) != len(hosts) {
		t.Fatalf("emitted %d placeholders for %d hosts", len(got), len(hosts))
	}
	for i, h := range hosts {
		if got[i] != h {
			t.Fatalf("placeholder %d is %q, want %q", i, got[i], h)
		}
	}
}

// TestScanStreamDeterministic: two same-seed streams are identical — the
// reorder window must not leak completion-order nondeterminism.
func TestScanStreamDeterministic(t *testing.T) {
	hosts := extWorld.GovHosts
	run := func() []scanner.Category {
		var cats []scanner.Category
		extScanner(extWorld).ScanStream(context.Background(), hosts, func(r scanner.Result) {
			cats = append(cats, r.Category())
		})
		return cats
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("host %q: %v then %v across same-seed runs", hosts[i], a[i], b[i])
		}
	}
}
