package scanner

import "context"

// Partition splits hostnames into at most shards contiguous, non-empty
// slices covering the input exactly once, in order. Shard k is
// hostnames[k*n/shards : (k+1)*n/shards] — so concatenating the shards
// reproduces the input, which is what lets resultset.Merge recombine
// per-shard indexes bit-identically to a sequential build. Shard counts
// above len(hostnames) are capped (every returned shard is non-empty)
// and counts below 1 are treated as 1. An empty input returns nil.
func Partition(hostnames []string, shards int) [][]string {
	n := len(hostnames)
	if n == 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	parts := make([][]string, shards)
	for k := 0; k < shards; k++ {
		parts[k] = hostnames[k*n/shards : (k+1)*n/shards]
	}
	return parts
}

// ScanShard probes one shard's hostnames sequentially on the calling
// goroutine, delivering each result to fn in input order with none of
// ScanStream's reorder window — the per-shard consumer (typically a
// resultset.Builder) is fed directly, so a sharded scan has no global
// in-order bottleneck and no cross-shard locks. Multiple ScanShard calls
// may run concurrently on the same Scanner: the scan caches and the
// journal are safe for concurrent use.
//
// Per-host semantics match ScanAll: journaled hosts are restored without
// re-scanning, newly completed hosts are checkpointed, and after context
// cancellation the remaining unscanned hosts are delivered as
// hostname-only placeholder results.
func (s *Scanner) ScanShard(ctx context.Context, hostnames []string, fn func(Result)) {
	journal := s.Cfg.Journal
	for i, h := range hostnames {
		if journal != nil {
			if prev, ok := journal.Lookup(h); ok {
				fn(prev)
				continue
			}
		}
		if ctx.Err() != nil {
			for j := i; j < len(hostnames); j++ {
				fn(Result{Hostname: hostnames[j]})
			}
			return
		}
		r := s.Scan(ctx, h)
		if journal != nil && ctx.Err() == nil {
			journal.Append(r)
		}
		fn(r)
	}
}
