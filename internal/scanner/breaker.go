package scanner

import (
	"sync"
	"time"

	"repro/internal/simclock"
)

// Breaker is a per-provider circuit breaker: after Threshold consecutive
// dial timeouts against one hosting provider (or /24 prefix, see
// breakerKey) it opens for Cooldown, during which dials to that provider
// are skipped and recorded as ExcCircuitOpen instead of hammering an
// endpoint block that is clearly down. Only silence counts toward an
// outage: the scanner reports refusals and resets as Success, because an
// answering endpoint proves the provider's network is up (an http-only
// host's closed port 443 must not open the circuit for its provider).
// After the cooldown one probe dial is let through (half-open); its
// outcome closes or re-opens the circuit.
//
// Whether and when a breaker trips depends on the interleaving of
// concurrent failures, so study runs that must be bitwise deterministic
// leave the breaker off (the default) or scan with Concurrency 1.
type Breaker struct {
	mu        sync.Mutex
	clock     simclock.Clock
	threshold int
	cooldown  time.Duration
	states    map[string]*breakerState
	trips     int64
	skips     int64
}

type breakerState struct {
	fails     int
	openUntil time.Time
	open      bool
	halfOpen  bool // a probe dial is in flight after cooldown expiry
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures, holding open for cooldown on the given clock. A nil clock
// defaults to a collapsing virtual clock.
func NewBreaker(threshold int, cooldown time.Duration, clock simclock.Clock) *Breaker {
	if clock == nil {
		clock = simclock.NewVirtual(time.Unix(0, 0))
	}
	return &Breaker{
		clock:     clock,
		threshold: threshold,
		cooldown:  cooldown,
		states:    make(map[string]*breakerState),
	}
}

// Allow reports whether a dial to the keyed provider may proceed. An empty
// key (unclassifiable host) is always allowed.
func (b *Breaker) Allow(key string) bool {
	if b == nil || key == "" || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.open {
		return true
	}
	if b.clock.Now().Before(st.openUntil) {
		b.skips++
		return false
	}
	if st.halfOpen {
		// Another goroutine already holds the probe slot.
		b.skips++
		return false
	}
	st.halfOpen = true
	return true
}

// Success records a successful dial, closing the circuit.
func (b *Breaker) Success(key string) {
	if b == nil || key == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if st := b.states[key]; st != nil {
		st.fails = 0
		st.open = false
		st.halfOpen = false
	}
}

// Failure records a failed dial; Threshold consecutive failures (or one
// failed half-open probe) open the circuit for Cooldown.
func (b *Breaker) Failure(key string) {
	if b == nil || key == "" || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	if st.open && st.halfOpen {
		st.halfOpen = false
		st.openUntil = b.clock.Now().Add(b.cooldown)
		b.trips++
		return
	}
	st.fails++
	if st.fails >= b.threshold {
		st.fails = 0
		st.open = true
		st.halfOpen = false
		st.openUntil = b.clock.Now().Add(b.cooldown)
		b.trips++
	}
}

// Trips reports how many times any circuit opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Skips reports how many dials were suppressed by open circuits.
func (b *Breaker) Skips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.skips
}
