package scanner_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

// extWorld is this file's own world instance (the in-package tests own the
// shared one and mutate its faults).
var extWorld = world.MustBuild(world.TestConfig())

func extScanner(w *world.World) *scanner.Scanner {
	cfg := scanner.DefaultConfig(w.Stores["apple"], w.ScanTime)
	cfg.Seed = w.Cfg.Seed
	cfg.Clock = w.Clock
	return scanner.New(w.Net, w.DNS, w.Class, cfg)
}

func table2(rs []scanner.Result) string {
	return report.Table2(analysis.ComputeTable2(resultset.New(rs, resultset.Options{})))
}

// TestResumeMatchesUninterrupted is the headline checkpoint criterion: a
// scan killed at 50% and resumed from its journal produces byte-identical
// Table 2 aggregates to a never-interrupted run.
func TestResumeMatchesUninterrupted(t *testing.T) {
	hosts := extWorld.GovHosts
	baseline := extScanner(extWorld).ScanAll(context.Background(), hosts)

	// Simulate the killed run: a journal holding only the first half.
	path := filepath.Join(t.TempDir(), "scan.jsonl")
	j, err := scanner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range baseline[:len(baseline)/2] {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, err := scanner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s := extScanner(extWorld)
	s.Cfg.Journal = j2
	resumed := s.ScanAll(context.Background(), hosts)

	if len(resumed) != len(baseline) {
		t.Fatalf("resumed %d results, want %d", len(resumed), len(baseline))
	}
	if got, want := table2(resumed), table2(baseline); got != want {
		t.Errorf("resumed Table 2 differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
	for i := range resumed {
		if resumed[i].Hostname != baseline[i].Hostname ||
			resumed[i].Category() != baseline[i].Category() {
			t.Errorf("host %d: resumed %q/%v, baseline %q/%v", i,
				resumed[i].Hostname, resumed[i].Category(),
				baseline[i].Hostname, baseline[i].Category())
		}
	}
}

// TestInterruptedScanResumes kills a live scan via context cancellation
// partway through, then resumes from the journal it left behind; the final
// aggregates must match an uninterrupted run regardless of where the kill
// landed.
func TestInterruptedScanResumes(t *testing.T) {
	hosts := extWorld.GovHosts
	path := filepath.Join(t.TempDir(), "scan.jsonl")
	j, err := scanner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	s := extScanner(extWorld)
	s.Cfg.Journal = j
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ScanAll(ctx, hosts)
	}()
	// Kill the run once it is partway through (the scan may legitimately
	// finish first at small scales; the resume still has to be a no-op
	// then).
	for j.Len() < len(hosts)/4 {
		select {
		case <-done:
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	cancel()
	<-done
	j.Close()

	j2, err := scanner.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() == 0 {
		t.Fatal("journal empty after interrupted run")
	}
	s2 := extScanner(extWorld)
	s2.Cfg.Journal = j2
	resumed := s2.ScanAll(context.Background(), hosts)

	baseline := extScanner(extWorld).ScanAll(context.Background(), hosts)
	if got, want := table2(resumed), table2(baseline); got != want {
		t.Errorf("resumed Table 2 differs from uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestFlakyWorldDeterministic: with transient faults injected, two
// same-seed runs are identical, and — because every injected fault heals
// within the paper's 3-retry budget — the aggregates match the fault-free
// world exactly. Fresh worlds per run: flaky faults are stateful
// (consumed by dials), so determinism is per-run, not per-world-instance.
func TestFlakyWorldDeterministic(t *testing.T) {
	cfg := world.TestConfig()
	cfg.Flakiness = 0.3

	scan := func() ([]scanner.Result, string) {
		w := world.MustBuild(cfg)
		rs := extScanner(w).ScanAll(context.Background(), w.GovHosts)
		return rs, table2(rs)
	}
	r1, t1 := scan()
	_, t2 := scan()
	if t1 != t2 {
		t.Errorf("same seed, different Table 2:\n%s\nvs\n%s", t1, t2)
	}

	clean := extScanner(extWorld).ScanAll(context.Background(), extWorld.GovHosts)
	if tClean := table2(clean); t1 != tClean {
		t.Errorf("flaky world shifted Table 2 (faults must heal within the retry budget):\nflaky:\n%s\nclean:\n%s", t1, tClean)
	}

	// The faults were real: the flaky run burned more 443 attempts.
	sum := func(rs []scanner.Result) int {
		n := 0
		for i := range rs {
			n += rs[i].Attempts
		}
		return n
	}
	if sum(r1) <= sum(clean) {
		t.Errorf("flaky run attempts = %d, clean = %d; expected extra retries", sum(r1), sum(clean))
	}
}
