package scanner

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"sync"

	"repro/internal/cert"
	"repro/internal/hosting"
	"repro/internal/tlssim"
	"repro/internal/verify"
)

// journalEntry is the JSON-lines checkpoint form of one Result. Unlike the
// analyst-facing Record it is lossless: a resumed run rebuilds the exact
// Result (chain bytes included), so aggregates over journal-restored
// results match an uninterrupted scan bit for bit.
type journalEntry struct {
	Hostname         string        `json:"hostname"`
	IP               string        `json:"ip,omitempty"`
	DNSError         bool          `json:"dns_error,omitempty"`
	Available        bool          `json:"available,omitempty"`
	ServesHTTP       bool          `json:"serves_http,omitempty"`
	RedirectsToHTTPS bool          `json:"redirects_to_https,omitempty"`
	AttemptsHTTPS    bool          `json:"attempts_https,omitempty"`
	ServesHTTPS      bool          `json:"serves_https,omitempty"`
	HSTS             bool          `json:"hsts,omitempty"`
	TLSVersion       uint16        `json:"tls_version,omitempty"`
	Chain            string        `json:"chain,omitempty"` // base64 of cert.EncodeChain
	Verify           verify.Result `json:"verify"`
	Exception        int           `json:"exception,omitempty"`
	ExceptionDetail  string        `json:"exception_detail,omitempty"`
	Provider         string        `json:"provider,omitempty"`
	HostKind         int           `json:"host_kind,omitempty"`
	Attempts         int           `json:"attempts,omitempty"`
}

// toEntry flattens a Result for checkpointing.
func toEntry(r Result) journalEntry {
	e := journalEntry{
		Hostname:         r.Hostname,
		DNSError:         r.DNSError,
		Available:        r.Available,
		ServesHTTP:       r.ServesHTTP,
		RedirectsToHTTPS: r.RedirectsToHTTPS,
		AttemptsHTTPS:    r.AttemptsHTTPS,
		ServesHTTPS:      r.ServesHTTPS,
		HSTS:             r.HSTS,
		TLSVersion:       uint16(r.TLSVersion),
		Verify:           r.Verify,
		Exception:        int(r.Exception),
		ExceptionDetail:  r.ExceptionDetail,
		Provider:         r.Provider,
		HostKind:         int(r.HostKind),
		Attempts:         r.Attempts,
	}
	if r.IP.IsValid() {
		e.IP = r.IP.String()
	}
	if len(r.Chain) > 0 {
		e.Chain = base64.StdEncoding.EncodeToString(cert.EncodeChain(r.Chain))
	}
	return e
}

// toResult rebuilds the Result a journal entry checkpointed.
func (e journalEntry) toResult() (Result, error) {
	r := Result{
		Hostname:         e.Hostname,
		DNSError:         e.DNSError,
		Available:        e.Available,
		ServesHTTP:       e.ServesHTTP,
		RedirectsToHTTPS: e.RedirectsToHTTPS,
		AttemptsHTTPS:    e.AttemptsHTTPS,
		ServesHTTPS:      e.ServesHTTPS,
		HSTS:             e.HSTS,
		TLSVersion:       tlssim.Version(e.TLSVersion),
		Verify:           e.Verify,
		Exception:        Exception(e.Exception),
		ExceptionDetail:  e.ExceptionDetail,
		Provider:         e.Provider,
		HostKind:         hosting.Kind(e.HostKind),
		Attempts:         e.Attempts,
	}
	if e.IP != "" {
		ip, err := netip.ParseAddr(e.IP)
		if err != nil {
			return Result{}, fmt.Errorf("scanner: journal entry %q: bad ip: %w", e.Hostname, err)
		}
		r.IP = ip
	}
	if e.Chain != "" {
		raw, err := base64.StdEncoding.DecodeString(e.Chain)
		if err != nil {
			return Result{}, fmt.Errorf("scanner: journal entry %q: bad chain encoding: %w", e.Hostname, err)
		}
		chain, err := cert.ParseChain(raw)
		if err != nil {
			return Result{}, fmt.Errorf("scanner: journal entry %q: bad chain: %w", e.Hostname, err)
		}
		r.Chain = chain
	}
	return r, nil
}

// Journal is a JSON-lines checkpoint of completed scan results. ScanAll
// appends every completed host and skips hosts already present, so a study
// run killed mid-scan resumes from the last completed host instead of
// restarting 135k probes from zero. Appends are safe from concurrent scan
// goroutines.
//
// Writes are batched behind a buffered writer and flushed to the file every
// journalFlushEvery appends and on Close, so the per-host checkpoint cost
// is a buffer copy rather than a syscall. A crash can lose at most the one
// unflushed batch; the truncated-tail repair in OpenJournal makes any
// partially written line harmless, and the lost hosts are simply rescanned
// on resume.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	unflushed int
	done      map[string]Result
}

// journalFlushEvery bounds how many appends may sit in the write buffer
// before it is forced to disk.
const journalFlushEvery = 64

// OpenJournal opens (or creates) a checkpoint journal, loading every
// complete entry already present. A truncated final line — the signature
// of a run killed mid-write — is discarded and overwritten by the next
// append.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("scanner: opening journal: %w", err)
	}
	done := make(map[string]Result)
	var goodBytes int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Hostname == "" {
			break // truncated or corrupt tail: resume from the last good entry
		}
		r, err := e.toResult()
		if err != nil {
			break
		}
		done[e.Hostname] = r
		goodBytes += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("scanner: reading journal: %w", err)
	}
	// Drop any corrupt tail so appends produce a well-formed file.
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("scanner: truncating journal: %w", err)
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("scanner: seeking journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriterSize(f, 1<<16), done: done}, nil
}

// Lookup returns the checkpointed result for a host, if present.
func (j *Journal) Lookup(host string) (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.done[host]
	return r, ok
}

// Len reports how many hosts the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Append checkpoints one completed result. The JSON encoding happens
// outside the lock, so concurrent scan workers serialize their entries in
// parallel and contend only for the buffer write.
func (j *Journal) Append(r Result) error {
	line, err := json.Marshal(toEntry(r))
	if err != nil {
		return fmt.Errorf("scanner: journaling %q: %w", r.Hostname, err)
	}
	line = append(line, '\n')

	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("scanner: journaling %q: %w", r.Hostname, err)
	}
	j.done[r.Hostname] = r
	j.unflushed++
	if j.unflushed >= journalFlushEvery {
		if err := j.w.Flush(); err != nil {
			return fmt.Errorf("scanner: flushing journal: %w", err)
		}
		j.unflushed = 0
	}
	return nil
}

// Flush forces any buffered appends to disk.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.unflushed = 0
	return j.w.Flush()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	flushErr := j.w.Flush()
	err := j.f.Close()
	j.f = nil
	if flushErr != nil {
		return flushErr
	}
	return err
}
