package scanner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dnssim"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/tlssim"
	"repro/internal/world"
)

// findHealthySite returns a worldwide site that is a clean, valid https
// host (redirecting port 80), so any failure a test observes comes from
// the fault it injected.
func findHealthySite(t *testing.T) *world.Site {
	t.Helper()
	for _, h := range testWorld.GovHosts {
		s := testWorld.Sites[h]
		if s.Injected == world.ClassValid && s.Serving == world.BothRedirect &&
			s.Fault == simnet.FaultNone && s.Quirk == tlssim.QuirkNone && s.IP.IsValid() {
			return s
		}
	}
	t.Skip("no clean valid site at this scale")
	return nil
}

// TestFaultClassificationMatrix drives every simnet fault mode through the
// scanner and checks the Table 2 exception it lands in, the retry budget
// it consumes, and the availability bits.
func TestFaultClassificationMatrix(t *testing.T) {
	site := findHealthySite(t)
	ep := netip.AddrPortFrom(site.IP, 443)
	s := testScanner()
	budget := 1 + s.Cfg.Retries

	rows := []struct {
		name      string
		spec      simnet.FaultSpec
		wantExc   Exception
		wantTries int
		wantValid bool
	}{
		{"refused", simnet.FaultSpec{Mode: simnet.FaultRefuse}, ExcRefused, budget, false},
		{"timeout", simnet.FaultSpec{Mode: simnet.FaultTimeout}, ExcTimeout, budget, false},
		{"reset-on-use", simnet.FaultSpec{Mode: simnet.FaultReset}, ExcReset, 1, false},
		{"flaky-recovers", simnet.FaultSpec{Mode: simnet.FaultFlaky, FailCount: 2}, ExcNone, 3, true},
		{"flaky-exhausts-budget", simnet.FaultSpec{Mode: simnet.FaultFlaky, FailCount: 99}, ExcReset, budget, false},
		{"prob-certain-timeout", simnet.FaultSpec{Mode: simnet.FaultProb, Probability: 1, FailWith: simnet.ErrTimedOut}, ExcTimeout, budget, false},
		{"mid-handshake-reset", simnet.FaultSpec{Mode: simnet.FaultMidHandshake}, ExcReset, 1, false},
		{"truncated-response", simnet.FaultSpec{Mode: simnet.FaultTruncate, TruncateBytes: 3}, ExcOther, 1, false},
		{"slow-but-healthy", simnet.FaultSpec{DialLatency: 200 * time.Millisecond}, ExcNone, 1, true},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			testWorld.Net.SetFaultSpec(ep, row.spec)
			defer testWorld.Net.SetFaultSpec(ep, simnet.FaultSpec{})
			r := s.Scan(context.Background(), site.Hostname)
			if r.Exception != row.wantExc {
				t.Errorf("exception = %v (%q), want %v", r.Exception, r.ExceptionDetail, row.wantExc)
			}
			if r.Attempts != row.wantTries {
				t.Errorf("attempts = %d, want %d", r.Attempts, row.wantTries)
			}
			if r.ValidHTTPS() != row.wantValid {
				t.Errorf("ValidHTTPS = %v, want %v", r.ValidHTTPS(), row.wantValid)
			}
			// Port 80 still redirects, so the host always counts as
			// attempting https and as available.
			if !r.AttemptsHTTPS || !r.Available {
				t.Errorf("AttemptsHTTPS = %v, Available = %v, want both true", r.AttemptsHTTPS, r.Available)
			}
			if row.wantValid && row.spec.Mode == simnet.FaultFlaky && !r.ServesHTTPS {
				t.Error("recovered flaky host did not serve https")
			}
		})
	}
}

// TestFirewallNotRetried: a deterministically censored route is classified
// on the first dial — one attempt per port, no retry budget burned.
func TestFirewallNotRetried(t *testing.T) {
	var host string
	for _, h := range testWorld.UnreachableHosts {
		if !strings.HasSuffix(h, ".cn") || testWorld.CountryOf(h) != "" {
			continue
		}
		if addrs, err := testWorld.DNS.LookupA(h); err == nil && len(addrs) > 0 {
			host = h
			break
		}
	}
	if host == "" {
		t.Skip("no firewalled host at this scale")
	}
	s := testScanner()
	before := testWorld.Net.DialCount()
	r := s.Scan(context.Background(), host)
	dials := testWorld.Net.DialCount() - before

	if r.Exception != ExcTimeout {
		t.Errorf("exception = %v, want %v (censorship looks like packet loss)", r.Exception, ExcTimeout)
	}
	if r.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retries against a firewall)", r.Attempts)
	}
	if dials != 2 {
		t.Errorf("dials = %d, want 2 (one per port)", dials)
	}
	if r.Available {
		t.Error("firewalled host scanned as available")
	}
}

func TestBreakerUnit(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	b := NewBreaker(3, time.Minute, clock)

	for i := 0; i < 2; i++ {
		if !b.Allow("aws") {
			t.Fatalf("circuit open after %d failures, threshold 3", i)
		}
		b.Failure("aws")
	}
	if !b.Allow("aws") {
		t.Fatal("circuit open below threshold")
	}
	b.Failure("aws")
	if b.Allow("aws") {
		t.Fatal("circuit still closed after threshold failures")
	}
	if b.Trips() != 1 || b.Skips() != 1 {
		t.Errorf("trips = %d skips = %d, want 1/1", b.Trips(), b.Skips())
	}

	// Cooldown expiry grants exactly one half-open probe.
	clock.Advance(61 * time.Second)
	if !b.Allow("aws") {
		t.Fatal("no probe after cooldown")
	}
	if b.Allow("aws") {
		t.Fatal("second probe granted while first in flight")
	}
	b.Failure("aws") // probe failed: re-open
	if b.Allow("aws") || b.Trips() != 2 {
		t.Fatalf("failed probe did not re-open (trips = %d)", b.Trips())
	}
	clock.Advance(2 * time.Minute)
	if !b.Allow("aws") {
		t.Fatal("no probe after second cooldown")
	}
	b.Success("aws") // probe succeeded: close
	if !b.Allow("aws") || !b.Allow("aws") {
		t.Error("circuit not closed after successful probe")
	}

	// Unclassifiable hosts and zero thresholds never trip.
	if !b.Allow("") {
		t.Error("empty key blocked")
	}
	z := NewBreaker(0, time.Minute, clock)
	for i := 0; i < 5; i++ {
		z.Failure("x")
	}
	if !z.Allow("x") {
		t.Error("zero-threshold breaker tripped")
	}
}

// TestBreakerScanIntegration: with a sequential scan against a dead
// provider block, the breaker opens after the threshold and later hosts
// record ExcCircuitOpen without dialing at all.
func TestBreakerScanIntegration(t *testing.T) {
	n := simnet.New()
	zone := dnssim.NewZone()
	var hosts []string
	for i := 0; i < 6; i++ {
		h := fmt.Sprintf("h%d.dead.gov.zz", i)
		ip := netip.MustParseAddr(fmt.Sprintf("203.0.113.%d", 10+i))
		zone.AddA(h, ip)
		hosts = append(hosts, h)
		// The whole provider block is silent: every dial times out.
		n.SetFaultSpec(netip.AddrPortFrom(ip, 80), simnet.FaultSpec{Mode: simnet.FaultTimeout})
		n.SetFaultSpec(netip.AddrPortFrom(ip, 443), simnet.FaultSpec{Mode: simnet.FaultTimeout})
	}
	cfg := DefaultConfig(nil, time.Unix(0, 0))
	cfg.Concurrency = 1 // deterministic failure ordering
	cfg.Retries = 0
	cfg.Breaker = NewBreaker(2, time.Hour, simclock.NewVirtual(time.Unix(0, 0)))
	s := New(n, zone, nil, cfg)

	results := s.ScanAll(context.Background(), hosts)

	// Host 0 burned the two failures (port 80 + port 443) that opened the
	// circuit; it is reported on its own merits.
	if results[0].Exception == ExcCircuitOpen {
		t.Error("first host misreported as circuit-open")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Exception != ExcCircuitOpen {
			t.Errorf("host %d: exception = %v, want %v", i, results[i].Exception, ExcCircuitOpen)
		}
		if results[i].Category() != CatUnavailable {
			t.Errorf("host %d: category = %v, want %v", i, results[i].Category(), CatUnavailable)
		}
		if results[i].Attempts != 0 {
			t.Errorf("host %d: attempts = %d, want 0 (suppressed)", i, results[i].Attempts)
		}
	}
	if got := n.DialCount(); got != 2 {
		t.Errorf("network saw %d dials, want 2", got)
	}
	if cfg.Breaker.Trips() != 1 {
		t.Errorf("trips = %d, want 1", cfg.Breaker.Trips())
	}
	if cfg.Breaker.Skips() != 10 {
		t.Errorf("skips = %d, want 10 (2 ports x 5 hosts)", cfg.Breaker.Skips())
	}
}

// TestBreakerScanProbation drives the half-open probation path through
// real scans: a dead provider block opens the circuit; after the cooldown
// the next scan spends exactly one probe dial, and a failed probe re-opens
// while a successful probe (the block recovered) closes the circuit and
// lets the rest of the block scan on its own merits again.
func TestBreakerScanProbation(t *testing.T) {
	n := simnet.New()
	zone := dnssim.NewZone()
	var hosts []string
	for i := 0; i < 6; i++ {
		h := fmt.Sprintf("h%d.parked.gov.zz", i)
		ip := netip.MustParseAddr(fmt.Sprintf("203.0.114.%d", 10+i))
		zone.AddA(h, ip)
		hosts = append(hosts, h)
		n.SetFaultSpec(netip.AddrPortFrom(ip, 80), simnet.FaultSpec{Mode: simnet.FaultTimeout})
		n.SetFaultSpec(netip.AddrPortFrom(ip, 443), simnet.FaultSpec{Mode: simnet.FaultTimeout})
	}
	clock := simclock.NewVirtual(time.Unix(0, 0))
	cfg := DefaultConfig(nil, time.Unix(0, 0))
	cfg.Concurrency = 1 // deterministic failure ordering
	cfg.Retries = 0
	cfg.Breaker = NewBreaker(2, time.Hour, clock)
	s := New(n, zone, nil, cfg)
	ctx := context.Background()

	// Scan 1 trips the circuit: the whole block after host 0 is skipped.
	s.ScanAll(ctx, hosts)
	if cfg.Breaker.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", cfg.Breaker.Trips())
	}

	// Scan 2, past the cooldown, block still dead: one half-open probe
	// dial is spent, fails, and re-opens the circuit — everything else
	// stays suppressed without touching the network.
	clock.Advance(2 * time.Hour)
	before := n.DialCount()
	results := s.ScanAll(ctx, hosts)
	if got := n.DialCount() - before; got != 1 {
		t.Errorf("probation scan dialed %d times, want exactly 1 probe", got)
	}
	if cfg.Breaker.Trips() != 2 {
		t.Errorf("trips = %d, want 2 (failed probe re-opens)", cfg.Breaker.Trips())
	}
	for i := 1; i < len(results); i++ {
		if results[i].Exception != ExcCircuitOpen {
			t.Errorf("host %d: exception = %v, want %v", i, results[i].Exception, ExcCircuitOpen)
		}
	}

	// The provider recovers; scan 3 after another cooldown: host 0's probe
	// answers (a refused dial proves the network is up), the circuit
	// closes, and every host is probed for real — no circuit-open results.
	for i := 0; i < 6; i++ {
		ip := netip.MustParseAddr(fmt.Sprintf("203.0.114.%d", 10+i))
		n.SetFaultSpec(netip.AddrPortFrom(ip, 80), simnet.FaultSpec{})
		n.SetFaultSpec(netip.AddrPortFrom(ip, 443), simnet.FaultSpec{})
	}
	clock.Advance(2 * time.Hour)
	before = n.DialCount()
	results = s.ScanAll(ctx, hosts)
	if got := n.DialCount() - before; got != int64(2*len(hosts)) {
		t.Errorf("recovered scan dialed %d times, want %d (both ports, every host)", got, 2*len(hosts))
	}
	for i, r := range results {
		if r.Exception == ExcCircuitOpen {
			t.Errorf("host %d still suppressed after recovery", i)
		}
	}
	if cfg.Breaker.Trips() != 2 {
		t.Errorf("trips = %d, want 2 (successful probe closes, no new trips)", cfg.Breaker.Trips())
	}
}

// TestBreakerHealthyWorldNoTrips: on a healthy world the breaker must be
// inert. (Regression test: clean port-443 refusals from http-only hosts
// once counted as provider failures, so the "Private" circuit opened
// almost immediately and most of the world scanned as unavailable.)
func TestBreakerHealthyWorldNoTrips(t *testing.T) {
	s := testScanner()
	s.Cfg.Concurrency = 1 // deterministic failure ordering
	s.Cfg.Breaker = NewBreaker(5, time.Hour, simclock.NewVirtual(time.Unix(0, 0)))
	results := s.ScanAll(context.Background(), testWorld.GovHosts)
	if trips := s.Cfg.Breaker.Trips(); trips != 0 {
		t.Errorf("breaker tripped %d times on a healthy world", trips)
	}
	for i := range results {
		if results[i].Exception == ExcCircuitOpen {
			t.Fatalf("host %q suppressed on a healthy world", results[i].Hostname)
		}
	}
	baseline := scanAllOnce(t)
	for i := range results {
		if results[i].Category() != baseline[i].Category() {
			t.Errorf("host %q: category %v with breaker, %v without",
				results[i].Hostname, results[i].Category(), baseline[i].Category())
		}
	}
}

// TestJournalRoundTrip: a journal restores byte-identical results,
// certificate chains included.
func TestJournalRoundTrip(t *testing.T) {
	results := scanAllOnce(t)
	if len(results) > 80 {
		results = results[:80]
	}
	path := filepath.Join(t.TempDir(), "scan.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	unique := map[string]bool{}
	for _, r := range results {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		unique[r.Hostname] = true
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(unique) {
		t.Fatalf("journal holds %d hosts, want %d", j2.Len(), len(unique))
	}
	for _, want := range results {
		got, ok := j2.Lookup(want.Hostname)
		if !ok {
			t.Fatalf("host %q missing after reload", want.Hostname)
		}
		ge, _ := json.Marshal(toEntry(got))
		we, _ := json.Marshal(toEntry(want))
		if !bytes.Equal(ge, we) {
			t.Errorf("host %q: reloaded entry differs:\n got %s\nwant %s", want.Hostname, ge, we)
		}
		if got.Category() != want.Category() {
			t.Errorf("host %q: category %v != %v", want.Hostname, got.Category(), want.Category())
		}
		if len(want.Chain) > 0 && (len(got.Chain) != len(want.Chain) ||
			got.Chain[0].Fingerprint() != want.Chain[0].Fingerprint()) {
			t.Errorf("host %q: chain not restored losslessly", want.Hostname)
		}
	}
}

// TestJournalTruncatedTail: a run killed mid-write leaves a partial final
// line; reopening drops it and appends cleanly after the last good entry.
func TestJournalTruncatedTail(t *testing.T) {
	results := scanAllOnce(t)
	path := filepath.Join(t.TempDir(), "scan.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(results[0])
	j.Append(results[1])
	j.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"hostname":"half-written.gov.zz","avail`) // kill -9 mid-write
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("len = %d after corrupt tail, want 2", j2.Len())
	}
	if _, ok := j2.Lookup("half-written.gov.zz"); ok {
		t.Fatal("corrupt entry surfaced")
	}
	if err := j2.Append(results[2]); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 3 {
		t.Errorf("len = %d after repair+append, want 3", j3.Len())
	}
}
