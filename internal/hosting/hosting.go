// Package hosting classifies host IP addresses into hosting categories the
// way the paper does (§5.4): using published CIDR prefix lists for the major
// cloud providers (AWS, Azure, Google Cloud, IBM, Oracle, HPE) and CDNs
// (Cloudflare), labelling everything else "privately hosted or unknown".
// Akamai publishes no official IP range list and is therefore absent,
// exactly as in the study.
package hosting

import (
	"net/netip"
	"sort"
)

// Kind is the coarse hosting category used across Figures 5, 6 and A.1.
type Kind int

// Hosting categories.
const (
	// Private covers self-hosted and unidentifiable addresses.
	Private Kind = iota
	// Cloud covers the large public cloud providers.
	Cloud
	// CDN covers content delivery networks.
	CDN
)

// String returns the category label used in the figures.
func (k Kind) String() string {
	switch k {
	case Cloud:
		return "Cloud"
	case CDN:
		return "CDN"
	default:
		return "Private"
	}
}

// Provider is one hosting provider with its published prefixes.
type Provider struct {
	Name     string
	Kind     Kind
	Prefixes []netip.Prefix
}

// Contains reports whether the address falls in the provider's ranges.
func (p *Provider) Contains(addr netip.Addr) bool {
	for _, pfx := range p.Prefixes {
		if pfx.Contains(addr) {
			return true
		}
	}
	return false
}

// Classifier matches addresses against a set of providers.
type Classifier struct {
	providers []*Provider
}

// NewClassifier builds a classifier over the given providers, first match
// wins in the order supplied.
func NewClassifier(providers []*Provider) *Classifier {
	return &Classifier{providers: providers}
}

// DefaultClassifier covers the providers the paper sorts hostnames by. The
// prefixes are simulation address plans, one disjoint block per provider, so
// the world generator can mint provider-attributed addresses and the
// classifier can recover them — the same role the published CIDR lists play
// in the real study.
func DefaultClassifier() *Classifier {
	return NewClassifier([]*Provider{
		{Name: "AWS", Kind: Cloud, Prefixes: pfx("52.0.0.0/10", "54.64.0.0/11", "3.0.0.0/10")},
		{Name: "Azure", Kind: Cloud, Prefixes: pfx("13.64.0.0/11", "20.32.0.0/11", "40.64.0.0/10")},
		{Name: "Google Cloud", Kind: Cloud, Prefixes: pfx("34.64.0.0/10", "35.184.0.0/13")},
		{Name: "IBM Cloud", Kind: Cloud, Prefixes: pfx("169.44.0.0/14")},
		{Name: "Oracle Cloud", Kind: Cloud, Prefixes: pfx("129.146.0.0/15", "132.145.0.0/16")},
		{Name: "HP Enterprise", Kind: Cloud, Prefixes: pfx("15.96.0.0/11")},
		{Name: "Cloudflare", Kind: CDN, Prefixes: pfx("104.16.0.0/13", "172.64.0.0/13")},
	})
}

// Classify returns the provider name and kind for the address; unmatched
// addresses are ("Private", Private), the paper's "privately hosted or
// unknown" bucket.
func (c *Classifier) Classify(addr netip.Addr) (string, Kind) {
	for _, p := range c.providers {
		if p.Contains(addr) {
			return p.Name, p.Kind
		}
	}
	return "Private", Private
}

// Provider returns the provider with the given name.
func (c *Classifier) Provider(name string) (*Provider, bool) {
	for _, p := range c.providers {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// ProviderNames lists the known provider names, sorted.
func (c *Classifier) ProviderNames() []string {
	out := make([]string, 0, len(c.providers))
	for _, p := range c.providers {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

func pfx(cidrs ...string) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(cidrs))
	for _, c := range cidrs {
		out = append(out, netip.MustParsePrefix(c))
	}
	return out
}
