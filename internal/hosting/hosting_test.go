package hosting

import (
	"net/netip"
	"testing"
)

func TestDefaultClassification(t *testing.T) {
	c := DefaultClassifier()
	cases := []struct {
		ip       string
		provider string
		kind     Kind
	}{
		{"52.10.20.30", "AWS", Cloud},
		{"3.1.2.3", "AWS", Cloud},
		{"13.64.0.1", "Azure", Cloud},
		{"40.100.1.1", "Azure", Cloud},
		{"34.64.0.9", "Google Cloud", Cloud},
		{"169.45.1.1", "IBM Cloud", Cloud},
		{"129.146.8.8", "Oracle Cloud", Cloud},
		{"15.97.0.1", "HP Enterprise", Cloud},
		{"104.17.5.5", "Cloudflare", CDN},
		{"172.65.1.1", "Cloudflare", CDN},
		{"190.14.22.3", "Private", Private},
		{"198.51.100.7", "Private", Private},
	}
	for _, tc := range cases {
		name, kind := c.Classify(netip.MustParseAddr(tc.ip))
		if name != tc.provider || kind != tc.kind {
			t.Errorf("Classify(%s) = %s/%v, want %s/%v", tc.ip, name, kind, tc.provider, tc.kind)
		}
	}
}

func TestProviderLookup(t *testing.T) {
	c := DefaultClassifier()
	p, ok := c.Provider("Cloudflare")
	if !ok || p.Kind != CDN {
		t.Fatalf("Provider(Cloudflare) = %+v, %v", p, ok)
	}
	if _, ok := c.Provider("Akamai"); ok {
		t.Fatal("Akamai must be absent (publishes no IP range list, §5.4)")
	}
}

func TestProviderNamesSorted(t *testing.T) {
	names := DefaultClassifier().ProviderNames()
	if len(names) != 7 {
		t.Fatalf("providers = %d, want 7", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names unsorted")
		}
	}
}

func TestKindString(t *testing.T) {
	if Cloud.String() != "Cloud" || CDN.String() != "CDN" || Private.String() != "Private" {
		t.Error("kind labels wrong")
	}
}

func TestPrefixesDisjoint(t *testing.T) {
	// The classifier's correctness relies on each provider owning a
	// disjoint block of the simulated address plan.
	c := DefaultClassifier()
	var all []netip.Prefix
	for _, name := range c.ProviderNames() {
		p, _ := c.Provider(name)
		all = append(all, p.Prefixes...)
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Errorf("prefixes %v and %v overlap", all[i], all[j])
			}
		}
	}
}
