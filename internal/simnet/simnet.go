// Package simnet is the in-memory Internet the study runs against: IP
// endpoints, listeners, a dialer, per-endpoint fault injection (connection
// refused, reset, timeout) and a pluggable firewall modeling national
// censorship (§7.1.2). Connections implement net.Conn with deadlines, so
// protocol code written against real sockets runs unmodified.
//
// Waiting time is collapsed: a blackholed endpoint fails the dial with a
// timeout error immediately instead of consuming wall-clock time, which
// keeps full-world scans (135k+ hosts, 3 retries) fast while preserving the
// error classification the analysis depends on.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
)

// Errors surfaced by the simulated network. They correspond to the
// exception rows of Table 2.
var (
	ErrConnRefused = errors.New("simnet: connection refused")
	ErrConnReset   = errors.New("simnet: connection reset by peer")
	ErrTimedOut    = errors.New("simnet: operation timed out")
	ErrConnClosed  = errors.New("simnet: connection closed")
	ErrFirewalled  = errors.New("simnet: blocked by national firewall")
)

// Fault is a per-endpoint failure mode.
type Fault int

// Endpoint failure modes.
const (
	// FaultNone delivers connections normally.
	FaultNone Fault = iota
	// FaultRefuse rejects dials with ErrConnRefused.
	FaultRefuse
	// FaultTimeout blackholes dials; they fail with ErrTimedOut.
	FaultTimeout
	// FaultReset accepts the dial then resets the connection on first use.
	FaultReset
)

// FirewallFunc inspects a dial and returns a non-nil error to block it.
// The source is an opaque vantage label (e.g. "us-west") so censorship can
// be modeled per route.
type FirewallFunc func(fromVantage string, to netip.AddrPort) error

// Addr is a net.Addr for simulated endpoints.
type Addr struct{ AP netip.AddrPort }

// Network returns "sim".
func (a Addr) Network() string { return "sim" }

// String returns the ip:port form.
func (a Addr) String() string { return a.AP.String() }

// Handler serves one accepted connection. The connection is closed by the
// handler (or abandoned; the peer then sees EOF when the handler returns).
type Handler func(conn net.Conn)

// Network is the simulated Internet.
type Network struct {
	mu        sync.RWMutex
	listeners map[netip.AddrPort]*Listener
	handlers  map[netip.AddrPort]Handler
	faults    map[netip.AddrPort]Fault
	firewall  FirewallFunc
	nextPort  uint16
	dials     int64
}

// New creates an empty network.
func New() *Network {
	return &Network{
		listeners: make(map[netip.AddrPort]*Listener),
		handlers:  make(map[netip.AddrPort]Handler),
		faults:    make(map[netip.AddrPort]Fault),
		nextPort:  40000,
	}
}

// Handle registers a handler for an endpoint. Unlike Listen, a handler
// consumes no goroutine until a connection arrives, which lets a simulated
// world host hundreds of thousands of endpoints cheaply. A nil handler
// removes the registration.
func (n *Network) Handle(ep netip.AddrPort, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.handlers, ep)
		return
	}
	n.handlers[ep] = h
}

// HasEndpoint reports whether a listener or handler is registered at ep.
func (n *Network) HasEndpoint(ep netip.AddrPort) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, l := n.listeners[ep]
	_, h := n.handlers[ep]
	return l || h
}

// SetFault installs a failure mode on an endpoint.
func (n *Network) SetFault(ep netip.AddrPort, f Fault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f == FaultNone {
		delete(n.faults, ep)
		return
	}
	n.faults[ep] = f
}

// SetFirewall installs the censorship hook; nil disables it.
func (n *Network) SetFirewall(f FirewallFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.firewall = f
}

// DialCount reports the number of Dial attempts observed (retry
// accounting in tests and benches).
func (n *Network) DialCount() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.dials
}

// Listen opens a listener on the endpoint.
func (n *Network) Listen(ep netip.AddrPort) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, busy := n.listeners[ep]; busy {
		return nil, fmt.Errorf("simnet: address %s already in use", ep)
	}
	l := &Listener{
		net:     n,
		addr:    ep,
		backlog: make(chan *Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[ep] = l
	return l, nil
}

// Dial connects to an endpoint from the given vantage. It honours the
// context, endpoint faults and the firewall.
func (n *Network) Dial(ctx context.Context, fromVantage string, ep netip.AddrPort) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.dials++
	fault := n.faults[ep]
	fw := n.firewall
	l := n.listeners[ep]
	h := n.handlers[ep]
	n.mu.Unlock()

	if fw != nil {
		if err := fw(fromVantage, ep); err != nil {
			return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: err}
		}
	}
	switch fault {
	case FaultRefuse:
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: ErrConnRefused}
	case FaultTimeout:
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: ErrTimedOut}
	}
	if l == nil && h == nil {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: ErrConnRefused}
	}

	n.mu.Lock()
	clientPort := n.nextPort
	n.nextPort++
	if n.nextPort == 0 {
		n.nextPort = 40000
	}
	n.mu.Unlock()
	clientAddr := Addr{netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), clientPort)}
	client, server := Pipe(clientAddr, Addr{ep})

	if fault == FaultReset {
		// The TCP handshake completes but the connection dies on use.
		client.Reset()
		return client, nil
	}

	if h != nil {
		go func() {
			h(server)
			server.Close()
		}()
		return client, nil
	}

	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: ErrConnRefused}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Listener accepts simulated connections.
type Listener struct {
	net       *Network
	addr      netip.AddrPort
	backlog   chan *Conn
	done      chan struct{}
	closeOnce sync.Once
}

// Accept waits for the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrConnClosed
	}
}

// Close stops the listener and removes it from the network.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

// Addr returns the listener's endpoint.
func (l *Listener) Addr() net.Addr { return Addr{l.addr} }

// IsTimeout reports whether err represents a timed-out operation.
func IsTimeout(err error) bool {
	return errors.Is(err, ErrTimedOut) || errors.Is(err, context.DeadlineExceeded)
}

// IsRefused reports whether err represents a refused connection.
func IsRefused(err error) bool { return errors.Is(err, ErrConnRefused) }

// IsReset reports whether err represents a reset connection.
func IsReset(err error) bool { return errors.Is(err, ErrConnReset) }
