// Package simnet is the in-memory Internet the study runs against: IP
// endpoints, listeners, a dialer, per-endpoint fault injection (connection
// refused, reset, timeout) and a pluggable firewall modeling national
// censorship (§7.1.2). Connections implement net.Conn with deadlines, so
// protocol code written against real sockets runs unmodified.
//
// Waiting time is collapsed: a blackholed endpoint fails the dial with a
// timeout error immediately instead of consuming wall-clock time, which
// keeps full-world scans (135k+ hosts, 3 retries) fast while preserving the
// error classification the analysis depends on.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Errors surfaced by the simulated network. They correspond to the
// exception rows of Table 2.
var (
	ErrConnRefused = errors.New("simnet: connection refused")
	ErrConnReset   = errors.New("simnet: connection reset by peer")
	ErrTimedOut    = errors.New("simnet: operation timed out")
	ErrConnClosed  = errors.New("simnet: connection closed")
	ErrFirewalled  = errors.New("simnet: blocked by national firewall")
)

// ErrFirewallTimeout is what a censored dial fails with: it classifies as
// a timeout (on the wire, censorship is indistinguishable from packet
// loss, §7.1.2) while staying identifiable as a deterministic block via
// errors.Is(err, ErrFirewalled) — so a scanner can classify it once
// instead of burning its retry budget re-dialing a censored route.
var ErrFirewallTimeout = fmt.Errorf("%w: %w", ErrTimedOut, ErrFirewalled)

// Fault is a per-endpoint failure mode.
type Fault int

// Endpoint failure modes. The first four are permanent: every dial (or
// every use) fails the same way. The transient modes model the long tail
// of flaky hosts the paper's scanner survives by re-queuing (§4.2.3): they
// fail some dials and let others through, deterministically for a given
// network seed.
const (
	// FaultNone delivers connections normally.
	FaultNone Fault = iota
	// FaultRefuse rejects dials with ErrConnRefused.
	FaultRefuse
	// FaultTimeout blackholes dials; they fail with ErrTimedOut.
	FaultTimeout
	// FaultReset accepts the dial then resets the connection on first use.
	FaultReset
	// FaultFlaky fails the endpoint's first FailCount dials (with FailWith,
	// default ErrConnReset) and serves normally afterwards — a host that
	// recovers under the scanner's retry policy.
	FaultFlaky
	// FaultProb fails each dial independently with Probability, decided by
	// a deterministic per-(endpoint, dial-ordinal) hash of the network
	// seed, so runs with the same seed see the same failure sequence.
	FaultProb
	// FaultMidHandshake completes the TCP dial and lets the client send
	// (the ClientHello goes out) but every byte the server sends back is
	// replaced by a connection reset — an RST arriving mid-handshake.
	FaultMidHandshake
	// FaultTruncate completes the dial but cuts the server-to-client
	// stream after TruncateBytes bytes, then EOF — a truncated response.
	FaultTruncate
)

// transient reports whether the mode can let later dials succeed.
func (f Fault) transient() bool { return f == FaultFlaky || f == FaultProb }

// FaultSpec is the full description of an endpoint failure mode. The zero
// value means "no fault". Legacy SetFault(ep, mode) is shorthand for
// SetFaultSpec(ep, FaultSpec{Mode: mode}).
type FaultSpec struct {
	// Mode selects the failure behaviour.
	Mode Fault
	// FailCount is how many initial dials FaultFlaky fails.
	FailCount int
	// Probability is FaultProb's per-dial failure chance in [0, 1].
	Probability float64
	// FailWith overrides the error FaultFlaky/FaultProb dials fail with;
	// nil means ErrConnReset.
	FailWith error
	// DialLatency is injected before the dial resolves (success or
	// failure), advancing the network's clock. Usable with any Mode,
	// including FaultNone, to model slow responders.
	DialLatency time.Duration
	// TruncateBytes is how many server-sent bytes FaultTruncate delivers
	// before the stream ends.
	TruncateBytes int
}

// isZero reports whether the spec configures nothing.
func (fs FaultSpec) isZero() bool { return fs.Mode == FaultNone && fs.DialLatency == 0 }

// FirewallFunc inspects a dial and returns a non-nil error to block it.
// The source is an opaque vantage label (e.g. "us-west") so censorship can
// be modeled per route.
type FirewallFunc func(fromVantage string, to netip.AddrPort) error

// Addr is a net.Addr for simulated endpoints.
type Addr struct{ AP netip.AddrPort }

// Network returns "sim".
func (a Addr) Network() string { return "sim" }

// String returns the ip:port form.
func (a Addr) String() string { return a.AP.String() }

// Handler serves one accepted connection. The connection is closed by the
// handler (or abandoned; the peer then sees EOF when the handler returns).
type Handler func(conn net.Conn)

// Network is the simulated Internet.
type Network struct {
	mu        sync.RWMutex
	listeners map[netip.AddrPort]*Listener
	handlers  map[netip.AddrPort]Handler
	faults    map[netip.AddrPort]FaultSpec
	dialSeq   map[netip.AddrPort]int64
	firewall  FirewallFunc
	clock     simclock.Clock
	seed      int64
	nextPort  uint16
	dials     int64
}

// New creates an empty network on a collapsing virtual clock (injected
// latency advances simulated time only).
func New() *Network {
	return NewSized(0)
}

// NewSized is New with a capacity hint for the endpoint tables. A
// full-scale world registers hundreds of thousands of handlers; sizing the
// maps up front avoids rehashing the tables a dozen times while it builds.
func NewSized(hint int) *Network {
	return &Network{
		listeners: make(map[netip.AddrPort]*Listener),
		handlers:  make(map[netip.AddrPort]Handler, hint),
		faults:    make(map[netip.AddrPort]FaultSpec),
		dialSeq:   make(map[netip.AddrPort]int64),
		clock:     simclock.NewVirtual(time.Unix(0, 0)),
		nextPort:  40000,
	}
}

// SetClock installs the clock used for injected latency. Simulation wires
// a shared virtual clock; nil restores the default.
func (n *Network) SetClock(c simclock.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c == nil {
		c = simclock.NewVirtual(time.Unix(0, 0))
	}
	n.clock = c
}

// SetSeed fixes the seed behind probabilistic faults; identical seeds give
// identical per-endpoint failure sequences.
func (n *Network) SetSeed(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seed = seed
}

// Handle registers a handler for an endpoint. Unlike Listen, a handler
// consumes no goroutine until a connection arrives, which lets a simulated
// world host hundreds of thousands of endpoints cheaply. A nil handler
// removes the registration.
func (n *Network) Handle(ep netip.AddrPort, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.handlers, ep)
		return
	}
	n.handlers[ep] = h
}

// HasEndpoint reports whether a listener or handler is registered at ep.
func (n *Network) HasEndpoint(ep netip.AddrPort) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, l := n.listeners[ep]
	_, h := n.handlers[ep]
	return l || h
}

// SetFault installs a simple failure mode on an endpoint.
func (n *Network) SetFault(ep netip.AddrPort, f Fault) {
	n.SetFaultSpec(ep, FaultSpec{Mode: f})
}

// SetFaultSpec installs a full failure description on an endpoint; a zero
// spec removes any existing fault. Installing a spec resets the endpoint's
// dial ordinal, so FaultFlaky counts from the installation point.
func (n *Network) SetFaultSpec(ep netip.AddrPort, fs FaultSpec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.dialSeq, ep)
	if fs.isZero() {
		delete(n.faults, ep)
		return
	}
	n.faults[ep] = fs
}

// FaultAt reports the fault spec installed on an endpoint.
func (n *Network) FaultAt(ep netip.AddrPort) FaultSpec {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.faults[ep]
}

// SetFirewall installs the censorship hook; nil disables it.
func (n *Network) SetFirewall(f FirewallFunc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.firewall = f
}

// DialCount reports the number of Dial attempts observed (retry
// accounting in tests and benches).
func (n *Network) DialCount() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.dials
}

// Listen opens a listener on the endpoint.
func (n *Network) Listen(ep netip.AddrPort) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, busy := n.listeners[ep]; busy {
		return nil, fmt.Errorf("simnet: address %s already in use", ep)
	}
	l := &Listener{
		net:     n,
		addr:    ep,
		backlog: make(chan *Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[ep] = l
	return l, nil
}

// Dial connects to an endpoint from the given vantage. It honours the
// context, endpoint faults (permanent and transient), injected latency and
// the firewall.
func (n *Network) Dial(ctx context.Context, fromVantage string, ep netip.AddrPort) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.dials++
	spec := n.faults[ep]
	seq := n.dialSeq[ep]
	if spec.Mode.transient() {
		n.dialSeq[ep] = seq + 1
	}
	fw := n.firewall
	clock := n.clock
	seed := n.seed
	l := n.listeners[ep]
	h := n.handlers[ep]
	n.mu.Unlock()

	if fw != nil {
		if err := fw(fromVantage, ep); err != nil {
			return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: err}
		}
	}
	if spec.DialLatency > 0 {
		if err := clock.Sleep(ctx, spec.DialLatency); err != nil {
			return nil, err
		}
	}
	dialErr := func(err error) (net.Conn, error) {
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: err}
	}
	switch spec.Mode {
	case FaultRefuse:
		return dialErr(ErrConnRefused)
	case FaultTimeout:
		return dialErr(ErrTimedOut)
	case FaultFlaky:
		if seq < int64(spec.FailCount) {
			return dialErr(spec.failErr())
		}
	case FaultProb:
		if dialChance(seed, ep, seq) < spec.Probability {
			return dialErr(spec.failErr())
		}
	default:
		// FaultNone and the connection-stage faults (reset, mid-handshake,
		// truncate) do not interfere with the dial; they apply after the
		// pipe exists.
	}
	if l == nil && h == nil {
		return dialErr(ErrConnRefused)
	}

	n.mu.Lock()
	clientPort := n.nextPort
	n.nextPort++
	if n.nextPort == 0 {
		n.nextPort = 40000
	}
	n.mu.Unlock()
	clientAddr := Addr{netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), clientPort)}
	client, server := Pipe(clientAddr, Addr{ep})

	switch spec.Mode {
	case FaultReset:
		// The TCP handshake completes but the connection dies on use; the
		// server side never sees it.
		client.Reset()
		return client, nil
	case FaultMidHandshake:
		// The client's outbound bytes reach the server, but everything the
		// server answers is replaced by a reset.
		client.ResetInbound()
	case FaultTruncate:
		client.TruncateInbound(spec.TruncateBytes)
	default:
		// FaultNone and the dial-stage faults (refuse, timeout, flaky,
		// probabilistic) were consumed before the pipe was built.
	}

	if h != nil {
		go func() {
			h(server)
			server.Close()
		}()
		return client, nil
	}

	select {
	case l.backlog <- server:
		// The listener may have closed between the send and now; its Close
		// drains the backlog, but a conn that slipped in after the drain
		// must not be left half-open.
		select {
		case <-l.done:
			server.Close()
			return dialErr(ErrConnRefused)
		default:
		}
		return client, nil
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "sim", Addr: Addr{ep}, Err: ErrConnRefused}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// failErr picks the error a transient fault fails with.
func (fs FaultSpec) failErr() error {
	if fs.FailWith != nil {
		return fs.FailWith
	}
	return ErrConnReset
}

// dialChance derives a deterministic value in [0, 1) from the network
// seed, the endpoint and the dial ordinal, so probabilistic faults are
// reproducible regardless of goroutine scheduling.
func dialChance(seed int64, ep netip.AddrPort, seq int64) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
		buf[8+i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])
	b, _ := ep.MarshalBinary()
	h.Write(b)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Listener accepts simulated connections.
type Listener struct {
	net       *Network
	addr      netip.AddrPort
	backlog   chan *Conn
	done      chan struct{}
	closeOnce sync.Once
}

// Accept waits for the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrConnClosed
	}
}

// Close stops the listener and removes it from the network. Connections
// already queued in the backlog but never accepted are closed, so their
// peers see EOF instead of hanging on a half-open conn.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr returns the listener's endpoint.
func (l *Listener) Addr() net.Addr { return Addr{l.addr} }

// IsTimeout reports whether err represents a timed-out operation.
func IsTimeout(err error) bool {
	return errors.Is(err, ErrTimedOut) || errors.Is(err, context.DeadlineExceeded)
}

// IsRefused reports whether err represents a refused connection.
func IsRefused(err error) bool { return errors.Is(err, ErrConnRefused) }

// IsReset reports whether err represents a reset connection.
func IsReset(err error) bool { return errors.Is(err, ErrConnReset) }

// IsFirewalled reports whether err represents a deterministic censorship
// block; such failures never succeed on retry.
func IsFirewalled(err error) bool { return errors.Is(err, ErrFirewalled) }
