package simnet

import (
	"context"
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/simclock"
)

// echoHandler registers a handler that answers any received bytes with
// "pong".
func echoHandler(n *Network, addr netip.AddrPort) {
	n.Handle(addr, func(c net.Conn) {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err == nil {
			c.Write([]byte("pong"))
		}
	})
}

func TestFaultFlakyRecovers(t *testing.T) {
	n := New()
	addr := ep("192.0.2.30:443")
	echoHandler(n, addr)
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultFlaky, FailCount: 2})

	for i := 0; i < 2; i++ {
		if _, err := n.Dial(context.Background(), "lab", addr); !IsReset(err) {
			t.Fatalf("dial %d: err = %v, want reset", i, err)
		}
	}
	c, err := n.Dial(context.Background(), "lab", addr)
	if err != nil {
		t.Fatalf("dial after FailCount: %v", err)
	}
	defer c.Close()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("recovered endpoint: %v %q", err, buf)
	}
}

func TestFaultFlakyCustomError(t *testing.T) {
	n := New()
	addr := ep("192.0.2.31:443")
	echoHandler(n, addr)
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultFlaky, FailCount: 1, FailWith: ErrTimedOut})
	if _, err := n.Dial(context.Background(), "lab", addr); !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if _, err := n.Dial(context.Background(), "lab", addr); err != nil {
		t.Fatalf("second dial: %v", err)
	}
}

func TestFaultProbDeterministic(t *testing.T) {
	seq := func(seed int64) []bool {
		n := New()
		n.SetSeed(seed)
		addr := ep("192.0.2.32:443")
		echoHandler(n, addr)
		n.SetFaultSpec(addr, FaultSpec{Mode: FaultProb, Probability: 0.5})
		var out []bool
		for i := 0; i < 40; i++ {
			_, err := n.Dial(context.Background(), "lab", addr)
			out = append(out, err == nil)
		}
		return out
	}
	a, b := seq(7), seq(7)
	other := seq(8)
	fails, diff := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dial %d", i)
		}
		if !a[i] {
			fails++
		}
		if a[i] != other[i] {
			diff = true
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("p=0.5 produced %d/%d failures", fails, len(a))
	}
	if !diff {
		t.Error("different seeds produced identical sequences")
	}
}

func TestFaultProbExtremes(t *testing.T) {
	n := New()
	addr := ep("192.0.2.33:443")
	echoHandler(n, addr)
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultProb, Probability: 1})
	if _, err := n.Dial(context.Background(), "lab", addr); err == nil {
		t.Fatal("p=1 dial succeeded")
	}
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultProb, Probability: 0})
	if _, err := n.Dial(context.Background(), "lab", addr); err != nil {
		t.Fatalf("p=0 dial failed: %v", err)
	}
}

func TestFaultMidHandshake(t *testing.T) {
	n := New()
	addr := ep("192.0.2.34:443")
	got := make(chan []byte, 1)
	n.Handle(addr, func(c net.Conn) {
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err == nil {
			got <- buf
		}
		c.Write([]byte("ServerHello"))
	})
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultMidHandshake})
	c, err := n.Dial(context.Background(), "lab", addr)
	if err != nil {
		t.Fatalf("mid-handshake fault must complete the dial: %v", err)
	}
	defer c.Close()
	// Our request goes out and reaches the server...
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("client write: %v", err)
	}
	select {
	case b := <-got:
		if string(b) != "hello" {
			t.Fatalf("server received %q", b)
		}
	case <-time.After(time.Second):
		t.Fatal("server never saw the client bytes")
	}
	// ...but everything the server answers is replaced by a reset.
	buf := make([]byte, 4)
	if _, err := c.Read(buf); !IsReset(err) {
		t.Fatalf("read err = %v, want reset", err)
	}
}

func TestFaultTruncate(t *testing.T) {
	n := New()
	addr := ep("192.0.2.35:443")
	n.Handle(addr, func(c net.Conn) {
		c.Write([]byte("0123456789"))
	})
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultTruncate, TruncateBytes: 4})
	c, err := n.Dial(context.Background(), "lab", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "0123" {
		t.Fatalf("got %q, want truncation after 4 bytes", got)
	}
}

func TestDialLatencyAdvancesVirtualClock(t *testing.T) {
	n := New()
	clock := simclock.NewVirtual(time.Unix(0, 0))
	n.SetClock(clock)
	addr := ep("192.0.2.36:443")
	echoHandler(n, addr)
	n.SetFaultSpec(addr, FaultSpec{DialLatency: 300 * time.Millisecond})
	wall := time.Now()
	if _, err := n.Dial(context.Background(), "lab", addr); err != nil {
		t.Fatal(err)
	}
	if time.Since(wall) > 100*time.Millisecond {
		t.Error("injected latency consumed wall-clock time")
	}
	if clock.Elapsed() != 300*time.Millisecond {
		t.Errorf("virtual clock advanced %v, want 300ms", clock.Elapsed())
	}
}

func TestSetFaultSpecResetsDialOrdinal(t *testing.T) {
	n := New()
	addr := ep("192.0.2.37:443")
	echoHandler(n, addr)
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultFlaky, FailCount: 1})
	n.Dial(context.Background(), "lab", addr) // consumes the failure
	if _, err := n.Dial(context.Background(), "lab", addr); err != nil {
		t.Fatalf("recovered dial failed: %v", err)
	}
	// Re-installing the fault starts the count over.
	n.SetFaultSpec(addr, FaultSpec{Mode: FaultFlaky, FailCount: 1})
	if _, err := n.Dial(context.Background(), "lab", addr); !IsReset(err) {
		t.Fatalf("err = %v, want reset after re-install", err)
	}
}

func TestListenerCloseDrainsBacklog(t *testing.T) {
	n := New()
	addr := ep("192.0.2.38:443")
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Queue connections that are never accepted.
	var conns []net.Conn
	for i := 0; i < 5; i++ {
		c, err := n.Dial(context.Background(), "lab", addr)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	l.Close()
	// Every queued peer must see EOF (or a dead conn), not hang.
	for i, c := range conns {
		done := make(chan error, 1)
		go func(c net.Conn) {
			buf := make([]byte, 1)
			_, err := c.Read(buf)
			done <- err
		}(c)
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("conn %d: read succeeded on drained conn", i)
			}
		case <-time.After(time.Second):
			t.Fatalf("conn %d: peer hangs on half-open conn after listener close", i)
		}
	}
}

func TestFirewallTimeoutIsBothTimeoutAndFirewalled(t *testing.T) {
	if !IsTimeout(ErrFirewallTimeout) {
		t.Error("firewall timeout does not classify as timeout")
	}
	if !IsFirewalled(ErrFirewallTimeout) {
		t.Error("firewall timeout not identifiable as firewalled")
	}
	if IsFirewalled(ErrTimedOut) {
		t.Error("plain timeout misidentified as firewalled")
	}
}
