package simnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"os"
	"sync"
	"testing"
	"time"
)

func ep(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func TestListenDialRoundtrip(t *testing.T) {
	n := New()
	l, err := n.Listen(ep("192.0.2.1:443"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(append([]byte("re:"), buf...))
		done <- err
	}()

	c, err := n.Dial(context.Background(), "lab", ep("192.0.2.1:443"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "re:hello" {
		t.Fatalf("echo = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialNoListenerRefused(t *testing.T) {
	n := New()
	_, err := n.Dial(context.Background(), "lab", ep("192.0.2.9:443"))
	if !IsRefused(err) {
		t.Fatalf("err = %v, want refused", err)
	}
}

func TestFaultRefuse(t *testing.T) {
	n := New()
	addr := ep("192.0.2.2:443")
	l, _ := n.Listen(addr)
	defer l.Close()
	n.SetFault(addr, FaultRefuse)
	if _, err := n.Dial(context.Background(), "lab", addr); !IsRefused(err) {
		t.Fatalf("err = %v, want refused", err)
	}
	n.SetFault(addr, FaultNone)
	if _, err := n.Dial(context.Background(), "lab", addr); err != nil {
		t.Fatalf("after clearing fault: %v", err)
	}
}

func TestFaultTimeout(t *testing.T) {
	n := New()
	addr := ep("192.0.2.3:443")
	n.SetFault(addr, FaultTimeout)
	start := time.Now()
	_, err := n.Dial(context.Background(), "lab", addr)
	if !IsTimeout(err) {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("timeout fault consumed wall-clock time")
	}
}

func TestFaultReset(t *testing.T) {
	n := New()
	addr := ep("192.0.2.4:443")
	l, _ := n.Listen(addr)
	defer l.Close()
	n.SetFault(addr, FaultReset)
	c, err := n.Dial(context.Background(), "lab", addr)
	if err != nil {
		t.Fatalf("dial with reset fault should succeed: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := c.Read(buf); !IsReset(err) {
		t.Fatalf("read err = %v, want reset", err)
	}
}

func TestFirewallBlocks(t *testing.T) {
	n := New()
	addr := ep("203.0.113.7:443")
	l, _ := n.Listen(addr)
	defer l.Close()
	n.SetFirewall(func(from string, to netip.AddrPort) error {
		if from == "outside" && to == addr {
			return ErrFirewalled
		}
		return nil
	})
	if _, err := n.Dial(context.Background(), "outside", addr); !errors.Is(err, ErrFirewalled) {
		t.Fatalf("err = %v, want firewalled", err)
	}
	if _, err := n.Dial(context.Background(), "inside", addr); err != nil {
		t.Fatalf("inside vantage blocked: %v", err)
	}
}

func TestDialCancelledContext(t *testing.T) {
	n := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Dial(ctx, "lab", ep("192.0.2.5:443")); err == nil {
		t.Fatal("dial with cancelled context succeeded")
	}
}

func TestListenDuplicate(t *testing.T) {
	n := New()
	addr := ep("192.0.2.6:80")
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen(addr); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	l.Close()
	if _, err := n.Listen(addr); err != nil {
		t.Fatalf("listen after close: %v", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := New()
	l, _ := n.Listen(ep("192.0.2.7:80"))
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Accept returned nil after close")
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on close")
	}
}

func TestConnCloseGivesEOF(t *testing.T) {
	client, server := Pipe(Addr{ep("10.0.0.1:1")}, Addr{ep("10.0.0.2:2")})
	if _, err := client.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	buf := make([]byte, 3)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatalf("buffered data lost after close: %v", err)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	if _, err := server.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	client, _ := Pipe(Addr{ep("10.0.0.1:1")}, Addr{ep("10.0.0.2:2")})
	client.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	_, err := client.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("deadline read blocked too long")
	}
}

func TestDeadlineClearedAllowsRead(t *testing.T) {
	client, server := Pipe(Addr{ep("10.0.0.1:1")}, Addr{ep("10.0.0.2:2")})
	client.SetReadDeadline(time.Now().Add(-time.Second))
	buf := make([]byte, 1)
	if _, err := client.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v", err)
	}
	client.SetReadDeadline(time.Time{})
	server.Write([]byte("z"))
	if _, err := client.Read(buf); err != nil || buf[0] != 'z' {
		t.Fatalf("read after clearing deadline: %v %q", err, buf)
	}
}

func TestAddrReporting(t *testing.T) {
	n := New()
	addr := ep("192.0.2.8:443")
	l, _ := n.Listen(addr)
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		if c != nil {
			c.Close()
		}
	}()
	c, err := n.Dial(context.Background(), "lab", addr)
	if err != nil {
		t.Fatal(err)
	}
	if c.RemoteAddr().String() != "192.0.2.8:443" {
		t.Errorf("RemoteAddr = %s", c.RemoteAddr())
	}
	if c.RemoteAddr().Network() != "sim" {
		t.Errorf("Network = %s", c.RemoteAddr().Network())
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New()
	addr := ep("192.0.2.10:443")
	l, _ := n.Listen(addr)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 1)
				if _, err := io.ReadFull(c, buf); err == nil {
					c.Write(buf)
				}
			}()
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := n.Dial(context.Background(), "lab", addr)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer c.Close()
			c.Write([]byte{byte(i)})
			buf := make([]byte, 1)
			if _, err := io.ReadFull(c, buf); err != nil || buf[0] != byte(i) {
				t.Errorf("dial %d echo: %v %d", i, err, buf[0])
			}
		}(i)
	}
	wg.Wait()
	if n.DialCount() < 50 {
		t.Errorf("DialCount = %d, want >= 50", n.DialCount())
	}
}

func TestHandlerEndpoint(t *testing.T) {
	n := New()
	addr := ep("192.0.2.20:80")
	n.Handle(addr, func(c net.Conn) {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err == nil {
			c.Write([]byte("pong"))
		}
	})
	if !n.HasEndpoint(addr) {
		t.Fatal("HasEndpoint = false after Handle")
	}
	c, err := n.Dial(context.Background(), "lab", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "pong" {
		t.Fatalf("handler echo: %v %q", err, buf)
	}
	n.Handle(addr, nil)
	if n.HasEndpoint(addr) {
		t.Fatal("HasEndpoint = true after deregistration")
	}
	if _, err := n.Dial(context.Background(), "lab", addr); !IsRefused(err) {
		t.Fatalf("dial after deregistration = %v, want refused", err)
	}
}

func TestHandlerClosesConnOnReturn(t *testing.T) {
	n := New()
	addr := ep("192.0.2.21:80")
	n.Handle(addr, func(c net.Conn) {
		c.Write([]byte("bye"))
	})
	c, err := n.Dial(context.Background(), "lab", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := io.ReadAll(c)
	if err != nil || string(got) != "bye" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}
