package simnet

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// pipeBuffer is one direction of an in-memory connection: a byte queue with
// blocking reads, close semantics and deadline support.
type pipeBuffer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	closed   bool  // no more writes will arrive
	readErr  error // error overriding normal reads (e.g. reset)
	limited  bool  // deliver at most `limit` more bytes, then EOF
	limit    int
	deadline time.Time
	timer    *time.Timer
}

func newPipeBuffer() *pipeBuffer {
	b := &pipeBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrConnClosed
	}
	if b.limited {
		// Deliver only what the truncation budget allows; the writer does
		// not notice, as with bytes lost after a mid-flight teardown.
		keep := p
		if len(keep) > b.limit {
			keep = keep[:b.limit]
		}
		b.buf = append(b.buf, keep...)
		b.limit -= len(keep)
		if b.limit == 0 {
			b.closed = true
		}
		b.cond.Broadcast()
		return len(p), nil
	}
	b.buf = append(b.buf, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.readErr != nil {
			return 0, b.readErr
		}
		if len(b.buf) > 0 {
			n := copy(p, b.buf)
			b.buf = b.buf[n:]
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		//lint:allow walltime net.Conn deadlines are wall-clock by contract; virtual-clock scans never set one (scanner.applyDeadline skips them)
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return 0, os.ErrDeadlineExceeded
		}
		b.cond.Wait()
	}
}

func (b *pipeBuffer) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// truncateAfter caps the bytes this buffer will ever deliver from now on:
// n more bytes (beyond anything already buffered), then EOF.
func (b *pipeBuffer) truncateAfter(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.limited = true
	b.limit = n
	if b.limit <= 0 {
		b.limit = 0
		b.closed = true
	}
	b.cond.Broadcast()
}

// fail makes all pending and future reads return err (connection reset).
func (b *pipeBuffer) fail(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.readErr = err
	b.cond.Broadcast()
}

func (b *pipeBuffer) setDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deadline = t
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		b.timer = time.AfterFunc(d, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
	}
	b.cond.Broadcast()
}

// Conn is an in-memory full-duplex connection implementing net.Conn.
type Conn struct {
	readBuf  *pipeBuffer // data written by the peer
	writeBuf *pipeBuffer // data we write for the peer
	local    net.Addr
	remote   net.Addr

	closeOnce sync.Once
	peer      *Conn
}

// Pipe creates a connected pair of in-memory connections with the given
// endpoint addresses.
func Pipe(clientAddr, serverAddr net.Addr) (client, server *Conn) {
	c2s := newPipeBuffer()
	s2c := newPipeBuffer()
	client = &Conn{readBuf: s2c, writeBuf: c2s, local: clientAddr, remote: serverAddr}
	server = &Conn{readBuf: c2s, writeBuf: s2c, local: serverAddr, remote: clientAddr}
	client.peer = server
	server.peer = client
	return client, server
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.readBuf.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.writeBuf.write(p) }

// Close implements net.Conn; it signals EOF to the peer.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.writeBuf.close()
		c.readBuf.close()
	})
	return nil
}

// Reset aborts the connection: the peer's reads (and ours) fail with
// ErrConnReset, modeling a TCP RST mid-handshake.
func (c *Conn) Reset() {
	c.writeBuf.fail(ErrConnReset)
	c.readBuf.fail(ErrConnReset)
}

// ResetInbound resets only the receiving direction: our writes still reach
// the peer, but everything the peer sends back is replaced by
// ErrConnReset — an RST arriving after our request went out.
func (c *Conn) ResetInbound() {
	c.readBuf.fail(ErrConnReset)
}

// TruncateInbound cuts the receiving direction after n more bytes: reads
// deliver at most n bytes of whatever the peer writes, then EOF. The peer
// keeps writing successfully, as with a connection torn down in transit.
func (c *Conn) TruncateInbound(n int) {
	c.readBuf.truncateAfter(n)
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.readBuf.setDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.readBuf.setDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn. Writes to the in-memory buffer
// never block, so the deadline is accepted and ignored.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }
