package acme_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/acme"
	"repro/internal/dnssim"
	"repro/internal/simclock"
)

func TestRegisteredDomain(t *testing.T) {
	cases := map[string]string{
		"portal.gov.br":          "portal.gov.br", // gov.br is a public suffix → portal.gov.br is the domain
		"www.portal.gov.br":      "portal.gov.br",
		"deep.www.portal.gov.br": "portal.gov.br",
		"moj.go.kr":              "moj.go.kr",
		"example.com":            "example.com",
		"www.example.com":        "example.com",
		"a.b.example.com":        "example.com",
		"*.portal.gov.uk":        "portal.gov.uk",
		"single":                 "single",
	}
	for in, want := range cases {
		if got := acme.RegisteredDomain(in); got != want {
			t.Errorf("RegisteredDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestIssuanceTracksClock proves satellite 1: NotBefore advances with the
// virtual clock instead of a fixed epoch.
func TestIssuanceTracksClock(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "portal.gov.br", "190.10.0.1")
	clk := h.server.Clock.(*simclock.Virtual)

	first, err := h.client.Obtain(context.Background(), []string{"portal.gov.br"}, h.key(2048))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(45 * 24 * time.Hour)
	second, err := h.client.Obtain(context.Background(), []string{"portal.gov.br"}, h.key(2048))
	if err != nil {
		t.Fatal(err)
	}
	got := second[0].NotBefore.Sub(first[0].NotBefore)
	if got != 45*24*time.Hour {
		t.Fatalf("NotBefore advanced %v, want 45 days", got)
	}
	if first[0].SerialNumber == second[0].SerialNumber {
		t.Fatalf("two issuances at different times share serial %d", first[0].SerialNumber)
	}
}

func TestPerDomainRateLimit(t *testing.T) {
	h := newHarness(t)
	h.server.Limits = acme.RateLimits{PerDomain: 2, PerDomainWindow: 7 * 24 * time.Hour}
	clk := h.server.Clock.(*simclock.Virtual)
	order := func(host string) error {
		_, err := h.server.NewOrder(acme.OrderRequest{
			Hostnames: []string{host}, KeyID: h.key(2048).ID.String(),
		})
		return err
	}

	// Two subdomains of one registered domain fill the window...
	if err := order("www.portal.gov.br"); err != nil {
		t.Fatal(err)
	}
	if err := order("mail.portal.gov.br"); err != nil {
		t.Fatal(err)
	}
	// ...the third is refused with a usable RetryAfter...
	err := order("api.portal.gov.br")
	if !errors.Is(err, acme.ErrRateLimited) {
		t.Fatalf("err = %v, want rate limit", err)
	}
	var rl *acme.RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("err = %T, want *RateLimitError", err)
	}
	if rl.Domain != "portal.gov.br" || rl.Scope != "registered-domain" {
		t.Fatalf("refusal = %+v", rl)
	}
	wantRetry := clk.Now().Add(7 * 24 * time.Hour)
	if !rl.RetryAfter.Equal(wantRetry) {
		t.Fatalf("RetryAfter = %v, want %v", rl.RetryAfter, wantRetry)
	}
	// ...an unrelated domain is unaffected...
	if err := order("other.gov.uk"); err != nil {
		t.Fatal(err)
	}
	// ...and the window slides open again.
	clk.Advance(7*24*time.Hour + time.Second)
	if err := order("api.portal.gov.br"); err != nil {
		t.Fatalf("after window: %v", err)
	}
}

func TestGlobalRateLimit(t *testing.T) {
	h := newHarness(t)
	h.server.Limits = acme.RateLimits{Global: 3, GlobalWindow: time.Hour}
	for i := 0; i < 3; i++ {
		host := fmt.Sprintf("site%d.gov.br", i)
		if _, err := h.server.NewOrder(acme.OrderRequest{
			Hostnames: []string{host}, KeyID: h.key(2048).ID.String(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := h.server.NewOrder(acme.OrderRequest{
		Hostnames: []string{"site3.gov.br"}, KeyID: h.key(2048).ID.String(),
	})
	var rl *acme.RateLimitError
	if !errors.As(err, &rl) || rl.Scope != "new-orders" {
		t.Fatalf("err = %v, want global rate limit", err)
	}
}

// TestRateLimitOverHTTP proves the typed refusal survives the wire: the
// client gets back a *RateLimitError carrying the server's RetryAfter.
func TestRateLimitOverHTTP(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "portal.gov.br", "190.10.0.1")
	h.server.Limits = acme.RateLimits{PerDomain: 1, PerDomainWindow: 24 * time.Hour}

	if _, err := h.client.Obtain(context.Background(), []string{"portal.gov.br"}, h.key(2048)); err != nil {
		t.Fatal(err)
	}
	_, err := h.client.Obtain(context.Background(), []string{"portal.gov.br"}, h.key(2048))
	if !errors.Is(err, acme.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited through the HTTP API", err)
	}
	var rl *acme.RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("err = %T, want *RateLimitError", err)
	}
	want := h.server.Clock.Now().Add(24 * time.Hour)
	if !rl.RetryAfter.Equal(want) {
		t.Fatalf("RetryAfter = %v, want %v", rl.RetryAfter, want)
	}
}

// TestProblemCodesSurviveHTTP proves errors.Is classification works on the
// client side of the API for non-rate-limit refusals too.
func TestProblemCodesSurviveHTTP(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "locked.gov.br", "190.10.0.5")
	h.zone.AddCAA("locked.gov.br", dnssim.CAARecord{Tag: "issue", Value: "digicert.com"})
	_, err := h.client.Obtain(context.Background(), []string{"locked.gov.br"}, h.key(2048))
	if !errors.Is(err, acme.ErrCAARefused) {
		t.Fatalf("err = %v, want ErrCAARefused through the HTTP API", err)
	}

	h.server.EnforceKeyReuse = true
	h.addSite(t, "a.gov.br", "190.10.0.6")
	h.addSite(t, "b.gov.uk", "190.10.0.7")
	key := h.key(2048)
	if _, err := h.client.Obtain(context.Background(), []string{"a.gov.br"}, key); err != nil {
		t.Fatal(err)
	}
	_, err = h.client.Obtain(context.Background(), []string{"b.gov.uk"}, key)
	if !errors.Is(err, acme.ErrKeyReuse) {
		t.Fatalf("err = %v, want ErrKeyReuse through the HTTP API", err)
	}
}

// TestPendingOrdersCreationOrder proves order bookkeeping is keyed on
// creation order, not map iteration, and that terminal finalizes retire
// orders (satellite: map-range audit under fleet load).
func TestPendingOrdersCreationOrder(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "ok.gov.br", "190.10.0.1")
	var ids []string
	for i := 0; i < 20; i++ {
		host := fmt.Sprintf("host%02d.gov.br", i)
		resp, err := h.server.NewOrder(acme.OrderRequest{
			Hostnames: []string{host}, KeyID: h.key(2048).ID.String(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.OrderID)
	}
	got := h.server.PendingOrders()
	if len(got) != len(ids) {
		t.Fatalf("pending = %d, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("pending[%d] = %s, want %s (creation order)", i, got[i], ids[i])
		}
	}
	// Failed finalize (no provisioning) is terminal: the order retires.
	if _, err := h.server.Finalize(context.Background(), ids[3]); err == nil {
		t.Fatal("finalize without provisioning succeeded")
	}
	for _, id := range h.server.PendingOrders() {
		if id == ids[3] {
			t.Fatal("terminally failed order still pending")
		}
	}
}

// TestOrderBookkeepingConcurrent hammers order creation and finalization
// from many goroutines; run under -race it proves the bookkeeping is
// synchronized, and afterwards the pending set must be exactly the orders
// never finalized, in creation order.
func TestOrderBookkeepingConcurrent(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "renew.gov.br", "190.10.0.1")
	const workers = 8
	const perWorker = 25
	idCh := make(chan string, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := h.server.NewOrder(acme.OrderRequest{
					Hostnames: []string{"renew.gov.br"},
					KeyID:     fmt.Sprintf("%032x", w*perWorker+i),
				})
				if err != nil {
					t.Error(err)
					return
				}
				idCh <- resp.OrderID
				if i%2 == 0 {
					// Half the orders reach a terminal state (challenge
					// failure — nothing provisioned) and must retire.
					h.server.Finalize(context.Background(), resp.OrderID)
				}
				h.server.PendingOrders()
			}
		}(w)
	}
	wg.Wait()
	close(idCh)
	seen := make(map[string]bool)
	for id := range idCh {
		if seen[id] {
			t.Fatalf("duplicate order id %s", id)
		}
		seen[id] = true
	}
	// Even i (13 of 25 per worker) reached a terminal finalize and retired.
	want := workers * (perWorker / 2)
	pending := h.server.PendingOrders()
	if len(pending) != want {
		t.Fatalf("pending = %d, want %d", len(pending), want)
	}
	for i := 1; i < len(pending); i++ {
		if pending[i-1] >= pending[i] {
			t.Fatalf("pending not in creation order: %s before %s", pending[i-1], pending[i])
		}
	}
}
