package acme_test

import (
	"bufio"
	"context"
	"errors"
	"math/rand"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/acme"
	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/dnssim"
	"repro/internal/httpsim"
	"repro/internal/simclock"
	"repro/internal/simnet"
	"repro/internal/truststore"
	"repro/internal/verify"
)

// harness wires an ACME CA, a DNS zone, a web server that can publish
// challenge tokens, and a client — a miniature certbot deployment.
type harness struct {
	net    *simnet.Network
	zone   *dnssim.Zone
	reg    *ca.Registry
	store  *truststore.Store
	server *acme.Server
	client *acme.Client
	rng    *rand.Rand

	mu     sync.Mutex
	tokens map[string]map[string]string // hostname -> token -> content
}

var acmeAPI = netip.MustParseAddrPort("172.30.0.1:80")

func newHarness(t *testing.T) *harness {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	h := &harness{
		net:    simnet.New(),
		zone:   dnssim.NewZone(),
		reg:    ca.NewRegistry(rng),
		rng:    rng,
		tokens: map[string]map[string]string{},
	}
	h.store = h.reg.BuildStore("apple", ca.AppleCounts, rng)
	authority := h.reg.MustLookup("Let's Encrypt Authority X3")
	clk := simclock.NewVirtual(time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC))
	h.server = acme.NewServer(authority, "letsencrypt.org", h.zone, h.net, clk)
	h.net.Handle(acmeAPI, h.server.Handle)
	h.client = &acme.Client{
		Server:     acmeAPI,
		ServerName: "acme-v02.api.letsencrypt.org",
		Net:        h.net,
		Vantage:    "webmaster",
		Provision:  h.provision,
	}
	return h
}

// addSite registers a hostname with a challenge-capable web server.
func (h *harness) addSite(t *testing.T, hostname, ip string) {
	t.Helper()
	addr := netip.MustParseAddr(ip)
	h.zone.AddA(hostname, addr)
	h.net.Handle(netip.AddrPortFrom(addr, 80), func(conn net.Conn) {
		defer conn.Close()
		req, err := httpsim.ReadRequest(bufio.NewReader(conn))
		if err != nil {
			return
		}
		if strings.HasPrefix(req.Path, acme.ChallengePath) {
			token := strings.TrimPrefix(req.Path, acme.ChallengePath)
			h.mu.Lock()
			content, ok := h.tokens[req.Host][token]
			h.mu.Unlock()
			if ok {
				httpsim.WriteResponse(conn, 200, nil, []byte(content))
				return
			}
			httpsim.WriteResponse(conn, 404, nil, nil)
			return
		}
		httpsim.WriteResponse(conn, 200, nil, []byte("hello"))
	})
}

func (h *harness) provision(hostname, token string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens[hostname] == nil {
		h.tokens[hostname] = map[string]string{}
	}
	h.tokens[hostname][token] = token
	return nil
}

func (h *harness) key(bits int) cert.PublicKey {
	return cert.NewKey(h.rng, cert.KeyRSA, bits)
}

func TestObtainEndToEnd(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "portal.gov.br", "190.10.0.1")
	chain, err := h.client.Obtain(context.Background(), []string{"portal.gov.br"}, h.key(2048))
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain = %d certs", len(chain))
	}
	v := &verify.Verifier{Store: h.store, Now: h.server.Clock.Now().AddDate(0, 1, 0)}
	if res := v.Verify(chain, "portal.gov.br"); !res.Valid() {
		t.Fatalf("issued chain invalid: %v (%s)", res.Code, res.Detail)
	}
	if got := chain[0].ValidityDays(); got != 90 {
		t.Errorf("lifetime = %d days, want Let's Encrypt's 90", got)
	}
}

func TestObtainMultiSAN(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "www.agency.gov.br", "190.10.0.2")
	h.addSite(t, "agency.gov.br", "190.10.0.3")
	chain, err := h.client.Obtain(context.Background(),
		[]string{"www.agency.gov.br", "agency.gov.br"}, h.key(2048))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"www.agency.gov.br", "agency.gov.br"} {
		if err := chain[0].VerifyHostname(name); err != nil {
			t.Errorf("issued cert does not cover %s", name)
		}
	}
}

func TestChallengeFailsWithoutProvisioning(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "portal.gov.br", "190.10.0.4")
	// Bypass the client's provisioning by driving the server directly.
	resp, err := h.server.NewOrder(acme.OrderRequest{
		Hostnames: []string{"portal.gov.br"},
		KeyID:     h.key(2048).ID.String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.server.Finalize(context.Background(), resp.OrderID)
	if !errors.Is(err, acme.ErrChallenge) {
		t.Fatalf("err = %v, want challenge failure", err)
	}
}

func TestChallengeFailsForUnresolvableHost(t *testing.T) {
	h := newHarness(t)
	_, err := h.client.Obtain(context.Background(), []string{"ghost.gov.br"}, h.key(2048))
	if !errors.Is(err, acme.ErrChallenge) && err == nil {
		t.Fatalf("err = %v", err)
	}
}

func TestCAAEnforced(t *testing.T) {
	h := newHarness(t)
	h.addSite(t, "locked.gov.br", "190.10.0.5")
	h.zone.AddCAA("locked.gov.br", dnssim.CAARecord{Tag: "issue", Value: "digicert.com"})
	_, err := h.client.Obtain(context.Background(), []string{"locked.gov.br"}, h.key(2048))
	if err == nil || !strings.Contains(err.Error(), "CAA") {
		t.Fatalf("err = %v, want CAA refusal", err)
	}
	// Authorizing the CA unblocks issuance.
	h.zone.AddCAA("locked.gov.br", dnssim.CAARecord{Tag: "issue", Value: "letsencrypt.org"})
	if _, err := h.client.Obtain(context.Background(), []string{"locked.gov.br"}, h.key(2048)); err != nil {
		t.Fatalf("authorized issuance failed: %v", err)
	}
}

func TestKeyReusePolicy(t *testing.T) {
	// The §8.1 recommendation: a key certified for one government must not
	// be certified for an unrelated hostname.
	h := newHarness(t)
	h.server.EnforceKeyReuse = true
	h.addSite(t, "portal.gov.bd", "190.10.0.6")
	h.addSite(t, "sub.portal.gov.bd", "190.10.0.7")
	h.addSite(t, "unrelated.gov.co", "190.10.0.8")

	key := h.key(2048)
	if _, err := h.client.Obtain(context.Background(), []string{"portal.gov.bd"}, key); err != nil {
		t.Fatalf("first issuance: %v", err)
	}
	// Same key for a subdomain: allowed (§8.1's explicit carve-out).
	if _, err := h.client.Obtain(context.Background(), []string{"sub.portal.gov.bd"}, key); err != nil {
		t.Fatalf("subdomain reissue: %v", err)
	}
	// Same key for an unrelated government: refused.
	_, err := h.client.Obtain(context.Background(), []string{"unrelated.gov.co"}, key)
	if err == nil || !strings.Contains(err.Error(), "already certified") {
		t.Fatalf("err = %v, want key-reuse refusal", err)
	}
	// Without the policy (today's reality), the same request succeeds.
	h.server.EnforceKeyReuse = false
	if _, err := h.client.Obtain(context.Background(), []string{"unrelated.gov.co"}, key); err != nil {
		t.Fatalf("issuance without policy: %v", err)
	}
}

func TestFinalizeUnknownOrder(t *testing.T) {
	h := newHarness(t)
	_, err := h.server.Finalize(context.Background(), "order-999999")
	if !errors.Is(err, acme.ErrUnknownOrder) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadKeyIDRejected(t *testing.T) {
	h := newHarness(t)
	_, err := h.server.NewOrder(acme.OrderRequest{Hostnames: []string{"x.gov.br"}, KeyID: "zz"})
	if err == nil {
		t.Fatal("malformed key id accepted")
	}
}

func TestHTTPAPIRejectsGarbage(t *testing.T) {
	h := newHarness(t)
	conn, err := h.net.Dial(context.Background(), "lab", acmeAPI)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := httpsim.Post(conn, "acme", "/acme/new-order", "application/json", []byte("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}
