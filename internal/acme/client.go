package acme

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"time"

	"repro/internal/cert"
	"repro/internal/httpsim"
)

func newReader(conn net.Conn) *bufio.Reader { return bufio.NewReader(conn) }

// Client drives the certbot side of the flow: order, provision the http-01
// tokens on the web server, finalize, parse the chain.
type Client struct {
	// Server is the ACME API endpoint.
	Server netip.AddrPort
	// ServerName is the Host header for API requests.
	ServerName string
	// Net dials the API.
	Net Dialer
	// Vantage labels the client's network position.
	Vantage string
	// Provision publishes the challenge token at
	// http://<hostname>/.well-known/acme-challenge/<token> — typically by
	// installing content on the host's web server. It must return once the
	// token is servable.
	Provision func(hostname, token string) error
}

// Obtain runs the complete issuance flow for the hostnames using the key.
func (c *Client) Obtain(ctx context.Context, hostnames []string, key cert.PublicKey) ([]*cert.Certificate, error) {
	orderResp, err := c.newOrder(ctx, hostnames, key)
	if err != nil {
		return nil, err
	}
	// Provision in sorted hostname order: the hook's side effects (and any
	// failure it surfaces first) must not depend on map iteration.
	hosts := make([]string, 0, len(orderResp.Tokens))
	for host := range orderResp.Tokens {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		if c.Provision == nil {
			return nil, fmt.Errorf("acme: no Provision hook to publish token for %s", host)
		}
		if err := c.Provision(host, orderResp.Tokens[host]); err != nil {
			return nil, fmt.Errorf("acme: provisioning %s: %w", host, err)
		}
	}
	return c.finalize(ctx, orderResp.OrderID)
}

func (c *Client) newOrder(ctx context.Context, hostnames []string, key cert.PublicKey) (OrderResponse, error) {
	req := OrderRequest{
		Hostnames: hostnames,
		KeyType:   key.Type.String(),
		KeyBits:   key.Bits,
		KeyID:     key.ID.String(),
	}
	var resp OrderResponse
	if err := c.post(ctx, "/acme/new-order", req, &resp); err != nil {
		return OrderResponse{}, err
	}
	return resp, nil
}

func (c *Client) finalize(ctx context.Context, orderID string) ([]*cert.Certificate, error) {
	var resp FinalizeResponse
	if err := c.post(ctx, "/acme/finalize", FinalizeRequest{OrderID: orderID}, &resp); err != nil {
		return nil, err
	}
	raw, err := base64.StdEncoding.DecodeString(resp.Chain)
	if err != nil {
		return nil, fmt.Errorf("acme: decoding chain: %w", err)
	}
	return cert.ParseChain(raw)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	conn, err := c.Net.Dial(ctx, c.Vantage, c.Server)
	if err != nil {
		return fmt.Errorf("acme: dialing CA: %w", err)
	}
	defer conn.Close()
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := httpsim.Post(conn, c.ServerName, path, "application/json", body)
	if err != nil {
		return fmt.Errorf("acme: %s: %w", path, err)
	}
	if resp.StatusCode != 200 {
		return problemFromResponse(path, resp.StatusCode, resp.Body)
	}
	return json.Unmarshal(resp.Body, out)
}

// problemFromResponse rebuilds a typed error from a problem document, so
// server-side refusals keep their errors.Is identity across the wire.
func problemFromResponse(path string, status int, body []byte) error {
	var problem FinalizeResponse
	if json.Unmarshal(body, &problem) != nil || (problem.Error == "" && problem.Code == "") {
		return fmt.Errorf("acme: %s: status %d", path, status)
	}
	if problem.Code == "rateLimited" {
		retryAfter, err := time.Parse(time.RFC3339Nano, problem.RetryAfter)
		if err == nil {
			return &RateLimitError{RetryAfter: retryAfter, Detail: problem.Error}
		}
	}
	return &ProblemError{Status: status, Code: problem.Code, Detail: problem.Error}
}
