// Package acme implements a miniature ACME certificate authority in the
// style of RFC 8555, the automation behind Let's Encrypt that the paper
// credits for free, easy https (§3.1) and builds its recommendations on
// (§8.1): the server issues http-01 challenges, validates them by fetching
// the token over the (simulated) network, enforces DNS CAA authorization
// (§5.3.4), and — implementing the paper's §8.1 proposal — can refuse to
// certify a public key that is already bound to an unrelated hostname.
package acme

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/dnssim"
	"repro/internal/httpsim"
)

// ChallengePath is the http-01 well-known prefix.
const ChallengePath = "/.well-known/acme-challenge/"

// Protocol errors, mirrored in HTTP responses as JSON problem documents.
var (
	ErrCAARefused    = errors.New("acme: CAA record forbids issuance")
	ErrChallenge     = errors.New("acme: challenge validation failed")
	ErrKeyReuse      = errors.New("acme: public key already certified for an unrelated hostname")
	ErrUnknownOrder  = errors.New("acme: unknown order")
	ErrOrderNotReady = errors.New("acme: order not ready")
)

// Dialer abstracts the network (satisfied by *simnet.Network).
type Dialer interface {
	Dial(ctx context.Context, fromVantage string, ep netip.AddrPort) (net.Conn, error)
}

// Server is the ACME certificate authority.
type Server struct {
	// Authority signs the issued certificates.
	Authority *ca.Authority
	// CADomain is the identity checked against CAA records
	// (e.g. "letsencrypt.org").
	CADomain string
	// Zone resolves identifiers and CAA policy.
	Zone *dnssim.Zone
	// Net fetches http-01 challenges.
	Net Dialer
	// EnforceKeyReuse activates the §8.1 recommendation: a key already
	// certified for a hostname can only be reused by that hostname or its
	// subdomains.
	EnforceKeyReuse bool
	// Clock returns issuance time; defaults to a fixed epoch for
	// determinism.
	Clock func() time.Time

	mu     sync.Mutex
	orders map[string]*order
	seq    int
	policy *ReusePolicy
}

type order struct {
	id        string
	hostnames []string
	key       cert.PublicKey
	tokens    map[string]string // hostname -> token
	validated bool
}

// NewServer assembles an ACME server.
func NewServer(authority *ca.Authority, caDomain string, zone *dnssim.Zone, d Dialer) *Server {
	return &Server{
		Authority: authority,
		CADomain:  caDomain,
		Zone:      zone,
		Net:       d,
		Clock: func() time.Time {
			return time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)
		},
		orders: make(map[string]*order),
		policy: NewReusePolicy(),
	}
}

// OrderRequest is the client's new-order payload.
type OrderRequest struct {
	Hostnames []string `json:"hostnames"`
	KeyType   string   `json:"key_type"` // "RSA" or "EC"
	KeyBits   int      `json:"key_bits"`
	KeyID     string   `json:"key_id"` // hex fingerprint of the key pair
}

// OrderResponse returns the order ID and per-hostname challenge tokens.
type OrderResponse struct {
	OrderID string            `json:"order_id"`
	Tokens  map[string]string `json:"tokens"`
}

// FinalizeRequest asks the server to validate and issue.
type FinalizeRequest struct {
	OrderID string `json:"order_id"`
}

// FinalizeResponse carries the issued chain.
type FinalizeResponse struct {
	// Chain is the base64 of cert.EncodeChain (leaf first).
	Chain string `json:"chain"`
	// Error is the problem description on failure.
	Error string `json:"error,omitempty"`
}

// NewOrder registers an order and mints challenge tokens.
func (s *Server) NewOrder(req OrderRequest) (OrderResponse, error) {
	if len(req.Hostnames) == 0 {
		return OrderResponse{}, errors.New("acme: order without hostnames")
	}
	key, err := parseKey(req)
	if err != nil {
		return OrderResponse{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	o := &order{
		id:        fmt.Sprintf("order-%06d", s.seq),
		hostnames: append([]string(nil), req.Hostnames...),
		key:       key,
		tokens:    make(map[string]string),
	}
	for i, h := range o.hostnames {
		o.tokens[strings.ToLower(h)] = fmt.Sprintf("tok-%06d-%d-%08x", s.seq, i, tokenHash(h, s.seq))
	}
	s.orders[o.id] = o
	return OrderResponse{OrderID: o.id, Tokens: copyTokens(o.tokens)}, nil
}

// Finalize validates every challenge and issues the certificate chain.
func (s *Server) Finalize(ctx context.Context, orderID string) ([]*cert.Certificate, error) {
	s.mu.Lock()
	o, ok := s.orders[orderID]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownOrder
	}

	// §5.3.4 / §8.2: CAA records restrict which CAs may issue.
	for _, h := range o.hostnames {
		name := strings.TrimPrefix(strings.ToLower(h), "*.")
		if !s.Zone.AllowsIssuance(name, s.CADomain) {
			return nil, fmt.Errorf("%w: %s restricts issuance", ErrCAARefused, name)
		}
	}

	// §8.1: refuse keys already bound to unrelated hostnames.
	if s.EnforceKeyReuse {
		if err := s.policy.Check(o.key.ID, o.hostnames); err != nil {
			return nil, err
		}
	}

	// http-01: fetch each token over the network, exactly as the CA's
	// validation servers would.
	for _, h := range o.hostnames {
		name := strings.TrimPrefix(strings.ToLower(h), "*.")
		if err := s.validateHTTP01(ctx, name, o.tokens[strings.ToLower(h)]); err != nil {
			return nil, err
		}
	}

	chain := s.Authority.Issue(ca.Request{
		// Issue retains the slice; the order keeps using its own copy.
		Hostnames: append([]string(nil), o.hostnames...),
		Key:       o.key,
		NotBefore: s.Clock(),
	})
	s.mu.Lock()
	o.validated = true
	s.mu.Unlock()
	s.policy.Record(o.key.ID, o.hostnames)
	return chain, nil
}

// ReusePolicy implements the §8.1 recommendation as a standalone rule: a
// previously certified key may only recertify for the same hostname or a
// subdomain of one it already holds. The experiment registry replays the
// world's issuance history through it to quantify what the policy would
// have blocked.
type ReusePolicy struct {
	mu     sync.Mutex
	owners map[cert.KeyID][]string
}

// NewReusePolicy creates an empty policy state.
func NewReusePolicy() *ReusePolicy {
	return &ReusePolicy{owners: make(map[cert.KeyID][]string)}
}

// Check returns ErrKeyReuse when the key is already certified for a
// hostname unrelated to every requested name.
func (p *ReusePolicy) Check(key cert.KeyID, hostnames []string) error {
	p.mu.Lock()
	owners := append([]string(nil), p.owners[key]...)
	p.mu.Unlock()
	if len(owners) == 0 {
		return nil
	}
	for _, h := range hostnames {
		name := strings.TrimPrefix(strings.ToLower(h), "*.")
		allowed := false
		for _, owner := range owners {
			owner = strings.TrimPrefix(strings.ToLower(owner), "*.")
			if name == owner || strings.HasSuffix(name, "."+owner) ||
				strings.HasSuffix(owner, "."+name) {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Errorf("%w: key already certified for %v, requested %s",
				ErrKeyReuse, owners, name)
		}
	}
	return nil
}

// Record registers a successful issuance.
func (p *ReusePolicy) Record(key cert.KeyID, hostnames []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.owners[key] = append(p.owners[key], hostnames...)
}

func (s *Server) validateHTTP01(ctx context.Context, hostname, token string) error {
	if token == "" {
		return fmt.Errorf("%w: no token for %s", ErrChallenge, hostname)
	}
	addrs, err := s.Zone.LookupA(hostname)
	if err != nil || len(addrs) == 0 {
		return fmt.Errorf("%w: %s does not resolve", ErrChallenge, hostname)
	}
	conn, err := s.Net.Dial(ctx, "acme-va", netip.AddrPortFrom(addrs[0], 80))
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrChallenge, hostname, err)
	}
	defer conn.Close()
	resp, err := httpsim.Get(conn, hostname, ChallengePath+token)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrChallenge, hostname, err)
	}
	if resp.StatusCode != 200 || strings.TrimSpace(string(resp.Body)) != token {
		return fmt.Errorf("%w: %s served %d %q", ErrChallenge, hostname, resp.StatusCode, resp.Body)
	}
	return nil
}

// Handle serves the ACME HTTP API over one connection: POST /acme/new-order
// and POST /acme/finalize with JSON bodies.
func (s *Server) Handle(conn net.Conn) {
	defer conn.Close()
	req, err := httpsim.ReadRequest(newReader(conn))
	if err != nil {
		return
	}
	writeProblem := func(status int, err error) {
		body, _ := json.Marshal(FinalizeResponse{Error: err.Error()})
		httpsim.WriteResponse(conn, status, jsonHdr, body)
	}
	switch {
	case req.Method == "POST" && req.Path == "/acme/new-order":
		var or OrderRequest
		if err := json.Unmarshal(req.Body, &or); err != nil {
			writeProblem(400, err)
			return
		}
		resp, err := s.NewOrder(or)
		if err != nil {
			writeProblem(400, err)
			return
		}
		body, _ := json.Marshal(resp)
		httpsim.WriteResponse(conn, 200, jsonHdr, body)
	case req.Method == "POST" && req.Path == "/acme/finalize":
		var fr FinalizeRequest
		if err := json.Unmarshal(req.Body, &fr); err != nil {
			writeProblem(400, err)
			return
		}
		chain, err := s.Finalize(context.Background(), fr.OrderID)
		if err != nil {
			status := 403
			if errors.Is(err, ErrUnknownOrder) {
				status = 404
			}
			writeProblem(status, err)
			return
		}
		body, _ := json.Marshal(FinalizeResponse{
			Chain: base64.StdEncoding.EncodeToString(cert.EncodeChain(chain)),
		})
		httpsim.WriteResponse(conn, 200, jsonHdr, body)
	default:
		httpsim.WriteResponse(conn, 404, nil, []byte("not found"))
	}
}

var jsonHdr = map[string]string{"Content-Type": "application/json"}

func parseKey(req OrderRequest) (cert.PublicKey, error) {
	var id cert.KeyID
	raw := req.KeyID
	if len(raw) != len(id)*2 {
		return cert.PublicKey{}, fmt.Errorf("acme: key id must be %d hex chars", len(id)*2)
	}
	for i := 0; i < len(id); i++ {
		var b byte
		if _, err := fmt.Sscanf(raw[i*2:i*2+2], "%02x", &b); err != nil {
			return cert.PublicKey{}, fmt.Errorf("acme: bad key id: %w", err)
		}
		id[i] = b
	}
	t := cert.KeyRSA
	if strings.EqualFold(req.KeyType, "EC") {
		t = cert.KeyECDSA
	}
	bits := req.KeyBits
	if bits == 0 {
		bits = 2048
	}
	return cert.PublicKey{Type: t, Bits: bits, ID: id}, nil
}

func copyTokens(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func tokenHash(s string, seq int) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h ^ uint32(seq*2654435761)
}
