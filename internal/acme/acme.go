// Package acme implements a miniature ACME certificate authority in the
// style of RFC 8555, the automation behind Let's Encrypt that the paper
// credits for free, easy https (§3.1) and builds its recommendations on
// (§8.1): the server issues http-01 challenges, validates them by fetching
// the token over the (simulated) network, enforces DNS CAA authorization
// (§5.3.4), applies Let's Encrypt-style new-order rate limits, and —
// implementing the paper's §8.1 proposal — can refuse to certify a public
// key that is already bound to an unrelated hostname.
package acme

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"repro/internal/ca"
	"repro/internal/cert"
	"repro/internal/dnssim"
	"repro/internal/httpsim"
	"repro/internal/simclock"
)

// ChallengePath is the http-01 well-known prefix.
const ChallengePath = "/.well-known/acme-challenge/"

// Protocol errors, mirrored in HTTP responses as JSON problem documents.
// Errors crossing the HTTP boundary come back as *ProblemError (or
// *RateLimitError), which errors.Is-match these sentinels through their
// problem code, so callers classify failures the same way on both sides
// of the wire.
var (
	ErrCAARefused    = errors.New("acme: CAA record forbids issuance")
	ErrChallenge     = errors.New("acme: challenge validation failed")
	ErrKeyReuse      = errors.New("acme: public key already certified for an unrelated hostname")
	ErrUnknownOrder  = errors.New("acme: unknown order")
	ErrOrderNotReady = errors.New("acme: order not ready")
	ErrRateLimited   = errors.New("acme: rate limited")
)

// Dialer abstracts the network (satisfied by *simnet.Network).
type Dialer interface {
	Dial(ctx context.Context, fromVantage string, ep netip.AddrPort) (net.Conn, error)
}

// RateLimits is the server's Let's Encrypt-style admission policy for new
// orders. A limit is enforced only when both its count and its window are
// positive; the zero value disables all limiting.
type RateLimits struct {
	// PerDomain caps new orders per registered domain (RegisteredDomain)
	// within PerDomainWindow — the "certificates per registered domain"
	// limit.
	PerDomain       int
	PerDomainWindow time.Duration
	// Global caps new orders across all domains within GlobalWindow — the
	// "new orders per account" limit.
	Global       int
	GlobalWindow time.Duration
}

// RateLimitError is the typed refusal a rate-limited new-order gets. It
// unwraps to ErrRateLimited, and RetryAfter tells a well-behaved client
// when the oldest in-window grant expires — reschedule there instead of
// hot-retrying.
type RateLimitError struct {
	// Scope is "new-orders" (the global limit) or "registered-domain".
	Scope string
	// Domain is the offending registered domain ("" for the global limit).
	Domain string
	// RetryAfter is when a slot frees.
	RetryAfter time.Time
	// Detail carries the server's rendering when the error crossed the
	// HTTP boundary.
	Detail string
}

// Error implements error.
func (e *RateLimitError) Error() string {
	if e.Detail != "" {
		return e.Detail
	}
	if e.Domain != "" {
		return fmt.Sprintf("acme: rate limited: too many orders for registered domain %q, retry after %s",
			e.Domain, e.RetryAfter.Format(time.RFC3339))
	}
	return fmt.Sprintf("acme: rate limited: too many new orders, retry after %s",
		e.RetryAfter.Format(time.RFC3339))
}

// Is makes errors.Is(err, ErrRateLimited) match.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// ProblemError is a typed ACME problem document: the client-side
// reconstruction of a server refusal, carrying the machine-readable code
// so callers can classify without string matching.
type ProblemError struct {
	Status int
	Code   string
	Detail string
}

// Error implements error.
func (e *ProblemError) Error() string {
	if e.Detail != "" {
		return e.Detail
	}
	return fmt.Sprintf("acme: problem %q (status %d)", e.Code, e.Status)
}

// Is maps problem codes back onto the package sentinels.
func (e *ProblemError) Is(target error) bool {
	switch target {
	case ErrCAARefused:
		return e.Code == "caa"
	case ErrKeyReuse:
		return e.Code == "keyReuse"
	case ErrChallenge:
		return e.Code == "challenge"
	case ErrUnknownOrder:
		return e.Code == "unknownOrder"
	case ErrOrderNotReady:
		return e.Code == "orderNotReady"
	case ErrRateLimited:
		return e.Code == "rateLimited"
	}
	return false
}

// problemCode renders an error as its wire code.
func problemCode(err error) string {
	switch {
	case errors.Is(err, ErrRateLimited):
		return "rateLimited"
	case errors.Is(err, ErrCAARefused):
		return "caa"
	case errors.Is(err, ErrKeyReuse):
		return "keyReuse"
	case errors.Is(err, ErrChallenge):
		return "challenge"
	case errors.Is(err, ErrUnknownOrder):
		return "unknownOrder"
	case errors.Is(err, ErrOrderNotReady):
		return "orderNotReady"
	}
	return "malformed"
}

// Server is the ACME certificate authority.
type Server struct {
	// Authority signs the issued certificates.
	Authority *ca.Authority
	// CADomain is the identity checked against CAA records
	// (e.g. "letsencrypt.org").
	CADomain string
	// Zone resolves identifiers and CAA policy.
	Zone *dnssim.Zone
	// Net fetches http-01 challenges.
	Net Dialer
	// EnforceKeyReuse activates the §8.1 recommendation: a key already
	// certified for a hostname can only be reused by that hostname or its
	// subdomains.
	EnforceKeyReuse bool
	// Clock supplies issuance and rate-limit time. There is no default:
	// NewServer requires an explicit clock, so issued NotBefore/NotAfter
	// advance with whatever (virtual) timeline the caller runs on.
	Clock simclock.Clock
	// Limits is the new-order admission policy; the zero value admits
	// everything.
	Limits RateLimits

	mu     sync.Mutex
	orders map[string]*order
	// orderQueue records order IDs in creation order; completed orders
	// leave the map and the queue is compacted when mostly dead, keeping
	// a long-running renewal fleet's bookkeeping bounded. All iteration
	// over orders walks this queue — never the map — so observable order
	// is creation order, not map order.
	orderQueue []string
	seq        int
	policy     *ReusePolicy
	// Sliding rate-limit windows: grant timestamps in ascending order.
	domainGrants map[string][]time.Time
	globalGrants []time.Time
}

type order struct {
	id        string
	hostnames []string
	key       cert.PublicKey
	tokens    map[string]string // hostname -> token
	validated bool
}

// NewServer assembles an ACME server running on the given clock. The
// clock is mandatory — issuance time is always the caller's timeline,
// virtual or real; there is no fixed-epoch or wall-time fallback.
func NewServer(authority *ca.Authority, caDomain string, zone *dnssim.Zone, d Dialer, clk simclock.Clock) *Server {
	if clk == nil {
		panic("acme: NewServer requires a clock")
	}
	return &Server{
		Authority:    authority,
		CADomain:     caDomain,
		Zone:         zone,
		Net:          d,
		Clock:        clk,
		orders:       make(map[string]*order),
		policy:       NewReusePolicy(),
		domainGrants: make(map[string][]time.Time),
	}
}

// OrderRequest is the client's new-order payload.
type OrderRequest struct {
	Hostnames []string `json:"hostnames"`
	KeyType   string   `json:"key_type"` // "RSA" or "EC"
	KeyBits   int      `json:"key_bits"`
	KeyID     string   `json:"key_id"` // hex fingerprint of the key pair
}

// OrderResponse returns the order ID and per-hostname challenge tokens.
type OrderResponse struct {
	OrderID string            `json:"order_id"`
	Tokens  map[string]string `json:"tokens"`
}

// FinalizeRequest asks the server to validate and issue.
type FinalizeRequest struct {
	OrderID string `json:"order_id"`
}

// FinalizeResponse carries the issued chain.
type FinalizeResponse struct {
	// Chain is the base64 of cert.EncodeChain (leaf first).
	Chain string `json:"chain"`
	// Error is the problem description on failure.
	Error string `json:"error,omitempty"`
	// Code is the machine-readable problem code on failure.
	Code string `json:"code,omitempty"`
	// RetryAfter is the RFC 3339 retry hint on rate-limit refusals.
	RetryAfter string `json:"retry_after,omitempty"`
}

// RegisteredDomain approximates the eTLD+1 grouping CAs rate-limit on:
// the last two labels, or the last three when the name sits under a
// two-part public suffix like gov.uk or go.kr. Good enough for the
// study's government namespace without carrying the public-suffix list.
func RegisteredDomain(hostname string) string {
	hostname = strings.TrimPrefix(strings.ToLower(hostname), "*.")
	labels := strings.Split(hostname, ".")
	n := len(labels)
	if n <= 2 {
		return hostname
	}
	if len(labels[n-1]) == 2 && multiPartSLD[labels[n-2]] {
		return strings.Join(labels[n-3:], ".")
	}
	return strings.Join(labels[n-2:], ".")
}

// multiPartSLD lists second-level labels that form two-part public
// suffixes under ccTLDs (gov.uk, go.kr, gob.mx, gouv.fr, ...).
var multiPartSLD = map[string]bool{
	"gov": true, "go": true, "gob": true, "gouv": true, "gub": true,
	"mil": true, "edu": true, "ac": true, "co": true, "com": true,
	"or": true, "org": true, "ne": true, "net": true,
}

// admitLocked applies the rate limits to one new order at time now,
// recording the grant when admitted. Caller holds s.mu.
func (s *Server) admitLocked(hostnames []string, now time.Time) error {
	if s.Limits.Global > 0 && s.Limits.GlobalWindow > 0 {
		s.globalGrants = pruneGrants(s.globalGrants, now.Add(-s.Limits.GlobalWindow))
		if len(s.globalGrants) >= s.Limits.Global {
			return &RateLimitError{
				Scope:      "new-orders",
				RetryAfter: s.globalGrants[0].Add(s.Limits.GlobalWindow),
			}
		}
	}
	var domains []string
	if s.Limits.PerDomain > 0 && s.Limits.PerDomainWindow > 0 {
		for _, h := range hostnames {
			d := RegisteredDomain(h)
			seen := false
			for _, prev := range domains {
				if prev == d {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			s.domainGrants[d] = pruneGrants(s.domainGrants[d], now.Add(-s.Limits.PerDomainWindow))
			if len(s.domainGrants[d]) >= s.Limits.PerDomain {
				return &RateLimitError{
					Scope:      "registered-domain",
					Domain:     d,
					RetryAfter: s.domainGrants[d][0].Add(s.Limits.PerDomainWindow),
				}
			}
			domains = append(domains, d)
		}
	}
	// Admitted: record the grant in every window it was checked against.
	if s.Limits.Global > 0 && s.Limits.GlobalWindow > 0 {
		s.globalGrants = append(s.globalGrants, now)
	}
	for _, d := range domains {
		s.domainGrants[d] = append(s.domainGrants[d], now)
	}
	return nil
}

// pruneGrants drops grants at or before the window floor. Grants are
// appended in clock order, so the live suffix is contiguous.
func pruneGrants(grants []time.Time, floor time.Time) []time.Time {
	i := 0
	for i < len(grants) && !grants[i].After(floor) {
		i++
	}
	if i == 0 {
		return grants
	}
	return append(grants[:0], grants[i:]...)
}

// NewOrder registers an order and mints challenge tokens, applying the
// configured rate limits first.
func (s *Server) NewOrder(req OrderRequest) (OrderResponse, error) {
	if len(req.Hostnames) == 0 {
		return OrderResponse{}, errors.New("acme: order without hostnames")
	}
	key, err := parseKey(req)
	if err != nil {
		return OrderResponse{}, err
	}
	now := s.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admitLocked(req.Hostnames, now); err != nil {
		return OrderResponse{}, err
	}
	s.seq++
	o := &order{
		id:        fmt.Sprintf("order-%06d", s.seq),
		hostnames: append([]string(nil), req.Hostnames...),
		key:       key,
		tokens:    make(map[string]string),
	}
	for i, h := range o.hostnames {
		o.tokens[strings.ToLower(h)] = fmt.Sprintf("tok-%06d-%d-%08x", s.seq, i, tokenHash(h, s.seq))
	}
	s.orders[o.id] = o
	s.orderQueue = append(s.orderQueue, o.id)
	return OrderResponse{OrderID: o.id, Tokens: copyTokens(o.tokens)}, nil
}

// PendingOrders returns the IDs of not-yet-completed orders in creation
// order (never map order — the fleet's bookkeeping must read the same
// under any goroutine interleaving that created the same orders).
func (s *Server) PendingOrders() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.orders))
	for _, id := range s.orderQueue {
		if _, live := s.orders[id]; live {
			out = append(out, id)
		}
	}
	return out
}

// completeLocked retires an order that reached a terminal outcome and
// compacts the creation-order queue once it is mostly tombstones, so a
// fleet driving tens of thousands of renewals holds O(live) state.
func (s *Server) completeLocked(id string) {
	delete(s.orders, id)
	if len(s.orderQueue) > 16 && len(s.orderQueue) > 2*len(s.orders) {
		live := s.orderQueue[:0]
		for _, qid := range s.orderQueue {
			if _, ok := s.orders[qid]; ok {
				live = append(live, qid)
			}
		}
		s.orderQueue = live
	}
}

// Finalize validates every challenge and issues the certificate chain.
// Terminal outcomes — issuance, CAA or key-reuse refusal, failed
// validation — retire the order; a retry takes a fresh order (and a fresh
// rate-limit grant), exactly as a production CA accounts renewals.
func (s *Server) Finalize(ctx context.Context, orderID string) ([]*cert.Certificate, error) {
	s.mu.Lock()
	o, ok := s.orders[orderID]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownOrder
	}
	retire := func() {
		s.mu.Lock()
		s.completeLocked(orderID)
		s.mu.Unlock()
	}

	// §5.3.4 / §8.2: CAA records restrict which CAs may issue.
	for _, h := range o.hostnames {
		name := strings.TrimPrefix(strings.ToLower(h), "*.")
		if !s.Zone.AllowsIssuance(name, s.CADomain) {
			retire()
			return nil, fmt.Errorf("%w: %s restricts issuance", ErrCAARefused, name)
		}
	}

	// §8.1: refuse keys already bound to unrelated hostnames.
	if s.EnforceKeyReuse {
		if err := s.policy.Check(o.key.ID, o.hostnames); err != nil {
			retire()
			return nil, err
		}
	}

	// http-01: fetch each token over the network, exactly as the CA's
	// validation servers would.
	for _, h := range o.hostnames {
		name := strings.TrimPrefix(strings.ToLower(h), "*.")
		if err := s.validateHTTP01(ctx, name, o.tokens[strings.ToLower(h)]); err != nil {
			retire()
			return nil, err
		}
	}

	now := s.Clock.Now()
	chain := s.Authority.Issue(ca.Request{
		// Issue retains the slice; the order keeps using its own copy.
		Hostnames: append([]string(nil), o.hostnames...),
		Key:       o.key,
		NotBefore: now,
		// A derived serial keeps concurrent finalizes off the authority's
		// unsynchronized counter and independent of completion order.
		Serial: issuanceSerial(o.hostnames[0], now),
	})
	s.mu.Lock()
	o.validated = true
	s.completeLocked(orderID)
	s.mu.Unlock()
	s.policy.Record(o.key.ID, o.hostnames)
	return chain, nil
}

// issuanceSerial derives a deterministic certificate serial from the
// subject and issuance instant. The high bit keeps the space disjoint
// from the authority's counter-assigned serials.
func issuanceSerial(hostname string, at time.Time) uint64 {
	h := fnv.New64a()
	h.Write([]byte(hostname))
	var buf [8]byte
	n := at.UnixNano()
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64() | 1<<63
}

// ReusePolicy implements the §8.1 recommendation as a standalone rule: a
// previously certified key may only recertify for the same hostname or a
// subdomain of one it already holds. The experiment registry replays the
// world's issuance history through it to quantify what the policy would
// have blocked.
type ReusePolicy struct {
	mu     sync.Mutex
	owners map[cert.KeyID][]string
}

// NewReusePolicy creates an empty policy state.
func NewReusePolicy() *ReusePolicy {
	return &ReusePolicy{owners: make(map[cert.KeyID][]string)}
}

// Check returns ErrKeyReuse when the key is already certified for a
// hostname unrelated to every requested name.
func (p *ReusePolicy) Check(key cert.KeyID, hostnames []string) error {
	p.mu.Lock()
	owners := append([]string(nil), p.owners[key]...)
	p.mu.Unlock()
	if len(owners) == 0 {
		return nil
	}
	for _, h := range hostnames {
		name := strings.TrimPrefix(strings.ToLower(h), "*.")
		allowed := false
		for _, owner := range owners {
			owner = strings.TrimPrefix(strings.ToLower(owner), "*.")
			if name == owner || strings.HasSuffix(name, "."+owner) ||
				strings.HasSuffix(owner, "."+name) {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Errorf("%w: key already certified for %v, requested %s",
				ErrKeyReuse, owners, name)
		}
	}
	return nil
}

// Record registers a successful issuance.
func (p *ReusePolicy) Record(key cert.KeyID, hostnames []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.owners[key] = append(p.owners[key], hostnames...)
}

func (s *Server) validateHTTP01(ctx context.Context, hostname, token string) error {
	if token == "" {
		return fmt.Errorf("%w: no token for %s", ErrChallenge, hostname)
	}
	addrs, err := s.Zone.LookupA(hostname)
	if err != nil || len(addrs) == 0 {
		return fmt.Errorf("%w: %s does not resolve", ErrChallenge, hostname)
	}
	conn, err := s.Net.Dial(ctx, "acme-va", netip.AddrPortFrom(addrs[0], 80))
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrChallenge, hostname, err)
	}
	defer conn.Close()
	resp, err := httpsim.Get(conn, hostname, ChallengePath+token)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrChallenge, hostname, err)
	}
	if resp.StatusCode != 200 || strings.TrimSpace(string(resp.Body)) != token {
		return fmt.Errorf("%w: %s served %d %q", ErrChallenge, hostname, resp.StatusCode, resp.Body)
	}
	return nil
}

// Handle serves the ACME HTTP API over one connection: POST /acme/new-order
// and POST /acme/finalize with JSON bodies.
func (s *Server) Handle(conn net.Conn) {
	defer conn.Close()
	req, err := httpsim.ReadRequest(newReader(conn))
	if err != nil {
		return
	}
	writeProblem := func(status int, err error) {
		p := FinalizeResponse{Error: err.Error(), Code: problemCode(err)}
		var rl *RateLimitError
		if errors.As(err, &rl) {
			p.RetryAfter = rl.RetryAfter.Format(time.RFC3339Nano)
		}
		body, _ := json.Marshal(p)
		httpsim.WriteResponse(conn, status, jsonHdr, body)
	}
	switch {
	case req.Method == "POST" && req.Path == "/acme/new-order":
		var or OrderRequest
		if err := json.Unmarshal(req.Body, &or); err != nil {
			writeProblem(400, err)
			return
		}
		resp, err := s.NewOrder(or)
		if err != nil {
			status := 400
			if errors.Is(err, ErrRateLimited) {
				status = 429
			}
			writeProblem(status, err)
			return
		}
		body, _ := json.Marshal(resp)
		httpsim.WriteResponse(conn, 200, jsonHdr, body)
	case req.Method == "POST" && req.Path == "/acme/finalize":
		var fr FinalizeRequest
		if err := json.Unmarshal(req.Body, &fr); err != nil {
			writeProblem(400, err)
			return
		}
		chain, err := s.Finalize(context.Background(), fr.OrderID)
		if err != nil {
			status := 403
			if errors.Is(err, ErrUnknownOrder) {
				status = 404
			}
			writeProblem(status, err)
			return
		}
		body, _ := json.Marshal(FinalizeResponse{
			Chain: base64.StdEncoding.EncodeToString(cert.EncodeChain(chain)),
		})
		httpsim.WriteResponse(conn, 200, jsonHdr, body)
	default:
		httpsim.WriteResponse(conn, 404, nil, []byte("not found"))
	}
}

var jsonHdr = map[string]string{"Content-Type": "application/json"}

func parseKey(req OrderRequest) (cert.PublicKey, error) {
	var id cert.KeyID
	raw := req.KeyID
	if len(raw) != len(id)*2 {
		return cert.PublicKey{}, fmt.Errorf("acme: key id must be %d hex chars", len(id)*2)
	}
	for i := 0; i < len(id); i++ {
		var b byte
		if _, err := fmt.Sscanf(raw[i*2:i*2+2], "%02x", &b); err != nil {
			return cert.PublicKey{}, fmt.Errorf("acme: bad key id: %w", err)
		}
		id[i] = b
	}
	t := cert.KeyRSA
	if strings.EqualFold(req.KeyType, "EC") {
		t = cert.KeyECDSA
	}
	bits := req.KeyBits
	if bits == 0 {
		bits = 2048
	}
	return cert.PublicKey{Type: t, Bits: bits, ID: id}, nil
}

func copyTokens(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in { //lint:allow maprange defensive map copy; callers receive an unordered map either way, so iteration order never escapes
		out[k] = v
	}
	return out
}

func tokenHash(s string, seq int) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h ^ uint32(seq*2654435761)
}
