package whois_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/whois"
	"repro/internal/world"
)

func testServer() *whois.Server {
	s := whois.NewServer()
	s.Add(whois.Record{Domain: "gov.br", Registrar: "Registro.br", TechEmail: "tech@registro.br", AdminEmail: "admin@registro.br", Country: "br"})
	s.Add(whois.Record{Domain: "gouv.fr", Registrar: "AFNIC", TechEmail: "tech@afnic.fr", AdminEmail: "admin@afnic.fr", Country: "fr"})
	return s
}

func TestLookupLongestSuffix(t *testing.T) {
	s := testServer()
	rec, err := s.Lookup("deep.sub.agency.gov.br")
	if err != nil || rec.Country != "br" {
		t.Fatalf("rec=%+v err=%v", rec, err)
	}
	if _, err := s.Lookup("example.com"); !errors.Is(err, whois.ErrNoMatch) {
		t.Fatalf("err = %v, want no match", err)
	}
}

func TestRecordsSorted(t *testing.T) {
	recs := testServer().Records()
	if len(recs) != 2 || recs[0].Domain != "gouv.fr" {
		t.Fatalf("records = %v", recs)
	}
}

func TestQueryOverWorld(t *testing.T) {
	w := world.MustBuild(world.TestConfig())
	ctx := context.Background()
	rec, err := whois.Query(ctx, w.Net, "lab", world.WhoisAddr, "health.gov.br")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Country != "br" || rec.TechEmail == "" {
		t.Errorf("rec = %+v", rec)
	}
	// The US special TLDs resolve too.
	rec, err = whois.Query(ctx, w.Net, "lab", world.WhoisAddr, "nih.gov")
	if err != nil || rec.Country != "us" {
		t.Errorf("nih.gov rec = %+v err=%v", rec, err)
	}
	// Unknown registries return no match.
	if _, err := whois.Query(ctx, w.Net, "lab", world.WhoisAddr, "example.zz"); !errors.Is(err, whois.ErrNoMatch) {
		t.Errorf("err = %v, want no match", err)
	}
}

func TestRenderParsesBack(t *testing.T) {
	s := testServer()
	rec, _ := s.Lookup("x.gouv.fr")
	rendered := rec.Render()
	if rendered == "" {
		t.Fatal("empty render")
	}
	// A minimal parse of our own rendering (what Query does over the wire).
	if want := "Registrar: AFNIC\n"; !contains(rendered, want) {
		t.Errorf("render missing %q:\n%s", want, rendered)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
