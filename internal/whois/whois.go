// Package whois implements the RFC 3912-style whois service the disclosure
// campaign relied on (§7.2): the authors performed whois queries on the
// country registrars to find listed technical contacts. The server speaks
// the classic protocol — one query line, a free-form text response, close —
// over the simulated network on port 43.
package whois

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// Dialer abstracts the network (satisfied by *simnet.Network); declared
// locally so whois stays independent of the scanner.
type Dialer interface {
	Dial(ctx context.Context, fromVantage string, ep netip.AddrPort) (net.Conn, error)
}

// Record is one registrar's public registration data.
type Record struct {
	// Domain is the registry suffix the record answers for, e.g. "gov.br".
	Domain string
	// Registrar names the operating organization.
	Registrar string
	// TechEmail is the listed technical contact.
	TechEmail string
	// AdminEmail is the listed administrative contact.
	AdminEmail string
	// Country is the ISO code.
	Country string
}

// Render formats the record the way classic whois servers do.
func (r Record) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Domain Name: %s\n", strings.ToUpper(r.Domain))
	fmt.Fprintf(&b, "Registrar: %s\n", r.Registrar)
	fmt.Fprintf(&b, "Registrar Country: %s\n", strings.ToUpper(r.Country))
	fmt.Fprintf(&b, "Tech Email: %s\n", r.TechEmail)
	fmt.Fprintf(&b, "Admin Email: %s\n", r.AdminEmail)
	return b.String()
}

// ErrNoMatch is returned when no record covers the queried domain.
var ErrNoMatch = errors.New("whois: no match")

// Server answers whois queries from a record database.
type Server struct {
	mu      sync.RWMutex
	records map[string]Record // keyed by suffix
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{records: make(map[string]Record)}
}

// Add registers a record for a registry suffix.
func (s *Server) Add(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[strings.ToLower(r.Domain)] = r
}

// Lookup finds the record for the longest suffix of the queried domain.
func (s *Server) Lookup(domain string) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := strings.ToLower(strings.TrimSuffix(domain, "."))
	labels := strings.Split(d, ".")
	for i := 0; i < len(labels); i++ {
		suffix := strings.Join(labels[i:], ".")
		if rec, ok := s.records[suffix]; ok {
			return rec, nil
		}
	}
	return Record{}, fmt.Errorf("%w for %q", ErrNoMatch, domain)
}

// Records lists every record sorted by suffix.
func (s *Server) Records() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.records))
	for _, r := range s.records {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// Handle serves one whois connection: read the query line, write the
// response, close — RFC 3912's entire state machine.
func (s *Server) Handle(conn net.Conn) {
	defer conn.Close()
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return
	}
	query := strings.TrimSpace(line)
	rec, err := s.Lookup(query)
	if err != nil {
		fmt.Fprintf(conn, "No match for %q.\n", query)
		return
	}
	fmt.Fprint(conn, rec.Render())
}

// Query performs a whois lookup over the network and parses the response.
func Query(ctx context.Context, d Dialer, vantage string, server netip.AddrPort, domain string) (Record, error) {
	conn, err := d.Dial(ctx, vantage, server)
	if err != nil {
		return Record{}, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s\r\n", domain); err != nil {
		return Record{}, err
	}
	sc := bufio.NewScanner(conn)
	rec := Record{}
	matched := false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "No match") {
			return Record{}, fmt.Errorf("%w for %q", ErrNoMatch, domain)
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		v = strings.TrimSpace(v)
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "domain name":
			rec.Domain = strings.ToLower(v)
			matched = true
		case "registrar":
			rec.Registrar = v
		case "registrar country":
			rec.Country = strings.ToLower(v)
		case "tech email":
			rec.TechEmail = v
		case "admin email":
			rec.AdminEmail = v
		}
	}
	if err := sc.Err(); err != nil {
		return Record{}, err
	}
	if !matched {
		return Record{}, fmt.Errorf("%w for %q", ErrNoMatch, domain)
	}
	return rec, nil
}
