package analysis

import (
	"sort"

	"repro/internal/resultset"
)

// ReuseCluster is one certificate served by multiple hostnames (§5.3.3).
type ReuseCluster struct {
	// Fingerprint identifies the exact certificate.
	Fingerprint [32]byte
	// Hosts lists the hostnames serving it.
	Hosts []string
	// Countries lists the distinct countries involved, sorted.
	Countries []string
	// SelfSigned marks bare self-signed certificates (the most-reused
	// kind in the study).
	SelfSigned bool
	// Valid marks clusters whose certificate validates on every host
	// (legitimate same-government wildcard sharing).
	Valid bool
}

// KeyReuseStats reproduces the §5.3.3 numbers.
type KeyReuseStats struct {
	// Clusters lists certificates served by >= 2 hosts, largest first.
	Clusters []ReuseCluster
	// CrossCountry lists clusters spanning >= 2 countries.
	CrossCountry []ReuseCluster
	// CrossCountryHosts counts hostnames involved in cross-country reuse
	// (paper: 1,390).
	CrossCountryHosts int
	// ByCountrySpan histograms cross-country clusters by the number of
	// countries sharing the certificate (paper: 108 by 2, 19 by 3, 11 by
	// 4, 1 by 24).
	ByCountrySpan map[int]int
	// ValidCrossCountry counts cross-country clusters that are valid
	// everywhere (the paper found none).
	ValidCrossCountry int
}

// ComputeKeyReuse clusters scan results by exact certificate, walking the
// set's fingerprint index.
func ComputeKeyReuse(set *resultset.Set) KeyReuseStats {
	s := KeyReuseStats{ByCountrySpan: map[int]int{}}
	for _, fp := range set.Fingerprints() {
		indices := set.ByFingerprint(fp)
		if len(indices) < 2 {
			continue
		}
		hosts := make([]string, 0, len(indices))
		ccSet := map[string]bool{}
		var countries []string
		allValid := true
		selfSigned := set.At(indices[0]).Chain[0].SelfSigned()
		for _, i := range indices {
			r := set.At(i)
			hosts = append(hosts, r.Hostname)
			if cc := set.CountryOf(r.Hostname); cc != "" && !ccSet[cc] {
				ccSet[cc] = true
				countries = append(countries, cc)
			}
			if !r.Verify.Valid() {
				allValid = false
			}
		}
		sort.Strings(countries)
		sort.Strings(hosts)
		cl := ReuseCluster{
			Fingerprint: fp,
			Hosts:       hosts,
			Countries:   countries,
			SelfSigned:  selfSigned,
			Valid:       allValid,
		}
		s.Clusters = append(s.Clusters, cl)
		if len(countries) >= 2 {
			s.CrossCountry = append(s.CrossCountry, cl)
			s.CrossCountryHosts += len(hosts)
			s.ByCountrySpan[len(countries)]++
			if allValid {
				s.ValidCrossCountry++
			}
		}
	}
	sort.Slice(s.Clusters, func(i, j int) bool {
		if len(s.Clusters[i].Hosts) != len(s.Clusters[j].Hosts) {
			return len(s.Clusters[i].Hosts) > len(s.Clusters[j].Hosts)
		}
		return s.Clusters[i].Hosts[0] < s.Clusters[j].Hosts[0]
	})
	sort.Slice(s.CrossCountry, func(i, j int) bool {
		if len(s.CrossCountry[i].Countries) != len(s.CrossCountry[j].Countries) {
			return len(s.CrossCountry[i].Countries) > len(s.CrossCountry[j].Countries)
		}
		return s.CrossCountry[i].Hosts[0] < s.CrossCountry[j].Hosts[0]
	})
	return s
}

// MaxCountrySpan returns the widest cross-country cluster (paper: 24
// countries).
func (s KeyReuseStats) MaxCountrySpan() int {
	max := 0
	for span := range s.ByCountrySpan {
		if span > max {
			max = span
		}
	}
	return max
}

// SharedWildcardViolators reports, per country, certificates shared across
// multiple hostnames of the same country where every use is invalid — the
// Bangladesh/Colombia pattern. The result maps country code to the number
// of such certificates and affected hosts.
type WildcardViolation struct {
	Country string
	Certs   int
	Hosts   int
}

// ComputeWildcardViolators finds single-country invalid sharing over the
// fingerprint index.
func ComputeWildcardViolators(set *resultset.Set) []WildcardViolation {
	perCountry := map[string]*WildcardViolation{}
	for _, fp := range set.Fingerprints() {
		indices := set.ByFingerprint(fp)
		if !set.At(indices[0]).Chain[0].HasWildcard() {
			continue
		}
		// One fingerprint can span countries; tally per-country uses and
		// validity separately.
		uses := map[string]int{}
		var ccs []string
		invalid := map[string]bool{}
		for _, i := range indices {
			r := set.At(i)
			cc := set.CountryOf(r.Hostname)
			if cc == "" {
				continue
			}
			if _, seen := uses[cc]; !seen {
				ccs = append(ccs, cc)
				invalid[cc] = true
			}
			uses[cc]++
			if r.Verify.Valid() {
				invalid[cc] = false
			}
		}
		for _, cc := range ccs {
			if uses[cc] < 2 || !invalid[cc] {
				continue
			}
			v, ok := perCountry[cc]
			if !ok {
				v = &WildcardViolation{Country: cc}
				perCountry[cc] = v
			}
			v.Certs++
			v.Hosts += uses[cc]
		}
	}
	out := make([]WildcardViolation, 0, len(perCountry))
	for _, v := range perCountry {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hosts != out[j].Hosts {
			return out[i].Hosts > out[j].Hosts
		}
		return out[i].Country < out[j].Country
	})
	return out
}
