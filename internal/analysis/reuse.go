package analysis

import (
	"sort"

	"repro/internal/scanner"
)

// ReuseCluster is one certificate served by multiple hostnames (§5.3.3).
type ReuseCluster struct {
	// Fingerprint identifies the exact certificate.
	Fingerprint [32]byte
	// Hosts lists the hostnames serving it.
	Hosts []string
	// Countries lists the distinct countries involved, sorted.
	Countries []string
	// SelfSigned marks bare self-signed certificates (the most-reused
	// kind in the study).
	SelfSigned bool
	// Valid marks clusters whose certificate validates on every host
	// (legitimate same-government wildcard sharing).
	Valid bool
}

// KeyReuseStats reproduces the §5.3.3 numbers.
type KeyReuseStats struct {
	// Clusters lists certificates served by >= 2 hosts, largest first.
	Clusters []ReuseCluster
	// CrossCountry lists clusters spanning >= 2 countries.
	CrossCountry []ReuseCluster
	// CrossCountryHosts counts hostnames involved in cross-country reuse
	// (paper: 1,390).
	CrossCountryHosts int
	// ByCountrySpan histograms cross-country clusters by the number of
	// countries sharing the certificate (paper: 108 by 2, 19 by 3, 11 by
	// 4, 1 by 24).
	ByCountrySpan map[int]int
	// ValidCrossCountry counts cross-country clusters that are valid
	// everywhere (the paper found none).
	ValidCrossCountry int
}

// ComputeKeyReuse clusters scan results by exact certificate.
func ComputeKeyReuse(results []scanner.Result, countryOf func(string) string) KeyReuseStats {
	type agg struct {
		hosts      []string
		countries  map[string]bool
		selfSigned bool
		allValid   bool
		seen       bool
	}
	byFP := map[[32]byte]*agg{}
	for i := range results {
		r := &results[i]
		if len(r.Chain) == 0 {
			continue
		}
		fp := r.Chain[0].Fingerprint()
		a, ok := byFP[fp]
		if !ok {
			a = &agg{countries: map[string]bool{}, allValid: true, selfSigned: r.Chain[0].SelfSigned()}
			byFP[fp] = a
		}
		a.hosts = append(a.hosts, r.Hostname)
		if cc := countryOf(r.Hostname); cc != "" {
			a.countries[cc] = true
		}
		if !r.Verify.Valid() {
			a.allValid = false
		}
	}

	s := KeyReuseStats{ByCountrySpan: map[int]int{}}
	for fp, a := range byFP {
		if len(a.hosts) < 2 {
			continue
		}
		countries := make([]string, 0, len(a.countries))
		for cc := range a.countries {
			countries = append(countries, cc)
		}
		sort.Strings(countries)
		sort.Strings(a.hosts)
		cl := ReuseCluster{
			Fingerprint: fp,
			Hosts:       a.hosts,
			Countries:   countries,
			SelfSigned:  a.selfSigned,
			Valid:       a.allValid,
		}
		s.Clusters = append(s.Clusters, cl)
		if len(countries) >= 2 {
			s.CrossCountry = append(s.CrossCountry, cl)
			s.CrossCountryHosts += len(a.hosts)
			s.ByCountrySpan[len(countries)]++
			if a.allValid {
				s.ValidCrossCountry++
			}
		}
	}
	sort.Slice(s.Clusters, func(i, j int) bool {
		if len(s.Clusters[i].Hosts) != len(s.Clusters[j].Hosts) {
			return len(s.Clusters[i].Hosts) > len(s.Clusters[j].Hosts)
		}
		return s.Clusters[i].Hosts[0] < s.Clusters[j].Hosts[0]
	})
	sort.Slice(s.CrossCountry, func(i, j int) bool {
		if len(s.CrossCountry[i].Countries) != len(s.CrossCountry[j].Countries) {
			return len(s.CrossCountry[i].Countries) > len(s.CrossCountry[j].Countries)
		}
		return s.CrossCountry[i].Hosts[0] < s.CrossCountry[j].Hosts[0]
	})
	return s
}

// MaxCountrySpan returns the widest cross-country cluster (paper: 24
// countries).
func (s KeyReuseStats) MaxCountrySpan() int {
	max := 0
	for span := range s.ByCountrySpan {
		if span > max {
			max = span
		}
	}
	return max
}

// SharedWildcardViolators reports, per country, certificates shared across
// multiple hostnames of the same country where every use is invalid — the
// Bangladesh/Colombia pattern. The result maps country code to the number
// of such certificates and affected hosts.
type WildcardViolation struct {
	Country string
	Certs   int
	Hosts   int
}

// ComputeWildcardViolators finds single-country invalid sharing.
func ComputeWildcardViolators(results []scanner.Result, countryOf func(string) string) []WildcardViolation {
	type key struct {
		fp [32]byte
		cc string
	}
	counts := map[key]int{}
	allInvalid := map[key]bool{}
	for i := range results {
		r := &results[i]
		if len(r.Chain) == 0 || !r.Chain[0].HasWildcard() {
			continue
		}
		cc := countryOf(r.Hostname)
		if cc == "" {
			continue
		}
		k := key{r.Chain[0].Fingerprint(), cc}
		if _, ok := counts[k]; !ok {
			allInvalid[k] = true
		}
		counts[k]++
		if r.Verify.Valid() {
			allInvalid[k] = false
		}
	}
	perCountry := map[string]*WildcardViolation{}
	for k, n := range counts {
		if n < 2 || !allInvalid[k] {
			continue
		}
		v, ok := perCountry[k.cc]
		if !ok {
			v = &WildcardViolation{Country: k.cc}
			perCountry[k.cc] = v
		}
		v.Certs++
		v.Hosts += n
	}
	out := make([]WildcardViolation, 0, len(perCountry))
	for _, v := range perCountry {
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hosts != out[j].Hosts {
			return out[i].Hosts > out[j].Hosts
		}
		return out[i].Country < out[j].Country
	})
	return out
}
