// Package analysis computes every result the paper reports from an
// indexed scan corpus (resultset.Set): the Table 2 validity/error
// taxonomy, CA breakdowns (Figures 2, 8, 11 and the EV appendix figures),
// key/signature validity matrices (Figures 4, 9, 12), certificate-duration
// statistics (§5.3.1, Figures 3 and 10), key-reuse clusters (§5.3.3), CAA
// coverage (§5.3.4), hosting breakdowns (Figures 5, 6, A.1), the
// rank-vs-validity comparison (Figure 7) and the cross-government link
// graph (Figure A.5). Aggregation over the raw result slice happens once,
// in the resultset build pass; every function here derives its table or
// figure from the set's indexes and counts.
package analysis

import (
	"sort"

	"repro/internal/resultset"
	"repro/internal/scanner"
)

// Table2 is the worldwide validity-and-error breakdown.
type Table2 struct {
	Total       int
	Unavailable int
	HTTPOnly    int
	HTTPS       int
	Valid       int
	Invalid     int
	// ByCategory counts invalid-https categories.
	ByCategory map[scanner.Category]int
	// Exceptions is the total of the exception block.
	Exceptions int
	// BothSchemes counts hosts serving full content on http and https
	// without an upgrade (§5.1's 4,126).
	BothSchemes int
	// HSTS counts valid hosts sending Strict-Transport-Security.
	HSTS int
}

// ComputeTable2 assembles the taxonomy from the set's build-pass counts
// and category index — no walk over the results.
func ComputeTable2(set *resultset.Set) Table2 {
	c := set.Counts()
	t := Table2{
		Total:       c.Total,
		Unavailable: c.Unavailable,
		HTTPOnly:    c.HTTPOnly,
		HTTPS:       c.HTTPS,
		Valid:       c.Valid,
		Invalid:     c.Invalid,
		Exceptions:  c.Exceptions,
		BothSchemes: c.BothSchemes,
		HSTS:        c.HSTS,
		ByCategory:  make(map[scanner.Category]int),
	}
	for _, cat := range set.Categories() {
		if cat == scanner.CatUnavailable || cat == scanner.CatHTTPOnly || cat == scanner.CatValid {
			continue
		}
		t.ByCategory[cat] = set.CategoryCount(cat)
	}
	return t
}

// PctOfTotal returns 100*n/Total.
func (t Table2) PctOfTotal(n int) float64 { return pct(n, t.Total) }

// PctOfHTTPS returns 100*n/HTTPS.
func (t Table2) PctOfHTTPS(n int) float64 { return pct(n, t.HTTPS) }

// PctOfInvalid returns 100*n/Invalid.
func (t Table2) PctOfInvalid(n int) float64 { return pct(n, t.Invalid) }

// PctOfExceptions returns 100*n/Exceptions.
func (t Table2) PctOfExceptions(n int) float64 { return pct(n, t.Exceptions) }

// InvalidCategoriesSorted returns the invalid categories ordered by count
// descending, for rendering.
func (t Table2) InvalidCategoriesSorted() []scanner.Category {
	cats := make([]scanner.Category, 0, len(t.ByCategory))
	for c := range t.ByCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if t.ByCategory[cats[i]] != t.ByCategory[cats[j]] {
			return t.ByCategory[cats[i]] > t.ByCategory[cats[j]]
		}
		return cats[i] < cats[j]
	})
	return cats
}

func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}
