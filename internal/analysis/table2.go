// Package analysis computes every result the paper reports from raw scan
// results: the Table 2 validity/error taxonomy, CA breakdowns (Figures 2, 8,
// 11 and the EV appendix figures), key/signature validity matrices (Figures
// 4, 9, 12), certificate-duration statistics (§5.3.1, Figures 3 and 10),
// key-reuse clusters (§5.3.3), CAA coverage (§5.3.4), hosting breakdowns
// (Figures 5, 6, A.1), the rank-vs-validity comparison (Figure 7) and the
// cross-government link graph (Figure A.5).
package analysis

import (
	"sort"

	"repro/internal/scanner"
)

// Table2 is the worldwide validity-and-error breakdown.
type Table2 struct {
	Total       int
	Unavailable int
	HTTPOnly    int
	HTTPS       int
	Valid       int
	Invalid     int
	// ByCategory counts invalid-https categories.
	ByCategory map[scanner.Category]int
	// Exceptions is the total of the exception block.
	Exceptions int
	// BothSchemes counts hosts serving full content on http and https
	// without an upgrade (§5.1's 4,126).
	BothSchemes int
	// HSTS counts valid hosts sending Strict-Transport-Security.
	HSTS int
}

// ComputeTable2 classifies every result.
func ComputeTable2(results []scanner.Result) Table2 {
	t := Table2{ByCategory: make(map[scanner.Category]int)}
	for i := range results {
		r := &results[i]
		cat := r.Category()
		if cat == scanner.CatUnavailable {
			t.Unavailable++
			continue
		}
		t.Total++
		switch {
		case cat == scanner.CatHTTPOnly:
			t.HTTPOnly++
			continue
		case cat == scanner.CatValid:
			t.HTTPS++
			t.Valid++
			if r.HSTS {
				t.HSTS++
			}
		default:
			t.HTTPS++
			t.Invalid++
			t.ByCategory[cat]++
			if cat.IsException() {
				t.Exceptions++
			}
		}
		if r.ServesHTTP && r.ServesHTTPS {
			t.BothSchemes++
		}
	}
	return t
}

// PctOfTotal returns 100*n/Total.
func (t Table2) PctOfTotal(n int) float64 { return pct(n, t.Total) }

// PctOfHTTPS returns 100*n/HTTPS.
func (t Table2) PctOfHTTPS(n int) float64 { return pct(n, t.HTTPS) }

// PctOfInvalid returns 100*n/Invalid.
func (t Table2) PctOfInvalid(n int) float64 { return pct(n, t.Invalid) }

// PctOfExceptions returns 100*n/Exceptions.
func (t Table2) PctOfExceptions(n int) float64 { return pct(n, t.Exceptions) }

// InvalidCategoriesSorted returns the invalid categories ordered by count
// descending, for rendering.
func (t Table2) InvalidCategoriesSorted() []scanner.Category {
	cats := make([]scanner.Category, 0, len(t.ByCategory))
	for c := range t.ByCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if t.ByCategory[cats[i]] != t.ByCategory[cats[j]] {
			return t.ByCategory[cats[i]] > t.ByCategory[cats[j]]
		}
		return cats[i] < cats[j]
	})
	return cats
}

func pct(n, of int) float64 {
	if of == 0 {
		return 0
	}
	return 100 * float64(n) / float64(of)
}
