package analysis

import (
	"repro/internal/resultset"
)

// CountryRow is one country of the Figure 1 choropleth: availability,
// https support among available sites, and validity among https sites.
type CountryRow struct {
	Country   string
	Hosts     int
	Available int
	HTTPS     int
	Valid     int
}

// AvailablePct is the share of the country's hostnames returning a 200.
func (c CountryRow) AvailablePct() float64 { return pct(c.Available, c.Hosts) }

// HTTPSPct is the share of available sites supporting https.
func (c CountryRow) HTTPSPct() float64 { return pct(c.HTTPS, c.Available) }

// ValidPct is the share of https sites with valid certificates.
func (c CountryRow) ValidPct() float64 { return pct(c.Valid, c.HTTPS) }

// CountryBreakdown reads the per-country aggregates the set's build pass
// accumulated (attribution comes from the set's CountryOf option), sorted
// by country code.
func CountryBreakdown(set *resultset.Set) []CountryRow {
	aggs := set.CountryAggs()
	out := make([]CountryRow, len(aggs))
	for i, a := range aggs {
		out[i] = CountryRow{Country: a.Country, Hosts: a.Hosts, Available: a.Available, HTTPS: a.HTTPS, Valid: a.Valid}
	}
	return out
}

// Row finds a country's row.
func Row(rows []CountryRow, cc string) (CountryRow, bool) {
	for _, r := range rows {
		if r.Country == cc {
			return r, true
		}
	}
	return CountryRow{}, false
}

// CrossGovStats summarizes the cross-government link graph (Figure A.5,
// §7.3.3).
type CrossGovStats struct {
	// OutDegree maps a country to the number of *other* governments its
	// sites link to.
	OutDegree map[string]int
	// InDegree maps a country to the number of other governments linking
	// to it.
	InDegree map[string]int
	// ShareLinkingAtLeast7 is the fraction of countries linking to >= 7
	// other governments (paper: 75%).
	ShareLinkingAtLeast7 float64
	// HeavilyLinked counts countries referenced by >= 50 other
	// governments.
	HeavilyLinked int
	// TopLinker is the country with the highest out-degree (paper:
	// Austria, 70 governments).
	TopLinker string
	// TopLinkerDegree is its out-degree.
	TopLinkerDegree int
}

// ComputeCrossGov walks the link graph. links maps each hostname to its
// outbound link hosts; countryOf attributes hostnames to governments.
func ComputeCrossGov(links map[string][]string, countryOf func(string) string) CrossGovStats {
	outSets := map[string]map[string]bool{}
	inSets := map[string]map[string]bool{}
	for src, targets := range links {
		srcCC := countryOf(src)
		if srcCC == "" {
			continue
		}
		for _, dst := range targets {
			dstCC := countryOf(dst)
			if dstCC == "" || dstCC == srcCC {
				continue
			}
			if outSets[srcCC] == nil {
				outSets[srcCC] = map[string]bool{}
			}
			outSets[srcCC][dstCC] = true
			if inSets[dstCC] == nil {
				inSets[dstCC] = map[string]bool{}
			}
			inSets[dstCC][srcCC] = true
		}
	}
	s := CrossGovStats{OutDegree: map[string]int{}, InDegree: map[string]int{}}
	atLeast7 := 0
	for cc, set := range outSets {
		s.OutDegree[cc] = len(set)
		if len(set) >= 7 {
			atLeast7++
		}
		if len(set) > s.TopLinkerDegree {
			s.TopLinkerDegree = len(set)
			s.TopLinker = cc
		}
	}
	for cc, set := range inSets {
		s.InDegree[cc] = len(set)
		if len(set) >= 50 {
			s.HeavilyLinked++
		}
	}
	if len(outSets) > 0 {
		s.ShareLinkingAtLeast7 = float64(atLeast7) / float64(len(outSets))
	}
	return s
}
