package analysis

import (
	"math/rand"

	"repro/internal/hosting"
	"repro/internal/resultset"
	"repro/internal/stats"
	"repro/internal/world"
)

// OverlapRow is one row of Table 1.
type OverlapRow struct {
	TopK     int
	Majestic int
	Cisco    int
	Tranco   int
}

// ComputeOverlap reproduces Table 1: government hostnames inside the top
// 1K/10K/100K/1M of each public list (thresholds scale with the list).
func ComputeOverlap(tl *world.TopLists) []OverlapRow {
	var rows []OverlapRow
	for _, div := range []int{1000, 100, 10, 1} {
		k := tl.Max / div
		if k < 1 {
			k = 1
		}
		rows = append(rows, OverlapRow{
			TopK:     k,
			Majestic: tl.GovCountWithin("majestic", k),
			Cisco:    tl.GovCountWithin("cisco", k),
			Tranco:   tl.GovCountWithin("tranco", k),
		})
	}
	return rows
}

// RankSeries is one population of the Figure 7 comparison.
type RankSeries struct {
	Name string
	N    int
	// MeanRank and StdRank describe the rank distribution (§5.5 reports
	// them for each sample).
	MeanRank float64
	StdRank  float64
	// ValidRate is the overall share of valid https.
	ValidRate float64
	// Bins are the 50 rank buckets of Figure 7.
	Bins []stats.Bin
	// Fit is the linear regression of validity on rank.
	Fit stats.Linear
	// FitErr is non-nil when the regression could not be fitted.
	FitErr error
	// Hosting carries the Figure 6 per-hosting-kind validity.
	Hosting []HostingBucket
}

// RankComparison carries Figure 7's three series plus the top-12K
// non-government population of Figure 6.
type RankComparison struct {
	Gov       RankSeries
	Random    RankSeries
	Matched   RankSeries
	TopNonGov RankSeries
	Bins      int
}

// rankedSample is one observation.
type rankedSample struct {
	rank  int
	valid bool
	kind  hosting.Kind
}

// ComputeRankComparison reproduces §5.5: the Tranco-ranked government
// hosts against (1) a uniform non-government sample of equal size and (2) a
// rank-distribution-matched sample, with 50-bin rates and linear fits.
// Government validity comes from the set's host index; the list is still
// walked in Tranco order so the float accumulation is unchanged.
func ComputeRankComparison(tl *world.TopLists, set *resultset.Set, seed int64, nBins int) RankComparison {
	r := rand.New(rand.NewSource(seed))

	var gov []rankedSample
	var govRanks []int
	for _, rh := range tl.TrancoGov {
		res, ok := set.Lookup(rh.Host)
		if !ok {
			continue
		}
		gov = append(gov, rankedSample{rank: rh.Rank, valid: res.ValidHTTPS(), kind: res.HostKind})
		govRanks = append(govRanks, rh.Rank)
	}

	nonGovRanks := tl.NonGovRanks()
	sample := func(ranks []int) []rankedSample {
		out := make([]rankedSample, 0, len(ranks))
		for _, rank := range ranks {
			a := tl.NonGov(rank)
			out = append(out, rankedSample{rank: rank, valid: a.Valid, kind: a.HostKind})
		}
		return out
	}

	randomRanks := stats.SampleUniform(r, nonGovRanks, len(gov))
	matchedRanks := stats.RankMatched(r, govRanks, nonGovRanks, func(x int) int { return x }, nBins, tl.Max)
	topRanks := nonGovRanks
	if len(topRanks) > len(gov) {
		topRanks = topRanks[:len(gov)]
	}

	return RankComparison{
		Gov:       buildSeries("government", gov, nBins, tl.Max),
		Random:    buildSeries("non-government (uniform)", sample(randomRanks), nBins, tl.Max),
		Matched:   buildSeries("non-government (rank-matched)", sample(matchedRanks), nBins, tl.Max),
		TopNonGov: buildSeries("non-government (top)", sample(topRanks), nBins, tl.Max),
		Bins:      nBins,
	}
}

func buildSeries(name string, samples []rankedSample, nBins, maxRank int) RankSeries {
	s := RankSeries{Name: name, N: len(samples)}
	if len(samples) == 0 {
		return s
	}
	xs := make([]float64, len(samples))
	oks := make([]bool, len(samples))
	ys := make([]float64, len(samples))
	ranks := make([]float64, len(samples))
	valid := 0
	kinds := map[hosting.Kind]*HostingBucket{
		hosting.Cloud:   {Label: "Cloud"},
		hosting.CDN:     {Label: "CDN"},
		hosting.Private: {Label: "Private"},
	}
	for i, sm := range samples {
		xs[i] = float64(sm.rank)
		ranks[i] = float64(sm.rank)
		oks[i] = sm.valid
		if sm.valid {
			ys[i] = 1
			valid++
		}
		b := kinds[sm.kind]
		b.Total++
		if sm.valid {
			b.Valid++
			b.HTTPS++
		}
	}
	sum := stats.Summarize(ranks)
	s.MeanRank, s.StdRank = sum.Mean, sum.StdDev
	s.ValidRate = float64(valid) / float64(len(samples))
	s.Bins = stats.BinRate(xs, oks, nBins, 1, float64(maxRank)+1)
	s.Fit, s.FitErr = stats.FitLinear(xs, ys)
	s.Hosting = []HostingBucket{*kinds[hosting.Cloud], *kinds[hosting.CDN], *kinds[hosting.Private]}
	return s
}
