package analysis

import (
	"sort"

	"repro/internal/hosting"
	"repro/internal/scanner"
)

// HostingBucket aggregates validity for one hosting category or provider
// (Figures 5, 6, A.1).
type HostingBucket struct {
	Label string
	Total int
	// HTTPS counts hosts attempting https.
	HTTPS int
	// Valid counts hosts with fully valid https.
	Valid int
	// HTTPOnly counts plain-http hosts.
	HTTPOnly int
}

// ValidPctOfTotal is the share of all hosts in the bucket with valid https
// — the quantity Figure 5 plots.
func (b HostingBucket) ValidPctOfTotal() float64 { return pct(b.Valid, b.Total) }

// ValidPctOfHTTPS is the share of https attempts that validate.
func (b HostingBucket) ValidPctOfHTTPS() float64 { return pct(b.Valid, b.HTTPS) }

// HostingBreakdown groups results by hosting kind (Cloud/CDN/Private).
func HostingBreakdown(results []scanner.Result) []HostingBucket {
	byKind := map[hosting.Kind]*HostingBucket{}
	for _, k := range []hosting.Kind{hosting.Cloud, hosting.CDN, hosting.Private} {
		byKind[k] = &HostingBucket{Label: k.String()}
	}
	for i := range results {
		r := &results[i]
		if !r.Available {
			continue
		}
		b := byKind[r.HostKind]
		b.Total++
		switch {
		case r.ValidHTTPS():
			b.HTTPS++
			b.Valid++
		case r.HasHTTPS():
			b.HTTPS++
		default:
			b.HTTPOnly++
		}
	}
	return []HostingBucket{*byKind[hosting.Cloud], *byKind[hosting.CDN], *byKind[hosting.Private]}
}

// ProviderBreakdown groups results by provider name (AWS, Azure, ...,
// Private), sorted by total descending.
func ProviderBreakdown(results []scanner.Result) []HostingBucket {
	byName := map[string]*HostingBucket{}
	for i := range results {
		r := &results[i]
		if !r.Available {
			continue
		}
		b, ok := byName[r.Provider]
		if !ok {
			b = &HostingBucket{Label: r.Provider}
			byName[r.Provider] = b
		}
		b.Total++
		switch {
		case r.ValidHTTPS():
			b.HTTPS++
			b.Valid++
		case r.HasHTTPS():
			b.HTTPS++
		default:
			b.HTTPOnly++
		}
	}
	out := make([]HostingBucket, 0, len(byName))
	for _, b := range byName {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// CloudCDNShare returns the fraction of available hosts on public cloud or
// CDN (§6.1.2: 13.02% for the US; §6.2.2: 0.21% for ROK).
func CloudCDNShare(results []scanner.Result) float64 {
	total, cloud := 0, 0
	for i := range results {
		r := &results[i]
		if !r.Available {
			continue
		}
		total++
		if r.HostKind == hosting.Cloud || r.HostKind == hosting.CDN {
			cloud++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cloud) / float64(total)
}
