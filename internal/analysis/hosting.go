package analysis

import (
	"sort"

	"repro/internal/hosting"
	"repro/internal/resultset"
)

// HostingBucket aggregates validity for one hosting category or provider
// (Figures 5, 6, A.1).
type HostingBucket struct {
	Label string
	Total int
	// HTTPS counts hosts attempting https.
	HTTPS int
	// Valid counts hosts with fully valid https.
	Valid int
	// HTTPOnly counts plain-http hosts.
	HTTPOnly int
}

// ValidPctOfTotal is the share of all hosts in the bucket with valid https
// — the quantity Figure 5 plots.
func (b HostingBucket) ValidPctOfTotal() float64 { return pct(b.Valid, b.Total) }

// ValidPctOfHTTPS is the share of https attempts that validate.
func (b HostingBucket) ValidPctOfHTTPS() float64 { return pct(b.Valid, b.HTTPS) }

// fillBucket tallies one kind or provider's index entries (available
// hosts only — the set's hosting indexes exclude unavailable hosts).
func fillBucket(set *resultset.Set, label string, indices []int) HostingBucket {
	b := HostingBucket{Label: label}
	for _, i := range indices {
		r := set.At(i)
		b.Total++
		switch {
		case r.ValidHTTPS():
			b.HTTPS++
			b.Valid++
		case r.HasHTTPS():
			b.HTTPS++
		default:
			b.HTTPOnly++
		}
	}
	return b
}

// HostingBreakdown groups available hosts by hosting kind
// (Cloud/CDN/Private) from the set's kind index.
func HostingBreakdown(set *resultset.Set) []HostingBucket {
	out := make([]HostingBucket, 0, 3)
	for _, k := range []hosting.Kind{hosting.Cloud, hosting.CDN, hosting.Private} {
		out = append(out, fillBucket(set, k.String(), set.ByKind(k)))
	}
	return out
}

// ProviderBreakdown groups available hosts by provider name (AWS, Azure,
// ..., Private) from the set's provider index, sorted by total descending.
func ProviderBreakdown(set *resultset.Set) []HostingBucket {
	providers := set.Providers()
	out := make([]HostingBucket, 0, len(providers))
	for _, p := range providers {
		out = append(out, fillBucket(set, p, set.ByProvider(p)))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// CloudCDNShare returns the fraction of available hosts on public cloud or
// CDN (§6.1.2: 13.02% for the US; §6.2.2: 0.21% for ROK).
func CloudCDNShare(set *resultset.Set) float64 {
	cloud := len(set.ByKind(hosting.Cloud)) + len(set.ByKind(hosting.CDN))
	total := cloud + len(set.ByKind(hosting.Private))
	if total == 0 {
		return 0
	}
	return float64(cloud) / float64(total)
}
