package analysis

import (
	"sort"
	"time"

	"repro/internal/resultset"
)

// KeyCell is one bar of Figures 4/9/12: hosts grouped by host key or CA
// signing algorithm (or the combination), with validity.
type KeyCell struct {
	// Label identifies the group, e.g. "RSA-2048", "sha1WithRSAEncryption"
	// or "RSA-2048 / ecdsa-with-SHA256".
	Label string
	Total int
	Valid int
}

// ValidPct is the share of valid hosts in the cell.
func (c KeyCell) ValidPct() float64 { return pct(c.Valid, c.Total) }

// KeyAlgoMatrix carries the three panels of Figure 4.
type KeyAlgoMatrix struct {
	// ByHostKey groups by host public key type and size (panel 1).
	ByHostKey []KeyCell
	// BySigAlgo groups by CA signing algorithm (panel 2).
	BySigAlgo []KeyCell
	// Combined groups by host key x signing algorithm (panel 3).
	Combined []KeyCell
}

// ComputeKeyAlgoMatrix reads the set's chain cells, sorted by total
// descending (then label) for rendering.
func ComputeKeyAlgoMatrix(set *resultset.Set) KeyAlgoMatrix {
	return KeyAlgoMatrix{
		ByHostKey: sortCells(set.HostKeyCells()),
		BySigAlgo: sortCells(set.SigAlgoCells()),
		Combined:  sortCells(set.CombinedCells()),
	}
}

func sortCells(cells []resultset.Cell) []KeyCell {
	out := make([]KeyCell, len(cells))
	for i, c := range cells {
		out[i] = KeyCell{Label: c.Label, Total: c.Total, Valid: c.Valid}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Cell finds a cell by label.
func Cell(cells []KeyCell, label string) (KeyCell, bool) {
	for _, c := range cells {
		if c.Label == label {
			return c, true
		}
	}
	return KeyCell{}, false
}

// WeakSignatureHosts counts hosts whose certificates are signed with MD5 or
// SHA1 (§5.3.2's 920 sites).
func WeakSignatureHosts(set *resultset.Set) int { return set.WeakSignatureHosts() }

// SmallRSAHosts counts hosts using RSA keys below 2048 bits (§5.3.2's 520
// sites on 1024-bit RSA).
func SmallRSAHosts(set *resultset.Set) int { return set.SmallRSAHosts() }

// DurationStats reproduces §5.3.1 and Figures 3/10: certificate lifetimes
// for valid vs invalid certificates.
type DurationStats struct {
	ValidLifetimes   []time.Duration
	InvalidLifetimes []time.Duration
	// InvalidOver3y counts invalid certificates issued for more than three
	// years.
	InvalidOver3y int
	// InvalidUnder2y counts invalid certificates with lifetimes below two
	// years (the paper: only 32%).
	InvalidUnder2y int
	// Decades counts invalid certificates issued for exactly 10/20/30/50/
	// 100 years.
	Decades map[int]int
	// Mult365 counts invalid lifetimes that are exact multiples of 365
	// days (the paper: 43.24%).
	Mult365 int
	// EpochCerts counts certificates with a 1970 issue date.
	EpochCerts int
	// ValidIssueDates and InvalidIssueDates carry NotBefore times for the
	// Figure 3/10 scatter.
	ValidIssueDates   []time.Time
	InvalidIssueDates []time.Time
}

// ComputeDurationStats aggregates certificate lifetimes over the chained
// index, in scan input order.
func ComputeDurationStats(set *resultset.Set) DurationStats {
	s := DurationStats{Decades: make(map[int]int)}
	const day = 24 * time.Hour
	for _, i := range set.Chained() {
		r := set.At(i)
		leaf := r.Chain[0]
		life := leaf.ValidityDuration()
		if r.Verify.Valid() {
			s.ValidLifetimes = append(s.ValidLifetimes, life)
			s.ValidIssueDates = append(s.ValidIssueDates, leaf.NotBefore)
			continue
		}
		s.InvalidLifetimes = append(s.InvalidLifetimes, life)
		s.InvalidIssueDates = append(s.InvalidIssueDates, leaf.NotBefore)
		days := int(life / day)
		if days > 3*365 {
			s.InvalidOver3y++
		}
		if days < 2*365 {
			s.InvalidUnder2y++
		}
		for _, years := range []int{10, 20, 30, 50, 100} {
			if days == years*365 {
				s.Decades[years]++
			}
		}
		if days > 0 && days%365 == 0 {
			s.Mult365++
		}
		if leaf.NotBefore.Year() == 1970 {
			s.EpochCerts++
		}
	}
	return s
}

// MaxLifetime returns the longest lifetime in the set.
func MaxLifetime(lifetimes []time.Duration) time.Duration {
	var max time.Duration
	for _, l := range lifetimes {
		if l > max {
			max = l
		}
	}
	return max
}

// VersionCell counts hosts by negotiated TLS version (§5.3's 12.7% of
// hosts negotiating pre-SSLv3 protocols motivates tracking this).
type VersionCell struct {
	Version string
	Total   int
	Valid   int
}

// ComputeVersionBreakdown reads the set's per-version cells (https
// attempts only, with "(no handshake)" for protocol-layer failures),
// sorted by total descending then version.
func ComputeVersionBreakdown(set *resultset.Set) []VersionCell {
	cells := set.VersionCells()
	out := make([]VersionCell, len(cells))
	for i, c := range cells {
		out[i] = VersionCell{Version: c.Label, Total: c.Total, Valid: c.Valid}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Version < out[j].Version
	})
	return out
}
