package analysis

import (
	"context"
	"testing"

	"repro/internal/govfilter"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

var (
	testWorld = world.MustBuild(world.TestConfig())
	scanCache *resultset.Set
)

func worldScan(t *testing.T) *resultset.Set {
	t.Helper()
	if scanCache == nil {
		s := scanner.New(testWorld.Net, testWorld.DNS, testWorld.Class,
			scanner.DefaultConfig(testWorld.Stores["apple"], testWorld.ScanTime))
		b := resultset.NewBuilder(resultset.Options{CountryOf: countryOf, SizeHint: len(testWorld.GovHosts)})
		s.ScanStream(context.Background(), testWorld.GovHosts, b.Add)
		scanCache = b.Build()
	}
	return scanCache
}

func countryOf(h string) string { return testWorld.CountryOf(h) }

func TestTable2Shape(t *testing.T) {
	tab := ComputeTable2(worldScan(t))
	if tab.Total == 0 {
		t.Fatal("empty table")
	}
	httpsShare := tab.PctOfTotal(tab.HTTPS)
	if httpsShare < 30 || httpsShare > 50 {
		t.Errorf("https share = %.1f%%, want ~39%%", httpsShare)
	}
	validShare := tab.PctOfHTTPS(tab.Valid)
	if validShare < 60 || validShare > 82 {
		t.Errorf("valid share = %.1f%%, want ~71%%", validShare)
	}
	// Error ordering per Table 2.
	bc := tab.ByCategory
	if !(bc[scanner.CatHostnameMismatch] > bc[scanner.CatLocalIssuer]) {
		t.Errorf("mismatch (%d) !> local issuer (%d)",
			bc[scanner.CatHostnameMismatch], bc[scanner.CatLocalIssuer])
	}
	if !(bc[scanner.CatLocalIssuer] > bc[scanner.CatSelfSigned]) {
		t.Errorf("local issuer !> self-signed")
	}
	if !(bc[scanner.CatSelfSigned] > bc[scanner.CatExpired]) {
		t.Errorf("self-signed !> expired")
	}
	// Unsupported SSL protocol dominates the exceptions block (73.65%).
	if tab.Exceptions > 0 {
		share := tab.PctOfExceptions(bc[scanner.CatExcSSLProto])
		if share < 50 {
			t.Errorf("unsupported-proto share of exceptions = %.1f%%, want ~74%%", share)
		}
	}
	if tab.HTTPOnly+tab.HTTPS != tab.Total {
		t.Errorf("accounting broken: %d + %d != %d", tab.HTTPOnly, tab.HTTPS, tab.Total)
	}
	if tab.Valid+tab.Invalid != tab.HTTPS {
		t.Errorf("https accounting broken")
	}
}

func TestInvalidCategoriesSorted(t *testing.T) {
	tab := ComputeTable2(worldScan(t))
	cats := tab.InvalidCategoriesSorted()
	for i := 1; i < len(cats); i++ {
		if tab.ByCategory[cats[i-1]] < tab.ByCategory[cats[i]] {
			t.Fatal("categories not sorted by count")
		}
	}
}

func TestIssuerBreakdownLetsEncryptLeads(t *testing.T) {
	issuers := IssuerBreakdown(worldScan(t), testWorld.Stores["apple"])
	if len(issuers) < 10 {
		t.Fatalf("only %d issuers", len(issuers))
	}
	// §5.2: Let's Encrypt is the leading CA worldwide with ~80% validity.
	if issuers[0].Issuer != "Let's Encrypt Authority X3" {
		t.Errorf("top issuer = %q, want Let's Encrypt", issuers[0].Issuer)
	}
	le := issuers[0]
	if le.InvalidPct() > 40 {
		t.Errorf("Let's Encrypt invalidity = %.1f%%, want ~20%%", le.InvalidPct())
	}
	top := TopIssuers(issuers, 5)
	if len(top) != 5 {
		t.Errorf("TopIssuers = %d", len(top))
	}
}

func TestEVBreakdownAndStats(t *testing.T) {
	results := worldScan(t)
	store := testWorld.Stores["apple"]
	ev := ComputeEVStats(results, store)
	if ev.Hosts == 0 {
		t.Fatal("no EV hosts")
	}
	share := 100 * float64(ev.Hosts) / float64(ev.Analyzed)
	// §5.3: 4.24% EV hostnames.
	if share < 1 || share > 10 {
		t.Errorf("EV share = %.2f%%, want ~4%%", share)
	}
	evIssuers := EVIssuerBreakdown(results, store)
	if len(evIssuers) == 0 {
		t.Fatal("no EV issuers")
	}
	for _, s := range evIssuers {
		if s.EV != s.Total {
			t.Errorf("EV breakdown contains non-EV rows: %+v", s)
		}
	}
}

func TestWildcardStats(t *testing.T) {
	s := ComputeWildcardStats(worldScan(t))
	if s.Analyzed == 0 || s.Wildcard == 0 {
		t.Fatal("no wildcard data")
	}
	share := 100 * float64(s.Wildcard) / float64(s.Analyzed)
	// §5.3: 39.21% wildcard, 22.67% of them invalid.
	if share < 25 || share > 55 {
		t.Errorf("wildcard share = %.1f%%, want ~39%%", share)
	}
	invShare := 100 * float64(s.WildcardInvalid) / float64(s.Wildcard)
	if invShare < 10 || invShare > 45 {
		t.Errorf("wildcard invalid share = %.1f%%, want ~23%%", invShare)
	}
}

func TestKeyAlgoMatrix(t *testing.T) {
	m := ComputeKeyAlgoMatrix(worldScan(t))
	if len(m.ByHostKey) == 0 || len(m.BySigAlgo) == 0 || len(m.Combined) == 0 {
		t.Fatal("empty matrix")
	}
	// RSA-2048 dominates host keys.
	if m.ByHostKey[0].Label != "RSA-2048" {
		t.Errorf("top key = %q", m.ByHostKey[0].Label)
	}
	// EC-signed EC keys validate near-universally (§5.3.2's 99%).
	for _, c := range m.Combined {
		if c.Label == "EC-256 / ecdsa-with-SHA256" && c.Total >= 10 {
			if c.ValidPct() < 85 {
				t.Errorf("EC/EC cell validity = %.1f%%, want ~99%%", c.ValidPct())
			}
		}
	}
	// Weak signature algorithms correlate with invalidity.
	if c, ok := Cell(m.BySigAlgo, "sha1WithRSAEncryption"); ok && c.Total >= 5 {
		if c.ValidPct() > 40 {
			t.Errorf("SHA1 validity = %.1f%%, want low", c.ValidPct())
		}
	}
	if n := WeakSignatureHosts(worldScan(t)); n == 0 {
		t.Error("no weak-signature hosts observed")
	}
	if n := SmallRSAHosts(worldScan(t)); n == 0 {
		t.Error("no small-RSA hosts observed")
	}
}

func TestDurationStats(t *testing.T) {
	d := ComputeDurationStats(worldScan(t))
	if len(d.ValidLifetimes) == 0 || len(d.InvalidLifetimes) == 0 {
		t.Fatal("no lifetime data")
	}
	// §5.3.1: invalid certificates have a much wider spread.
	if MaxLifetime(d.InvalidLifetimes) <= MaxLifetime(d.ValidLifetimes) {
		t.Error("invalid lifetimes should exceed valid ones")
	}
	under2y := 100 * float64(d.InvalidUnder2y) / float64(len(d.InvalidLifetimes))
	if under2y > 60 {
		t.Errorf("invalid under-2y share = %.1f%%, want ~32%%", under2y)
	}
	if d.Decades[10] == 0 {
		t.Error("no 10-year certificates")
	}
	mult := 100 * float64(d.Mult365) / float64(len(d.InvalidLifetimes))
	if mult < 20 || mult > 70 {
		t.Errorf("multiples of 365 = %.1f%%, want ~43%%", mult)
	}
}

func TestKeyReuse(t *testing.T) {
	s := ComputeKeyReuse(worldScan(t))
	if len(s.Clusters) == 0 {
		t.Fatal("no reuse clusters")
	}
	if len(s.CrossCountry) == 0 {
		t.Fatal("no cross-country reuse")
	}
	if s.MaxCountrySpan() < 5 {
		t.Errorf("max country span = %d, want the big shared cert", s.MaxCountrySpan())
	}
	// §5.3.3: no valid public-key reuse across country governments.
	if s.ValidCrossCountry != 0 {
		t.Errorf("found %d valid cross-country clusters, want 0", s.ValidCrossCountry)
	}
	// The widest cluster is the self-signed localhost certificate.
	if !s.CrossCountry[0].SelfSigned {
		t.Error("widest cross-country cluster should be self-signed")
	}
}

func TestWildcardViolators(t *testing.T) {
	v := ComputeWildcardViolators(worldScan(t))
	if len(v) == 0 {
		t.Fatal("no single-country wildcard violations")
	}
	for i := 1; i < len(v); i++ {
		if v[i-1].Hosts < v[i].Hosts {
			t.Fatal("violators not sorted")
		}
	}
}

func TestHostingBreakdown(t *testing.T) {
	buckets := HostingBreakdown(worldScan(t))
	if len(buckets) != 3 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	var cloud, private HostingBucket
	for _, b := range buckets {
		switch b.Label {
		case "Cloud":
			cloud = b
		case "Private":
			private = b
		}
	}
	if private.Total < cloud.Total {
		t.Error("government sites should be predominantly privately hosted")
	}
	// §5.4: cloud-hosted sites are roughly twice as valid as private.
	if cloud.ValidPctOfTotal() <= private.ValidPctOfTotal() {
		t.Errorf("cloud validity (%.1f%%) should exceed private (%.1f%%)",
			cloud.ValidPctOfTotal(), private.ValidPctOfTotal())
	}
}

func TestProviderBreakdownAWSLeadsCloud(t *testing.T) {
	buckets := ProviderBreakdown(worldScan(t))
	pos := map[string]int{}
	for i, b := range buckets {
		pos[b.Label] = i
	}
	if pos["Private"] != 0 {
		t.Errorf("Private should dominate, got order %v", buckets[0].Label)
	}
	if awsPos, cfPos := pos["AWS"], pos["Cloudflare"]; awsPos > cfPos {
		t.Errorf("AWS (%d) should outrank Cloudflare (%d) (§6.1.2)", awsPos, cfPos)
	}
}

func TestCountryBreakdown(t *testing.T) {
	rows := CountryBreakdown(worldScan(t))
	if len(rows) < 100 {
		t.Fatalf("countries = %d", len(rows))
	}
	us, ok := Row(rows, "us")
	if !ok {
		t.Fatal("no US row")
	}
	kr, _ := Row(rows, "kr")
	cn, _ := Row(rows, "cn")
	if us.ValidPct() <= kr.ValidPct() {
		t.Errorf("US validity (%.1f) should exceed ROK (%.1f)", us.ValidPct(), kr.ValidPct())
	}
	if cn.ValidPct() > 25 {
		t.Errorf("China validity = %.1f%%, want ~11%%", cn.ValidPct())
	}
}

func TestCrossGov(t *testing.T) {
	links := map[string][]string{}
	for _, h := range testWorld.GovHosts {
		if l := testWorld.Sites[h].Links; len(l) > 0 {
			links[h] = l
		}
	}
	s := ComputeCrossGov(links, countryOf)
	if len(s.OutDegree) < 50 {
		t.Fatalf("countries with outlinks = %d", len(s.OutDegree))
	}
	// §7.3.3 / Fig A.5: Austria links to the most governments; ~75% of
	// countries link to at least 7.
	if s.TopLinker != "at" {
		t.Errorf("top linker = %q, want at", s.TopLinker)
	}
	if s.ShareLinkingAtLeast7 < 0.5 || s.ShareLinkingAtLeast7 > 0.95 {
		t.Errorf("share linking >=7 = %.2f, want ~0.75", s.ShareLinkingAtLeast7)
	}
}

func TestOverlapTable(t *testing.T) {
	rows := ComputeOverlap(testWorld.TopLists)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < 4; i++ {
		if rows[i].Tranco < rows[i-1].Tranco {
			t.Error("tranco overlap not monotone")
		}
		if rows[i].Majestic < rows[i-1].Majestic {
			t.Error("majestic overlap not monotone")
		}
	}
	// Table 1: Cisco has no gov sites in the top 1K and trails overall.
	if rows[0].Cisco != 0 {
		t.Errorf("cisco top-1K = %d, want 0", rows[0].Cisco)
	}
	if rows[3].Cisco >= rows[3].Majestic {
		t.Error("cisco should trail majestic at 1M")
	}
}

func TestRankComparison(t *testing.T) {
	rc := ComputeRankComparison(testWorld.TopLists, worldScan(t), 99, 50)
	if rc.Gov.N == 0 || rc.Random.N == 0 || rc.Matched.N == 0 {
		t.Fatalf("empty series: %d/%d/%d", rc.Gov.N, rc.Random.N, rc.Matched.N)
	}
	// §5.5: government validity (~30%) far below non-government (~55%).
	if rc.Gov.ValidRate >= rc.Random.ValidRate {
		t.Errorf("gov validity %.3f should trail non-gov %.3f", rc.Gov.ValidRate, rc.Random.ValidRate)
	}
	if rc.Gov.ValidRate >= rc.Matched.ValidRate {
		t.Errorf("gov validity %.3f should trail rank-matched %.3f", rc.Gov.ValidRate, rc.Matched.ValidRate)
	}
	// The top non-gov sample outperforms the uniform one.
	if rc.TopNonGov.ValidRate <= rc.Random.ValidRate {
		t.Errorf("top non-gov %.3f should beat uniform %.3f", rc.TopNonGov.ValidRate, rc.Random.ValidRate)
	}
	// All fitted slopes are negative: validity declines with rank.
	for _, s := range []RankSeries{rc.Random, rc.Matched} {
		if s.FitErr != nil {
			t.Fatalf("%s fit: %v", s.Name, s.FitErr)
		}
		if s.Fit.Slope >= 0 {
			t.Errorf("%s slope = %v, want negative", s.Name, s.Fit.Slope)
		}
	}
	// The matched sample's rank distribution tracks the government one.
	if diff := rc.Matched.MeanRank - rc.Gov.MeanRank; diff > float64(testWorld.TopLists.Max)/10 || diff < -float64(testWorld.TopLists.Max)/10 {
		t.Errorf("matched mean rank %.0f far from gov %.0f", rc.Matched.MeanRank, rc.Gov.MeanRank)
	}
}

func TestCloudCDNShare(t *testing.T) {
	// ROK sites sit almost entirely on private hosting (§6.2.2).
	s := scanner.New(testWorld.Net, testWorld.DNS, testWorld.Class,
		scanner.DefaultConfig(testWorld.Stores["apple"], testWorld.ScanTime))
	rok := resultset.New(s.ScanAll(context.Background(), testWorld.ROK.Hosts), resultset.Options{})
	if share := CloudCDNShare(rok); share > 0.05 {
		t.Errorf("ROK cloud share = %.4f, want ~0.002", share)
	}
}

func TestGovFilterCoversWorld(t *testing.T) {
	// The world's hostnames must be recognizable by the government filter
	// (modulo whitelist countries).
	f := govfilter.New()
	for h, cc := range testWorld.Whitelist {
		f.Whitelist(h, cc)
	}
	misses := 0
	for _, h := range testWorld.GovHosts {
		if !f.IsGov(h) {
			misses++
		}
	}
	if frac := float64(misses) / float64(len(testWorld.GovHosts)); frac > 0.01 {
		t.Errorf("filter misses %.2f%% of world hostnames", 100*frac)
	}
}

func TestVersionBreakdown(t *testing.T) {
	cells := ComputeVersionBreakdown(worldScan(t))
	if len(cells) < 2 {
		t.Fatalf("cells = %v", cells)
	}
	byVersion := map[string]VersionCell{}
	for _, c := range cells {
		byVersion[c.Version] = c
	}
	// Modern versions dominate; failed negotiations exist (the SSLv2-only
	// population among others).
	if byVersion["TLSv1.2"].Total == 0 {
		t.Error("no TLS 1.2 hosts")
	}
	if byVersion["(no handshake)"].Total == 0 {
		t.Error("no failed-negotiation hosts")
	}
	if byVersion["(no handshake)"].Valid != 0 {
		t.Error("failed negotiations cannot be valid")
	}
}
