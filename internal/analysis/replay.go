package analysis

import (
	"repro/internal/acme"
	"repro/internal/resultset"
)

// ReuseReplay summarizes replaying a scan's issuance history through the
// §8.1 key-reuse policy: how many of the §5.3.3 shared-key certifications
// a CA enforcing the rule would have refused.
type ReuseReplay struct {
	// Issuances counts the replayed issuance events (one per chain-bearing
	// host).
	Issuances int
	// Blocked counts events the policy refused.
	Blocked int
	// BlockedCountries counts the distinct governments with at least one
	// refused event.
	BlockedCountries int
}

// ReplayReusePolicy replays the chained results, in scan input order,
// through a fresh acme.ReusePolicy. The §8.1 check happens at issuance:
// each host requests a certificate for *itself* with the key it actually
// serves, so a key already bound to an unrelated hostname is refused.
func ReplayReusePolicy(set *resultset.Set) ReuseReplay {
	policy := acme.NewReusePolicy()
	var out ReuseReplay
	blocked := map[string]bool{}
	for _, i := range set.Chained() {
		r := set.At(i)
		leaf := r.Chain[0]
		out.Issuances++
		if err := policy.Check(leaf.PublicKey.ID, []string{r.Hostname}); err != nil {
			out.Blocked++
			if cc := set.CountryOf(r.Hostname); cc != "" {
				blocked[cc] = true
			}
			continue
		}
		policy.Record(leaf.PublicKey.ID, []string{r.Hostname})
	}
	out.BlockedCountries = len(blocked)
	return out
}
