package analysis

import (
	"sort"

	"repro/internal/scanner"
	"repro/internal/truststore"
)

// IssuerStats aggregates one issuing CA's government certificates
// (Figures 2, 8, 11).
type IssuerStats struct {
	// Issuer is the issuing CA common name; self-signed leaves report
	// their own subject, matching how OpenSSL displays them.
	Issuer  string
	Total   int
	Valid   int
	Invalid int
	// EV counts certificates carrying a trusted EV policy OID.
	EV int
}

// InvalidPct is the issuer's invalidity rate.
func (s IssuerStats) InvalidPct() float64 { return pct(s.Invalid, s.Total) }

// IssuerBreakdown aggregates results by certificate issuer, sorted by
// total descending (then name). Hosts without a retrieved chain are
// skipped, as are the paper's 92 hosts without issuer information.
func IssuerBreakdown(results []scanner.Result, store *truststore.Store) []IssuerStats {
	agg := make(map[string]*IssuerStats)
	for i := range results {
		r := &results[i]
		if len(r.Chain) == 0 {
			continue
		}
		leaf := r.Chain[0]
		issuer := leaf.Issuer.CommonName
		if issuer == "" {
			continue // no issuer information encoded
		}
		s, ok := agg[issuer]
		if !ok {
			s = &IssuerStats{Issuer: issuer}
			agg[issuer] = s
		}
		s.Total++
		if r.Verify.Valid() {
			s.Valid++
		} else {
			s.Invalid++
		}
		if store != nil {
			for _, oid := range leaf.PolicyOIDs {
				if store.IsTrustedEVPolicy(oid) {
					s.EV++
					break
				}
			}
		}
	}
	out := make([]IssuerStats, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Issuer < out[j].Issuer
	})
	return out
}

// TopIssuers truncates the breakdown to the n largest issuers, as the
// paper's Figure 2 shows the top 40.
func TopIssuers(stats []IssuerStats, n int) []IssuerStats {
	if n > len(stats) {
		n = len(stats)
	}
	return stats[:n]
}

// EVIssuerBreakdown restricts the breakdown to EV certificates (Figures
// A.2, A.3, A.6): only hosts whose leaf carries a trusted EV policy.
func EVIssuerBreakdown(results []scanner.Result, store *truststore.Store) []IssuerStats {
	var evResults []scanner.Result
	for i := range results {
		r := &results[i]
		if len(r.Chain) == 0 {
			continue
		}
		for _, oid := range r.Chain[0].PolicyOIDs {
			if store.IsTrustedEVPolicy(oid) {
				evResults = append(evResults, *r)
				break
			}
		}
	}
	return IssuerBreakdown(evResults, store)
}

// EVStats summarizes EV usage across the scan (§5.3: 2,145 hostnames,
// 4.24% of the analyzed population).
type EVStats struct {
	// Hosts is the number of hosts presenting a trusted EV certificate.
	Hosts int
	// Analyzed is the number of hosts with issuer-bearing chains.
	Analyzed int
	// Valid counts EV hosts whose chains fully validate.
	Valid int
}

// ComputeEVStats counts EV hosts.
func ComputeEVStats(results []scanner.Result, store *truststore.Store) EVStats {
	var s EVStats
	for i := range results {
		r := &results[i]
		if len(r.Chain) == 0 || r.Chain[0].Issuer.CommonName == "" {
			continue
		}
		s.Analyzed++
		isEV := false
		for _, oid := range r.Chain[0].PolicyOIDs {
			if store.IsTrustedEVPolicy(oid) {
				isEV = true
				break
			}
		}
		if !isEV {
			continue
		}
		s.Hosts++
		if r.Verify.Valid() {
			s.Valid++
		}
	}
	return s
}

// WildcardStats reports wildcard certificate usage (§5.3: 39.21% of
// analyzed hosts, 22.67% of them invalid).
type WildcardStats struct {
	Analyzed        int
	Wildcard        int
	WildcardInvalid int
}

// ComputeWildcardStats counts wildcard certificates.
func ComputeWildcardStats(results []scanner.Result) WildcardStats {
	var s WildcardStats
	for i := range results {
		r := &results[i]
		if len(r.Chain) == 0 {
			continue
		}
		s.Analyzed++
		if !r.Chain[0].HasWildcard() {
			continue
		}
		s.Wildcard++
		if !r.Verify.Valid() {
			s.WildcardInvalid++
		}
	}
	return s
}
