package analysis

import (
	"sort"

	"repro/internal/resultset"
	"repro/internal/truststore"
)

// IssuerStats aggregates one issuing CA's government certificates
// (Figures 2, 8, 11).
type IssuerStats struct {
	// Issuer is the issuing CA common name; self-signed leaves report
	// their own subject, matching how OpenSSL displays them.
	Issuer  string
	Total   int
	Valid   int
	Invalid int
	// EV counts certificates carrying a trusted EV policy OID.
	EV int
}

// InvalidPct is the issuer's invalidity rate.
func (s IssuerStats) InvalidPct() float64 { return pct(s.Invalid, s.Total) }

// isEVLeaf reports whether the result's leaf carries a trusted EV policy.
func isEVLeaf(set *resultset.Set, i int, store *truststore.Store) bool {
	for _, oid := range set.At(i).Chain[0].PolicyOIDs {
		if store.IsTrustedEVPolicy(oid) {
			return true
		}
	}
	return false
}

// IssuerBreakdown aggregates the set's issuer index, sorted by total
// descending (then name). Hosts without a retrieved chain are skipped, as
// are the paper's 92 hosts without issuer information.
func IssuerBreakdown(set *resultset.Set, store *truststore.Store) []IssuerStats {
	issuers := set.Issuers()
	out := make([]IssuerStats, 0, len(issuers))
	for _, cn := range issuers {
		s := IssuerStats{Issuer: cn}
		for _, i := range set.ByIssuer(cn) {
			s.Total++
			if set.At(i).Verify.Valid() {
				s.Valid++
			} else {
				s.Invalid++
			}
			if store != nil && isEVLeaf(set, i, store) {
				s.EV++
			}
		}
		out = append(out, s)
	}
	sortIssuerStats(out)
	return out
}

func sortIssuerStats(out []IssuerStats) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Issuer < out[j].Issuer
	})
}

// TopIssuers truncates the breakdown to the n largest issuers, as the
// paper's Figure 2 shows the top 40.
func TopIssuers(stats []IssuerStats, n int) []IssuerStats {
	if n > len(stats) {
		n = len(stats)
	}
	return stats[:n]
}

// EVIssuerBreakdown restricts the breakdown to EV certificates (Figures
// A.2, A.3, A.6): only hosts whose leaf carries a trusted EV policy.
func EVIssuerBreakdown(set *resultset.Set, store *truststore.Store) []IssuerStats {
	var out []IssuerStats
	for _, cn := range set.Issuers() {
		s := IssuerStats{Issuer: cn}
		for _, i := range set.ByIssuer(cn) {
			if !isEVLeaf(set, i, store) {
				continue
			}
			s.Total++
			s.EV++
			if set.At(i).Verify.Valid() {
				s.Valid++
			} else {
				s.Invalid++
			}
		}
		if s.Total > 0 {
			out = append(out, s)
		}
	}
	sortIssuerStats(out)
	return out
}

// EVStats summarizes EV usage across the scan (§5.3: 2,145 hostnames,
// 4.24% of the analyzed population).
type EVStats struct {
	// Hosts is the number of hosts presenting a trusted EV certificate.
	Hosts int
	// Analyzed is the number of hosts with issuer-bearing chains.
	Analyzed int
	// Valid counts EV hosts whose chains fully validate.
	Valid int
}

// ComputeEVStats counts EV hosts over the issuer index.
func ComputeEVStats(set *resultset.Set, store *truststore.Store) EVStats {
	s := EVStats{Analyzed: set.IssuerAnalyzed()}
	for _, cn := range set.Issuers() {
		for _, i := range set.ByIssuer(cn) {
			if !isEVLeaf(set, i, store) {
				continue
			}
			s.Hosts++
			if set.At(i).Verify.Valid() {
				s.Valid++
			}
		}
	}
	return s
}

// WildcardStats reports wildcard certificate usage (§5.3: 39.21% of
// analyzed hosts, 22.67% of them invalid).
type WildcardStats struct {
	Analyzed        int
	Wildcard        int
	WildcardInvalid int
}

// ComputeWildcardStats counts wildcard certificates over the chained
// index.
func ComputeWildcardStats(set *resultset.Set) WildcardStats {
	s := WildcardStats{Analyzed: len(set.Chained())}
	for _, i := range set.Chained() {
		r := set.At(i)
		if !r.Chain[0].HasWildcard() {
			continue
		}
		s.Wildcard++
		if !r.Verify.Valid() {
			s.WildcardInvalid++
		}
	}
	return s
}
