// Package simclock provides the time source shared by the simulated
// network and the scanner. Production code runs on the Real wall clock;
// simulation runs on a Virtual clock whose Sleep advances simulated time
// instead of consuming wall-clock time, so a full-world scan with
// exponential backoff between retries still finishes in milliseconds while
// exercising exactly the production code paths.
//
// The Virtual clock has two modes. The default (NewVirtual) collapses
// waiting: Sleep advances the clock by the requested duration and returns
// immediately, mirroring simnet's "waiting time is collapsed" philosophy.
// Manual mode (NewManual) parks sleepers until a test calls Advance,
// which is the shape needed to unit-test timer-ordering behaviour.
package simclock

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for code that must run identically against the wall
// clock and against simulated time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep pauses the calling goroutine for d, or until the context is
	// cancelled, in which case the context's error is returned.
	Sleep(ctx context.Context, d time.Duration) error
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock, honouring context cancellation.
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Virtual is a deterministic simulated clock.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	start   time.Time
	manual  bool
	waiters []*waiter
}

// waiter is one goroutine parked in a manual-mode Sleep.
type waiter struct {
	deadline time.Time
	ch       chan struct{}
}

// NewVirtual returns a collapsing virtual clock starting at start: Sleep
// advances simulated time and returns immediately.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start, start: start}
}

// NewManual returns a virtual clock whose Sleep blocks until Advance (or
// Set) moves simulated time past the sleeper's deadline.
func NewManual(start time.Time) *Virtual {
	return &Virtual{now: start, start: start, manual: true}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Elapsed reports how much simulated time has passed since the clock was
// created.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now.Sub(v.start)
}

// Sleep implements Clock. In collapsing mode it advances the clock by d and
// returns immediately; in manual mode it parks until Advance catches up.
func (v *Virtual) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	v.mu.Lock()
	if !v.manual {
		v.now = v.now.Add(d)
		v.mu.Unlock()
		return nil
	}
	w := &waiter{deadline: v.now.Add(d), ch: make(chan struct{})}
	v.waiters = append(v.waiters, w)
	v.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		v.remove(w)
		return ctx.Err()
	}
}

// Advance moves simulated time forward by d, releasing every sleeper whose
// deadline has been reached, earliest first.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceTo(v.now.Add(d))
}

// SetTime jumps simulated time to t (never backwards), waking due sleepers.
func (v *Virtual) SetTime(t time.Time) {
	v.mu.Lock()
	v.advanceTo(t)
}

// advanceTo jumps simulated time to t (never backwards) and wakes due
// sleepers, earliest deadline first. Called with v.mu held; releases it.
func (v *Virtual) advanceTo(t time.Time) {
	if t.After(v.now) {
		v.now = t
	}
	var due []*waiter
	rest := v.waiters[:0]
	for _, w := range v.waiters {
		if !w.deadline.After(v.now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	v.waiters = rest
	v.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		close(w.ch)
	}
}

// NumWaiters reports how many goroutines are parked in manual-mode sleeps
// (test synchronization helper).
func (v *Virtual) NumWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// remove drops a cancelled waiter.
func (v *Virtual) remove(w *waiter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, x := range v.waiters {
		if x == w {
			v.waiters = append(v.waiters[:i], v.waiters[i+1:]...)
			return
		}
	}
}
