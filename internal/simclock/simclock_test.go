package simclock

import (
	"context"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2020, 4, 22, 0, 0, 0, 0, time.UTC)

func TestVirtualSleepCollapses(t *testing.T) {
	c := NewVirtual(epoch)
	start := time.Now()
	if err := c.Sleep(context.Background(), time.Hour); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 100*time.Millisecond {
		t.Errorf("collapsed sleep consumed %v wall-clock", wall)
	}
	if got := c.Now(); !got.Equal(epoch.Add(time.Hour)) {
		t.Errorf("Now = %v, want %v", got, epoch.Add(time.Hour))
	}
	if c.Elapsed() != time.Hour {
		t.Errorf("Elapsed = %v", c.Elapsed())
	}
}

func TestVirtualSleepCancelled(t *testing.T) {
	c := NewVirtual(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); err != context.Canceled {
		t.Errorf("err = %v, want canceled", err)
	}
	if !c.Now().Equal(epoch) {
		t.Error("cancelled sleep advanced the clock")
	}
}

func TestVirtualConcurrentSleeps(t *testing.T) {
	c := NewVirtual(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(context.Background(), time.Minute)
		}()
	}
	wg.Wait()
	if got := c.Now(); !got.Equal(epoch.Add(50 * time.Minute)) {
		t.Errorf("Now = %v after 50 concurrent 1m sleeps", got)
	}
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	c := NewManual(epoch)
	woke := make(chan time.Duration, 2)
	for _, d := range []time.Duration{2 * time.Second, time.Second} {
		d := d
		go func() {
			c.Sleep(context.Background(), d)
			woke <- d
		}()
	}
	for c.NumWaiters() != 2 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(500 * time.Millisecond)
	select {
	case d := <-woke:
		t.Fatalf("sleeper %v woke before its deadline", d)
	case <-time.After(20 * time.Millisecond):
	}
	c.Advance(time.Second) // now at +1.5s: releases the 1s sleeper only
	if d := <-woke; d != time.Second {
		t.Fatalf("woke %v first, want 1s", d)
	}
	c.Advance(time.Second) // +2.5s: releases the 2s sleeper
	if d := <-woke; d != 2*time.Second {
		t.Fatalf("woke %v, want 2s", d)
	}
}

func TestManualSleepCancelRemovesWaiter(t *testing.T) {
	c := NewManual(epoch)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.Sleep(ctx, time.Hour) }()
	for c.NumWaiters() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if c.NumWaiters() != 0 {
		t.Error("cancelled waiter not removed")
	}
}

func TestSetTimeNeverGoesBackwards(t *testing.T) {
	c := NewVirtual(epoch)
	c.SetTime(epoch.Add(time.Hour))
	c.SetTime(epoch) // ignored
	if got := c.Now(); !got.Equal(epoch.Add(time.Hour)) {
		t.Errorf("Now = %v", got)
	}
}

func TestRealSleepHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := (Real{}).Sleep(ctx, 5*time.Second); err == nil {
		t.Fatal("cancelled real sleep returned nil")
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled real sleep blocked")
	}
}
