package serve

import (
	"sync"
	"sync/atomic"
)

// cache.go — the sharded read-through response cache. Entries are fully
// serialized response bodies keyed by normalized query (the key embeds
// the dataset generation, so a patched or invalidated dataset is never
// served stale bytes: its new generation simply misses, and the old
// generation's entries age out of the LRU with no global flush). The
// shard count is a power of two so key→shard routing is one fnv hash
// and a mask; each shard is independently locked, so concurrent hits on
// different shards never contend. A cache miss runs exactly one fill
// per key no matter how many requests stampede it: the first caller
// claims the fill, the rest park on its completion channel and share
// the bytes (single-flight).

// CacheConfig sizes the response cache.
type CacheConfig struct {
	// Shards is the shard count, rounded up to a power of two (0 = 16).
	Shards int
	// MaxBytes is the total body-byte budget across shards (0 = 64 MiB).
	// Each shard evicts least-recently-used entries past its share.
	MaxBytes int
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits      int64
	Misses    int64 // requests that found no entry (fills + waits)
	Fills     int64 // misses that ran the aggregation
	Waits     int64 // misses that parked on another request's fill
	Evictions int64
	Entries   int
	Bytes     int
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key        string
	body       []byte
	prev, next *cacheEntry
}

// cacheCall is one in-flight single-flight fill.
type cacheCall struct {
	done chan struct{}
	body []byte
	err  error
}

// cacheShard is one independently-locked slice of the key space.
type cacheShard struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	inflight map[string]*cacheCall
	// head is most-recently-used, tail least; detached sentinel-free list.
	head, tail *cacheEntry
	bytes      int
}

type cache struct {
	shards    []cacheShard
	mask      uint32
	shardMax  int
	hits      atomic.Int64
	misses    atomic.Int64
	fills     atomic.Int64
	waits     atomic.Int64
	evictions atomic.Int64
}

const (
	defaultCacheShards = 16
	defaultCacheBytes  = 64 << 20
)

func newCache(cfg CacheConfig) *cache {
	n := cfg.Shards
	if n <= 0 {
		n = defaultCacheShards
	}
	// Round up to a power of two for mask routing.
	shards := 1
	for shards < n {
		shards <<= 1
	}
	total := cfg.MaxBytes
	if total <= 0 {
		total = defaultCacheBytes
	}
	c := &cache{
		shards:   make([]cacheShard, shards),
		mask:     uint32(shards - 1),
		shardMax: total / shards,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
		c.shards[i].inflight = make(map[string]*cacheCall)
	}
	return c
}

// fnv32a is the allocation-free FNV-1a the shard router uses.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// getOrFill returns the cached body for key, running fill exactly once
// per key across concurrent callers on a miss. The returned slice is
// owned by the cache and must be treated as read-only. hit reports
// whether the bytes came from the cache without running (or waiting on)
// a fill.
func (c *cache) getOrFill(key string, fill func() ([]byte, error)) (body []byte, hit bool, err error) {
	sh := &c.shards[fnv32a(key)&c.mask]
	sh.mu.Lock()
	if e := sh.entries[key]; e != nil {
		sh.moveToFront(e)
		sh.mu.Unlock()
		c.hits.Add(1)
		return e.body, true, nil
	}
	c.misses.Add(1)
	if call := sh.inflight[key]; call != nil {
		sh.mu.Unlock()
		c.waits.Add(1)
		<-call.done
		return call.body, false, call.err
	}
	call := &cacheCall{done: make(chan struct{})}
	sh.inflight[key] = call
	sh.mu.Unlock()

	c.fills.Add(1)
	body, err = fill()

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil && len(body) <= c.shardMax {
		sh.insert(&cacheEntry{key: key, body: body})
		for sh.bytes > c.shardMax && sh.tail != nil && sh.tail != sh.head {
			c.evictions.Add(1)
			sh.evict(sh.tail)
		}
	}
	sh.mu.Unlock()
	call.body, call.err = body, err
	close(call.done)
	return body, false, err
}

// insert links e at the front. Caller holds sh.mu.
func (sh *cacheShard) insert(e *cacheEntry) {
	sh.entries[e.key] = e
	sh.bytes += len(e.key) + len(e.body)
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// moveToFront marks e most recently used. Caller holds sh.mu.
func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	// Relink at front.
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
}

// evict unlinks and forgets e. Caller holds sh.mu.
func (sh *cacheShard) evict(e *cacheEntry) {
	delete(sh.entries, e.key)
	sh.bytes -= len(e.key) + len(e.body)
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if sh.head == e {
		sh.head = e.next
	}
	if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Stats snapshots the counters plus current occupancy.
func (c *cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Fills:     c.fills.Load(),
		Waits:     c.waits.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}
