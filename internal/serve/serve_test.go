package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/resultset"
	"repro/internal/serve"
	"repro/internal/world"
)

var (
	studyOnce sync.Once
	study     *core.Study
	studySet  *resultset.Set
)

// serveStudy returns a shared warm study (and its worldwide set) for the
// read-only tests; tests that churn the registry build their own.
func serveStudy(t *testing.T) (*core.Study, *resultset.Set) {
	t.Helper()
	studyOnce.Do(func() {
		study = core.MustNewStudy(world.TestConfig())
		set, err := study.Dataset(context.Background(), "worldwide")
		if err != nil {
			panic(err)
		}
		studySet = set
	})
	return study, studySet
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// endpointMenu derives one concrete request per endpoint (plus paging,
// not-found, and bad-request variants) from whatever the warm set
// actually contains.
func endpointMenu(set *resultset.Set) []string {
	cc := set.Countries()[0]
	iss := url.QueryEscape(set.Issuers()[0])
	cat := url.QueryEscape(set.Categories()[0].String())
	host := url.QueryEscape(set.At(0).Hostname)
	return []string{
		"/v1/table2",
		"/v1/countries",
		"/v1/country?cc=" + cc,
		"/v1/country?cc=" + cc + "&offset=1&limit=2",
		"/v1/issuers",
		"/v1/issuer?cn=" + iss,
		"/v1/issuer?cn=" + iss + "&limit=3",
		"/v1/category?cat=" + cat,
		"/v1/category?cat=" + cat + "&offset=2&limit=4",
		"/v1/host?name=" + host,
		"/v1/export?limit=25",
		"/v1/export?offset=3&limit=5",
		"/v1/datasets",
		// Not-found and bad-request variants must also match bytes.
		"/v1/country?cc=ZZ-nowhere",
		"/v1/issuer?cn=No+Such+CA",
		"/v1/category?cat=no-such-category",
		"/v1/host?name=no-such-host.gov.example",
		"/v1/country",
		"/v1/country?cc=" + cc + "&offset=bogus",
	}
}

// TestDifferentialCacheOnOff is the determinism contract: every
// endpoint's status and body must be byte-identical with the response
// cache enabled (both the filling miss and the subsequent hit) and
// disabled.
func TestDifferentialCacheOnOff(t *testing.T) {
	s, set := serveStudy(t)
	cached := serve.New(s.Registry(), serve.Config{})
	uncached := serve.New(s.Registry(), serve.Config{CacheDisabled: true})

	for i, path := range endpointMenu(set) {
		miss := get(t, cached.Handler(), path)
		hit := get(t, cached.Handler(), path)
		plain := get(t, uncached.Handler(), path)

		// The first 13 menu entries are well-formed queries over data the
		// set provably contains; consistent-but-wrong 404s must not pass.
		if i < 13 && plain.Code != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, plain.Code)
			continue
		}
		if miss.Code != plain.Code || hit.Code != plain.Code {
			t.Errorf("%s: status cached=%d/%d uncached=%d", path, miss.Code, hit.Code, plain.Code)
			continue
		}
		if !bytes.Equal(miss.Body.Bytes(), plain.Body.Bytes()) {
			t.Errorf("%s: cache-miss body differs from uncached\nmiss: %s\nplain: %s",
				path, miss.Body.Bytes(), plain.Body.Bytes())
		}
		if !bytes.Equal(hit.Body.Bytes(), plain.Body.Bytes()) {
			t.Errorf("%s: cache-hit body differs from uncached", path)
		}
		if miss.Code == http.StatusOK && path != "/v1/datasets" && !isExport(path) {
			if got := hit.Header().Get("X-Cache"); got != "hit" {
				t.Errorf("%s: second request X-Cache = %q, want hit", path, got)
			}
		}
	}
}

func isExport(path string) bool { return len(path) >= 10 && path[:10] == "/v1/export" }

// TestExportMatchesCorpus checks the streamed JSONL window against the
// set's own zero-copy serialization.
func TestExportMatchesCorpus(t *testing.T) {
	s, set := serveStudy(t)
	srv := serve.New(s.Registry(), serve.Config{})

	rec := get(t, srv.Handler(), "/v1/export?offset=2&limit=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("export status %d", rec.Code)
	}
	var want []byte
	for i := 2; i < 5 && i < set.Len(); i++ {
		want = set.At(i).AppendRecord(want)
	}
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatal("export window differs from AppendRecord over the same rows")
	}
	if got := rec.Header().Get("X-Total-Count"); got != strconv.Itoa(set.Len()) {
		t.Fatalf("X-Total-Count = %s, want %d", got, set.Len())
	}
}

// TestSingleFlightStampede aims 64 goroutines at one uncached aggregate:
// exactly one fill may run; everyone must get the same bytes.
func TestSingleFlightStampede(t *testing.T) {
	s, _ := serveStudy(t)
	srv := serve.New(s.Registry(), serve.Config{})

	const n = 64
	bodies := make([][]byte, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := get(t, srv.Handler(), "/v1/table2")
			if rec.Code != http.StatusOK {
				t.Errorf("stampede request %d: status %d", i, rec.Code)
			}
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	close(start)
	wg.Wait()

	st := srv.CacheStats()
	if st.Fills != 1 {
		t.Fatalf("cold-cache stampede ran %d fills, want exactly 1 (stats %+v)", st.Fills, st)
	}
	if st.Hits+st.Waits != n-1 {
		t.Fatalf("hits(%d)+waits(%d) = %d, want %d", st.Hits, st.Waits, st.Hits+st.Waits, n-1)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("stampede response %d differs from response 0", i)
		}
	}
}

// blockWriter is a ResponseWriter whose first body write parks until
// released — it holds a concurrency slot open deterministically so the
// backpressure test can observe the fast-fail path.
type blockWriter struct {
	hdr     http.Header
	entered chan struct{}
	release chan struct{}
}

func (b *blockWriter) Header() http.Header { return b.hdr }
func (b *blockWriter) WriteHeader(int)     {}
func (b *blockWriter) Write(p []byte) (int, error) {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-b.release
	return len(p), nil
}

// TestBackpressureFastFail drives both endpoint classes past their
// budget and asserts the 503 + Retry-After contract.
func TestBackpressureFastFail(t *testing.T) {
	s, _ := serveStudy(t)
	srv := serve.New(s.Registry(), serve.Config{
		QueryConcurrency:  1,
		ExportConcurrency: 1,
	})

	for _, tc := range []struct {
		name, holdPath, probePath string
	}{
		{"query", "/v1/table2", "/v1/countries"},
		{"export", "/v1/export", "/v1/export?limit=1"},
	} {
		bw := &blockWriter{
			hdr:     make(http.Header),
			entered: make(chan struct{}, 1),
			release: make(chan struct{}),
		}
		done := make(chan struct{})
		go func() {
			srv.Handler().ServeHTTP(bw, httptest.NewRequest(http.MethodGet, tc.holdPath, nil))
			close(done)
		}()
		<-bw.entered // the holder owns the slot and is parked mid-write

		rec := get(t, srv.Handler(), tc.probePath)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s over capacity: status %d, want 503", tc.name, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s 503 carries no Retry-After", tc.name)
		}
		close(bw.release)
		<-done
	}
	q, e := srv.Rejected()
	if q != 1 || e != 1 {
		t.Fatalf("rejected counters = query %d, export %d; want 1, 1", q, e)
	}
}

// TestServeAgainstLiveApplyDelta hammers every endpoint while a writer
// loops MarkDirty+Get patch cycles on the same registry — the snapshot
// isolation race test (meaningful under -race, which CI runs).
func TestServeAgainstLiveApplyDelta(t *testing.T) {
	s := core.MustNewStudy(world.Config{Seed: 74, Scale: 0.01})
	ctx := context.Background()
	set, err := s.Dataset(ctx, "worldwide")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(s.Registry(), serve.Config{})
	menu := endpointMenu(set)[:13] // the always-200 endpoints

	dirty := []string{set.At(0).Hostname, set.At(1).Hostname, set.At(2).Hostname}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			s.Registry().MarkDirty("worldwide", dirty)
			if _, err := s.Registry().Get(ctx, "worldwide"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				path := menu[(g+i)%len(menu)]
				rec := get(t, srv.Handler(), path)
				if rec.Code != http.StatusOK {
					t.Errorf("%s during ApplyDelta churn: status %d", path, rec.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// The churn must leave no pinned generations behind.
	for _, info := range s.Registry().Generations() {
		if len(info.Pinned) != 0 {
			t.Fatalf("dataset %s still has pinned generations after churn: %+v", info.Name, info.Pinned)
		}
	}
}
