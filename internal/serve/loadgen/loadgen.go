// Package loadgen is the deterministic load generator behind the serve
// benchmarks: it drives an http.Handler in-process with a seeded request
// mix and reports throughput, latency percentiles, and an
// order-independent checksum of every response body.
//
// Determinism contract: one global request sequence is generated from
// the seed and dealt round-robin across the client goroutines, so the
// multiset of requests — and therefore the XOR-of-body-hashes checksum —
// is identical at any client count. The tests pin that: the same seed at
// 1, 2, and 8 clients must produce the same checksum against the same
// server snapshot. Time is read only through the injected simclock.Clock
// (virtual in tests, wall clock in benchmarks).
package loadgen

import (
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Config describes one load run.
type Config struct {
	// Handler is the server under test, driven in-process.
	Handler http.Handler
	// Clients is the number of concurrent request loops (default 1).
	Clients int
	// Requests is the total request count across all clients.
	Requests int
	// Seed picks the request sequence from Paths.
	Seed uint64
	// Paths is the request menu ("/v1/table2", "/v1/host?name=x", ...);
	// the seeded sequence draws from it uniformly.
	Paths []string
	// Clock measures latency and elapsed wall time (default Real).
	Clock simclock.Clock
}

// Result is one run's aggregate outcome.
type Result struct {
	Requests int
	// Errors counts non-2xx responses (backpressure 503s land here).
	Errors int
	// Bytes is the total response-body volume.
	Bytes int64
	// Checksum XORs an FNV-64a hash of every response body — identical
	// across client counts and arrival orders for the same request
	// multiset against the same snapshot.
	Checksum uint64
	// Elapsed is the whole run's duration on the injected clock; QPS is
	// Requests/Elapsed (0 when the clock did not advance).
	Elapsed time.Duration
	QPS     float64
	// P50/P99 are latency percentiles over all requests.
	P50, P99 time.Duration
}

// splitmix64 is the seeded generator for the request sequence — tiny,
// fast, and unrelated to the study's replayable RNG streams (this is
// load shaping, not simulation; a local generator keeps the package off
// math/rand per the globalrand lint).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// recorder is a reusable in-process ResponseWriter: it hashes and counts
// the body instead of retaining it, so a run's memory cost is flat no
// matter how much the server streams.
type recorder struct {
	hdr    http.Header
	status int
	n      int64
	sum    uint64
}

func (rc *recorder) Header() http.Header { return rc.hdr }

func (rc *recorder) WriteHeader(code int) { rc.status = code }

func (rc *recorder) Write(p []byte) (int, error) {
	if rc.status == 0 {
		rc.status = http.StatusOK
	}
	s := rc.sum
	for _, b := range p {
		s ^= uint64(b)
		s *= fnv64Prime
	}
	rc.sum = s
	rc.n += int64(len(p))
	return len(p), nil
}

func (rc *recorder) reset() {
	clear(rc.hdr)
	rc.status = 0
	rc.n = 0
	rc.sum = fnv64Offset
}

// Run executes one load run and blocks until every request completed.
func Run(cfg Config) Result {
	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Real{}
	}
	if cfg.Requests <= 0 || len(cfg.Paths) == 0 || cfg.Handler == nil {
		return Result{}
	}

	// The global sequence: request i is Paths[seq[i]], regardless of how
	// many clients deal it out.
	seq := make([]int, cfg.Requests)
	state := cfg.Seed
	for i := range seq {
		seq[i] = int(splitmix64(&state) % uint64(len(cfg.Paths)))
	}

	// Disjoint per-request result slots — no channels, no contention.
	lat := make([]int64, cfg.Requests)
	type clientStat struct {
		errors int
		bytes  int64
		sum    uint64
		_      [40]byte // pad out false sharing between adjacent clients
	}
	stats := make([]clientStat, clients)

	start := clock.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client parses its own request objects: the mux may
			// rewrite requests in flight, so nothing request-shaped is
			// shared across goroutines.
			reqs := make([]*http.Request, len(cfg.Paths))
			rc := &recorder{hdr: make(http.Header, 8)}
			st := &stats[c]
			for i := c; i < cfg.Requests; i += clients {
				p := seq[i]
				if reqs[p] == nil {
					u, err := url.ParseRequestURI(cfg.Paths[p])
					if err != nil {
						st.errors++
						continue
					}
					reqs[p] = &http.Request{
						Method:     http.MethodGet,
						URL:        u,
						Proto:      "HTTP/1.1",
						ProtoMajor: 1,
						ProtoMinor: 1,
						Host:       "govserve",
						RequestURI: cfg.Paths[p],
					}
				}
				rc.reset()
				t0 := clock.Now()
				cfg.Handler.ServeHTTP(rc, reqs[p])
				lat[i] = clock.Now().Sub(t0).Nanoseconds()
				if rc.status < 200 || rc.status > 299 {
					st.errors++
				}
				st.bytes += rc.n
				st.sum ^= rc.sum
			}
		}(c)
	}
	wg.Wait()
	elapsed := clock.Now().Sub(start)

	res := Result{Requests: cfg.Requests, Elapsed: elapsed}
	for i := range stats {
		res.Errors += stats[i].errors
		res.Bytes += stats[i].bytes
		res.Checksum ^= stats[i].sum
	}
	if elapsed > 0 {
		res.QPS = float64(cfg.Requests) / elapsed.Seconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50 = time.Duration(lat[(cfg.Requests-1)*50/100])
	res.P99 = time.Duration(lat[(cfg.Requests-1)*99/100])
	return res
}
