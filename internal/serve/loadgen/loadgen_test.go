package loadgen_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/simclock"
	"repro/internal/world"
)

var (
	srvOnce sync.Once
	srv     *serve.Server
	menu    []string
)

func testServer(t *testing.T) (*serve.Server, []string) {
	t.Helper()
	srvOnce.Do(func() {
		s := core.MustNewStudy(world.Config{Seed: 74, Scale: 0.01})
		set, err := s.Dataset(context.Background(), "worldwide")
		if err != nil {
			panic(err)
		}
		srv = serve.New(s.Registry(), serve.Config{})
		menu = []string{
			"/v1/table2",
			"/v1/countries",
			"/v1/country?cc=" + set.Countries()[0],
			"/v1/issuers",
			"/v1/host?name=" + set.At(0).Hostname,
			"/v1/export?limit=20",
		}
	})
	return srv, menu
}

// TestChecksumStableAcrossClients pins the determinism contract: the
// seeded request multiset — and therefore the order-independent response
// checksum — must not depend on how many clients deal it out.
func TestChecksumStableAcrossClients(t *testing.T) {
	srv, menu := testServer(t)
	clock := simclock.NewManual(time.Unix(0, 0))

	var base loadgen.Result
	for i, clients := range []int{1, 2, 8} {
		res := loadgen.Run(loadgen.Config{
			Handler:  srv.Handler(),
			Clients:  clients,
			Requests: 240,
			Seed:     7,
			Paths:    menu,
			Clock:    clock,
		})
		if res.Errors != 0 {
			t.Fatalf("clients=%d: %d non-2xx responses", clients, res.Errors)
		}
		if res.Requests != 240 {
			t.Fatalf("clients=%d: ran %d requests, want 240", clients, res.Requests)
		}
		if res.Checksum == 0 || res.Bytes == 0 {
			t.Fatalf("clients=%d: empty run (checksum %x, bytes %d)", clients, res.Checksum, res.Bytes)
		}
		if i == 0 {
			base = res
			continue
		}
		if res.Checksum != base.Checksum {
			t.Fatalf("clients=%d checksum %x differs from clients=1 checksum %x",
				clients, res.Checksum, base.Checksum)
		}
		if res.Bytes != base.Bytes {
			t.Fatalf("clients=%d bytes %d differ from clients=1 bytes %d", clients, res.Bytes, base.Bytes)
		}
	}
}

// TestSeedChangesMix sanity-checks that the sequence actually follows
// the seed (different seed, different request multiset).
func TestSeedChangesMix(t *testing.T) {
	srv, menu := testServer(t)
	clock := simclock.NewManual(time.Unix(0, 0))
	run := func(seed uint64) loadgen.Result {
		return loadgen.Run(loadgen.Config{
			Handler: srv.Handler(), Clients: 2, Requests: 120,
			Seed: seed, Paths: menu, Clock: clock,
		})
	}
	a, b := run(1), run(2)
	if a.Checksum == b.Checksum && a.Bytes == b.Bytes {
		t.Fatal("different seeds produced an identical run")
	}
	// Same seed replays exactly.
	if c := run(1); c.Checksum != a.Checksum || c.Bytes != a.Bytes {
		t.Fatal("same seed did not replay the same run")
	}
}
