package serve

// handlers.go — the endpoint handlers and their append-style body
// builders. Builders derive every byte from the pinned Set's ordered
// accessors (first-seen key order, sorted countries, ascending buckets),
// which is what makes responses byte-identical with the cache on or off
// and at any concurrency. The append* builders are part of govlint's
// declared hot set (hotalloc): no fmt, no unsized maps, no boxing.

import (
	"net/http"
	"strconv"

	"repro/internal/resultset"
	"repro/internal/scanner"
)

// --- shared JSON append helpers ---

// appendKey appends `"name":` (with a leading comma unless first).
func appendKey(dst []byte, name string, first bool) []byte {
	if !first {
		dst = append(dst, ',')
	}
	dst = append(dst, '"')
	dst = append(dst, name...)
	return append(dst, '"', ':')
}

// appendHead opens a response object with its dataset/generation stamp:
// `{"dataset":<name>,"generation":<gen>`.
func appendHead(dst []byte, name string, gen int) []byte {
	dst = append(dst, `{"dataset":`...)
	dst = scanner.AppendJSONString(dst, name)
	dst = append(dst, `,"generation":`...)
	return strconv.AppendInt(dst, int64(gen), 10)
}

// appendIntField appends `,"name":<v>`.
func appendIntField(dst []byte, name string, v int) []byte {
	dst = appendKey(dst, name, false)
	return strconv.AppendInt(dst, int64(v), 10)
}

// appendStrField appends `,"name":"<escaped v>"`.
func appendStrField(dst []byte, name, v string) []byte {
	dst = appendKey(dst, name, false)
	return scanner.AppendJSONString(dst, v)
}

// appendHostnames appends `,"hostnames":[...]` for a page of result
// indices.
func appendHostnames(dst []byte, set *resultset.Set, page []int) []byte {
	dst = append(dst, `,"hostnames":[`...)
	for i, idx := range page {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = scanner.AppendJSONString(dst, set.At(idx).Hostname)
	}
	return append(dst, ']')
}

// appendCells appends `,"<name>":[{"label":..,"total":..,"valid":..}]`.
func appendCells(dst []byte, name string, cells []resultset.Cell) []byte {
	dst = appendKey(dst, name, false)
	dst = append(dst, '[')
	for i := range cells {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"label":`...)
		dst = scanner.AppendJSONString(dst, cells[i].Label)
		dst = appendIntField(dst, "total", cells[i].Total)
		dst = appendIntField(dst, "valid", cells[i].Valid)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

// --- endpoint handlers ---

// handleTable2 serves GET /v1/table2: the paper's Table 2 — the
// availability/validity tallies plus per-category and per-exception
// counts, in the build's first-seen order.
func (s *Server) handleTable2(w http.ResponseWriter, r *http.Request) {
	s.query(w, r, "table2", "", func(set *resultset.Set, ds string, gen int, dst []byte) ([]byte, string) {
		c := set.Counts()
		dst = appendHead(dst, ds, gen)
		dst = append(dst, `,"counts":{"total":`...)
		dst = strconv.AppendInt(dst, int64(c.Total), 10)
		dst = appendIntField(dst, "unavailable", c.Unavailable)
		dst = appendIntField(dst, "http_only", c.HTTPOnly)
		dst = appendIntField(dst, "https", c.HTTPS)
		dst = appendIntField(dst, "valid", c.Valid)
		dst = appendIntField(dst, "invalid", c.Invalid)
		dst = appendIntField(dst, "exceptions", c.Exceptions)
		dst = appendIntField(dst, "both_schemes", c.BothSchemes)
		dst = appendIntField(dst, "hsts", c.HSTS)
		dst = append(dst, `},"categories":[`...)
		for i, cat := range set.Categories() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"label":`...)
			dst = scanner.AppendJSONString(dst, cat.String())
			dst = appendIntField(dst, "count", set.CategoryCount(cat))
			dst = append(dst, '}')
		}
		dst = append(dst, `],"exceptions":[`...)
		for i, exc := range set.Exceptions() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"label":`...)
			dst = scanner.AppendJSONString(dst, exc.String())
			dst = appendIntField(dst, "count", len(set.ByException(exc)))
			dst = append(dst, '}')
		}
		dst = append(dst, ']', '}', '\n')
		return dst, ""
	})
}

// handleCountries serves GET /v1/countries: every country's
// availability/https/validity tally, sorted by country code.
func (s *Server) handleCountries(w http.ResponseWriter, r *http.Request) {
	s.query(w, r, "countries", "", func(set *resultset.Set, ds string, gen int, dst []byte) ([]byte, string) {
		dst = appendHead(dst, ds, gen)
		dst = append(dst, `,"countries":[`...)
		for i, agg := range set.CountryAggs() {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"country":`...)
			dst = scanner.AppendJSONString(dst, agg.Country)
			dst = appendIntField(dst, "hosts", agg.Hosts)
			dst = appendIntField(dst, "available", agg.Available)
			dst = appendIntField(dst, "https", agg.HTTPS)
			dst = appendIntField(dst, "valid", agg.Valid)
			dst = append(dst, '}')
		}
		dst = append(dst, ']', '}', '\n')
		return dst, ""
	})
}

// handleCountry serves GET /v1/country?cc=XX: one country's tally plus a
// paged hostname listing.
func (s *Server) handleCountry(w http.ResponseWriter, r *http.Request) {
	cc := queryParam(r, "cc")
	if cc == "" {
		s.errorJSON(w, http.StatusBadRequest, "missing cc parameter")
		return
	}
	offset, limit, ok := s.page(w, r)
	if !ok {
		return
	}
	params := "cc=" + cc + "&o=" + strconv.Itoa(offset) + "&l=" + strconv.Itoa(limit)
	s.query(w, r, "country", params, func(set *resultset.Set, ds string, gen int, dst []byte) ([]byte, string) {
		bucket := set.ByCountry(cc)
		if len(bucket) == 0 {
			return nil, "unknown country: " + cc
		}
		var agg resultset.CountryAgg
		for _, a := range set.CountryAggs() {
			if a.Country == cc {
				agg = a
				break
			}
		}
		dst = appendHead(dst, ds, gen)
		dst = appendStrField(dst, "country", cc)
		dst = appendIntField(dst, "hosts", agg.Hosts)
		dst = appendIntField(dst, "available", agg.Available)
		dst = appendIntField(dst, "https", agg.HTTPS)
		dst = appendIntField(dst, "valid", agg.Valid)
		dst = appendIntField(dst, "offset", offset)
		dst = appendHostnames(dst, set, clampPage(bucket, offset, limit))
		dst = append(dst, '}', '\n')
		return dst, ""
	})
}

// handleIssuers serves GET /v1/issuers: per-issuing-CA validity cells in
// first-seen order, plus the analyzed denominator.
func (s *Server) handleIssuers(w http.ResponseWriter, r *http.Request) {
	s.query(w, r, "issuers", "", func(set *resultset.Set, ds string, gen int, dst []byte) ([]byte, string) {
		dst = appendHead(dst, ds, gen)
		dst = appendIntField(dst, "analyzed", set.IssuerAnalyzed())
		dst = appendCells(dst, "issuers", set.IssuerCells())
		dst = append(dst, '}', '\n')
		return dst, ""
	})
}

// handleIssuer serves GET /v1/issuer?cn=...: one CA's cell plus a paged
// hostname listing of the hosts it issued for.
func (s *Server) handleIssuer(w http.ResponseWriter, r *http.Request) {
	cn := queryParam(r, "cn")
	if cn == "" {
		s.errorJSON(w, http.StatusBadRequest, "missing cn parameter")
		return
	}
	offset, limit, ok := s.page(w, r)
	if !ok {
		return
	}
	params := "cn=" + cn + "&o=" + strconv.Itoa(offset) + "&l=" + strconv.Itoa(limit)
	s.query(w, r, "issuer", params, func(set *resultset.Set, ds string, gen int, dst []byte) ([]byte, string) {
		bucket := set.ByIssuer(cn)
		if len(bucket) == 0 {
			return nil, "unknown issuer: " + cn
		}
		valid := 0
		for _, idx := range bucket {
			if set.At(idx).Verify.Valid() {
				valid++
			}
		}
		dst = appendHead(dst, ds, gen)
		dst = appendStrField(dst, "issuer", cn)
		dst = appendIntField(dst, "hosts", len(bucket))
		dst = appendIntField(dst, "valid", valid)
		dst = appendIntField(dst, "offset", offset)
		dst = appendHostnames(dst, set, clampPage(bucket, offset, limit))
		dst = append(dst, '}', '\n')
		return dst, ""
	})
}

// handleCategory serves GET /v1/category?cat=...: one Table-2 category's
// count plus a paged hostname listing. Categories are matched by their
// exact label.
func (s *Server) handleCategory(w http.ResponseWriter, r *http.Request) {
	label := queryParam(r, "cat")
	if label == "" {
		s.errorJSON(w, http.StatusBadRequest, "missing cat parameter")
		return
	}
	offset, limit, ok := s.page(w, r)
	if !ok {
		return
	}
	params := "cat=" + label + "&o=" + strconv.Itoa(offset) + "&l=" + strconv.Itoa(limit)
	s.query(w, r, "category", params, func(set *resultset.Set, ds string, gen int, dst []byte) ([]byte, string) {
		var bucket []int
		found := false
		for _, cat := range set.Categories() {
			if cat.String() == label {
				bucket, found = set.ByCategory(cat), true
				break
			}
		}
		if !found {
			return nil, "unknown category: " + label
		}
		dst = appendHead(dst, ds, gen)
		dst = appendStrField(dst, "category", label)
		dst = appendIntField(dst, "count", len(bucket))
		dst = appendIntField(dst, "offset", offset)
		dst = appendHostnames(dst, set, clampPage(bucket, offset, limit))
		dst = append(dst, '}', '\n')
		return dst, ""
	})
}

// handleHost serves GET /v1/host?name=...: the single host's full scan
// record via the zero-copy serializer.
func (s *Server) handleHost(w http.ResponseWriter, r *http.Request) {
	name := queryParam(r, "name")
	if name == "" {
		s.errorJSON(w, http.StatusBadRequest, "missing name parameter")
		return
	}
	s.query(w, r, "host", "name="+name, func(set *resultset.Set, ds string, gen int, dst []byte) ([]byte, string) {
		res, ok := set.Lookup(name)
		if !ok {
			return nil, "unknown host: " + name
		}
		dst = appendHead(dst, ds, gen)
		dst = append(dst, `,"record":`...)
		dst = res.AppendRecord(dst)
		// AppendRecord closes with the JSONL newline; fold it into the
		// enclosing object.
		if dst[len(dst)-1] == '\n' {
			dst = dst[:len(dst)-1]
		}
		dst = append(dst, '}', '\n')
		return dst, ""
	})
}

// handleExport serves GET /v1/export: a paginated streaming JSONL export
// of the pinned generation through the zero-copy AppendRecord path and a
// pooled 64 KiB staging buffer. Uncached by design — the cost is the
// stream itself, not the aggregation.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if !tryAcquire(s.exportSem) {
		s.reject(w, &s.rejectedExport)
		return
	}
	defer func() { <-s.exportSem }()

	offset, limit, okPage := s.pageRaw(w, r)
	if !okPage {
		return
	}
	name := queryParam(r, "dataset")
	if name == "" {
		name = s.cfg.DefaultDataset
	}
	pin, err := s.reg.Pin(r.Context(), name)
	if err != nil {
		s.errorJSON(w, http.StatusNotFound, err.Error())
		return
	}
	defer pin.Release()
	set := pin.Set()

	n := set.Len()
	if offset > n {
		offset = n
	}
	end := n
	if limit > 0 && offset+limit < n {
		end = offset + limit
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Dataset", name)
	h.Set("X-Generation", strconv.Itoa(pin.Generation()))
	h.Set("X-Total-Count", strconv.Itoa(n))

	buf := s.exportPool.Get().(*[]byte)
	b := (*buf)[:0]
	for i := offset; i < end; i++ {
		b = set.At(i).AppendRecord(b)
		if len(b) >= exportFlushSize {
			if _, err := w.Write(b); err != nil {
				*buf = b[:0]
				s.exportPool.Put(buf)
				return
			}
			b = b[:0]
		}
	}
	if len(b) > 0 {
		w.Write(b)
	}
	*buf = b[:0]
	s.exportPool.Put(buf)
}

// pageRaw parses offset/limit without applying the page cap — the export
// endpoint's window is bounded by the corpus, not the listing page size
// (limit 0 means "to the end").
func (s *Server) pageRaw(w http.ResponseWriter, r *http.Request) (offset, limit int, ok bool) {
	if v := queryParam(r, "offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.errorJSON(w, http.StatusBadRequest, "invalid offset")
			return 0, 0, false
		}
		offset = n
	}
	if v := queryParam(r, "limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.errorJSON(w, http.StatusBadRequest, "invalid limit")
			return 0, 0, false
		}
		limit = n
	}
	return offset, limit, true
}

// handleDatasets serves GET /v1/datasets: registry introspection — every
// registered dataset's current generation, cache state, dirty-host
// backlog, and pinned generations. Uncached (pin state is transient).
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if !tryAcquire(s.querySem) {
		s.reject(w, &s.rejectedQuery)
		return
	}
	defer func() { <-s.querySem }()

	body := []byte(`{"datasets":[`)
	for i, info := range s.reg.Generations() {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, `{"name":`...)
		body = scanner.AppendJSONString(body, info.Name)
		body = appendIntField(body, "generation", info.Current)
		body = append(body, `,"cached":`...)
		body = strconv.AppendBool(body, info.Cached)
		body = appendIntField(body, "dirty", info.Dirty)
		body = append(body, `,"pinned":[`...)
		for j, p := range info.Pinned {
			if j > 0 {
				body = append(body, ',')
			}
			body = append(body, `{"generation":`...)
			body = strconv.AppendInt(body, int64(p.Generation), 10)
			body = appendIntField(body, "readers", p.Readers)
			body = append(body, '}')
		}
		body = append(body, ']', '}')
	}
	body = append(body, ']', '}', '\n')
	writeBody(w, body, "")
}

// handleStats serves GET /v1/stats: response-cache counters and
// backpressure rejections. Uncached and generation-free.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.CacheStats()
	body := []byte(`{"cache":{"hits":`)
	body = strconv.AppendInt(body, st.Hits, 10)
	body = append(body, `,"misses":`...)
	body = strconv.AppendInt(body, st.Misses, 10)
	body = append(body, `,"fills":`...)
	body = strconv.AppendInt(body, st.Fills, 10)
	body = append(body, `,"waits":`...)
	body = strconv.AppendInt(body, st.Waits, 10)
	body = append(body, `,"evictions":`...)
	body = strconv.AppendInt(body, st.Evictions, 10)
	body = appendIntField(body, "entries", st.Entries)
	body = appendIntField(body, "bytes", st.Bytes)
	body = append(body, `},"rejected":{"query":`...)
	body = strconv.AppendInt(body, s.rejectedQuery.Load(), 10)
	body = append(body, `,"export":`...)
	body = strconv.AppendInt(body, s.rejectedExport.Load(), 10)
	body = append(body, '}', '}', '\n')
	writeBody(w, body, "")
}
