package serve

import (
	"bytes"
	"strconv"
	"sync"
	"testing"
)

// TestCacheLRUEviction fills one shard past its byte budget and checks
// the least-recently-used entries fall out while the recently-touched
// survivor stays resident.
func TestCacheLRUEviction(t *testing.T) {
	// One shard, room for roughly four 100-byte bodies.
	c := newCache(CacheConfig{Shards: 1, MaxBytes: 450})
	body := bytes.Repeat([]byte("x"), 95)
	fillCount := 0
	fill := func() ([]byte, error) { fillCount++; return body, nil }

	for i := 0; i < 8; i++ {
		if _, _, err := c.getOrFill("k"+strconv.Itoa(i), fill); err != nil {
			t.Fatal(err)
		}
		// Keep k0 hot so eviction prefers the colder middle keys.
		c.getOrFill("k0", fill)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite exceeding the byte budget: %+v", st)
	}
	if st.Bytes > 450 {
		t.Fatalf("resident bytes %d exceed the budget", st.Bytes)
	}

	before := fillCount
	c.getOrFill("k0", fill)
	if fillCount != before {
		t.Fatal("recently-used k0 was evicted")
	}
	c.getOrFill("k1", fill)
	if fillCount != before+1 {
		t.Fatal("cold k1 should have been evicted and refilled")
	}
}

// TestCacheSingleFlight parks 8 goroutines on one cold key: the fill
// must run once, with everyone sharing its bytes.
func TestCacheSingleFlight(t *testing.T) {
	c := newCache(CacheConfig{})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	fill := func() ([]byte, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return []byte("shared"), nil
	}

	const n = 8
	got := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _, err := c.getOrFill("hot", fill)
			if err != nil {
				t.Error(err)
			}
			got[i] = b
		}(i)
	}
	<-entered // the winner is inside the fill; the rest must park, not fill
	close(release)
	wg.Wait()

	st := c.Stats()
	if st.Fills != 1 {
		t.Fatalf("fills = %d, want 1 (%+v)", st.Fills, st)
	}
	for i := range got {
		if string(got[i]) != "shared" {
			t.Fatalf("goroutine %d got %q", i, got[i])
		}
	}
}

// TestCacheGenerationKeying is the invalidation model: a new generation
// is a new key, so it misses; the old generation's entry stays readable
// until the LRU ages it out — no global flush.
func TestCacheGenerationKeying(t *testing.T) {
	c := newCache(CacheConfig{})
	old := func() ([]byte, error) { return []byte("gen1"), nil }
	fresh := func() ([]byte, error) { return []byte("gen2"), nil }

	c.getOrFill("table2|worldwide|g1|", old)
	b, hit, _ := c.getOrFill("table2|worldwide|g2|", fresh)
	if hit || string(b) != "gen2" {
		t.Fatalf("new generation key served hit=%v body=%q", hit, b)
	}
	b, hit, _ = c.getOrFill("table2|worldwide|g1|", old)
	if !hit || string(b) != "gen1" {
		t.Fatalf("old generation entry gone: hit=%v body=%q", hit, b)
	}
}
