// Package serve is the query API over dataset.Registry: the Table-2
// aggregates, per-country / per-issuer / per-category breakdowns,
// single-host lookup, and a paginated streaming JSONL export riding the
// scanner's zero-copy record path.
//
// The performance core is three mechanisms. Snapshot isolation: every
// request pins the dataset generation it resolves (Registry.Pin), so
// MarkDirty/ApplyDelta/UseStore swap new generations in atomically
// underneath long-running exports and an old generation is forgotten the
// moment its last reader releases. A sharded read-through response
// cache: serialized bodies keyed by normalized query with the pinned
// generation embedded in the key, so invalidation is free — a patched
// dataset simply misses under its new generation and the superseded
// entries age out of the per-shard LRUs. Backpressure: each endpoint
// class holds a bounded concurrency budget and fast-fails 503 with a
// Retry-After hint instead of queueing toward collapse, and exports
// stream through pooled 64 KiB buffers.
//
// Determinism contract: response bodies are built only from the Set's
// ordered accessors, so for a given (endpoint, dataset generation,
// parameters) the bytes are identical with the cache on or off and at
// any server concurrency. The differential and stampede tests in
// serve_test.go hold the package to that.
package serve

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/resultset"
	"repro/internal/scanner"
)

// Config tunes a Server. The zero value serves with the defaults below.
type Config struct {
	// DefaultDataset is used when a request has no dataset parameter
	// (default "worldwide").
	DefaultDataset string
	// Cache sizes the response cache; CacheDisabled turns it off
	// entirely (every request runs the aggregation — the differential
	// baseline and the uncached benchmark mix).
	Cache         CacheConfig
	CacheDisabled bool
	// QueryConcurrency bounds in-flight aggregate/lookup requests
	// (default 256); ExportConcurrency bounds in-flight streaming
	// exports (default 32). Excess requests fail fast with 503.
	QueryConcurrency  int
	ExportConcurrency int
	// RetryAfter is the hint attached to 503 responses (default 1s).
	RetryAfter time.Duration
	// PageLimit caps (and defaults) the per-page host-listing size
	// (default 100).
	PageLimit int
}

const (
	defaultDataset     = "worldwide"
	defaultQueryConc   = 256
	defaultExportConc  = 32
	defaultPageLimit   = 100
	defaultRetryAfter  = time.Second
	exportFlushSize    = 64 << 10
	exportBufSlack     = 4096
	bodyBufSize        = 4 << 10
)

// Server is the HTTP query API. Create with New; the zero value is not
// usable.
type Server struct {
	reg   *dataset.Registry
	cfg   Config
	cache *cache // nil when disabled
	mux   *http.ServeMux

	querySem  chan struct{}
	exportSem chan struct{}
	// retryAfter is the preformatted Retry-After value in whole seconds
	// (503s are the hot path of an overload; no formatting there).
	retryAfter string

	rejectedQuery  atomic.Int64
	rejectedExport atomic.Int64

	bodyPool   sync.Pool // *[]byte, small aggregate bodies (uncached path)
	exportPool sync.Pool // *[]byte, 64 KiB streaming staging buffers
}

// New builds a Server over reg. The registry may keep mutating
// underneath (MarkDirty/ApplyDelta/InvalidateAll); requests always
// observe one consistent pinned generation.
func New(reg *dataset.Registry, cfg Config) *Server {
	if cfg.DefaultDataset == "" {
		cfg.DefaultDataset = defaultDataset
	}
	if cfg.QueryConcurrency <= 0 {
		cfg.QueryConcurrency = defaultQueryConc
	}
	if cfg.ExportConcurrency <= 0 {
		cfg.ExportConcurrency = defaultExportConc
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.PageLimit <= 0 {
		cfg.PageLimit = defaultPageLimit
	}
	secs := int64(cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	s := &Server{
		reg:        reg,
		cfg:        cfg,
		mux:        http.NewServeMux(),
		querySem:   make(chan struct{}, cfg.QueryConcurrency),
		exportSem:  make(chan struct{}, cfg.ExportConcurrency),
		retryAfter: strconv.FormatInt(secs, 10),
	}
	if !cfg.CacheDisabled {
		s.cache = newCache(cfg.Cache)
	}
	s.bodyPool.New = func() any { b := make([]byte, 0, bodyBufSize); return &b }
	s.exportPool.New = func() any { b := make([]byte, 0, exportFlushSize+exportBufSlack); return &b }

	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /v1/table2", s.handleTable2)
	s.mux.HandleFunc("GET /v1/countries", s.handleCountries)
	s.mux.HandleFunc("GET /v1/country", s.handleCountry)
	s.mux.HandleFunc("GET /v1/issuers", s.handleIssuers)
	s.mux.HandleFunc("GET /v1/issuer", s.handleIssuer)
	s.mux.HandleFunc("GET /v1/category", s.handleCategory)
	s.mux.HandleFunc("GET /v1/host", s.handleHost)
	s.mux.HandleFunc("GET /v1/export", s.handleExport)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats snapshots the response-cache counters (zero value when the
// cache is disabled).
func (s *Server) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.Stats()
}

// Rejected reports how many requests the backpressure gates fast-failed.
func (s *Server) Rejected() (query, export int64) {
	return s.rejectedQuery.Load(), s.rejectedExport.Load()
}

// queryParam returns the first value of key in the request's raw query
// without materializing url.Values — r.URL.Query() allocates a map per
// call, which is most of a cache hit's allocation budget. Unescaping
// only allocates when the value actually carries escapes.
func queryParam(r *http.Request, key string) string {
	q := r.URL.RawQuery
	for len(q) > 0 {
		var pair string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			pair, q = q, ""
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		if pair[:eq] != key {
			continue
		}
		raw := pair[eq+1:]
		if strings.IndexByte(raw, '%') < 0 && strings.IndexByte(raw, '+') < 0 {
			return raw
		}
		v, err := url.QueryUnescape(raw)
		if err != nil {
			return ""
		}
		return v
	}
	return ""
}

// tryAcquire takes a semaphore slot without blocking.
func tryAcquire(sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// --- response plumbing ---

// notFoundError is a fill result that must not be cached: it renders as
// a 404 whose body names the missing thing.
type notFoundError string

func (e notFoundError) Error() string { return string(e) }

func (s *Server) reject(w http.ResponseWriter, counter *atomic.Int64) {
	counter.Add(1)
	w.Header().Set("Retry-After", s.retryAfter)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte(`{"error":"over capacity"}` + "\n"))
}

func (s *Server) errorJSON(w http.ResponseWriter, status int, msg string) {
	// The scanner's escaper keeps arbitrary error text valid JSON.
	body := scanner.AppendJSONString([]byte(`{"error":`), msg)
	body = append(body, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// writeBody sends a finished 200 JSON body. cacheState is the X-Cache
// header value ("" omits the header — the cache-disabled configuration —
// so differential tests compare bodies, not cache metadata).
func writeBody(w http.ResponseWriter, body []byte, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	if cacheState != "" {
		h.Set("X-Cache", cacheState)
	}
	w.Write(body)
}

// buildFn renders one endpoint's body for a pinned generation. It must
// derive every byte from the Set's deterministic accessors (plus the
// generation number and its own parameters). A non-empty notFound return
// makes the response an uncached 404.
type buildFn func(set *resultset.Set, ds string, gen int, dst []byte) (body []byte, notFound string)

// query is the shared handler spine for every cached aggregate/lookup
// endpoint: backpressure gate, generation pin, cache lookup keyed on
// endpoint|dataset|generation|params, fill on miss.
func (s *Server) query(w http.ResponseWriter, r *http.Request, endpoint, params string, build buildFn) {
	if !tryAcquire(s.querySem) {
		s.reject(w, &s.rejectedQuery)
		return
	}
	defer func() { <-s.querySem }()

	name := queryParam(r, "dataset")
	if name == "" {
		name = s.cfg.DefaultDataset
	}
	pin, err := s.reg.Pin(r.Context(), name)
	if err != nil {
		s.errorJSON(w, http.StatusNotFound, err.Error())
		return
	}
	defer pin.Release()
	set, gen := pin.Set(), pin.Generation()

	if s.cache == nil {
		buf := s.bodyPool.Get().(*[]byte)
		body, notFound := build(set, name, gen, (*buf)[:0])
		if notFound != "" {
			s.errorJSON(w, http.StatusNotFound, notFound)
		} else {
			writeBody(w, body, "")
		}
		*buf = body[:0]
		s.bodyPool.Put(buf)
		return
	}

	key := endpoint + "|" + name + "|g" + strconv.Itoa(gen) + "|" + params
	body, hit, err := s.cache.getOrFill(key, func() ([]byte, error) {
		// The cache retains the filled body, so it is built into a
		// fresh slice, never a pooled one.
		b, notFound := build(set, name, gen, nil)
		if notFound != "" {
			return nil, notFoundError(notFound)
		}
		return b, nil
	})
	if err != nil {
		s.errorJSON(w, http.StatusNotFound, err.Error())
		return
	}
	state := "miss"
	if hit {
		state = "hit"
	}
	writeBody(w, body, state)
}

// page parses offset/limit query parameters, clamping limit to the
// configured page cap. ok is false on malformed input (already reported).
func (s *Server) page(w http.ResponseWriter, r *http.Request) (offset, limit int, ok bool) {
	limit = s.cfg.PageLimit
	if v := queryParam(r, "offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.errorJSON(w, http.StatusBadRequest, "invalid offset")
			return 0, 0, false
		}
		offset = n
	}
	if v := queryParam(r, "limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.errorJSON(w, http.StatusBadRequest, "invalid limit")
			return 0, 0, false
		}
		if n > 0 && n < limit {
			limit = n
		}
	}
	return offset, limit, true
}

// clampPage slices bucket to the requested window.
func clampPage(bucket []int, offset, limit int) []int {
	if offset > len(bucket) {
		offset = len(bucket)
	}
	end := len(bucket)
	if offset+limit < end {
		end = offset + limit
	}
	return bucket[offset:end]
}
