package dnssim

import (
	"errors"
	"net/netip"
	"testing"
)

func ip(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestLookupA(t *testing.T) {
	z := NewZone()
	z.AddA("www.agency.gov", ip("192.0.2.10"))
	z.AddA("www.agency.gov", ip("192.0.2.11"))
	addrs, err := z.LookupA("www.agency.gov")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != ip("192.0.2.10") {
		t.Fatalf("addrs = %v; first address must be stable", addrs)
	}
}

func TestLookupACaseInsensitive(t *testing.T) {
	z := NewZone()
	z.AddA("WWW.Agency.GOV", ip("192.0.2.10"))
	if _, err := z.LookupA("www.agency.gov"); err != nil {
		t.Fatal(err)
	}
}

func TestNXDomain(t *testing.T) {
	z := NewZone()
	_, err := z.LookupA("missing.gov")
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want NXDOMAIN", err)
	}
}

func TestServFail(t *testing.T) {
	z := NewZone()
	z.AddA("flaky.gov", ip("192.0.2.1"))
	z.SetServFail("flaky.gov", true)
	if _, err := z.LookupA("flaky.gov"); !errors.Is(err, ErrServFail) {
		t.Fatalf("err = %v, want SERVFAIL", err)
	}
	z.SetServFail("flaky.gov", false)
	if _, err := z.LookupA("flaky.gov"); err != nil {
		t.Fatalf("recovered lookup failed: %v", err)
	}
}

func TestRemove(t *testing.T) {
	z := NewZone()
	z.AddA("gone.gov", ip("192.0.2.1"))
	z.Remove("gone.gov")
	if _, err := z.LookupA("gone.gov"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v after removal", err)
	}
}

func TestCAAWalksUpTree(t *testing.T) {
	z := NewZone()
	z.AddCAA("agency.gov", CAARecord{Tag: "issue", Value: "letsencrypt.org"})
	got := z.LookupCAA("deep.sub.agency.gov")
	if len(got) != 1 || got[0].Value != "letsencrypt.org" {
		t.Fatalf("LookupCAA = %v", got)
	}
	if z.LookupCAA("other.gov") != nil {
		t.Fatal("unrelated domain returned CAA records")
	}
}

func TestCAAClosestAncestorWins(t *testing.T) {
	z := NewZone()
	z.AddCAA("agency.gov", CAARecord{Tag: "issue", Value: "letsencrypt.org"})
	z.AddCAA("sub.agency.gov", CAARecord{Tag: "issue", Value: "digicert.com"})
	got := z.LookupCAA("www.sub.agency.gov")
	if len(got) != 1 || got[0].Value != "digicert.com" {
		t.Fatalf("closest ancestor not preferred: %v", got)
	}
}

func TestAllowsIssuance(t *testing.T) {
	z := NewZone()
	if !z.AllowsIssuance("free.gov", "anyca.example") {
		t.Fatal("absent CAA must permit issuance")
	}
	z.AddCAA("locked.gov", CAARecord{Tag: "issue", Value: "letsencrypt.org"})
	if !z.AllowsIssuance("www.locked.gov", "letsencrypt.org") {
		t.Fatal("authorized CA denied")
	}
	if z.AllowsIssuance("www.locked.gov", "digicert.com") {
		t.Fatal("unauthorized CA permitted")
	}
}

func TestCAACount(t *testing.T) {
	z := NewZone()
	z.AddA("a.gov", ip("192.0.2.1"))
	z.AddCAA("a.gov", CAARecord{Tag: "issue", Value: "letsencrypt.org"})
	z.AddCAA("b.gov", CAARecord{Tag: "issue", Value: "digicert.com"})
	z.AddCAA("bad.gov", CAARecord{Tag: "bogus", Value: "x"})
	with, valid := z.CAACount()
	if with != 3 || valid != 2 {
		t.Fatalf("CAACount = %d,%d; want 3,2", with, valid)
	}
}

func TestCAARecordValid(t *testing.T) {
	cases := []struct {
		r    CAARecord
		want bool
	}{
		{CAARecord{Tag: "issue", Value: "letsencrypt.org"}, true},
		{CAARecord{Tag: "issuewild", Value: "digicert.com"}, true},
		{CAARecord{Tag: "issue", Value: ""}, false},
		{CAARecord{Tag: "iodef", Value: "mailto:x@y"}, false},
	}
	for _, tc := range cases {
		if got := tc.r.Valid(); got != tc.want {
			t.Errorf("Valid(%+v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestHostnamesSorted(t *testing.T) {
	z := NewZone()
	z.AddA("b.gov", ip("192.0.2.2"))
	z.AddA("a.gov", ip("192.0.2.1"))
	z.AddCAA("caa-only.gov", CAARecord{Tag: "issue", Value: "x.org"})
	got := z.Hostnames()
	if len(got) != 2 || got[0] != "a.gov" || got[1] != "b.gov" {
		t.Fatalf("Hostnames = %v", got)
	}
}
