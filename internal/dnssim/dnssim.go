// Package dnssim is the study's DNS layer: A records resolving hostnames to
// simulated IPs, CAA records restricting certificate issuance (§5.3.4), and
// the resolution failures (NXDOMAIN) that make a hostname "unavailable" in
// the scan.
package dnssim

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
)

// Resolution errors.
var (
	// ErrNXDomain means the hostname does not resolve.
	ErrNXDomain = errors.New("dnssim: NXDOMAIN")
	// ErrServFail models a broken authoritative server.
	ErrServFail = errors.New("dnssim: SERVFAIL")
)

// CAARecord is a DNS Certification Authority Authorization record
// (RFC 6844): it names a CA allowed to issue for the domain.
type CAARecord struct {
	// Tag is "issue" or "issuewild".
	Tag string
	// Value is the authorized CA domain, e.g. "letsencrypt.org".
	Value string
}

// Valid reports whether the record is well-formed.
func (r CAARecord) Valid() bool {
	return (r.Tag == "issue" || r.Tag == "issuewild") && r.Value != ""
}

// record is stored by value in the zone map: one fewer heap object per
// hostname, which matters when whole-world builds register every host.
// The first A record lives inline for the same reason — almost every
// hostname has exactly one address, so the slice stays nil.
type record struct {
	addr0    netip.Addr
	addrs    []netip.Addr // second and later A records, rarely populated
	caa      []CAARecord
	servfail bool
}

// Zone is the authoritative database for the simulated Internet.
type Zone struct {
	mu      sync.RWMutex
	records map[string]record
}

// NewZone creates an empty zone.
func NewZone() *Zone {
	return NewZoneSized(0)
}

// NewZoneSized is NewZone with a capacity hint for the record table, for
// callers that register whole host populations at once.
func NewZoneSized(hint int) *Zone {
	return &Zone{records: make(map[string]record, hint)}
}

// AddA installs an A record for the hostname.
func (z *Zone) AddA(hostname string, addr netip.Addr) {
	z.mu.Lock()
	defer z.mu.Unlock()
	key := strings.ToLower(hostname)
	rec := z.records[key]
	if !rec.addr0.IsValid() {
		rec.addr0 = addr
	} else {
		rec.addrs = append(rec.addrs, addr)
	}
	z.records[key] = rec
}

// AddCAA installs a CAA record on the domain.
func (z *Zone) AddCAA(domain string, r CAARecord) {
	z.mu.Lock()
	defer z.mu.Unlock()
	key := strings.ToLower(domain)
	rec := z.records[key]
	rec.caa = append(rec.caa, r)
	z.records[key] = rec
}

// SetServFail makes lookups for the hostname fail with ErrServFail.
func (z *Zone) SetServFail(hostname string, broken bool) {
	z.mu.Lock()
	defer z.mu.Unlock()
	key := strings.ToLower(hostname)
	rec := z.records[key]
	rec.servfail = broken
	z.records[key] = rec
}

// Remove deletes a hostname entirely (it becomes NXDOMAIN). Used by the
// follow-up scan where 1,572 previously invalid sites disappeared (§7.2.2).
func (z *Zone) Remove(hostname string) {
	z.mu.Lock()
	defer z.mu.Unlock()
	delete(z.records, strings.ToLower(hostname))
}

// LookupA resolves the hostname to its A records. The paper's pipeline uses
// the first returned address (§5.4); records are returned in insertion
// order.
func (z *Zone) LookupA(hostname string) ([]netip.Addr, error) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	rec, ok := z.records[strings.ToLower(hostname)]
	if !ok {
		return nil, fmt.Errorf("lookup %s: %w", hostname, ErrNXDomain)
	}
	if rec.servfail {
		return nil, fmt.Errorf("lookup %s: %w", hostname, ErrServFail)
	}
	if !rec.addr0.IsValid() {
		return nil, fmt.Errorf("lookup %s: %w", hostname, ErrNXDomain)
	}
	out := make([]netip.Addr, 0, 1+len(rec.addrs))
	out = append(out, rec.addr0)
	out = append(out, rec.addrs...)
	return out, nil
}

// LookupFirstA resolves the hostname to its first A record — the address
// the pipeline dials (§5.4) — without allocating the full record set.
func (z *Zone) LookupFirstA(hostname string) (netip.Addr, error) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	rec, ok := z.records[strings.ToLower(hostname)]
	if !ok {
		return netip.Addr{}, fmt.Errorf("lookup %s: %w", hostname, ErrNXDomain)
	}
	if rec.servfail {
		return netip.Addr{}, fmt.Errorf("lookup %s: %w", hostname, ErrServFail)
	}
	if !rec.addr0.IsValid() {
		return netip.Addr{}, fmt.Errorf("lookup %s: %w", hostname, ErrNXDomain)
	}
	return rec.addr0, nil
}

// LookupCAA walks up the DNS tree from hostname (RFC 6844 §4) and returns
// the CAA record set of the closest ancestor that has one.
func (z *Zone) LookupCAA(hostname string) []CAARecord {
	z.mu.RLock()
	defer z.mu.RUnlock()
	labels := strings.Split(strings.ToLower(hostname), ".")
	for i := 0; i < len(labels)-1; i++ {
		domain := strings.Join(labels[i:], ".")
		if rec, ok := z.records[domain]; ok && len(rec.caa) > 0 {
			out := make([]CAARecord, len(rec.caa))
			copy(out, rec.caa)
			return out
		}
	}
	return nil
}

// AllowsIssuance reports whether the CAA policy for hostname permits the
// given CA domain to issue. Absent CAA records permit every CA.
func (z *Zone) AllowsIssuance(hostname, caDomain string) bool {
	records := z.LookupCAA(hostname)
	if len(records) == 0 {
		return true
	}
	for _, r := range records {
		if r.Tag == "issue" && strings.EqualFold(r.Value, caDomain) {
			return true
		}
	}
	return false
}

// Hostnames returns every hostname with at least one A record, sorted.
func (z *Zone) Hostnames() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]string, 0, len(z.records))
	for h, rec := range z.records {
		if rec.addr0.IsValid() {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// CAACount returns how many domains carry at least one CAA record and how
// many of those record sets are entirely well-formed — the §5.3.4
// measurement (1,851 domains, 100% valid).
func (z *Zone) CAACount() (withCAA, allValid int) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	for _, rec := range z.records {
		if len(rec.caa) == 0 {
			continue
		}
		withCAA++
		valid := true
		for _, r := range rec.caa {
			if !r.Valid() {
				valid = false
				break
			}
		}
		if valid {
			allValid++
		}
	}
	return withCAA, allValid
}
