package resultset_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/hosting"
	"repro/internal/resultset"
	"repro/internal/scanner"
)

// shardResults slices rs into the same contiguous partition
// scanner.Partition would produce for the matching host list.
func shardResults(rs []scanner.Result, shards int) [][]scanner.Result {
	n := len(rs)
	if shards > n {
		shards = n
	}
	parts := make([][]scanner.Result, shards)
	for k := 0; k < shards; k++ {
		parts[k] = rs[k*n/shards : (k+1)*n/shards]
	}
	return parts
}

// assertSetsEqual compares every accessor of two Sets.
func assertSetsEqual(t *testing.T, got, want *resultset.Set) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i).Hostname != want.At(i).Hostname {
			t.Fatalf("result %d reordered: %q vs %q", i, got.At(i).Hostname, want.At(i).Hostname)
		}
	}
	if !reflect.DeepEqual(got.Counts(), want.Counts()) {
		t.Errorf("Counts diverge: %+v vs %+v", got.Counts(), want.Counts())
	}
	if !reflect.DeepEqual(got.Categories(), want.Categories()) {
		t.Errorf("category order diverges: %v vs %v", got.Categories(), want.Categories())
	}
	for _, cat := range want.Categories() {
		if !reflect.DeepEqual(got.ByCategory(cat), want.ByCategory(cat)) {
			t.Errorf("ByCategory(%v) diverges", cat)
		}
	}
	if !reflect.DeepEqual(got.Exceptions(), want.Exceptions()) {
		t.Errorf("exception order diverges")
	}
	for _, e := range want.Exceptions() {
		if !reflect.DeepEqual(got.ByException(e), want.ByException(e)) {
			t.Errorf("ByException(%v) diverges", e)
		}
	}
	if !reflect.DeepEqual(got.Countries(), want.Countries()) {
		t.Errorf("country order diverges")
	}
	for _, cc := range want.Countries() {
		if !reflect.DeepEqual(got.ByCountry(cc), want.ByCountry(cc)) {
			t.Errorf("ByCountry(%q) diverges", cc)
		}
	}
	if !reflect.DeepEqual(got.CountryAggs(), want.CountryAggs()) {
		t.Errorf("country aggregates diverge")
	}
	if !reflect.DeepEqual(got.Issuers(), want.Issuers()) {
		t.Errorf("issuer order diverges")
	}
	for _, cn := range want.Issuers() {
		if !reflect.DeepEqual(got.ByIssuer(cn), want.ByIssuer(cn)) {
			t.Errorf("ByIssuer(%q) diverges", cn)
		}
	}
	if got.IssuerAnalyzed() != want.IssuerAnalyzed() {
		t.Errorf("IssuerAnalyzed = %d, want %d", got.IssuerAnalyzed(), want.IssuerAnalyzed())
	}
	if !reflect.DeepEqual(got.Fingerprints(), want.Fingerprints()) {
		t.Errorf("fingerprint order diverges")
	}
	for _, fp := range want.Fingerprints() {
		if !reflect.DeepEqual(got.ByFingerprint(fp), want.ByFingerprint(fp)) {
			t.Errorf("ByFingerprint diverges")
			break
		}
	}
	if !reflect.DeepEqual(got.KeyIDs(), want.KeyIDs()) {
		t.Errorf("key-ID order diverges")
	}
	for _, id := range want.KeyIDs() {
		if !reflect.DeepEqual(got.ByKeyID(id), want.ByKeyID(id)) {
			t.Errorf("ByKeyID diverges")
			break
		}
	}
	if !reflect.DeepEqual(got.Providers(), want.Providers()) {
		t.Errorf("provider order diverges")
	}
	for _, p := range want.Providers() {
		if !reflect.DeepEqual(got.ByProvider(p), want.ByProvider(p)) {
			t.Errorf("ByProvider(%q) diverges", p)
		}
	}
	kinds := map[hosting.Kind]bool{}
	var kindOrder []hosting.Kind
	rs := want.Results()
	for i := range rs {
		if rs[i].Available && !kinds[rs[i].HostKind] {
			kinds[rs[i].HostKind] = true
			kindOrder = append(kindOrder, rs[i].HostKind)
		}
	}
	for _, k := range kindOrder {
		if !reflect.DeepEqual(got.ByKind(k), want.ByKind(k)) {
			t.Errorf("ByKind(%v) diverges", k)
		}
	}
	if !reflect.DeepEqual(got.Chained(), want.Chained()) {
		t.Errorf("Chained diverges")
	}
	if !reflect.DeepEqual(got.InvalidHosts(), want.InvalidHosts()) {
		t.Errorf("InvalidHosts diverge")
	}
	if !reflect.DeepEqual(got.FailedUpgrades(), want.FailedUpgrades()) {
		t.Errorf("FailedUpgrades diverge")
	}
	if !reflect.DeepEqual(got.Ranked(), want.Ranked()) {
		t.Errorf("Ranked diverges")
	}
	if !reflect.DeepEqual(got.RankBuckets(), want.RankBuckets()) {
		t.Errorf("RankBuckets diverge")
	}
	if !reflect.DeepEqual(got.HostKeyCells(), want.HostKeyCells()) {
		t.Errorf("host-key cells diverge")
	}
	if !reflect.DeepEqual(got.SigAlgoCells(), want.SigAlgoCells()) {
		t.Errorf("signature cells diverge")
	}
	if !reflect.DeepEqual(got.CombinedCells(), want.CombinedCells()) {
		t.Errorf("combined cells diverge")
	}
	if !reflect.DeepEqual(got.VersionCells(), want.VersionCells()) {
		t.Errorf("version cells diverge")
	}
	if got.WeakSignatureHosts() != want.WeakSignatureHosts() {
		t.Errorf("WeakSignatureHosts diverges")
	}
	if got.SmallRSAHosts() != want.SmallRSAHosts() {
		t.Errorf("SmallRSAHosts diverges")
	}
	for i := range rs {
		r, ok := got.Lookup(rs[i].Hostname)
		if !ok || r.Hostname != rs[i].Hostname {
			t.Fatalf("merged Lookup(%q) failed", rs[i].Hostname)
		}
	}
}

// TestMergeMatchesSequential is the set-merge determinism proof at the
// index level: a contiguous partition built shard by shard and merged
// must equal the sequential one-shot build on every accessor, at shard
// counts spanning even, odd, and degenerate splits.
func TestMergeMatchesSequential(t *testing.T) {
	rs := raw(t)
	want := set(t)
	for _, shards := range []int{1, 2, 3, 4, 8, len(rs), len(rs) + 7} {
		parts := shardResults(rs, shards)
		sets := make([]*resultset.Set, len(parts))
		for k, part := range parts {
			sets[k] = resultset.New(part, testOptions())
		}
		merged := resultset.Merge(sets...)
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) { assertSetsEqual(t, merged, want) })
		built := resultset.BuildSharded(rs, shards, testOptions())
		t.Run(fmt.Sprintf("BuildSharded/shards=%d", shards), func(t *testing.T) { assertSetsEqual(t, built, want) })
	}
}

// TestMergeConcurrentBuilders races 64 per-shard builders on their own
// goroutines — the sharded scan's aggregation shape — and checks the
// merge still reproduces the sequential build (run under -race in CI).
func TestMergeConcurrentBuilders(t *testing.T) {
	rs := raw(t)
	const shards = 64
	parts := shardResults(rs, shards)
	sets := make([]*resultset.Set, len(parts))
	var wg sync.WaitGroup
	for k := range parts {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			b := resultset.NewBuilder(testOptions())
			for i := range parts[k] {
				b.Add(parts[k][i])
			}
			sets[k] = b.Build()
		}(k)
	}
	wg.Wait()
	assertSetsEqual(t, resultset.Merge(sets...), set(t))
}

// TestScanShardedMatchesSequential drives the full sharded pipeline —
// partition, concurrent per-shard scans into a shared backing array,
// merge — against the streaming scan + one-shot build.
func TestScanShardedMatchesSequential(t *testing.T) {
	want := set(t)
	for _, shards := range []int{1, 2, 4, 8} {
		sc := scanner.New(testWorld.Net, testWorld.DNS, testWorld.Class,
			scanner.DefaultConfig(testWorld.Stores["apple"], testWorld.ScanTime))
		got := resultset.ScanSharded(context.Background(), sc, testWorld.GovHosts, shards, testOptions())
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) { assertSetsEqual(t, got, want) })
	}
}

// TestMergeEmptyAndSingle covers the degenerate merges.
func TestMergeEmptyAndSingle(t *testing.T) {
	if got := resultset.Merge(); got.Len() != 0 {
		t.Fatalf("empty merge has %d results", got.Len())
	}
	rs := raw(t)
	one := resultset.Merge(resultset.New(rs, testOptions()))
	assertSetsEqual(t, one, set(t))
}
