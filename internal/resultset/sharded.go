package resultset

import (
	"context"
	"sync"

	"repro/internal/scanner"
)

// ScanSharded scans hostnames through sc split across shards independent
// workers and returns the merged Set — the preferred entry point for
// large-scale aggregation. The host list is partitioned contiguously
// (scanner.Partition); each shard scans sequentially via ScanShard,
// feeding its own Builder with no reorder window and no cross-shard
// locks, and the per-shard Sets are recombined with the deterministic
// set-merge. Every shard appends its results into one shared backing
// array, so the merged Set's result slice is built without copying.
//
// The merged Set is bit-identical to a sequential build over the same
// host list on fault-free worlds. Worlds with injected faults carry the
// same caveat as any concurrent scan (core.SuiteOptions.Jobs > 1):
// per-endpoint dial ordinals depend on scan interleaving when hosts
// share provider IPs, so shard count becomes part of the world's fault
// draw, not a correctness bug.
//
// shards < 2 (or a host list smaller than the shard count's minimum of
// one host per shard) degrades gracefully; with one shard the scan runs
// sequentially on the calling goroutine with no merge step.
func ScanSharded(ctx context.Context, sc *scanner.Scanner, hostnames []string, shards int, opts Options) *Set {
	parts := scanner.Partition(hostnames, shards)
	if len(parts) == 0 {
		return build(nil, opts)
	}
	if len(parts) == 1 {
		one := opts
		one.SizeHint = len(hostnames)
		b := NewBuilder(one)
		sc.ScanShard(ctx, hostnames, b.Add)
		return b.Build()
	}

	backing := make([]scanner.Result, len(hostnames))
	sets := make([]*Set, len(parts))
	var wg sync.WaitGroup
	lo := 0
	for k, part := range parts {
		sub := backing[lo : lo : lo+len(part)]
		wg.Add(1)
		go func(k int, part []string, sub []scanner.Result) {
			defer wg.Done()
			b := newShardBuilder(opts, sub)
			sc.ScanShard(ctx, part, b.Add)
			sets[k] = b.Build()
		}(k, part, sub)
		lo += len(part)
	}
	wg.Wait()
	return mergeSets(sets, backing[:lo])
}

// BuildSharded indexes an already-collected result slice using shards
// concurrent per-shard builds recombined by the deterministic set-merge —
// the aggregation half of ScanSharded, for callers that hold raw results
// (a restored journal, a finished ScanAll). The slice is partitioned
// contiguously, every shard builds over its subslice in place, and the
// merged Set adopts results without copying; the outcome equals
// New(results, opts) on every accessor. shards < 2 falls back to the
// one-shot build.
func BuildSharded(results []scanner.Result, shards int, opts Options) *Set {
	n := len(results)
	if shards > n {
		shards = n
	}
	if shards < 2 {
		return build(results, opts)
	}
	sets := make([]*Set, shards)
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		lo, hi := k*n/shards, (k+1)*n/shards
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			sets[k] = build(results[lo:hi:hi], opts)
		}(k, lo, hi)
	}
	wg.Wait()
	return mergeSets(sets, results)
}
