package resultset

import (
	"fmt"
	"sort"

	"repro/internal/cert"
	"repro/internal/scanner"
)

// ApplyDelta returns a new generation of the Set in which the given
// rescanned results replace their predecessors, with every index, count,
// cell and derived tally bit-identical to a from-scratch build over the
// patched result slice — at a cost proportional to the delta, not the
// corpus:
//
//   - the result slice itself is never copied: the new generation shares
//     the base generation's backing slice and layers the changed rows on
//     top as an index-keyed overlay (pointers into a per-generation slab,
//     immutable once installed), so the only O(corpus) work left per
//     generation is one flat memcpy of each touched family's
//     bucket-header vector;
//   - the contiguous view (Results, WriteJSONL) is materialized lazily
//     and cached, so a generation only pays that copy if something asks
//     for it; once the overlay grows past 1/8 of the corpus the
//     generation compacts eagerly (deterministic, size-triggered) to
//     keep per-row access at one map probe;
//   - only buckets actually touched by a changed result are rebuilt,
//     by splicing out the old index and splicing in the new one;
//   - key→slot intern tables are shared across the whole delta chain
//     (slots are never renumbered), so no per-generation map is cloned;
//   - first-seen key orders are re-derived lazily, and only for families
//     whose order could actually have changed;
//   - counts, per-country aggregates and scalar tallies are adjusted by
//     retracting the old result's contribution and adding the new one.
//
// Every changed result must carry the hostname of a corpus member (the
// corpus host list itself never changes under a delta; additions and
// removals require a rebuild). When one hostname appears several times,
// the last occurrence wins. The receiver is not modified and remains
// fully usable — callers holding older generations observe nothing.
// An empty delta returns the receiver itself.
func (s *Set) ApplyDelta(changed []scanner.Result) (*Set, error) {
	if len(changed) == 0 {
		return s, nil
	}
	s.hostOnce.Do(s.buildHostIndex)

	pick := make(map[int]int, len(changed))
	idxs := make([]int, 0, len(changed))
	for ci := range changed {
		i, ok := s.byHost[changed[ci].Hostname]
		if !ok {
			return nil, fmt.Errorf("resultset: ApplyDelta host %q not in corpus", changed[ci].Hostname)
		}
		if _, dup := pick[i]; !dup {
			idxs = append(idxs, i)
		}
		pick[i] = ci
	}
	sort.Ints(idxs)

	// Share the base generation's backing slice and layer the changed
	// rows on top. The slab is allocated at exact capacity so appends
	// never reallocate — the overlay's pointers into it stay valid —
	// and rows are immutable once installed, so a parent's overlay
	// entries are inherited by pointer.
	n := len(s.results)
	ns := &Set{opts: s.opts, results: s.results}
	slab := make([]scanner.Result, 0, len(idxs))
	overlay := make(map[int]*scanner.Result, len(s.overlay)+len(idxs))
	if s.overlay != nil {
		// Index-keyed inserts into a fresh map; iteration order is immaterial.
		//lint:allow maprange copying disjoint index->row entries is order-independent
		for i, r := range s.overlay {
			overlay[i] = r
		}
	}
	for _, i := range idxs {
		slab = append(slab, changed[pick[i]])
		overlay[i] = &slab[len(slab)-1]
	}
	ns.overlay = overlay
	// The corpus host list is unchanged, so the lazy host index, the
	// country structure (a pure function of the hostname) and the rank
	// structure are inherited wholesale.
	ns.byHost = s.byHost
	ns.ccIdx = s.ccIdx
	ns.countries = s.countries
	ns.ranked = s.ranked
	ns.rankBuckets = s.rankBuckets

	ns.counts = s.counts
	ns.issuerDomain = s.issuerDomain
	ns.weakSigHosts = s.weakSigHosts
	ns.smallRSAHosts = s.smallRSAHosts
	ns.ccAggs = make(map[string]CountryAgg, len(s.countries))
	for _, cc := range s.countries {
		ns.ccAggs[cc] = s.ccAggs[cc]
	}

	var catOps, excOps, provOps, kindOps, fpOps, kidOps, issOps deltaOps
	var chainOps, invOps, failOps listOps

	// Walk the changed indices in ascending corpus order, retracting each
	// old result's contributions and adding the new one's. Ascending order
	// keeps every per-slot rm/add list sorted and makes cell first-index
	// maintenance order-independent.
	for _, i := range idxs {
		or, nr := s.At(i), overlay[i]

		ocat, ncat := or.Category(), nr.Category()
		tallySigned(&ns.counts, or, ocat, -1)
		tallySigned(&ns.counts, nr, ncat, 1)
		if ocat != ncat {
			catOps.remove(s.catIdx.tab.lookup(ocat), i)
			catOps.insert(s.catIdx.tab.slot(ncat), i)
		}

		if oe, ne := or.Exception, nr.Exception; oe != ne {
			if oe != scanner.ExcNone {
				excOps.remove(s.excIdx.tab.lookup(oe), i)
			}
			if ne != scanner.ExcNone {
				excOps.insert(s.excIdx.tab.slot(ne), i)
			}
		}

		if s.opts.CountryOf != nil {
			if cc := s.opts.CountryOf(or.Hostname); cc != "" {
				agg := ns.ccAggs[cc]
				aggAdjust(&agg, or, -1)
				aggAdjust(&agg, nr, 1)
				ns.ccAggs[cc] = agg
			}
		}

		if or.Available != nr.Available || (or.Available && or.Provider != nr.Provider) {
			if or.Available {
				provOps.remove(s.provIdx.tab.lookup(or.Provider), i)
			}
			if nr.Available {
				provOps.insert(s.provIdx.tab.slot(nr.Provider), i)
			}
		}
		if or.Available != nr.Available || (or.Available && or.HostKind != nr.HostKind) {
			if or.Available {
				kindOps.remove(s.kindIdx.tab.lookup(or.HostKind), i)
			}
			if nr.Available {
				kindOps.insert(s.kindIdx.tab.slot(nr.HostKind), i)
			}
		}

		ochain, nchain := len(or.Chain) > 0, len(nr.Chain) > 0
		if ochain != nchain {
			if ochain {
				chainOps.remove(i)
			} else {
				chainOps.insert(i)
			}
		}
		var ocn, ncn string
		if ochain {
			leaf := or.Chain[0]
			ocn = leaf.Issuer.CommonName
			if leaf.SignatureAlgorithm.IsWeak() {
				ns.weakSigHosts--
			}
			if leaf.PublicKey.Type == cert.KeyRSA && leaf.PublicKey.Bits < 2048 {
				ns.smallRSAHosts--
			}
		}
		if nchain {
			leaf := nr.Chain[0]
			ncn = leaf.Issuer.CommonName
			if leaf.SignatureAlgorithm.IsWeak() {
				ns.weakSigHosts++
			}
			if leaf.PublicKey.Type == cert.KeyRSA && leaf.PublicKey.Bits < 2048 {
				ns.smallRSAHosts++
			}
		}

		ofp, nfp := fpOf(or), fpOf(nr)
		if ochain != nchain || (ochain && ofp != nfp) {
			if ochain {
				fpOps.remove(s.fpIdx.tab.lookup(ofp), i)
			}
			if nchain {
				fpOps.insert(s.fpIdx.tab.slot(nfp), i)
			}
		}
		okid, nkid := kidOf(or), kidOf(nr)
		if ochain != nchain || (ochain && okid != nkid) {
			if ochain {
				kidOps.remove(s.kidIdx.tab.lookup(okid), i)
			}
			if nchain {
				kidOps.insert(s.kidIdx.tab.slot(nkid), i)
			}
		}
		if ocn != ncn {
			if ocn != "" {
				issOps.remove(s.issIdx.tab.lookup(ocn), i)
			}
			if ncn != "" {
				issOps.insert(s.issIdx.tab.slot(ncn), i)
			}
		}
		if ocn != "" {
			ns.issuerDomain--
		}
		if ncn != "" {
			ns.issuerDomain++
		}

		oinv, ninv := ocat.IsInvalidHTTPS(), ncat.IsInvalidHTTPS()
		if oinv != ninv {
			if oinv {
				invOps.remove(i)
			} else {
				invOps.insert(i)
			}
		}

		ofail := or.ServesHTTP && or.ServesHTTPS && or.ValidHTTPS()
		nfail := nr.ServesHTTP && nr.ServesHTTPS && nr.ValidHTTPS()
		if ofail != nfail {
			if ofail {
				failOps.remove(i)
			} else {
				failOps.insert(i)
			}
		}
	}

	ns.catIdx = applyOps(s.catIdx, &catOps)
	ns.excIdx = applyOps(s.excIdx, &excOps)
	ns.provIdx = applyOps(s.provIdx, &provOps)
	ns.kindIdx = applyOps(s.kindIdx, &kindOps)
	ns.fpIdx = applyOps(s.fpIdx, &fpOps)
	ns.kidIdx = applyOps(s.kidIdx, &kidOps)
	ns.issIdx = applyOps(s.issIdx, &issOps)

	ns.chained = chainOps.splice(s.chained)
	ns.failedUpgrades = failOps.splice(s.failedUpgrades)
	if invOps.empty() {
		ns.invalidIdx = s.invalidIdx
		ns.invalidHosts = s.invalidHosts
	} else {
		ns.invalidIdx = invOps.splice(s.invalidIdx)
		ns.invalidHosts = make([]string, len(ns.invalidIdx))
		for j, idx := range ns.invalidIdx {
			ns.invalidHosts[j] = ns.At(idx).Hostname
		}
	}

	ns.hostKeyIdx = applyCellDelta(s.hostKeyIdx, s.At, ns.At, n, idxs, hostKeyContrib, hostKeyLabel)
	ns.sigAlgoIdx = applyCellDelta(s.sigAlgoIdx, s.At, ns.At, n, idxs, sigAlgoContrib, sigAlgoLabel)
	ns.combinedIdx = applyCellDelta(s.combinedIdx, s.At, ns.At, n, idxs, combinedContrib, combinedLabel)
	ns.versionIdx = applyCellDelta(s.versionIdx, s.At, ns.At, n, idxs, versionContrib, versionLabel)

	// Compact once the overlay covers enough of the corpus that the flat
	// copy is cheaper than every future generation re-probing the map.
	// The trigger is pure size arithmetic, so a chain of deltas compacts
	// at the same generation regardless of timing or worker count.
	if len(overlay)*8 >= n {
		flat := make([]scanner.Result, n)
		copy(flat, s.results)
		// Index-keyed writes into distinct slots; iteration order is immaterial.
		//lint:allow maprange overlay entries write disjoint indices
		for i, r := range overlay {
			flat[i] = *r
		}
		ns.results = flat
		ns.overlay = nil
	}
	return ns, nil
}

// aggAdjust applies one result's contribution to a country aggregate.
// Hosts is hostname membership and never changes under a delta.
func aggAdjust(a *CountryAgg, r *scanner.Result, d int) {
	if !r.Available {
		return
	}
	a.Available += d
	if r.HasHTTPS() {
		a.HTTPS += d
	}
	if r.ValidHTTPS() {
		a.Valid += d
	}
}

func fpOf(r *scanner.Result) [32]byte {
	if len(r.Chain) == 0 {
		return [32]byte{}
	}
	return r.Chain[0].Fingerprint()
}

func kidOf(r *scanner.Result) cert.KeyID {
	if len(r.Chain) == 0 {
		return cert.KeyID{}
	}
	return r.Chain[0].PublicKey.ID
}

// deltaOps batches one bucket family's edits: per-slot removal and
// addition lists (ascending, because changed indices are walked
// ascending) plus the touched slots in first-touch order.
type deltaOps struct {
	touched []int32
	rm, add map[int32][]int
}

func (d *deltaOps) touch(p int32) {
	if d.rm == nil {
		d.rm = make(map[int32][]int)
		d.add = make(map[int32][]int)
	}
	if _, ok := d.rm[p]; ok {
		return
	}
	if _, ok := d.add[p]; ok {
		return
	}
	d.touched = append(d.touched, p)
}

func (d *deltaOps) remove(p int32, i int) {
	d.touch(p)
	d.rm[p] = append(d.rm[p], i)
}

func (d *deltaOps) insert(p int32, i int) {
	d.touch(p)
	d.add[p] = append(d.add[p], i)
}

// applyOps produces the next generation of one bucket family: untouched
// buckets alias the base generation's arrays (the bucket-header vector
// is the only per-family copy), touched buckets are rebuilt once by
// splicing, and the public key order is inherited unless the edit could
// have reordered it (a key appearing, emptying, or changing its first
// occurrence index).
func applyOps[K comparable](base index[K], ops *deltaOps) index[K] {
	if len(ops.touched) == 0 {
		return base
	}
	nb := len(base.buckets)
	for _, p := range ops.touched {
		if int(p) >= nb {
			nb = int(p) + 1
		}
	}
	buckets := make([][]int, nb)
	copy(buckets, base.buckets)
	orderStable := true
	for _, p := range ops.touched {
		var old []int
		if int(p) < len(base.buckets) {
			old = base.buckets[p]
		}
		nw := spliceBucket(old, ops.rm[p], ops.add[p])
		buckets[p] = nw
		if (old == nil) != (nw == nil) || (old != nil && nw != nil && old[0] != nw[0]) {
			orderStable = false
		}
	}
	ord := base.ord
	if !orderStable {
		ord = &keyOrder[K]{}
	}
	return index[K]{tab: base.tab, buckets: buckets, ord: ord}
}

// listOps batches edits to one membership list (chained, invalid,
// failed-upgrade indices).
type listOps struct{ rm, add []int }

func (l *listOps) remove(i int) { l.rm = append(l.rm, i) }
func (l *listOps) insert(i int) { l.add = append(l.add, i) }
func (l *listOps) empty() bool  { return len(l.rm) == 0 && len(l.add) == 0 }

// splice rebuilds the list, sharing the base list verbatim when nothing
// changed. An emptied list stays non-nil to match a fresh build.
func (l *listOps) splice(old []int) []int {
	if l.empty() {
		return old
	}
	out := spliceBucket(old, l.rm, l.add)
	if out == nil {
		out = []int{}
	}
	return out
}

// --- cell families ---

// applyCellDelta produces the next generation of one cell family. Cells
// are value-keyed through the shared intern table; each changed result
// retracts its old contribution and adds its new one. Rows are read
// through the generations' At accessors (overlay-aware), never by
// copying the corpus. A cell whose count reaches zero is tombstoned
// (first = -1); when the first contributor of a surviving cell is
// retracted, the new first is found by scanning the patched results
// forward from the old one — bounded by the distance to the next
// contributor, and only triggered when a delta touches a first-seen
// representative.
func applyCellDelta[K comparable](
	x cellIndex[K], oldAt, newAt func(int) *scanner.Result, n int, idxs []int,
	contrib func(*scanner.Result) (K, bool, bool),
	label func(*scanner.Result) string,
) cellIndex[K] {
	cells, first := x.cells, x.first
	cloned := false
	ensure := func() {
		if !cloned {
			cells = append([]Cell(nil), cells...)
			first = append([]int32(nil), first...)
			cloned = true
		}
	}
	for _, i := range idxs {
		oldK, oldV, oldOK := contrib(oldAt(i))
		newK, newV, newOK := contrib(newAt(i))
		if !oldOK && !newOK {
			continue
		}
		if oldOK && newOK && oldK == newK {
			if oldV == newV {
				continue
			}
			ensure()
			p := x.tab.lookup(oldK)
			if newV {
				cells[p].Valid++
			} else {
				cells[p].Valid--
			}
			continue
		}
		if oldOK {
			ensure()
			p := x.tab.lookup(oldK)
			c := &cells[p]
			c.Total--
			if oldV {
				c.Valid--
			}
			if c.Total == 0 {
				first[p] = -1
			} else if first[p] == int32(i) {
				first[p] = rescanFirst(newAt, n, i+1, oldK, contrib)
			}
		}
		if newOK {
			ensure()
			p := x.tab.slot(newK)
			for int(p) >= len(cells) {
				cells = append(cells, Cell{})
				first = append(first, -1)
			}
			c := &cells[p]
			if c.Total == 0 {
				c.Label = label(newAt(i))
				first[p] = int32(i)
			} else if first[p] < 0 || int32(i) < first[p] {
				first[p] = int32(i)
			}
			c.Total++
			if newV {
				c.Valid++
			}
		}
	}
	if !cloned {
		return x
	}
	return cellIndex[K]{tab: x.tab, cells: cells, first: first, ord: &cellOrder{}}
}

// rescanFirst finds the smallest result index ≥ from contributing key k
// in the patched corpus of n rows (-1 when none remains; transiently
// possible mid-delta when every remaining contributor is itself about to
// be retracted, in which case the later retraction zeroes the cell).
func rescanFirst[K comparable](at func(int) *scanner.Result, n, from int, k K, contrib func(*scanner.Result) (K, bool, bool)) int32 {
	for j := from; j < n; j++ {
		if kj, _, ok := contrib(at(j)); ok && kj == k {
			return int32(j)
		}
	}
	return -1
}

func hostKeyOf(r *scanner.Result) uint64 {
	leaf := r.Chain[0]
	return uint64(leaf.PublicKey.Type)<<32 | uint64(uint32(leaf.PublicKey.Bits))
}

func hostKeyContrib(r *scanner.Result) (uint64, bool, bool) {
	if len(r.Chain) == 0 {
		return 0, false, false
	}
	return hostKeyOf(r), r.Verify.Valid(), true
}

func hostKeyLabel(r *scanner.Result) string { return r.Chain[0].PublicKey.Label() }

func sigAlgoContrib(r *scanner.Result) (int, bool, bool) {
	if len(r.Chain) == 0 {
		return 0, false, false
	}
	return int(r.Chain[0].SignatureAlgorithm), r.Verify.Valid(), true
}

func sigAlgoLabel(r *scanner.Result) string { return r.Chain[0].SignatureAlgorithm.String() }

func combinedContrib(r *scanner.Result) (combKey, bool, bool) {
	if len(r.Chain) == 0 {
		return combKey{}, false, false
	}
	return combKey{hk: hostKeyOf(r), sig: int32(r.Chain[0].SignatureAlgorithm)}, r.Verify.Valid(), true
}

func combinedLabel(r *scanner.Result) string {
	leaf := r.Chain[0]
	return leaf.PublicKey.Label() + " / " + leaf.SignatureAlgorithm.String()
}

func versionContrib(r *scanner.Result) (int, bool, bool) {
	if !r.HasHTTPS() {
		return 0, false, false
	}
	if len(r.Chain) == 0 {
		return 0, false, true
	}
	return int(r.TLSVersion) + 1, r.Verify.Valid(), true
}

func versionLabel(r *scanner.Result) string {
	if len(r.Chain) == 0 {
		return "(no handshake)"
	}
	return r.TLSVersion.String()
}
