package resultset_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/stats"
	"repro/internal/world"
)

var (
	testWorld = world.MustBuild(world.TestConfig())
	rawCache  []scanner.Result
	setCache  *resultset.Set
)

const rankBuckets = 50

func testOptions() resultset.Options {
	rankOf := func(h string) (int, bool) {
		for _, rh := range testWorld.TopLists.TrancoGov {
			if rh.Host == h {
				return rh.Rank, true
			}
		}
		return 0, false
	}
	return resultset.Options{
		CountryOf:   testWorld.CountryOf,
		RankOf:      rankOf,
		RankBuckets: rankBuckets,
		RankMax:     testWorld.TopLists.Max,
	}
}

func raw(t *testing.T) []scanner.Result {
	t.Helper()
	if rawCache == nil {
		s := scanner.New(testWorld.Net, testWorld.DNS, testWorld.Class,
			scanner.DefaultConfig(testWorld.Stores["apple"], testWorld.ScanTime))
		rawCache = s.ScanAll(context.Background(), testWorld.GovHosts)
	}
	return rawCache
}

func set(t *testing.T) *resultset.Set {
	t.Helper()
	if setCache == nil {
		setCache = resultset.New(raw(t), testOptions())
	}
	return setCache
}

func TestResultsPreserveInputOrder(t *testing.T) {
	s, rs := set(t), raw(t)
	if s.Len() != len(rs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(rs))
	}
	for i := range rs {
		if s.At(i).Hostname != rs[i].Hostname {
			t.Fatalf("result %d reordered: %q vs %q", i, s.At(i).Hostname, rs[i].Hostname)
		}
	}
}

func TestLookupEveryHost(t *testing.T) {
	s, rs := set(t), raw(t)
	for i := range rs {
		r, ok := s.Lookup(rs[i].Hostname)
		if !ok || r.Hostname != rs[i].Hostname {
			t.Fatalf("Lookup(%q) failed", rs[i].Hostname)
		}
	}
	if _, ok := s.Lookup("definitely-not-scanned.example"); ok {
		t.Error("Lookup invented a host")
	}
}

func TestCountsMatchNaiveWalk(t *testing.T) {
	s, rs := set(t), raw(t)
	var want resultset.Counts
	for i := range rs {
		r := &rs[i]
		cat := r.Category()
		if cat == scanner.CatUnavailable {
			want.Unavailable++
			continue
		}
		want.Total++
		switch {
		case cat == scanner.CatHTTPOnly:
			want.HTTPOnly++
			continue
		case cat == scanner.CatValid:
			want.HTTPS++
			want.Valid++
			if r.HSTS {
				want.HSTS++
			}
		default:
			want.HTTPS++
			want.Invalid++
			if cat.IsException() {
				want.Exceptions++
			}
		}
		if r.ServesHTTP && r.ServesHTTPS {
			want.BothSchemes++
		}
	}
	if got := s.Counts(); got != want {
		t.Errorf("Counts = %+v, want %+v", got, want)
	}
}

// TestCategoryPartition: every result lands in exactly one category
// bucket, buckets hold ascending indices, and the union is the corpus.
func TestCategoryPartition(t *testing.T) {
	s := set(t)
	seen := make([]bool, s.Len())
	total := 0
	for _, cat := range s.Categories() {
		idxs := s.ByCategory(cat)
		if len(idxs) != s.CategoryCount(cat) {
			t.Fatalf("category %v: count %d != len %d", cat, s.CategoryCount(cat), len(idxs))
		}
		for j, i := range idxs {
			if j > 0 && idxs[j-1] >= i {
				t.Fatalf("category %v indices not ascending", cat)
			}
			if seen[i] {
				t.Fatalf("result %d in two categories", i)
			}
			seen[i] = true
			if s.At(i).Category() != cat {
				t.Fatalf("result %d misfiled under %v", i, cat)
			}
			total++
		}
	}
	if total != s.Len() {
		t.Errorf("categories cover %d of %d results", total, s.Len())
	}
}

func TestCountryIndexMatchesAttribution(t *testing.T) {
	s := set(t)
	ccs := s.Countries()
	if !sort.StringsAreSorted(ccs) {
		t.Fatal("Countries not sorted")
	}
	covered := 0
	for _, cc := range ccs {
		for _, i := range s.ByCountry(cc) {
			if got := testWorld.CountryOf(s.At(i).Hostname); got != cc {
				t.Fatalf("host %q filed under %q, attributed to %q", s.At(i).Hostname, cc, got)
			}
			covered++
		}
	}
	uncovered := 0
	for i := 0; i < s.Len(); i++ {
		if testWorld.CountryOf(s.At(i).Hostname) == "" {
			uncovered++
		}
	}
	if covered+uncovered != s.Len() {
		t.Errorf("country index covers %d + %d unattributed of %d", covered, uncovered, s.Len())
	}

	aggs := s.CountryAggs()
	if len(aggs) != len(ccs) {
		t.Fatalf("aggs for %d countries, index has %d", len(aggs), len(ccs))
	}
	for _, agg := range aggs {
		var want resultset.CountryAgg
		want.Country = agg.Country
		for _, i := range s.ByCountry(agg.Country) {
			r := s.At(i)
			want.Hosts++
			if r.Available {
				want.Available++
				if r.HasHTTPS() {
					want.HTTPS++
				}
				if r.ValidHTTPS() {
					want.Valid++
				}
			}
		}
		if agg != want {
			t.Errorf("agg %q = %+v, want %+v", agg.Country, agg, want)
		}
	}
}

func TestChainIndexesMatchNaive(t *testing.T) {
	s, rs := set(t), raw(t)

	chained, analyzed := 0, 0
	for i := range rs {
		if len(rs[i].Chain) == 0 {
			continue
		}
		chained++
		leaf := rs[i].Chain[0]
		if leaf.Issuer.CommonName != "" {
			analyzed++
		}
		fpIdxs := s.ByFingerprint(leaf.Fingerprint())
		if !containsInt(fpIdxs, i) {
			t.Fatalf("result %d missing from its fingerprint bucket", i)
		}
		if !containsInt(s.ByKeyID(leaf.PublicKey.ID), i) {
			t.Fatalf("result %d missing from its key bucket", i)
		}
	}
	if len(s.Chained()) != chained {
		t.Errorf("Chained = %d, want %d", len(s.Chained()), chained)
	}
	if s.IssuerAnalyzed() != analyzed {
		t.Errorf("IssuerAnalyzed = %d, want %d", s.IssuerAnalyzed(), analyzed)
	}

	issuerTotal := 0
	for _, cn := range s.Issuers() {
		for _, i := range s.ByIssuer(cn) {
			if rs[i].Chain[0].Issuer.CommonName != cn {
				t.Fatalf("result %d filed under issuer %q", i, cn)
			}
			issuerTotal++
		}
	}
	if issuerTotal != analyzed {
		t.Errorf("issuer buckets hold %d results, want %d", issuerTotal, analyzed)
	}
}

func TestRankBucketsMatchBinning(t *testing.T) {
	s := set(t)
	buckets := s.RankBuckets()
	if len(buckets) != rankBuckets {
		t.Fatalf("buckets = %d, want %d", len(buckets), rankBuckets)
	}
	ranked := 0
	for b, idxs := range buckets {
		for _, i := range idxs {
			rank, ok := s.RankOf(s.At(i).Hostname)
			if !ok {
				t.Fatalf("unranked host %q in bucket %d", s.At(i).Hostname, b)
			}
			wantB, ok := stats.BucketIndex(float64(rank), 1, float64(testWorld.TopLists.Max)+1, rankBuckets)
			if !ok || wantB != b {
				t.Fatalf("host rank %d in bucket %d, BucketIndex says %d", rank, b, wantB)
			}
			ranked++
		}
	}
	if len(s.Ranked()) < ranked {
		t.Errorf("Ranked = %d < bucketed %d", len(s.Ranked()), ranked)
	}
	if ranked == 0 {
		t.Error("no ranked hosts; the world seeds a Tranco overlap")
	}
}

func TestInvalidHostsInInputOrder(t *testing.T) {
	s, rs := set(t), raw(t)
	var want []string
	for i := range rs {
		if rs[i].Category().IsInvalidHTTPS() {
			want = append(want, rs[i].Hostname)
		}
	}
	if !reflect.DeepEqual(s.InvalidHosts(), want) {
		t.Errorf("InvalidHosts diverges from the naive input-order walk")
	}
}

// TestStreamingBuildMatchesOneShot: feeding a Builder result-by-result
// (the ScanStream path) yields the same indexes as New.
func TestStreamingBuildMatchesOneShot(t *testing.T) {
	rs := raw(t)
	b := resultset.NewBuilder(testOptions())
	for i := range rs {
		b.Add(rs[i])
	}
	streamed := b.Build()
	oneShot := set(t)

	if !reflect.DeepEqual(streamed.Counts(), oneShot.Counts()) {
		t.Error("counts diverge between streamed and one-shot builds")
	}
	if !reflect.DeepEqual(streamed.Issuers(), oneShot.Issuers()) {
		t.Error("issuer order diverges")
	}
	if !reflect.DeepEqual(streamed.Countries(), oneShot.Countries()) {
		t.Error("country order diverges")
	}
	if !reflect.DeepEqual(streamed.Fingerprints(), oneShot.Fingerprints()) {
		t.Error("fingerprint order diverges")
	}
	if !reflect.DeepEqual(streamed.HostKeyCells(), oneShot.HostKeyCells()) {
		t.Error("key cells diverge")
	}
	if !reflect.DeepEqual(streamed.RankBuckets(), oneShot.RankBuckets()) {
		t.Error("rank buckets diverge")
	}
}

// TestRebuildDeterministic: two builds over the same results expose
// identical key orders — the property govlint's maprange scope protects.
func TestRebuildDeterministic(t *testing.T) {
	rs := raw(t)
	a := resultset.New(rs, testOptions())
	b := resultset.New(rs, testOptions())
	if !reflect.DeepEqual(a.Issuers(), b.Issuers()) ||
		!reflect.DeepEqual(a.Providers(), b.Providers()) ||
		!reflect.DeepEqual(a.Categories(), b.Categories()) ||
		!reflect.DeepEqual(a.KeyIDs(), b.KeyIDs()) ||
		!reflect.DeepEqual(a.VersionCells(), b.VersionCells()) {
		t.Error("rebuild changed an index key order")
	}
}

func containsInt(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
