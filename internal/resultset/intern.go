package resultset

import (
	"sort"
	"sync"
)

// intern is an append-only key→slot table for one index family. A slot,
// once assigned, is never reused or renumbered, so the table can be
// shared along a whole chain of delta-patched Sets: a Set built before a
// key was interned simply has no bucket at that slot. Post-build lookups
// and inserts are mutex-guarded because deltas may be applied while
// older generations are still being read.
type intern[K comparable] struct {
	mu   sync.RWMutex
	pos  map[K]int32
	keys []K // slot → key, parallel with pos
}

// lookup returns k's slot, or -1 when k was never interned.
func (t *intern[K]) lookup(k K) int32 {
	t.mu.RLock()
	p, ok := t.pos[k]
	t.mu.RUnlock()
	if !ok {
		return -1
	}
	return p
}

// slot returns k's slot, interning it first when new.
func (t *intern[K]) slot(k K) int32 {
	t.mu.Lock()
	p, ok := t.pos[k]
	if !ok {
		p = int32(len(t.keys))
		t.pos[k] = p
		t.keys = append(t.keys, k)
	}
	t.mu.Unlock()
	return p
}

// keySlice returns the first n slots' keys. The returned slice is
// immutable: appends by later generations never renumber earlier slots.
func (t *intern[K]) keySlice(n int) []K {
	t.mu.RLock()
	ks := t.keys[:n:n]
	t.mu.RUnlock()
	return ks
}

// keyOrder carries a Set's public key order for one family, derived
// lazily after a delta (a fresh build pre-fills it for free, since slot
// order is first-seen order there).
type keyOrder[K comparable] struct {
	once sync.Once
	keys []K
}

// index is one bucket family of one Set: the family's shared intern
// table plus this generation's slot-indexed buckets. Buckets hold
// ascending result indices; a nil bucket means the key is absent from
// this generation (tombstoned by a delta, or interned by a later one).
type index[K comparable] struct {
	tab     *intern[K]
	buckets [][]int
	ord     *keyOrder[K]
}

// bucket returns the result indices for k, nil when absent.
func (x *index[K]) bucket(k K) []int {
	p := x.tab.lookup(k)
	if p < 0 || int(p) >= len(x.buckets) {
		return nil
	}
	return x.buckets[p]
}

// orderedKeys returns the live keys in public (first-seen) order. After
// a delta the order is re-derived by sorting live slots on their first
// occurrence index — exactly the order a from-scratch build would
// produce, since first-seen order is ascending first-occurrence order
// and buckets are ascending.
func (x *index[K]) orderedKeys() []K {
	x.ord.once.Do(func() {
		if x.ord.keys != nil {
			return
		}
		live := make([]int32, 0, len(x.buckets))
		for p := range x.buckets {
			if x.buckets[p] != nil {
				live = append(live, int32(p))
			}
		}
		sort.Slice(live, func(a, b int) bool {
			return x.buckets[live[a]][0] < x.buckets[live[b]][0]
		})
		all := x.tab.keySlice(len(x.buckets))
		keys := make([]K, len(live))
		for i, p := range live {
			keys[i] = all[p]
		}
		x.ord.keys = keys
	})
	return x.ord.keys
}

// builtIndex wraps a finished two-pass build into an index: keys are in
// first-seen slot order, pos (when the build already interned through a
// map) is adopted without copying, and each bucket is a subslice of the
// flat array.
func builtIndex[K comparable](keys []K, pos map[K]int32, f *flatIndex) index[K] {
	if pos == nil {
		pos = make(map[K]int32, len(keys))
		for p, k := range keys {
			pos[k] = int32(p)
		}
	}
	buckets := make([][]int, len(keys))
	for p := range keys {
		buckets[p] = f.bucket(p)
	}
	return index[K]{
		tab:     &intern[K]{pos: pos, keys: keys},
		buckets: buckets,
		ord:     &keyOrder[K]{keys: keys},
	}
}

// cellOrder carries a Set's public cell order for one family, derived
// lazily after a delta.
type cellOrder struct {
	once  sync.Once
	cells []Cell
}

// cellIndex is one aggregate-cell family: the shared intern table, this
// generation's slot-indexed cells, and each cell's first contributing
// result index (-1 = tombstone). Unlike bucket families, cells don't
// record their members, so the first index is tracked explicitly to
// reconstruct first-seen order after a delta.
type cellIndex[K comparable] struct {
	tab   *intern[K]
	cells []Cell
	first []int32
	ord   *cellOrder
}

// liveSlots returns the slots of live cells ordered by first occurrence
// (for a fresh build this is just slot order).
func (x *cellIndex[K]) liveSlots() []int32 {
	live := make([]int32, 0, len(x.cells))
	for p := range x.cells {
		if x.first[p] >= 0 {
			live = append(live, int32(p))
		}
	}
	sort.Slice(live, func(a, b int) bool { return x.first[live[a]] < x.first[live[b]] })
	return live
}

// orderedCells returns the live cells in public (first-seen) order.
func (x *cellIndex[K]) orderedCells() []Cell {
	x.ord.once.Do(func() {
		if x.ord.cells != nil {
			return
		}
		live := x.liveSlots()
		cells := make([]Cell, len(live))
		for i, p := range live {
			cells[i] = x.cells[p]
		}
		x.ord.cells = cells
	})
	return x.ord.cells
}

// builtCells wraps a finished build's cell family into a cellIndex.
func builtCells[K comparable](keys []K, pos map[K]int32, cells []Cell, first []int32) cellIndex[K] {
	if pos == nil {
		pos = make(map[K]int32, len(keys))
		for p, k := range keys {
			pos[k] = int32(p)
		}
	}
	return cellIndex[K]{
		tab:   &intern[K]{pos: pos, keys: keys},
		cells: cells,
		first: first,
		ord:   &cellOrder{cells: cells},
	}
}

// spliceBucket rebuilds one ascending bucket after removing rm and
// inserting add (both ascending, rm ⊆ old, add ∩ old = ∅), returning
// nil when the bucket empties.
func spliceBucket(old, rm, add []int) []int {
	n := len(old) - len(rm) + len(add)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	ri, ai := 0, 0
	for _, v := range old {
		if ri < len(rm) && rm[ri] == v {
			ri++
			continue
		}
		for ai < len(add) && add[ai] < v {
			out = append(out, add[ai])
			ai++
		}
		out = append(out, v)
	}
	out = append(out, add[ai:]...)
	return out
}
