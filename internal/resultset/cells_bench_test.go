package resultset

import (
	"context"
	"sync"
	"testing"

	"repro/internal/scanner"
	"repro/internal/world"
)

var (
	benchOnce sync.Once
	benchRaw  []scanner.Result
)

func benchResults(b *testing.B) []scanner.Result {
	b.Helper()
	benchOnce.Do(func() {
		w := world.MustBuild(world.TestConfig())
		s := scanner.New(w.Net, w.DNS, w.Class,
			scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
		benchRaw = s.ScanAll(context.Background(), w.GovHosts)
	})
	return benchRaw
}

// BenchmarkCellsBump isolates the satellite micro-fix: the key/signature
// validity cells used to be bumped through per-result string labels — a
// Sprintf-built key label, an algorithm String(), a label concatenation,
// and three string-map lookups for every chain-bearing result. The
// replacement interns on numeric identities (the (type,bits) pair, the
// algorithm enum, the pair of cell positions) and materializes each label
// once per distinct key shape.
func BenchmarkCellsBump(b *testing.B) {
	rs := benchResults(b)

	b.Run("legacy-label-maps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			byLabel := map[string]int{}
			var order []Cell
			bump := func(label string, valid bool) {
				p, ok := byLabel[label]
				if !ok {
					p = len(order)
					byLabel[label] = p
					order = append(order, Cell{Label: label})
				}
				order[p].Total++
				if valid {
					order[p].Valid++
				}
			}
			for j := range rs {
				if len(rs[j].Chain) == 0 {
					continue
				}
				leaf := rs[j].Chain[0]
				valid := rs[j].Verify.Valid()
				key := leaf.PublicKey.Label()
				alg := leaf.SignatureAlgorithm.String()
				bump(key, valid)
				bump(alg, valid)
				bump(key+" / "+alg, valid)
			}
			if len(order) == 0 {
				b.Fatal("no cells")
			}
		}
	})

	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hkPos := make(map[uint64]int32, 8)
			combPos := make(map[uint64]int32, 16)
			var sigPos densePos
			var hostKey, sigAlgo, combined []Cell
			for j := range rs {
				if len(rs[j].Chain) == 0 {
					continue
				}
				leaf := rs[j].Chain[0]
				valid := rs[j].Verify.Valid()
				hk := uint64(leaf.PublicKey.Type)<<32 | uint64(uint32(leaf.PublicKey.Bits))
				hp, seen := hkPos[hk]
				if !seen {
					hp = int32(len(hostKey))
					hkPos[hk] = hp
					hostKey = append(hostKey, Cell{Label: leaf.PublicKey.Label()})
				}
				bumpCell(&hostKey[hp], valid)
				sp := sigPos.lookup(int(leaf.SignatureAlgorithm))
				if sp < 0 {
					sp = int32(len(sigAlgo))
					sigPos.insert(int(leaf.SignatureAlgorithm), sp)
					sigAlgo = append(sigAlgo, Cell{Label: leaf.SignatureAlgorithm.String()})
				}
				bumpCell(&sigAlgo[sp], valid)
				ck := uint64(hp)<<32 | uint64(sp)
				cp, seen := combPos[ck]
				if !seen {
					cp = int32(len(combined))
					combPos[ck] = cp
					combined = append(combined, Cell{Label: hostKey[hp].Label + " / " + sigAlgo[sp].Label})
				}
				bumpCell(&combined[cp], valid)
			}
			if len(combined) == 0 {
				b.Fatal("no cells")
			}
		}
	})
}
