// Package resultset wraps a scan's results with indexes built in one
// deterministic pass: by Table 2 category and exception kind, by country,
// by issuing CA, by certificate fingerprint and key identity, by hosting
// provider and kind, and by top-list rank bucket — plus the cheap derived
// counts (the Table 2 tallies, key/signature/version cells) every
// experiment used to recompute with its own loop over the raw slice.
//
// A Set is built in one shot with New, incrementally by feeding a Builder
// and finalizing with Build, or — the preferred entry point at scale —
// sharded with ScanSharded: the host list is partitioned contiguously
// (scanner.Partition), each shard scans and builds its own Set with no
// cross-shard locks, and Merge recombines the per-shard indexes
// bit-identically to a sequential build. Once built, a Set is immutable:
// every analysis, report and disclosure pass serves itself from the same
// indexes, so the corpus is walked exactly once no matter how many tables
// and figures are derived from it.
//
// The build itself is two-pass: pass A walks the results once, interning
// every index key to a dense id and counting bucket cardinalities; pass B
// fills exact-size flat []int bucket arrays from the recorded ids. No
// bucket is grown incrementally and no per-result map insert happens on
// the category/exception hot path.
//
// Determinism contract: results are added in scan input order, every
// index bucket stores ascending result indices, and every key list
// (Countries, Issuers, Providers, ...) has a defined order — sorted for
// countries, first-seen for the rest. Nothing in this package iterates a
// map (enforced by govlint's maprange analyzer).
package resultset

import (
	"io"
	"sort"
	"sync"

	"repro/internal/cert"
	"repro/internal/hosting"
	"repro/internal/scanner"
	"repro/internal/stats"
)

// Options configures the index build.
type Options struct {
	// CountryOf attributes a hostname to a country; hosts mapping to ""
	// are left out of the country index. Nil disables the country index.
	CountryOf func(hostname string) string
	// RankOf reports a hostname's public-top-list rank, when it has one.
	// Nil disables the rank-bucket index.
	RankOf func(hostname string) (int, bool)
	// RankBuckets is the number of equal-width rank buckets (Figure 7
	// uses 50); RankMax is the highest rank on the list. Both must be
	// positive for the rank index to build.
	RankBuckets int
	RankMax     int
	// SizeHint pre-sizes the result slice and host index.
	SizeHint int
}

// Counts carries the Table 2 tallies derived during the build pass.
type Counts struct {
	// Total counts available hosts (the paper's "websites considered").
	Total       int
	Unavailable int
	HTTPOnly    int
	HTTPS       int
	Valid       int
	Invalid     int
	// Exceptions totals the exception block of the invalid categories.
	Exceptions int
	// BothSchemes counts hosts serving full content on http and https.
	BothSchemes int
	// HSTS counts valid hosts sending Strict-Transport-Security.
	HSTS int
}

// Cell is one label's aggregate: hosts carrying the label and how many of
// them validate (the bars of Figures 4/9/12 and the version table).
type Cell struct {
	Label string
	Total int
	Valid int
}

// CountryAgg is one country's availability/https/validity tally.
type CountryAgg struct {
	Country   string
	Hosts     int
	Available int
	HTTPS     int
	Valid     int
}

// Set is an immutable scan corpus plus its indexes. Accessors return
// internal slices; callers must treat them as read-only.
type Set struct {
	opts    Options
	results []scanner.Result

	// byHost is built lazily on first Lookup: the host index is off the
	// aggregation hot path and a per-result string map insert is the
	// single most expensive step of an eager build.
	hostOnce sync.Once
	byHost   map[string]int

	counts Counts

	categories []scanner.Category // first-seen
	byCategory map[scanner.Category][]int

	exceptions  []scanner.Exception // first-seen, ExcNone excluded
	byException map[scanner.Exception][]int

	countries []string // sorted at build
	byCountry map[string][]int
	ccAggs    map[string]CountryAgg

	issuers  []string // first-seen; leaf issuer CN, "" excluded
	byIssuer map[string][]int

	fingerprints  [][32]byte // first-seen
	byFingerprint map[[32]byte][]int

	keyIDs  []cert.KeyID // first-seen
	byKeyID map[cert.KeyID][]int

	providers  []string // first-seen
	byProvider map[string][]int
	kinds      []hosting.Kind // first-seen; keeps byKind mergeable without a map range
	byKind     map[hosting.Kind][]int

	chained        []int    // indices with a retrieved chain
	invalidHosts   []string // hostnames measured invalid https, input order
	failedUpgrades []int    // valid https but full content still on http

	ranked      []int
	rankBuckets [][]int

	hostKeyCells  []Cell
	sigAlgoCells  []Cell
	combinedCells []Cell
	versionCells  []Cell
	weakSigHosts  int
	smallRSAHosts int
	issuerDomain  int // chain-bearing results with a non-empty issuer CN
}

// Builder accumulates results into a Set. Add must be called from a
// single goroutine, in scan input order; distinct Builders are fully
// independent, so per-shard builders need no locking. Build finalizes
// and the Builder must not be reused.
type Builder struct {
	opts    Options
	results []scanner.Result
}

// NewBuilder starts an index build.
func NewBuilder(opts Options) *Builder {
	hint := opts.SizeHint
	if hint < 0 {
		hint = 0
	}
	return &Builder{opts: opts, results: make([]scanner.Result, 0, hint)}
}

// newShardBuilder starts a build whose results land in buf (a zero-length
// slice with capacity for the whole shard), letting sharded scans append
// into one shared backing array and merge without copying results.
func newShardBuilder(opts Options, buf []scanner.Result) *Builder {
	return &Builder{opts: opts, results: buf}
}

// New builds a Set from an already-collected result slice (the slice is
// retained; the caller must not mutate it afterwards).
func New(results []scanner.Result, opts Options) *Set {
	return build(results, opts)
}

// Add records one result. Indexing is deferred to Build.
func (b *Builder) Add(r scanner.Result) {
	b.results = append(b.results, r)
}

// Build finalizes the Set; the Builder must not be reused.
func (b *Builder) Build() *Set {
	s := build(b.results, b.opts)
	b.results = nil
	return s
}

// densePos maps a small non-negative integer key (an enum value) to its
// first-seen position. Zero means unseen; stored values are position+1.
type densePos struct{ pos []int32 }

func (d *densePos) lookup(key int) int32 {
	if key < len(d.pos) {
		return d.pos[key] - 1
	}
	return -1
}

func (d *densePos) insert(key int, p int32) {
	for key >= len(d.pos) {
		d.pos = append(d.pos, 0)
	}
	d.pos[key] = p + 1
}

// flatIndex is a family of buckets stored as subslices of one exact-size
// flat array, filled through per-bucket cursors.
type flatIndex struct {
	flat  []int
	start []int // len(counts)+1; bucket p is flat[start[p]:start[p+1]]
	cur   []int
}

func newFlatIndex(counts []int32) *flatIndex {
	f := &flatIndex{start: make([]int, len(counts)+1), cur: make([]int, len(counts))}
	total := 0
	for p, c := range counts {
		f.start[p] = total
		f.cur[p] = total
		total += int(c)
	}
	f.start[len(counts)] = total
	f.flat = make([]int, total)
	return f
}

func (f *flatIndex) put(p int32, i int) {
	c := f.cur[p]
	f.flat[c] = i
	f.cur[p] = c + 1
}

func (f *flatIndex) bucket(p int) []int {
	lo, hi := f.start[p], f.start[p+1]
	return f.flat[lo:hi:hi]
}

// Per-result flag bits recorded during pass A.
const (
	flagInvalid = 1 << iota
	flagFailedUpgrade
	flagRanked
)

const excNonePos = 255 // excP sentinel: result carries no exception

// build runs the two-pass index construction over a complete result
// slice. Pass A walks the results once, interning every index key to a
// dense first-seen position (recorded in per-result scratch arrays) and
// counting bucket cardinalities; pass B allocates each bucket family as
// one exact-size flat array and fills it from the scratch ids. The
// resulting orders and bucket contents are identical to the former
// incremental build — first occurrence in input order decides key order,
// and ascending walk order decides bucket order.
func build(results []scanner.Result, opts Options) *Set {
	n := len(results)
	s := &Set{opts: opts, results: results}

	// Per-result scratch: the dense position of each key the result
	// contributes to, or a negative/sentinel value when it doesn't.
	catP := make([]uint8, n)
	excP := make([]uint8, n)
	ccP := make([]int32, n)
	provP := make([]int32, n)
	kindP := make([]int8, n)
	fpP := make([]int32, n)
	kidP := make([]int32, n)
	issP := make([]int32, n)
	rankB := make([]int16, n)
	flags := make([]uint8, n)

	// Key interning state, first-seen order, and per-bucket counts.
	var catPos, excPos, kindPos, sigPos, verPos densePos
	var catCount, excCount, kindCount, ccCount, provCount, issCount, fpCount, kidCount []int32
	var rbCount []int32

	ccPos := make(map[string]int32, 64)
	var ccAgg []CountryAgg
	provPos := make(map[string]int32, 16)
	issPos := make(map[string]int32, 64)
	fpPos := make(map[[32]byte]int32, n/2)
	kidPos := make(map[cert.KeyID]int32, n/2)
	hkPos := make(map[uint64]int32, 8)
	combPos := make(map[uint64]int32, 16)

	rankEnabled := opts.RankOf != nil && opts.RankBuckets > 0 && opts.RankMax > 0
	if rankEnabled {
		rbCount = make([]int32, opts.RankBuckets)
	}

	chainedN, invalidN, failedN, rankedN := 0, 0, 0, 0

	for i := range results {
		r := &results[i]

		cat := r.Category()
		p := catPos.lookup(int(cat))
		if p < 0 {
			p = int32(len(s.categories))
			catPos.insert(int(cat), p)
			s.categories = append(s.categories, cat)
			catCount = append(catCount, 0)
		}
		catP[i] = uint8(p)
		catCount[p]++
		s.tally(r, cat)

		excP[i] = excNonePos
		if e := r.Exception; e != scanner.ExcNone {
			p := excPos.lookup(int(e))
			if p < 0 {
				p = int32(len(s.exceptions))
				excPos.insert(int(e), p)
				s.exceptions = append(s.exceptions, e)
				excCount = append(excCount, 0)
			}
			excP[i] = uint8(p)
			excCount[p]++
		}

		ccP[i] = -1
		if opts.CountryOf != nil {
			if cc := opts.CountryOf(r.Hostname); cc != "" {
				p, seen := ccPos[cc]
				if !seen {
					p = int32(len(s.countries))
					ccPos[cc] = p
					s.countries = append(s.countries, cc)
					ccCount = append(ccCount, 0)
					ccAgg = append(ccAgg, CountryAgg{Country: cc})
				}
				ccP[i] = p
				ccCount[p]++
				agg := &ccAgg[p]
				agg.Hosts++
				if r.Available {
					agg.Available++
					if r.HasHTTPS() {
						agg.HTTPS++
					}
					if r.ValidHTTPS() {
						agg.Valid++
					}
				}
			}
		}

		provP[i], kindP[i] = -1, -1
		if r.Available {
			p, seen := provPos[r.Provider]
			if !seen {
				p = int32(len(s.providers))
				provPos[r.Provider] = p
				s.providers = append(s.providers, r.Provider)
				provCount = append(provCount, 0)
			}
			provP[i] = p
			provCount[p]++

			kp := kindPos.lookup(int(r.HostKind))
			if kp < 0 {
				kp = int32(len(s.kinds))
				kindPos.insert(int(r.HostKind), kp)
				s.kinds = append(s.kinds, r.HostKind)
				kindCount = append(kindCount, 0)
			}
			kindP[i] = int8(kp)
			kindCount[kp]++
		}

		var f uint8
		if cat.IsInvalidHTTPS() {
			f |= flagInvalid
			invalidN++
		}
		if r.ServesHTTP && r.ServesHTTPS && r.ValidHTTPS() {
			f |= flagFailedUpgrade
			failedN++
		}

		if r.HasHTTPS() {
			// Version cells are keyed by the numeric protocol version
			// (key 0 is the no-handshake sentinel); the label string is
			// materialized once per distinct version, not per result.
			key, valid := 0, false
			if len(r.Chain) > 0 {
				key = int(r.TLSVersion) + 1
				valid = r.Verify.Valid()
			}
			vp := verPos.lookup(key)
			if vp < 0 {
				vp = int32(len(s.versionCells))
				verPos.insert(key, vp)
				label := "(no handshake)"
				if key != 0 {
					label = r.TLSVersion.String()
				}
				s.versionCells = append(s.versionCells, Cell{Label: label})
			}
			cell := &s.versionCells[vp]
			cell.Total++
			if valid {
				cell.Valid++
			}
		}

		fpP[i], kidP[i], issP[i] = -1, -1, -1
		if len(r.Chain) > 0 {
			chainedN++
			leaf := r.Chain[0]

			fp := leaf.Fingerprint()
			p, seen := fpPos[fp]
			if !seen {
				p = int32(len(s.fingerprints))
				fpPos[fp] = p
				s.fingerprints = append(s.fingerprints, fp)
				fpCount = append(fpCount, 0)
			}
			fpP[i] = p
			fpCount[p]++

			id := leaf.PublicKey.ID
			p, seen = kidPos[id]
			if !seen {
				p = int32(len(s.keyIDs))
				kidPos[id] = p
				s.keyIDs = append(s.keyIDs, id)
				kidCount = append(kidCount, 0)
			}
			kidP[i] = p
			kidCount[p]++

			if cn := leaf.Issuer.CommonName; cn != "" {
				s.issuerDomain++
				p, seen := issPos[cn]
				if !seen {
					p = int32(len(s.issuers))
					issPos[cn] = p
					s.issuers = append(s.issuers, cn)
					issCount = append(issCount, 0)
				}
				issP[i] = p
				issCount[p]++
			}

			// Key/signature cells intern on numeric identities — the
			// (type,bits) pair, the algorithm enum, and the pair of cell
			// positions — so the Sprintf-built labels are produced once
			// per distinct key shape instead of once per result.
			valid := r.Verify.Valid()
			hk := uint64(leaf.PublicKey.Type)<<32 | uint64(uint32(leaf.PublicKey.Bits))
			hp, seen := hkPos[hk]
			if !seen {
				hp = int32(len(s.hostKeyCells))
				hkPos[hk] = hp
				s.hostKeyCells = append(s.hostKeyCells, Cell{Label: leaf.PublicKey.Label()})
			}
			bumpCell(&s.hostKeyCells[hp], valid)

			sp := sigPos.lookup(int(leaf.SignatureAlgorithm))
			if sp < 0 {
				sp = int32(len(s.sigAlgoCells))
				sigPos.insert(int(leaf.SignatureAlgorithm), sp)
				s.sigAlgoCells = append(s.sigAlgoCells, Cell{Label: leaf.SignatureAlgorithm.String()})
			}
			bumpCell(&s.sigAlgoCells[sp], valid)

			ck := uint64(hp)<<32 | uint64(sp)
			cp, seen := combPos[ck]
			if !seen {
				cp = int32(len(s.combinedCells))
				combPos[ck] = cp
				s.combinedCells = append(s.combinedCells, Cell{
					//lint:allow hotalloc runs once per distinct key/sig combination (a few dozen), not per result
					Label: s.hostKeyCells[hp].Label + " / " + s.sigAlgoCells[sp].Label,
				})
			}
			bumpCell(&s.combinedCells[cp], valid)

			if leaf.SignatureAlgorithm.IsWeak() {
				s.weakSigHosts++
			}
			if leaf.PublicKey.Type == cert.KeyRSA && leaf.PublicKey.Bits < 2048 {
				s.smallRSAHosts++
			}
		}

		rankB[i] = -1
		if rankEnabled {
			if rank, ok := opts.RankOf(r.Hostname); ok {
				f |= flagRanked
				rankedN++
				if bkt, ok := rankBucket(rank, opts); ok {
					rankB[i] = int16(bkt)
					rbCount[bkt]++
				}
			}
		}
		flags[i] = f
	}

	// Pass B: exact-size flat buckets, filled in ascending result order.
	catIdx := newFlatIndex(catCount)
	excIdx := newFlatIndex(excCount)
	ccIdx := newFlatIndex(ccCount)
	provIdx := newFlatIndex(provCount)
	kindIdx := newFlatIndex(kindCount)
	fpIdx := newFlatIndex(fpCount)
	kidIdx := newFlatIndex(kidCount)
	issIdx := newFlatIndex(issCount)
	var rbIdx *flatIndex
	if rankEnabled {
		rbIdx = newFlatIndex(rbCount)
	}

	s.chained = make([]int, 0, chainedN)
	s.invalidHosts = make([]string, 0, invalidN)
	s.failedUpgrades = make([]int, 0, failedN)
	s.ranked = make([]int, 0, rankedN)

	for i := 0; i < n; i++ {
		catIdx.put(int32(catP[i]), i)
		if p := excP[i]; p != excNonePos {
			excIdx.put(int32(p), i)
		}
		if p := ccP[i]; p >= 0 {
			ccIdx.put(p, i)
		}
		if p := provP[i]; p >= 0 {
			provIdx.put(p, i)
			kindIdx.put(int32(kindP[i]), i)
		}
		if p := fpP[i]; p >= 0 {
			fpIdx.put(p, i)
			kidIdx.put(kidP[i], i)
			s.chained = append(s.chained, i)
			if ip := issP[i]; ip >= 0 {
				issIdx.put(ip, i)
			}
		}
		f := flags[i]
		if f&flagInvalid != 0 {
			s.invalidHosts = append(s.invalidHosts, results[i].Hostname)
		}
		if f&flagFailedUpgrade != 0 {
			s.failedUpgrades = append(s.failedUpgrades, i)
		}
		if f&flagRanked != 0 {
			s.ranked = append(s.ranked, i)
			if b := rankB[i]; b >= 0 {
				rbIdx.put(int32(b), i)
			}
		}
	}

	// Materialize the public maps as subslices of the flat arrays.
	s.byCategory = make(map[scanner.Category][]int, len(s.categories))
	for p, cat := range s.categories {
		s.byCategory[cat] = catIdx.bucket(p)
	}
	s.byException = make(map[scanner.Exception][]int, len(s.exceptions))
	for p, e := range s.exceptions {
		s.byException[e] = excIdx.bucket(p)
	}
	s.byCountry = make(map[string][]int, len(s.countries))
	s.ccAggs = make(map[string]CountryAgg, len(s.countries))
	for p, cc := range s.countries {
		s.byCountry[cc] = ccIdx.bucket(p)
		s.ccAggs[cc] = ccAgg[p]
	}
	sort.Strings(s.countries)
	s.byProvider = make(map[string][]int, len(s.providers))
	for p, prov := range s.providers {
		s.byProvider[prov] = provIdx.bucket(p)
	}
	s.byKind = make(map[hosting.Kind][]int, len(s.kinds))
	for p, k := range s.kinds {
		s.byKind[k] = kindIdx.bucket(p)
	}
	s.byFingerprint = make(map[[32]byte][]int, len(s.fingerprints))
	for p, fp := range s.fingerprints {
		s.byFingerprint[fp] = fpIdx.bucket(p)
	}
	s.byKeyID = make(map[cert.KeyID][]int, len(s.keyIDs))
	for p, id := range s.keyIDs {
		s.byKeyID[id] = kidIdx.bucket(p)
	}
	s.byIssuer = make(map[string][]int, len(s.issuers))
	for p, cn := range s.issuers {
		s.byIssuer[cn] = issIdx.bucket(p)
	}
	if rankEnabled {
		s.rankBuckets = make([][]int, opts.RankBuckets)
		for b := range s.rankBuckets {
			if rbCount[b] > 0 {
				s.rankBuckets[b] = rbIdx.bucket(b)
			}
		}
	}
	return s
}

func bumpCell(c *Cell, valid bool) {
	c.Total++
	if valid {
		c.Valid++
	}
}

// tally updates the Table 2 counts, mirroring the taxonomy walk the
// analysis layer used to run per experiment.
func (s *Set) tally(r *scanner.Result, cat scanner.Category) {
	c := &s.counts
	if cat == scanner.CatUnavailable {
		c.Unavailable++
		return
	}
	c.Total++
	switch {
	case cat == scanner.CatHTTPOnly:
		c.HTTPOnly++
		return
	case cat == scanner.CatValid:
		c.HTTPS++
		c.Valid++
		if r.HSTS {
			c.HSTS++
		}
	default:
		c.HTTPS++
		c.Invalid++
		if cat.IsException() {
			c.Exceptions++
		}
	}
	if r.ServesHTTP && r.ServesHTTPS {
		c.BothSchemes++
	}
}

// rankBucket maps a rank onto its Figure 7 bucket via stats.BucketIndex
// over [1, RankMax+1), so bucket membership matches the binned rates bit
// for bit.
func rankBucket(rank int, opts Options) (int, bool) {
	return stats.BucketIndex(float64(rank), 1, float64(opts.RankMax)+1, opts.RankBuckets)
}

// --- accessors ---

// Len returns the number of results.
func (s *Set) Len() int { return len(s.results) }

// Results returns the underlying results in scan input order (read-only).
func (s *Set) Results() []scanner.Result { return s.results }

// WriteJSONL streams the set's results as JSON lines through the zero-copy
// exporter, in scan input order.
func (s *Set) WriteJSONL(w io.Writer) error { return scanner.WriteJSONL(w, s.results) }

// At returns the i-th result.
func (s *Set) At(i int) *scanner.Result { return &s.results[i] }

// Lookup finds a hostname's result. The host index is built lazily on
// first use (and is safe for concurrent lookups).
func (s *Set) Lookup(hostname string) (*scanner.Result, bool) {
	s.hostOnce.Do(s.buildHostIndex)
	i, ok := s.byHost[hostname]
	if !ok {
		return nil, false
	}
	return &s.results[i], true
}

func (s *Set) buildHostIndex() {
	m := make(map[string]int, len(s.results))
	for i := range s.results {
		m[s.results[i].Hostname] = i
	}
	s.byHost = m
}

// CountryOf attributes a hostname using the builder's attribution
// function ("" when none was configured).
func (s *Set) CountryOf(hostname string) string {
	if s.opts.CountryOf == nil {
		return ""
	}
	return s.opts.CountryOf(hostname)
}

// Counts returns the Table 2 tallies.
func (s *Set) Counts() Counts { return s.counts }

// CategoryCount returns the number of results in one Table 2 category.
func (s *Set) CategoryCount(cat scanner.Category) int { return len(s.byCategory[cat]) }

// Categories lists the categories present, in first-seen order.
func (s *Set) Categories() []scanner.Category { return s.categories }

// ByCategory returns the result indices in one category.
func (s *Set) ByCategory(cat scanner.Category) []int { return s.byCategory[cat] }

// Exceptions lists the exception kinds present (ExcNone excluded), in
// first-seen order.
func (s *Set) Exceptions() []scanner.Exception { return s.exceptions }

// ByException returns the result indices carrying one exception kind.
func (s *Set) ByException(e scanner.Exception) []int { return s.byException[e] }

// Countries lists the countries present, sorted.
func (s *Set) Countries() []string { return s.countries }

// ByCountry returns the result indices attributed to one country.
func (s *Set) ByCountry(cc string) []int { return s.byCountry[cc] }

// CountryAggs returns per-country availability tallies, sorted by country.
func (s *Set) CountryAggs() []CountryAgg {
	out := make([]CountryAgg, len(s.countries))
	for i, cc := range s.countries {
		out[i] = s.ccAggs[cc]
	}
	return out
}

// Issuers lists the issuing-CA common names present, in first-seen order
// (certificates without issuer information are not indexed).
func (s *Set) Issuers() []string { return s.issuers }

// ByIssuer returns the chain-bearing result indices for one issuer CN.
func (s *Set) ByIssuer(cn string) []int { return s.byIssuer[cn] }

// IssuerAnalyzed counts chain-bearing results with issuer information —
// the denominator of the EV statistics.
func (s *Set) IssuerAnalyzed() int { return s.issuerDomain }

// Fingerprints lists the distinct leaf-certificate fingerprints, in
// first-seen order.
func (s *Set) Fingerprints() [][32]byte { return s.fingerprints }

// ByFingerprint returns the result indices serving one exact certificate.
func (s *Set) ByFingerprint(fp [32]byte) []int { return s.byFingerprint[fp] }

// KeyIDs lists the distinct leaf public-key identities, in first-seen
// order.
func (s *Set) KeyIDs() []cert.KeyID { return s.keyIDs }

// ByKeyID returns the result indices serving one public key.
func (s *Set) ByKeyID(id cert.KeyID) []int { return s.byKeyID[id] }

// Providers lists the hosting providers of available hosts, first-seen.
func (s *Set) Providers() []string { return s.providers }

// ByProvider returns the available result indices on one provider.
func (s *Set) ByProvider(p string) []int { return s.byProvider[p] }

// ByKind returns the available result indices in one hosting kind.
func (s *Set) ByKind(k hosting.Kind) []int { return s.byKind[k] }

// Chained returns the indices of results with a retrieved chain.
func (s *Set) Chained() []int { return s.chained }

// InvalidHosts lists hostnames measured invalid https, in input order.
func (s *Set) InvalidHosts() []string { return s.invalidHosts }

// FailedUpgrades returns the indices of hosts with valid https that still
// serve full content over plain http without an upgrade (§5.1).
func (s *Set) FailedUpgrades() []int { return s.failedUpgrades }

// Ranked returns the indices of results carrying a top-list rank.
func (s *Set) Ranked() []int { return s.ranked }

// RankBuckets returns the rank-bucket index (nil when no ranker was
// configured): bucket b holds the indices of ranked results in the b-th
// equal-width bucket over [1, RankMax].
func (s *Set) RankBuckets() [][]int { return s.rankBuckets }

// RankOf reports a hostname's rank via the builder's ranker.
func (s *Set) RankOf(hostname string) (int, bool) {
	if s.opts.RankOf == nil {
		return 0, false
	}
	return s.opts.RankOf(hostname)
}

// HostKeyCells returns per-host-key-type validity cells (first-seen).
func (s *Set) HostKeyCells() []Cell { return s.hostKeyCells }

// SigAlgoCells returns per-signing-algorithm validity cells (first-seen).
func (s *Set) SigAlgoCells() []Cell { return s.sigAlgoCells }

// CombinedCells returns key-type × signing-algorithm cells (first-seen).
func (s *Set) CombinedCells() []Cell { return s.combinedCells }

// VersionCells returns per-negotiated-TLS-version cells over hosts that
// attempt https, with "(no handshake)" for protocol-layer failures.
func (s *Set) VersionCells() []Cell { return s.versionCells }

// WeakSignatureHosts counts hosts whose leaf is signed with MD5 or SHA1.
func (s *Set) WeakSignatureHosts() int { return s.weakSigHosts }

// SmallRSAHosts counts hosts with RSA keys below 2048 bits.
func (s *Set) SmallRSAHosts() int { return s.smallRSAHosts }
