// Package resultset wraps a scan's results with indexes built in one
// deterministic pass: by Table 2 category and exception kind, by country,
// by issuing CA, by certificate fingerprint and key identity, by hosting
// provider and kind, and by top-list rank bucket — plus the cheap derived
// counts (the Table 2 tallies, key/signature/version cells) every
// experiment used to recompute with its own loop over the raw slice.
//
// A Set is built in one shot with New, incrementally by feeding a Builder
// and finalizing with Build, or — the preferred entry point at scale —
// sharded with ScanSharded: the host list is partitioned contiguously
// (scanner.Partition), each shard scans and builds its own Set with no
// cross-shard locks, and Merge recombines the per-shard indexes
// bit-identically to a sequential build. Once built, a Set is immutable:
// every analysis, report and disclosure pass serves itself from the same
// indexes, so the corpus is walked exactly once no matter how many tables
// and figures are derived from it.
//
// The build itself is two-pass: pass A walks the results once, interning
// every index key to a dense id and counting bucket cardinalities; pass B
// fills exact-size flat []int bucket arrays from the recorded ids. No
// bucket is grown incrementally and no per-result map insert happens on
// the category/exception hot path.
//
// Determinism contract: results are added in scan input order, every
// index bucket stores ascending result indices, and every key list
// (Countries, Issuers, Providers, ...) has a defined order — sorted for
// countries, first-seen for the rest. Nothing in this package iterates a
// map (enforced by govlint's maprange analyzer).
package resultset

import (
	"io"
	"sort"
	"sync"

	"repro/internal/cert"
	"repro/internal/hosting"
	"repro/internal/scanner"
	"repro/internal/stats"
)

// Options configures the index build.
type Options struct {
	// CountryOf attributes a hostname to a country; hosts mapping to ""
	// are left out of the country index. Nil disables the country index.
	CountryOf func(hostname string) string
	// RankOf reports a hostname's public-top-list rank, when it has one.
	// Nil disables the rank-bucket index.
	RankOf func(hostname string) (int, bool)
	// RankBuckets is the number of equal-width rank buckets (Figure 7
	// uses 50); RankMax is the highest rank on the list. Both must be
	// positive for the rank index to build.
	RankBuckets int
	RankMax     int
	// SizeHint pre-sizes the result slice and host index.
	SizeHint int
}

// Counts carries the Table 2 tallies derived during the build pass.
type Counts struct {
	// Total counts available hosts (the paper's "websites considered").
	Total       int
	Unavailable int
	HTTPOnly    int
	HTTPS       int
	Valid       int
	Invalid     int
	// Exceptions totals the exception block of the invalid categories.
	Exceptions int
	// BothSchemes counts hosts serving full content on http and https.
	BothSchemes int
	// HSTS counts valid hosts sending Strict-Transport-Security.
	HSTS int
}

// Cell is one label's aggregate: hosts carrying the label and how many of
// them validate (the bars of Figures 4/9/12 and the version table).
type Cell struct {
	Label string
	Total int
	Valid int
}

// CountryAgg is one country's availability/https/validity tally.
type CountryAgg struct {
	Country   string
	Hosts     int
	Available int
	HTTPS     int
	Valid     int
}

// Set is an immutable scan corpus plus its indexes. Accessors return
// internal slices; callers must treat them as read-only.
type Set struct {
	opts    Options
	results []scanner.Result

	// overlay, when non-nil, marks this Set as an unmaterialized delta
	// generation: its rows are the backing slice in results — shared
	// with the base generation, never written — with overlay's entries
	// substituted (pointers into the generation's own changed-row slab,
	// immutable once installed). Kept small relative to the corpus by
	// ApplyDelta's compaction, so per-row access stays one map probe.
	overlay map[int]*scanner.Result
	// flat caches the contiguous patched slice for Results/WriteJSONL,
	// built on first use — a delta generation pays the O(corpus) copy
	// only if something actually asks for the flat view.
	flatOnce sync.Once
	flat     []scanner.Result

	// byHost is built lazily on first Lookup: the host index is off the
	// aggregation hot path and a per-result string map insert is the
	// single most expensive step of an eager build.
	hostOnce sync.Once
	byHost   map[string]int

	counts Counts

	// Bucket families: a shared intern table (key → slot) plus this
	// generation's slot-indexed buckets. Key order (first-seen, except
	// countries which sort) is carried alongside and re-derived lazily
	// after a delta. See intern.go.
	catIdx  index[scanner.Category]
	excIdx  index[scanner.Exception] // ExcNone excluded
	ccIdx   index[string]
	provIdx index[string]       // available hosts only
	kindIdx index[hosting.Kind] // available hosts only
	fpIdx   index[[32]byte]
	kidIdx  index[cert.KeyID]
	issIdx  index[string] // leaf issuer CN, "" excluded

	countries []string // sorted at build
	ccAggs    map[string]CountryAgg

	chained        []int    // indices with a retrieved chain
	invalidIdx     []int    // indices measured invalid https, ascending
	invalidHosts   []string // hostnames of invalidIdx, same order
	failedUpgrades []int    // valid https but full content still on http

	ranked      []int
	rankBuckets [][]int

	hostKeyIdx  cellIndex[uint64] // (type,bits) numeric identity
	sigAlgoIdx  cellIndex[int]    // signature algorithm enum
	combinedIdx cellIndex[combKey]
	versionIdx  cellIndex[int] // version+1; 0 = no-handshake sentinel

	weakSigHosts  int
	smallRSAHosts int
	issuerDomain  int // chain-bearing results with a non-empty issuer CN
}

// combKey is the value identity of one key-type × signing-algorithm
// cell — stable across shards and delta generations, unlike the
// per-build cell positions.
type combKey struct {
	hk  uint64
	sig int32
}

// Builder accumulates results into a Set. Add must be called from a
// single goroutine, in scan input order; distinct Builders are fully
// independent, so per-shard builders need no locking. Build finalizes
// and the Builder must not be reused.
type Builder struct {
	opts    Options
	results []scanner.Result
}

// NewBuilder starts an index build.
func NewBuilder(opts Options) *Builder {
	hint := opts.SizeHint
	if hint < 0 {
		hint = 0
	}
	return &Builder{opts: opts, results: make([]scanner.Result, 0, hint)}
}

// newShardBuilder starts a build whose results land in buf (a zero-length
// slice with capacity for the whole shard), letting sharded scans append
// into one shared backing array and merge without copying results.
func newShardBuilder(opts Options, buf []scanner.Result) *Builder {
	return &Builder{opts: opts, results: buf}
}

// New builds a Set from an already-collected result slice (the slice is
// retained; the caller must not mutate it afterwards).
func New(results []scanner.Result, opts Options) *Set {
	return build(results, opts)
}

// Add records one result. Indexing is deferred to Build.
func (b *Builder) Add(r scanner.Result) {
	b.results = append(b.results, r)
}

// Build finalizes the Set; the Builder must not be reused.
func (b *Builder) Build() *Set {
	s := build(b.results, b.opts)
	b.results = nil
	return s
}

// densePos maps a small non-negative integer key (an enum value) to its
// first-seen position. Zero means unseen; stored values are position+1.
type densePos struct{ pos []int32 }

func (d *densePos) lookup(key int) int32 {
	if key < len(d.pos) {
		return d.pos[key] - 1
	}
	return -1
}

func (d *densePos) insert(key int, p int32) {
	for key >= len(d.pos) {
		d.pos = append(d.pos, 0)
	}
	d.pos[key] = p + 1
}

// flatIndex is a family of buckets stored as subslices of one exact-size
// flat array, filled through per-bucket cursors.
type flatIndex struct {
	flat  []int
	start []int // len(counts)+1; bucket p is flat[start[p]:start[p+1]]
	cur   []int
}

func newFlatIndex(counts []int32) *flatIndex {
	f := &flatIndex{start: make([]int, len(counts)+1), cur: make([]int, len(counts))}
	total := 0
	for p, c := range counts {
		f.start[p] = total
		f.cur[p] = total
		total += int(c)
	}
	f.start[len(counts)] = total
	f.flat = make([]int, total)
	return f
}

func (f *flatIndex) put(p int32, i int) {
	c := f.cur[p]
	f.flat[c] = i
	f.cur[p] = c + 1
}

func (f *flatIndex) bucket(p int) []int {
	lo, hi := f.start[p], f.start[p+1]
	return f.flat[lo:hi:hi]
}

// Per-result flag bits recorded during pass A.
const (
	flagInvalid = 1 << iota
	flagFailedUpgrade
	flagRanked
)

const excNonePos = 255 // excP sentinel: result carries no exception

// build runs the two-pass index construction over a complete result
// slice. Pass A walks the results once, interning every index key to a
// dense first-seen position (recorded in per-result scratch arrays) and
// counting bucket cardinalities; pass B allocates each bucket family as
// one exact-size flat array and fills it from the scratch ids. The
// resulting orders and bucket contents are identical to the former
// incremental build — first occurrence in input order decides key order,
// and ascending walk order decides bucket order.
func build(results []scanner.Result, opts Options) *Set {
	n := len(results)
	s := &Set{opts: opts, results: results}

	// Per-result scratch: the dense position of each key the result
	// contributes to, or a negative/sentinel value when it doesn't.
	catP := make([]uint8, n)
	excP := make([]uint8, n)
	ccP := make([]int32, n)
	provP := make([]int32, n)
	kindP := make([]int8, n)
	fpP := make([]int32, n)
	kidP := make([]int32, n)
	issP := make([]int32, n)
	rankB := make([]int16, n)
	flags := make([]uint8, n)

	// Key interning state, first-seen order, and per-bucket counts.
	var catPos, excPos, kindPos, sigPos, verPos densePos
	var catCount, excCount, kindCount, ccCount, provCount, issCount, fpCount, kidCount []int32
	var rbCount []int32

	var cats []scanner.Category
	var excs []scanner.Exception
	var ccs, provs, isss []string
	var kinds []hosting.Kind
	var fps [][32]byte
	var kids []cert.KeyID

	ccPos := make(map[string]int32, 64)
	var ccAgg []CountryAgg
	provPos := make(map[string]int32, 16)
	issPos := make(map[string]int32, 64)
	fpPos := make(map[[32]byte]int32, n/2)
	kidPos := make(map[cert.KeyID]int32, n/2)
	hkPos := make(map[uint64]int32, 8)
	combPos := make(map[uint64]int32, 16)

	// Cell state: slot-ordered cells plus each cell's first contributing
	// result index and value key (what ApplyDelta and Merge rekey on).
	var hostKeyCells, sigAlgoCells, combinedCells, versionCells []Cell
	var hkFirst, sigFirst, combFirst, verFirst []int32
	var hkKeys []uint64
	var sigKeys, verKeys []int
	var combKeys []combKey

	rankEnabled := opts.RankOf != nil && opts.RankBuckets > 0 && opts.RankMax > 0
	if rankEnabled {
		rbCount = make([]int32, opts.RankBuckets)
	}

	chainedN, invalidN, failedN, rankedN := 0, 0, 0, 0

	for i := range results {
		r := &results[i]

		cat := r.Category()
		p := catPos.lookup(int(cat))
		if p < 0 {
			p = int32(len(cats))
			catPos.insert(int(cat), p)
			cats = append(cats, cat)
			catCount = append(catCount, 0)
		}
		catP[i] = uint8(p)
		catCount[p]++
		tallySigned(&s.counts, r, cat, 1)

		excP[i] = excNonePos
		if e := r.Exception; e != scanner.ExcNone {
			p := excPos.lookup(int(e))
			if p < 0 {
				p = int32(len(excs))
				excPos.insert(int(e), p)
				excs = append(excs, e)
				excCount = append(excCount, 0)
			}
			excP[i] = uint8(p)
			excCount[p]++
		}

		ccP[i] = -1
		if opts.CountryOf != nil {
			if cc := opts.CountryOf(r.Hostname); cc != "" {
				p, seen := ccPos[cc]
				if !seen {
					p = int32(len(ccs))
					ccPos[cc] = p
					ccs = append(ccs, cc)
					ccCount = append(ccCount, 0)
					ccAgg = append(ccAgg, CountryAgg{Country: cc})
				}
				ccP[i] = p
				ccCount[p]++
				agg := &ccAgg[p]
				agg.Hosts++
				if r.Available {
					agg.Available++
					if r.HasHTTPS() {
						agg.HTTPS++
					}
					if r.ValidHTTPS() {
						agg.Valid++
					}
				}
			}
		}

		provP[i], kindP[i] = -1, -1
		if r.Available {
			p, seen := provPos[r.Provider]
			if !seen {
				p = int32(len(provs))
				provPos[r.Provider] = p
				provs = append(provs, r.Provider)
				provCount = append(provCount, 0)
			}
			provP[i] = p
			provCount[p]++

			kp := kindPos.lookup(int(r.HostKind))
			if kp < 0 {
				kp = int32(len(kinds))
				kindPos.insert(int(r.HostKind), kp)
				kinds = append(kinds, r.HostKind)
				kindCount = append(kindCount, 0)
			}
			kindP[i] = int8(kp)
			kindCount[kp]++
		}

		var f uint8
		if cat.IsInvalidHTTPS() {
			f |= flagInvalid
			invalidN++
		}
		if r.ServesHTTP && r.ServesHTTPS && r.ValidHTTPS() {
			f |= flagFailedUpgrade
			failedN++
		}

		if r.HasHTTPS() {
			// Version cells are keyed by the numeric protocol version
			// (key 0 is the no-handshake sentinel); the label string is
			// materialized once per distinct version, not per result.
			key, valid := 0, false
			if len(r.Chain) > 0 {
				key = int(r.TLSVersion) + 1
				valid = r.Verify.Valid()
			}
			vp := verPos.lookup(key)
			if vp < 0 {
				vp = int32(len(versionCells))
				verPos.insert(key, vp)
				label := "(no handshake)"
				if key != 0 {
					label = r.TLSVersion.String()
				}
				versionCells = append(versionCells, Cell{Label: label})
				verKeys = append(verKeys, key)
				verFirst = append(verFirst, int32(i))
			}
			cell := &versionCells[vp]
			cell.Total++
			if valid {
				cell.Valid++
			}
		}

		fpP[i], kidP[i], issP[i] = -1, -1, -1
		if len(r.Chain) > 0 {
			chainedN++
			leaf := r.Chain[0]

			fp := leaf.Fingerprint()
			p, seen := fpPos[fp]
			if !seen {
				p = int32(len(fps))
				fpPos[fp] = p
				fps = append(fps, fp)
				fpCount = append(fpCount, 0)
			}
			fpP[i] = p
			fpCount[p]++

			id := leaf.PublicKey.ID
			p, seen = kidPos[id]
			if !seen {
				p = int32(len(kids))
				kidPos[id] = p
				kids = append(kids, id)
				kidCount = append(kidCount, 0)
			}
			kidP[i] = p
			kidCount[p]++

			if cn := leaf.Issuer.CommonName; cn != "" {
				s.issuerDomain++
				p, seen := issPos[cn]
				if !seen {
					p = int32(len(isss))
					issPos[cn] = p
					isss = append(isss, cn)
					issCount = append(issCount, 0)
				}
				issP[i] = p
				issCount[p]++
			}

			// Key/signature cells intern on numeric identities — the
			// (type,bits) pair, the algorithm enum, and the pair of cell
			// positions — so the Sprintf-built labels are produced once
			// per distinct key shape instead of once per result.
			valid := r.Verify.Valid()
			hk := uint64(leaf.PublicKey.Type)<<32 | uint64(uint32(leaf.PublicKey.Bits))
			hp, seen := hkPos[hk]
			if !seen {
				hp = int32(len(hostKeyCells))
				hkPos[hk] = hp
				hostKeyCells = append(hostKeyCells, Cell{Label: leaf.PublicKey.Label()})
				hkKeys = append(hkKeys, hk)
				hkFirst = append(hkFirst, int32(i))
			}
			bumpCell(&hostKeyCells[hp], valid)

			sp := sigPos.lookup(int(leaf.SignatureAlgorithm))
			if sp < 0 {
				sp = int32(len(sigAlgoCells))
				sigPos.insert(int(leaf.SignatureAlgorithm), sp)
				sigAlgoCells = append(sigAlgoCells, Cell{Label: leaf.SignatureAlgorithm.String()})
				sigKeys = append(sigKeys, int(leaf.SignatureAlgorithm))
				sigFirst = append(sigFirst, int32(i))
			}
			bumpCell(&sigAlgoCells[sp], valid)

			// The within-build intern key is the fast (hp,sp) slot pair;
			// the value key recorded for merge and delta is (hk, sig),
			// which is stable across shards and generations.
			ck := uint64(hp)<<32 | uint64(sp)
			cp, seen := combPos[ck]
			if !seen {
				cp = int32(len(combinedCells))
				combPos[ck] = cp
				combinedCells = append(combinedCells, Cell{
					//lint:allow hotalloc runs once per distinct key/sig combination (a few dozen), not per result
					Label: hostKeyCells[hp].Label + " / " + sigAlgoCells[sp].Label,
				})
				combKeys = append(combKeys, combKey{hk: hk, sig: int32(leaf.SignatureAlgorithm)})
				combFirst = append(combFirst, int32(i))
			}
			bumpCell(&combinedCells[cp], valid)

			if leaf.SignatureAlgorithm.IsWeak() {
				s.weakSigHosts++
			}
			if leaf.PublicKey.Type == cert.KeyRSA && leaf.PublicKey.Bits < 2048 {
				s.smallRSAHosts++
			}
		}

		rankB[i] = -1
		if rankEnabled {
			if rank, ok := opts.RankOf(r.Hostname); ok {
				f |= flagRanked
				rankedN++
				if bkt, ok := rankBucket(rank, opts); ok {
					rankB[i] = int16(bkt)
					rbCount[bkt]++
				}
			}
		}
		flags[i] = f
	}

	// Pass B: exact-size flat buckets, filled in ascending result order.
	catFlat := newFlatIndex(catCount)
	excFlat := newFlatIndex(excCount)
	ccFlat := newFlatIndex(ccCount)
	provFlat := newFlatIndex(provCount)
	kindFlat := newFlatIndex(kindCount)
	fpFlat := newFlatIndex(fpCount)
	kidFlat := newFlatIndex(kidCount)
	issFlat := newFlatIndex(issCount)
	var rbFlat *flatIndex
	if rankEnabled {
		rbFlat = newFlatIndex(rbCount)
	}

	s.chained = make([]int, 0, chainedN)
	s.invalidIdx = make([]int, 0, invalidN)
	s.invalidHosts = make([]string, 0, invalidN)
	s.failedUpgrades = make([]int, 0, failedN)
	s.ranked = make([]int, 0, rankedN)

	for i := 0; i < n; i++ {
		catFlat.put(int32(catP[i]), i)
		if p := excP[i]; p != excNonePos {
			excFlat.put(int32(p), i)
		}
		if p := ccP[i]; p >= 0 {
			ccFlat.put(p, i)
		}
		if p := provP[i]; p >= 0 {
			provFlat.put(p, i)
			kindFlat.put(int32(kindP[i]), i)
		}
		if p := fpP[i]; p >= 0 {
			fpFlat.put(p, i)
			kidFlat.put(kidP[i], i)
			s.chained = append(s.chained, i)
			if ip := issP[i]; ip >= 0 {
				issFlat.put(ip, i)
			}
		}
		f := flags[i]
		if f&flagInvalid != 0 {
			s.invalidIdx = append(s.invalidIdx, i)
			s.invalidHosts = append(s.invalidHosts, results[i].Hostname)
		}
		if f&flagFailedUpgrade != 0 {
			s.failedUpgrades = append(s.failedUpgrades, i)
		}
		if f&flagRanked != 0 {
			s.ranked = append(s.ranked, i)
			if b := rankB[i]; b >= 0 {
				rbFlat.put(int32(b), i)
			}
		}
	}

	// Wrap the flat arrays and interning maps into the index families.
	// The pass-A pos maps are adopted as the shared intern tables at no
	// extra cost; key slices double as the first-seen public orders.
	s.catIdx = builtIndex(cats, nil, catFlat)
	s.excIdx = builtIndex(excs, nil, excFlat)
	s.ccIdx = builtIndex(ccs, ccPos, ccFlat)
	s.provIdx = builtIndex(provs, provPos, provFlat)
	s.kindIdx = builtIndex(kinds, nil, kindFlat)
	s.fpIdx = builtIndex(fps, fpPos, fpFlat)
	s.kidIdx = builtIndex(kids, kidPos, kidFlat)
	s.issIdx = builtIndex(isss, issPos, issFlat)

	// Countries sort; the intern table keeps slot (first-seen) order, so
	// the sorted public list must be a copy.
	s.countries = append([]string(nil), ccs...)
	sort.Strings(s.countries)
	s.ccAggs = make(map[string]CountryAgg, len(ccs))
	for p, cc := range ccs {
		s.ccAggs[cc] = ccAgg[p]
	}

	if rankEnabled {
		s.rankBuckets = make([][]int, opts.RankBuckets)
		for b := range s.rankBuckets {
			if rbCount[b] > 0 {
				s.rankBuckets[b] = rbFlat.bucket(b)
			}
		}
	}

	s.hostKeyIdx = builtCells(hkKeys, hkPos, hostKeyCells, hkFirst)
	s.sigAlgoIdx = builtCells(sigKeys, nil, sigAlgoCells, sigFirst)
	s.combinedIdx = builtCells(combKeys, nil, combinedCells, combFirst)
	s.versionIdx = builtCells(verKeys, nil, versionCells, verFirst)
	return s
}

func bumpCell(c *Cell, valid bool) {
	c.Total++
	if valid {
		c.Valid++
	}
}

// tallySigned adjusts the Table 2 counts by one result's contribution,
// mirroring the taxonomy walk the analysis layer used to run per
// experiment. The build pass adds (d=1); ApplyDelta retracts a replaced
// result (d=-1) before adding its successor.
func tallySigned(c *Counts, r *scanner.Result, cat scanner.Category, d int) {
	if cat == scanner.CatUnavailable {
		c.Unavailable += d
		return
	}
	c.Total += d
	switch {
	case cat == scanner.CatHTTPOnly:
		c.HTTPOnly += d
		return
	case cat == scanner.CatValid:
		c.HTTPS += d
		c.Valid += d
		if r.HSTS {
			c.HSTS += d
		}
	default:
		c.HTTPS += d
		c.Invalid += d
		if cat.IsException() {
			c.Exceptions += d
		}
	}
	if r.ServesHTTP && r.ServesHTTPS {
		c.BothSchemes += d
	}
}

// rankBucket maps a rank onto its Figure 7 bucket via stats.BucketIndex
// over [1, RankMax+1), so bucket membership matches the binned rates bit
// for bit.
func rankBucket(rank int, opts Options) (int, bool) {
	return stats.BucketIndex(float64(rank), 1, float64(opts.RankMax)+1, opts.RankBuckets)
}

// --- accessors ---

// Len returns the number of results.
func (s *Set) Len() int { return len(s.results) }

// Results returns the results in scan input order (read-only). On a
// delta generation the contiguous view is materialized on first call
// and cached.
func (s *Set) Results() []scanner.Result { return s.materialize() }

// WriteJSONL streams the set's results as JSON lines through the zero-copy
// exporter, in scan input order.
func (s *Set) WriteJSONL(w io.Writer) error { return scanner.WriteJSONL(w, s.materialize()) }

// materialize returns the contiguous patched result slice, building it
// lazily for unmaterialized delta generations.
func (s *Set) materialize() []scanner.Result {
	if s.overlay == nil {
		return s.results
	}
	s.flatOnce.Do(func() {
		flat := make([]scanner.Result, len(s.results))
		copy(flat, s.results)
		// Index-keyed writes into distinct slots are order-independent,
		// so the unordered walk cannot affect any derived output.
		//lint:allow maprange overlay entries write disjoint indices; iteration order is immaterial
		for i, r := range s.overlay {
			flat[i] = *r
		}
		s.flat = flat
	})
	return s.flat
}

// At returns the i-th result.
func (s *Set) At(i int) *scanner.Result {
	if s.overlay != nil {
		if r, ok := s.overlay[i]; ok {
			return r
		}
	}
	return &s.results[i]
}

// Lookup finds a hostname's result. The host index is built lazily on
// first use (and is safe for concurrent lookups).
func (s *Set) Lookup(hostname string) (*scanner.Result, bool) {
	s.hostOnce.Do(s.buildHostIndex)
	i, ok := s.byHost[hostname]
	if !ok {
		return nil, false
	}
	return s.At(i), true
}

func (s *Set) buildHostIndex() {
	if s.byHost != nil {
		// Pre-filled by ApplyDelta: the corpus host list is unchanged, so
		// the index is inherited from the base generation.
		return
	}
	m := make(map[string]int, len(s.results))
	for i := range s.results {
		m[s.results[i].Hostname] = i
	}
	s.byHost = m
}

// CountryOf attributes a hostname using the builder's attribution
// function ("" when none was configured).
func (s *Set) CountryOf(hostname string) string {
	if s.opts.CountryOf == nil {
		return ""
	}
	return s.opts.CountryOf(hostname)
}

// Counts returns the Table 2 tallies.
func (s *Set) Counts() Counts { return s.counts }

// CategoryCount returns the number of results in one Table 2 category.
func (s *Set) CategoryCount(cat scanner.Category) int { return len(s.catIdx.bucket(cat)) }

// Categories lists the categories present, in first-seen order.
func (s *Set) Categories() []scanner.Category { return s.catIdx.orderedKeys() }

// ByCategory returns the result indices in one category.
func (s *Set) ByCategory(cat scanner.Category) []int { return s.catIdx.bucket(cat) }

// Exceptions lists the exception kinds present (ExcNone excluded), in
// first-seen order.
func (s *Set) Exceptions() []scanner.Exception { return s.excIdx.orderedKeys() }

// ByException returns the result indices carrying one exception kind.
func (s *Set) ByException(e scanner.Exception) []int { return s.excIdx.bucket(e) }

// Countries lists the countries present, sorted.
func (s *Set) Countries() []string { return s.countries }

// ByCountry returns the result indices attributed to one country.
func (s *Set) ByCountry(cc string) []int { return s.ccIdx.bucket(cc) }

// CountryAggs returns per-country availability tallies, sorted by country.
func (s *Set) CountryAggs() []CountryAgg {
	out := make([]CountryAgg, len(s.countries))
	for i, cc := range s.countries {
		out[i] = s.ccAggs[cc]
	}
	return out
}

// Issuers lists the issuing-CA common names present, in first-seen order
// (certificates without issuer information are not indexed).
func (s *Set) Issuers() []string { return s.issIdx.orderedKeys() }

// ByIssuer returns the chain-bearing result indices for one issuer CN.
func (s *Set) ByIssuer(cn string) []int { return s.issIdx.bucket(cn) }

// IssuerAnalyzed counts chain-bearing results with issuer information —
// the denominator of the EV statistics.
func (s *Set) IssuerAnalyzed() int { return s.issuerDomain }

// Fingerprints lists the distinct leaf-certificate fingerprints, in
// first-seen order.
func (s *Set) Fingerprints() [][32]byte { return s.fpIdx.orderedKeys() }

// ByFingerprint returns the result indices serving one exact certificate.
func (s *Set) ByFingerprint(fp [32]byte) []int { return s.fpIdx.bucket(fp) }

// KeyIDs lists the distinct leaf public-key identities, in first-seen
// order.
func (s *Set) KeyIDs() []cert.KeyID { return s.kidIdx.orderedKeys() }

// ByKeyID returns the result indices serving one public key.
func (s *Set) ByKeyID(id cert.KeyID) []int { return s.kidIdx.bucket(id) }

// Providers lists the hosting providers of available hosts, first-seen.
func (s *Set) Providers() []string { return s.provIdx.orderedKeys() }

// ByProvider returns the available result indices on one provider.
func (s *Set) ByProvider(p string) []int { return s.provIdx.bucket(p) }

// ByKind returns the available result indices in one hosting kind.
func (s *Set) ByKind(k hosting.Kind) []int { return s.kindIdx.bucket(k) }

// Chained returns the indices of results with a retrieved chain.
func (s *Set) Chained() []int { return s.chained }

// InvalidHosts lists hostnames measured invalid https, in input order.
func (s *Set) InvalidHosts() []string { return s.invalidHosts }

// FailedUpgrades returns the indices of hosts with valid https that still
// serve full content over plain http without an upgrade (§5.1).
func (s *Set) FailedUpgrades() []int { return s.failedUpgrades }

// Ranked returns the indices of results carrying a top-list rank.
func (s *Set) Ranked() []int { return s.ranked }

// RankBuckets returns the rank-bucket index (nil when no ranker was
// configured): bucket b holds the indices of ranked results in the b-th
// equal-width bucket over [1, RankMax].
func (s *Set) RankBuckets() [][]int { return s.rankBuckets }

// RankOf reports a hostname's rank via the builder's ranker.
func (s *Set) RankOf(hostname string) (int, bool) {
	if s.opts.RankOf == nil {
		return 0, false
	}
	return s.opts.RankOf(hostname)
}

// HostKeyCells returns per-host-key-type validity cells (first-seen).
func (s *Set) HostKeyCells() []Cell { return s.hostKeyIdx.orderedCells() }

// SigAlgoCells returns per-signing-algorithm validity cells (first-seen).
func (s *Set) SigAlgoCells() []Cell { return s.sigAlgoIdx.orderedCells() }

// CombinedCells returns key-type × signing-algorithm cells (first-seen).
func (s *Set) CombinedCells() []Cell { return s.combinedIdx.orderedCells() }

// VersionCells returns per-negotiated-TLS-version cells over hosts that
// attempt https, with "(no handshake)" for protocol-layer failures.
func (s *Set) VersionCells() []Cell { return s.versionIdx.orderedCells() }

// WeakSignatureHosts counts hosts whose leaf is signed with MD5 or SHA1.
func (s *Set) WeakSignatureHosts() int { return s.weakSigHosts }

// SmallRSAHosts counts hosts with RSA keys below 2048 bits.
func (s *Set) SmallRSAHosts() int { return s.smallRSAHosts }
