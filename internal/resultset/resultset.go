// Package resultset wraps a scan's results with indexes built in one
// deterministic pass: by Table 2 category and exception kind, by country,
// by issuing CA, by certificate fingerprint and key identity, by hosting
// provider and kind, and by top-list rank bucket — plus the cheap derived
// counts (the Table 2 tallies, key/signature/version cells) every
// experiment used to recompute with its own loop over the raw slice.
//
// A Set is built either incrementally, feeding a Builder from
// scanner.ScanStream so the indexes grow concurrently with the scan, or
// in one shot with New. Once built, a Set is immutable: every analysis,
// report and disclosure pass serves itself from the same indexes, so the
// corpus is walked exactly once no matter how many tables and figures are
// derived from it.
//
// Determinism contract: results are added in scan input order, every
// index bucket stores ascending result indices, and every key list
// (Countries, Issuers, Providers, ...) has a defined order — sorted for
// countries, first-seen for the rest. Nothing in this package iterates a
// map (enforced by govlint's maprange analyzer).
package resultset

import (
	"io"
	"sort"

	"repro/internal/cert"
	"repro/internal/hosting"
	"repro/internal/scanner"
	"repro/internal/stats"
)

// Options configures the index build.
type Options struct {
	// CountryOf attributes a hostname to a country; hosts mapping to ""
	// are left out of the country index. Nil disables the country index.
	CountryOf func(hostname string) string
	// RankOf reports a hostname's public-top-list rank, when it has one.
	// Nil disables the rank-bucket index.
	RankOf func(hostname string) (int, bool)
	// RankBuckets is the number of equal-width rank buckets (Figure 7
	// uses 50); RankMax is the highest rank on the list. Both must be
	// positive for the rank index to build.
	RankBuckets int
	RankMax     int
	// SizeHint pre-sizes the result slice and host index.
	SizeHint int
}

// Counts carries the Table 2 tallies derived during the build pass.
type Counts struct {
	// Total counts available hosts (the paper's "websites considered").
	Total       int
	Unavailable int
	HTTPOnly    int
	HTTPS       int
	Valid       int
	Invalid     int
	// Exceptions totals the exception block of the invalid categories.
	Exceptions int
	// BothSchemes counts hosts serving full content on http and https.
	BothSchemes int
	// HSTS counts valid hosts sending Strict-Transport-Security.
	HSTS int
}

// Cell is one label's aggregate: hosts carrying the label and how many of
// them validate (the bars of Figures 4/9/12 and the version table).
type Cell struct {
	Label string
	Total int
	Valid int
}

// CountryAgg is one country's availability/https/validity tally.
type CountryAgg struct {
	Country   string
	Hosts     int
	Available int
	HTTPS     int
	Valid     int
}

// cells aggregates label → Cell with first-seen ordering, so derived
// tables never depend on map iteration order.
type cells struct {
	byLabel map[string]int // label → position in order
	order   []Cell
}

func newCells() *cells { return &cells{byLabel: map[string]int{}} }

func (c *cells) bump(label string, valid bool) {
	i, ok := c.byLabel[label]
	if !ok {
		i = len(c.order)
		c.byLabel[label] = i
		c.order = append(c.order, Cell{Label: label})
	}
	c.order[i].Total++
	if valid {
		c.order[i].Valid++
	}
}

// Set is an immutable scan corpus plus its indexes. Accessors return
// internal slices; callers must treat them as read-only.
type Set struct {
	opts    Options
	results []scanner.Result

	byHost map[string]int

	counts Counts

	categories []scanner.Category // first-seen
	byCategory map[scanner.Category][]int

	exceptions  []scanner.Exception // first-seen, ExcNone excluded
	byException map[scanner.Exception][]int

	countries []string // sorted at Build
	byCountry map[string][]int
	ccAggs    map[string]*CountryAgg

	issuers  []string // first-seen; leaf issuer CN, "" excluded
	byIssuer map[string][]int

	fingerprints  [][32]byte // first-seen
	byFingerprint map[[32]byte][]int

	keyIDs  []cert.KeyID // first-seen
	byKeyID map[cert.KeyID][]int

	providers  []string // first-seen
	byProvider map[string][]int
	byKind     map[hosting.Kind][]int

	chained        []int    // indices with a retrieved chain
	invalidHosts   []string // hostnames measured invalid https, input order
	failedUpgrades []int    // valid https but full content still on http

	ranked      []int
	rankBuckets [][]int

	hostKeyCells  *cells
	sigAlgoCells  *cells
	combinedCells *cells
	versionCells  *cells
	weakSigHosts  int
	smallRSAHosts int
	issuerDomain  int // chain-bearing results with a non-empty issuer CN
}

// Builder accumulates results into a Set. Add must be called from a
// single goroutine, in scan input order; Build finalizes and the Builder
// must not be reused.
type Builder struct {
	set *Set
}

// NewBuilder starts an index build.
func NewBuilder(opts Options) *Builder {
	hint := opts.SizeHint
	if hint < 0 {
		hint = 0
	}
	s := &Set{
		opts:          opts,
		results:       make([]scanner.Result, 0, hint),
		byHost:        make(map[string]int, hint),
		byCategory:    map[scanner.Category][]int{},
		byException:   map[scanner.Exception][]int{},
		byCountry:     map[string][]int{},
		ccAggs:        map[string]*CountryAgg{},
		byIssuer:      map[string][]int{},
		byFingerprint: map[[32]byte][]int{},
		byKeyID:       map[cert.KeyID][]int{},
		byProvider:    map[string][]int{},
		byKind:        map[hosting.Kind][]int{},
		hostKeyCells:  newCells(),
		sigAlgoCells:  newCells(),
		combinedCells: newCells(),
		versionCells:  newCells(),
	}
	if opts.RankOf != nil && opts.RankBuckets > 0 && opts.RankMax > 0 {
		s.rankBuckets = make([][]int, opts.RankBuckets)
	}
	return &Builder{set: s}
}

// New builds a Set from an already-collected result slice (the slice is
// retained; the caller must not mutate it afterwards).
func New(results []scanner.Result, opts Options) *Set {
	if opts.SizeHint == 0 {
		opts.SizeHint = len(results)
	}
	b := NewBuilder(opts)
	for i := range results {
		b.Add(results[i])
	}
	return b.Build()
}

// Add indexes one result.
func (b *Builder) Add(r scanner.Result) {
	s := b.set
	i := len(s.results)
	s.results = append(s.results, r)
	s.byHost[r.Hostname] = i

	cat := r.Category()
	if _, seen := s.byCategory[cat]; !seen {
		s.categories = append(s.categories, cat)
	}
	s.byCategory[cat] = append(s.byCategory[cat], i)
	s.tally(&r, cat)

	if r.Exception != scanner.ExcNone {
		if _, seen := s.byException[r.Exception]; !seen {
			s.exceptions = append(s.exceptions, r.Exception)
		}
		s.byException[r.Exception] = append(s.byException[r.Exception], i)
	}

	if s.opts.CountryOf != nil {
		if cc := s.opts.CountryOf(r.Hostname); cc != "" {
			agg, seen := s.ccAggs[cc]
			if !seen {
				agg = &CountryAgg{Country: cc}
				s.ccAggs[cc] = agg
				s.countries = append(s.countries, cc)
			}
			s.byCountry[cc] = append(s.byCountry[cc], i)
			agg.Hosts++
			if r.Available {
				agg.Available++
				if r.HasHTTPS() {
					agg.HTTPS++
				}
				if r.ValidHTTPS() {
					agg.Valid++
				}
			}
		}
	}

	if r.Available {
		if _, seen := s.byProvider[r.Provider]; !seen {
			s.providers = append(s.providers, r.Provider)
		}
		s.byProvider[r.Provider] = append(s.byProvider[r.Provider], i)
		s.byKind[r.HostKind] = append(s.byKind[r.HostKind], i)
	}

	if cat.IsInvalidHTTPS() {
		s.invalidHosts = append(s.invalidHosts, r.Hostname)
	}
	if r.ServesHTTP && r.ServesHTTPS && r.ValidHTTPS() {
		s.failedUpgrades = append(s.failedUpgrades, i)
	}

	if r.HasHTTPS() {
		if len(r.Chain) == 0 {
			s.versionCells.bump("(no handshake)", false)
		} else {
			s.versionCells.bump(r.TLSVersion.String(), r.Verify.Valid())
		}
	}

	if len(r.Chain) > 0 {
		s.indexChain(&r, i)
	}

	if s.rankBuckets != nil {
		if rank, ok := s.opts.RankOf(r.Hostname); ok {
			s.ranked = append(s.ranked, i)
			if bkt, ok := s.rankBucket(rank); ok {
				s.rankBuckets[bkt] = append(s.rankBuckets[bkt], i)
			}
		}
	}
}

// tally updates the Table 2 counts, mirroring the taxonomy walk the
// analysis layer used to run per experiment.
func (s *Set) tally(r *scanner.Result, cat scanner.Category) {
	c := &s.counts
	if cat == scanner.CatUnavailable {
		c.Unavailable++
		return
	}
	c.Total++
	switch {
	case cat == scanner.CatHTTPOnly:
		c.HTTPOnly++
		return
	case cat == scanner.CatValid:
		c.HTTPS++
		c.Valid++
		if r.HSTS {
			c.HSTS++
		}
	default:
		c.HTTPS++
		c.Invalid++
		if cat.IsException() {
			c.Exceptions++
		}
	}
	if r.ServesHTTP && r.ServesHTTPS {
		c.BothSchemes++
	}
}

// indexChain indexes the certificate-bearing facets of one result.
func (s *Set) indexChain(r *scanner.Result, i int) {
	leaf := r.Chain[0]

	fp := leaf.Fingerprint()
	if _, seen := s.byFingerprint[fp]; !seen {
		s.fingerprints = append(s.fingerprints, fp)
	}
	s.byFingerprint[fp] = append(s.byFingerprint[fp], i)

	id := leaf.PublicKey.ID
	if _, seen := s.byKeyID[id]; !seen {
		s.keyIDs = append(s.keyIDs, id)
	}
	s.byKeyID[id] = append(s.byKeyID[id], i)

	if cn := leaf.Issuer.CommonName; cn != "" {
		s.issuerDomain++
		if _, seen := s.byIssuer[cn]; !seen {
			s.issuers = append(s.issuers, cn)
		}
		s.byIssuer[cn] = append(s.byIssuer[cn], i)
	}

	s.chained = append(s.chained, i)

	valid := r.Verify.Valid()
	key := leaf.PublicKey.Label()
	alg := leaf.SignatureAlgorithm.String()
	s.hostKeyCells.bump(key, valid)
	s.sigAlgoCells.bump(alg, valid)
	s.combinedCells.bump(key+" / "+alg, valid)
	if leaf.SignatureAlgorithm.IsWeak() {
		s.weakSigHosts++
	}
	if leaf.PublicKey.Type == cert.KeyRSA && leaf.PublicKey.Bits < 2048 {
		s.smallRSAHosts++
	}
}

// rankBucket maps a rank onto its Figure 7 bucket via stats.BucketIndex
// over [1, RankMax+1), so bucket membership matches the binned rates bit
// for bit.
func (s *Set) rankBucket(rank int) (int, bool) {
	return stats.BucketIndex(float64(rank), 1, float64(s.opts.RankMax)+1, s.opts.RankBuckets)
}

// Build finalizes the Set.
func (b *Builder) Build() *Set {
	s := b.set
	b.set = nil
	sort.Strings(s.countries)
	return s
}

// --- accessors ---

// Len returns the number of results.
func (s *Set) Len() int { return len(s.results) }

// Results returns the underlying results in scan input order (read-only).
func (s *Set) Results() []scanner.Result { return s.results }

// WriteJSONL streams the set's results as JSON lines through the zero-copy
// exporter, in scan input order.
func (s *Set) WriteJSONL(w io.Writer) error { return scanner.WriteJSONL(w, s.results) }

// At returns the i-th result.
func (s *Set) At(i int) *scanner.Result { return &s.results[i] }

// Lookup finds a hostname's result.
func (s *Set) Lookup(hostname string) (*scanner.Result, bool) {
	i, ok := s.byHost[hostname]
	if !ok {
		return nil, false
	}
	return &s.results[i], true
}

// CountryOf attributes a hostname using the builder's attribution
// function ("" when none was configured).
func (s *Set) CountryOf(hostname string) string {
	if s.opts.CountryOf == nil {
		return ""
	}
	return s.opts.CountryOf(hostname)
}

// Counts returns the Table 2 tallies.
func (s *Set) Counts() Counts { return s.counts }

// CategoryCount returns the number of results in one Table 2 category.
func (s *Set) CategoryCount(cat scanner.Category) int { return len(s.byCategory[cat]) }

// Categories lists the categories present, in first-seen order.
func (s *Set) Categories() []scanner.Category { return s.categories }

// ByCategory returns the result indices in one category.
func (s *Set) ByCategory(cat scanner.Category) []int { return s.byCategory[cat] }

// Exceptions lists the exception kinds present (ExcNone excluded), in
// first-seen order.
func (s *Set) Exceptions() []scanner.Exception { return s.exceptions }

// ByException returns the result indices carrying one exception kind.
func (s *Set) ByException(e scanner.Exception) []int { return s.byException[e] }

// Countries lists the countries present, sorted.
func (s *Set) Countries() []string { return s.countries }

// ByCountry returns the result indices attributed to one country.
func (s *Set) ByCountry(cc string) []int { return s.byCountry[cc] }

// CountryAggs returns per-country availability tallies, sorted by country.
func (s *Set) CountryAggs() []CountryAgg {
	out := make([]CountryAgg, len(s.countries))
	for i, cc := range s.countries {
		out[i] = *s.ccAggs[cc]
	}
	return out
}

// Issuers lists the issuing-CA common names present, in first-seen order
// (certificates without issuer information are not indexed).
func (s *Set) Issuers() []string { return s.issuers }

// ByIssuer returns the chain-bearing result indices for one issuer CN.
func (s *Set) ByIssuer(cn string) []int { return s.byIssuer[cn] }

// IssuerAnalyzed counts chain-bearing results with issuer information —
// the denominator of the EV statistics.
func (s *Set) IssuerAnalyzed() int { return s.issuerDomain }

// Fingerprints lists the distinct leaf-certificate fingerprints, in
// first-seen order.
func (s *Set) Fingerprints() [][32]byte { return s.fingerprints }

// ByFingerprint returns the result indices serving one exact certificate.
func (s *Set) ByFingerprint(fp [32]byte) []int { return s.byFingerprint[fp] }

// KeyIDs lists the distinct leaf public-key identities, in first-seen
// order.
func (s *Set) KeyIDs() []cert.KeyID { return s.keyIDs }

// ByKeyID returns the result indices serving one public key.
func (s *Set) ByKeyID(id cert.KeyID) []int { return s.byKeyID[id] }

// Providers lists the hosting providers of available hosts, first-seen.
func (s *Set) Providers() []string { return s.providers }

// ByProvider returns the available result indices on one provider.
func (s *Set) ByProvider(p string) []int { return s.byProvider[p] }

// ByKind returns the available result indices in one hosting kind.
func (s *Set) ByKind(k hosting.Kind) []int { return s.byKind[k] }

// Chained returns the indices of results with a retrieved chain.
func (s *Set) Chained() []int { return s.chained }

// InvalidHosts lists hostnames measured invalid https, in input order.
func (s *Set) InvalidHosts() []string { return s.invalidHosts }

// FailedUpgrades returns the indices of hosts with valid https that still
// serve full content over plain http without an upgrade (§5.1).
func (s *Set) FailedUpgrades() []int { return s.failedUpgrades }

// Ranked returns the indices of results carrying a top-list rank.
func (s *Set) Ranked() []int { return s.ranked }

// RankBuckets returns the rank-bucket index (nil when no ranker was
// configured): bucket b holds the indices of ranked results in the b-th
// equal-width bucket over [1, RankMax].
func (s *Set) RankBuckets() [][]int { return s.rankBuckets }

// RankOf reports a hostname's rank via the builder's ranker.
func (s *Set) RankOf(hostname string) (int, bool) {
	if s.opts.RankOf == nil {
		return 0, false
	}
	return s.opts.RankOf(hostname)
}

// HostKeyCells returns per-host-key-type validity cells (first-seen).
func (s *Set) HostKeyCells() []Cell { return s.hostKeyCells.order }

// SigAlgoCells returns per-signing-algorithm validity cells (first-seen).
func (s *Set) SigAlgoCells() []Cell { return s.sigAlgoCells.order }

// CombinedCells returns key-type × signing-algorithm cells (first-seen).
func (s *Set) CombinedCells() []Cell { return s.combinedCells.order }

// VersionCells returns per-negotiated-TLS-version cells over hosts that
// attempt https, with "(no handshake)" for protocol-layer failures.
func (s *Set) VersionCells() []Cell { return s.versionCells.order }

// WeakSignatureHosts counts hosts whose leaf is signed with MD5 or SHA1.
func (s *Set) WeakSignatureHosts() int { return s.weakSigHosts }

// SmallRSAHosts counts hosts with RSA keys below 2048 bits.
func (s *Set) SmallRSAHosts() int { return s.smallRSAHosts }
