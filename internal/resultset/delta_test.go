package resultset_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

// deltaWorld builds a private world for the delta tests so mutating it
// cannot disturb the shared testWorld fixtures.
func deltaWorld(t *testing.T) *world.World {
	t.Helper()
	return world.MustBuild(world.TestConfig())
}

func scanHosts(w *world.World, hosts []string, at scanner.Config) []scanner.Result {
	s := scanner.New(w.Net, w.DNS, w.Class, at)
	return s.ScanAll(context.Background(), hosts)
}

func deltaOptions(w *world.World) resultset.Options {
	rankOf := func(h string) (int, bool) {
		for _, rh := range w.TopLists.TrancoGov {
			if rh.Host == h {
				return rh.Rank, true
			}
		}
		return 0, false
	}
	return resultset.Options{
		CountryOf:   w.CountryOf,
		RankOf:      rankOf,
		RankBuckets: rankBuckets,
		RankMax:     w.TopLists.Max,
	}
}

// patchRows substitutes the changed rows into a copy of base, by
// hostname, and returns the patched slice.
func patchRows(t *testing.T, base, changed []scanner.Result) []scanner.Result {
	t.Helper()
	byHost := make(map[string]int, len(base))
	for i := range base {
		byHost[base[i].Hostname] = i
	}
	out := append([]scanner.Result(nil), base...)
	for _, r := range changed {
		i, ok := byHost[r.Hostname]
		if !ok {
			t.Fatalf("changed host %q not in base corpus", r.Hostname)
		}
		out[i] = r
	}
	return out
}

// TestApplyDeltaMatchesRebuild is the golden-differential proof in the
// style of TestMergeMatchesSequential: remediate the world, rescan only
// the changed hosts at the follow-up time, ApplyDelta the base set, and
// compare every accessor against a from-scratch build over the patched
// result slice. A second chained delta re-runs the comparison to prove
// generations compose, and the base set is re-verified afterwards to
// prove snapshot isolation.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	w := deltaWorld(t)
	opts := deltaOptions(w)
	baseRaw := scanHosts(w, w.GovHosts, scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
	base := resultset.New(append([]scanner.Result(nil), baseRaw...), opts)

	// First delta: remediation flips availability, certificates and
	// categories for a spread of hosts; fresh certs mean brand-new
	// fingerprint/key/issuer keys appear mid-corpus.
	outcome := w.Remediate(base.InvalidHosts(), world.DefaultRemediationRates(), rand.New(rand.NewSource(7)))
	changed := outcome.ChangedHosts()
	if len(changed) == 0 {
		t.Fatal("remediation changed no hosts; the delta test needs churn")
	}
	followCfg := scanner.DefaultConfig(w.Stores["apple"], world.FollowUpScanTime)
	delta1 := scanHosts(w, changed, followCfg)

	got1, err := base.ApplyDelta(delta1)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	patched1 := patchRows(t, baseRaw, delta1)
	want1 := resultset.New(patched1, opts)
	assertSetsEqual(t, got1, want1)

	// The patched generation must answer host lookups with the new rows.
	r, ok := got1.Lookup(changed[0])
	if !ok {
		t.Fatalf("Lookup(%q) missing after delta", changed[0])
	}
	if want, _ := want1.Lookup(changed[0]); r.Category() != want.Category() {
		t.Fatalf("Lookup(%q) category = %v, want %v", changed[0], r.Category(), want.Category())
	}

	// Second, chained delta over the first generation: remediate again
	// (different draw) and rescan; generations must compose.
	outcome2 := w.Remediate(got1.InvalidHosts(), world.DefaultRemediationRates(), rand.New(rand.NewSource(11)))
	changed2 := outcome2.ChangedHosts()
	if len(changed2) == 0 {
		t.Fatal("second remediation changed no hosts")
	}
	delta2 := scanHosts(w, changed2, followCfg)
	got2, err := got1.ApplyDelta(delta2)
	if err != nil {
		t.Fatalf("second ApplyDelta: %v", err)
	}
	patched2 := patchRows(t, patched1, delta2)
	want2 := resultset.New(patched2, opts)
	assertSetsEqual(t, got2, want2)

	// Snapshot isolation: the base and intermediate generations still
	// answer byte-for-byte like fresh builds over their own slices.
	assertSetsEqual(t, got1, want1)
	assertSetsEqual(t, base, resultset.New(append([]scanner.Result(nil), baseRaw...), opts))
}

// TestApplyDeltaIdentityAndErrors pins the contract edges: an empty
// delta returns the receiver, an identical rescan round-trips, a
// duplicate hostname resolves to the last occurrence, and an unknown
// hostname is rejected without touching the receiver.
func TestApplyDeltaIdentityAndErrors(t *testing.T) {
	w := deltaWorld(t)
	opts := deltaOptions(w)
	raw := scanHosts(w, w.GovHosts, scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
	base := resultset.New(append([]scanner.Result(nil), raw...), opts)

	if got, err := base.ApplyDelta(nil); err != nil || got != base {
		t.Fatalf("empty delta: got %p err %v, want receiver", got, err)
	}

	// Rescanning at the same virtual time reproduces the same rows; the
	// delta must be a byte-for-byte no-op.
	sample := append([]scanner.Result(nil), raw[:25]...)
	same, err := base.ApplyDelta(sample)
	if err != nil {
		t.Fatalf("identity delta: %v", err)
	}
	assertSetsEqual(t, same, base)

	// Duplicate hostname: last occurrence wins.
	dup := []scanner.Result{raw[3], raw[3]}
	dup[0].HSTS = !dup[0].HSTS // a decoy earlier occurrence
	got, err := base.ApplyDelta(dup)
	if err != nil {
		t.Fatalf("duplicate delta: %v", err)
	}
	assertSetsEqual(t, got, base)

	bogus := raw[0]
	bogus.Hostname = "not-a-corpus-host.example"
	if _, err := base.ApplyDelta([]scanner.Result{bogus}); err == nil {
		t.Fatal("unknown host accepted")
	}
}
