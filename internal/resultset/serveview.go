package resultset

// Read-only accessor helpers for the serving layer: derived aggregates
// the HTTP handlers render that are cheap enough to compute per cache
// miss (the response cache memoizes the serialized bytes per
// generation), but not worth carrying in the build pass every batch
// consumer pays for.

// IssuerCells returns per-issuing-CA validity cells — one Cell per
// distinct leaf-issuer common name, in first-seen order, counting the
// chain-bearing hosts under that CA and how many of them validate.
// Each call walks the issuer buckets (O(chained results)); callers that
// serve traffic should memoize the rendered output, not this slice.
func (s *Set) IssuerCells() []Cell {
	names := s.issIdx.orderedKeys()
	out := make([]Cell, len(names))
	for i, cn := range names {
		bucket := s.issIdx.bucket(cn)
		c := Cell{Label: cn, Total: len(bucket)}
		for _, idx := range bucket {
			if s.At(idx).Verify.Valid() {
				c.Valid++
			}
		}
		out[i] = c
	}
	return out
}

// ProviderCells returns per-hosting-provider validity cells over
// available hosts, in first-seen order.
func (s *Set) ProviderCells() []Cell {
	names := s.provIdx.orderedKeys()
	out := make([]Cell, len(names))
	for i, p := range names {
		bucket := s.provIdx.bucket(p)
		c := Cell{Label: p, Total: len(bucket)}
		for _, idx := range bucket {
			if s.At(idx).ValidHTTPS() {
				c.Valid++
			}
		}
		out[i] = c
	}
	return out
}

// Hostnames maps result indices to their hostnames, preserving order —
// the paging helper behind the per-country/per-issuer/per-category host
// listings.
func (s *Set) Hostnames(indices []int) []string {
	out := make([]string, len(indices))
	for i, idx := range indices {
		out[i] = s.At(idx).Hostname
	}
	return out
}
