package resultset

import (
	"sort"

	"repro/internal/cert"
	"repro/internal/hosting"
	"repro/internal/scanner"
)

// Merge recombines per-shard Sets into one Set, deterministically and —
// when the shards were built over a contiguous partition of one input
// order (scanner.Partition) — bit-identically to a sequential build over
// the concatenated results:
//
//   - result indices are rebased by each shard's offset in the
//     concatenation, so every merged bucket stays ascending;
//   - first-seen key orders (categories, exceptions, issuers,
//     fingerprints, key IDs, providers) are the dedup-concat of the
//     per-shard orders, which for a contiguous partition is exactly the
//     sequential first-seen order;
//   - countries are re-sorted and per-country aggregates summed;
//   - cells, counts and scalar tallies are summed.
//
// Buckets are presized from per-shard cardinality sums and filled into
// exact-size flat arrays — no bucket grows incrementally. The shard Sets
// are not modified and remain usable.
func Merge(shards ...*Set) *Set {
	if len(shards) == 0 {
		return build(nil, Options{})
	}
	total := 0
	for _, sh := range shards {
		total += len(sh.results)
	}
	results := make([]scanner.Result, 0, total)
	for _, sh := range shards {
		results = append(results, sh.results...)
	}
	return mergeSets(shards, results)
}

// mergeSets merges shard indexes over an already-concatenated result
// slice (ScanSharded passes the shared backing array directly, so the
// per-shard results are never copied).
func mergeSets(shards []*Set, results []scanner.Result) *Set {
	s := &Set{opts: shards[0].opts, results: results}

	offs := make([]int, len(shards))
	off := 0
	for k, sh := range shards {
		offs[k] = off
		off += len(sh.results)
	}

	for _, sh := range shards {
		c := sh.counts
		s.counts.Total += c.Total
		s.counts.Unavailable += c.Unavailable
		s.counts.HTTPOnly += c.HTTPOnly
		s.counts.HTTPS += c.HTTPS
		s.counts.Valid += c.Valid
		s.counts.Invalid += c.Invalid
		s.counts.Exceptions += c.Exceptions
		s.counts.BothSchemes += c.BothSchemes
		s.counts.HSTS += c.HSTS
		s.issuerDomain += sh.issuerDomain
		s.weakSigHosts += sh.weakSigHosts
		s.smallRSAHosts += sh.smallRSAHosts
	}

	s.categories, s.byCategory = mergeIndex(shards, offs,
		func(sh *Set) []scanner.Category { return sh.categories },
		func(sh *Set, k scanner.Category) []int { return sh.byCategory[k] })
	s.exceptions, s.byException = mergeIndex(shards, offs,
		func(sh *Set) []scanner.Exception { return sh.exceptions },
		func(sh *Set, k scanner.Exception) []int { return sh.byException[k] })
	s.issuers, s.byIssuer = mergeIndex(shards, offs,
		func(sh *Set) []string { return sh.issuers },
		func(sh *Set, k string) []int { return sh.byIssuer[k] })
	s.fingerprints, s.byFingerprint = mergeIndex(shards, offs,
		func(sh *Set) [][32]byte { return sh.fingerprints },
		func(sh *Set, k [32]byte) []int { return sh.byFingerprint[k] })
	s.keyIDs, s.byKeyID = mergeIndex(shards, offs,
		func(sh *Set) []cert.KeyID { return sh.keyIDs },
		func(sh *Set, k cert.KeyID) []int { return sh.byKeyID[k] })
	s.providers, s.byProvider = mergeIndex(shards, offs,
		func(sh *Set) []string { return sh.providers },
		func(sh *Set, k string) []int { return sh.byProvider[k] })
	s.kinds, s.byKind = mergeIndex(shards, offs,
		func(sh *Set) []hosting.Kind { return sh.kinds },
		func(sh *Set, k hosting.Kind) []int { return sh.byKind[k] })

	// Countries: sorted union of the (already sorted) shard lists, with
	// per-country aggregates summed in one pass over the shard orders.
	s.countries, s.byCountry = mergeIndex(shards, offs,
		func(sh *Set) []string { return sh.countries },
		func(sh *Set, k string) []int { return sh.byCountry[k] })
	s.ccAggs = make(map[string]CountryAgg, len(s.countries))
	for _, sh := range shards {
		for _, cc := range sh.countries {
			agg := s.ccAggs[cc]
			src := sh.ccAggs[cc]
			agg.Country = cc
			agg.Hosts += src.Hosts
			agg.Available += src.Available
			agg.HTTPS += src.HTTPS
			agg.Valid += src.Valid
			s.ccAggs[cc] = agg
		}
	}
	sort.Strings(s.countries)

	s.chained = mergeInts(shards, offs, func(sh *Set) []int { return sh.chained })
	s.failedUpgrades = mergeInts(shards, offs, func(sh *Set) []int { return sh.failedUpgrades })
	s.ranked = mergeInts(shards, offs, func(sh *Set) []int { return sh.ranked })

	invalidN := 0
	for _, sh := range shards {
		invalidN += len(sh.invalidHosts)
	}
	s.invalidHosts = make([]string, 0, invalidN)
	for _, sh := range shards {
		s.invalidHosts = append(s.invalidHosts, sh.invalidHosts...)
	}

	if shards[0].rankBuckets != nil {
		nb := len(shards[0].rankBuckets)
		s.rankBuckets = make([][]int, nb)
		for b := 0; b < nb; b++ {
			total := 0
			for _, sh := range shards {
				total += len(sh.rankBuckets[b])
			}
			if total == 0 {
				continue
			}
			out := make([]int, 0, total)
			for k, sh := range shards {
				d := offs[k]
				for _, idx := range sh.rankBuckets[b] {
					out = append(out, idx+d)
				}
			}
			s.rankBuckets[b] = out
		}
	}

	s.hostKeyCells = mergeCells(shards, func(sh *Set) []Cell { return sh.hostKeyCells })
	s.sigAlgoCells = mergeCells(shards, func(sh *Set) []Cell { return sh.sigAlgoCells })
	s.combinedCells = mergeCells(shards, func(sh *Set) []Cell { return sh.combinedCells })
	s.versionCells = mergeCells(shards, func(sh *Set) []Cell { return sh.versionCells })
	return s
}

// mergeIndex recombines one bucket family across shards: the merged key
// order is the first-seen dedup-concat of the shard orders, per-key
// totals are summed up front, and every merged bucket is a subslice of
// one exact-size flat array filled shard by shard with index rebasing —
// so buckets stay ascending and nothing grows incrementally. Map lookups
// happen once per shard-distinct key, never per result.
func mergeIndex[K comparable](
	shards []*Set, offs []int,
	orderOf func(*Set) []K,
	bucketOf func(*Set, K) []int,
) ([]K, map[K][]int) {
	pos := make(map[K]int32)
	var order []K
	var counts []int
	for _, sh := range shards {
		for _, k := range orderOf(sh) {
			p, seen := pos[k]
			if !seen {
				p = int32(len(order))
				pos[k] = p
				order = append(order, k)
				counts = append(counts, 0)
			}
			counts[p] += len(bucketOf(sh, k))
		}
	}

	start := make([]int, len(order)+1)
	cur := make([]int, len(order))
	total := 0
	for p, c := range counts {
		start[p] = total
		cur[p] = total
		total += c
	}
	start[len(order)] = total
	flat := make([]int, total)

	for si, sh := range shards {
		d := offs[si]
		for _, k := range orderOf(sh) {
			p := pos[k]
			c := cur[p]
			for _, idx := range bucketOf(sh, k) {
				flat[c] = idx + d
				c++
			}
			cur[p] = c
		}
	}

	m := make(map[K][]int, len(order))
	for p, k := range order {
		lo, hi := start[p], start[p+1]
		m[k] = flat[lo:hi:hi]
	}
	return order, m
}

// mergeInts concatenates one rebased []int slice per shard, presized.
func mergeInts(shards []*Set, offs []int, get func(*Set) []int) []int {
	total := 0
	for _, sh := range shards {
		total += len(get(sh))
	}
	out := make([]int, 0, total)
	for k, sh := range shards {
		d := offs[k]
		for _, idx := range get(sh) {
			out = append(out, idx+d)
		}
	}
	return out
}

// mergeCells sums per-label cells with first-seen dedup-concat ordering.
func mergeCells(shards []*Set, get func(*Set) []Cell) []Cell {
	pos := make(map[string]int32)
	var out []Cell
	for _, sh := range shards {
		for _, c := range get(sh) {
			p, seen := pos[c.Label]
			if !seen {
				p = int32(len(out))
				pos[c.Label] = p
				out = append(out, Cell{Label: c.Label})
			}
			out[p].Total += c.Total
			out[p].Valid += c.Valid
		}
	}
	return out
}
