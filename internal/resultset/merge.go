package resultset

import (
	"sort"

	"repro/internal/cert"
	"repro/internal/hosting"
	"repro/internal/scanner"
)

// Merge recombines per-shard Sets into one Set, deterministically and —
// when the shards were built over a contiguous partition of one input
// order (scanner.Partition) — bit-identically to a sequential build over
// the concatenated results:
//
//   - result indices are rebased by each shard's offset in the
//     concatenation, so every merged bucket stays ascending;
//   - first-seen key orders (categories, exceptions, issuers,
//     fingerprints, key IDs, providers) are the dedup-concat of the
//     per-shard orders, which for a contiguous partition is exactly the
//     sequential first-seen order;
//   - countries are re-sorted and per-country aggregates summed;
//   - cells, counts and scalar tallies are summed.
//
// Buckets are presized from per-shard cardinality sums and filled into
// exact-size flat arrays — no bucket grows incrementally. The shard Sets
// are not modified and remain usable.
func Merge(shards ...*Set) *Set {
	if len(shards) == 0 {
		return build(nil, Options{})
	}
	total := 0
	for _, sh := range shards {
		total += len(sh.results)
	}
	results := make([]scanner.Result, 0, total)
	for _, sh := range shards {
		results = append(results, sh.materialize()...)
	}
	return mergeSets(shards, results)
}

// mergeSets merges shard indexes over an already-concatenated result
// slice (ScanSharded passes the shared backing array directly, so the
// per-shard results are never copied).
func mergeSets(shards []*Set, results []scanner.Result) *Set {
	s := &Set{opts: shards[0].opts, results: results}

	offs := make([]int, len(shards))
	off := 0
	for k, sh := range shards {
		offs[k] = off
		off += len(sh.results)
	}

	for _, sh := range shards {
		c := sh.counts
		s.counts.Total += c.Total
		s.counts.Unavailable += c.Unavailable
		s.counts.HTTPOnly += c.HTTPOnly
		s.counts.HTTPS += c.HTTPS
		s.counts.Valid += c.Valid
		s.counts.Invalid += c.Invalid
		s.counts.Exceptions += c.Exceptions
		s.counts.BothSchemes += c.BothSchemes
		s.counts.HSTS += c.HSTS
		s.issuerDomain += sh.issuerDomain
		s.weakSigHosts += sh.weakSigHosts
		s.smallRSAHosts += sh.smallRSAHosts
	}

	s.catIdx = mergeFamily(shards, offs, func(sh *Set) *index[scanner.Category] { return &sh.catIdx })
	s.excIdx = mergeFamily(shards, offs, func(sh *Set) *index[scanner.Exception] { return &sh.excIdx })
	s.issIdx = mergeFamily(shards, offs, func(sh *Set) *index[string] { return &sh.issIdx })
	s.fpIdx = mergeFamily(shards, offs, func(sh *Set) *index[[32]byte] { return &sh.fpIdx })
	s.kidIdx = mergeFamily(shards, offs, func(sh *Set) *index[cert.KeyID] { return &sh.kidIdx })
	s.provIdx = mergeFamily(shards, offs, func(sh *Set) *index[string] { return &sh.provIdx })
	s.kindIdx = mergeFamily(shards, offs, func(sh *Set) *index[hosting.Kind] { return &sh.kindIdx })

	// Countries: the family merges like any other (first-seen intern
	// order), the public list is a sorted copy, and per-country
	// aggregates are summed in one pass over the shard orders.
	s.ccIdx = mergeFamily(shards, offs, func(sh *Set) *index[string] { return &sh.ccIdx })
	firstSeen := s.ccIdx.ord.keys
	s.ccAggs = make(map[string]CountryAgg, len(firstSeen))
	for _, sh := range shards {
		for _, cc := range sh.ccIdx.orderedKeys() {
			agg := s.ccAggs[cc]
			src := sh.ccAggs[cc]
			agg.Country = cc
			agg.Hosts += src.Hosts
			agg.Available += src.Available
			agg.HTTPS += src.HTTPS
			agg.Valid += src.Valid
			s.ccAggs[cc] = agg
		}
	}
	s.countries = append([]string(nil), firstSeen...)
	sort.Strings(s.countries)

	s.chained = mergeInts(shards, offs, func(sh *Set) []int { return sh.chained })
	s.invalidIdx = mergeInts(shards, offs, func(sh *Set) []int { return sh.invalidIdx })
	s.failedUpgrades = mergeInts(shards, offs, func(sh *Set) []int { return sh.failedUpgrades })
	s.ranked = mergeInts(shards, offs, func(sh *Set) []int { return sh.ranked })

	invalidN := 0
	for _, sh := range shards {
		invalidN += len(sh.invalidHosts)
	}
	s.invalidHosts = make([]string, 0, invalidN)
	for _, sh := range shards {
		s.invalidHosts = append(s.invalidHosts, sh.invalidHosts...)
	}

	if shards[0].rankBuckets != nil {
		nb := len(shards[0].rankBuckets)
		s.rankBuckets = make([][]int, nb)
		for b := 0; b < nb; b++ {
			total := 0
			for _, sh := range shards {
				total += len(sh.rankBuckets[b])
			}
			if total == 0 {
				continue
			}
			out := make([]int, 0, total)
			for k, sh := range shards {
				d := offs[k]
				for _, idx := range sh.rankBuckets[b] {
					out = append(out, idx+d)
				}
			}
			s.rankBuckets[b] = out
		}
	}

	s.hostKeyIdx = mergeCellFamily(shards, offs, func(sh *Set) *cellIndex[uint64] { return &sh.hostKeyIdx })
	s.sigAlgoIdx = mergeCellFamily(shards, offs, func(sh *Set) *cellIndex[int] { return &sh.sigAlgoIdx })
	s.combinedIdx = mergeCellFamily(shards, offs, func(sh *Set) *cellIndex[combKey] { return &sh.combinedIdx })
	s.versionIdx = mergeCellFamily(shards, offs, func(sh *Set) *cellIndex[int] { return &sh.versionIdx })
	return s
}

// mergeFamily recombines one bucket family across shards: the merged key
// order is the first-seen dedup-concat of the shard orders, per-key
// totals are summed up front, and every merged bucket is a subslice of
// one exact-size flat array filled shard by shard with index rebasing —
// so buckets stay ascending and nothing grows incrementally. Map lookups
// happen once per shard-distinct key, never per result.
func mergeFamily[K comparable](
	shards []*Set, offs []int,
	get func(*Set) *index[K],
) index[K] {
	pos := make(map[K]int32)
	var order []K
	var counts []int
	for _, sh := range shards {
		x := get(sh)
		for _, k := range x.orderedKeys() {
			p, seen := pos[k]
			if !seen {
				p = int32(len(order))
				pos[k] = p
				order = append(order, k)
				counts = append(counts, 0)
			}
			counts[p] += len(x.bucket(k))
		}
	}

	start := make([]int, len(order)+1)
	cur := make([]int, len(order))
	total := 0
	for p, c := range counts {
		start[p] = total
		cur[p] = total
		total += c
	}
	start[len(order)] = total
	flat := make([]int, total)

	for si, sh := range shards {
		x := get(sh)
		d := offs[si]
		for _, k := range x.orderedKeys() {
			p := pos[k]
			c := cur[p]
			for _, idx := range x.bucket(k) {
				flat[c] = idx + d
				c++
			}
			cur[p] = c
		}
	}

	buckets := make([][]int, len(order))
	for p := range order {
		lo, hi := start[p], start[p+1]
		buckets[p] = flat[lo:hi:hi]
	}
	return index[K]{
		tab:     &intern[K]{pos: pos, keys: order},
		buckets: buckets,
		ord:     &keyOrder[K]{keys: order},
	}
}

// mergeInts concatenates one rebased []int slice per shard, presized.
func mergeInts(shards []*Set, offs []int, get func(*Set) []int) []int {
	total := 0
	for _, sh := range shards {
		total += len(get(sh))
	}
	out := make([]int, 0, total)
	for k, sh := range shards {
		d := offs[k]
		for _, idx := range get(sh) {
			out = append(out, idx+d)
		}
	}
	return out
}

// mergeCellFamily sums one cell family with first-seen dedup-concat
// ordering, keyed on the stable value keys and tracking the rebased
// minimum first-occurrence index per cell (what a delta needs to keep
// first-seen order reconstructible).
func mergeCellFamily[K comparable](
	shards []*Set, offs []int,
	get func(*Set) *cellIndex[K],
) cellIndex[K] {
	pos := make(map[K]int32)
	var keys []K
	var cells []Cell
	var first []int32
	for si, sh := range shards {
		x := get(sh)
		d := int32(offs[si])
		shardKeys := x.tab.keySlice(len(x.cells))
		for _, p0 := range x.liveSlots() {
			k := shardKeys[p0]
			src := x.cells[p0]
			f := x.first[p0] + d
			p, seen := pos[k]
			if !seen {
				p = int32(len(keys))
				pos[k] = p
				keys = append(keys, k)
				cells = append(cells, Cell{Label: src.Label})
				first = append(first, f)
			} else if f < first[p] {
				first[p] = f
			}
			cells[p].Total += src.Total
			cells[p].Valid += src.Valid
		}
	}
	return cellIndex[K]{
		tab:   &intern[K]{pos: pos, keys: keys},
		cells: cells,
		first: first,
		ord:   &cellOrder{cells: cells},
	}
}
