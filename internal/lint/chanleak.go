// The chanleak analyzer flags spawned goroutines that can block forever
// on an unbuffered channel operation in the long-running packages. A
// goroutine parked on an unbuffered send whose receiver bailed out (a
// cancelled scan, an error return between spawn and receive) is a leak
// that accumulates across a long suite run; the sanctioned shapes are a
// select that also carries a ctx.Done()/done case, a buffered channel
// sized to the work, or the bounded worker-pool idiom where the spawner
// closes the feed channel so the range drains and exits.
//
// The pass is intraprocedural and conservative about aliasing: only
// operations on channels it can trace to a make(chan …) in the enclosing
// function are judged. A channel received as a parameter or read from a
// struct has unknown buffering and is skipped.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ChanLeak builds the analyzer, restricted to the given package paths
// (exact import paths relative to nothing — full paths as Load reports
// them).
func ChanLeak(pkgPaths ...string) *Analyzer {
	match := make(map[string]bool, len(pkgPaths))
	for _, p := range pkgPaths {
		match[p] = true
	}
	return &Analyzer{
		Name: "chanleak",
		Doc: "in long-running packages, a spawned goroutine must not block on an unbuffered " +
			"channel without a select carrying a ctx/done case (or the close-fed worker-pool idiom)",
		Match: func(pkgPath string) bool { return match[pkgPath] },
		Run:   runChanLeak,
	}
}

func runChanLeak(p *Pass) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkChanLeak(p, fd)
			}
		}
	}
}

func checkChanLeak(p *Pass, fd *ast.FuncDecl) {
	var lits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
		return true
	})
	for _, lit := range lits {
		checkSpawnedLit(p, fd, lit)
	}
}

// checkSpawnedLit walks one spawned closure flagging blocking unbuffered
// operations outside a guarded select.
func checkSpawnedLit(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	// Map each comm-clause statement to its select, so an op that IS a
	// select case is judged by the select's other cases.
	guarded := make(map[ast.Node]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		safe := selectHasEscape(p, sel)
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if safe {
				guarded[cc.Comm] = true
				// Receives appear wrapped in assign/expr statements.
				if as, ok := cc.Comm.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					guarded[as.Rhs[0]] = true
				}
				if es, ok := cc.Comm.(*ast.ExprStmt); ok {
					guarded[es.X] = true
				}
			}
		}
		return true
	})

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if guarded[n] {
				return true
			}
			if ch, ok := unbufferedLocalChan(p, fd, n.Chan); ok {
				p.Reportf(n.Arrow,
					"goroutine blocks on unbuffered send to %s with no ctx/done select; a receiver that "+
						"bails out (cancellation, early error return) leaks this goroutine", ch)
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || guarded[n] {
				return true
			}
			if ch, ok := unbufferedLocalChan(p, fd, n.X); ok {
				p.Reportf(n.OpPos,
					"goroutine blocks on unbuffered receive from %s with no ctx/done select; a sender that "+
						"bails out leaks this goroutine", ch)
			}
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isChan := types.Unalias(tv.Type).(*types.Chan); !isChan {
				return true
			}
			if ch, ok := unbufferedLocalChan(p, fd, n.X); ok && !closedInFunc(p, fd, lit, n.X) {
				p.Reportf(n.For,
					"goroutine ranges over unbuffered %s that no other goroutine in this function closes; "+
						"if the feeder stops early the range never exits", ch)
			}
		}
		return true
	})
}

// selectHasEscape reports whether a select statement has an escape hatch:
// a default clause, or a receive case from a Done()-style channel (a
// ctx.Done()/c.Done() call, or an identifier whose name signals a
// done/stop/quit/cancel channel).
func selectHasEscape(p *Pass, sel *ast.SelectStmt) bool {
	comms := 0
	escape := false
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default clause: the op cannot block
		}
		comms++
		var recvExpr ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := c.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recvExpr = u.X
			}
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				if u, ok := c.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recvExpr = u.X
				}
			}
		}
		if recvExpr != nil && isDoneChan(recvExpr) {
			escape = true
		}
	}
	return escape && comms >= 2
}

// isDoneChan recognizes ctx.Done()-shaped escape channels.
func isDoneChan(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name == "Done"
		}
	case *ast.Ident:
		return doneName(e.Name)
	case *ast.SelectorExpr:
		return doneName(e.Sel.Name)
	}
	return false
}

func doneName(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "done") || strings.Contains(n, "stop") ||
		strings.Contains(n, "quit") || strings.Contains(n, "cancel")
}

// unbufferedLocalChan traces a channel expression to a make(chan …) in
// the enclosing function. It returns the channel's name and true only
// when the make is provably unbuffered (no capacity argument, or a
// constant zero capacity); unknown channels and buffered makes are not
// reported.
func unbufferedLocalChan(p *Pass, fd *ast.FuncDecl, ch ast.Expr) (string, bool) {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj, _ := p.Info.Uses[id].(*types.Var)
	if obj == nil {
		return "", false
	}
	if obj.Pos() < fd.Pos() || obj.Pos() >= fd.End() {
		return "", false
	}
	unbuffered := false
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || (p.Info.Defs[lid] != obj && p.Info.Uses[lid] != obj) {
				continue
			}
			if i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			mk, ok := call.Fun.(*ast.Ident)
			if !ok || mk.Name != "make" {
				continue
			}
			found = true
			unbuffered = len(call.Args) == 1 || (len(call.Args) == 2 && isConstZero(p, call.Args[1]))
		}
		return true
	})
	if !found || !unbuffered {
		return "", false
	}
	return "chan " + id.Name, true
}

// closedInFunc reports whether close(ch) is called anywhere in the
// function outside the ranging closure itself — the spawner or a sibling
// feeder goroutine closing the feed channel bounds the range.
func closedInFunc(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit, ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Info.Uses[id]
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() >= lit.Pos() && call.Pos() < lit.End() {
			return true // a close inside the ranging goroutine itself does not unblock it
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if aid, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && p.Info.Uses[aid] == obj {
			found = true
		}
		return true
	})
	return found
}
