// Package datasetdeclfix exercises the datasetdecl analyzer: a miniature
// experiment registry over a miniature dataset registry, covering exact
// names resolved through accessor chains, prefix+parameter names covered
// by wildcards, stale declarations, pseudo-datasets, dynamic names, and
// call-graph edges through interface dispatch and method values.
package datasetdeclfix

import "context"

// Set stands in for a built dataset.
type Set struct{}

// Registry stands in for the dataset registry; Get is the accessor the
// analyzer is configured with.
type Registry struct{}

// Get fetches a dataset by name.
func (r *Registry) Get(ctx context.Context, name string) (*Set, error) { return nil, nil }

// Study mirrors the real accessor chain shapes: exact constant two frames
// deep, prefix+parameter, and raw parameter passthrough.
type Study struct{ reg Registry }

// Dataset forwards its name parameter to the registry.
func (s *Study) Dataset(ctx context.Context, name string) (*Set, error) {
	return s.reg.Get(ctx, name)
}

// mustGet is the intermediate frame between Worldwide and the registry.
func (s *Study) mustGet(ctx context.Context, name string) *Set {
	set, err := s.reg.Get(ctx, name)
	if err != nil {
		panic(err)
	}
	return set
}

// Worldwide resolves to the exact name "worldwide" two frames above Get.
func (s *Study) Worldwide(ctx context.Context) *Set { return s.mustGet(ctx, "worldwide") }

// Keyed fetches "usa:"+key — a constant prefix plus a parameter.
func (s *Study) Keyed(ctx context.Context, key string) (*Set, error) {
	return s.reg.Get(ctx, "usa:"+key)
}

// Experiment mirrors core.Experiment's declaration fields.
type Experiment struct {
	ID       string
	Datasets []string
	Run      func(ctx context.Context, s *Study) (string, error)
}

// fetcher exercises CHA interface dispatch: the analyzer must follow
// f.fetch to the concrete wwFetcher.fetch.
type fetcher interface {
	fetch(ctx context.Context, s *Study)
}

type wwFetcher struct{}

func (wwFetcher) fetch(ctx context.Context, s *Study) { s.Worldwide(ctx) }

func registry() []Experiment {
	ww := []string{"worldwide"}
	return []Experiment{
		{ID: "OK", Datasets: ww, Run: runOK},
		{ID: "MISS", Run: runMiss},                                // want `experiment MISS reaches dataset "worldwide" .* but does not declare it`
		{ID: "STALE", Datasets: []string{"worldwide", "rok"}, Run: runOK}, // want `experiment STALE declares dataset "rok" but Run never fetches it`
		{ID: "WILD", Datasets: []string{"usa:*"}, Run: runWild},
		{ID: "DYN", Run: runDyn},
		{ID: "PSEUDO", Datasets: []string{"crawl"}, Run: runNone},
		{ID: "IFACE", Run: runIface}, // want `experiment IFACE reaches dataset "worldwide" .* but does not declare it`
		{ID: "MVAL", Run: runMval},   // want `experiment MVAL reaches dataset "worldwide" .* but does not declare it`
		//lint:allow datasetdecl fixture probe: the driver test asserts this suppression is honored
		{ID: "SUP", Run: runMiss},
	}
}

func runOK(ctx context.Context, s *Study) (string, error) {
	s.Worldwide(ctx)
	return "", nil
}

func runMiss(ctx context.Context, s *Study) (string, error) {
	s.Worldwide(ctx)
	return "", nil
}

func runWild(ctx context.Context, s *Study) (string, error) {
	_, err := s.Keyed(ctx, pick())
	return "", err
}

func runDyn(ctx context.Context, s *Study) (string, error) {
	name := pick()
	_, err := s.Dataset(ctx, name) // want `dataset name cannot be resolved statically`
	return "", err
}

func runNone(ctx context.Context, s *Study) (string, error) { return "", nil }

func runIface(ctx context.Context, s *Study) (string, error) {
	var f fetcher = wwFetcher{}
	f.fetch(ctx, s)
	return "", nil
}

func runMval(ctx context.Context, s *Study) (string, error) {
	f := s.Worldwide
	_ = f
	return "", nil
}

func pick() string { return "dynamic" }

var _ = registry
