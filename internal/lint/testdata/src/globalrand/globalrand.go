// Package globalrandfix exercises the globalrand analyzer: process-global
// draws and constant-seeded sources are flagged, while RNGs threaded from
// a caller-supplied seed stay quiet.
package globalrandfix

import "math/rand"

func globalInt() int {
	return rand.Int() // want `global math/rand\.Int`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

func constSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `constant seed`
}

const fixedSeed = 7

func constExprSeed() *rand.Rand {
	return rand.New(rand.NewSource(fixedSeed * 3)) // want `constant seed`
}

// The sanctioned forms: the seed or the generator is threaded in.
func threadedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func threadedDraw(r *rand.Rand) int {
	return r.Intn(10)
}

func derivedStream(r *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(r.Int63()))
}
