// Package exhaustivefix exercises the exhaustive analyzer: a switch over
// a locally-declared enum must cover every constant or carry a default.
package exhaustivefix

import "time"

type Code int

const (
	CodeOK Code = iota
	CodeWarn
	CodeFail
)

func missing(c Code) string {
	switch c { // want `missing CodeFail`
	case CodeOK:
		return "ok"
	case CodeWarn:
		return "warn"
	}
	return ""
}

func covered(c Code) string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeWarn, CodeFail:
		return "bad"
	}
	return ""
}

func defaulted(c Code) string {
	switch c {
	case CodeOK:
		return "ok"
	default:
		return "bad"
	}
}

// String-typed enums are enums too.
type Mode string

const (
	ModeFast Mode = "fast"
	ModeSafe Mode = "safe"
)

func stringEnum(m Mode) int {
	switch m { // want `missing ModeSafe`
	case ModeFast:
		return 1
	}
	return 0
}

// A type with a single constant is a sentinel, not an enum: quiet.
type sentinel int

const only sentinel = 1

func notEnum(s sentinel) bool {
	switch s {
	case only:
		return true
	}
	return false
}

// Enums declared outside the module (time.Month) are not ours to police.
func stdEnum(m time.Month) bool {
	switch m {
	case time.January:
		return true
	}
	return false
}
