// Package maprangefix exercises the maprange analyzer: ranging over a map
// is flagged unless it is the bare key-collection half of the
// collect-and-sort idiom.
package maprangefix

import "sort"

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

// keysOnly is the sanctioned key-collection idiom: the append order is
// discarded by the sort, so the loop stays quiet.
func keysOnly(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedWalk ranges over the sorted key slice, not the map: quiet.
func sortedWalk(m map[string]int) []int {
	out := make([]int, 0, len(m))
	for _, k := range keysOnly(m) {
		out = append(out, m[k])
	}
	return out
}

// Named map types are still maps.
type bag map[string]int

func drain(b bag) {
	for range b { // want `map iteration order is randomized`
	}
}

// Key collection that does anything beyond appending the key is not the
// idiom: the filter makes the body shape non-canonical.
func filteredKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is randomized`
		if m[k] > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
