// Package walltimefix exercises the walltime analyzer: every forbidden
// wall-clock read carries a want expectation, and the threaded-clock
// alternatives below must stay quiet.
package walltimefix

import (
	"time"

	wall "time"
)

func now() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since`
}

func after() <-chan time.Time {
	return time.After(time.Second) // want `wall-clock time\.After`
}

func tick() <-chan time.Time {
	return time.Tick(time.Second) // want `wall-clock time\.Tick`
}

func renamed() time.Time {
	return wall.Now() // want `wall-clock time\.Now`
}

// Clock is the sanctioned alternative: "now" arrives through an injected
// dependency, so same-seed runs replay on an identical timeline.
type Clock interface{ Now() time.Time }

func threaded(c Clock) time.Time {
	return c.Now()
}

// Methods named Now on non-time values must stay quiet.
type fakeTime struct{}

func (fakeTime) Now() time.Time { return time.Time{} }

func methodNow() time.Time {
	var ft fakeTime
	return ft.Now()
}

// A local identifier shadowing the import must stay quiet too.
func shadowed() time.Time {
	time := fakeTime{}
	return time.Now()
}
