// Package goroutineownerfix exercises the goroutineowner analyzer: a
// captured variable written on both sides of a go statement is flagged
// unless a WaitGroup join, a channel handoff, or a mutex pair orders the
// writes; index-slot writes and pre-spawn writes stay quiet.
package goroutineownerfix

import "sync"

// race writes n in the goroutine and again before the join: the classic
// capture race.
func race() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n = 1
	}()
	n = 2 // want `n is written both inside the goroutine spawned at line`
	wg.Wait()
	return n
}

// joined writes only after wg.Wait: the sanctioned handoff.
func joined() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n = 1
	}()
	wg.Wait()
	n = 2
	return n
}

// handoff orders the writes through a channel receive.
func handoff() int {
	n := 0
	done := make(chan struct{})
	go func() {
		n = 1
		close(done)
	}()
	<-done
	n = 2
	return n
}

// locked guards both sides with a mutex.
func locked() int {
	n := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		n = 1
		mu.Unlock()
	}()
	mu.Lock()
	n = 2
	mu.Unlock()
	wg.Wait()
	return n
}

// siblings write the same captured variable from two concurrent
// goroutines; the later spawn is the reported side.
func siblings() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n = 1
	}()
	go func() {
		defer wg.Done()
		n = 2 // want `n is written both inside the goroutine spawned at line`
	}()
	wg.Wait()
	return n
}

// slots uses the sanctioned disjoint-index idiom: out[i] writes are not
// captures of out itself, and the append happens after the join.
func slots() []int {
	out := make([]int, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i
		}(i)
	}
	wg.Wait()
	out = append(out, 4)
	return out
}

// prewrite only reads inside the goroutine; writes before the spawn are
// always safe.
func prewrite() int {
	n := 0
	n = 1
	ch := make(chan int, 1)
	go func() { ch <- n }()
	return <-ch
}

// nested finds the capture write through a closure nested inside the
// spawned goroutine.
func nested() int {
	n := 0
	done := make(chan struct{}, 1)
	go func() {
		f := func() { n = 1 }
		f()
		done <- struct{}{}
	}()
	n = 2 // want `n is written both inside the goroutine spawned at line`
	<-done
	return n
}

// suppressed pins the //lint:allow path for the driver test.
func suppressed() int {
	n := 0
	done := make(chan struct{}, 1)
	go func() {
		n = 1
		done <- struct{}{}
	}()
	//lint:allow goroutineowner fixture probe: the driver test asserts this suppression is honored
	n = 2
	<-done
	return n
}

var _ = []any{race, joined, handoff, locked, siblings, slots, prewrite, nested, suppressed}
