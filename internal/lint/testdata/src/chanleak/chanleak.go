// Package chanleakfix exercises the chanleak analyzer: goroutines that
// block on unbuffered channel operations with no escape hatch are
// flagged; select-with-done, default clauses, buffered channels, and the
// close-fed worker-pool idiom stay quiet.
package chanleakfix

import "context"

// leakSend parks forever if the receiver bails before draining.
func leakSend(xs []int) int {
	ch := make(chan int)
	go func() {
		for _, x := range xs {
			ch <- x // want `blocks on unbuffered send`
		}
	}()
	return <-ch
}

// leakRecv parks forever if no sender shows up.
func leakRecv() {
	ch := make(chan int)
	res := make(chan int, 1)
	go func() {
		res <- <-ch // want `blocks on unbuffered receive`
	}()
}

// leakRange never exits: nothing in this function closes the channel.
func leakRange() {
	idx := make(chan int)
	go func() {
		for i := range idx { // want `ranges over unbuffered`
			_ = i
		}
	}()
}

// okSelect carries the ctx.Done escape on every send.
func okSelect(ctx context.Context, xs []int) int {
	ch := make(chan int)
	go func() {
		for _, x := range xs {
			select {
			case ch <- x:
			case <-ctx.Done():
				return
			}
		}
	}()
	return <-ch
}

// okDoneChan escapes through a plain stop channel.
func okDoneChan(stop chan struct{}, xs []int) int {
	ch := make(chan int)
	go func() {
		for _, x := range xs {
			select {
			case ch <- x:
			case <-stop:
				return
			}
		}
	}()
	return <-ch
}

// okDefault never blocks: the send has a default clause.
func okDefault(xs []int) {
	ch := make(chan int)
	go func() {
		for _, x := range xs {
			select {
			case ch <- x:
			default:
			}
		}
	}()
}

// okBuffered sends into capacity sized to the work.
func okBuffered(xs []int) {
	ch := make(chan int, len(xs))
	go func() {
		for _, x := range xs {
			ch <- x
		}
	}()
}

// okWorkerPool is the sanctioned bounded-pool idiom: the spawner closes
// the feed channel, so the worker's range drains and exits.
func okWorkerPool(xs []int) {
	idx := make(chan int)
	done := make(chan struct{}, 1)
	go func() {
		for i := range idx {
			_ = i
		}
		done <- struct{}{}
	}()
	for i := range xs {
		idx <- i
	}
	close(idx)
	<-done
}

// suppressed pins the //lint:allow path for the driver test.
func suppressed() {
	ch := make(chan struct{})
	go func() {
		//lint:allow chanleak fixture probe: the driver test asserts this suppression is honored
		ch <- struct{}{}
	}()
	<-ch
}

var _ = []any{leakSend, leakRecv, leakRange, okSelect, okDoneChan, okDefault, okBuffered, okWorkerPool, suppressed}
