// Package suppressfix exercises the driver's //lint:allow machinery.
// lint_test.go asserts the exact findings (with line numbers) produced by
// running the walltime analyzer over this file, so keep the layout stable:
// the line of each construct is part of the test's expectations.
package suppressfix

import "time"

// A trailing suppression on the offending line.
func sameLine() time.Time {
	return time.Now() //lint:allow walltime fixture demonstrates a trailing suppression
}

// A suppression on the line directly above the offense.
func lineAbove() time.Time {
	//lint:allow walltime fixture demonstrates a line-above suppression
	return time.Now()
}

// A reason-less allow is malformed: it reports allow-syntax and the
// walltime finding survives.
func malformed() time.Time {
	return time.Now() //lint:allow walltime
}

// A well-formed allow that suppresses nothing reports allow-unused.
var unused = 3 //lint:allow walltime nothing on this line violates walltime

// An allow naming a check that does not exist must not silently rot.
var unknown = 4 //lint:allow warptime misspelled check names must be reported
