// Package hotallocfix exercises the hotalloc analyzer: the functions
// matching the configured hot-set patterns (HotWrite*, Codec.Append,
// build) are held to the zero-alloc idioms; coldPath repeats every
// violation and must stay quiet.
package hotallocfix

import "fmt"

// Codec stands in for a wire encoder with a hot Append method.
type Codec struct{ buf []byte }

// sink is a local interface for the boxing-conversion check.
type sink interface{ write() }

type file struct{}

func (file) write() {}

// HotWriteRecord matches the HotWrite* prefix pattern.
func HotWriteRecord(vals []string) string {
	s := fmt.Sprintf("%d values", len(vals)) // want `calls fmt\.Sprintf`
	for _, v := range vals {
		s = s + v // want `concatenates strings in a loop`
	}
	for i := range vals {
		s += vals[i] // want `concatenates strings in a loop`
	}
	return s
}

// HotWriteIndex covers the make and boxing idioms.
func HotWriteIndex(vals []string) int {
	m := make(map[string]int) // want `unsized map`
	for i, v := range vals {
		m[v] = i
	}
	sl := make([]byte, 0) // want `zero-length slice with no capacity`
	_ = sl
	var s sink = sink(file{}) // want `converts to interface type`
	s.write()
	return len(m)
}

// Append matches the Codec.Append method pattern; its one violation is
// suppressed for the driver's suppression test.
func (c *Codec) Append(vals []string) {
	//lint:allow hotalloc fixture probe: the driver test asserts this suppression is honored
	c.buf = append(c.buf, fmt.Sprintf("%v", vals)...)
}

// sized make, constant concat outside loops, and pre-sized slices are the
// sanctioned forms.
func build(vals []string) map[string]int {
	m := make(map[string]int, len(vals))
	buf := make([]byte, 0, 64)
	for _, v := range vals {
		buf = append(buf, v...)
	}
	const greeting = "hello" + " " + "world" // constant-folded: no allocation
	_ = greeting
	m[string(buf)] = len(vals)
	return m
}

// coldPath is off the hot set: every idiom above is allowed here.
func coldPath(vals []string) string {
	s := fmt.Sprintf("%d values", len(vals))
	for _, v := range vals {
		s = s + v
	}
	m := make(map[string]int)
	_ = m
	var k sink = sink(file{})
	k.write()
	return s
}
