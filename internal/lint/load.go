// Package loading for the lint driver. The loader discovers packages the
// way the go tool does (skipping testdata, vendor, and hidden or
// underscore directories for `...` patterns), parses each package's
// non-test files, and type-checks them with the standard library's source
// importer — no dependency on golang.org/x/tools. Test files are excluded
// on purpose: the invariants guard the measurement pipeline, and tests are
// free to use wall time and ad-hoc RNGs.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Module is the module path from go.mod.
	Module string
	// Fset maps this package's token positions. Packages loaded by the
	// same worker share one file set; packages from different workers do
	// not, so positions must always be resolved through the owning
	// package's Fset.
	Fset *token.FileSet
	// Files are the parsed non-test files, in filename order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression annotations.
	Info *types.Info
}

// Load resolves patterns relative to dir and returns the matched packages,
// parsed and type-checked. Patterns may be plain relative directories
// ("./internal/scanner", including paths inside testdata) or recursive
// ("./...", "./internal/..."). Type errors in any matched package abort
// the load: code that does not compile cannot be linted truthfully.
func Load(dir string, patterns []string) ([]*Package, error) {
	return LoadWorkers(dir, patterns, 0)
}

// maxLoadWorkers caps the automatic worker count: each worker carries its
// own importer universe (a full re-typecheck of the module and the std
// packages it touches), so memory grows linearly with workers and the
// returns diminish past a handful.
const maxLoadWorkers = 4

// LoadWorkers is Load with an explicit type-checking worker count;
// workers <= 0 selects min(GOMAXPROCS, 4). Each worker owns an
// independent file set and source importer — the std source importer is
// not safe for concurrent use, and sharing one would serialize the pool —
// so identical types in different packages may be distinct types.Object
// values. Analyzers that compare types across packages must compare
// stable strings (FuncKey, sigKey), never object identity. Package order,
// positions, and findings are identical for every worker count.
func LoadWorkers(dir string, patterns []string, workers int) ([]*Package, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, module, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > maxLoadWorkers {
			workers = maxLoadWorkers
		}
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}

	slots := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	if workers <= 1 {
		fset := token.NewFileSet()
		// One shared source importer: packages imported while checking
		// one target are memoized for the rest of the load.
		imp := importer.ForCompiler(fset, "source", nil)
		for i, d := range dirs {
			slots[i], errs[i] = loadDir(fset, imp, root, module, d)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fset := token.NewFileSet()
				imp := importer.ForCompiler(fset, "source", nil)
				for i := w; i < len(dirs); i += workers {
					slots[i], errs[i] = loadDir(fset, imp, root, module, dirs[i])
				}
			}(w)
		}
		wg.Wait()
	}
	// First error by directory order, so the reported failure does not
	// depend on worker scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, pkg := range slots {
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns turns the pattern list into a sorted, de-duplicated list
// of candidate package directories.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			start := filepath.Join(base, rest)
			err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if path != start && skipDir(d.Name()) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: expanding %q: %w", pat, err)
			}
			continue
		}
		d := filepath.Join(base, pat)
		if fi, err := os.Stat(d); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		add(d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a `...` walk should skip this directory, using
// the go tool's conventions.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// loadDir parses and type-checks the package in one directory, or returns
// (nil, nil) if the directory holds no non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, root, module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	path := module
	if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
		path = module + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}

	return &Package{
		Path:   path,
		Dir:    dir,
		Module: module,
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}, nil
}
