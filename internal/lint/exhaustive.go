package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive requires that a switch over a locally-declared enum type —
// a named int or string type with two or more declared constants, like
// verify.Code, scanner.Exception, or tlssim.Quirk — either covers every
// declared constant or carries a default clause. The paper's Table 2/
// Table 4 taxonomy lives in exactly such switches (Code.String,
// Exception.String, Result.Category); when a new error class is added,
// this check turns every switch that silently drops it into a build
// failure instead of a silently shrunken taxonomy.
func Exhaustive() *Analyzer {
	return &Analyzer{
		Name: "exhaustive",
		Doc:  "a switch over a locally-declared enum must cover every constant or have a default",
		Run: func(p *Pass) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					checkSwitch(p, sw)
					return true
				})
			}
		},
	}
}

// checkSwitch validates one tagged switch statement.
func checkSwitch(p *Pass, sw *ast.SwitchStmt) {
	tagType := p.Info.Types[sw.Tag].Type
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !underModule(obj.Pkg().Path(), p.Module) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return
	}
	consts := enumConstants(named)
	if len(consts) < 2 {
		return // one constant is a sentinel, not an enum
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // default clause: the switch owns its long tail explicitly
		}
		for _, e := range clause.List {
			if tv := p.Info.Types[e]; tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(),
		"switch over %s.%s is missing %s and has no default; cover the taxonomy or own the remainder with a default",
		obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
}

// enumConstants returns the constants of exactly type named declared in
// its defining package, in scope (i.e. sorted-name) order.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	return out
}

// underModule reports whether pkgPath is the module or a package inside it.
func underModule(pkgPath, module string) bool {
	return pkgPath == module || strings.HasPrefix(pkgPath, module+"/")
}
