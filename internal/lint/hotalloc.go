// The hotalloc analyzer turns the bench gate's zero-allocs/op discipline
// into a source-level check for a declared set of hot-path functions: the
// httpsim wire codecs, the scanner probe loop, the zero-copy JSON
// exporter, the cert fingerprint encoders, and the result-set build. The
// bench gate catches a regression after the fact and only on the paths a
// benchmark happens to exercise; this pass flags the allocation idioms at
// the line that introduces them.
//
// Four idioms are flagged: fmt.* calls (every Sprintf formats through
// reflection and allocates), string concatenation inside a loop (one
// allocation per iteration), unsized make of a map or a zero-length slice
// (growth reallocations on the hot path), and explicit conversions to an
// interface type (boxing). The check is lexical per function — a hot
// function's callees are vetted by their own entry in the hot set, not
// transitively, so the set stays an explicit, reviewable contract.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc builds the analyzer for a set of hot-path function patterns in
// FuncKey notation ("pkgpath.Func", "pkgpath.Recv.Method"), where a
// trailing * matches any suffix of the final name segment.
func HotAlloc(funcs ...string) *Analyzer {
	byPkg := make(map[string][]hotPat)
	for _, f := range funcs {
		pkg, pat := parseHotPattern(f)
		byPkg[pkg] = append(byPkg[pkg], pat)
	}
	return &Analyzer{
		Name: "hotalloc",
		Doc: "declared hot-path functions must not use fmt, concatenate strings in loops, " +
			"make unsized maps/slices, or box values into interfaces",
		Match: func(pkgPath string) bool { return len(byPkg[pkgPath]) > 0 },
		Run:   func(p *Pass) { runHotAlloc(p, byPkg[p.Path]) },
	}
}

// hotPat matches function names within one package: an optional receiver
// type and a name, either exact or a prefix (trailing *).
type hotPat struct {
	recv   string
	name   string
	prefix bool
}

// parseHotPattern splits "pkgpath.Name", "pkgpath.Recv.Method", with an
// optional trailing * on the final segment.
func parseHotPattern(s string) (pkg string, pat hotPat) {
	slash := strings.LastIndexByte(s, '/')
	dot := strings.IndexByte(s[slash+1:], '.')
	if dot < 0 {
		return s, hotPat{}
	}
	pkg = s[:slash+1+dot]
	rest := s[slash+1+dot+1:]
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		pat.recv, rest = rest[:i], rest[i+1:]
	}
	if strings.HasSuffix(rest, "*") {
		pat.prefix = true
		rest = strings.TrimSuffix(rest, "*")
	}
	pat.name = rest
	return pkg, pat
}

func (pat hotPat) matches(recv, name string) bool {
	if pat.recv != recv {
		return false
	}
	if pat.prefix {
		return strings.HasPrefix(name, pat.name)
	}
	return name == pat.name
}

// recvTypeName returns the bare receiver type name of a FuncDecl ("" for
// functions), with pointers and type parameters stripped.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

func runHotAlloc(p *Pass, pats []hotPat) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv, name := recvTypeName(fd), fd.Name.Name
			for _, pat := range pats {
				if pat.matches(recv, name) {
					hot := recv + "." + name
					if recv == "" {
						hot = name
					}
					checkHotFunc(p, fd, hot)
					break
				}
			}
		}
	}
}

// checkHotFunc walks one hot function's body flagging allocation idioms;
// inLoop tracks for/range nesting for the string-concat check.
func checkHotFunc(p *Pass, fd *ast.FuncDecl, hot string) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Init != nil {
					walk(m.Init, inLoop)
				}
				if m.Cond != nil {
					walk(m.Cond, inLoop)
				}
				if m.Post != nil {
					walk(m.Post, inLoop)
				}
				walk(m.Body, true)
				return false
			case *ast.RangeStmt:
				walk(m.X, inLoop)
				walk(m.Body, true)
				return false
			case *ast.CallExpr:
				checkHotCall(p, m, hot)
			case *ast.BinaryExpr:
				if m.Op == token.ADD && inLoop && isStringExpr(p, m) && !isConstExpr(p, m) {
					p.Reportf(m.OpPos,
						"hot path %s concatenates strings in a loop (one allocation per iteration); append to a byte slice instead", hot)
				}
			case *ast.AssignStmt:
				if m.Tok == token.ADD_ASSIGN && inLoop && len(m.Lhs) == 1 && isStringExpr(p, m.Lhs[0]) {
					p.Reportf(m.TokPos,
						"hot path %s concatenates strings in a loop (one allocation per iteration); append to a byte slice instead", hot)
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// checkHotCall flags fmt calls, unsized makes, and interface-boxing
// conversions.
func checkHotCall(p *Pass, call *ast.CallExpr, hot string) {
	// fmt.* calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isPkgFunc(p, sel, "fmt") {
		p.Reportf(call.Pos(),
			"hot path %s calls fmt.%s, which formats through reflection and allocates; use append-style serialization", hot, sel.Sel.Name)
		return
	}
	// Unsized make of a map or zero-length slice.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			tv, ok := p.Info.Types[call.Args[0]]
			if ok && tv.Type != nil {
				switch types.Unalias(tv.Type).(type) {
				case *types.Map:
					if len(call.Args) == 1 {
						p.Reportf(call.Pos(),
							"hot path %s makes an unsized map, which grows by rehashing; pass a size hint", hot)
					}
				case *types.Slice:
					if len(call.Args) == 2 && isConstZero(p, call.Args[1]) {
						p.Reportf(call.Pos(),
							"hot path %s makes a zero-length slice with no capacity; pass a capacity hint", hot)
					}
				}
			}
			return
		}
	}
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if atv, ok := p.Info.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
				p.Reportf(call.Pos(),
					"hot path %s converts to interface type %s, boxing the value (one allocation); keep the concrete type", hot, typeShort(tv.Type))
			}
		}
	}
}

func isStringExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := types.Unalias(tv.Type.Underlying()).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func isConstZero(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
