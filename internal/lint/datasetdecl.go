// The datasetdecl analyzer cross-checks the experiment scheduler's
// Datasets declarations against the dataset fetches each experiment's Run
// actually reaches. The scheduler (internal/core) pre-warms exactly the
// declared datasets before a barrier segment runs; an undeclared fetch
// defeats the pre-warm and can deadlock the shared pool, and a declared
// dataset never fetched is a stale declaration that wastes a warm scan.
// Neither failure is visible at compile time — both are walk-the-call-
// graph properties, which is what this module analyzer does.
//
// Dataset names are resolved by a bottom-up dataflow pass over the call
// graph: a function that fetches a dataset summarizes the name as an
// exact constant, a constant prefix plus one of its own parameters
// (s.USADataset: "usa:" + key), or a constant prefix with a dynamic rest.
// Summaries propagate to callers with arguments substituted at each call
// site, so runT2 -> Study.Worldwide -> Study.mustDataset -> Registry.Get
// resolves to the exact name "worldwide" three frames above the fetch. A
// name still dynamic at an experiment root is reported under the
// "datasetdecl-dynamic" subcheck and must be justified with an explicit
// //lint:allow.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CheckDatasetDynamic is datasetdecl's subcheck for dataset names that
// cannot be resolved statically from an experiment root.
const CheckDatasetDynamic = "datasetdecl-dynamic"

// DatasetDeclConfig names the types and accessors datasetdecl analyzes.
// All function references use FuncKey notation ("pkgpath.Recv.Method",
// "pkgpath.Func").
type DatasetDeclConfig struct {
	// ExperimentType is the qualified experiment struct type
	// ("pkgpath.TypeName") whose composite literals declare experiments.
	ExperimentType string
	// IDField, DatasetsField, and RunField name the literal's fields;
	// empty selects "ID", "Datasets", "Run".
	IDField       string
	DatasetsField string
	RunField      string
	// Accessors are the registry fetch functions; the dataset name is
	// the first string parameter of each.
	Accessors []string
	// Pseudo are declared names that name no registry dataset (crawl
	// corpora, CT logs): legal declarations that no fetch will match.
	Pseudo []string
}

// DefaultDatasetDeclConfig wires the analyzer to this module's scheduler
// and registry.
func DefaultDatasetDeclConfig() DatasetDeclConfig {
	return DatasetDeclConfig{
		ExperimentType: "repro/internal/core.Experiment",
		Accessors:      []string{"repro/internal/dataset.Registry.Get"},
		Pseudo:         []string{"crawl", "ct", "linkgraph"},
	}
}

// DatasetDecl builds the analyzer for one configuration.
func DatasetDecl(cfg DatasetDeclConfig) *Analyzer {
	if cfg.IDField == "" {
		cfg.IDField = "ID"
	}
	if cfg.DatasetsField == "" {
		cfg.DatasetsField = "Datasets"
	}
	if cfg.RunField == "" {
		cfg.RunField = "Run"
	}
	return &Analyzer{
		Name: "datasetdecl",
		Doc: "every dataset an experiment's Run reaches through the registry must appear in its " +
			"Datasets declaration, and every declared dataset must be reachable; dynamic names " +
			"need an explicit //lint:allow " + CheckDatasetDynamic,
		Subchecks: []string{CheckDatasetDynamic},
		RunModule: func(p *ModulePass) { runDatasetDecl(p, cfg) },
	}
}

// dsAccess is one dataset fetch as seen from some function: the name is
// prefix, optionally extended by the value of the function's param-th
// parameter (param >= 0) or by an unresolvable expression (exact false,
// param < 0).
type dsAccess struct {
	prefix string
	exact  bool
	param  int

	// pkg/pos locate the original registry fetch; dynPkg/dynPos locate
	// the expression where static resolution gave up.
	pkg    *Package
	pos    token.Pos
	dynPkg *Package
	dynPos token.Pos
}

func (a dsAccess) key() string {
	var b strings.Builder
	b.WriteString(a.prefix)
	b.WriteByte(0)
	if a.exact {
		b.WriteByte('e')
	}
	b.WriteByte(byte(a.param + 1))
	if a.pkg != nil {
		b.WriteString(a.pkg.Path)
	}
	b.WriteString(posKey(a.pos))
	if a.dynPkg != nil {
		b.WriteString(a.dynPkg.Path)
	}
	b.WriteString(posKey(a.dynPos))
	return b.String()
}

func posKey(pos token.Pos) string {
	// token.Pos values from different file sets may collide numerically;
	// the package path written alongside disambiguates.
	return itoa(int(pos))
}

// maxPrefixLen bounds prefix growth through recursive call chains; a
// prefix this long is treated as dynamic.
const maxPrefixLen = 200

// maxPropagationRounds bounds the fixpoint loop; real call chains here
// are a handful of frames deep.
const maxPropagationRounds = 32

func runDatasetDecl(p *ModulePass, cfg DatasetDeclConfig) {
	g := p.Prog.CallGraph()
	accessors := make(map[string]bool, len(cfg.Accessors))
	for _, a := range cfg.Accessors {
		accessors[a] = true
	}

	// Pass 1: direct summaries — every syntactic accessor call site.
	summaries := make(map[*FuncNode]map[string]dsAccess)
	addAccess := func(n *FuncNode, a dsAccess) bool {
		m := summaries[n]
		if m == nil {
			m = make(map[string]dsAccess)
			summaries[n] = m
		}
		k := a.key()
		if _, ok := m[k]; ok {
			return false
		}
		m[k] = a
		return true
	}
	for _, node := range sortedNodes(g) {
		if node.Decl == nil || node.Decl.Body == nil || node.Pkg == nil {
			continue
		}
		node := node
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id := calleeIdent(call.Fun)
			if id == nil {
				return true
			}
			obj, _ := node.Pkg.Info.Uses[id].(*types.Func)
			if obj == nil || !accessors[FuncKey(obj)] {
				return true
			}
			arg := datasetNameArg(node.Pkg, call, obj)
			if arg == nil {
				return true
			}
			a := evalDatasetName(node.Pkg, node.Decl, arg)
			a.pkg, a.pos = node.Pkg, call.Pos()
			addAccess(node, a)
			return true
		})
	}

	// Pass 2: propagate summaries bottom-up to callers, substituting
	// call-site arguments into param-form accesses.
	for round := 0; round < maxPropagationRounds; round++ {
		changed := false
		for _, caller := range sortedNodes(g) {
			if caller.Decl == nil || caller.Pkg == nil {
				continue
			}
			for _, e := range caller.Out {
				for _, k := range sortedAccessKeys(summaries[e.Callee]) {
					a := summaries[e.Callee][k]
					if a.param >= 0 {
						a = substituteArg(caller, e, a)
					}
					if len(a.prefix) > maxPrefixLen {
						a = dsAccess{pkg: a.pkg, pos: a.pos, param: -1, dynPkg: caller.Pkg, dynPos: e.Pos}
					}
					if addAccess(caller, a) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Pass 3: find experiment literals and check declarations.
	checkExperiments(p, cfg, g, summaries)
}

// sortedNodes returns the graph's nodes in deterministic key order.
func sortedNodes(g *CallGraph) []*FuncNode {
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	nodes := make([]*FuncNode, len(keys))
	for i, k := range keys {
		nodes[i] = g.Nodes[k]
	}
	return nodes
}

func sortedAccessKeys(m map[string]dsAccess) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// datasetNameArg returns the call argument holding the dataset name — the
// one feeding the callee's first string parameter — or nil.
func datasetNameArg(pkg *Package, call *ast.CallExpr, obj *types.Func) ast.Expr {
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		b, ok := types.Unalias(sig.Params().At(i).Type()).(*types.Basic)
		if ok && b.Kind() == types.String {
			if i < len(call.Args) {
				return call.Args[i]
			}
			return nil
		}
	}
	return nil
}

// evalDatasetName resolves a name expression inside decl to a dsAccess:
// exact constant, constant prefix + parameter, constant prefix + dynamic
// rest, or fully dynamic.
func evalDatasetName(pkg *Package, decl *ast.FuncDecl, expr ast.Expr) dsAccess {
	if tv, ok := pkg.Info.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return dsAccess{prefix: constant.StringVal(tv.Value), exact: true, param: -1}
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			left := evalDatasetName(pkg, decl, e.X)
			if left.exact {
				rest := evalDatasetName(pkg, decl, e.Y)
				rest.prefix = left.prefix + rest.prefix
				return rest
			}
		}
	case *ast.Ident:
		if idx := paramIndex(pkg, decl, e); idx >= 0 {
			return dsAccess{param: idx}
		}
	}
	return dsAccess{param: -1, dynPkg: pkg, dynPos: expr.Pos()}
}

// paramIndex returns the flattened parameter index of ident within decl's
// parameter list, or -1.
func paramIndex(pkg *Package, decl *ast.FuncDecl, id *ast.Ident) int {
	obj := pkg.Info.Uses[id]
	if obj == nil || decl.Type.Params == nil {
		return -1
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if pkg.Info.Defs[name] == obj {
				return idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return -1
}

// substituteArg resolves a callee's param-form access at one call site by
// evaluating the corresponding argument in the caller's context. A
// reference edge has no arguments: the parameter could be anything, so
// the access degrades to dynamic at the reference.
func substituteArg(caller *FuncNode, e Edge, a dsAccess) dsAccess {
	if e.Call == nil || a.param >= len(e.Call.Args) {
		return dsAccess{prefix: a.prefix, param: -1, pkg: a.pkg, pos: a.pos, dynPkg: caller.Pkg, dynPos: e.Pos}
	}
	sub := evalDatasetName(caller.Pkg, caller.Decl, e.Call.Args[a.param])
	sub.prefix = a.prefix + sub.prefix
	sub.pkg, sub.pos = a.pkg, a.pos
	return sub
}

// experimentDecl is one experiment composite literal.
type experimentDecl struct {
	pkg      *Package
	id       string
	declPos  token.Pos // Datasets field value, or the literal itself
	datasets []string  // nil plus !resolved when the list defies analysis
	resolved bool
	root     *FuncNode
}

// checkExperiments extracts every ExperimentType literal and compares its
// declaration against the accesses reachable from its Run root.
func checkExperiments(p *ModulePass, cfg DatasetDeclConfig, g *CallGraph, summaries map[*FuncNode]map[string]dsAccess) {
	pseudo := make(map[string]bool, len(cfg.Pseudo))
	for _, n := range cfg.Pseudo {
		pseudo[n] = true
	}
	// Dynamic-name findings are per call site, deduplicated across the
	// experiments whose roots reach the same site.
	dynReported := make(map[string]bool)

	for _, pkg := range p.Prog.Pkgs {
		for _, file := range pkg.Files {
			for _, exp := range experimentLiterals(pkg, file, cfg, g) {
				if exp.root == nil {
					continue
				}
				if !exp.resolved {
					p.Reportf(pkg, exp.declPos,
						"experiment %s: %s is not a static string list; datasetdecl cannot check the pre-warm declaration",
						exp.id, cfg.DatasetsField)
					continue
				}
				checkOneExperiment(p, cfg, exp, summaries, pseudo, dynReported)
			}
		}
	}
}

// checkOneExperiment reports undeclared accesses, unresolvable names, and
// stale declarations for one experiment.
func checkOneExperiment(p *ModulePass, cfg DatasetDeclConfig, exp experimentDecl,
	summaries map[*FuncNode]map[string]dsAccess, pseudo map[string]bool, dynReported map[string]bool) {

	var exactDecl []string
	var wildcards []string
	for _, d := range exp.datasets {
		if strings.HasSuffix(d, "*") {
			wildcards = append(wildcards, strings.TrimSuffix(d, "*"))
		} else {
			exactDecl = append(exactDecl, d)
		}
	}
	covered := func(name string) bool {
		for _, d := range exactDecl {
			if d == name {
				return true
			}
		}
		for _, w := range wildcards {
			if strings.HasPrefix(name, w) {
				return true
			}
		}
		return false
	}
	wildcardCovers := func(prefix string) bool {
		// A dynamic access with constant prefix P is covered when some
		// declared wildcard W* is a prefix of P (every name the access
		// can produce matches W*).
		for _, w := range wildcards {
			if strings.HasPrefix(prefix, w) {
				return true
			}
		}
		return false
	}

	usedExact := make(map[string]bool)
	usedWildcard := make(map[string]bool)
	markUsed := func(name string) {
		for _, d := range exactDecl {
			if d == name {
				usedExact[d] = true
			}
		}
		for _, w := range wildcards {
			if strings.HasPrefix(name, w) {
				usedWildcard[w] = true
			}
		}
	}

	reportedMiss := make(map[string]bool)
	for _, k := range sortedAccessKeys(summaries[exp.root]) {
		a := summaries[exp.root][k]
		switch {
		case a.exact:
			if covered(a.prefix) {
				markUsed(a.prefix)
			} else if !reportedMiss[a.prefix] {
				reportedMiss[a.prefix] = true
				p.Reportf(exp.pkg, exp.declPos,
					"experiment %s reaches dataset %q (%s) but does not declare it in %s; the scheduler cannot pre-warm it",
					exp.id, a.prefix, accessPos(a), cfg.DatasetsField)
			}
		default:
			// Dynamic (possibly with a constant prefix).
			if wildcardCovers(a.prefix) {
				for _, w := range wildcards {
					if strings.HasPrefix(a.prefix, w) {
						usedWildcard[w] = true
					}
				}
				continue
			}
			if a.dynPkg == nil {
				continue
			}
			site := a.dynPkg.Path + ":" + a.dynPkg.Fset.Position(a.dynPos).String()
			if dynReported[site] {
				continue
			}
			dynReported[site] = true
			detail := "dataset name cannot be resolved statically"
			if a.prefix != "" {
				detail = fmt.Sprintf("dataset name resolves only to prefix %q+…", a.prefix)
			}
			p.ReportCheckf(CheckDatasetDynamic, a.dynPkg, a.dynPos,
				"%s (reached from experiment %s via %s); declare a %q wildcard or use a constant",
				detail, exp.id, accessPos(a), a.prefix+"*")
		}
	}

	for _, d := range exp.datasets {
		if pseudo[d] {
			continue
		}
		if strings.HasSuffix(d, "*") {
			if !usedWildcard[strings.TrimSuffix(d, "*")] {
				p.Reportf(exp.pkg, exp.declPos,
					"experiment %s declares dataset %q but Run never fetches a matching name (stale pre-warm)",
					exp.id, d)
			}
		} else if !usedExact[d] {
			p.Reportf(exp.pkg, exp.declPos,
				"experiment %s declares dataset %q but Run never fetches it (stale pre-warm)",
				exp.id, d)
		}
	}
}

// accessPos renders the original fetch site of an access for messages.
func accessPos(a dsAccess) string {
	if a.pkg == nil {
		return "?"
	}
	pos := a.pkg.Fset.Position(a.pos)
	return shortPath(pos.Filename) + ":" + itoa(pos.Line)
}

func shortPath(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// experimentLiterals extracts every cfg.ExperimentType composite literal
// in file, resolving the ID, Datasets, and Run fields.
func experimentLiterals(pkg *Package, file *ast.File, cfg DatasetDeclConfig, g *CallGraph) []experimentDecl {
	var out []experimentDecl

	// Track the innermost enclosing FuncDecl so local Datasets variables
	// (ww := []string{...}) can be resolved within its body.
	var withDecl func(n ast.Node, decl *ast.FuncDecl)
	withDecl = func(n ast.Node, decl *ast.FuncDecl) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m != n {
					withDecl(m, m)
					return false
				}
			case *ast.CompositeLit:
				if exp, ok := parseExperimentLit(pkg, decl, m, cfg, g); ok {
					out = append(out, exp)
				}
			}
			return true
		})
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			withDecl(fd, fd)
		} else {
			withDecl(d, nil)
		}
	}
	return out
}

// parseExperimentLit reads one composite literal if its type matches.
func parseExperimentLit(pkg *Package, decl *ast.FuncDecl, lit *ast.CompositeLit, cfg DatasetDeclConfig, g *CallGraph) (experimentDecl, bool) {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return experimentDecl{}, false
	}
	t := types.Unalias(tv.Type)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || typeKeyOf(named) != cfg.ExperimentType {
		return experimentDecl{}, false
	}

	exp := experimentDecl{pkg: pkg, id: "?", declPos: lit.Pos(), resolved: true}
	var datasetsExpr, runExpr ast.Expr
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case cfg.IDField:
			if tv, ok := pkg.Info.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				exp.id = constant.StringVal(tv.Value)
			}
		case cfg.DatasetsField:
			datasetsExpr = kv.Value
			exp.declPos = kv.Value.Pos()
		case cfg.RunField:
			runExpr = kv.Value
		}
	}
	if runExpr == nil {
		return experimentDecl{}, false
	}
	if id := calleeIdent(runExpr); id != nil {
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			exp.root = g.Lookup(FuncKey(fn))
		}
	}
	if datasetsExpr != nil {
		exp.datasets, exp.resolved = resolveStringList(pkg, decl, datasetsExpr)
	}
	return exp, true
}

// typeKeyOf renders a named type as "pkgpath.Name".
func typeKeyOf(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// resolveStringList evaluates a Datasets expression to its constant
// elements: a string composite literal in place, or a local identifier
// assigned exactly one such literal anywhere in the enclosing function.
func resolveStringList(pkg *Package, decl *ast.FuncDecl, expr ast.Expr) ([]string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		var names []string
		for _, elt := range e.Elts {
			tv, ok := pkg.Info.Types[elt]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return nil, false
			}
			names = append(names, constant.StringVal(tv.Value))
		}
		return names, true
	case *ast.Ident:
		if e.Name == "nil" {
			return nil, true
		}
		obj := pkg.Info.Uses[e]
		if obj == nil || decl == nil || decl.Body == nil {
			return nil, false
		}
		var lit *ast.CompositeLit
		assigns := 0
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || (pkg.Info.Defs[id] != obj && pkg.Info.Uses[id] != obj) {
						continue
					}
					assigns++
					if i < len(n.Rhs) {
						lit, _ = ast.Unparen(n.Rhs[i]).(*ast.CompositeLit)
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if pkg.Info.Defs[name] != obj {
						continue
					}
					assigns++
					if i < len(n.Values) {
						lit, _ = ast.Unparen(n.Values[i]).(*ast.CompositeLit)
					}
				}
			}
			return true
		})
		if assigns != 1 || lit == nil {
			return nil, false
		}
		return resolveStringList(pkg, decl, lit)
	}
	return nil, false
}
