package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePath returns the import path the loader assigns to a fixture
// package under testdata/src.
func fixturePath(name string) string {
	return "repro/internal/lint/testdata/src/" + name
}

// runFixture lints one fixture package with the given analyzers.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	findings, err := Run(".", []string{"./testdata/src/" + name}, analyzers)
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	return findings
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// checkWants cross-checks findings against the fixture's `// want` comments:
// every want line must be hit by a matching finding, and every finding must
// be claimed by a want.
func checkWants(t *testing.T, name string, findings []Finding) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, m[1], err)
			}
			wants = append(wants, &want{file: e.Name(), line: line, re: re})
		}
		f.Close()
	}

	for _, fd := range findings {
		claimed := false
		for _, w := range wants {
			if filepath.Base(fd.Pos.Filename) == w.file && fd.Pos.Line == w.line && w.re.MatchString(fd.Message) {
				w.hit = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no matching finding", w.file, w.line, w.re)
		}
	}
}

func TestWalltimeFixture(t *testing.T) {
	checkWants(t, "walltime", runFixture(t, "walltime", Walltime()))
}

func TestWalltimePackageAllowlist(t *testing.T) {
	// The same fixture lints clean when its package is on the analyzer's
	// wall-clock allowlist (the tlsprobe/simclock exemption mechanism).
	findings := runFixture(t, "walltime", Walltime(fixturePath("walltime")))
	for _, f := range findings {
		t.Errorf("allowlisted package still reported: %s", f)
	}
}

func TestGlobalRandFixture(t *testing.T) {
	checkWants(t, "globalrand", runFixture(t, "globalrand", GlobalRand()))
}

func TestMapRangeFixture(t *testing.T) {
	checkWants(t, "maprange", runFixture(t, "maprange", MapRange(fixturePath("maprange"))))
}

func TestMapRangeScope(t *testing.T) {
	// maprange only applies to the configured deterministic packages.
	findings := runFixture(t, "maprange", MapRange("repro/internal/world"))
	for _, f := range findings {
		t.Errorf("out-of-scope package reported: %s", f)
	}
}

func TestExhaustiveFixture(t *testing.T) {
	checkWants(t, "exhaustive", runFixture(t, "exhaustive", Exhaustive()))
}

// fixtureDatasetDecl configures datasetdecl against the fixture package's
// own miniature registry and experiment type.
func fixtureDatasetDecl() *Analyzer {
	return DatasetDecl(DatasetDeclConfig{
		ExperimentType: fixturePath("datasetdecl") + ".Experiment",
		Accessors:      []string{fixturePath("datasetdecl") + ".Registry.Get"},
		Pseudo:         []string{"crawl"},
	})
}

// fixtureHotAlloc declares the fixture's hot set: a name-prefix pattern,
// a method pattern, and an exact function.
func fixtureHotAlloc() *Analyzer {
	return HotAlloc(
		fixturePath("hotalloc")+".HotWrite*",
		fixturePath("hotalloc")+".Codec.Append",
		fixturePath("hotalloc")+".build",
	)
}

func TestDatasetDeclFixture(t *testing.T) {
	checkWants(t, "datasetdecl", runFixture(t, "datasetdecl", fixtureDatasetDecl()))
}

func TestGoroutineOwnerFixture(t *testing.T) {
	checkWants(t, "goroutineowner", runFixture(t, "goroutineowner", GoroutineOwner()))
}

func TestHotAllocFixture(t *testing.T) {
	checkWants(t, "hotalloc", runFixture(t, "hotalloc", fixtureHotAlloc()))
}

func TestChanLeakFixture(t *testing.T) {
	checkWants(t, "chanleak", runFixture(t, "chanleak", ChanLeak(fixturePath("chanleak"))))
}

func TestChanLeakScope(t *testing.T) {
	// chanleak only applies to the configured long-running packages.
	findings := runFixture(t, "chanleak", ChanLeak("repro/internal/core"))
	for _, f := range findings {
		if f.Check == "chanleak" {
			t.Errorf("out-of-scope package reported: %s", f)
		}
	}
}

// TestDatasetDeclSuppression pins the module-analyzer suppression path
// end to end: the SUP experiment's finding is marked suppressed by the
// allow above its literal, and RunAll still carries it.
func TestDatasetDeclSuppression(t *testing.T) {
	all, err := RunAll(".", []string{"./testdata/src/datasetdecl"}, []*Analyzer{fixtureDatasetDecl()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range all {
		if f.Suppressed {
			found = true
			if f.Check != "datasetdecl" || !strings.Contains(f.Message, "SUP") {
				t.Errorf("unexpected suppressed finding: %s", f)
			}
		}
	}
	if !found {
		t.Fatalf("RunAll dropped the suppressed SUP finding:\n%v", all)
	}
}

// TestSuppressions pins the driver's //lint:allow behaviour exactly: which
// findings are suppressed, which survive, what the driver reports about
// broken and unused allows, and the deterministic output order.
func TestSuppressions(t *testing.T) {
	findings := runFixture(t, "suppress", Walltime())
	type key struct {
		line  int
		check string
	}
	got := make([]key, 0, len(findings))
	for _, f := range findings {
		got = append(got, key{f.Pos.Line, f.Check})
	}
	want := []key{
		{23, "walltime"},       // reason-less allow does not suppress
		{23, CheckAllowSyntax}, // ...and is itself reported
		{27, CheckAllowUnused}, // allow with nothing to suppress
		{30, CheckAllowUnused}, // allow naming an unknown check
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("findings (in order) = %v, want %v\nfull: %v", got, want, findings)
	}
	for _, f := range findings {
		if f.Pos.Line == 11 || f.Pos.Line == 17 {
			t.Errorf("suppressed line still reported: %s", f)
		}
	}
}

// TestDeterministicOrder runs the same load under all eight analyzers —
// per-package and module-wide — at several loader worker counts and
// requires byte-identical, sorted output from every run.
func TestDeterministicOrder(t *testing.T) {
	analyzers := []*Analyzer{
		Walltime(), GlobalRand(), MapRange(fixturePath("maprange")), Exhaustive(),
		fixtureDatasetDecl(), GoroutineOwner(), fixtureHotAlloc(), ChanLeak(fixturePath("chanleak")),
	}
	patterns := []string{
		"./testdata/src/walltime",
		"./testdata/src/globalrand",
		"./testdata/src/maprange",
		"./testdata/src/exhaustive",
		"./testdata/src/datasetdecl",
		"./testdata/src/goroutineowner",
		"./testdata/src/hotalloc",
		"./testdata/src/chanleak",
	}
	run := func(workers int) []Finding {
		all, err := RunAll(".", patterns, analyzers, workers)
		if err != nil {
			t.Fatal(err)
		}
		return all
	}
	first := run(1)
	for _, workers := range []int{1, 2, 4} {
		again := run(workers)
		if fmt.Sprint(first) != fmt.Sprint(again) {
			t.Fatalf("workers=%d disagrees with workers=1:\n--- first\n%v\n--- again\n%v", workers, first, again)
		}
	}
	resorted := append([]Finding(nil), first...)
	sortFindings(resorted)
	if fmt.Sprint(first) != fmt.Sprint(resorted) {
		t.Fatalf("output not in canonical order:\n%v", first)
	}
	if len(first) < 16 {
		t.Fatalf("expected findings from every fixture, got %d:\n%v", len(first), first)
	}
}

// TestRepoLintsClean is the load-bearing smoke test behind the CI lint
// job: govlint's exact configuration must report nothing on the real tree.
// Reverting the tlssim clock fix, deleting any //lint:allow, or letting a
// taxonomy switch drift makes this test fail. The suppression audit rides
// along: zero allow-unused and allow-syntax findings repo-wide, so a
// stale or malformed //lint:allow rots loudly.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	all, err := RunAll(root, []string{"./..."}, DefaultAnalyzers(), 0)
	if err != nil {
		t.Fatal(err)
	}
	suppressed := make(map[string]int)
	for _, f := range all {
		if f.Suppressed {
			suppressed[f.Check]++
			continue
		}
		t.Errorf("%s", f)
	}
	// Suppression audit: every surviving driver finding above already
	// fails the test, but assert the two audit checks explicitly so the
	// contract is visible even if the loop changes.
	for _, f := range all {
		if !f.Suppressed && (f.Check == CheckAllowUnused || f.Check == CheckAllowSyntax) {
			t.Errorf("suppression audit: %s", f)
		}
	}
	t.Logf("suppressed findings by check: %v", suppressed)
}

// TestDatasetDeclLive demonstrates datasetdecl on the real registry: a
// copy of the module with E7's Datasets mis-declared (the "worldwide"
// pre-warm dropped) must produce the undeclared-dataset finding that the
// pristine tree — per TestRepoLintsClean — does not.
func TestDatasetDeclLive(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		if d.IsDir() {
			if path != root && (strings.HasPrefix(d.Name(), ".") || d.Name() == "results") {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(tmp, rel), 0o755)
		}
		if !strings.HasSuffix(d.Name(), ".go") && d.Name() != "go.mod" {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(filepath.Join(tmp, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}

	expFile := filepath.Join(tmp, "internal", "core", "experiments.go")
	src, err := os.ReadFile(expFile)
	if err != nil {
		t.Fatal(err)
	}
	const good = `Datasets: []string{"worldwide", "acmefleet"}, MutatesWorld: true, Run: runE7`
	const bad = `Datasets: []string{"acmefleet"}, MutatesWorld: true, Run: runE7`
	if !strings.Contains(string(src), good) {
		t.Fatalf("experiments.go no longer contains E7's declaration %q; update this test", good)
	}
	mut := strings.Replace(string(src), good, bad, 1)
	if err := os.WriteFile(expFile, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}

	findings, err := Run(tmp, []string{"./internal/core"}, []*Analyzer{DatasetDecl(DefaultDatasetDeclConfig())})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, f := range findings {
		if f.Check == "datasetdecl" && strings.Contains(f.Message, "experiment E7") &&
			strings.Contains(f.Message, `"worldwide"`) {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("mis-declared E7 produced no undeclared-worldwide finding; got:\n%v", findings)
	}
}
