package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePath returns the import path the loader assigns to a fixture
// package under testdata/src.
func fixturePath(name string) string {
	return "repro/internal/lint/testdata/src/" + name
}

// runFixture lints one fixture package with the given analyzers.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	findings, err := Run(".", []string{"./testdata/src/" + name}, analyzers)
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	return findings
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// checkWants cross-checks findings against the fixture's `// want` comments:
// every want line must be hit by a matching finding, and every finding must
// be claimed by a want.
func checkWants(t *testing.T, name string, findings []Finding) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, m[1], err)
			}
			wants = append(wants, &want{file: e.Name(), line: line, re: re})
		}
		f.Close()
	}

	for _, fd := range findings {
		claimed := false
		for _, w := range wants {
			if filepath.Base(fd.Pos.Filename) == w.file && fd.Pos.Line == w.line && w.re.MatchString(fd.Message) {
				w.hit = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no matching finding", w.file, w.line, w.re)
		}
	}
}

func TestWalltimeFixture(t *testing.T) {
	checkWants(t, "walltime", runFixture(t, "walltime", Walltime()))
}

func TestWalltimePackageAllowlist(t *testing.T) {
	// The same fixture lints clean when its package is on the analyzer's
	// wall-clock allowlist (the tlsprobe/simclock exemption mechanism).
	findings := runFixture(t, "walltime", Walltime(fixturePath("walltime")))
	for _, f := range findings {
		t.Errorf("allowlisted package still reported: %s", f)
	}
}

func TestGlobalRandFixture(t *testing.T) {
	checkWants(t, "globalrand", runFixture(t, "globalrand", GlobalRand()))
}

func TestMapRangeFixture(t *testing.T) {
	checkWants(t, "maprange", runFixture(t, "maprange", MapRange(fixturePath("maprange"))))
}

func TestMapRangeScope(t *testing.T) {
	// maprange only applies to the configured deterministic packages.
	findings := runFixture(t, "maprange", MapRange("repro/internal/world"))
	for _, f := range findings {
		t.Errorf("out-of-scope package reported: %s", f)
	}
}

func TestExhaustiveFixture(t *testing.T) {
	checkWants(t, "exhaustive", runFixture(t, "exhaustive", Exhaustive()))
}

// TestSuppressions pins the driver's //lint:allow behaviour exactly: which
// findings are suppressed, which survive, what the driver reports about
// broken and unused allows, and the deterministic output order.
func TestSuppressions(t *testing.T) {
	findings := runFixture(t, "suppress", Walltime())
	type key struct {
		line  int
		check string
	}
	got := make([]key, 0, len(findings))
	for _, f := range findings {
		got = append(got, key{f.Pos.Line, f.Check})
	}
	want := []key{
		{23, "walltime"},       // reason-less allow does not suppress
		{23, CheckAllowSyntax}, // ...and is itself reported
		{27, CheckAllowUnused}, // allow with nothing to suppress
		{30, CheckAllowUnused}, // allow naming an unknown check
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("findings (in order) = %v, want %v\nfull: %v", got, want, findings)
	}
	for _, f := range findings {
		if f.Pos.Line == 11 || f.Pos.Line == 17 {
			t.Errorf("suppressed line still reported: %s", f)
		}
	}
}

// TestDeterministicOrder runs the same multi-analyzer load twice and
// requires byte-identical, sorted output.
func TestDeterministicOrder(t *testing.T) {
	analyzers := []*Analyzer{Walltime(), GlobalRand(), MapRange(fixturePath("maprange")), Exhaustive()}
	patterns := []string{
		"./testdata/src/walltime",
		"./testdata/src/globalrand",
		"./testdata/src/maprange",
		"./testdata/src/exhaustive",
	}
	run := func() []Finding {
		findings, err := Run(".", patterns, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}
	first := run()
	second := run()
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("two identical runs disagree:\n--- first\n%v\n--- second\n%v", first, second)
	}
	resorted := append([]Finding(nil), first...)
	sortFindings(resorted)
	if fmt.Sprint(first) != fmt.Sprint(resorted) {
		t.Fatalf("output not in canonical order:\n%v", first)
	}
	if len(first) < 8 {
		t.Fatalf("expected findings from every fixture, got %d:\n%v", len(first), first)
	}
}

// TestRepoLintsClean is the load-bearing smoke test behind the CI lint
// job: govlint's exact configuration must report nothing on the real tree.
// Reverting the tlssim clock fix, deleting any //lint:allow, or letting a
// taxonomy switch drift makes this test fail.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, []string{"./..."}, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
