package lint

import "go/ast"

// globalRandFuncs are the math/rand package-level draws that consume the
// process-global source. rand.New and rand.NewSource are absent: they are
// the sanctioned construction path and are checked separately for
// constant (un-threaded) seeds.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// GlobalRand forbids drawing from math/rand's process-global source and
// seeding a fresh source with a compile-time constant. Every RNG in the
// pipeline must be threaded from the world/study seed (world.Config.Seed →
// per-subsystem rand.New(rand.NewSource(root.Int63())) streams); a global
// draw shares hidden state across goroutines and a constant seed creates a
// stream that ignores the study seed entirely. Test files are outside the
// loader's view and therefore exempt by construction.
func GlobalRand() *Analyzer {
	return &Analyzer{
		Name: "globalrand",
		Doc:  "forbid global math/rand draws and constant-seeded sources; thread RNGs from the study seed",
		Run: func(p *Pass) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SelectorExpr:
						if isPkgFunc(p, n, "math/rand") && globalRandFuncs[n.Sel.Name] {
							p.Reportf(n.Pos(),
								"global math/rand.%s draws from process-wide hidden state; thread a *rand.Rand from the study seed",
								n.Sel.Name)
						}
					case *ast.CallExpr:
						sel, ok := n.Fun.(*ast.SelectorExpr)
						if !ok || !isPkgFunc(p, sel, "math/rand") || sel.Sel.Name != "NewSource" {
							return true
						}
						if len(n.Args) == 1 && p.Info.Types[n.Args[0]].Value != nil {
							p.Reportf(n.Pos(),
								"rand.NewSource with a constant seed creates an RNG stream untethered from the study seed; derive the seed from the threaded RNG or config")
						}
					}
					return true
				})
			}
		},
	}
}
