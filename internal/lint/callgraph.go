// Module-wide call graph for the inter-procedural analyzers. The graph is
// built by class-hierarchy analysis (CHA) over the loaded go/types info:
// static calls resolve to their declared callee, and calls through an
// interface method resolve to every concrete method in the module with the
// same name and signature. That over-approximation is sound for this
// codebase's dispatch (no reflection, no plugin loading) and cheap enough
// to rebuild on every lint run.
//
// Nodes are keyed by a package-path-qualified string rather than by
// *types.Func identity because the parallel loader type-checks each
// package in its own importer universe: the same function seen from two
// packages is two distinct types.Object values, but one FuncKey.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Program is the whole loaded module: every package plus the lazily built
// call graph shared by the module-level analyzers.
type Program struct {
	// Pkgs are the loaded packages, sorted by import path.
	Pkgs []*Package

	byFile map[string]*Package

	once  sync.Once
	graph *CallGraph
}

// NewProgram wraps a loaded package list.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs, byFile: make(map[string]*Package)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			p.byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	return p
}

// PackageOf returns the loaded package owning filename, or nil.
func (p *Program) PackageOf(filename string) *Package {
	return p.byFile[filename]
}

// CallGraph builds (once) and returns the module call graph.
func (p *Program) CallGraph() *CallGraph {
	p.once.Do(func() { p.graph = buildCallGraph(p.Pkgs) })
	return p.graph
}

// EdgeKind classifies how a call-graph edge was discovered.
type EdgeKind int

const (
	// EdgeCall is a direct static call.
	EdgeCall EdgeKind = iota
	// EdgeDynamic is a call through an interface method, resolved by CHA
	// to a concrete method with a matching name and signature.
	EdgeDynamic
	// EdgeRef is a non-call reference — a method value, a function value
	// assigned or passed along. The callee may run wherever the value
	// flows, so reachability walks follow reference edges too.
	EdgeRef
)

// Edge is one outgoing call or reference.
type Edge struct {
	// Callee is the target node.
	Callee *FuncNode
	// Call is the call expression, nil for reference edges. For method
	// calls Call.Args aligns with the callee's parameters (the receiver
	// is part of Call.Fun).
	Call *ast.CallExpr
	// Pos locates the call or reference in the caller's file set.
	Pos token.Pos
	// Kind classifies the edge.
	Kind EdgeKind
}

// FuncNode is one function or method in the call graph.
type FuncNode struct {
	// Key is the stable identity: pkgpath.Func or pkgpath.Recv.Method
	// with any pointer receiver stripped.
	Key string
	// Name is the bare function or method name.
	Name string
	// Pkg and Decl are set when the function's body was loaded; a node
	// for a callee outside the loaded set has neither.
	Pkg  *Package
	Decl *ast.FuncDecl
	// Out lists every call and reference made by the body, in source
	// order. Calls made inside function literals declared in the body
	// are attributed to this node: a closure runs with its creator's
	// obligations.
	Out []Edge
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	// Nodes maps FuncKey to node.
	Nodes map[string]*FuncNode
}

// Lookup returns the node with the given key, or nil.
func (g *CallGraph) Lookup(key string) *FuncNode {
	return g.Nodes[key]
}

// Reachable returns every node reachable from root over call, dynamic,
// and reference edges, including root itself.
func (g *CallGraph) Reachable(root *FuncNode) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{root: true}
	work := []*FuncNode{root}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	return seen
}

func (g *CallGraph) node(key, name string) *FuncNode {
	n := g.Nodes[key]
	if n == nil {
		n = &FuncNode{Key: key, Name: name}
		g.Nodes[key] = n
	}
	return n
}

// FuncKey renders a *types.Func as its stable cross-universe identity:
// "pkgpath.Name" for functions, "pkgpath.Recv.Name" for methods with the
// pointer stripped from the receiver, so value and pointer methods of one
// type share a namespace with no collisions (Go forbids both v and *v
// methods of the same name).
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
		return pkg + "." + types.TypeString(t, nil) + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// sigKey renders a method signature (receiver excluded) with package-path
// qualified type names, so signatures from different importer universes
// compare equal exactly when the types do.
func sigKey(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteByte(')')
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteByte('(')
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	b.WriteByte(')')
	return b.String()
}

// buildCallGraph runs the two CHA passes: declare a node per FuncDecl,
// then walk every body recording static calls, CHA-resolved dynamic
// calls, and reference edges.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*FuncNode)}

	type declared struct {
		pkg  *Package
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var decls []declared
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := g.node(FuncKey(obj), obj.Name())
				n.Pkg, n.Decl = pkg, fd
				decls = append(decls, declared{pkg, fd, obj})
			}
		}
	}

	// CHA index: concrete method name + signature -> implementing nodes.
	// Interface methods are excluded (they are dispatch sites, not
	// targets); the index is deterministic because decls is.
	methodIndex := make(map[string][]*FuncNode)
	for _, d := range decls {
		sig := d.obj.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil || types.IsInterface(recv.Type()) {
			continue
		}
		k := d.obj.Name() + "|" + sigKey(sig)
		methodIndex[k] = append(methodIndex[k], g.Nodes[FuncKey(d.obj)])
	}

	for _, d := range decls {
		if d.decl.Body == nil {
			continue
		}
		addEdges(g, methodIndex, d.pkg, g.Nodes[FuncKey(d.obj)], d.decl.Body)
	}
	return g
}

// calleeIdent returns the identifier that names the called function in a
// call's Fun expression, or nil when the call is through a computed value.
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	case *ast.ParenExpr:
		return calleeIdent(f.X)
	case *ast.IndexExpr:
		return calleeIdent(f.X)
	case *ast.IndexListExpr:
		return calleeIdent(f.X)
	}
	return nil
}

// addEdges records from's outgoing edges: every identifier in body that
// resolves to a *types.Func becomes a call edge (when it names a call's
// callee) or a reference edge (method value, function value). Calls
// through interface methods fan out to every CHA-matching concrete
// method in the module.
func addEdges(g *CallGraph, methodIndex map[string][]*FuncNode, pkg *Package, from *FuncNode, body *ast.BlockStmt) {
	callFor := make(map[*ast.Ident]*ast.CallExpr)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id := calleeIdent(call.Fun); id != nil {
				callFor[id] = call
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := pkg.Info.Uses[id].(*types.Func)
		if obj == nil {
			return true
		}
		call := callFor[id]
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			kind := EdgeDynamic
			if call == nil {
				kind = EdgeRef
			}
			for _, callee := range methodIndex[obj.Name()+"|"+sigKey(sig)] {
				from.Out = append(from.Out, Edge{Callee: callee, Call: call, Pos: id.Pos(), Kind: kind})
			}
			return true
		}
		kind := EdgeCall
		if call == nil {
			kind = EdgeRef
		}
		from.Out = append(from.Out, Edge{Callee: g.node(FuncKey(obj), obj.Name()), Call: call, Pos: id.Pos(), Kind: kind})
		return true
	})
}
