package lint

import (
	"go/ast"
	"go/types"
)

// walltimeFuncs are the package-level time functions that read the wall
// clock. time.Until and the timer constructors are deliberately absent:
// they only matter once a wall instant is already in hand, and the Real
// clock's own Sleep needs timers.
var walltimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"After": true,
	"Tick":  true,
}

// Walltime forbids reading the wall clock. Simulation and scan code must
// take its notion of "now" from a threaded simclock.Clock (scanner.Cfg.Clock,
// tlssim.ClientConfig.Clock) so that same-seed runs replay on an identical
// timeline; a stray time.Now makes handshake deadlines, backoff pacing, or
// timestamps depend on the host machine instead of the seed. Packages whose
// business is genuinely wall-clock time — the Real clock itself, the
// real-Internet prober — are exempted by import path; anything else needs a
// //lint:allow walltime <reason> at the call site.
func Walltime(allowPkgs ...string) *Analyzer {
	allowed := make(map[string]bool, len(allowPkgs))
	for _, p := range allowPkgs {
		allowed[p] = true
	}
	return &Analyzer{
		Name:  "walltime",
		Doc:   "forbid wall-clock reads (time.Now/Since/After/Tick); thread a simclock.Clock instead",
		Match: func(path string) bool { return !allowed[path] },
		Run: func(p *Pass) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if !isPkgFunc(p, sel, "time") || !walltimeFuncs[sel.Sel.Name] {
						return true
					}
					p.Reportf(sel.Pos(),
						"wall-clock time.%s breaks same-seed reproducibility; use a threaded simclock.Clock",
						sel.Sel.Name)
					return true
				})
			}
		},
	}
}

// isPkgFunc reports whether sel selects out of the package imported from
// pkgPath (robust to renamed imports, and never confused by a local
// variable that happens to be named "time" or "rand").
func isPkgFunc(p *Pass, sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
