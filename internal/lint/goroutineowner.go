// The goroutineowner analyzer enforces the single-owner discipline the
// concurrent subsystems rely on (scheduler worker pools, the fleet's
// dispatch loop, the sharded builders): a variable captured by a
// go-statement closure must be written on only one side of the spawn
// unless the two sides hand ownership off through a mutex, a WaitGroup
// join, or a channel synchronization. The -race detector finds these
// races only when the schedule cooperates; this pass finds the pattern
// statically.
//
// The check is deliberately narrow to stay precise: only direct writes to
// the captured variable itself (x = …, x++, x += …) count. Writes through
// an index (outs[i] = …) are the sanctioned disjoint-slot idiom of the
// worker pools, and writes through a pointer or field are aliasing
// questions this pass does not attempt.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineOwner builds the analyzer.
func GoroutineOwner() *Analyzer {
	return &Analyzer{
		Name: "goroutineowner",
		Doc: "a variable captured by a go-statement closure must not be written both inside the " +
			"goroutine and outside it (or in a sibling goroutine) without a mutex, WaitGroup " +
			"join, or channel handoff between the writes",
		Run: runGoroutineOwner,
	}
}

func runGoroutineOwner(p *Pass) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkGoroutineOwner(p, fd)
			}
		}
	}
}

// goSpawn is one `go func(){…}()` statement in a function body.
type goSpawn struct {
	stmt *ast.GoStmt
	lit  *ast.FuncLit
}

// varWrite is one direct assignment to a variable.
type varWrite struct {
	obj   *types.Var
	pos   token.Pos
	spawn *goSpawn // owning go-closure, nil for function-body writes
}

func checkGoroutineOwner(p *Pass, fd *ast.FuncDecl) {
	var spawns []*goSpawn
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			spawns = append(spawns, &goSpawn{stmt: g, lit: lit})
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	spawnOf := func(pos token.Pos) *goSpawn {
		for _, s := range spawns {
			if s.lit.Pos() <= pos && pos < s.lit.End() {
				return s
			}
		}
		return nil
	}

	// Collect every direct write to a variable declared in fd's body
	// outside all go-closures (the candidates for capture).
	declaredOutside := func(v *types.Var) bool {
		pos := v.Pos()
		if pos < fd.Body.Pos() || pos >= fd.Body.End() {
			return false
		}
		return spawnOf(pos) == nil
	}
	var writes []varWrite
	record := func(lhs ast.Expr, at token.Pos) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj, _ := p.Info.Uses[id].(*types.Var)
		if obj == nil {
			// `x := …` redeclarations define rather than use; a define
			// is a write to a fresh variable, never to a captured one.
			return
		}
		if !declaredOutside(obj) {
			return
		}
		writes = append(writes, varWrite{obj: obj, pos: at, spawn: spawnOf(at)})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				record(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			record(n.X, n.X.Pos())
		}
		return true
	})

	for _, s := range spawns {
		checkSpawn(p, fd, s, writes)
	}
}

// checkSpawn reports conflicts between writes inside one spawned closure
// and writes after the spawn (outside, or in sibling closures).
func checkSpawn(p *Pass, fd *ast.FuncDecl, s *goSpawn, writes []varWrite) {
	inside := make(map[*types.Var][]varWrite)
	for _, w := range writes {
		if w.spawn == s {
			inside[w.obj] = append(inside[w.obj], w)
		}
	}
	if len(inside) == 0 {
		return
	}
	for _, w := range writes {
		insideWrites, captured := inside[w.obj]
		if !captured {
			continue
		}
		conflicting := false
		switch {
		case w.spawn == nil && w.pos > s.stmt.End():
			conflicting = true
		case w.spawn != nil && w.spawn != s && w.spawn.stmt.Pos() > s.stmt.Pos():
			// Sibling goroutine spawned after this one, also writing the
			// captured variable: both run concurrently.
			conflicting = true
		}
		if !conflicting {
			continue
		}
		if joinedBefore(p, fd, s, w.pos) {
			continue
		}
		if mutexGuarded(p, s.lit, insideWrites[0].pos) && writeGuarded(p, fd, w) {
			continue
		}
		spawnLine := p.Fset.Position(s.stmt.Pos()).Line
		p.Reportf(w.pos,
			"%s is written both inside the goroutine spawned at line %d and here, with no mutex, "+
				"WaitGroup join, or channel handoff between the writes",
			w.obj.Name(), spawnLine)
		return // one finding per spawn is enough to fail the build
	}
}

// joinedBefore reports whether a join barrier — a *.Wait() call or a
// top-level channel receive — sits between the spawn and pos in the
// function body, outside any go-closure.
func joinedBefore(p *Pass, fd *ast.FuncDecl, s *goSpawn, pos token.Pos) bool {
	if pos < s.stmt.End() {
		// A write inside a sibling closure: its textual position says
		// nothing about ordering, so no barrier applies.
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // barriers inside closures do not order the outer body
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" &&
				n.Pos() > s.stmt.End() && n.End() <= pos {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && n.Pos() > s.stmt.End() && n.End() <= pos {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && n.Pos() > s.stmt.End() && n.Pos() <= pos {
				if _, isChan := types.Unalias(tv.Type).(*types.Chan); isChan {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// mutexGuarded reports whether a *.Lock() call precedes pos inside the
// given closure body.
func mutexGuarded(p *Pass, lit *ast.FuncLit, pos token.Pos) bool {
	return lockBefore(lit.Body, pos)
}

// writeGuarded reports whether the conflicting write is itself preceded
// by a *.Lock() call in its own scope (the function body for outside
// writes, the sibling closure for closure writes).
func writeGuarded(p *Pass, fd *ast.FuncDecl, w varWrite) bool {
	if w.spawn != nil {
		return lockBefore(w.spawn.lit.Body, w.pos)
	}
	return lockBefore(fd.Body, w.pos)
}

// lockBefore reports whether a *.Lock() or *.RLock() call appears in body
// before pos. The check is lexical and does not verify both sides lock
// the same mutex — pairing a lock with the wrong mutex is a bug -race
// still catches, while the common case (one mutex in scope) stays quiet.
func lockBefore(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && call.End() <= pos {
			found = true
		}
		return true
	})
	return found
}
