package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for range` over map-typed values in packages whose
// output must be bit-identical across same-seed runs. Go randomizes map
// iteration order per run, so any map range whose body's effect is
// order-sensitive (appending, writing a report row, drawing from an RNG,
// assigning serial numbers) silently breaks reproducibility — PR 1's
// GSA-deck bug was exactly this class. The sanctioned pattern is to
// collect the keys, sort them, and range over the sorted slice; a bare
// key-collection loop (`for k := range m { keys = append(keys, k) }`) is
// recognized and permitted since its append order is discarded by the
// subsequent sort. Anything else needs a //lint:allow maprange <reason>
// arguing the body is genuinely commutative.
func MapRange(pkgs ...string) *Analyzer {
	var match func(string) bool
	if len(pkgs) > 0 {
		set := make(map[string]bool, len(pkgs))
		for _, p := range pkgs {
			set[p] = true
		}
		match = func(path string) bool { return set[path] }
	}
	return &Analyzer{
		Name:  "maprange",
		Doc:   "flag map iteration in deterministic packages; collect and sort keys first",
		Match: match,
		Run: func(p *Pass) {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := p.Info.Types[rs.X].Type
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					if isKeyCollection(rs) {
						return true
					}
					p.Reportf(rs.Pos(),
						"map iteration order is randomized per run; collect the keys and sort them before ranging")
					return true
				})
			}
		},
	}
}

// isKeyCollection recognizes the first half of the sanctioned
// sort-the-keys idiom: a range using only the key whose body is exactly
// `keys = append(keys, k)`. The append order is irrelevant because the
// slice is sorted before use; every other body shape must prove itself.
func isKeyCollection(rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Key == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}
